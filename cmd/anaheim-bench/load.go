package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/anaheim-sim/anaheim"
	"github.com/anaheim-sim/anaheim/internal/engine"
	"github.com/anaheim-sim/anaheim/internal/obs"
)

// Synthetic many-tenant load driver for the serving runtime: N tenant
// sessions submit closed-loop job streams from a workload mix, cycling
// through the priority tiers, against one engine. Run once with batching
// off and once with a batching window to measure what cross-session batch
// dispatch buys (aggregate throughput) and what it must not cost
// (latency-tier tail latency).

// loadTierStats is one tier's latency/throughput summary within a run.
type loadTierStats struct {
	Jobs     int     `json:"jobs"`
	Ops      int     `json:"ops"`
	Rejected int     `json:"rejected"`
	P50Ms    float64 `json:"p50Ms"`
	P99Ms    float64 `json:"p99Ms"`
}

// loadRun is one engine configuration's measured behavior under the load.
type loadRun struct {
	Batching            bool                      `json:"batching"`
	BatchWindowMs       float64                   `json:"batchWindowMs"`
	DurationSec         float64                   `json:"durationSec"`
	JobsDone            int                       `json:"jobsDone"`
	OpsDone             int                       `json:"opsDone"`
	Rejected            int                       `json:"rejected"`
	ThroughputOpsPerSec float64                   `json:"throughputOpsPerSec"`
	BatchesDispatched   float64                   `json:"batchesDispatched"`
	BatchedOps          float64                   `json:"batchedOps"`
	MeanBatchOccupancy  float64                   `json:"meanBatchOccupancy"`
	Tiers               map[string]*loadTierStats `json:"tiers"`
}

// loadReport is the -tenants JSON artifact (also attached to the micro
// report as the "serving" field when both are produced into one file).
type loadReport struct {
	GoVersion string    `json:"goVersion"`
	NumCPU    int       `json:"numCpu"`
	Tenants   int       `json:"tenants"`
	Mix       []string  `json:"mix"`
	Params    string    `json:"params"`
	Runs      []loadRun `json:"runs"`
}

// loadTenant is one synthetic tenant: its session, tier, workload spec
// builder, and latency samples.
type loadTenant struct {
	sess     *anaheim.EngineSession
	tier     string
	kind     string
	spec     anaheim.JobSpec
	opsPer   int
	mu       sync.Mutex
	latency  []float64 // per-job ms
	jobs     int
	rejected int
}

// loadTiers is the tier rotation tenants are assigned from. Starting with
// latency guarantees at least one latency tenant at any -tenants count, so
// the tail-latency comparison always has samples.
var loadTiers = []string{engine.TierLatency, engine.TierStandard, engine.TierBatch}

// parseMix validates the -mix flag.
func parseMix(mix string) ([]string, error) {
	kinds := strings.Split(mix, ",")
	for _, k := range kinds {
		switch k {
		case "logreg", "lintrans", "bootstrap":
		default:
			return nil, fmt.Errorf("anaheim-bench: unknown workload %q in -mix (want logreg, lintrans, bootstrap)", k)
		}
	}
	return kinds, nil
}

// buildLoadTenants creates one engine session per tenant over a shared
// client context (keys and bootstrapper are read-only after construction,
// so N sessions can share them; each session still pays its own key-cache
// residency, which is the multi-tenant shape under test).
func buildLoadTenants(e *anaheim.Engine, client, bootClient *anaheim.Context,
	lt *anaheim.LinearTransform, kinds []string, tenants int) ([]*loadTenant, error) {

	// Shared inputs: one fresh pair for the arithmetic workloads, one
	// level-exhausted ciphertext for bootstrap. Jobs never mutate inputs
	// (every op allocates its output), so sharing is safe.
	u := make([]complex128, client.Params.Slots())
	for i := range u {
		u[i] = complex(float64(i%7)/8, -float64(i%3)/4)
	}
	ctX, err := client.Encrypt(u)
	if err != nil {
		return nil, err
	}
	ctW, err := client.Encrypt(u)
	if err != nil {
		return nil, err
	}
	var ctBoot *anaheim.Ciphertext
	if bootClient != nil {
		vb := make([]complex128, bootClient.Params.Slots())
		for i := range vb {
			vb[i] = complex(float64(i%5)/8, 0)
		}
		ctBoot, err = bootClient.Encrypt(vb)
		if err != nil {
			return nil, err
		}
		ctBoot = bootClient.DropToLevel(ctBoot, 0)
	}

	out := make([]*loadTenant, tenants)
	for i := 0; i < tenants; i++ {
		kind := kinds[i%len(kinds)]
		ctx := client
		if kind == "bootstrap" {
			ctx = bootClient
		}
		sess, err := ctx.AttachSession(e)
		if err != nil {
			return nil, err
		}
		t := &loadTenant{sess: sess, tier: loadTiers[i%len(loadTiers)], kind: kind}
		switch kind {
		case "logreg":
			// Depth-3 inference fragment: dot-product step, square
			// activation, scale — the mul/square ops land in the ks-relin
			// kernel class, the mulconst in eltwise.
			t.spec = anaheim.JobSpec{
				SessionID: sess.ID,
				Inputs:    map[string]*anaheim.Ciphertext{"x": ctX, "w": ctW},
				Ops: []anaheim.OpSpec{
					{ID: "d", Op: "mul", Args: []string{"x", "w"}},
					{ID: "s", Op: "square", Args: []string{"d"}},
					{ID: "o", Op: "mulconst", Args: []string{"s"}, Val: 0.25},
				},
				Outputs: []string{"o"},
			}
		case "lintrans":
			sess.RegisterTransform("lt", lt)
			t.spec = anaheim.JobSpec{
				SessionID: sess.ID,
				Inputs:    map[string]*anaheim.Ciphertext{"x": ctX},
				Ops: []anaheim.OpSpec{
					{ID: "t", Op: "lintrans", Args: []string{"x"}, Name: "lt"},
					{ID: "r", Op: "rotate", Args: []string{"t"}, K: 1},
				},
				Outputs: []string{"r"},
			}
		case "bootstrap":
			t.spec = anaheim.JobSpec{
				SessionID: sess.ID,
				Inputs:    map[string]*anaheim.Ciphertext{"x": ctBoot},
				Ops: []anaheim.OpSpec{
					{ID: "b", Op: "bootstrap", Args: []string{"x"}},
				},
				Outputs: []string{"b"},
			}
		}
		t.spec.Tier = t.tier
		t.spec.Deadline = 2 * time.Minute
		t.opsPer = len(t.spec.Ops)
		out[i] = t
	}
	return out, nil
}

// driveLoad runs every tenant's closed submit-wait loop until the deadline.
func driveLoad(e *anaheim.Engine, tenants []*loadTenant, duration time.Duration) {
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for _, t := range tenants {
		t := t
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				job, err := e.Submit(t.spec)
				if err != nil {
					if errors.Is(err, engine.ErrBusy) {
						t.mu.Lock()
						t.rejected++
						t.mu.Unlock()
						time.Sleep(200 * time.Microsecond)
						continue
					}
					return // spec bug: recorded as zero jobs for this tenant
				}
				if err := job.Wait(context.Background()); err != nil {
					continue
				}
				ms := float64(time.Since(start).Microseconds()) / 1e3
				t.mu.Lock()
				t.latency = append(t.latency, ms)
				t.jobs++
				t.mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

// percentile returns the p-th percentile (0..100) of sorted samples.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runOneLoad executes the tenant fleet against one engine configuration and
// summarizes it.
func runOneLoad(client, bootClient *anaheim.Context, lt *anaheim.LinearTransform,
	kinds []string, tenants int, duration, window time.Duration) (loadRun, error) {

	reg := obs.NewRegistry()
	e := anaheim.NewEngine(anaheim.EngineConfig{
		MaxActiveJobs:    4 * tenants, // backpressure reachable but not the bottleneck
		MaxJobsPerTenant: 4,
		BatchWindow:      window,
		Obs:              reg,
	})
	defer e.Close()

	fleet, err := buildLoadTenants(e, client, bootClient, lt, kinds, tenants)
	if err != nil {
		return loadRun{}, err
	}
	start := time.Now()
	driveLoad(e, fleet, duration)
	elapsed := time.Since(start).Seconds()

	run := loadRun{
		Batching:      window > 0,
		BatchWindowMs: float64(window.Microseconds()) / 1e3,
		DurationSec:   elapsed,
		Tiers:         make(map[string]*loadTierStats),
	}
	perTier := make(map[string][]float64)
	for _, t := range fleet {
		ts := run.Tiers[t.tier]
		if ts == nil {
			ts = &loadTierStats{}
			run.Tiers[t.tier] = ts
		}
		ts.Jobs += t.jobs
		ts.Ops += t.jobs * t.opsPer
		ts.Rejected += t.rejected
		perTier[t.tier] = append(perTier[t.tier], t.latency...)
		run.JobsDone += t.jobs
		run.OpsDone += t.jobs * t.opsPer
		run.Rejected += t.rejected
	}
	for tier, samples := range perTier {
		sort.Float64s(samples)
		run.Tiers[tier].P50Ms = percentile(samples, 50)
		run.Tiers[tier].P99Ms = percentile(samples, 99)
	}
	if elapsed > 0 {
		run.ThroughputOpsPerSec = float64(run.OpsDone) / elapsed
	}
	snap := reg.Snapshot()
	run.BatchesDispatched = snap.Counters["engine_batches_dispatched_total"]
	run.BatchedOps = snap.Counters["engine_batched_ops_total"]
	if run.BatchesDispatched > 0 {
		run.MeanBatchOccupancy = run.BatchedOps / run.BatchesDispatched
	}
	return run, nil
}

// runLoad is the -tenants entry point. batchMode selects which engine
// configurations run: "off", "on", or "both" (off first, then on — the
// order the gate compares). gate enforces the batching win: with "both",
// batching-on must beat batching-off on aggregate op throughput without
// regressing latency-tier p99 by more than 10%; violations exit via the
// returned gateErr so main can use the soft-failure exit code.
func runLoad(out io.Writer, tenants int, mix string, duration, window time.Duration,
	batchMode string, gate bool) (rep *loadReport, gateErr error, err error) {

	kinds, err := parseMix(mix)
	if err != nil {
		return nil, nil, err
	}
	var windows []time.Duration
	switch batchMode {
	case "off":
		windows = []time.Duration{0}
	case "on":
		windows = []time.Duration{window}
	case "both":
		windows = []time.Duration{0, window}
	default:
		return nil, nil, fmt.Errorf("anaheim-bench: -batch must be off, on, or both (got %q)", batchMode)
	}

	client, err := anaheim.NewContext(anaheim.TestParameters(), 41)
	if err != nil {
		return nil, nil, err
	}
	// Rotation keys for rotate(1) plus the load transform's diagonals.
	diags := make(map[int][]complex128)
	for _, d := range []int{0, 1, 3} {
		row := make([]complex128, client.Params.Slots())
		for i := range row {
			row[i] = complex(float64((i+d)%5)/5, 0)
		}
		diags[d] = row
	}
	lt := anaheim.NewLinearTransform(client.Params.Slots(), diags)
	client.GenRotationKeys(append(lt.Rotations(), 1)...)

	var bootClient *anaheim.Context
	for _, k := range kinds {
		if k == "bootstrap" {
			bootClient, err = anaheim.NewContext(anaheim.BootParameters(), 43)
			if err != nil {
				return nil, nil, err
			}
			if err := bootClient.SetupBootstrapping(anaheim.DefaultBootstrapConfig()); err != nil {
				return nil, nil, err
			}
			break
		}
	}

	rep = &loadReport{
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Tenants:   tenants,
		Mix:       kinds,
		Params:    fmt.Sprintf("logN=%d levels=%d (test preset)", client.Params.LogN(), client.Params.MaxLevel()+1),
	}
	for _, w := range windows {
		run, err := runOneLoad(client, bootClient, lt, kinds, tenants, duration, w)
		if err != nil {
			return nil, nil, err
		}
		rep.Runs = append(rep.Runs, run)
		fmt.Fprintf(os.Stderr, "load: batching=%v %d tenants %.1fs: %.0f ops/s, %d jobs, %d rejected, occupancy %.2f\n",
			run.Batching, tenants, run.DurationSec, run.ThroughputOpsPerSec, run.JobsDone, run.Rejected, run.MeanBatchOccupancy)
		for _, tier := range loadTiers {
			if ts := run.Tiers[tier]; ts != nil {
				fmt.Fprintf(os.Stderr, "load:   %-8s p50 %7.2fms  p99 %7.2fms  (%d jobs)\n", tier, ts.P50Ms, ts.P99Ms, ts.Jobs)
			}
		}
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return nil, nil, err
	}

	if gate && batchMode == "both" && len(rep.Runs) == 2 {
		off, on := rep.Runs[0], rep.Runs[1]
		if on.ThroughputOpsPerSec <= off.ThroughputOpsPerSec {
			gateErr = fmt.Errorf("load gate: batching-on throughput %.0f ops/s does not beat batching-off %.0f ops/s",
				on.ThroughputOpsPerSec, off.ThroughputOpsPerSec)
		}
		offLat, onLat := off.Tiers[engine.TierLatency], on.Tiers[engine.TierLatency]
		if offLat != nil && onLat != nil && offLat.P99Ms > 0 && onLat.P99Ms > offLat.P99Ms*1.10 {
			gateErr = errors.Join(gateErr,
				fmt.Errorf("load gate: latency-tier p99 regressed %.2fms -> %.2fms (>10%%)", offLat.P99Ms, onLat.P99Ms))
		}
	}
	return rep, gateErr, nil
}

// mergeServing attaches a load report to an existing -micro JSON artifact
// (the -merge flag): BENCH_BASELINE.json then carries both the per-op
// microbenchmarks and the serving-layer numbers in one trajectory file.
func mergeServing(path string, rep *loadReport) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("anaheim-bench: -merge: %w", err)
	}
	var micro microReport
	if err := json.Unmarshal(raw, &micro); err != nil {
		return fmt.Errorf("anaheim-bench: -merge %s is not a -micro report: %w", path, err)
	}
	micro.Serving = rep
	out, err := json.MarshalIndent(&micro, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
