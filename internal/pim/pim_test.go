package pim

import (
	"testing"
	"testing/quick"
)

func configs() []UnitConfig {
	return []UnitConfig{A100NearBank(), A100CustomHBM(), RTX4090NearBank()}
}

func TestSpecCoversISA(t *testing.T) {
	for _, op := range AllOpcodes() {
		s := Spec(op, 4)
		if s.BufferSlots < 2 || len(s.Phases) == 0 || s.OutPolys < 1 {
			t.Errorf("%v: malformed spec %+v", op, s)
		}
		if s.PIMAccesses() < s.OutPolys {
			t.Errorf("%v: accesses < outputs", op)
		}
		if s.GPUAccesses < s.PIMAccesses() {
			t.Errorf("%v: GPU baseline cheaper than PIM accesses", op)
		}
	}
}

func TestSmallBufferUnsupported(t *testing.T) {
	// §VII-C: Tensor and PAccum⟨4⟩ are not supported at small B.
	for _, op := range []Opcode{Tensor, PAccum} {
		s := Spec(op, 4)
		if s.Supported(4) {
			t.Errorf("%v should be unsupported at B=4", op)
		}
		if !s.Supported(16) {
			t.Errorf("%v should be supported at B=16", op)
		}
	}
	if !Spec(Move, 0).Supported(4) {
		t.Error("Move should be supported at B=4")
	}
}

func TestChunkGranularityMatchesAlg1(t *testing.T) {
	// Alg 1 line 1: G = floor(B/6) for PAccum⟨4⟩.
	s := Spec(PAccum, 4)
	if g := s.ChunkGranularity(16); g != 2 {
		t.Fatalf("PAccum⟨4⟩ G at B=16: got %d want 2", g)
	}
	if g := s.ChunkGranularity(64); g != 10 {
		t.Fatalf("PAccum⟨4⟩ G at B=64: got %d want 10", g)
	}
}

func TestLayoutAddressesBijective(t *testing.T) {
	l := PolyGroupLayout{Polys: 4, ChunksPerBank: 16, RowChunks: 32}
	f := func(p1, c1, p2, c2 uint8) bool {
		a1 := Location{}
		a2 := Location{}
		pp1, cc1 := int(p1)%l.Polys, int(c1)%l.ChunksPerBank
		pp2, cc2 := int(p2)%l.Polys, int(c2)%l.ChunksPerBank
		a1 = l.Chunk(pp1, cc1)
		a2 = l.Chunk(pp2, cc2)
		if pp1 == pp2 && cc1 == cc2 {
			return a1 == a2
		}
		return a1 != a2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestColumnPartitioningSharesRows(t *testing.T) {
	// Fig 7 / §VI-C: under CP, G-chunk reads of all polynomials in a
	// PolyGroup touch one row; naive allocation touches one row per poly.
	l := PolyGroupLayout{Polys: 4, ChunksPerBank: 16, RowChunks: 32}
	if rows := l.RowsTouched(0, 2, true); rows != 1 {
		t.Fatalf("CP rows touched = %d, want 1", rows)
	}
	if rows := l.RowsTouched(0, 2, false); rows != 4 {
		t.Fatalf("naive rows touched = %d, want 4 (one per polynomial)", rows)
	}
}

func TestNaiveLayoutActPreMultipliers(t *testing.T) {
	// §VI-C: for PAccum⟨4⟩ the naive layout needs 4×, 8×, 2× more ACT/PRE
	// in phases (1), (2), (3).
	s := Spec(PAccum, 4)
	g := s.ChunkGranularity(16)
	for i, want := range []int{4, 8, 2} {
		ph := s.Phases[i]
		l := PolyGroupLayout{Polys: ph.GroupPolys, ChunksPerBank: 16, RowChunks: 32}
		cp := l.RowsTouched(0, g, true)
		naive := l.RowsTouched(0, g, false)
		if naive/cp != want {
			t.Fatalf("phase %d: naive/CP ACT ratio = %d/%d, want %d", i+1, naive, cp, want)
		}
	}
}

func TestInstrCostBasicProperties(t *testing.T) {
	for _, u := range configs() {
		for _, op := range AllOpcodes() {
			k := 0
			if op == PAccum {
				k = 4
			}
			if op == CAccum {
				k = 8
			}
			cost, err := u.InstrCost(op, k, 68, 1<<16, u.BufferSize, true)
			if err != nil {
				t.Fatalf("%s/%v: %v", u.Name, op, err)
			}
			if cost.TimeNs <= 0 || cost.EnergyNJ <= 0 || cost.Bytes <= 0 {
				t.Fatalf("%s/%v: non-positive cost %+v", u.Name, op, cost)
			}
			// Column partitioning must never be slower than naive.
			naive, err := u.InstrCost(op, k, 68, 1<<16, u.BufferSize, false)
			if err != nil {
				t.Fatal(err)
			}
			if naive.TimeNs < cost.TimeNs {
				t.Fatalf("%s/%v: naive layout faster than CP", u.Name, op)
			}
		}
	}
}

func TestUnsupportedInstrErrors(t *testing.T) {
	u := A100NearBank()
	if _, err := u.InstrCost(Tensor, 0, 68, 1<<16, 4, true); err == nil {
		t.Fatal("expected error for Tensor at B=4")
	}
}

func TestMicrobenchmarkBands(t *testing.T) {
	// §VII-C: with the default configurations, Anaheim shows 1.65–10.33×
	// speedups and 2.63–17.39× energy-efficiency improvements, with
	// especially high speedups for PAccum and CAccum.
	minS, maxS := 1e18, 0.0
	minE, maxE := 1e18, 0.0
	for _, u := range configs() {
		var basicMax, paccum, caccum float64
		for _, op := range AllOpcodes() {
			k := 0
			if op == PAccum {
				k = 4
			}
			if op == CAccum {
				k = 8
			}
			mb := u.RunMicrobenchmark(op, k, u.BufferSize)
			if !mb.Supported {
				t.Fatalf("%s/%v unsupported at default B", u.Name, op)
			}
			minS, maxS = minf(minS, mb.Speedup), maxf(maxS, mb.Speedup)
			minE, maxE = minf(minE, mb.EnergyEff), maxf(maxE, mb.EnergyEff)
			switch op {
			case PAccum:
				paccum = mb.Speedup
			case CAccum:
				caccum = mb.Speedup
			case Move, Add, Sub, Mult, MAC:
				basicMax = maxf(basicMax, mb.Speedup)
			}
		}
		if paccum < basicMax || caccum < basicMax {
			t.Errorf("%s: compound instructions should outperform basic ones (PAccum %.2f, CAccum %.2f, basic %.2f)",
				u.Name, paccum, caccum, basicMax)
		}
	}
	if minS < 1.05 || maxS > 13 {
		t.Errorf("speedup range [%.2f, %.2f] outside the paper band ~[1.65, 10.33]", minS, maxS)
	}
	if minE < 1.8 || maxE > 20 {
		t.Errorf("energy range [%.2f, %.2f] outside the paper band ~[2.63, 17.39]", minE, maxE)
	}
}

func TestMicrobenchmarkSaturatesWithB(t *testing.T) {
	// Fig 9: performance improves with B and eventually saturates; the
	// saturation is faster for custom-HBM.
	for _, u := range configs() {
		prev := 0.0
		for _, b := range []int{8, 16, 32, 64} {
			mb := u.RunMicrobenchmark(Add, 0, b)
			if !mb.Supported {
				t.Fatalf("%s: Add unsupported at B=%d", u.Name, b)
			}
			if mb.Speedup+1e-9 < prev {
				t.Fatalf("%s: speedup decreased with larger B (%.3f -> %.3f)", u.Name, prev, mb.Speedup)
			}
			prev = mb.Speedup
		}
	}
	// Saturation: going 16 -> 64 should help near-bank more than custom-HBM.
	nb16 := A100NearBank().RunMicrobenchmark(Add, 0, 16).Speedup
	nb64 := A100NearBank().RunMicrobenchmark(Add, 0, 64).Speedup
	ch16 := A100CustomHBM().RunMicrobenchmark(Add, 0, 16).Speedup
	ch64 := A100CustomHBM().RunMicrobenchmark(Add, 0, 64).Speedup
	if (nb64 / nb16) < (ch64 / ch16) {
		t.Errorf("near-bank should benefit more from larger B: NB %.3f x vs CH %.3f x", nb64/nb16, ch64/ch16)
	}
}

func TestTableIIIConfigValues(t *testing.T) {
	a := A100NearBank()
	if a.DRAM.TotalBanks() != 2560 || a.BanksPerGroup() != 512 {
		t.Fatalf("A100 bank geometry wrong: %d total, %d per group", a.DRAM.TotalBanks(), a.BanksPerGroup())
	}
	r := RTX4090NearBank()
	if r.DRAM.TotalBanks() != 384 || r.BanksPerGroup() != 128 {
		t.Fatalf("4090 bank geometry wrong")
	}
	// BW increase sanity: banks × 32B × clk / external ≈ BWIncrease.
	raw := float64(a.DRAM.TotalBanks()) * 32 * a.ClockMHz * 1e6 / 1e9
	ratio := raw / a.DRAM.ExternalBWGBs
	if ratio < 14 || ratio > 20 {
		t.Fatalf("A100 internal/external BW ratio %.1f implausible vs Table III 16x", ratio)
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
