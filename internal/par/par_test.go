package par

import (
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		var sum atomic.Int64
		seen := make([]atomic.Bool, n)
		ForEach(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
			sum.Add(int64(i))
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum.Load() != want {
			t.Fatalf("n=%d: sum=%d want %d", n, sum.Load(), want)
		}
	}
}

func TestForEachNested(t *testing.T) {
	// Nested parallel sections must not deadlock and must still cover every
	// index (inner sections fall back to inline execution when the pool is
	// saturated).
	var count atomic.Int64
	ForEach(8, func(i int) {
		ForEach(16, func(j int) {
			count.Add(1)
		})
	})
	if count.Load() != 8*16 {
		t.Fatalf("nested count=%d want %d", count.Load(), 8*16)
	}
}

func TestSetWorkersSerial(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	var order []int // no lock needed: width 1 means serial execution
	ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial execution out of order: %v", order)
		}
	}
}
