package gpu

import (
	"testing"
)

func TestRooflineRegimes(t *testing.T) {
	g := A100()
	// Pure memory kernel: time = bytes / effective bandwidth.
	mem := g.KernelCost(0, 1e9, 1.0)
	if want := 1e9 / g.EffBWGBs(); mem.TimeNs < want*0.999 || mem.TimeNs > want*1.001 {
		t.Fatalf("memory-bound kernel time %.0f, want %.0f", mem.TimeNs, want)
	}
	// Pure compute kernel: time = ops / (TOPS * eff).
	comp := g.KernelCost(1e12, 0, 0.5)
	if want := 1e12 / (g.IntTOPS * 0.5 * 1e3); comp.TimeNs < want*0.999 || comp.TimeNs > want*1.001 {
		t.Fatalf("compute-bound kernel time %.0f, want %.0f", comp.TimeNs, want)
	}
	// Roofline: the max of the two.
	both := g.KernelCost(1e12, 1e9, 0.5)
	if both.TimeNs != maxF(mem.TimeNs, comp.TimeNs) {
		t.Fatal("kernel time must be max(compute, memory)")
	}
}

func TestEnergyMonotone(t *testing.T) {
	g := A100()
	small := g.KernelCost(1e9, 1e6, 0.5)
	big := g.KernelCost(2e9, 2e6, 0.5)
	if big.EnergyNJ <= small.EnergyNJ {
		t.Fatal("energy must grow with work")
	}
	if small.EnergyNJ <= 0 {
		t.Fatal("energy must be positive")
	}
}

func TestTableIIIGPUEntries(t *testing.T) {
	a, r := A100(), RTX4090()
	if a.IntTOPS != 19.5 || r.IntTOPS != 41.3 {
		t.Fatal("integer throughput must match Table III")
	}
	if a.L2MB != 40 || r.L2MB != 72 {
		t.Fatal("L2 sizes must match §III-A / Table V")
	}
	// D2 of §III-A: the 4090 has 2.1x the integer mult throughput.
	if ratio := r.IntTOPS / a.IntTOPS; ratio < 2.0 || ratio > 2.2 {
		t.Fatalf("4090/A100 TOPS ratio %.2f, want ~2.1", ratio)
	}
}

func TestLibraryProfiles(t *testing.T) {
	c, h, p := Cheddar(), HundredX(), Phantom()
	// §IV-A: Cheddar's (I)NTT is 1.80x/1.81x faster than 100x/Phantom.
	if r := c.NTTEff / h.NTTEff; r < 1.75 || r > 1.85 {
		t.Fatalf("Cheddar/100x NTT efficiency ratio %.2f", r)
	}
	if r := c.NTTEff / p.NTTEff; r < 1.75 || r > 1.87 {
		t.Fatalf("Cheddar/Phantom NTT efficiency ratio %.2f", r)
	}
	if !c.EWFusion || !h.EWFusion || p.EWFusion {
		t.Fatal("fusion support flags wrong (Phantom lacks CKKS bootstrapping-era fusion)")
	}
}

func TestZeroEffSkipsCompute(t *testing.T) {
	g := A100()
	c := g.KernelCost(1e12, 1e6, 0)
	if c.TimeNs != 1e6/g.EffBWGBs() {
		t.Fatal("zero efficiency class must fall back to memory time")
	}
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
