package engine

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ckks"
	"github.com/anaheim-sim/anaheim/internal/obs"
)

// OpSpec is one node of a job's op DAG. Args name either job inputs or
// other ops; an op becomes runnable when every op it references has
// produced its result.
type OpSpec struct {
	ID   string    `json:"id"`
	Op   string    `json:"op"`             // add|sub|mul|square|rotate|conjugate|addconst|mulconst|rescale|droplevel|lintrans|bootstrap|addn|lincomb
	Args []string  `json:"args"`           // input names or op ids
	K    int       `json:"k,omitempty"`    // rotation amount / target level
	Val  float64   `json:"val,omitempty"`  // constant for addconst/mulconst
	Vals []float64 `json:"vals,omitempty"` // per-arg constants for lincomb
	Name string    `json:"name,omitempty"` // registered linear-transform name
}

// arity of each op kind (number of ciphertext arguments); variadic ops
// (addn, lincomb) use -1 and accept two or more.
var opArity = map[string]int{
	"add": 2, "sub": 2, "mul": 2,
	"square": 1, "rotate": 1, "conjugate": 1,
	"addconst": 1, "mulconst": 1,
	"rescale": 1, "droplevel": 1,
	"lintrans": 1, "bootstrap": 1,
	"addn": -1, "lincomb": -1,
}

func checkOp(op *OpSpec) error {
	want, ok := opArity[op.Op]
	if !ok {
		return fmt.Errorf("engine: op %q: unknown kind %q", op.ID, op.Op)
	}
	if want < 0 {
		if len(op.Args) < 2 {
			return fmt.Errorf("engine: op %q (%s): want at least 2 args, got %d", op.ID, op.Op, len(op.Args))
		}
	} else if len(op.Args) != want {
		return fmt.Errorf("engine: op %q (%s): want %d args, got %d", op.ID, op.Op, want, len(op.Args))
	}
	if op.Op == "lincomb" && len(op.Vals) != len(op.Args) {
		return fmt.Errorf("engine: op %q: lincomb wants one constant per arg, got %d for %d args",
			op.ID, len(op.Vals), len(op.Args))
	}
	if op.Op == "lintrans" && op.Name == "" {
		return fmt.Errorf("engine: op %q: lintrans needs a transform name", op.ID)
	}
	return nil
}

// JobSpec describes an encrypted-compute job: named input ciphertexts, an
// op DAG over them, and which op results to return.
type JobSpec struct {
	SessionID string
	Inputs    map[string]*ckks.Ciphertext
	Ops       []OpSpec
	Outputs   []string
	// Deadline bounds the job's wall-clock time from admission; 0 uses the
	// engine default.
	Deadline time.Duration
	// Tier is the priority tier ("latency", "standard", "batch"); empty
	// means standard. Latency-tier ops bypass batch staging and dequeue
	// first; the batch tier trades latency for amortized throughput.
	Tier string
}

// Status is a job lifecycle state.
type Status string

// Job lifecycle: Queued -> Running -> Done | Failed.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// result is the value an op produced.
type result struct {
	ct *ckks.Ciphertext
}

// Job is an admitted job handle.
type Job struct {
	ID string

	sess   *Session
	spec   JobSpec
	tier   string // normalized priority tier
	tenant string // session ID, for per-tenant admission accounting
	ctx    context.Context
	cancel context.CancelFunc
	span   *obs.Span // root span; op spans are its children

	mu      sync.Mutex
	status  Status
	err     error
	results map[string]*result
	done    chan struct{}
}

// Status returns the lifecycle state and, for failed jobs, the error.
func (j *Job) Status() (Status, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.err
}

func (j *Job) setStatus(s Status, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == StatusDone || j.status == StatusFailed {
		return // terminal states are sticky
	}
	j.status = s
	j.err = err
	if s == StatusDone || s == StatusFailed {
		j.span.Annotate("id=" + j.ID + " status=" + string(s))
		j.span.End()
		close(j.done)
	}
}

// spanID returns the job's root span ID for parenting op spans.
func (j *Job) spanID() uint64 { return j.span.ID() }

func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == StatusDone || j.status == StatusFailed
}

func (j *Job) storeResult(opID string, r *result) {
	j.mu.Lock()
	j.results[opID] = r
	j.mu.Unlock()
}

// arg resolves a name to a ciphertext (input or prior op result).
func (j *Job) arg(name string) (*ckks.Ciphertext, error) {
	if ct, ok := j.spec.Inputs[name]; ok {
		return ct, nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if r, ok := j.results[name]; ok {
		return r.ct, nil
	}
	return nil, fmt.Errorf("engine: argument %q not materialized", name)
}

// Wait blocks until the job reaches a terminal state (returning its error,
// if any) or ctx expires. Every admitted job terminates: op completion and
// deadline expiry both wake the dispatcher, and engine shutdown fails all
// tracked jobs.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		_, err := j.Status()
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Results returns the requested output ciphertexts of a Done job.
func (j *Job) Results() (map[string]*ckks.Ciphertext, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status != StatusDone {
		return nil, fmt.Errorf("engine: job %s is %s, not done", j.ID, j.status)
	}
	out := make(map[string]*ckks.Ciphertext, len(j.spec.Outputs))
	for _, o := range j.spec.Outputs {
		r, ok := j.results[o]
		if !ok || r.ct == nil {
			return nil, fmt.Errorf("engine: output %q missing", o)
		}
		out[o] = r.ct
	}
	return out, nil
}
