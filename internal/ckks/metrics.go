package ckks

import (
	"time"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

// opObs pairs the count and duration metrics of one evaluator operation.
// The hot paths record through package-level instances so the per-op cost
// is two atomic updates plus one time.Now pair — negligible next to the
// NTT/BConv work they wrap.
type opObs struct {
	count *obs.Counter
	dur   *obs.Histogram
}

func newOpObs(op string) opObs {
	return opObs{
		count: obs.Default.Counter(`ckks_ops_total{op="` + op + `"}`),
		dur:   obs.Default.Histogram(`ckks_op_seconds{op="` + op + `"}`),
	}
}

// done records one completed operation started at `start`:
// `defer obsMul.done(time.Now())`.
func (o opObs) done(start time.Time) {
	o.count.Inc()
	o.dur.Observe(time.Since(start).Seconds())
}

var (
	obsAdd       = newOpObs("add")
	obsMul       = newOpObs("mul")
	obsKeySwitch = newOpObs("keyswitch") // relinearization + every automorphism

	// Key-switch pipeline stages, recorded under the obsKeySwitch span so
	// /metrics breaks ModUp -> KeyMult -> ModDown down. The hoisted path
	// records them too (one ks-bconv amortized over many ks-keymult/ks-moddown
	// pairs — the hoisting win is visible as the count skew).
	obsKSBConv   = newOpObs("ks-bconv")   // Decompose: INTT + BConv + NTT per digit
	obsKSKeyMult = newOpObs("ks-keymult") // gadgetProduct: digit × key MACs
	obsKSModDown = newOpObs("ks-moddown") // ModDown: INTT + BConv + NTT + epilogue
	obsRescale   = newOpObs("rescale")
	obsRotate    = newOpObs("rotate")
	obsConjugate = newOpObs("conjugate")
	obsHoisted   = newOpObs("rotate-hoisted")
	obsBootstrap = newOpObs("bootstrap")

	// Fused-kernel ops (§V): recorded only when the fused path executes, so
	// the fused/unfused split is visible in /metrics.
	obsAddMany         = newOpObs("addmany")
	obsMulConstAccum   = newOpObs("mulconst-accum")
	obsLinTransFused   = newOpObs("lintrans-hoisted-fused")
	obsLinTransUnfused = newOpObs("lintrans-hoisted")
	obsLinTransBSGS    = newOpObs("lintrans-bsgs")

	// Key-switch gadget products spent inside linear-transform sweeps: the
	// hoisted path advances it once per nonzero diagonal, the BSGS path once
	// per nonzero baby and once per nonzero giant — so a sweep's delta is
	// exactly the rotation count the §V-B cost model predicts, and the BSGS
	// win (K → ~bs + K/bs) is assertable from /metrics.
	obsLinTransRotations = obs.Default.Counter("ckks_lintrans_rotations_total")

	// Coefficient bytes held by LinearTransform encoded-diagonal caches
	// (plain + pre-rotated variants) across the process.
	obsLinTransCacheBytes = obs.Default.Gauge("ckks_lintrans_cache_bytes")

	// Level-aware key-switch plan shape, observed once per Decompose: the
	// distribution of P-prefix lengths and digit counts actually used shows
	// how often the level-aware plans beat the legacy shape in production
	// traffic (legacy-only traffic pins ks_plan_alpha at α_top).
	obsKSPlanAlpha = obs.Default.Histogram("ckks_ks_plan_alpha")
	obsKSDigits    = obs.Default.Histogram("ckks_ks_digits")
)
