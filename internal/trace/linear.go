package trace

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/pim"
)

// LinearTransform emits a homomorphic linear transform with K nonzero
// diagonals at the given level, using the algorithm selected by the builder
// options (§III-B, Fig 1, Fig 5):
//
//   - Base: K independent HROT evaluations plus K PMULTs and accumulation.
//   - MinKS: iterated rotation with two keys (baby step 1, giant step bs);
//     same computation as Base but only 2 evks are streamed repeatedly.
//   - Hoist: baby-step/giant-step with a single hoisted ModUp for the baby
//     rotations, PMULT and accumulation in the extended modulus PQ, and one
//     hoisted ModDown per giant (Fig 5). Plaintexts are extended (larger)
//     but ModSwitch counts drop sharply.
//
// The PIM-offloaded variant additionally reorders automorphism past PMULT
// (plaintext preprocessing) and fuses it with accumulation (§V-B).
func (b *Builder) LinearTransform(level, k int) {
	switch {
	case b.Opt.Hoist:
		b.linearHoisted(level, k)
	case b.Opt.MinKS:
		b.linearMinKS(level, k)
	default:
		b.linearBase(level, k)
	}
	b.Rescale(level)
}

func (b *Builder) linearHoisted(level, k int) {
	if b.Opt.SplitKernels {
		b.linearHoistedNaive(level, k)
		return
	}
	p := b.P
	bs := ceilSqrt(k)
	gs := (k + bs - 1) / bs
	ext := level + 1 + p.Alpha

	// One hoisted ModUp feeds every baby rotation.
	b.ModUp(level)
	for r := 1; r < bs; r++ {
		b.KeyMult(fmt.Sprintf("LT.baby[%d].KeyMult", r), level)
		// Reordered automorphism: performed on the GPU after the
		// element-wise block, fused with the accumulation when AutFuse is
		// on (§V-B AutAccum).
		b.aut(fmt.Sprintf("LT.baby[%d].Aut", r), 2*ext, 1, true)
	}
	// Giant inner sums: PMULT+accumulation in the extended modulus with
	// one-time extended plaintexts (PAccum⟨bs⟩ per component pair).
	for j := 0; j < gs; j++ {
		b.ew(fmt.Sprintf("LT.giant[%d].PAccum", j), pim.PAccum, bs, ext, 1,
			float64(bs)*b.P.PolyBytes(ext))
	}
	// Giant rotations with double hoisting [8]: the partial sums stay in the
	// extended basis; each giant needs a re-decomposition (BConv+NTT, no
	// INTT) and a key multiplication, with a single ModDown at the very end.
	for j := 1; j < gs; j++ {
		b.ModUpNoINTT(level)
		b.KeyMult(fmt.Sprintf("LT.giantRot[%d].KeyMult", j), level)
		b.aut(fmt.Sprintf("LT.giantRot[%d].Aut", j), 2*ext, 1, true)
	}
	b.ew("LT.accum", pim.Add, 0, 2*ext, gs-1, 0)
	b.ModDown(level, 2)
}

// linearHoistedNaive emits the hoisted transform in the naive pre-fusion
// order (§V-B "before"): every compound as separate tagged kernels, and the
// diagonal plaintext multiplies placed *after* each baby automorphism — they
// consume the rotated value, so the automorphism cannot reach its
// accumulation until the SwapAutPMult pass pre-rotates the plaintexts and
// reorders them. After all internal/fusion passes the kernel multiset
// matches what the fused builder (AnaheimDefault) emits directly.
func (b *Builder) linearHoistedNaive(level, k int) {
	p := b.P
	bs := ceilSqrt(k)
	gs := (k + bs - 1) / bs
	ext := level + 1 + p.Alpha

	b.ModUp(level)
	// One fuse group per giant sum; its members (one diagonal PMAC per baby
	// step) are scattered across the baby blocks below.
	giantGid := make([]string, gs)
	for j := 0; j < gs; j++ {
		giantGid[j] = b.newFuseGroup(fmt.Sprintf("LT.giant[%d].PAccum", j))
	}
	// The unrotated (r=0) contribution to every giant sum.
	for j := 0; j < gs; j++ {
		b.diagMAC(giantGid[j], j, 0, ext, RoleMAC)
	}
	for r := 1; r < bs; r++ {
		b.KeyMult(fmt.Sprintf("LT.baby[%d].KeyMult", r), level)
		autName := fmt.Sprintf("LT.baby[%d].Aut", r)
		autGid := b.newFuseGroup(autName)
		b.autSplit(autName, autGid, 2*ext, 1)
		for j := 0; j < gs; j++ {
			b.diagMAC(giantGid[j], j, r, ext, RoleSwapPMult)
		}
		b.autSplitAccum(autName, autGid, 2*ext, 1)
	}
	for j := 1; j < gs; j++ {
		b.ModUpNoINTT(level)
		b.KeyMult(fmt.Sprintf("LT.giantRot[%d].KeyMult", j), level)
		b.aut(fmt.Sprintf("LT.giantRot[%d].Aut", j), 2*ext, 1, true)
	}
	b.ew("LT.accum", pim.Add, 0, 2*ext, gs-1, 0)
	b.ModDown(level, 2)
}

// diagMAC emits one naive diagonal multiply-accumulate of giant sum j: a
// PMAC streaming its (extended) plaintext as one-time data, tagged as a
// member of that giant's PAccum group.
func (b *Builder) diagMAC(gid string, j, r, ext int, role string) {
	spec := pim.Spec(pim.PMAC, 0)
	b.T.Append(Kernel{
		Name: fmt.Sprintf("LT.giant[%d].diag[%d]", j, r), Class: ClassEW,
		WeightedOps: float64(spec.ModMuls) * float64(ext) * float64(b.P.N) * modMulW,
		Bytes:       float64(spec.PIMAccesses()) * b.P.PolyBytes(ext),
		OneTime:     b.P.PolyBytes(ext),
		Op:          pim.PMAC, Limbs: ext, Instances: 1,
		Offload:   b.Opt.PIM,
		FuseGroup: gid, FuseRole: role,
	})
}

func (b *Builder) linearMinKS(level, k int) {
	// Iterated rotations: bs-1 baby steps with evk_1 and gs-1 giant steps
	// with evk_bs. Only two evaluation keys exist, but each HROT streams its
	// key from DRAM again (no cache can hold a 136MB evk, §III-C).
	bs := ceilSqrt(k)
	gs := (k + bs - 1) / bs
	for r := 1; r < bs; r++ {
		b.HROT(level)
	}
	for j := 1; j < gs; j++ {
		b.HROT(level)
	}
	// K PMULTs in the base modulus and accumulation.
	b.ew("LT.PMult", pim.PMult, 0, level+1, k, float64(k)*b.P.PolyBytes(level+1))
	b.ew("LT.accum", pim.Add, 0, 2*(level+1), k-1, 0)
}

func (b *Builder) linearBase(level, k int) {
	// Independent HROTs at the BSGS rotation set, each with its own evk:
	// the same computation as MinKS (Fig 1's table gives them equal (I)NTT
	// counts) but bs+gs-2 distinct keys instead of two.
	bs := ceilSqrt(k)
	gs := (k + bs - 1) / bs
	for r := 1; r < bs+gs-1; r++ {
		b.HROT(level)
	}
	b.ew("LT.PMult", pim.PMult, 0, level+1, k, float64(k)*b.P.PolyBytes(level+1))
	b.ew("LT.accum", pim.Add, 0, 2*(level+1), k-1, 0)
}

// EvkCount returns how many distinct evaluation keys the transform needs
// (the Fig 1 table's "amount of evks" comparison).
func (b *Builder) EvkCount(k int) int {
	bs := ceilSqrt(k)
	gs := (k + bs - 1) / bs
	switch {
	case b.Opt.MinKS:
		return 2 // rotation-by-1 and rotation-by-bs
	default:
		return bs - 1 + gs - 1 // one per distinct baby and giant rotation
	}
}

// PlaintextBytes returns the total plaintext bytes the transform streams:
// hoisting needs extended-modulus (larger) plaintexts (§III-B).
func (b *Builder) PlaintextBytes(level, k int) float64 {
	if b.Opt.Hoist {
		return float64(k) * b.P.PolyBytes(level+1+b.P.Alpha)
	}
	return float64(k) * b.P.PolyBytes(level+1)
}
