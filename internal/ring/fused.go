package ring

// Fused multiply-accumulate kernels with lazy (2q) reduction. These execute
// the collapsed element-wise blocks produced by the fusion passes (paper §V):
// a PAccum/CAccum chain becomes repeated *AddLazy calls into one accumulator
// held in [0, 2q), and AutAccum becomes AutMulCoeffsAddLazy, which applies
// the NTT-domain automorphism permutation and the multiply-accumulate in a
// single pass instead of materializing the rotated polynomial.
//
// Protocol: accumulator limbs hold lazy values in [0, 2q) between calls;
// the chain must end with ReduceLazy before the polynomial is handed to any
// exact kernel (Add, NTT, serialization, ...). Inputs other than the
// accumulator must be exact residues (< q).

// MulCoeffsAddLazy sets out += a ⊙ b, keeping out in the lazy [0, 2q)
// domain. Single pass over each limb: one Barrett product and one lazy add
// per coefficient, no hardware division, no temporary polynomial.
func (r *Ring) MulCoeffsAddLazy(out, a, b *Poly, level int) {
	forEachLimb(level, func(i int) {
		r.Moduli[i].VecMulAddLazy(out.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	accountRows(bytesMac, 4, level+1, r.N)
}

// AutMulCoeffsAddLazy sets out += σ_g(a) ⊙ b lazily, fusing the NTT-domain
// automorphism into the accumulation (AutAccum): out[j] += a[idx[j]] * b[j].
// Eliminates the rotated temporary and its extra read/write pass. a must be
// in the NTT domain and must not alias out.
func (r *Ring) AutMulCoeffsAddLazy(out, a, b *Poly, g uint64, level int) {
	if !a.IsNTT {
		panic("ring: AutMulCoeffsAddLazy requires NTT domain")
	}
	if out == a {
		panic("ring: AutMulCoeffsAddLazy cannot accumulate in place over its input")
	}
	idx := r.nttAutoIndex(g)
	forEachLimb(level, func(i int) {
		r.Moduli[i].VecMulAddLazyIdx(out.Coeffs[i], a.Coeffs[i], b.Coeffs[i], idx)
	})
	accountRows(bytesMac, 4, level+1, r.N)
}

// MulByLimbScalarsAddLazy sets out += a * s[i] per limb (s already reduced),
// keeping out lazy. This is the constant-multiply-accumulate step of a fused
// CMULT+ADD (CAccum) ladder; the scalar product uses the Shoup trick with
// the correction deferred to ReduceLazy.
func (r *Ring) MulByLimbScalarsAddLazy(out, a *Poly, s []uint64, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		mod.VecMulShoupAddLazy(out.Coeffs[i], a.Coeffs[i], s[i], mod.ShoupPrecomp(s[i]))
	})
	accountRows(bytesMac, 3, level+1, r.N)
}

// SubMulByLimbScalars sets out = (a - b) * s[i] per limb in a single exact
// pass (the fused ModDownEp epilogue of Table II: the subtraction and the
// P^{-1} scaling share one traversal).
func (r *Ring) SubMulByLimbScalars(out, a, b *Poly, s []uint64, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		mod.VecSubMulShoup(out.Coeffs[i], a.Coeffs[i], b.Coeffs[i], s[i], mod.ShoupPrecomp(s[i]))
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesMac, 3, level+1, r.N)
}

// SubMulByLimbScalarsLazy is SubMulByLimbScalars for a lazy subtrahend: b
// may hold [0, 2q) values (e.g. straight out of NTTLazy on a ConvertLazy
// row), a must be exact, out is exact. This lets the fused ModDown epilogue
// consume the lazy BConv-NTT chain without an intermediate reduction pass.
func (r *Ring) SubMulByLimbScalarsLazy(out, a, b *Poly, s []uint64, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		mod.VecSubMulShoupLazy(out.Coeffs[i], a.Coeffs[i], b.Coeffs[i], s[i], mod.ShoupPrecomp(s[i]))
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesMac, 3, level+1, r.N)
}

// ReduceLazy normalizes a lazy accumulator from [0, 2q) back to exact
// residues in [0, q). Every MulCoeffsAddLazy/AutMulCoeffsAddLazy/
// MulByLimbScalarsAddLazy chain must end here.
func (r *Ring) ReduceLazy(p *Poly, level int) {
	forEachLimb(level, func(i int) {
		r.Moduli[i].VecReduceTwoQ(p.Coeffs[i])
	})
	accountRows(bytesReduce, 2, level+1, r.N)
}

// AddMany sets out = ins[0] + ins[1] + ... in a single pass per limb (the
// fused form of an ADD ladder): intermediate sums stay lazy and are reduced
// once at the end, instead of len(ins)-1 separate read-modify-write passes.
// out may alias ins[0]. All inputs must share the domain of ins[0].
func (r *Ring) AddMany(out *Poly, ins []*Poly, level int) {
	if len(ins) == 0 {
		panic("ring: AddMany needs at least one input")
	}
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		oo := out.Coeffs[i]
		first := ins[0].Coeffs[i]
		for j := range oo {
			acc := first[j]
			for _, in := range ins[1:] {
				acc = mod.AddLazy(acc, in.Coeffs[i][j])
			}
			oo[j] = mod.ReduceTwoQ(acc)
		}
	})
	out.IsNTT = ins[0].IsNTT
	accountRows(bytesElemwise, len(ins)+1, level+1, r.N)
}
