package workloads

import (
	"testing"

	"github.com/anaheim-sim/anaheim/internal/trace"
)

func TestDefaultBootLSchedule(t *testing.T) {
	// §VII-A: L changes 2 -> 54 -> 24 during bootstrapping, L_eff = 11.
	p := trace.PaperParams()
	c := DefaultBoot()
	if got := c.BootLevels(); got != 15 {
		t.Fatalf("boot depth = %d levels, want 15 (30 limbs)", got)
	}
	if after := p.L - 2*c.BootLevels(); after != 24 {
		t.Fatalf("post-boot L = %d, want 24", after)
	}
	if got := LEff(p, c); got != 11 {
		t.Fatalf("L_eff = %d, want 11", got)
	}
}

func TestLEffVsFFTIter(t *testing.T) {
	// Fig 3: each fftIter increase drops L_eff.
	p := trace.PaperParams()
	prev := 100
	for _, it := range []int{3, 4, 5, 6} {
		c := DefaultBoot()
		c.FFTIterC2S, c.FFTIterS2C = it, it
		e := LEff(p, c)
		if e >= prev {
			t.Fatalf("L_eff should drop with fftIter: %d -> %d", prev, e)
		}
		prev = e
	}
}

func TestDiagCountStructure(t *testing.T) {
	// Splitting logSlots=15 stages into 4 groups yields group stage counts
	// 4,4,4,3 and diagonal counts 31,31,31,15.
	want := []int{31, 31, 31, 15}
	for i, w := range want {
		if got := DiagCount(15, 4, i); got != w {
			t.Fatalf("DiagCount(15,4,%d) = %d, want %d", i, got, w)
		}
	}
	// One group = the dense DFT (capped at the slot count).
	if got := DiagCount(10, 1, 0); got != 1<<10 {
		t.Fatalf("single-group diagonal count = %d, want full matrix", got)
	}
}

func TestBootstrapTraceProperties(t *testing.T) {
	p := trace.PaperParams()
	bt := Bootstrap(p, trace.AnaheimDefault(), DefaultBoot())
	if bt.LEff != 11 {
		t.Fatalf("trace L_eff = %d", bt.LEff)
	}
	if len(bt.Kernels) < 100 {
		t.Fatalf("bootstrapping should expand to many kernels, got %d", len(bt.Kernels))
	}
	if bt.OneTimeBytes() < 5e9 {
		t.Fatalf("bootstrapping should stream GBs of evks/plaintexts, got %.2fGB", bt.OneTimeBytes()/1e9)
	}
	if bt.TotalBytes() < bt.OneTimeBytes() {
		t.Fatal("one-time traffic cannot exceed total traffic")
	}
}

func TestAllWorkloadsGenerate(t *testing.T) {
	p := trace.PaperParams()
	for _, w := range All() {
		tr := w.Gen(p, trace.GPUBaseline())
		if len(tr.Kernels) == 0 {
			t.Fatalf("%s: empty trace", w.Name)
		}
		if tr.LEff != w.LEff {
			t.Fatalf("%s: L_eff %d != declared %d", w.Name, tr.LEff, w.LEff)
		}
		if _, ok := ByName(w.Name); !ok {
			t.Fatalf("%s: ByName lookup failed", w.Name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName should fail for unknown workloads")
	}
}

func TestFootprints(t *testing.T) {
	// §VIII-B: ResNet20 and ResNet18-AESPA exceed the RTX 4090's 24GB;
	// ResNet18 needs over 40GB. Everything fits in the A100's 80GB.
	p := trace.PaperParams()
	for _, w := range All() {
		gb := FootprintGB(w.Name, p)
		if gb <= 0 || gb > 80 {
			t.Fatalf("%s: footprint %.1fGB outside (0, 80]", w.Name, gb)
		}
	}
	if gb := FootprintGB("ResNet20", p); gb <= 24 {
		t.Fatalf("ResNet20 footprint %.1fGB should exceed 24GB (OoM on RTX 4090)", gb)
	}
	if gb := FootprintGB("ResNet18", p); gb <= 40 {
		t.Fatalf("ResNet18 footprint %.1fGB should exceed 40GB", gb)
	}
	if gb := FootprintGB("Boot", p); gb >= 24 {
		t.Fatalf("Boot footprint %.1fGB should fit the RTX 4090", gb)
	}
}

func TestBootFootprintGrowsWithD(t *testing.T) {
	prev := 0.0
	for _, d := range []int{2, 4, 8} {
		p := trace.PaperParams().WithD(d)
		gb := BootFootprintGB(p, DefaultBoot())
		if gb <= prev {
			t.Fatalf("footprint should grow with D (larger evks): %.1f -> %.1f", prev, gb)
		}
		prev = gb
	}
}

func TestHELRUsesSparseBoot(t *testing.T) {
	// HELR's 196-weight model packs few slots: its bootstrap's linear
	// transforms must be cheaper than the full-slot ones, making the HELR
	// trace's EW share lower (§VII-B).
	p := trace.PaperParams()
	full := Bootstrap(p, trace.GPUBaseline(), DefaultBoot())
	sparse := DefaultBoot()
	sparse.SlotsLog = 8
	sb := Bootstrap(p, trace.GPUBaseline(), sparse)
	if sb.OneTimeBytes() >= full.OneTimeBytes() {
		t.Fatal("sparse-slot bootstrapping should stream less one-time data")
	}
}
