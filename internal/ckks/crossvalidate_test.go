package ckks

import (
	"math/rand"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/trace"
)

// Cross-validation between the two halves of the repository: the simulator's
// kernel traces (internal/trace) claim specific (I)NTT limb-transform counts
// for each CKKS operation; the functional library, instrumented with ring
// counters, must actually perform those counts. This pins the performance
// model to the real algorithms.

// traceParamsFor mirrors the functional parameter shape in the trace layer.
func traceParamsFor(p *Parameters) trace.Params {
	return trace.Params{
		LogN:      p.LogN(),
		N:         p.N(),
		L:         p.MaxLevel() + 1,
		Alpha:     p.Alpha(),
		D:         p.Digits(p.MaxLevel()),
		WordBytes: 8,
	}
}

func TestTraceMatchesFunctionalKeySwitchNTTCount(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	rq := tc.params.RingQ()
	rp := tc.params.RingP()
	r := rand.New(rand.NewSource(110))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	lvl := ct.Level()

	// Functional: count limb transforms of one full HMULT key switch
	// (ModUp + ModDown), excluding the tensor and rescale parts.
	rq.ResetCounters()
	rp.ResetCounters()
	dec := tc.eval.Decompose(ct.C1, lvl)
	u0q, u0p, u1q, u1p := tc.eval.gadgetProduct(dec, tc.keys.Rlk)
	tc.eval.ModDown(u0q, u0p, lvl)
	tc.eval.ModDown(u1q, u1p, lvl)
	nttQ, inttQ := rq.Counters()
	nttP, inttP := rp.Counters()
	functional := float64(nttQ + inttQ + nttP + inttP)

	// Trace prediction: ModUp + KeyMult + ModDown kernels at the same level.
	tp := traceParamsFor(tc.params)
	b := trace.NewBuilder(tp, trace.GPUBaseline(), "ks")
	b.ModUp(lvl)
	b.KeyMult("ks", lvl)
	b.ModDown(lvl, 2)
	predicted := b.T.NTTLimbTransforms()

	if rel := functional/predicted - 1; rel > 0.25 || rel < -0.25 {
		t.Fatalf("trace predicts %.0f limb transforms, functional performs %.0f (rel err %.2f)",
			predicted, functional, rel)
	}
	t.Logf("key switch: trace %.0f vs functional %.0f limb transforms", predicted, functional)
}

func TestTraceMatchesFunctionalHoistingSavings(t *testing.T) {
	// Hoisting's (I)NTT savings must appear in the functional library with
	// the same magnitude the trace predicts: K rotations share one ModUp.
	tc := newTestContext(t, TestParameters())
	rq := tc.params.RingQ()
	rp := tc.params.RingP()
	rots := []int{1, 2, 3, 5, 7, 11}
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, rots)
	r := rand.New(rand.NewSource(111))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))

	count := func(f func()) float64 {
		rq.ResetCounters()
		rp.ResetCounters()
		f()
		nq, iq := rq.Counters()
		np, ip := rp.Counters()
		return float64(nq + iq + np + ip)
	}

	hoisted := count(func() {
		if _, err := tc.eval.RotateHoisted(ct, rots); err != nil {
			t.Fatal(err)
		}
	})
	separate := count(func() {
		for _, k := range rots {
			if _, err := tc.eval.Rotate(ct, k); err != nil {
				t.Fatal(err)
			}
		}
	})
	ratio := separate / hoisted
	// With K=6 rotations sharing one ModUp, the savings ratio should be
	// well above 1 and below K.
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("hoisting savings ratio %.2f implausible", ratio)
	}
	t.Logf("hoisting: %.0f vs %.0f limb transforms (%.2fx saved)", hoisted, separate, ratio)
}
