package ckks

import (
	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Ciphertext is an RLWE pair (C0, C1) in NTT form decrypting to
// C0 + C1·s = ⟨u⟩ + e at the tracked scale.
type Ciphertext struct {
	C0, C1 *ring.Poly
	Scale  float64
}

// Level returns the ciphertext level (limbs - 1).
func (ct *Ciphertext) Level() int { return ct.C0.Level() }

// CopyNew returns a deep copy.
func (ct *Ciphertext) CopyNew() *Ciphertext {
	return &Ciphertext{C0: ct.C0.CopyNew(), C1: ct.C1.CopyNew(), Scale: ct.Scale}
}

// Plaintext couples an encoded polynomial with its scale.
type Plaintext struct {
	Value *ring.Poly
	Scale float64
}

// Level returns the plaintext level.
func (pt *Plaintext) Level() int { return pt.Value.Level() }

// Encryptor encrypts plaintexts under a public or secret key.
type Encryptor struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewEncryptor returns a deterministic encryptor (seeded sampler).
func NewEncryptor(params *Parameters, seed int64) *Encryptor {
	return &Encryptor{params: params, sampler: ring.NewSampler(seed)}
}

// EncryptNew encrypts pt under the public key:
// (C0, C1) = (B·u + e0 + pt, A·u + e1).
func (e *Encryptor) EncryptNew(pt *Plaintext, pk *PublicKey) *Ciphertext {
	p := e.params
	rq := p.RingQ()
	lvl := pt.Level()

	u := e.sampler.TernaryPoly(rq, lvl, p.HDense())
	rq.NTT(u, lvl)
	e0 := e.sampler.GaussianPoly(rq, lvl, p.Sigma())
	rq.NTT(e0, lvl)
	e1 := e.sampler.GaussianPoly(rq, lvl, p.Sigma())
	rq.NTT(e1, lvl)

	c0 := rq.NewPoly(lvl)
	c0.IsNTT = true
	rq.MulCoeffs(c0, pk.B.Truncated(lvl), u, lvl)
	rq.Add(c0, c0, e0, lvl)
	rq.Add(c0, c0, pt.Value, lvl)

	c1 := rq.NewPoly(lvl)
	c1.IsNTT = true
	rq.MulCoeffs(c1, pk.A.Truncated(lvl), u, lvl)
	rq.Add(c1, c1, e1, lvl)

	return &Ciphertext{C0: c0, C1: c1, Scale: pt.Scale}
}

// EncryptSkNew encrypts pt under the secret key (fresh uniform mask, lower
// noise than public-key encryption; used by tests and bootstrapping
// internals).
func (e *Encryptor) EncryptSkNew(pt *Plaintext, sk *SecretKey) *Ciphertext {
	p := e.params
	rq := p.RingQ()
	lvl := pt.Level()

	a := e.sampler.UniformPoly(rq, lvl, true)
	err := e.sampler.GaussianPoly(rq, lvl, p.Sigma())
	rq.NTT(err, lvl)

	c0 := rq.NewPoly(lvl)
	c0.IsNTT = true
	rq.MulCoeffs(c0, a, sk.Q.Truncated(lvl), lvl)
	rq.Neg(c0, c0, lvl)
	rq.Add(c0, c0, err, lvl)
	rq.Add(c0, c0, pt.Value, lvl)

	return &Ciphertext{C0: c0, C1: a, Scale: pt.Scale}
}

// Decryptor recovers plaintexts.
type Decryptor struct {
	params *Parameters
	sk     *SecretKey
}

// NewDecryptor binds a secret key.
func NewDecryptor(params *Parameters, sk *SecretKey) *Decryptor {
	return &Decryptor{params: params, sk: sk}
}

// DecryptNew returns the plaintext C0 + C1·s.
func (d *Decryptor) DecryptNew(ct *Ciphertext) *Plaintext {
	rq := d.params.RingQ()
	lvl := ct.Level()
	m := rq.NewPoly(lvl)
	m.IsNTT = true
	rq.MulCoeffs(m, ct.C1, d.sk.Q.Truncated(lvl), lvl)
	rq.Add(m, m, ct.C0, lvl)
	return &Plaintext{Value: m, Scale: ct.Scale}
}
