// Linear transform: evaluate an encrypted mat-vec product with the paper's
// two algorithms — hoisting (one ModUp for all rotations, §III-B) and MinKS
// (a single rotation key) — and verify both against the plaintext transform.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"github.com/anaheim-sim/anaheim"
)

func main() {
	ctx, err := anaheim.NewContext(anaheim.TestParameters(), 2)
	if err != nil {
		log.Fatal(err)
	}
	slots := ctx.Params.Slots()
	r := rand.New(rand.NewSource(42))

	// A banded matrix in diagonal form: K = 5 nonzero diagonals — the
	// Halevi–Shoup representation used for FHE linear transforms.
	diags := map[int][]complex128{}
	for _, off := range []int{0, 1, 2, 5, 8} {
		d := make([]complex128, slots)
		for j := range d {
			d[j] = complex(2*r.Float64()-1, 2*r.Float64()-1)
		}
		diags[off] = d
	}
	lt := anaheim.NewLinearTransform(slots, diags)

	u := make([]complex128, slots)
	for i := range u {
		u[i] = complex(2*r.Float64()-1, 2*r.Float64()-1)
	}
	want := lt.Apply(u)

	ct, err := ctx.Encrypt(u)
	if err != nil {
		log.Fatal(err)
	}

	// Hoisted evaluation: needs one rotation key per diagonal.
	ctx.GenRotationKeys(lt.Rotations()...)
	hoisted, err := ctx.EvaluateLinearTransform(ct, lt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hoisted:  max error %.3g (%d rotation keys)\n",
		maxErr(ctx.Decrypt(hoisted), want), len(lt.Rotations()))

	// MinKS evaluation: only the rotation-by-one key (4x fewer evks in the
	// paper's Fig 1 table), at the cost of iterated key switches.
	ctx.GenRotationKeys(1)
	minks, err := ctx.EvaluateLinearTransformMinKS(ct, lt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MinKS:    max error %.3g (1 rotation key)\n",
		maxErr(ctx.Decrypt(minks), want))

	if maxErr(ctx.Decrypt(hoisted), want) > 1e-3 || maxErr(ctx.Decrypt(minks), want) > 1e-3 {
		log.Fatal("linear transform error too large")
	}
	fmt.Println("both algorithms match the plaintext transform: OK")
}

func maxErr(got, want []complex128) float64 {
	m := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}
