package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunMicroEmitsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmarks are slow")
	}
	// One NTT grid cell is enough to validate report shape; the full grid
	// belongs to `make micro`, not the test suite.
	prevGrid := nttGrid
	nttGrid.logNs, nttGrid.limbs = []int{12}, []int{1}
	defer func() { nttGrid = prevGrid }()
	prevBConv := bconvGrid
	bconvGrid.logNs, bconvGrid.limbs = []int{12}, []int{4}
	defer func() { bconvGrid = prevBConv }()
	prevKSLevel := ksLevelGrid
	ksLevelGrid.logNs = []int{12}
	ksLevelGrid.levels = ksLevelGrid.levels[:1] // low only; full grid is `make micro`
	defer func() { ksLevelGrid = prevKSLevel }()
	prevTier := tierGrid
	tierGrid.logN, tierGrid.bconvLimbs = 12, 4
	defer func() { tierGrid = prevTier }()
	prevPipe := pipeGrid
	pipeGrid.logN, pipeGrid.limbs = 12, 4
	defer func() { pipeGrid = prevPipe }()
	var sb strings.Builder
	if err := runMicro(&sb, true, "both", true); err != nil {
		t.Fatal(err)
	}
	var rep microReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Results) < 5 {
		t.Fatalf("want >=5 benchmarked ops, got %d", len(rep.Results))
	}
	byOp := make(map[string]microResult, len(rep.Results))
	for _, r := range rep.Results {
		byOp[r.Op] = r
	}
	// The lazy-NTT/Barrett rewrite sped the unfused element-wise kernels
	// ~3x, so at test scale the bootstrap fused/unfused gap sits inside
	// single-iteration timing jitter (bootstrap runs at b.N=1); there the
	// fused path must merely not be materially slower. Lintrans iterates
	// enough for a stable strict ordering.
	for _, pair := range []struct {
		fused, unfused string
		slack          float64
	}{
		{"lintrans-fused", "lintrans-unfused", 1.0},
		{"bootstrap-fused", "bootstrap-unfused", 1.25},
	} {
		f, fok := byOp[pair.fused]
		u, uok := byOp[pair.unfused]
		if !fok || !uok {
			t.Fatalf("-fusion both must emit %v, have %v", pair, rep.Results)
		}
		if f.NsPerOp >= u.NsPerOp*pair.slack {
			t.Errorf("%s (%.0f ns/op) not within %.2fx of %s (%.0f ns/op)",
				pair.fused, f.NsPerOp, pair.slack, pair.unfused, u.NsPerOp)
		}
	}
	for _, r := range rep.Results {
		if r.Op == "" || r.NsPerOp <= 0 {
			t.Fatalf("bad result entry: %+v", r)
		}
	}
	// -membw columns: the traffic model is deterministic, so the pipelined
	// keyswitch row must move strictly fewer bytes than the barriered one and
	// report a positive saved column — no timing jitter involved.
	ksPiped, ksBarr := byOp["keyswitch-pipelined-n12-l4"], byOp["keyswitch-barriered-n12-l4"]
	if ksPiped.MemBytesOp <= 0 || ksBarr.MemBytesOp <= 0 {
		t.Fatalf("-membw must populate memBytesPerOp on the pair rows, got %+v / %+v", ksPiped, ksBarr)
	}
	if ksPiped.MemBytesOp >= ksBarr.MemBytesOp {
		t.Errorf("pipelined keyswitch moves %.0f bytes/op, barriered %.0f — pipelining must cut traffic",
			ksPiped.MemBytesOp, ksBarr.MemBytesOp)
	}
	if ksPiped.MemSavedOp <= 0 {
		t.Errorf("pipelined keyswitch reports no bytes saved: %+v", ksPiped)
	}
	if byOp["ntt_fwd-n12-l1"].MemBytesOp != 0 {
		t.Errorf("unprobed rows must omit the membw column: %+v", byOp["ntt_fwd-n12-l1"])
	}
	// The BSGS pair's key-switch counts are deterministic (counter deltas,
	// no timing): the dense sweep must spend strictly fewer gadget products
	// under the BSGS factorization than under the per-diagonal sweep.
	ltB, ltP := byOp["lintrans-bsgs"], byOp["lintrans-perdiag"]
	if ltB.RotationsOp <= 0 || ltP.RotationsOp <= 0 {
		t.Fatalf("lintrans pair rows missing rotationsPerOp: %+v / %+v", ltB, ltP)
	}
	if ltB.RotationsOp >= ltP.RotationsOp {
		t.Errorf("BSGS spends %.0f key switches/op, per-diagonal %.0f — the factorization must cut rotations",
			ltB.RotationsOp, ltP.RotationsOp)
	}
	if rep.Metrics == nil {
		t.Fatal("-metrics snapshot missing from report")
	}
	if v, ok := rep.Metrics.Counters[`ckks_ops_total{op="mul"}`]; !ok || v <= 0 {
		t.Fatalf("metrics snapshot has no mul count: %v", rep.Metrics.Counters)
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep microReport) string {
		t.Helper()
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", microReport{Results: []microResult{
		{Op: "add", NsPerOp: 100},
		{Op: "mul", NsPerOp: 1000},
	}})
	cand := write("cand.json", microReport{Results: []microResult{
		{Op: "add", NsPerOp: 110},  // +10%: within tolerance
		{Op: "mul", NsPerOp: 1500}, // +50%: regression
		{Op: "rotate", NsPerOp: 5}, // new op: reported, not a regression
	}})

	var sb strings.Builder
	regressed, err := runCompare(&sb, base, cand, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("want regression flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") || !strings.Contains(sb.String(), "mul") {
		t.Fatalf("missing regression marker:\n%s", sb.String())
	}

	sb.Reset()
	regressed, err = runCompare(&sb, base, cand, 60)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("60%% tolerance must pass:\n%s", sb.String())
	}

	if _, err := runCompare(&sb, base, "", 25); err == nil {
		t.Fatal("want error when -against is missing")
	}
	if _, err := runCompare(&sb, dir+"/nosuch.json", cand, 25); err == nil {
		t.Fatal("want error for missing baseline file")
	}
	empty := write("empty.json", microReport{})
	if _, err := runCompare(&sb, empty, cand, 25); err == nil {
		t.Fatal("want error for a report with no results")
	}
	disjoint := write("disjoint.json", microReport{Results: []microResult{
		{Op: "encode", NsPerOp: 10},
	}})
	if _, err := runCompare(&sb, base, disjoint, 25); err == nil {
		t.Fatal("want error when the reports share no benchmark ops")
	}
}

func TestRunMemBWTable(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep microReport) string {
		t.Helper()
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	withCols := write("membw.json", microReport{Results: []microResult{
		{Op: "keyswitch-pipelined-n14-l16", NsPerOp: 100, MemBytesOp: 6 << 20, MemSavedOp: 4 << 20},
		{Op: "keyswitch-barriered-n14-l16", NsPerOp: 150, MemBytesOp: 10 << 20},
		{Op: "rotate", NsPerOp: 50, MemBytesOp: 2 << 20, MemSavedOp: 1 << 20},
		{Op: "ntt_fwd-n14-l1", NsPerOp: 10}, // unprobed: stays out of the table
	}})
	var sb strings.Builder
	if err := runMemBWTable(&sb, withCols); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{
		"keyswitch-·-n14-l16", // paired row under a mode-neutral name
		"| 10.0 | 6.0 | 40% | 1.50x |",
		"| rotate | 2.0 | 1.0 |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("membw table missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "ntt_fwd") {
		t.Errorf("membw table must skip rows without traffic columns:\n%s", got)
	}

	plain := write("plain.json", microReport{Results: []microResult{{Op: "add", NsPerOp: 1}}})
	if err := runMemBWTable(&sb, plain); err == nil {
		t.Fatal("want error for a report without -membw columns")
	}
}

func TestFusionModeFlag(t *testing.T) {
	if err := runMicro(io.Discard, false, "sometimes", false); err == nil {
		t.Fatal("want error for unknown -fusion mode")
	}
	for _, mode := range []string{"both", "on", "off"} {
		if _, err := fusionModes(mode); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}
