// Package report provides text-table formatting and the small statistics
// (geometric means, ratios) used to present experiment results in the shape
// of the paper's tables and figures.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteString("\n")
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		sb.WriteString("  note: " + n + "\n")
	}
	return sb.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given precision.
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// Ms formats nanoseconds as milliseconds.
func Ms(ns float64) string { return fmt.Sprintf("%.2fms", ns/1e6) }

// GB formats bytes as gigabytes.
func GB(b float64) string { return fmt.Sprintf("%.2fGB", b/1e9) }

// X formats a ratio as a multiplier.
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Geomean returns the geometric mean of positive values.
func Geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range vs {
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}

// CSV renders the table as comma-separated values (quoted where needed) for
// downstream plotting.
func (t *Table) CSV() string {
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				sb.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				sb.WriteString(c)
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
