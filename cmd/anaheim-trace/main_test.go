package main

import (
	"strings"
	"testing"
)

func TestRunLinearTransform(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-lt", "8", "-limit", "10"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "trace LT-K8:") {
		t.Fatalf("missing trace header:\n%s", out)
	}
	if !strings.Contains(out, "kernel") || !strings.Contains(out, "start(us)") {
		t.Fatalf("missing kernel table:\n%s", out)
	}
	// the Gantt chart ends the output and is non-empty
	if len(strings.TrimSpace(out)) < 200 {
		t.Fatalf("suspiciously short output:\n%s", out)
	}
}

func TestRunWorkloadTrace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "HELR", "-platform", "a100", "-limit", "5"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "trace HELR") {
		t.Fatalf("missing workload header:\n%s", out)
	}
	if !strings.Contains(out, "GPU") {
		t.Fatalf("missing unit column:\n%s", out)
	}
}

func TestRunTraceErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Fatal("want error when neither -workload nor -lt given")
	}
	if err := run([]string{"-workload", "NoSuch"}, &sb); err == nil {
		t.Fatal("want error for unknown workload")
	}
	if err := run([]string{"-lt", "4", "-platform", "abacus"}, &sb); err == nil {
		t.Fatal("want error for unknown platform")
	}
}
