package ntt

// Transform planning: how a batch of per-limb (I)NTTs is spread over the
// shared worker pool. The old code had a single hard-coded limb-count
// threshold, which left exactly the wrong case serial: few limbs × large N —
// the bottom of the CKKS modulus chain, where bootstrapping spends its time.
// transformPlan instead picks, per (limbs, N, pool width):
//
//   - limb-level parallelism when the batch alone can feed the pool (limbs
//     are independent RNS residues, so this is always safe), with contiguous
//     limb ranges per worker (the rows share one backing array);
//   - intra-polynomial parallelism otherwise, when N is large enough: the
//     transform's outer stages are split S ways — after the first log2(S)
//     stages of the forward transform (resp. before the last log2(S) of the
//     inverse) the array decomposes into S independent sub-transforms, one
//     per worker, with no synchronization beyond a barrier per shared stage;
//   - serial execution when the work is too small to amortize the pool.

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/par"
)

const (
	// limbParMin is the batch size at which limb-level parallelism pays for
	// its synchronization even on wide pools (the old fixed threshold).
	limbParMin = 8
	// splitMinN is the smallest transform worth splitting internally.
	splitMinN = 1 << 13
	// splitMinButterflies is the minimum butterflies per worker per stage;
	// below it the per-stage barrier dominates. chunk = N/(2S).
	splitMinButterflies = 1 << 10
	// splitMax caps the intra-poly fan-out.
	splitMax = 16
)

// plan describes how one batch of limb transforms runs.
type plan struct {
	limbPar bool // spread limbs over the pool, contiguous chunks
	split   int  // intra-poly split width (power of two); < 2 means serial
}

// transformPlan picks the execution strategy for a batch of `limbs`
// transforms of size n on the current pool.
func transformPlan(limbs, n int) plan {
	width := par.Workers()
	if width < 2 || limbs < 1 {
		return plan{}
	}
	if limbs >= width || limbs >= limbParMin {
		return plan{limbPar: true}
	}
	if n >= splitMinN {
		s := 1
		for s<<1 <= width && s<<1 <= splitMax && n/(s<<2) >= splitMinButterflies {
			s <<= 1
		}
		if s > 1 {
			return plan{split: s}
		}
	}
	// Few limbs, small N: limb parallelism still beats serial once there is
	// more than one limb to hand out.
	if limbs > 1 {
		return plan{limbPar: true}
	}
	return plan{}
}

// forwardSplit runs the forward transform with its work split s ways
// (s a power of two, 2 ≤ s ≤ N/4) across the shared pool: the first log2(s)
// stages run with each stage's N/2 butterflies chunked contiguously over s
// workers (barrier per stage), after which the array has decomposed into s
// independent sub-transforms that finish without further synchronization.
func (t *Tables) forwardSplit(a []uint64, s int, lazy bool) {
	n := t.N
	chunk := n / (2 * s) // butterflies per worker per shared stage
	span := n
	for m := 1; m < s; m <<= 1 {
		span >>= 1
		wpb := s / m // workers per twiddle block
		mm, sp := m, span
		par.ForEach(s, func(w int) {
			i := w / wpb
			j1 := 2*i*sp + (w%wpb)*chunk
			t.Mod.VecFwdButterflyLazy(a[j1:j1+chunk], a[j1+sp:j1+sp+chunk],
				t.psiRev[mm+i], t.psiRevShoup[mm+i])
		})
	}
	// span is now n/s; worker c owns blocks [c·m/s, (c+1)·m/s) of every
	// remaining stage, i.e. the c-th contiguous sub-array of length n/s.
	par.ForEach(s, func(c int) {
		sp := n / s
		for m := s; m < n; m <<= 1 {
			sp >>= 1
			bpc := m / s
			t.fwdStage(a, m, sp, c*bpc, (c+1)*bpc, lazy)
		}
	})
}

// inverseSplit mirrors forwardSplit for the inverse transform: s independent
// sub-transforms first (stages m = N/2 … s), then the last log2(s) stages
// with their butterflies chunked over s workers, the final one fused with
// the 1/N scaling.
func (t *Tables) inverseSplit(a []uint64, s int, lazy bool) {
	n := t.N
	chunk := n / (2 * s)
	par.ForEach(s, func(c int) {
		sp := 1
		for m := n >> 1; m >= s; m >>= 1 {
			bpc := m / s
			t.invStage(a, m, sp, c*bpc, (c+1)*bpc)
			sp <<= 1
		}
	})
	for m := s >> 1; m > 1; m >>= 1 {
		span := n / (2 * m)
		wpb := s / m
		mm := m
		par.ForEach(s, func(w int) {
			i := w / wpb
			j1 := 2*i*span + (w%wpb)*chunk
			t.Mod.VecInvButterflyLazy(a[j1:j1+chunk], a[j1+span:j1+span+chunk],
				t.psiInvRev[mm+i], t.psiInvShoup[mm+i])
		})
	}
	par.ForEach(s, func(w int) {
		t.invStageFinal(a, w*chunk, (w+1)*chunk, lazy)
	})
}

func checkBatch(tables []*Tables, rows [][]uint64, op string) {
	if len(tables) != len(rows) {
		panic(fmt.Sprintf("ntt: %s on %d tables, %d rows", op, len(tables), len(rows)))
	}
}

// ForwardMany runs tables[i].Forward(rows[i]) for every limb, parallelized
// according to the transform plan (limb-level, intra-polynomial, or serial).
// Limbs are independent RNS residues, so this is always safe.
func ForwardMany(tables []*Tables, rows [][]uint64) {
	checkBatch(tables, rows, "ForwardMany")
	forwardMany(tables, rows, false)
}

// ForwardManyLazy is ForwardMany with lazy [0, 2q) outputs.
func ForwardManyLazy(tables []*Tables, rows [][]uint64) {
	checkBatch(tables, rows, "ForwardManyLazy")
	forwardMany(tables, rows, true)
}

// InverseMany runs tables[i].Inverse(rows[i]) for every limb, parallelized
// according to the transform plan.
func InverseMany(tables []*Tables, rows [][]uint64) {
	checkBatch(tables, rows, "InverseMany")
	inverseMany(tables, rows, false)
}

// InverseManyLazy is InverseMany with lazy [0, 2q) outputs.
func InverseManyLazy(tables []*Tables, rows [][]uint64) {
	checkBatch(tables, rows, "InverseManyLazy")
	inverseMany(tables, rows, true)
}

func forwardMany(tables []*Tables, rows [][]uint64, lazy bool) {
	if len(rows) == 0 {
		return
	}
	for i := range rows {
		tables[i].checkLen(rows[i], "ForwardMany")
	}
	pl := transformPlan(len(rows), tables[0].N)
	switch {
	case pl.limbPar:
		par.ForEachChunk(len(rows), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tables[i].forward(rows[i], lazy)
			}
		})
	case pl.split > 1:
		for i := range rows {
			tables[i].forwardSplit(rows[i], pl.split, lazy)
		}
	default:
		for i := range rows {
			tables[i].forward(rows[i], lazy)
		}
	}
}

func inverseMany(tables []*Tables, rows [][]uint64, lazy bool) {
	if len(rows) == 0 {
		return
	}
	for i := range rows {
		tables[i].checkLen(rows[i], "InverseMany")
	}
	pl := transformPlan(len(rows), tables[0].N)
	switch {
	case pl.limbPar:
		par.ForEachChunk(len(rows), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				tables[i].inverse(rows[i], lazy)
			}
		})
	case pl.split > 1:
		for i := range rows {
			tables[i].inverseSplit(rows[i], pl.split, lazy)
		}
	default:
		for i := range rows {
			tables[i].inverse(rows[i], lazy)
		}
	}
}
