// Package keycache is a sharded, size-bounded LRU for the serving layer's
// largest per-tenant objects: evaluation-key sets and the session state
// built around them. A production FHE service holds keys for far more
// tenants than fit in memory (a single hybrid key-switching key set is tens
// of megabytes at production parameters), so the session store must behave
// like a cache, not a map:
//
//   - byte accounting: each entry carries its measured size, and the cache
//     evicts least-recently-used entries to stay under a byte budget;
//
//   - sharding: the key space is split across independently locked shards so
//     session lookups on the hot submit path do not serialize behind one
//     mutex;
//
//   - singleflight loading: when an evicted tenant comes back, concurrent
//     requests for its keys materialize them exactly once — every other
//     caller waits for the first load instead of duplicating a multi-second
//     key generation or a storage fetch;
//
//   - pinning: entries referenced by in-flight jobs are pin-counted and
//     never evicted, so a running job's key material cannot vanish under it;
//
//   - observability: hit/miss/eviction/load counters and resident-bytes
//     gauges, exported through the shared obs registry.
//
// The package is generic over the cached value so the engine can cache
// *Session while tests cache small fakes.
package keycache

import (
	"fmt"
	"sync"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

// Config sizes a cache.
type Config struct {
	// Shards is the number of independently locked shards. Defaults to 8.
	Shards int
	// BudgetBytes bounds the total resident size across all shards; 0 means
	// unbounded. The budget is split evenly across shards (the classic
	// sharded-LRU design: global LRU order is approximated per shard).
	BudgetBytes int64
	// Name labels this cache's metrics, e.g. `keycache_hits_total{cache="sessions"}`.
	Name string
	// Obs receives the cache's metrics. Defaults to obs.Default.
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Name == "" {
		c.Name = "default"
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	return c
}

// entry is one resident value with its LRU links and pin count.
type entry[V any] struct {
	key        string
	val        V
	bytes      int64
	pins       int
	prev, next *entry[V] // LRU list: head = most recent
}

// flight is one in-progress load that concurrent callers coalesce onto.
type flight[V any] struct {
	done  chan struct{}
	val   V
	bytes int64
	err   error
}

// shard is one independently locked slice of the key space.
type shard[V any] struct {
	mu      sync.Mutex
	entries map[string]*entry[V]
	flights map[string]*flight[V]
	head    *entry[V] // most recently used
	tail    *entry[V] // least recently used
	bytes   int64
	budget  int64 // 0 = unbounded
}

// Cache is a sharded byte-bounded LRU. Create with New.
type Cache[V any] struct {
	cfg     Config
	shards  []*shard[V]
	onEvict func(key string, val V)

	hits      *obs.Counter
	misses    *obs.Counter
	evictions *obs.Counter
	loads     *obs.Counter
	coalesced *obs.Counter
}

// New builds a cache. onEvict (may be nil) runs synchronously under the
// shard lock whenever an entry is evicted for space — not on Remove or
// Clear, whose callers already hold the value.
func New[V any](cfg Config, onEvict func(key string, val V)) *Cache[V] {
	cfg = cfg.withDefaults()
	c := &Cache[V]{
		cfg:     cfg,
		shards:  make([]*shard[V], cfg.Shards),
		onEvict: onEvict,

		hits:      cfg.Obs.Counter(metricName("keycache_hits_total", cfg.Name)),
		misses:    cfg.Obs.Counter(metricName("keycache_misses_total", cfg.Name)),
		evictions: cfg.Obs.Counter(metricName("keycache_evictions_total", cfg.Name)),
		loads:     cfg.Obs.Counter(metricName("keycache_loads_total", cfg.Name)),
		coalesced: cfg.Obs.Counter(metricName("keycache_loads_coalesced_total", cfg.Name)),
	}
	perShard := int64(0)
	if cfg.BudgetBytes > 0 {
		perShard = cfg.BudgetBytes / int64(cfg.Shards)
		if perShard == 0 {
			perShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i] = &shard[V]{
			entries: make(map[string]*entry[V]),
			flights: make(map[string]*flight[V]),
			budget:  perShard,
		}
	}
	cfg.Obs.GaugeFunc(metricName("keycache_resident_bytes", cfg.Name),
		func() float64 { return float64(c.Bytes()) })
	cfg.Obs.GaugeFunc(metricName("keycache_resident_entries", cfg.Name),
		func() float64 { return float64(c.Len()) })
	return c
}

func metricName(family, cache string) string {
	return fmt.Sprintf(`%s{cache="%s"}`, family, cache)
}

// shardFor hashes a key onto its shard (FNV-1a).
func (c *Cache[V]) shardFor(key string) *shard[V] {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return c.shards[h%uint64(len(c.shards))]
}

// ---------------------------------------------------------------------------
// Shard-local LRU plumbing (all called with sh.mu held).

func (sh *shard[V]) unlink(e *entry[V]) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard[V]) pushFront(e *entry[V]) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard[V]) touch(e *entry[V]) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// insert stores (or replaces) an entry and evicts from the LRU tail until
// the shard is within budget. Pinned entries are never evicted; if only
// pinned entries remain the shard is allowed over budget (correctness wins
// over the bound — an in-flight job must keep its keys).
func (c *Cache[V]) insert(sh *shard[V], key string, val V, bytes int64) *entry[V] {
	if old, ok := sh.entries[key]; ok {
		sh.bytes -= old.bytes
		old.val, old.bytes = val, bytes
		sh.bytes += bytes
		sh.touch(old)
		c.evictOver(sh, old)
		return old
	}
	e := &entry[V]{key: key, val: val, bytes: bytes}
	sh.entries[key] = e
	sh.bytes += bytes
	sh.pushFront(e)
	c.evictOver(sh, e)
	return e
}

// evictOver walks from the LRU tail evicting unpinned entries (other than
// keep) until the shard fits its budget.
func (c *Cache[V]) evictOver(sh *shard[V], keep *entry[V]) {
	if sh.budget <= 0 {
		return
	}
	for e := sh.tail; e != nil && sh.bytes > sh.budget; {
		prev := e.prev
		if e != keep && e.pins == 0 {
			sh.unlink(e)
			delete(sh.entries, e.key)
			sh.bytes -= e.bytes
			c.evictions.Inc()
			if c.onEvict != nil {
				c.onEvict(e.key, e.val)
			}
		}
		e = prev
	}
}

// ---------------------------------------------------------------------------
// Public operations

// Put inserts or replaces a value with its measured size, evicting LRU
// entries as needed to stay under budget.
func (c *Cache[V]) Put(key string, val V, bytes int64) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	c.insert(sh, key, val, bytes)
}

// Get returns the resident value for key, marking it most recently used.
func (c *Cache[V]) Get(key string) (V, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		sh.touch(e)
		c.hits.Inc()
		return e.val, true
	}
	c.misses.Inc()
	var zero V
	return zero, false
}

// GetOrLoad returns the resident value or materializes it via load,
// coalescing concurrent loads of the same key onto a single call. load runs
// without the shard lock held and returns the value with its measured size;
// on success the value is inserted (evicting as needed).
func (c *Cache[V]) GetOrLoad(key string, load func() (V, int64, error)) (V, error) {
	v, _, err := c.acquire(key, load, false)
	return v, err
}

// Acquire is GetOrLoad plus an atomic pin: the returned value's entry has
// its pin count incremented before the shard lock is released, so it cannot
// be evicted until the matching Unpin. Callers must pair every successful
// Acquire with exactly one Unpin.
func (c *Cache[V]) Acquire(key string, load func() (V, int64, error)) (V, error) {
	v, _, err := c.acquire(key, load, true)
	return v, err
}

func (c *Cache[V]) acquire(key string, load func() (V, int64, error), pin bool) (V, int64, error) {
	sh := c.shardFor(key)
	for {
		sh.mu.Lock()
		if e, ok := sh.entries[key]; ok {
			sh.touch(e)
			if pin {
				e.pins++
			}
			c.hits.Inc()
			v, n := e.val, e.bytes
			sh.mu.Unlock()
			return v, n, nil
		}
		if f, ok := sh.flights[key]; ok {
			// Another goroutine is loading this key: wait for it, then loop
			// to find (and possibly pin) the inserted entry. Looping rather
			// than returning f.val directly keeps the pin atomic with
			// residency.
			sh.mu.Unlock()
			c.coalesced.Inc()
			<-f.done
			if f.err != nil {
				var zero V
				return zero, 0, f.err
			}
			if !pin {
				return f.val, f.bytes, nil
			}
			continue
		}
		if load == nil {
			c.misses.Inc()
			sh.mu.Unlock()
			var zero V
			return zero, 0, fmt.Errorf("keycache: %q not resident and no loader", key)
		}
		f := &flight[V]{done: make(chan struct{})}
		sh.flights[key] = f
		c.misses.Inc()
		sh.mu.Unlock()

		v, n, err := load()
		sh.mu.Lock()
		delete(sh.flights, key)
		if err == nil {
			e := c.insert(sh, key, v, n)
			if pin {
				e.pins++
			}
			c.loads.Inc()
		}
		f.val, f.bytes, f.err = v, n, err
		close(f.done)
		sh.mu.Unlock()
		if err != nil {
			var zero V
			return zero, 0, err
		}
		return v, n, nil
	}
}

// Pin increments the pin count of a resident entry, reporting whether the
// key was resident. Pinned entries are never evicted.
func (c *Cache[V]) Pin(key string) bool {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if ok {
		e.pins++
	}
	return ok
}

// Unpin decrements the pin count. Unpinning a non-resident key (removed
// while pinned) is a no-op.
func (c *Cache[V]) Unpin(key string) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok && e.pins > 0 {
		e.pins--
	}
}

// Remove deletes an entry regardless of pins (callers holding references
// keep them; the bytes just stop being accounted). Returns the removed
// value, if any.
func (c *Cache[V]) Remove(key string) (V, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		var zero V
		return zero, false
	}
	sh.unlink(e)
	delete(sh.entries, key)
	sh.bytes -= e.bytes
	return e.val, true
}

// Clear removes every entry, invoking fn (may be nil) on each — the
// deterministic-release hook Engine.Close uses to drop key material.
func (c *Cache[V]) Clear(fn func(key string, val V)) {
	for _, sh := range c.shards {
		sh.mu.Lock()
		for key, e := range sh.entries {
			if fn != nil {
				fn(key, e.val)
			}
			delete(sh.entries, key)
		}
		sh.head, sh.tail, sh.bytes = nil, nil, 0
		sh.mu.Unlock()
	}
}

// Range calls fn on every resident entry until fn returns false. Entries
// are visited in no particular order; fn must not call back into the cache.
func (c *Cache[V]) Range(fn func(key string, val V) bool) {
	for _, sh := range c.shards {
		sh.mu.Lock()
		for key, e := range sh.entries {
			if !fn(key, e.val) {
				sh.mu.Unlock()
				return
			}
		}
		sh.mu.Unlock()
	}
}

// Len returns the number of resident entries.
func (c *Cache[V]) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the total resident size.
func (c *Cache[V]) Bytes() int64 {
	var n int64
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}
