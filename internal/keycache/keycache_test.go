package keycache

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

func newTestCache(t *testing.T, budget int64, shards int) (*Cache[string], *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	c := New[string](Config{
		Shards:      shards,
		BudgetBytes: budget,
		Name:        "test",
		Obs:         reg,
	}, nil)
	return c, reg
}

func TestPutGetTouch(t *testing.T) {
	c, reg := newTestCache(t, 0, 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache returned a hit")
	}
	c.Put("a", "va", 10)
	c.Put("b", "vb", 20)
	if v, ok := c.Get("a"); !ok || v != "va" {
		t.Fatalf("Get(a) = %q, %v", v, ok)
	}
	if got := c.Bytes(); got != 30 {
		t.Fatalf("Bytes() = %d, want 30", got)
	}
	if got := c.Len(); got != 2 {
		t.Fatalf("Len() = %d, want 2", got)
	}
	// Replacing re-accounts bytes.
	c.Put("a", "va2", 15)
	if got := c.Bytes(); got != 35 {
		t.Fatalf("Bytes() after replace = %d, want 35", got)
	}
	snap := reg.Snapshot()
	if snap.Counters[`keycache_hits_total{cache="test"}`] != 1 ||
		snap.Counters[`keycache_misses_total{cache="test"}`] != 1 {
		t.Fatalf("hit/miss counters wrong: %v", snap.Counters)
	}
}

// TestLRUEvictionUnderBudget verifies least-recently-used entries are evicted
// first when the byte budget is exceeded, and that eviction metrics and the
// onEvict hook fire.
func TestLRUEvictionUnderBudget(t *testing.T) {
	reg := obs.NewRegistry()
	var evicted []string
	c := New[string](Config{Shards: 1, BudgetBytes: 100, Name: "evict", Obs: reg},
		func(key string, _ string) { evicted = append(evicted, key) })

	c.Put("a", "va", 40)
	c.Put("b", "vb", 40)
	c.Get("a") // a is now more recent than b
	c.Put("c", "vc", 40)

	if _, ok := c.Get("b"); ok {
		t.Fatal("b (LRU) should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a (recently used) must survive")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c (just inserted) must survive")
	}
	if len(evicted) != 1 || evicted[0] != "b" {
		t.Fatalf("evicted = %v, want [b]", evicted)
	}
	if c.Bytes() != 80 {
		t.Fatalf("Bytes() = %d, want 80", c.Bytes())
	}
	if got := reg.Snapshot().Counters[`keycache_evictions_total{cache="evict"}`]; got != 1 {
		t.Fatalf("evictions counter = %v, want 1", got)
	}
}

// TestPinnedNeverEvicted verifies pinned entries survive even when the shard
// is over budget, and become evictable again after Unpin.
func TestPinnedNeverEvicted(t *testing.T) {
	c, _ := newTestCache(t, 100, 1)
	c.Put("a", "va", 60)
	if !c.Pin("a") {
		t.Fatal("Pin(a) on resident entry failed")
	}
	c.Put("b", "vb", 60) // over budget: a is LRU but pinned, so b fits by exceeding budget
	if _, ok := c.Get("a"); !ok {
		t.Fatal("pinned entry was evicted")
	}
	c.Unpin("a")
	c.Put("c", "vc", 60) // now a (LRU, unpinned) goes
	if _, ok := c.Get("a"); ok {
		t.Fatal("unpinned LRU entry should have been evicted")
	}
}

// TestSingleflightExactlyOnce is the acceptance gate: after an eviction, 100
// concurrent requesters for the same key must run the loader exactly once,
// with every requester observing the loaded value.
func TestSingleflightExactlyOnce(t *testing.T) {
	c, reg := newTestCache(t, 1<<20, 4)
	c.Put("tenant", "v0", 100)
	c.Remove("tenant") // simulate eviction

	var loads atomic.Int64
	release := make(chan struct{})
	load := func() (string, int64, error) {
		loads.Add(1)
		<-release // hold the flight open so every requester piles onto it
		return "vloaded", 100, nil
	}

	const requesters = 100
	var wg sync.WaitGroup
	errs := make(chan error, requesters)
	started := make(chan struct{}, requesters)
	for i := 0; i < requesters; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started <- struct{}{}
			v, err := c.Acquire("tenant", load)
			if err != nil {
				errs <- err
				return
			}
			if v != "vloaded" {
				errs <- fmt.Errorf("got %q, want vloaded", v)
				return
			}
			c.Unpin("tenant")
		}()
	}
	for i := 0; i < requesters; i++ {
		<-started
	}
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if n := loads.Load(); n != 1 {
		t.Fatalf("loader ran %d times, want exactly 1", n)
	}
	snap := reg.Snapshot()
	if snap.Counters[`keycache_loads_total{cache="test"}`] != 1 {
		t.Fatalf("loads counter = %v, want 1", snap.Counters)
	}
}

func TestGetOrLoadError(t *testing.T) {
	c, _ := newTestCache(t, 0, 2)
	wantErr := fmt.Errorf("storage down")
	if _, err := c.GetOrLoad("k", func() (string, int64, error) { return "", 0, wantErr }); err != wantErr {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// A failed load leaves nothing resident and a later load can succeed.
	if c.Len() != 0 {
		t.Fatalf("failed load left %d entries resident", c.Len())
	}
	v, err := c.GetOrLoad("k", func() (string, int64, error) { return "ok", 5, nil })
	if err != nil || v != "ok" {
		t.Fatalf("retry after failed load: %q, %v", v, err)
	}
	// No loader and not resident is a typed miss.
	if _, err := c.GetOrLoad("missing", nil); err == nil || !strings.Contains(err.Error(), "no loader") {
		t.Fatalf("nil loader miss: %v", err)
	}
}

func TestRemoveAndClear(t *testing.T) {
	c, _ := newTestCache(t, 0, 4)
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("k%d", i), "v", 8)
	}
	if v, ok := c.Remove("k7"); !ok || v != "v" {
		t.Fatalf("Remove(k7) = %q, %v", v, ok)
	}
	if _, ok := c.Get("k7"); ok {
		t.Fatal("removed entry still resident")
	}
	// Remove while pinned is allowed: the caller keeps its reference, the
	// cache just stops accounting the bytes.
	c.Pin("k8")
	if _, ok := c.Remove("k8"); !ok {
		t.Fatal("Remove of pinned entry failed")
	}
	c.Unpin("k8") // no-op on non-resident key

	var cleared []string
	c.Clear(func(key string, _ string) { cleared = append(cleared, key) })
	if c.Len() != 0 || c.Bytes() != 0 {
		t.Fatalf("Clear left %d entries / %d bytes", c.Len(), c.Bytes())
	}
	if len(cleared) != 30 {
		t.Fatalf("Clear visited %d entries, want 30", len(cleared))
	}
}

// TestConcurrentChurn hammers every operation from many goroutines; run
// under -race this is the cache's concurrency-safety gate.
func TestConcurrentChurn(t *testing.T) {
	c, _ := newTestCache(t, 4096, 8)
	const workers = 16
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w*31+i)%64)
				switch i % 5 {
				case 0:
					c.Put(key, key, int64(64+i%128))
				case 1:
					c.Get(key)
				case 2:
					v, err := c.Acquire(key, func() (string, int64, error) { return key, 64, nil })
					if err == nil && v != key {
						t.Errorf("Acquire(%s) = %q", key, v)
					}
					if err == nil {
						c.Unpin(key)
					}
				case 3:
					c.Remove(key)
				case 4:
					c.Bytes()
					c.Len()
				}
			}
		}()
	}
	wg.Wait()
	c.Range(func(key, val string) bool {
		if key != val {
			t.Errorf("entry %q holds %q", key, val)
		}
		return true
	})
}
