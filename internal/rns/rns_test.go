package rns

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

func mustModuli(t testing.TB, bits, logN, count int) []modarith.Modulus {
	t.Helper()
	primes, err := modarith.GenerateNTTPrimes(bits, logN, count)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]modarith.Modulus, count)
	for i, q := range primes {
		out[i] = modarith.MustModulus(q)
	}
	return out
}

func basisProduct(ms []modarith.Modulus) *big.Int {
	p := big.NewInt(1)
	for _, m := range ms {
		p.Mul(p, new(big.Int).SetUint64(m.Q))
	}
	return p
}

func decompose(x *big.Int, ms []modarith.Modulus, n, col int, rows [][]uint64) {
	for i, m := range ms {
		rows[i][col] = new(big.Int).Mod(x, new(big.Int).SetUint64(m.Q)).Uint64()
	}
	_ = n
}

func TestConvertMatchesBigInt(t *testing.T) {
	from := mustModuli(t, 45, 10, 4)
	to := mustModuli(t, 50, 10, 3)
	bc, err := NewBasisConverter(from, to)
	if err != nil {
		t.Fatal(err)
	}
	n := 8
	in := make([][]uint64, len(from))
	for i := range in {
		in[i] = make([]uint64, n)
	}
	out := make([][]uint64, len(to))
	for i := range out {
		out[i] = make([]uint64, n)
	}
	r := rand.New(rand.NewSource(1))
	Q := basisProduct(from)
	xs := make([]*big.Int, n)
	for c := 0; c < n; c++ {
		x := new(big.Int).Rand(r, Q)
		xs[c] = x
		decompose(x, from, n, c, in)
	}
	bc.Convert(out, in)

	// Expected: v = Σ_i [x·qHatInv_i]_{q_i}·(Q/q_i); check v ≡ x (mod Q),
	// v < k·Q, and out_j = v mod p_j.
	for c := 0; c < n; c++ {
		v := big.NewInt(0)
		for i, qi := range from {
			term := new(big.Int).SetUint64(qi.Mul(in[i][c], bc.qHatInv[i]))
			qHat := new(big.Int).Div(Q, new(big.Int).SetUint64(qi.Q))
			v.Add(v, term.Mul(term, qHat))
		}
		if new(big.Int).Mod(v, Q).Cmp(xs[c]) != 0 {
			t.Fatalf("col %d: v mod Q != x", c)
		}
		if v.Cmp(new(big.Int).Mul(Q, big.NewInt(int64(len(from))))) >= 0 {
			t.Fatalf("col %d: overflow multiple too large", c)
		}
		for j, pj := range to {
			want := new(big.Int).Mod(v, new(big.Int).SetUint64(pj.Q)).Uint64()
			if out[j][c] != want {
				t.Fatalf("col %d target %d: got %d want %d", c, j, out[j][c], want)
			}
		}
	}
}

func TestConvertOffsetIsSmallMultipleOfQ(t *testing.T) {
	// The fast conversion returns x + e·Q with a single 0 ≤ e < k consistent
	// across all target primes (§II-B approximate BConv).
	from := mustModuli(t, 45, 8, 3)
	to := mustModuli(t, 50, 8, 2)
	bc, err := NewBasisConverter(from, to)
	if err != nil {
		t.Fatal(err)
	}
	Q := basisProduct(from)
	f := func(raw uint64) bool {
		x := new(big.Int).Mod(new(big.Int).SetUint64(raw), Q)
		in := make([][]uint64, len(from))
		for i := range in {
			in[i] = []uint64{new(big.Int).Mod(x, new(big.Int).SetUint64(from[i].Q)).Uint64()}
		}
		out := make([][]uint64, len(to))
		for i := range out {
			out[i] = []uint64{0}
		}
		bc.Convert(out, in)
		for e := int64(0); e < int64(len(from)); e++ {
			v := new(big.Int).Add(x, new(big.Int).Mul(Q, big.NewInt(e)))
			ok := true
			for j := range to {
				if out[j][0] != new(big.Int).Mod(v, new(big.Int).SetUint64(to[j].Q)).Uint64() {
					ok = false
					break
				}
			}
			if ok {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDivRoundByLastModulus(t *testing.T) {
	ms := mustModuli(t, 45, 8, 4)
	Q := basisProduct(ms)
	qL := new(big.Int).SetUint64(ms[len(ms)-1].Q)
	n := 16
	r := rand.New(rand.NewSource(5))
	rows := make([][]uint64, len(ms))
	for i := range rows {
		rows[i] = make([]uint64, n)
	}
	xs := make([]*big.Int, n)
	for c := 0; c < n; c++ {
		x := new(big.Int).Rand(r, Q)
		xs[c] = x
		decompose(x, ms, n, c, rows)
	}
	DivRoundByLastModulus(ms, rows)
	for c := 0; c < n; c++ {
		// round(x/qL) = floor((x + qL/2)/qL)
		want := new(big.Int).Add(xs[c], new(big.Int).Rsh(qL, 1))
		want.Div(want, qL)
		for i := 0; i < len(ms)-1; i++ {
			w := new(big.Int).Mod(want, new(big.Int).SetUint64(ms[i].Q)).Uint64()
			if rows[i][c] != w {
				t.Fatalf("col %d limb %d: got %d want %d", c, i, rows[i][c], w)
			}
		}
	}
}

func TestProductModAndInv(t *testing.T) {
	p := mustModuli(t, 45, 8, 2)
	q := mustModuli(t, 50, 8, 3)
	pm := ProductMod(p, q)
	pinv := ProductInvMod(p, q)
	for j, qj := range q {
		if qj.Mul(pm[j], pinv[j]) != 1 {
			t.Fatalf("P * P^{-1} != 1 mod q_%d", j)
		}
		want := new(big.Int).Mod(basisProduct(p), new(big.Int).SetUint64(qj.Q)).Uint64()
		if pm[j] != want {
			t.Fatalf("ProductMod wrong at %d", j)
		}
	}
}

func TestNewBasisConverterRejectsDuplicates(t *testing.T) {
	ms := mustModuli(t, 45, 8, 2)
	dup := []modarith.Modulus{ms[0], ms[0]}
	if _, err := NewBasisConverter(dup, ms); err == nil {
		t.Fatal("expected error for duplicate primes")
	}
	if _, err := NewBasisConverter(nil, ms); err == nil {
		t.Fatal("expected error for empty basis")
	}
}
