package ckks

import (
	"math/bits"
	"math/rand"
	"testing"
)

// applyGroups applies grouped LTs in order on a plaintext vector.
func applyGroups(groups []*LinearTransform, v []complex128) []complex128 {
	out := append([]complex128(nil), v...)
	for _, g := range groups {
		out = g.Apply(out)
	}
	return out
}

func bitrevVec(v []complex128) []complex128 {
	n := len(v)
	logN := bits.Len(uint(n)) - 1
	out := make([]complex128, n)
	for i := range v {
		out[int(bits.Reverse64(uint64(i))>>uint(64-logN))] = v[i]
	}
	return out
}

func TestC2SMatricesMatchSpecialIFFT(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	n := tc.params.Slots()
	r := rand.New(rand.NewSource(50))
	u := randomComplex(r, n, 1)
	// Reference: C2S(u) = bitrev(specialIFFT(u)) (z in bit-reversed order).
	z := append([]complex128(nil), u...)
	tc.enc.specialIFFT(z)
	want := bitrevVec(z)
	for _, fftIter := range []int{1, 2, 3, len(want)} {
		groups := tc.enc.CoeffToSlotMatrices(fftIter)
		got := applyGroups(groups, u)
		if e := maxErr(got, want); e > 1e-9 {
			t.Fatalf("fftIter=%d: C2S matrices error %g", fftIter, e)
		}
	}
}

func TestS2CInvertsC2S(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	n := tc.params.Slots()
	r := rand.New(rand.NewSource(51))
	u := randomComplex(r, n, 1)
	for _, fftIter := range []int{1, 3} {
		c2s := tc.enc.CoeffToSlotMatrices(fftIter)
		s2c := tc.enc.SlotToCoeffMatrices(fftIter)
		round := applyGroups(s2c, applyGroups(c2s, u))
		if e := maxErr(round, u); e > 1e-9 {
			t.Fatalf("fftIter=%d: S2C∘C2S error %g", fftIter, e)
		}
	}
}

func TestGroupedMatricesDiagonalCounts(t *testing.T) {
	// Composing g radix-2 stages (offsets 0, ±2^k) yields at most 2^{g+1}-1
	// diagonals; fewer groups should have more diagonals per group. This is
	// the fftIter trade-off of §IV-C.
	tc := newTestContext(t, TestParameters())
	logn := tc.params.LogN() - 1
	for _, fftIter := range []int{1, 2, 3} {
		groups := tc.enc.CoeffToSlotMatrices(fftIter)
		if len(groups) != fftIter {
			t.Fatalf("expected %d groups, got %d", fftIter, len(groups))
		}
		for _, g := range groups {
			gStages := (logn + fftIter - 1) / fftIter
			bound := 1<<(uint(gStages)+1) - 1
			if len(g.Diags) > bound {
				t.Fatalf("fftIter=%d: group has %d diagonals, bound %d", fftIter, len(g.Diags), bound)
			}
		}
	}
}

func TestHomomorphicC2SThenS2C(t *testing.T) {
	// Full homomorphic round trip of the two transforms (no EvalMod):
	// slots -> (coeff packing in slots, bit-reversed) -> slots.
	tc := newTestContext(t, TestParameters())
	fftIter := 2
	c2s := tc.enc.CoeffToSlotMatrices(fftIter)
	s2c := tc.enc.SlotToCoeffMatrices(fftIter)
	rotSet := map[int]bool{}
	for _, g := range append(append([]*LinearTransform{}, c2s...), s2c...) {
		for _, r := range g.Rotations() {
			rotSet[r] = true
		}
	}
	rots := make([]int, 0, len(rotSet))
	for r := range rotSet {
		rots = append(rots, r)
	}
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, rots)

	r := rand.New(rand.NewSource(52))
	u := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, u)
	for _, g := range c2s {
		var err error
		ct, err = tc.eval.EvaluateLinearTransformHoisted(ct, g, tc.enc)
		if err != nil {
			t.Fatal(err)
		}
		ct = tc.eval.Rescale(ct)
	}
	for _, g := range s2c {
		var err error
		ct, err = tc.eval.EvaluateLinearTransformHoisted(ct, g, tc.enc)
		if err != nil {
			t.Fatal(err)
		}
		ct = tc.eval.Rescale(ct)
	}
	if e := maxErr(tc.decryptVec(ct), u); e > 1e-3 {
		t.Fatalf("homomorphic S2C∘C2S error %g", e)
	}
}
