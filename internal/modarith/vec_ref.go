package modarith

import "math/bits"

// Pure-Go row kernels. These are the bodies the public Vec* methods in
// vec.go dispatched to before the assembly tiers existed, kept verbatim as
// (a) the only implementation under the `noasm` build tag and on
// architectures without an assembly tier, (b) the per-kernel fallback for
// tiers that implement a subset of the kernel table, and (c) the
// differential oracle every assembly tier is swept against (the same ref.go
// role internal/ntt and internal/rns use for their retired scalar kernels).
//
// Every assembly implementation must be BIT-IDENTICAL to these on all
// inputs, including the lazy-domain representatives: the [0, 2q) kernels
// must compute the same Barrett quotient t (the same three partial products,
// dropping the same low-word carries), not merely a congruent residue.
// DESIGN.md §3.12 spells out the contract.

func vecMulAddLazyGo(m Modulus, out, a, b []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		xhi, xlo := bits.Mul64(a[j], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		s := out[j] + r
		if s >= twoQ {
			s -= twoQ
		}
		out[j] = s
	}
}

func vecMulAddLazyIdxGo(m Modulus, out, a, b []uint64, idx []uint32) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(idx)-1]
	_ = b[len(idx)-1]
	for j, k := range idx {
		xhi, xlo := bits.Mul64(a[k], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		s := out[j] + r
		if s >= twoQ {
			s -= twoQ
		}
		out[j] = s
	}
}

func vecMulBarrettGo(m Modulus, out, a, b []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		xhi, xlo := bits.Mul64(a[j], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

func vecMulAddBarrettGo(m Modulus, out, a, b []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		xhi, xlo := bits.Mul64(a[j], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		s := out[j] + r
		if s >= q {
			s -= q
		}
		out[j] = s
	}
}

func vecMulSubBarrettGo(m Modulus, out, a, b []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		xhi, xlo := bits.Mul64(a[j], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		d := out[j] - r
		if d > out[j] {
			d += q
		}
		out[j] = d
	}
}

func vecMulShoupGo(m Modulus, out, a []uint64, w, wShoup uint64) {
	q := m.Q
	_ = out[len(a)-1]
	for j := range a {
		hi, _ := bits.Mul64(a[j], wShoup)
		r := a[j]*w - hi*q
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

func vecSubMulShoupLazyGo(m Modulus, out, a, b []uint64, w, wShoup uint64) {
	q, twoQ := m.Q, m.TwoQ
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		d := a[j] + twoQ - b[j]
		hi, _ := bits.Mul64(d, wShoup)
		r := d*w - hi*q
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

func vecRescaleStepGo(m Modulus, row, t []uint64, halfModQ, w, wShoup uint64) {
	q, u0 := m.Q, m.BRedHi
	fourQ := 4 * q
	_ = t[len(row)-1]
	for j := range row {
		th, _ := bits.Mul64(t[j], u0)
		tm := t[j] - th*q // ≡ t[j] (mod q), in [0, 4q)
		v := row[j] + halfModQ + fourQ - tm
		hi, _ := bits.Mul64(v, wShoup)
		r := v*w - hi*q
		if r >= q {
			r -= q
		}
		row[j] = r
	}
}

func vecReduceTwoQGo(m Modulus, p []uint64) {
	q := m.Q
	for j := range p {
		if p[j] >= q {
			p[j] -= q
		}
	}
}

// vecFwdButterflyGo applies the Harvey Cooley–Tukey butterfly pairwise over
// the re-sliced halves x and y of one NTT block:
//
//	x' = x̃ + w·y,  y' = x̃ - w·y + 2q,  x̃ = x - 2q·[x ≥ 2q]
//
// Inputs and outputs live in [0, 4q); w·y ∈ [0, 2q) by the MulShoupLazy
// bound for any y. len(x) == len(y) must be a positive multiple of 4 (the
// loop is 4x unrolled for ILP; the NTT's span-1/2 stages have dedicated
// scalar kernels in internal/ntt).
func vecFwdButterflyGo(m Modulus, x, y []uint64, w, ws uint64) {
	q, twoQ := m.Q, m.TwoQ
	y = y[:len(x)]
	for j := 0; j < len(x); j += 4 {
		xx := x[j : j+4 : j+4]
		yy := y[j : j+4 : j+4]
		u0, u1, u2, u3 := xx[0], xx[1], xx[2], xx[3]
		v0, v1, v2, v3 := yy[0], yy[1], yy[2], yy[3]
		if u0 >= twoQ {
			u0 -= twoQ
		}
		if u1 >= twoQ {
			u1 -= twoQ
		}
		if u2 >= twoQ {
			u2 -= twoQ
		}
		if u3 >= twoQ {
			u3 -= twoQ
		}
		h0, _ := bits.Mul64(v0, ws)
		h1, _ := bits.Mul64(v1, ws)
		h2, _ := bits.Mul64(v2, ws)
		h3, _ := bits.Mul64(v3, ws)
		v0 = v0*w - h0*q
		v1 = v1*w - h1*q
		v2 = v2*w - h2*q
		v3 = v3*w - h3*q
		xx[0], yy[0] = u0+v0, u0-v0+twoQ
		xx[1], yy[1] = u1+v1, u1-v1+twoQ
		xx[2], yy[2] = u2+v2, u2-v2+twoQ
		xx[3], yy[3] = u3+v3, u3-v3+twoQ
	}
}

// vecInvButterflyGo applies the Harvey Gentleman–Sande butterfly pairwise
// over the re-sliced halves x and y of one NTT block:
//
//	x' = (x + y) - 2q·[x+y ≥ 2q],  y' = (x - y + 2q)·w  (MulShoupLazy)
//
// Inputs and outputs live in [0, 2q). len(x) == len(y) must be a positive
// multiple of 4.
func vecInvButterflyGo(m Modulus, x, y []uint64, w, ws uint64) {
	q, twoQ := m.Q, m.TwoQ
	y = y[:len(x)]
	for j := 0; j < len(x); j += 4 {
		xx := x[j : j+4 : j+4]
		yy := y[j : j+4 : j+4]
		u0, u1, u2, u3 := xx[0], xx[1], xx[2], xx[3]
		v0, v1, v2, v3 := yy[0], yy[1], yy[2], yy[3]
		s0, s1, s2, s3 := u0+v0, u1+v1, u2+v2, u3+v3
		if s0 >= twoQ {
			s0 -= twoQ
		}
		if s1 >= twoQ {
			s1 -= twoQ
		}
		if s2 >= twoQ {
			s2 -= twoQ
		}
		if s3 >= twoQ {
			s3 -= twoQ
		}
		d0, d1, d2, d3 := u0-v0+twoQ, u1-v1+twoQ, u2-v2+twoQ, u3-v3+twoQ
		h0, _ := bits.Mul64(d0, ws)
		h1, _ := bits.Mul64(d1, ws)
		h2, _ := bits.Mul64(d2, ws)
		h3, _ := bits.Mul64(d3, ws)
		xx[0], yy[0] = s0, d0*w-h0*q
		xx[1], yy[1] = s1, d1*w-h1*q
		xx[2], yy[2] = s2, d2*w-h2*q
		xx[3], yy[3] = s3, d3*w-h3*q
	}
}
