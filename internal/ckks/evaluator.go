package ckks

import (
	"fmt"
	"math"
	"math/big"
	"sync"
	"time"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/ring"
	"github.com/anaheim-sim/anaheim/internal/rns"
)

// Evaluator executes homomorphic operations: the basic functions HADD,
// PMULT, HMULT and HROT of §II-A and the primitives they decompose into
// (ModUp, KeyMult, MAC, automorphism, ModDown, rescaling).
type Evaluator struct {
	params *Parameters
	keys   *EvaluationKeySet

	mu         sync.Mutex
	digitConv  map[digitConvKey]*rns.BasisConverter // digit group -> Q_level ∪ P_alpha
	pToQConv   map[pToQKey]*rns.BasisConverter      // P_alpha -> Q_level
	rescalers  map[int]*rns.Rescaler                // level -> cached rescale constants
	pInvModQ   [][]uint64                           // alpha -> P_alpha^{-1} mod q_i (full chain)
	monomialNT map[int]*ring.Poly                   // level -> NTT(X^{N/2})

	rowsPool sync.Pool // *[][]uint64: Decompose's per-digit BConv target headers
}

// digitConvKey identifies one ModUp digit converter: the gadget shape
// (alpha, width) changes both the source limb group and the P extension.
type digitConvKey struct {
	level, digit, alpha, width int
}

// pToQKey identifies a ModDown converter: the source basis is the P prefix
// p_0···p_{alpha-1}.
type pToQKey struct {
	level, alpha int
}

// NewEvaluator binds a key set (which may be extended later; the map is
// shared).
func NewEvaluator(params *Parameters, keys *EvaluationKeySet) *Evaluator {
	ev := &Evaluator{
		params:     params,
		keys:       keys,
		digitConv:  make(map[digitConvKey]*rns.BasisConverter),
		pToQConv:   make(map[pToQKey]*rns.BasisConverter),
		rescalers:  make(map[int]*rns.Rescaler),
		monomialNT: make(map[int]*ring.Poly),
	}
	// P_alpha^{-1} mod q_i for every prefix length the plans may use,
	// computed eagerly so the hot paths never take the lock for them.
	aTop := params.Alpha()
	ev.pInvModQ = make([][]uint64, aTop+1)
	for a := 1; a <= aTop; a++ {
		ev.pInvModQ[a] = rns.ProductInvMod(params.RingP().Moduli[:a], params.RingQ().Moduli)
	}
	return ev
}

// trunc returns p viewed at lvl, avoiding the 3-word Truncated header
// allocation when p is already there (the top-level legacy hot path).
func trunc(p *ring.Poly, lvl int) *ring.Poly {
	if p.Level() == lvl {
		return p
	}
	return p.Truncated(lvl)
}

// planFor picks the gadget plan for a key switch at lvl consumed by the
// given keys: the level's plan when level-aware switching is on and every
// key carries the matching band, else the legacy plan (notably for keys
// unmarshalled from pre-band blobs).
func (ev *Evaluator) planFor(lvl int, keys ...*SwitchingKey) GadgetPlan {
	pl := ev.params.PlanAt(lvl)
	if !LevelAwareEnabled() || ev.params.IsLegacyPlan(pl) {
		return ev.params.LegacyPlanAt(lvl)
	}
	aTop := ev.params.Alpha()
	for _, k := range keys {
		if _, _, _, _, ok := k.gadget(pl, aTop); !ok {
			return ev.params.LegacyPlanAt(lvl)
		}
	}
	return pl
}

// Params returns the bound parameter set.
func (ev *Evaluator) Params() *Parameters { return ev.params }

// ---------------------------------------------------------------------------
// Element-wise operations (the PIM-friendly class of the Anaheim paper)

const scaleTolerance = 1e-3

func (ev *Evaluator) checkScales(a, b float64) {
	if math.Abs(a/b-1) > scaleTolerance {
		panic(fmt.Sprintf("ckks: scale mismatch on add: %g vs %g", a, b))
	}
}

// Add returns ct0 + ct1 (HADD). Operands are aligned to the lower of the two
// levels; scales must agree up to the tolerance imposed by near-Δ primes.
func (ev *Evaluator) Add(ct0, ct1 *Ciphertext) *Ciphertext {
	// Explicit done() instead of defer: Add is the one op cheap enough
	// (~35µs at test scale) that defer overhead shows up in benchmarks.
	start := time.Now()
	ev.checkScales(ct0.Scale, ct1.Scale)
	rq := ev.params.RingQ()
	lvl := min(ct0.Level(), ct1.Level())
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), Scale: ct0.Scale}
	rq.Add(out.C0, ct0.C0.Truncated(lvl), ct1.C0.Truncated(lvl), lvl)
	rq.Add(out.C1, ct0.C1.Truncated(lvl), ct1.C1.Truncated(lvl), lvl)
	obsAdd.done(start)
	return out
}

// Sub returns ct0 - ct1.
func (ev *Evaluator) Sub(ct0, ct1 *Ciphertext) *Ciphertext {
	ev.checkScales(ct0.Scale, ct1.Scale)
	rq := ev.params.RingQ()
	lvl := min(ct0.Level(), ct1.Level())
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), Scale: ct0.Scale}
	rq.Sub(out.C0, ct0.C0.Truncated(lvl), ct1.C0.Truncated(lvl), lvl)
	rq.Sub(out.C1, ct0.C1.Truncated(lvl), ct1.C1.Truncated(lvl), lvl)
	return out
}

// Neg returns -ct.
func (ev *Evaluator) Neg(ct *Ciphertext) *Ciphertext {
	rq := ev.params.RingQ()
	lvl := ct.Level()
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), Scale: ct.Scale}
	rq.Neg(out.C0, ct.C0, lvl)
	rq.Neg(out.C1, ct.C1, lvl)
	return out
}

// AddPlain returns ct + pt.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	ev.checkScales(ct.Scale, pt.Scale)
	rq := ev.params.RingQ()
	lvl := min(ct.Level(), pt.Level())
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: ct.C1.Truncated(lvl).CopyNew(), Scale: ct.Scale}
	rq.Add(out.C0, ct.C0.Truncated(lvl), pt.Value.Truncated(lvl), lvl)
	return out
}

// MulPlain returns ct ⊙ pt (PMULT). The output scale is the product of the
// operand scales; callers typically follow with Rescale.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	rq := ev.params.RingQ()
	lvl := min(ct.Level(), pt.Level())
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), Scale: ct.Scale * pt.Scale}
	rq.MulCoeffs(out.C0, ct.C0.Truncated(lvl), pt.Value.Truncated(lvl), lvl)
	rq.MulCoeffs(out.C1, ct.C1.Truncated(lvl), pt.Value.Truncated(lvl), lvl)
	return out
}

// ---------------------------------------------------------------------------
// Key switching: ModUp -> KeyMult/MAC -> ModDown (Fig 1)

// digitConverter returns the cached BConv for one digit group of a gadget
// shape: Q limbs [digit·width, …) -> Q_level ∪ P_alpha.
func (ev *Evaluator) digitConverter(level, digit, alpha, width int) *rns.BasisConverter {
	key := digitConvKey{level: level, digit: digit, alpha: alpha, width: width}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if c, ok := ev.digitConv[key]; ok {
		return c
	}
	p := ev.params
	lo, hi := digit*width, min((digit+1)*width, level+1)
	from := p.RingQ().Moduli[lo:hi]
	to := make([]modarith.Modulus, 0, level+1+alpha)
	to = append(append(to, p.RingQ().Moduli[:level+1]...), p.RingP().Moduli[:alpha]...)
	bc, err := rns.NewBasisConverter(from, to)
	if err != nil {
		panic(err)
	}
	ev.digitConv[key] = bc
	return bc
}

// pToQConverter returns the cached BConv P_alpha -> Q_level.
func (ev *Evaluator) pToQConverter(level, alpha int) *rns.BasisConverter {
	key := pToQKey{level: level, alpha: alpha}
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if c, ok := ev.pToQConv[key]; ok {
		return c
	}
	p := ev.params
	bc, err := rns.NewBasisConverter(p.RingP().Moduli[:alpha], p.RingQ().Moduli[:level+1])
	if err != nil {
		panic(err)
	}
	ev.pToQConv[key] = bc
	return bc
}

// rescaler returns the cached rescale constants for dropping q_lvl.
func (ev *Evaluator) rescaler(lvl int) *rns.Rescaler {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if rs, ok := ev.rescalers[lvl]; ok {
		return rs
	}
	rs := rns.NewRescaler(ev.params.RingQ().Moduli[:lvl+1])
	ev.rescalers[lvl] = rs
	return rs
}

// getRows / putRows pool the [][]uint64 slice headers Decompose hands to
// BConv as target rows (the rows themselves belong to pooled polynomials).
// The pool traffics in pointers so the round trip itself is allocation-free.
func (ev *Evaluator) getRows(n int) *[][]uint64 {
	if v := ev.rowsPool.Get(); v != nil {
		p := v.(*[][]uint64)
		if cap(*p) >= n {
			*p = (*p)[:n]
			return p
		}
	}
	rows := make([][]uint64, n)
	return &rows
}

func (ev *Evaluator) putRows(p *[][]uint64) {
	rows := *p
	for i := range rows {
		rows[i] = nil
	}
	ev.rowsPool.Put(p)
}

// decomposed holds the ModUp digits of a polynomial in the extended basis
// Q_level ∪ P (NTT form). Computing it once and reusing it across rotations
// is exactly the hoisting optimization of §III-B.
type decomposed struct {
	level int
	plan  GadgetPlan   // gadget shape the digits were cut with
	q     []*ring.Poly // digit -> poly at level
	p     []*ring.Poly // digit -> poly over RingP at level plan.Alpha-1
	// lazy records that the digit coefficients are in [0, 2q) rather than
	// [0, q): the fused gadget-product MACs tolerate lazy multiplicands
	// (MulBarrettLazy's bound holds for operands < 2q), so Decompose skips
	// the NTT exit reduction when fusion is on. Exact consumers must reduce
	// first (gadgetProduct does when it takes the unfused path).
	lazy bool
	// coeffDomain records that the digits were left in the (lazy) coefficient
	// domain: a pipelined decomposition defers the digit NTTs to the first
	// consuming gadget product, which fuses each digit's transform with the
	// MACs reading it so the digit row never round-trips through DRAM in
	// between. Non-pipelined consumers call ensureNTT first.
	coeffDomain bool
}

// Decompose performs ModUp on c (NTT, level lvl) under the level's gadget
// plan. Callers that consume the digits against specific switching keys
// should prefer decomposePlan with planFor(lvl, keys...), which falls back
// to the legacy shape when a key lacks the plan's band.
func (ev *Evaluator) Decompose(c *ring.Poly, lvl int) *decomposed {
	return ev.decomposePlan(c, lvl, ev.planFor(lvl))
}

// decomposePlan performs ModUp on c (NTT, level lvl): for each digit d of
// the plan it INTTs the digit's limbs, base-converts them to the extended
// basis Q_lvl ∪ P_alpha, and NTTs the result (the INTT -> BConv -> NTT
// "ModSwitch" sequence of §II-B). The digit polynomials are borrowed from
// the ring buffer pools; callers that are done with the decomposition
// should release it via dec.release.
func (ev *Evaluator) decomposePlan(c *ring.Poly, lvl int, pl GadgetPlan) *decomposed {
	defer obsKSBConv.done(time.Now())
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	width := pl.Width
	digits := pl.Digits
	lvlP := pl.Alpha - 1
	obsKSPlanAlpha.Observe(float64(pl.Alpha))
	obsKSDigits.Observe(float64(digits))

	dec := &decomposed{level: lvl, plan: pl, q: make([]*ring.Poly, digits), p: make([]*ring.Poly, digits)}
	dec.lazy = FusionEnabled()
	piped := dec.lazy && PipelinedEnabled()

	coeff := rq.GetPoly(lvl)
	if piped {
		// Fuse the copy with the inverse transform per limb; the digit NTTs
		// are deferred to the consuming gadget product (see coeffDomain).
		pipe := ring.GetPipeline()
		ln := pipe.Lane(rq, lvl)
		ln.Copy(coeff, c)
		ln.INTT(coeff)
		pipe.Run()
		pipe.Release()
	} else {
		coeff.Copy(trunc(c, lvl))
		rq.INTT(coeff, lvl)
	}
	nTargetsQ := lvl + 1
	rowsPtr := ev.getRows(nTargetsQ + lvlP + 1)
	outRows := *rowsPtr
	for d := 0; d < digits; d++ {
		lo, hi := d*width, min((d+1)*width, lvl+1)
		bc := ev.digitConverter(lvl, d, pl.Alpha, width)
		in := coeff.Coeffs[lo:hi]
		pq := rq.GetPoly(lvl)
		pp := rp.GetPoly(lvlP)
		copy(outRows[:nTargetsQ], pq.Coeffs)
		copy(outRows[nTargetsQ:], pp.Coeffs[:lvlP+1])
		if piped {
			// Pipelined: only the cross-limb base conversion happens here.
			// The forward NTTs are recorded into the consuming gadget
			// product's pipeline, fused with the MACs that read each digit.
			bc.ConvertLazy(outRows, in)
			pq.IsNTT, pp.IsNTT = false, false
		} else if dec.lazy {
			// The digits only feed the lazy gadget-product MACs, which
			// tolerate [0, 2q) multiplicands — keep the whole BConv -> NTT
			// chain in the lazy domain: ConvertLazy's [0, 2q) rows feed
			// NTTLazy directly (the forward transform accepts < 2q inputs)
			// and the exit reduction is skipped too.
			bc.ConvertLazy(outRows, in)
			rq.NTTLazy(pq, lvl)
			rp.NTTLazy(pp, lvlP)
		} else {
			bc.Convert(outRows, in)
			rq.NTT(pq, lvl)
			rp.NTT(pp, lvlP)
		}
		dec.q[d], dec.p[d] = pq, pp
	}
	dec.coeffDomain = piped
	ev.putRows(rowsPtr)
	rq.PutPoly(coeff)
	return dec
}

// release returns the decomposition's digit polynomials to the buffer pools.
// The decomposed value must not be used afterwards.
func (dec *decomposed) release(p *Parameters) {
	rq, rp := p.RingQ(), p.RingP()
	for d := range dec.q {
		rq.PutPoly(dec.q[d])
		rp.PutPoly(dec.p[d])
		dec.q[d], dec.p[d] = nil, nil
	}
}

// gadgetProduct computes the inner product of the digits with a switching
// key (KeyMult + MAC): (u0, u1) over Q_level ∪ P such that
// u0 + u1·under = P·c·w + e.
func (ev *Evaluator) gadgetProduct(dec *decomposed, swk *SwitchingKey) (u0q, u0p, u1q, u1p *ring.Poly) {
	defer obsKSKeyMult.done(time.Now())
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := dec.level
	lvlP := dec.plan.Alpha - 1
	u0q, u1q = rq.GetPoly(lvl), rq.GetPoly(lvl)
	u0p, u1p = rp.GetPoly(lvlP), rp.GetPoly(lvlP)
	u0q.IsNTT, u1q.IsNTT, u0p.IsNTT, u1p.IsNTT = true, true, true, true
	if pipelineActive() {
		// Limb-pipelined KeyMult: digit NTTs (if deferred), MACs, and the
		// final reductions run as one per-limb chain under a single barrier.
		ev.gadgetProductPipelined(dec, swk, u0q, u1q, u0p, u1p)
		return
	}
	dec.ensureNTT(ev)
	if FusionEnabled() {
		// Fused KeyMult (PAccum over the digits): lazy Barrett MACs into the
		// four accumulators, one exact reduction each at the end of the chain.
		ev.gadgetProductLazyInto(dec, swk, u0q, u1q, u0p, u1p)
		rq.ReduceLazy(u0q, lvl)
		rq.ReduceLazy(u1q, lvl)
		rp.ReduceLazy(u0p, lvlP)
		rp.ReduceLazy(u1p, lvlP)
		return
	}
	if dec.lazy {
		// Decomposed under fusion but consumed exactly (the flag flipped in
		// between): normalize the digits before the exact MACs below.
		for d := range dec.q {
			rq.ReduceLazy(dec.q[d], lvl)
			rp.ReduceLazy(dec.p[d], lvlP)
		}
		dec.lazy = false
	}
	bQ, aQ, bP, aP, ok := swk.gadget(dec.plan, p.Alpha())
	if !ok {
		panic("ckks: switching key lacks the band for the decomposition's gadget plan")
	}
	for d := range dec.q {
		rq.MulCoeffsAdd(u0q, dec.q[d], trunc(bQ[d], lvl), lvl)
		rq.MulCoeffsAdd(u1q, dec.q[d], trunc(aQ[d], lvl), lvl)
		rp.MulCoeffsAdd(u0p, dec.p[d], trunc(bP[d], lvlP), lvlP)
		rp.MulCoeffsAdd(u1p, dec.p[d], trunc(aP[d], lvlP), lvlP)
	}
	return
}

// gadgetProductLazyInto accumulates the gadget product into the four zeroed
// accumulators, leaving them in the lazy [0, 2q) domain. Consumers that
// continue accumulating lazily (the hoisted linear transform's AutAccum
// chain tolerates lazy multiplicands — the Barrett bound holds for operands
// < 2q) skip the intermediate reduction entirely.
func (ev *Evaluator) gadgetProductLazyInto(dec *decomposed, swk *SwitchingKey, u0q, u1q, u0p, u1p *ring.Poly) {
	dec.ensureNTT(ev)
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := dec.level
	lvlP := dec.plan.Alpha - 1
	bQ, aQ, bP, aP, ok := swk.gadget(dec.plan, p.Alpha())
	if !ok {
		panic("ckks: switching key lacks the band for the decomposition's gadget plan")
	}
	for d := range dec.q {
		rq.MulCoeffsAddLazy(u0q, dec.q[d], trunc(bQ[d], lvl), lvl)
		rq.MulCoeffsAddLazy(u1q, dec.q[d], trunc(aQ[d], lvl), lvl)
		rp.MulCoeffsAddLazy(u0p, dec.p[d], trunc(bP[d], lvlP), lvlP)
		rp.MulCoeffsAddLazy(u1p, dec.p[d], trunc(aP[d], lvlP), lvlP)
	}
}

// ModDown divides a Q∪P_alpha value by the P prefix with rounding,
// returning a Q-basis polynomial at uq's level:
// out_i = (uq_i - BConv(up)_i)·[P_alpha^{-1}]_{q_i} (the ModDownEp compound
// instruction of Table II). The prefix length is read off up's level, so
// the signature is shape-agnostic. Scratch buffers come from the ring
// buffer pools.
func (ev *Evaluator) ModDown(uq, up *ring.Poly, lvl int) *ring.Poly {
	defer obsKSModDown.done(time.Now())
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvlP := up.Level()
	alpha := lvlP + 1
	work := rp.GetPoly(lvlP)
	work.Copy(up)
	rp.INTT(work, lvlP)
	conv := rq.GetPoly(lvl)
	out := rq.NewPoly(lvl)
	if FusionEnabled() {
		// Fused ModDownEp: the BConv -> NTT chain stays lazy ([0, 2q) rows
		// into NTTLazy) and the epilogue subtracts the lazy subtrahend while
		// scaling by P^{-1} in a single exact pass — no reduction pass, no
		// separate Sub + scalar-multiply traversals.
		ev.pToQConverter(lvl, alpha).ConvertLazy(conv.Coeffs, work.Coeffs[:alpha])
		rq.NTTLazy(conv, lvl)
		rq.SubMulByLimbScalarsLazy(out, uq, conv, ev.pInvModQ[alpha][:lvl+1], lvl)
	} else {
		ev.pToQConverter(lvl, alpha).Convert(conv.Coeffs, work.Coeffs[:alpha])
		rq.NTT(conv, lvl)
		rq.Sub(out, uq, conv, lvl)
		rq.MulByLimbScalars(out, out, ev.pInvModQ[alpha][:lvl+1], lvl)
	}
	out.IsNTT = true
	rp.PutPoly(work)
	rq.PutPoly(conv)
	return out
}

// keySwitch applies the full ModUp -> KeyMult/MAC -> ModDown pipeline to c.
func (ev *Evaluator) keySwitch(c *ring.Poly, lvl int, swk *SwitchingKey) (d0, d1 *ring.Poly) {
	defer obsKeySwitch.done(time.Now())
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	dec := ev.decomposePlan(c, lvl, ev.planFor(lvl, swk))
	u0q, u0p, u1q, u1p := ev.gadgetProduct(dec, swk)
	dec.release(p)
	if pipelineActive() {
		d0, d1 = ev.modDownPairPipelined(u0q, u0p, u1q, u1p, nil, nil, lvl)
	} else {
		d0 = ev.ModDown(u0q, u0p, lvl)
		d1 = ev.ModDown(u1q, u1p, lvl)
	}
	rq.PutPoly(u0q)
	rq.PutPoly(u1q)
	rp.PutPoly(u0p)
	rp.PutPoly(u1p)
	return d0, d1
}

// SwitchKeys re-encrypts ct under the key targeted by swk (used for
// sparse-secret encapsulation in bootstrapping).
func (ev *Evaluator) SwitchKeys(ct *Ciphertext, swk *SwitchingKey) *Ciphertext {
	rq := ev.params.RingQ()
	lvl := ct.Level()
	d0, d1 := ev.keySwitch(ct.C1, lvl, swk)
	rq.Add(d0, d0, ct.C0, lvl)
	return &Ciphertext{C0: d0, C1: d1, Scale: ct.Scale}
}

// MulRelin returns ct0 ⊙ ct1 with relinearization (HMULT): the Tensor
// element-wise step followed by key switching of the degree-2 component.
func (ev *Evaluator) MulRelin(ct0, ct1 *Ciphertext, rlk *SwitchingKey) *Ciphertext {
	defer obsMul.done(time.Now())
	if rlk == nil {
		rlk = ev.keys.Rlk
	}
	rq := ev.params.RingQ()
	lvl := min(ct0.Level(), ct1.Level())
	a0, a1 := ct0.C0.Truncated(lvl), ct0.C1.Truncated(lvl)
	b0, b1 := ct1.C0.Truncated(lvl), ct1.C1.Truncated(lvl)

	if pipelineActive() {
		// Tensor as one per-limb chain (each input row is read while hot
		// across the four products), then an inlined key switch whose HMULT
		// tail adds are fused into the ModDown Run.
		rp := ev.params.RingP()
		t0, t1, d2 := rq.GetPoly(lvl), rq.GetPoly(lvl), rq.GetPoly(lvl)
		pipe := ring.GetPipeline()
		ln := pipe.Lane(rq, lvl)
		ln.MulCoeffs(t0, a0, b0)
		ln.MulCoeffsAdd(t1, a0, b1)
		ln.MulCoeffsAdd(t1, a1, b0)
		ln.MulCoeffs(d2, a1, b1)
		pipe.Run()
		pipe.Release()

		ksStart := time.Now()
		dec := ev.decomposePlan(d2, lvl, ev.planFor(lvl, rlk))
		u0q, u0p, u1q, u1p := ev.gadgetProduct(dec, rlk)
		dec.release(ev.params)
		rq.PutPoly(d2)
		o0, o1 := ev.modDownPairPipelined(u0q, u0p, u1q, u1p, t0, t1, lvl)
		obsKeySwitch.done(ksStart)
		rq.PutPoly(u0q)
		rq.PutPoly(u1q)
		rp.PutPoly(u0p)
		rp.PutPoly(u1p)
		rq.PutPoly(t0)
		rq.PutPoly(t1)
		return &Ciphertext{C0: o0, C1: o1, Scale: ct0.Scale * ct1.Scale}
	}

	d0 := rq.NewPoly(lvl)
	d1 := rq.NewPoly(lvl)
	d2 := rq.GetPoly(lvl)
	d0.IsNTT, d1.IsNTT, d2.IsNTT = true, true, true
	rq.MulCoeffs(d0, a0, b0, lvl)
	rq.MulCoeffsAdd(d1, a0, b1, lvl)
	rq.MulCoeffsAdd(d1, a1, b0, lvl)
	rq.MulCoeffs(d2, a1, b1, lvl)

	u0, u1 := ev.keySwitch(d2, lvl, rlk)
	rq.PutPoly(d2)
	rq.Add(d0, d0, u0, lvl)
	rq.Add(d1, d1, u1, lvl)
	return &Ciphertext{C0: d0, C1: d1, Scale: ct0.Scale * ct1.Scale}
}

// Square returns ct ⊙ ct using the TensorSq shortcut.
func (ev *Evaluator) Square(ct *Ciphertext) *Ciphertext {
	return ev.MulRelin(ct, ct, nil)
}

// Rescale divides the ciphertext by its top prime and drops a level,
// restoring the scale after a multiplication.
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	defer obsRescale.done(time.Now())
	rq := ev.params.RingQ()
	lvl := ct.Level()
	if lvl == 0 {
		panic("ckks: cannot rescale at level 0")
	}
	if pipelineActive() {
		return ev.rescalePipelined(ct)
	}
	out := &Ciphertext{Scale: ct.Scale / float64(rq.Moduli[lvl].Q)}
	for i, src := range []*ring.Poly{ct.C0, ct.C1} {
		w := rq.GetPoly(lvl)
		w.Copy(src)
		rq.INTT(w, lvl)
		ev.rescaler(lvl).DivRoundByLastModulus(w.Coeffs)
		t := rq.NewPoly(lvl - 1)
		for l := 0; l < lvl; l++ {
			copy(t.Coeffs[l], w.Coeffs[l])
		}
		rq.NTT(t, lvl-1)
		rq.PutPoly(w)
		if i == 0 {
			out.C0 = t
		} else {
			out.C1 = t
		}
	}
	return out
}

// DropLevel discards limbs down to the target level without scaling.
func (ev *Evaluator) DropLevel(ct *Ciphertext, level int) *Ciphertext {
	return &Ciphertext{
		C0:    ct.C0.Truncated(level).CopyNew(),
		C1:    ct.C1.Truncated(level).CopyNew(),
		Scale: ct.Scale,
	}
}

// ---------------------------------------------------------------------------
// Automorphisms: HROT and conjugation

// automorphism applies σ_g with key switching: ModUp(c1) -> KeyMult/MAC ->
// ModDown -> automorphism, the order of Fig 1 enabled by the key layout.
func (ev *Evaluator) automorphism(ct *Ciphertext, galEl uint64) (*Ciphertext, error) {
	swk, err := ev.keys.GaloisKey(galEl)
	if err != nil {
		return nil, err
	}
	rq := ev.params.RingQ()
	lvl := ct.Level()

	if pipelineActive() {
		// Inline the key switch so the rotation's c0-add and automorphism
		// permutations fuse into the ModDown Run (one pass over each row
		// instead of four).
		rp := ev.params.RingP()
		ksStart := time.Now()
		dec := ev.decomposePlan(ct.C1, lvl, ev.planFor(lvl, swk))
		u0q, u0p, u1q, u1p := ev.gadgetProduct(dec, swk)
		dec.release(ev.params)
		o0, o1 := ev.modDownAutPipelined(u0q, u0p, u1q, u1p, ct.C0, galEl, lvl)
		obsKeySwitch.done(ksStart)
		rq.PutPoly(u0q)
		rq.PutPoly(u1q)
		rp.PutPoly(u0p)
		rp.PutPoly(u1p)
		return &Ciphertext{C0: o0, C1: o1, Scale: ct.Scale}, nil
	}

	d0, d1 := ev.keySwitch(ct.C1, lvl, swk)
	rq.Add(d0, d0, ct.C0, lvl)

	o0 := rq.NewPoly(lvl)
	o1 := rq.NewPoly(lvl)
	rq.AutomorphismNTT(o0, d0, galEl, lvl)
	rq.AutomorphismNTT(o1, d1, galEl, lvl)
	rq.PutPoly(d0)
	rq.PutPoly(d1)
	return &Ciphertext{C0: o0, C1: o1, Scale: ct.Scale}, nil
}

// Rotate returns HROT(ct, k): the slot vector cyclically rotated by k.
func (ev *Evaluator) Rotate(ct *Ciphertext, k int) (*Ciphertext, error) {
	defer obsRotate.done(time.Now())
	if k%ev.params.Slots() == 0 {
		return ct.CopyNew(), nil
	}
	return ev.automorphism(ct, ev.params.RingQ().GaloisElement(k))
}

// Conjugate returns the slot-wise complex conjugate of ct.
func (ev *Evaluator) Conjugate(ct *Ciphertext) (*Ciphertext, error) {
	defer obsConjugate.done(time.Now())
	return ev.automorphism(ct, ev.params.RingQ().GaloisElementConjugate())
}

// RotateHoisted evaluates many rotations of one ciphertext sharing a single
// ModUp (hoisting, §III-B): K rotations cost one decomposition instead of K.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, rotations []int) (map[int]*Ciphertext, error) {
	defer obsHoisted.done(time.Now())
	rq, rp := ev.params.RingQ(), ev.params.RingP()
	lvl := ct.Level()
	// Resolve every Galois key before decomposing: the shared digits must be
	// cut with a shape all consuming keys can serve, so the plan choice (and
	// its per-key band check) has to see the full key list up front.
	swks := make(map[int]*SwitchingKey, len(rotations))
	planKeys := make([]*SwitchingKey, 0, len(rotations))
	for _, k := range rotations {
		if k%ev.params.Slots() == 0 {
			continue
		}
		swk, err := ev.keys.GaloisKey(rq.GaloisElement(k))
		if err != nil {
			return nil, err
		}
		swks[k] = swk
		planKeys = append(planKeys, swk)
	}
	dec := ev.decomposePlan(ct.C1, lvl, ev.planFor(lvl, planKeys...))
	defer dec.release(ev.params)
	out := make(map[int]*Ciphertext, len(rotations))
	for _, k := range rotations {
		if k%ev.params.Slots() == 0 {
			out[k] = ct.CopyNew()
			continue
		}
		g := rq.GaloisElement(k)
		swk := swks[k]
		u0q, u0p, u1q, u1p := ev.gadgetProduct(dec, swk)
		var o0, o1 *ring.Poly
		if pipelineActive() {
			o0, o1 = ev.modDownAutPipelined(u0q, u0p, u1q, u1p, ct.C0, g, lvl)
			rq.PutPoly(u0q)
			rq.PutPoly(u1q)
			rp.PutPoly(u0p)
			rp.PutPoly(u1p)
		} else {
			d0 := ev.ModDown(u0q, u0p, lvl)
			d1 := ev.ModDown(u1q, u1p, lvl)
			rq.PutPoly(u0q)
			rq.PutPoly(u1q)
			rp.PutPoly(u0p)
			rp.PutPoly(u1p)
			rq.Add(d0, d0, ct.C0, lvl)
			o0 = rq.NewPoly(lvl)
			o1 = rq.NewPoly(lvl)
			rq.AutomorphismNTT(o0, d0, g, lvl)
			rq.AutomorphismNTT(o1, d1, g, lvl)
			rq.PutPoly(d0)
			rq.PutPoly(d1)
		}
		out[k] = &Ciphertext{C0: o0, C1: o1, Scale: ct.Scale}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Scalar operations

// bigScaled returns round(c * scale) as a big.Int, computed in high
// precision (bootstrapping constants overflow float64 mantissas).
func bigScaled(c *big.Float, scale float64) *big.Int {
	v := new(big.Float).SetPrec(200).Mul(c, big.NewFloat(scale))
	half := big.NewFloat(0.5)
	if v.Sign() >= 0 {
		v.Add(v, half)
	} else {
		v.Sub(v, half)
	}
	out, _ := v.Int(nil)
	return out
}

// AddConst adds the real constant c to every slot.
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64) *Ciphertext {
	rq := ev.params.RingQ()
	lvl := ct.Level()
	out := ct.CopyNew()
	rq.AddScalarBig(out.C0, out.C0, bigScaled(big.NewFloat(c), ct.Scale), lvl)
	return out
}

// MultConst multiplies every slot by the real constant c, encoding it at
// scale constScale (the ciphertext scale is multiplied accordingly; choosing
// constScale equal to the prime dropped by the following Rescale restores
// the original scale exactly).
func (ev *Evaluator) MultConst(ct *Ciphertext, c float64, constScale float64) *Ciphertext {
	rq := ev.params.RingQ()
	lvl := ct.Level()
	k := bigScaled(big.NewFloat(c), constScale)
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), Scale: ct.Scale * constScale}
	rq.MulScalarBig(out.C0, ct.C0, k, lvl)
	rq.MulScalarBig(out.C1, ct.C1, k, lvl)
	out.C0.IsNTT, out.C1.IsNTT = true, true
	return out
}

// monomial returns the cached NTT form of X^{N/2} at the given level; its
// slots are the constant i, so multiplying by it is an exact multiply-by-i.
func (ev *Evaluator) monomial(lvl int) *ring.Poly {
	ev.mu.Lock()
	defer ev.mu.Unlock()
	if m, ok := ev.monomialNT[lvl]; ok {
		return m
	}
	rq := ev.params.RingQ()
	m := rq.NewPoly(lvl)
	for i := 0; i <= lvl; i++ {
		m.Coeffs[i][ev.params.N()/2] = 1
	}
	rq.NTT(m, lvl)
	ev.monomialNT[lvl] = m
	return m
}

// MulByI multiplies every slot by the imaginary unit, exactly and without
// consuming a level.
func (ev *Evaluator) MulByI(ct *Ciphertext) *Ciphertext {
	rq := ev.params.RingQ()
	lvl := ct.Level()
	m := ev.monomial(lvl)
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), Scale: ct.Scale}
	rq.MulCoeffs(out.C0, ct.C0, m, lvl)
	rq.MulCoeffs(out.C1, ct.C1, m, lvl)
	return out
}
