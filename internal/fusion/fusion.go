// Package fusion implements the Anaheim op-sequence rewrite passes (§V) as
// a small optimization-pass layer over the two IRs of this repository:
//
//   - the trace IR (internal/trace): kernel sequences emitted by the naive
//     SplitKernels builder are rewritten by SwapAutPMult (§V-B plaintext
//     pre-rotation), AutAccum (Fig 6), and PAccum/CAccum (Table II compound
//     instructions) back into the fused sequences the Anaheim configuration
//     executes, with per-pass kernel/byte savings accounted;
//
//   - the engine op DAG (internal/engine, via the mirrored Op type): ADD
//     ladders collapse into one variadic sum and constant-multiply trees
//     into one linear combination, which the evaluator executes with the
//     fused single-pass ring kernels (ckks.AddMany, ckks.MulConstAccum).
//
// Every pass is independently applicable and unit-testable; Apply runs a
// pass list in order and records the savings as obs counters.
package fusion

import (
	"github.com/anaheim-sim/anaheim/internal/obs"
	"github.com/anaheim-sim/anaheim/internal/trace"
)

// Stats summarizes one pass application on one trace.
type Stats struct {
	Pass          string
	KernelsBefore int
	KernelsAfter  int
	// Fused counts kernels eliminated by merging into a compound.
	Fused int
	// Swaps counts automorphism↔PMULT reorders (no direct byte savings;
	// they unlock AutAccum).
	Swaps int
	// BytesSaved is the DRAM traffic removed from the trace by this pass.
	BytesSaved float64
}

// TracePass rewrites a kernel trace in place.
type TracePass interface {
	Name() string
	Apply(t *trace.Trace) Stats
}

// Config toggles the individual trace passes.
type Config struct {
	Swap     bool // automorphism ↔ PMULT reorder (§V-B)
	AutAccum bool // fuse automorphism with accumulation (Fig 6)
	PAccum   bool // merge PMAC chains into PAccum⟨K⟩ (Table II)
	CAccum   bool // merge CMAC chains into CAccum⟨K⟩ (Table II)
}

// AllPasses returns every trace pass in its canonical order: the reorder
// first (it unlocks AutAccum), then the merges.
func AllPasses() []TracePass {
	return Passes(Config{Swap: true, AutAccum: true, PAccum: true, CAccum: true})
}

// Passes returns the enabled passes in canonical order.
func Passes(c Config) []TracePass {
	var ps []TracePass
	if c.Swap {
		ps = append(ps, SwapAutPMult())
	}
	if c.AutAccum {
		ps = append(ps, AutAccum())
	}
	if c.PAccum {
		ps = append(ps, PAccum())
	}
	if c.CAccum {
		ps = append(ps, CAccum())
	}
	return ps
}

// Apply runs the passes in order, mutating t, and records per-pass savings
// as obs counters (fusion_kernels_eliminated_total, fusion_bytes_saved_total,
// fusion_swaps_total).
func Apply(t *trace.Trace, passes ...TracePass) []Stats {
	stats := make([]Stats, 0, len(passes))
	for _, p := range passes {
		s := p.Apply(t)
		record(s)
		stats = append(stats, s)
	}
	return stats
}

func record(s Stats) {
	if s.Fused > 0 {
		obs.Default.Counter(`fusion_kernels_eliminated_total{pass="` + s.Pass + `"}`).Add(float64(s.Fused))
	}
	if s.BytesSaved > 0 {
		obs.Default.Counter(`fusion_bytes_saved_total{pass="` + s.Pass + `"}`).Add(s.BytesSaved)
	}
	if s.Swaps > 0 {
		obs.Default.Counter("fusion_swaps_total").Add(float64(s.Swaps))
	}
}
