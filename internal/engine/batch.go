package engine

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Cross-session batch dispatch and priority tiers.
//
// The paper's Alg 1 / PolyGroups batches many polynomial operands into one
// PIM dispatch so fixed costs (twiddle loads, gadget constants, command
// issue) are paid once per group instead of once per operand. The serving
// runtime applies the same amortization one level up: ready ops from
// *different tenants* that hit the same kernel class (same op family, ring
// degree, special-prime count, and level — i.e. the same twiddle tables and
// gadget plan shape) are staged briefly and dispatched to the worker pool as
// one group. A group costs one scheduler round-trip and one span, and its
// members fan out over the shared par pool together, so the pool sees one
// wide dispatch instead of many narrow ones.
//
// Priority tiers make the batching safe to run next to latency-sensitive
// traffic: every job belongs to a tier (latency | standard | batch), the
// ready queue is weighted per tier, and the latency tier bypasses staging
// entirely — its ops are dispatched the moment they become ready.

// Job priority tiers.
const (
	TierLatency  = "latency"
	TierStandard = "standard"
	TierBatch    = "batch"
)

// tierOrder lists tiers from highest to lowest dequeue priority.
var tierOrder = []string{TierLatency, TierStandard, TierBatch}

// normalizeTier maps the JobSpec tier (empty = standard) onto a known tier.
func normalizeTier(t string) (string, error) {
	switch t {
	case "":
		return TierStandard, nil
	case TierLatency, TierStandard, TierBatch:
		return t, nil
	}
	return "", fmt.Errorf("engine: unknown tier %q (want latency, standard, or batch)", t)
}

// OverloadError is the typed load-shed rejection returned by Submit when
// admission control refuses a job. It unwraps to ErrBusy so existing
// errors.Is(err, ErrBusy) checks keep working, and carries the reason plus a
// queue-depth-derived retry hint that the HTTP layer surfaces as a 429 with
// a Retry-After header.
type OverloadError struct {
	// Tier the rejected job targeted.
	Tier string
	// Reason is one of "engine_full" (global admission limit),
	// "tier_full" (the tier's capacity share is exhausted), or
	// "tenant_limit" (the tenant's in-flight job cap).
	Reason string
	// RetryAfter estimates when capacity frees up: one second per queued
	// job ahead per worker, capped at 30s. A heuristic, not a promise.
	RetryAfter time.Duration
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("engine: overloaded (%s, tier=%s), retry after %s", e.Reason, e.Tier, e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrBusy) true for every overload rejection.
func (e *OverloadError) Unwrap() error { return ErrBusy }

// kernelClassOf maps op kinds onto kernel classes: ops in the same class at
// the same (logN, alpha, level) execute the same kernel sequence (the same
// NTT plans, BConv shapes, and gadget dimensions), which is what makes
// cross-session grouping an amortization rather than a random bundle.
// Bootstrap is deliberately absent: a multi-second op would hold a whole
// group hostage.
var kernelClassOf = map[string]string{
	"mul": "ks-relin", "square": "ks-relin",
	"rotate": "ks-rot", "conjugate": "ks-rot",
	"lintrans": "lintrans",
	"add":      "eltwise", "sub": "eltwise", "addn": "eltwise", "lincomb": "eltwise",
	"addconst": "eltwise", "mulconst": "eltwise",
	"rescale": "eltwise", "droplevel": "eltwise",
}

// batchClass returns the staging key for an op, or ok=false when the op
// must not be batched (unknown kind, bootstrap, or a latency-tier job).
// The key pins the kernel shape: class, ring degree, special-prime count,
// and the minimum argument level (which sizes the NTT/BConv work), plus the
// tier so queue accounting stays per-tier.
func (e *Engine) batchClass(j *Job, op *OpSpec) (string, bool) {
	if j.tier == TierLatency {
		return "", false
	}
	cls, ok := kernelClassOf[op.Op]
	if !ok {
		return "", false
	}
	lvl := -1
	for _, a := range op.Args {
		ct, err := j.arg(a)
		if err != nil {
			return "", false // not materialized: should not happen for a ready op
		}
		if l := ct.Level(); lvl < 0 || l < lvl {
			lvl = l
		}
	}
	p := j.sess.Params
	return fmt.Sprintf("%s|n%d|a%d|l%d|%s", cls, p.LogN(), p.Alpha(), lvl, j.tier), true
}

// dispatchGroup is the unit handed to workers: one or more ready ops of the
// same kernel class. Singleton groups are the unbatched fast path.
type dispatchGroup struct {
	tasks []*opTask
	class string // non-empty for staged (batched) groups
	tier  string
}

// ---------------------------------------------------------------------------
// Staging: per-class holding queues with a batching window.

// stagedBatch accumulates same-class ops until the batch fills or its
// window expires.
type stagedBatch struct {
	class string
	tier  string
	tasks []*opTask
	due   time.Time
}

// staging holds the per-class queues. Dispatcher-private: no locking.
type staging struct {
	window   time.Duration
	maxBatch int
	batches  map[string]*stagedBatch
}

func newStaging(window time.Duration, maxBatch int) *staging {
	return &staging{window: window, maxBatch: maxBatch, batches: make(map[string]*stagedBatch)}
}

// add stages a task under its class key. If the batch reaches maxBatch it is
// removed and returned for immediate dispatch; otherwise nil.
func (s *staging) add(class, tier string, t *opTask, now time.Time) *dispatchGroup {
	b := s.batches[class]
	if b == nil {
		b = &stagedBatch{class: class, tier: tier, due: now.Add(s.window)}
		s.batches[class] = b
	}
	b.tasks = append(b.tasks, t)
	if len(b.tasks) >= s.maxBatch {
		delete(s.batches, class)
		return &dispatchGroup{tasks: b.tasks, class: b.class, tier: b.tier}
	}
	return nil
}

// earliest returns the soonest batch deadline, if any batch is staged.
func (s *staging) earliest() (time.Time, bool) {
	var min time.Time
	ok := false
	for _, b := range s.batches {
		if !ok || b.due.Before(min) {
			min = b.due
			ok = true
		}
	}
	return min, ok
}

// due removes and returns every batch whose window has expired.
func (s *staging) due(now time.Time) []*dispatchGroup {
	var out []*dispatchGroup
	for key, b := range s.batches {
		if !b.due.After(now) {
			delete(s.batches, key)
			out = append(out, &dispatchGroup{tasks: b.tasks, class: b.class, tier: b.tier})
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Tier queues: weighted round-robin over per-tier ready queues.

// tierQueues holds ready dispatch groups per tier and picks the next group
// by weighted round-robin: each refill grants every tier its weight in
// credits, and tiers are drained in priority order while they have credit.
// A saturated batch tier therefore gets at most weight_batch of every
// sum(weights) dispatches once higher tiers have work. Dispatcher-private
// except for the depth gauges, which the metrics exporter samples.
type tierQueues struct {
	queues  map[string][]*dispatchGroup
	weights map[string]int
	credit  map[string]int
	depth   map[string]*atomic.Int64 // ops (not groups) queued or staged, per tier
}

func newTierQueues(weights map[string]int, depth map[string]*atomic.Int64) *tierQueues {
	q := &tierQueues{
		queues:  make(map[string][]*dispatchGroup),
		weights: weights,
		credit:  make(map[string]int),
		depth:   depth,
	}
	for _, t := range tierOrder {
		q.credit[t] = weights[t]
	}
	return q
}

// push appends a ready group to its tier queue. Depth accounting for the
// member ops happened when they became ready (enqueueReady), not here, so
// staged ops count as queued while they wait out the batching window.
func (q *tierQueues) push(g *dispatchGroup) {
	q.queues[g.tier] = append(q.queues[g.tier], g)
}

// head returns the tier whose queue should be served next and its head
// group, pruning ops of terminal (failed/expired) jobs as it goes. Returns
// ok=false when every queue is empty.
func (q *tierQueues) head() (string, *dispatchGroup, bool) {
	for pass := 0; pass < 2; pass++ {
		for _, t := range tierOrder {
			if q.credit[t] <= 0 && pass == 0 {
				continue
			}
			if g := q.prunedHead(t); g != nil {
				return t, g, true
			}
		}
		// Either no tier with credit has work, or no tier has work at all.
		// Refill credits and take strict priority order on the second pass.
		for _, t := range tierOrder {
			q.credit[t] = q.weights[t]
		}
	}
	return "", nil, false
}

// prunedHead drops dead groups/ops from the front of one tier queue and
// returns its live head, if any.
func (q *tierQueues) prunedHead(t string) *dispatchGroup {
	queue := q.queues[t]
	for len(queue) > 0 {
		g := queue[0]
		live := g.tasks[:0]
		for _, task := range g.tasks {
			if task.job.terminal() {
				q.depth[t].Add(-1)
			} else {
				live = append(live, task)
			}
		}
		g.tasks = live
		if len(g.tasks) > 0 {
			q.queues[t] = queue
			return g
		}
		queue = queue[1:]
	}
	q.queues[t] = queue
	return nil
}

// pop removes the head of tier t after it was handed to a worker and
// spends one credit.
func (q *tierQueues) pop(t string, g *dispatchGroup) {
	q.queues[t] = q.queues[t][1:]
	if q.credit[t] > 0 {
		q.credit[t]--
	}
	q.depth[t].Add(int64(-len(g.tasks)))
}
