package fusion

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/trace"
)

var update = flag.Bool("update", false, "rewrite the golden fixtures")

// formatTrace renders the kernel sequence in a stable, human-reviewable
// form: one kernel per line with class, opcode, name and fuse tags.
func formatTrace(tr *trace.Trace) string {
	var b strings.Builder
	for _, k := range tr.Kernels {
		fmt.Fprintf(&b, "%-5s %-9s %s", k.Class, opName(k), k.Name)
		if k.FuseGroup != "" {
			fmt.Fprintf(&b, "  [%s:%s]", k.FuseGroup, k.FuseRole)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func opName(k trace.Kernel) string {
	if k.Class != trace.ClassEW {
		return "-"
	}
	if k.OpK > 0 {
		return fmt.Sprintf("%s<%d>", k.Op, k.OpK)
	}
	return k.Op.String()
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture %s (regenerate with go test -run TestGolden -update ./internal/fusion): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("sequence differs from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

// TestGoldenLinearTransformPasses pins the exact before/after kernel
// sequences of a small hoisted linear transform (k=4: two baby steps, two
// giant sums) through each fusion pass.
func TestGoldenLinearTransformPasses(t *testing.T) {
	build := func() *trace.Trace {
		b := trace.NewBuilder(trace.PaperParams(), trace.SplitNaive(), "lt4")
		b.LinearTransform(10, 4)
		return b.T
	}

	tr := build()
	checkGolden(t, "lt4_naive.golden", formatTrace(tr))

	Apply(tr, SwapAutPMult())
	checkGolden(t, "lt4_after_swap.golden", formatTrace(tr))

	Apply(tr, AutAccum())
	checkGolden(t, "lt4_after_autaccum.golden", formatTrace(tr))

	Apply(tr, PAccum())
	checkGolden(t, "lt4_after_paccum.golden", formatTrace(tr))

	// For reference: what the natively fused builder emits for the same
	// transform. The multiset equality with the pass output is asserted by
	// TestPassesReconstructFusedBuilder; this fixture documents the order.
	fb := trace.NewBuilder(trace.PaperParams(), anaheimFused(), "lt4")
	fb.LinearTransform(10, 4)
	checkGolden(t, "lt4_fused_builder.golden", formatTrace(fb.T))
}
