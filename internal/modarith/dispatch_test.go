package modarith

import (
	"math/rand"
	"sync"
	"testing"
)

// Dispatch-matrix tests: force every host-available tier through the PUBLIC
// kernel API (the dispatched methods, not the raw table entries) and check
// each against the pure-Go oracle, then hammer SetKernelTier concurrently
// with in-flight rows to prove the atomic table swap is race-clean
// (CI runs this under -race -count=2 -shuffle=on).

func restoreTier(t *testing.T) {
	t.Helper()
	orig := ActiveTier()
	t.Cleanup(func() {
		if err := SetKernelTier(orig); err != nil {
			t.Fatalf("restoring tier %v: %v", orig, err)
		}
	})
}

func TestKernelTierStrings(t *testing.T) {
	for _, tier := range []KernelTier{TierGo, TierNEON, TierAVX2, TierAVX512} {
		got, err := ParseKernelTier(tier.String())
		if err != nil || got != tier {
			t.Errorf("ParseKernelTier(%q) = %v, %v; want %v", tier.String(), got, err, tier)
		}
	}
	if _, err := ParseKernelTier("sse9"); err == nil {
		t.Error("ParseKernelTier(sse9) should fail")
	}
	if s := KernelTier(42).String(); s != "tier(42)" {
		t.Errorf("KernelTier(42).String() = %q", s)
	}
}

func TestSetKernelTierUnavailable(t *testing.T) {
	avail := map[KernelTier]bool{}
	for _, tier := range AvailableTiers() {
		avail[tier] = true
	}
	if !avail[TierGo] {
		t.Fatal("TierGo must always be available")
	}
	for _, tier := range []KernelTier{TierNEON, TierAVX2, TierAVX512, KernelTier(42)} {
		if !avail[tier] {
			if err := SetKernelTier(tier); err == nil {
				t.Errorf("SetKernelTier(%v) should fail on this host", tier)
			}
		}
	}
}

// TestPickDefaultTier pins the auto-selection rule: highest available tier
// wins, except tiers marked opt-in (TierAVX2: measured net-slower end to
// end) are skipped no matter how high they rank — they stay reachable only
// through SetKernelTier / ANAHEIM_KERNEL_TIER.
func TestPickDefaultTier(t *testing.T) {
	mk := func(tier KernelTier, optIn bool) *kernelTable {
		return &kernelTable{tier: tier, optIn: optIn}
	}
	cases := []struct {
		name   string
		tables map[KernelTier]*kernelTable
		want   KernelTier
	}{
		{"go-only", map[KernelTier]*kernelTable{TierGo: mk(TierGo, false)}, TierGo},
		{"avx512-wins", map[KernelTier]*kernelTable{
			TierGo: mk(TierGo, false), TierAVX2: mk(TierAVX2, true), TierAVX512: mk(TierAVX512, false),
		}, TierAVX512},
		{"optin-avx2-skipped", map[KernelTier]*kernelTable{
			TierGo: mk(TierGo, false), TierAVX2: mk(TierAVX2, true),
		}, TierGo},
		{"neon-wins", map[KernelTier]*kernelTable{
			TierGo: mk(TierGo, false), TierNEON: mk(TierNEON, false),
		}, TierNEON},
	}
	for _, tc := range cases {
		if got := pickDefaultTier(tc.tables); got != tc.want {
			t.Errorf("%s: pickDefaultTier = %v, want %v", tc.name, got, tc.want)
		}
	}
	// The live registration must agree: if this host has TierAVX2, it is
	// marked opt-in and must not be what init auto-selected.
	if tbl, ok := tierTables[TierAVX2]; ok {
		if !tbl.optIn {
			t.Error("TierAVX2 is registered without optIn — it measured net-slower and must not auto-select")
		}
		if pickDefaultTier(tierTables) == TierAVX2 {
			t.Error("pickDefaultTier chose the opt-in AVX2 tier")
		}
	}
}

// TestDispatchTierMatrix runs the full public kernel surface on every
// available tier and compares against results computed with the Go table
// directly — the contract suite the ISSUE calls the dispatch matrix.
func TestDispatchTierMatrix(t *testing.T) {
	restoreTier(t)
	moduli := tierTestModuli(t)
	for _, tier := range AvailableTiers() {
		tier := tier
		t.Run(tier.String(), func(t *testing.T) {
			if err := SetKernelTier(tier); err != nil {
				t.Fatal(err)
			}
			if got := ActiveTier(); got != tier {
				t.Fatalf("ActiveTier() = %v after SetKernelTier(%v)", got, tier)
			}
			rng := rand.New(rand.NewSource(0xd15b + int64(tier)))
			for _, m := range moduli {
				for _, n := range []int{1, 5, 8, 13, 64, 777} {
					a := randRow(rng, n, m.TwoQ)
					b := randRow(rng, n, m.TwoQ)
					w := randBelow(rng, m.Q)
					ws := m.ShoupPrecomp(w)

					out := randRow(rng, n, m.TwoQ)
					want := cloneRow(out)
					m.VecMulAddLazy(out, a, b)
					vecMulAddLazyGo(m, want, a, b)
					rowsEqual(t, "VecMulAddLazy", tier, m, out, want)

					out = randRow(rng, n, m.Q)
					want = cloneRow(out)
					m.VecMulAddBarrett(out, a, b)
					vecMulAddBarrettGo(m, want, a, b)
					rowsEqual(t, "VecMulAddBarrett", tier, m, out, want)

					aq := randRow(rng, n, m.Q)
					m.VecMulShoup(out, aq, w, ws)
					vecMulShoupGo(m, want, aq, w, ws)
					rowsEqual(t, "VecMulShoup", tier, m, out, want)

					m.VecSubMulShoupLazy(out, a, b, w, ws)
					vecSubMulShoupLazyGo(m, want, a, b, w, ws)
					rowsEqual(t, "VecSubMulShoupLazy", tier, m, out, want)

					hi, lo := make([]uint64, n), make([]uint64, n)
					whi, wlo := make([]uint64, n), make([]uint64, n)
					VecMulWide(hi, lo, a, w)
					vecMulWideGo(whi, wlo, a, w)
					rowsEqual(t, "VecMulWide.hi", tier, m, hi, whi)
					rowsEqual(t, "VecMulWide.lo", tier, m, lo, wlo)
					VecMulAccWide(hi, lo, b, w)
					vecMulAccWideGo(whi, wlo, b, w)
					rowsEqual(t, "VecMulAccWide.hi", tier, m, hi, whi)
					rowsEqual(t, "VecMulAccWide.lo", tier, m, lo, wlo)
					m.VecReduceWide128(out, hi, lo)
					vecReduceWide128Go(m, want, whi, wlo)
					rowsEqual(t, "VecReduceWide128", tier, m, out, want)

					p := randRow(rng, n, m.TwoQ)
					wp := cloneRow(p)
					m.VecReduceTwoQ(p)
					vecReduceTwoQGo(m, wp)
					rowsEqual(t, "VecReduceTwoQ", tier, m, p, wp)
				}
				// Butterfly spans: lengths per the multiple-of-4 contract.
				for _, n := range []int{4, 8, 20, 64} {
					w := randBelow(rng, m.Q)
					ws := m.ShoupPrecomp(w)
					x := randRow(rng, n, 4*m.Q)
					y := randRow(rng, n, 4*m.Q)
					wx, wy := cloneRow(x), cloneRow(y)
					m.VecFwdButterflyLazy(x, y, w, ws)
					vecFwdButterflyGo(m, wx, wy, w, ws)
					rowsEqual(t, "VecFwdButterflyLazy.x", tier, m, x, wx)
					rowsEqual(t, "VecFwdButterflyLazy.y", tier, m, y, wy)

					x = randRow(rng, n, m.TwoQ)
					y = randRow(rng, n, m.TwoQ)
					wx, wy = cloneRow(x), cloneRow(y)
					m.VecInvButterflyLazy(x, y, w, ws)
					vecInvButterflyGo(m, wx, wy, w, ws)
					rowsEqual(t, "VecInvButterflyLazy.x", tier, m, x, wx)
					rowsEqual(t, "VecInvButterflyLazy.y", tier, m, y, wy)
				}
			}
		})
	}
}

// TestSetKernelTierRace flips tiers while worker goroutines run rows through
// the dispatched API. Any torn table read or missed synchronization shows up
// under -race; results are also checked (every tier is bit-identical, so the
// flips must be invisible in the outputs).
func TestSetKernelTierRace(t *testing.T) {
	restoreTier(t)
	m := tierTestModuli(t)[2] // the 60-bit modulus
	const n = 256
	rng := rand.New(rand.NewSource(7))
	a := randRow(rng, n, m.TwoQ)
	b := randRow(rng, n, m.TwoQ)
	want := make([]uint64, n)
	vecMulBarrettGo(m, want, a, b)

	tiers := AvailableTiers()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]uint64, n)
			for {
				select {
				case <-stop:
					return
				default:
				}
				m.VecMulBarrett(out, a, b)
				for j := range out {
					if out[j] != want[j] {
						t.Errorf("row diverged at %d during tier flips", j)
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := SetKernelTier(tiers[i%len(tiers)]); err != nil {
			t.Error(err)
			break
		}
	}
	close(stop)
	wg.Wait()
}
