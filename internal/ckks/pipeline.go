package ckks

import (
	"sync/atomic"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Limb-pipelining toggle for the CKKS execution layer. When enabled (the
// default) and fusion is on, the evaluator hot chains — the gadget-product
// inner loop of key switching, the ModDown pair, the automorphism tail of
// rotations, rescaling, and the hoisted linear-transform AutAccum blocks —
// record their per-limb kernel chains into a ring.Pipeline and execute the
// whole chain limb-by-limb under a single barrier, instead of one barriered
// full-polynomial sweep per kernel. The stage bodies are the same row
// kernels in the same per-limb order, so pipelined execution is bit-identical
// to the barriered mode on every kernel tier (pipeline_diff_test.go asserts
// this coefficient-for-coefficient at every level); only the memory traffic
// changes. DESIGN.md §3.13 documents the discipline.

var pipelineDisabled atomic.Bool

// SetPipelined enables or disables the limb-pipelined evaluator chains
// process-wide.
func SetPipelined(on bool) { pipelineDisabled.Store(!on) }

// PipelinedEnabled reports whether the limb-pipelined chains are active.
func PipelinedEnabled() bool { return !pipelineDisabled.Load() }

// pipelineActive reports whether the pipelined paths should run: they build
// on the lazy fused kernels, so fusion must be on too.
func pipelineActive() bool { return PipelinedEnabled() && FusionEnabled() }

// ensureNTT materializes the digits' NTT form when a pipelined decomposition
// (which leaves digits in the coefficient domain for the consuming chain to
// transform in-pipeline) ends up consumed by a non-pipelined path — e.g. the
// toggle flipped between decompose and consume, or an unfused caller.
func (dec *decomposed) ensureNTT(ev *Evaluator) {
	if !dec.coeffDomain {
		return
	}
	rq, rp := ev.params.RingQ(), ev.params.RingP()
	lvlP := dec.plan.Alpha - 1
	for d := range dec.q {
		if dec.lazy {
			rq.NTTLazy(dec.q[d], dec.level)
			rp.NTTLazy(dec.p[d], lvlP)
		} else {
			rq.NTT(dec.q[d], dec.level)
			rp.NTT(dec.p[d], lvlP)
		}
	}
	dec.coeffDomain = false
}

// gadgetProductPipelined is the limb-pipelined KeyMult/MAC: one pipeline Run
// records, per digit, the digit's forward NTT (when the decomposition left it
// in the coefficient domain) immediately followed by the four MACs consuming
// it, and ends with the four accumulator reductions — so each digit row is
// transformed and consumed while still cache-resident, and the whole gadget
// product pays one barrier instead of 2·digits NTTs + 4·digits MACs + 4
// reductions. Accumulators must be zeroed, NTT-flagged polynomials.
func (ev *Evaluator) gadgetProductPipelined(dec *decomposed, swk *SwitchingKey, u0q, u1q, u0p, u1p *ring.Poly) {
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := dec.level
	lvlP := dec.plan.Alpha - 1
	bQ, aQ, bP, aP, ok := swk.gadget(dec.plan, p.Alpha())
	if !ok {
		panic("ckks: switching key lacks the band for the decomposition's gadget plan")
	}
	pipe := ring.GetPipeline()
	lq := pipe.Lane(rq, lvl)
	lp := pipe.Lane(rp, lvlP)
	for d := range dec.q {
		if dec.coeffDomain {
			lq.NTTLazy(dec.q[d])
			lp.NTTLazy(dec.p[d])
		}
		lq.MulCoeffsAddLazy(u0q, dec.q[d], bQ[d])
		lq.MulCoeffsAddLazy(u1q, dec.q[d], aQ[d])
		lp.MulCoeffsAddLazy(u0p, dec.p[d], bP[d])
		lp.MulCoeffsAddLazy(u1p, dec.p[d], aP[d])
	}
	lq.ReduceLazy(u0q)
	lq.ReduceLazy(u1q)
	lp.ReduceLazy(u0p)
	lp.ReduceLazy(u1p)
	pipe.Run()
	pipe.Release()
	dec.coeffDomain = false
}

// modDownPairPipelined runs both ModDowns of a key switch as two pipeline
// Runs (plus the two cross-limb base conversions, which tile internally):
// one Run fuses the two P-side INTT chains, one Run fuses each Q-side
// NTTLazy with the SubMul epilogue consuming it — the converted rows are
// transformed and subtracted while cache-resident. When add0/add1 are
// non-nil, the exact additions d += add are fused into the same final Run
// (the SwitchKeys / HMULT tails).
//
// The P-part accumulators u0p/u1p are CONSUMED: every caller releases them
// right after ModDown, so the inverse transforms run in place instead of
// paying a defensive copy pass per component.
func (ev *Evaluator) modDownPairPipelined(u0q, u0p, u1q, u1p, add0, add1 *ring.Poly, lvl int) (d0, d1 *ring.Poly) {
	defer obsKSModDown.done(time.Now())
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvlP := u0p.Level()
	alpha := lvlP + 1

	pipe := ring.GetPipeline()
	lnP := pipe.Lane(rp, lvlP)
	lnP.INTT(u0p)
	lnP.INTT(u1p)
	pipe.Run()

	bc := ev.pToQConverter(lvl, alpha)
	conv0, conv1 := rq.GetPoly(lvl), rq.GetPoly(lvl)
	bc.ConvertLazy(conv0.Coeffs, u0p.Coeffs[:alpha])
	bc.ConvertLazy(conv1.Coeffs, u1p.Coeffs[:alpha])

	d0, d1 = rq.NewPoly(lvl), rq.NewPoly(lvl)
	s := ev.pInvModQ[alpha][:lvl+1]
	lnQ := pipe.Lane(rq, lvl)
	lnQ.NTTLazy(conv0)
	lnQ.SubMulByLimbScalarsLazy(d0, u0q, conv0, s)
	if add0 != nil {
		lnQ.Add(d0, d0, add0)
	}
	lnQ.NTTLazy(conv1)
	lnQ.SubMulByLimbScalarsLazy(d1, u1q, conv1, s)
	if add1 != nil {
		lnQ.Add(d1, d1, add1)
	}
	pipe.Run()
	pipe.Release()

	d0.IsNTT, d1.IsNTT = true, true
	rq.PutPoly(conv0)
	rq.PutPoly(conv1)
	return d0, d1
}

// modDownAutPipelined is modDownPairPipelined with the automorphism tail of
// a rotation fused into the final Run: o0 = σ_g(ModDown(u0) + c0),
// o1 = σ_g(ModDown(u1)). The sum-then-permute is recorded as the fused
// AddAutomorphismNTT stage (bit-identical because the sum is element-wise),
// so the rotation epilogue moves each row once instead of four times. Like
// modDownPairPipelined, the P-part accumulators are consumed in place.
func (ev *Evaluator) modDownAutPipelined(u0q, u0p, u1q, u1p, c0 *ring.Poly, g uint64, lvl int) (o0, o1 *ring.Poly) {
	defer obsKSModDown.done(time.Now())
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvlP := u0p.Level()
	alpha := lvlP + 1

	pipe := ring.GetPipeline()
	lnP := pipe.Lane(rp, lvlP)
	lnP.INTT(u0p)
	lnP.INTT(u1p)
	pipe.Run()

	bc := ev.pToQConverter(lvl, alpha)
	conv0, conv1 := rq.GetPoly(lvl), rq.GetPoly(lvl)
	bc.ConvertLazy(conv0.Coeffs, u0p.Coeffs[:alpha])
	bc.ConvertLazy(conv1.Coeffs, u1p.Coeffs[:alpha])

	d0, d1 := rq.GetPoly(lvl), rq.GetPoly(lvl)
	o0, o1 = rq.NewPoly(lvl), rq.NewPoly(lvl)
	s := ev.pInvModQ[alpha][:lvl+1]
	lnQ := pipe.Lane(rq, lvl)
	lnQ.NTTLazy(conv0)
	lnQ.SubMulByLimbScalarsLazy(d0, u0q, conv0, s)
	lnQ.AddAutomorphismNTT(o0, d0, c0, g)
	lnQ.NTTLazy(conv1)
	lnQ.SubMulByLimbScalarsLazy(d1, u1q, conv1, s)
	lnQ.AutomorphismNTT(o1, d1, g)
	pipe.Run()
	pipe.Release()

	rq.PutPoly(conv0)
	rq.PutPoly(conv1)
	rq.PutPoly(d0)
	rq.PutPoly(d1)
	return o0, o1
}

// rescalePipelined is Rescale with both components' kernel chains pipelined:
// one Run fuses the two copy+INTT chains, the shared [x + q_L/2]_{q_L} rows
// are computed serially (they are single rows, and every limb of the second
// Run reads them — a cross-limb dependency the pipeline must not span), and
// a second Run fuses, per limb, the rescale step, the copy into the
// level-(L-1) output, and its forward NTT.
func (ev *Evaluator) rescalePipelined(ct *Ciphertext) *Ciphertext {
	rq := ev.params.RingQ()
	lvl := ct.Level()
	rs := ev.rescaler(lvl)
	out := &Ciphertext{Scale: ct.Scale / float64(rq.Moduli[lvl].Q)}

	w0, w1 := rq.GetPoly(lvl), rq.GetPoly(lvl)
	pipe := ring.GetPipeline()
	ln := pipe.Lane(rq, lvl)
	ln.Copy(w0, ct.C0)
	ln.INTT(w0)
	ln.Copy(w1, ct.C1)
	ln.INTT(w1)
	pipe.Run()

	n := ev.params.N()
	t0, t1 := rs.BorrowT(n), rs.BorrowT(n)
	rs.LastRowPlusHalf(t0, w0.Coeffs[lvl])
	rs.LastRowPlusHalf(t1, w1.Coeffs[lvl])

	c0, c1 := rq.NewPoly(lvl-1), rq.NewPoly(lvl-1)
	ln2 := pipe.Lane(rq, lvl-1)
	ln2.Func(func(i int) {
		rs.StepRow(i, w0.Coeffs[i], t0)
		copy(c0.Coeffs[i], w0.Coeffs[i])
		rs.StepRow(i, w1.Coeffs[i], t1)
		copy(c1.Coeffs[i], w1.Coeffs[i])
	}, []*ring.Poly{w0, w1}, []*ring.Poly{c0, c1})
	ln2.NTT(c0)
	ln2.NTT(c1)
	pipe.Run()
	pipe.Release()

	rs.ReturnT(t0)
	rs.ReturnT(t1)
	rq.PutPoly(w0)
	rq.PutPoly(w1)
	out.C0, out.C1 = c0, c1
	return out
}

// autAccumPipelined is one rotation's block of the hoisted linear transform
// (§V-B AutAccum) as a single pipeline Run: the digit NTTs (first consumer
// only), the gadget-product MACs, and the five automorphism-fused
// multiply-accumulates into the sweep accumulators all execute per limb while
// the rows are cache-resident. The per-rotation gadget accumulators stay
// lazy, exactly like the barriered fused path.
func (ev *Evaluator) autAccumPipelined(dec *decomposed, swk *SwitchingKey,
	accE0q, accE1q, accE0p, accE1p, accQ0, c0, ptQ, ptP *ring.Poly, g uint64) {
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := dec.level
	lvlP := dec.plan.Alpha - 1
	bQ, aQ, bP, aP, ok := swk.gadget(dec.plan, p.Alpha())
	if !ok {
		panic("ckks: switching key lacks the band for the decomposition's gadget plan")
	}
	u0q, u1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
	u0p, u1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
	u0q.IsNTT, u1q.IsNTT, u0p.IsNTT, u1p.IsNTT = true, true, true, true

	pipe := ring.GetPipeline()
	lq := pipe.Lane(rq, lvl)
	lp := pipe.Lane(rp, lvlP)
	for d := range dec.q {
		if dec.coeffDomain {
			lq.NTTLazy(dec.q[d])
			lp.NTTLazy(dec.p[d])
		}
		lq.MulCoeffsAddLazy(u0q, dec.q[d], bQ[d])
		lq.MulCoeffsAddLazy(u1q, dec.q[d], aQ[d])
		lp.MulCoeffsAddLazy(u0p, dec.p[d], bP[d])
		lp.MulCoeffsAddLazy(u1p, dec.p[d], aP[d])
	}
	lq.AutMulCoeffsAddLazy(accE0q, u0q, ptQ, g)
	lq.AutMulCoeffsAddLazy(accE1q, u1q, ptQ, g)
	lp.AutMulCoeffsAddLazy(accE0p, u0p, ptP, g)
	lp.AutMulCoeffsAddLazy(accE1p, u1p, ptP, g)
	lq.AutMulCoeffsAddLazy(accQ0, c0, ptQ, g)
	pipe.Run()
	pipe.Release()
	dec.coeffDomain = false

	rq.PutPoly(u0q)
	rq.PutPoly(u1q)
	rp.PutPoly(u0p)
	rp.PutPoly(u1p)
}

// babyAccumPipelined is one baby rotation's block of the BSGS linear
// transform as a single pipeline Run: the digit NTTs (first consumer only),
// the shared gadget-product MACs, and — per consuming giant — the five
// automorphism-fused multiply-accumulates into that giant's accumulators, all
// executing per limb while the key-switched rows are cache-resident. Like
// autAccumPipelined, every accumulator stays lazy; the sweep reduces them
// once at the baby/giant phase boundary.
func (ev *Evaluator) babyAccumPipelined(dec *decomposed, swk *SwitchingKey,
	targets []bsgsBabyTarget, c0 *ring.Poly, g uint64) {
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := dec.level
	lvlP := dec.plan.Alpha - 1
	bQ, aQ, bP, aP, ok := swk.gadget(dec.plan, p.Alpha())
	if !ok {
		panic("ckks: switching key lacks the band for the decomposition's gadget plan")
	}
	u0q, u1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
	u0p, u1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
	u0q.IsNTT, u1q.IsNTT, u0p.IsNTT, u1p.IsNTT = true, true, true, true

	pipe := ring.GetPipeline()
	lq := pipe.Lane(rq, lvl)
	lp := pipe.Lane(rp, lvlP)
	for d := range dec.q {
		if dec.coeffDomain {
			lq.NTTLazy(dec.q[d])
			lp.NTTLazy(dec.p[d])
		}
		lq.MulCoeffsAddLazy(u0q, dec.q[d], bQ[d])
		lq.MulCoeffsAddLazy(u1q, dec.q[d], aQ[d])
		lp.MulCoeffsAddLazy(u0p, dec.p[d], bP[d])
		lp.MulCoeffsAddLazy(u1p, dec.p[d], aP[d])
	}
	for _, tg := range targets {
		ga := tg.acc
		lq.AutMulCoeffsAddLazy(ga.t0q, u0q, tg.ptQ, g)
		lq.AutMulCoeffsAddLazy(ga.t1q, u1q, tg.ptQ, g)
		lp.AutMulCoeffsAddLazy(ga.t0p, u0p, tg.ptP, g)
		lp.AutMulCoeffsAddLazy(ga.t1p, u1p, tg.ptP, g)
		lq.AutMulCoeffsAddLazy(ga.a0q, c0, tg.ptQ, g)
	}
	pipe.Run()
	pipe.Release()
	dec.coeffDomain = false

	rq.PutPoly(u0q)
	rq.PutPoly(u1q)
	rp.PutPoly(u0p)
	rp.PutPoly(u1p)
}

// giantAccumPipelined is one giant step's σ+add epilogue as a single pipeline
// Run: each partial result (T0 + v0, v1, and the Q-basis σ_b(c0) sum when
// present) is permuted by the giant's Galois element into a scratch row and
// added into the sweep accumulator while the row is cache-resident. Inputs
// must be exact (the BSGS giant phase reduces them before calling).
func (ev *Evaluator) giantAccumPipelined(t0q, w1q, t0p, w1p, a0q,
	accE0q, accE1q, accE0p, accE1p, accQ0 *ring.Poly, gal uint64) {
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := accE0q.Level()
	lvlP := accE0p.Level()
	tmp0, tmp1 := rq.GetPoly(lvl), rq.GetPoly(lvl)
	tmp0p, tmp1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)

	pipe := ring.GetPipeline()
	lq := pipe.Lane(rq, lvl)
	lp := pipe.Lane(rp, lvlP)
	lq.AutomorphismNTT(tmp0, t0q, gal)
	lq.Add(accE0q, accE0q, tmp0)
	lq.AutomorphismNTT(tmp1, w1q, gal)
	lq.Add(accE1q, accE1q, tmp1)
	lp.AutomorphismNTT(tmp0p, t0p, gal)
	lp.Add(accE0p, accE0p, tmp0p)
	lp.AutomorphismNTT(tmp1p, w1p, gal)
	lp.Add(accE1p, accE1p, tmp1p)
	var tmpA *ring.Poly
	if a0q != nil {
		tmpA = rq.GetPoly(lvl)
		lq.AutomorphismNTT(tmpA, a0q, gal)
		lq.Add(accQ0, accQ0, tmpA)
	}
	pipe.Run()
	pipe.Release()

	rq.PutPoly(tmp0)
	rq.PutPoly(tmp1)
	rp.PutPoly(tmp0p)
	rp.PutPoly(tmp1p)
	if tmpA != nil {
		rq.PutPoly(tmpA)
	}
}

// reduceManyPipelined normalizes several lazy accumulators (Q-basis at lvl,
// P-basis at lvlP) in one pipeline Run — the end-of-sweep reductions of the
// hoisted linear transform, one barrier instead of one per accumulator.
func (ev *Evaluator) reduceManyPipelined(qs []*ring.Poly, lvl int, ps []*ring.Poly, lvlP int) {
	pipe := ring.GetPipeline()
	lq := pipe.Lane(ev.params.RingQ(), lvl)
	for _, p := range qs {
		lq.ReduceLazy(p)
	}
	if len(ps) > 0 {
		lp := pipe.Lane(ev.params.RingP(), lvlP)
		for _, p := range ps {
			lp.ReduceLazy(p)
		}
	}
	pipe.Run()
	pipe.Release()
}
