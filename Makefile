GO ?= go

.PHONY: all build vet test race bench micro serve clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Paper-figure benchmarks (testing.B, one per artifact).
bench:
	$(GO) test -bench=. -benchmem -run=^$$ ./...

# FHE op microbenchmarks -> BENCH_PR1.json (the perf trajectory file).
micro:
	$(GO) run ./cmd/anaheim-bench -micro -o BENCH_PR1.json

serve:
	$(GO) run ./cmd/anaheim-serve -addr :8080

clean:
	$(GO) clean ./...
