package ntt

// Reference implementations: the pre-Harvey fully-reduced kernels, kept (a)
// as an independently-derived oracle for the differential tests and (b) so
// anaheim-bench can emit before/after pairs for the lazy-reduction rewrite
// (the *_ref entries in BENCH_BASELINE.json). Not used on any hot path.

// ForwardRef is the textbook fully-reduced forward transform: one exact
// Shoup multiply, one exact add, and one exact subtract per butterfly.
func (t *Tables) ForwardRef(a []uint64) {
	t.checkLen(a, "ForwardRef")
	mod := t.Mod
	span := t.N
	for m := 1; m < t.N; m <<= 1 {
		span >>= 1
		for i := 0; i < m; i++ {
			w := t.psiRev[m+i]
			ws := t.psiRevShoup[m+i]
			j1 := 2 * i * span
			for j := j1; j < j1+span; j++ {
				u := a[j]
				v := mod.MulShoup(a[j+span], w, ws)
				a[j] = mod.Add(u, v)
				a[j+span] = mod.Sub(u, v)
			}
		}
	}
}

// InverseRef is the fully-reduced inverse transform with a separate 1/N
// scaling pass.
func (t *Tables) InverseRef(a []uint64) {
	t.checkLen(a, "InverseRef")
	mod := t.Mod
	span := 1
	for m := t.N >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			w := t.psiInvRev[m+i]
			ws := t.psiInvShoup[m+i]
			j1 := 2 * i * span
			for j := j1; j < j1+span; j++ {
				u := a[j]
				v := a[j+span]
				a[j] = mod.Add(u, v)
				a[j+span] = mod.MulShoup(mod.Sub(u, v), w, ws)
			}
		}
		span <<= 1
	}
	for j := range a {
		a[j] = mod.MulShoup(a[j], t.nInv, t.nInvShoup)
	}
}

// MulCoeffsRef is the division-based element-wise product MulCoeffs used
// before the Barrett rewrite.
func (t *Tables) MulCoeffsRef(c, a, b []uint64) {
	mod := t.Mod
	for i := range c {
		c[i] = mod.Mul(a[i], b[i])
	}
}
