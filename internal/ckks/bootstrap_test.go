package ckks

import (
	"math"
	"math/rand"
	"testing"
)

func TestModRaise(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(60))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.eval.DropLevel(tc.encryptVec(t, v), 0)

	b := &Bootstrapper{params: tc.params, q0: float64(tc.params.RingQ().Moduli[0].Q)}
	raised := b.ModRaise(ct)
	if raised.Level() != tc.params.MaxLevel() {
		t.Fatalf("level after ModRaise = %d", raised.Level())
	}
	// Decrypting the raised ciphertext and reducing mod q0 must recover the
	// message: slots differ from v only by multiples of q0/Δ (the I terms),
	// which for most slots are zero in magnitude ≤ K·q0/Δ. Instead of
	// checking slots (spiky), check the coefficient residues mod q0.
	pt := tc.decr.DecryptNew(raised)
	rq := tc.params.RingQ()
	work := pt.Value.CopyNew()
	rq.INTT(work, raised.Level())

	ptLow := tc.decr.DecryptNew(ct)
	workLow := ptLow.Value.CopyNew()
	rq.INTT(workLow, 0)

	q0 := rq.Moduli[0]
	for j := 0; j < tc.params.N(); j++ {
		if work.Coeffs[0][j] != workLow.Coeffs[0][j] {
			t.Fatalf("coefficient %d mod q0 changed after ModRaise", j)
		}
	}
	_ = q0
}

func TestBootstrapEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping test is expensive")
	}
	tc := newTestContext(t, BootTestParameters())
	cfg := DefaultBootstrapConfig()
	boot, err := NewBootstrapper(tc.params, tc.enc, tc.eval, tc.kgen, tc.sk, tc.keys, cfg)
	if err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(61))
	v := randomComplex(r, tc.params.Slots(), 0.7)
	ct := tc.encryptVec(t, v)
	// Exhaust the ciphertext.
	ct = tc.eval.DropLevel(ct, 0)
	if ct.Level() != 0 {
		t.Fatal("setup: ciphertext not at level 0")
	}

	out, err := boot.Bootstrap(ct)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level() <= 0 {
		t.Fatalf("bootstrap did not regain levels: level=%d", out.Level())
	}
	if math.Abs(out.Scale/tc.params.DefaultScale()-1) > 1e-9 {
		t.Fatalf("bootstrap scale %g != Δ %g", out.Scale, tc.params.DefaultScale())
	}
	got := tc.decryptVec(out)
	stats := ComputePrecision(got, v)
	e := stats.MaxErr
	t.Logf("bootstrap: regained level %d, %s", out.Level(), stats)
	if e > 2e-2 {
		t.Fatalf("bootstrap error %g too large", e)
	}

	// The refreshed ciphertext must support further multiplications.
	sq := tc.eval.Rescale(tc.eval.Square(out))
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] * v[i]
	}
	if e := maxErr(tc.decryptVec(sq), want); e > 5e-2 {
		t.Fatalf("post-bootstrap squaring error %g", e)
	}
}

func TestBootstrapFFTIterVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping test is expensive")
	}
	// Fewer grouped matrices consume fewer levels but use denser transforms
	// (the fftIter trade-off of Fig 3). Both must stay functional.
	tc := newTestContext(t, BootTestParameters())
	r := rand.New(rand.NewSource(62))
	v := randomComplex(r, tc.params.Slots(), 0.7)
	for _, iters := range []int{2, 3} {
		cfg := DefaultBootstrapConfig()
		cfg.FFTIterC2S, cfg.FFTIterS2C = iters, iters
		boot, err := NewBootstrapper(tc.params, tc.enc, tc.eval, tc.kgen, tc.sk, tc.keys, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ct := tc.eval.DropLevel(tc.encryptVec(t, v), 0)
		out, err := boot.Bootstrap(ct)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxErr(tc.decryptVec(out), v); e > 2e-2 {
			t.Fatalf("fftIter=%d: bootstrap error %g", iters, e)
		}
		// Smaller fftIter must leave the output at a higher level.
		t.Logf("fftIter=%d: output level %d", iters, out.Level())
	}
}

func TestEvalModPlainReference(t *testing.T) {
	// The Chebyshev-of-cosine + double-angle construction must approximate
	// sin(2πt) on the EvalMod interval, in plaintext.
	cfg := DefaultBootstrapConfig()
	r := float64(int(1) << uint(cfg.DoubleAngles))
	f := func(t float64) float64 { return math.Cos(2 * math.Pi * (t - 0.25) / r) }
	k1 := float64(cfg.K + 1)
	coeffs := ChebyshevInterpolation(f, -k1, k1, cfg.EvalModDeg)
	for i := 0; i <= 200; i++ {
		t0 := -k1 + 2*k1*float64(i)/200
		c := EvalChebyshevSeries(coeffs, -k1, k1, t0)
		for d := 0; d < cfg.DoubleAngles; d++ {
			c = 2*c*c - 1
		}
		want := math.Sin(2 * math.Pi * t0)
		if math.Abs(c-want) > 1e-6 {
			t.Fatalf("EvalMod reference error %g at t=%g", math.Abs(c-want), t0)
		}
	}
}
