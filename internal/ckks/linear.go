package ckks

import (
	"fmt"
	"math"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// LinearTransform is a slot-space linear map in the diagonal (Halevi–Shoup)
// representation used for FHE linear transforms (§III-B):
//
//	(M·u)_j = Σ_r Diags[r][j] · u_{(j+r) mod slots} ,
//
// i.e. M·u = Σ_r d_r ⊙ (u ≪ r), evaluated homomorphically with K = |Diags|
// PMULT and HROT pairs.
type LinearTransform struct {
	Slots int
	Diags map[int][]complex128
}

// NewLinearTransform copies the provided diagonals.
func NewLinearTransform(slots int, diags map[int][]complex128) *LinearTransform {
	lt := &LinearTransform{Slots: slots, Diags: make(map[int][]complex128, len(diags))}
	for r, d := range diags {
		v := make([]complex128, slots)
		copy(v, d)
		lt.Diags[((r%slots)+slots)%slots] = v
	}
	return lt
}

// Rotations returns the rotation indices needed to evaluate the transform.
func (lt *LinearTransform) Rotations() []int {
	out := make([]int, 0, len(lt.Diags))
	for r := range lt.Diags {
		if r != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Apply evaluates the transform on a plaintext vector (reference for tests).
func (lt *LinearTransform) Apply(u []complex128) []complex128 {
	n := lt.Slots
	out := make([]complex128, n)
	for r, d := range lt.Diags {
		for j := 0; j < n; j++ {
			out[j] += d[j] * u[(j+r)%n]
		}
	}
	return out
}

// encodeDiagQP encodes a diagonal into both the Q basis (level lvl) and the
// P basis, sharing the same integer coefficients — the "larger plaintexts in
// the extended modulus PQ" that hoisting requires (§III-B).
func (e *Encoder) encodeDiagQP(values []complex128, lvl int, scale float64) (*ring.Poly, *ring.Poly, error) {
	slots := e.params.Slots()
	if len(values) > slots {
		return nil, nil, fmt.Errorf("ckks: diagonal longer than slot count")
	}
	vals := make([]complex128, slots)
	copy(vals, values)
	e.specialIFFT(vals)

	nh := e.params.N() / 2
	ints := make([]int64, e.params.N())
	for j := 0; j < nh; j++ {
		ints[j] = int64(math.Round(real(vals[j]) * scale))
		ints[j+nh] = int64(math.Round(imag(vals[j]) * scale))
	}
	rq, rp := e.params.RingQ(), e.params.RingP()
	pq := ring.SmallVectorToPoly(rq, lvl, ints)
	pp := ring.SmallVectorToPoly(rp, rp.MaxLevel(), ints)
	rq.NTT(pq, lvl)
	rp.NTT(pp, rp.MaxLevel())
	return pq, pp, nil
}

// EvaluateLinearTransformHoisted computes M·u with the hoisting optimization
// of Fig 1/Fig 5: one ModUp for all K rotations, PMULT and accumulation in
// the extended modulus PQ, and a single hoisted ModDown at the end. The
// diagonals are encoded at the scale of the ciphertext's top prime so that
// the caller's Rescale restores the input scale exactly.
func (ev *Evaluator) EvaluateLinearTransformHoisted(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := ct.Level()
	lvlP := rp.MaxLevel()
	ptScale := float64(rq.Moduli[lvl].Q)

	dec := ev.Decompose(ct.C1, lvl)
	defer dec.release(p)

	// Q-basis accumulators for the rotation-0 term and the c0 parts;
	// QP-basis accumulators for the hoisted key-switched parts.
	accQ0, accQ1 := rq.NewPoly(lvl), rq.NewPoly(lvl)
	accQ0.IsNTT, accQ1.IsNTT = true, true
	accE0q, accE1q := rq.NewPoly(lvl), rq.NewPoly(lvl)
	accE0p, accE1p := rp.NewPoly(lvlP), rp.NewPoly(lvlP)
	accE0q.IsNTT, accE1q.IsNTT, accE0p.IsNTT, accE1p.IsNTT = true, true, true, true
	anyExt := false

	for r, diag := range lt.Diags {
		ptQ, ptP, err := enc.encodeDiagQP(diag, lvl, ptScale)
		if err != nil {
			return nil, err
		}
		if r == 0 {
			rq.MulCoeffsAdd(accQ0, ct.C0, ptQ, lvl)
			rq.MulCoeffsAdd(accQ1, ct.C1, ptQ, lvl)
			continue
		}
		anyExt = true
		g := rq.GaloisElement(r)
		swk, err := ev.keys.GaloisKey(g)
		if err != nil {
			return nil, err
		}
		u0q, u0p, u1q, u1p := ev.gadgetProduct(dec, swk)
		// Automorphism of the extended-basis partial results, then PMULT
		// and accumulation in PQ (AutAccum precedes the single ModDown).
		rot0q, rot1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
		rot0p, rot1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
		rq.AutomorphismNTT(rot0q, u0q, g, lvl)
		rq.AutomorphismNTT(rot1q, u1q, g, lvl)
		rp.AutomorphismNTT(rot0p, u0p, g, lvlP)
		rp.AutomorphismNTT(rot1p, u1p, g, lvlP)
		rq.PutPoly(u0q)
		rq.PutPoly(u1q)
		rp.PutPoly(u0p)
		rp.PutPoly(u1p)
		rq.MulCoeffsAdd(accE0q, rot0q, ptQ, lvl)
		rq.MulCoeffsAdd(accE1q, rot1q, ptQ, lvl)
		rp.MulCoeffsAdd(accE0p, rot0p, ptP, lvlP)
		rp.MulCoeffsAdd(accE1p, rot1p, ptP, lvlP)
		rq.PutPoly(rot0q)
		rq.PutPoly(rot1q)
		rp.PutPoly(rot0p)
		rp.PutPoly(rot1p)
		// The σ(c0) contribution stays in the Q basis.
		rotC0 := rq.GetPoly(lvl)
		rq.AutomorphismNTT(rotC0, ct.C0, g, lvl)
		rq.MulCoeffsAdd(accQ0, rotC0, ptQ, lvl)
		rq.PutPoly(rotC0)
	}

	out := &Ciphertext{Scale: ct.Scale * ptScale}
	if anyExt {
		d0 := ev.ModDown(accE0q, accE0p, lvl)
		d1 := ev.ModDown(accE1q, accE1p, lvl)
		rq.Add(d0, d0, accQ0, lvl)
		rq.Add(d1, d1, accQ1, lvl)
		out.C0, out.C1 = d0, d1
	} else {
		out.C0, out.C1 = accQ0, accQ1
	}
	return out, nil
}

// EvaluateLinearTransformMinKS computes M·u with the minimum-key-switching
// strategy (§III-B): only the rotation-by-one key is used, iterating
// HROT(·, 1) and accumulating the needed diagonals. It trades K evaluation
// keys for K sequential key switches.
func (ev *Evaluator) EvaluateLinearTransformMinKS(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	p := ev.params
	rq := p.RingQ()
	lvl := ct.Level()
	ptScale := float64(rq.Moduli[lvl].Q)

	maxRot := 0
	for r := range lt.Diags {
		if r > maxRot {
			maxRot = r
		}
	}

	acc0, acc1 := rq.NewPoly(lvl), rq.NewPoly(lvl)
	acc0.IsNTT, acc1.IsNTT = true, true
	cur := ct
	for k := 0; k <= maxRot; k++ {
		if k > 0 {
			var err error
			cur, err = ev.Rotate(cur, 1)
			if err != nil {
				return nil, err
			}
		}
		diag, ok := lt.Diags[k]
		if !ok {
			continue
		}
		ptQ, _, err := enc.encodeDiagQP(diag, lvl, ptScale)
		if err != nil {
			return nil, err
		}
		rq.MulCoeffsAdd(acc0, cur.C0, ptQ, lvl)
		rq.MulCoeffsAdd(acc1, cur.C1, ptQ, lvl)
	}
	return &Ciphertext{C0: acc0, C1: acc1, Scale: ct.Scale * ptScale}, nil
}
