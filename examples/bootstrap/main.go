// Bootstrapping: refresh an exhausted ciphertext without decrypting it —
// the defining feature of FHE (§II-C) and the workload at the center of the
// Anaheim evaluation. Takes ~15s at the (insecure) demo scale N=2^11.
package main

import (
	"fmt"
	"log"
	"math"
	"math/cmplx"
	"math/rand"
	"time"

	"github.com/anaheim-sim/anaheim"
)

func main() {
	fmt.Println("setting up bootstrapping keys and DFT matrices (N=2^11)...")
	ctx, err := anaheim.NewContext(anaheim.BootParameters(), 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctx.SetupBootstrapping(anaheim.DefaultBootstrapConfig()); err != nil {
		log.Fatal(err)
	}

	r := rand.New(rand.NewSource(3))
	slots := ctx.Params.Slots()
	v := make([]complex128, slots)
	for i := range v {
		v[i] = complex(1.4*r.Float64()-0.7, 1.4*r.Float64()-0.7)
	}
	ct, err := ctx.Encrypt(v)
	if err != nil {
		log.Fatal(err)
	}

	// Burn the ciphertext down to level 0: no multiplications remain.
	ct = ctx.DropToLevel(ct, 0)
	fmt.Printf("ciphertext exhausted: level %d (no multiplications left)\n", ct.Level())

	start := time.Now()
	fresh, err := ctx.Bootstrap(ct)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	got := ctx.Decrypt(fresh)
	maxE := 0.0
	for i := range v {
		if e := cmplx.Abs(got[i] - v[i]); e > maxE {
			maxE = e
		}
	}
	fmt.Printf("bootstrapped in %v: level 0 -> %d, max slot error %.3g (≈%.1f bits)\n",
		elapsed.Round(time.Millisecond), fresh.Level(), maxE, -math.Log2(maxE))

	// Prove the refreshed ciphertext computes again.
	sq := ctx.Mul(fresh, fresh)
	gotSq := ctx.Decrypt(sq)
	worst := 0.0
	for i := range v {
		if e := cmplx.Abs(gotSq[i] - v[i]*v[i]); e > worst {
			worst = e
		}
	}
	fmt.Printf("post-bootstrap squaring error: %.3g\n", worst)
	if maxE > 2e-2 || worst > 5e-2 {
		log.Fatal("bootstrap accuracy insufficient")
	}
	fmt.Println("bootstrapping: OK")
}
