// Package engine is the concurrent FHE serving runtime that sits between
// the public facade and the ckks evaluator. It owns three things:
//
//   - a session manager: per-client CKKS contexts (compiled parameters +
//     uploaded evaluation keys + evaluator) with concurrency-safe access;
//
//   - a job scheduler: clients submit encrypted-compute jobs — DAGs of
//     homomorphic ops over named ciphertext handles — and the scheduler
//     tracks dependencies, dispatching each op as soon as its inputs exist;
//
//   - a bounded worker pool: ready ops flow through a bounded queue to a
//     fixed set of workers, with backpressure at job admission, context
//     cancellation, and per-job deadlines.
//
// The layering mirrors how the Cheddar GPU library (the substrate of the
// Anaheim paper) gets its throughput: streams and kernel queues above the
// math kernels, buffer reuse below them (the ring-level poly pool).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

// Config sizes the runtime.
type Config struct {
	// Workers is the number of op-executing goroutines. Defaults to
	// GOMAXPROCS.
	Workers int
	// QueueSize bounds the ready-op queue between scheduler and workers.
	// Defaults to 4×Workers.
	QueueSize int
	// MaxActiveJobs bounds admitted (queued or running) jobs; Submit fails
	// fast with ErrBusy beyond it. Defaults to 64.
	MaxActiveJobs int
	// DefaultDeadline applies to jobs that do not set one. Defaults to 2
	// minutes.
	DefaultDeadline time.Duration
	// MaxBodyBytes caps HTTP request bodies accepted by NewHTTPHandler;
	// oversized POSTs get 413 instead of OOMing the server. Defaults to
	// 64 MiB (evaluation-key uploads are the largest legitimate payloads).
	MaxBodyBytes int64
	// DisableFusion turns off the admission-time op-DAG rewrite (add-ladder
	// and linear-combination folding); jobs then execute exactly the ops
	// they were submitted with.
	DisableFusion bool
	// Obs receives the engine's metrics (counters, gauges, latency
	// histograms). Defaults to obs.Default.
	Obs *obs.Registry
	// Tracer records per-job/per-op spans. Defaults to obs.DefaultTracer.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4 * c.Workers
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 64
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer
	}
	return c
}

// ErrBusy is returned by Submit when the engine is at its admission limit.
// Clients should retry with backoff; the HTTP layer maps it to 429.
var ErrBusy = errors.New("engine: job queue full")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("engine: closed")

// Engine is the serving runtime. Create with New, stop with Close.
type Engine struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	closed   bool
	sessions map[string]*Session
	jobs     map[string]*Job

	active atomic.Int64 // admitted (queued or running) jobs
	seq    atomic.Uint64

	metrics *engineMetrics
	tracer  *obs.Tracer

	events chan event
	ready  chan *opTask
	wg     sync.WaitGroup
}

type eventKind int

const (
	evSubmit eventKind = iota
	evOpDone
	evJobAbort
)

type event struct {
	kind   eventKind
	job    *Job
	task   *opTask
	result *result
	err    error
}

type opTask struct {
	job     *Job
	op      *OpSpec
	readyAt time.Time // when the op's dependencies were met (queue-wait origin)
}

// New starts the worker pool and scheduler.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:      cfg,
		ctx:      ctx,
		cancel:   cancel,
		sessions: make(map[string]*Session),
		jobs:     make(map[string]*Job),
		metrics:  newEngineMetrics(cfg.Obs),
		tracer:   cfg.Tracer,
		events:   make(chan event),
		ready:    make(chan *opTask, cfg.QueueSize),
	}
	// Sampled-at-scrape gauges; when several engines share a registry the
	// most recently started one wins, which is what a serving process wants.
	cfg.Obs.GaugeFunc("engine_active_jobs", func() float64 { return float64(e.active.Load()) })
	cfg.Obs.GaugeFunc("engine_ready_queue_depth", func() float64 { return float64(len(e.ready)) })
	e.wg.Add(1)
	go e.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Config returns the effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Close stops the runtime. In-flight jobs fail with context.Canceled.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
}

func (e *Engine) newID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, e.seq.Add(1))
}

// ---------------------------------------------------------------------------
// Workers

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.ctx.Done():
			return
		case t := <-e.ready:
			m := e.metrics.op(t.op.Op)
			m.queueWait.Observe(time.Since(t.readyAt).Seconds())
			e.metrics.workersBusy.Add(1)
			sp := e.tracer.Start("op:"+t.op.Op, t.job.spanID())
			sp.Annotate("id=" + t.op.ID + " job=" + t.job.ID)
			start := time.Now()
			res, err := e.executeTask(t)
			sp.End()
			e.metrics.workersBusy.Add(-1)
			m.exec.Observe(time.Since(start).Seconds())
			m.total.Inc()
			if err != nil {
				m.failures.Inc()
			}
			select {
			case e.events <- event{kind: evOpDone, job: t.job, task: t, result: res, err: err}:
			case <-e.ctx.Done():
				return
			}
		}
	}
}

// executeTask runs one op, converting evaluator panics (scale mismatches,
// level exhaustion) into job failures rather than process crashes.
func (e *Engine) executeTask(t *opTask) (res *result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("op %q (%s): panic: %v", t.op.ID, t.op.Op, r)
		}
	}()
	if err := t.job.ctx.Err(); err != nil {
		return nil, err
	}
	return t.job.sess.apply(t.job, t.op)
}

// ---------------------------------------------------------------------------
// Scheduler

// jobState is dispatcher-private dependency bookkeeping for one job.
type jobState struct {
	waiting    map[string]int      // opID -> unmet dependency count
	dependents map[string][]string // opID -> ops unblocked by it
	byID       map[string]*OpSpec
	remaining  int
}

func (e *Engine) dispatch() {
	defer e.wg.Done()
	states := make(map[*Job]*jobState)
	var pending []*opTask

	enqueueReady := func(j *Job, st *jobState, opID string) {
		pending = append(pending, &opTask{job: j, op: st.byID[opID], readyAt: time.Now()})
	}

	handle := func(ev event) {
		j := ev.job
		switch ev.kind {
		case evSubmit:
			st := newJobState(&j.spec)
			states[j] = st
			j.setStatus(StatusRunning, nil)
			for _, op := range j.spec.Ops {
				if st.waiting[op.ID] == 0 {
					enqueueReady(j, st, op.ID)
				}
			}
		case evOpDone:
			st := states[j]
			if st == nil {
				return // job already finished (failed or aborted)
			}
			if ev.err != nil {
				e.finishJob(j, states, fmt.Errorf("op %q: %w", ev.task.op.ID, ev.err))
				return
			}
			j.storeResult(ev.task.op.ID, ev.result)
			st.remaining--
			for _, dep := range st.dependents[ev.task.op.ID] {
				st.waiting[dep]--
				if st.waiting[dep] == 0 {
					enqueueReady(j, st, dep)
				}
			}
			if st.remaining == 0 {
				e.finishJob(j, states, nil)
			}
		case evJobAbort:
			if states[j] != nil {
				e.finishJob(j, states, j.ctx.Err())
			}
		}
	}

	for {
		var readyCh chan *opTask
		var head *opTask
		if len(pending) > 0 {
			// Skip ops of jobs that already failed.
			for len(pending) > 0 && pending[0].job.terminal() {
				pending = pending[1:]
			}
			if len(pending) > 0 {
				readyCh, head = e.ready, pending[0]
			}
		}
		select {
		case <-e.ctx.Done():
			// Fail whatever is still tracked so waiters wake up.
			for j := range states {
				j.setStatus(StatusFailed, context.Canceled)
				j.cancel()
				e.active.Add(-1)
				e.metrics.jobsCancelled.Inc()
			}
			return
		case ev := <-e.events:
			handle(ev)
		case readyCh <- head:
			pending = pending[1:]
		}
	}
}

// finishJob transitions a job to its terminal state and releases its
// admission slot.
func (e *Engine) finishJob(j *Job, states map[*Job]*jobState, err error) {
	delete(states, j)
	if err != nil {
		j.setStatus(StatusFailed, err)
	} else {
		j.setStatus(StatusDone, nil)
	}
	j.cancel()
	e.active.Add(-1)
	e.metrics.finished(err,
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled))
}

// newJobState builds the dependency graph (validated at Submit).
func newJobState(spec *JobSpec) *jobState {
	st := &jobState{
		waiting:    make(map[string]int),
		dependents: make(map[string][]string),
		byID:       make(map[string]*OpSpec),
		remaining:  len(spec.Ops),
	}
	for i := range spec.Ops {
		op := &spec.Ops[i]
		st.byID[op.ID] = op
		for _, a := range op.Args {
			if _, isOp := opArg(spec, a); isOp {
				st.waiting[op.ID]++
				st.dependents[a] = append(st.dependents[a], op.ID)
			}
		}
	}
	return st
}

// opArg reports whether an argument name refers to an op (vs an input).
func opArg(spec *JobSpec, name string) (*OpSpec, bool) {
	for i := range spec.Ops {
		if spec.Ops[i].ID == name {
			return &spec.Ops[i], true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Submission

// Submit validates and admits a job. It fails fast with ErrBusy when the
// engine is at MaxActiveJobs, giving HTTP clients an explicit backpressure
// signal instead of unbounded queueing.
func (e *Engine) Submit(spec JobSpec) (*Job, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	sess := e.sessions[spec.SessionID]
	e.mu.Unlock()
	if sess == nil {
		return nil, fmt.Errorf("engine: unknown session %q", spec.SessionID)
	}
	if err := validate(&spec); err != nil {
		return nil, err
	}
	if !e.cfg.DisableFusion {
		e.applyFusion(&spec)
	}
	// Admission control (backpressure).
	for {
		n := e.active.Load()
		if n >= int64(e.cfg.MaxActiveJobs) {
			e.metrics.jobsRejected.Inc()
			return nil, ErrBusy
		}
		if e.active.CompareAndSwap(n, n+1) {
			break
		}
	}

	deadline := spec.Deadline
	if deadline <= 0 {
		deadline = e.cfg.DefaultDeadline
	}
	ctx, cancel := context.WithTimeout(e.ctx, deadline)
	j := &Job{
		ID:      e.newID("job"),
		sess:    sess,
		spec:    spec,
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusQueued,
		results: make(map[string]*result, len(spec.Ops)),
		done:    make(chan struct{}),
	}
	j.span = e.tracer.Start("job", 0)
	j.span.Annotate("id=" + j.ID + " sess=" + spec.SessionID)
	e.mu.Lock()
	e.jobs[j.ID] = j
	e.mu.Unlock()

	// Deadline/cancellation watcher: wakes the dispatcher so jobs whose
	// remaining ops never reach a worker (e.g. expired while queued) still
	// terminate.
	go func() {
		<-ctx.Done()
		select {
		case e.events <- event{kind: evJobAbort, job: j}:
		case <-e.ctx.Done():
		}
	}()

	select {
	case e.events <- event{kind: evSubmit, job: j}:
	case <-e.ctx.Done():
		e.active.Add(-1)
		cancel()
		return nil, ErrClosed
	}
	e.metrics.jobsAdmitted.Inc()
	return j, nil
}

// Job returns a submitted job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// validate checks the job spec shape before admission: known op kinds,
// resolvable references, unique IDs, and an acyclic dependency graph.
func validate(spec *JobSpec) error {
	if len(spec.Ops) == 0 {
		return fmt.Errorf("engine: job has no ops")
	}
	names := make(map[string]bool, len(spec.Inputs)+len(spec.Ops))
	for in := range spec.Inputs {
		if in == "" {
			return fmt.Errorf("engine: empty input name")
		}
		names[in] = true
	}
	for i := range spec.Ops {
		op := &spec.Ops[i]
		if op.ID == "" {
			return fmt.Errorf("engine: op %d has no id", i)
		}
		if names[op.ID] {
			return fmt.Errorf("engine: duplicate name %q", op.ID)
		}
		names[op.ID] = true
		if err := checkOp(op); err != nil {
			return err
		}
	}
	for i := range spec.Ops {
		for _, a := range spec.Ops[i].Args {
			if !names[a] {
				return fmt.Errorf("engine: op %q references unknown name %q", spec.Ops[i].ID, a)
			}
		}
	}
	if len(spec.Outputs) == 0 {
		return fmt.Errorf("engine: job has no outputs")
	}
	for _, o := range spec.Outputs {
		if _, isOp := opArg(spec, o); !isOp {
			return fmt.Errorf("engine: output %q is not an op id", o)
		}
	}
	// Cycle detection: Kahn's algorithm over the op-to-op edges.
	st := newJobState(spec)
	queue := make([]string, 0, len(spec.Ops))
	for _, op := range spec.Ops {
		if st.waiting[op.ID] == 0 {
			queue = append(queue, op.ID)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, dep := range st.dependents[id] {
			st.waiting[dep]--
			if st.waiting[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if seen != len(spec.Ops) {
		return fmt.Errorf("engine: op dependency cycle")
	}
	return nil
}
