package rns

import (
	"encoding/binary"
	"math/big"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

// fuzzBases are fixed prime chains so the fuzzer spends its budget on
// residue patterns, not prime generation. Three shapes cover small/large
// digits and the near-cap 60-bit moduli.
var fuzzBases = func() []*BasisConverter {
	mk := func(fromBits, k, toBits, nTo int) *BasisConverter {
		fp, err := modarith.GenerateNTTPrimes(fromBits, 8, k)
		if err != nil {
			panic(err)
		}
		tp, err := modarith.GenerateNTTPrimes(toBits, 8, nTo)
		if err != nil {
			panic(err)
		}
		from := make([]modarith.Modulus, k)
		for i, q := range fp {
			from[i] = modarith.MustModulus(q)
		}
		to := make([]modarith.Modulus, nTo)
		for j, q := range tp {
			to[j] = modarith.MustModulus(q)
		}
		bc, err := NewBasisConverter(from, to)
		if err != nil {
			panic(err)
		}
		return bc
	}
	return []*BasisConverter{
		mk(45, 3, 50, 2),
		mk(50, 6, 55, 4),
		mk(60, 2, 60, 3),
	}
}()

// FuzzBConv feeds arbitrary residue rows through the wide-accumulation
// Convert and cross-checks it three ways: exact equality with the scalar
// reference oracle, the big.Int x + e·Q contract (0 ≤ e < k, one e across
// all targets), and ConvertLazy staying in [0, 2q) congruent to Convert.
// The rescale pair is differentially checked on the same draws.
func FuzzBConv(f *testing.F) {
	f.Add(uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0})
	f.Add(uint8(2), []byte{})
	f.Fuzz(func(t *testing.T, which uint8, data []byte) {
		bc := fuzzBases[int(which)%len(fuzzBases)]
		k := len(bc.From)
		const n = 4
		in := make([][]uint64, k)
		for i := range in {
			in[i] = make([]uint64, n)
			for c := 0; c < n; c++ {
				var buf [8]byte
				off := (i*n + c) * 8
				if off+8 <= len(data) {
					copy(buf[:], data[off:])
				}
				in[i][c] = binary.LittleEndian.Uint64(buf[:]) % bc.From[i].Q
			}
		}
		got := newRows(len(bc.To), n)
		want := newRows(len(bc.To), n)
		lazy := newRows(len(bc.To), n)
		bc.Convert(got, in)
		bc.ConvertRef(want, in)
		bc.ConvertLazy(lazy, in)
		Q := basisProduct(bc.From)
		for c := 0; c < n; c++ {
			x := crtReconstruct(in, c, bc.From)
			found := false
			for e := int64(0); e < int64(k); e++ {
				v := new(big.Int).Add(x, new(big.Int).Mul(Q, big.NewInt(e)))
				ok := true
				for j := range bc.To {
					if got[j][c] != new(big.Int).Mod(v, new(big.Int).SetUint64(bc.To[j].Q)).Uint64() {
						ok = false
						break
					}
				}
				if ok {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("col %d: Convert output is not x + e·Q for any 0 ≤ e < %d", c, k)
			}
		}
		for j := range got {
			pj := bc.To[j]
			for c := 0; c < n; c++ {
				if got[j][c] != want[j][c] {
					t.Fatalf("target %d col %d: wide %d != ref %d", j, c, got[j][c], want[j][c])
				}
				if lazy[j][c] >= pj.TwoQ || (lazy[j][c] != got[j][c] && lazy[j][c] != got[j][c]+pj.Q) {
					t.Fatalf("target %d col %d: lazy %d not a [0, 2q) residue of %d", j, c, lazy[j][c], got[j][c])
				}
			}
		}

		if k >= 2 {
			// Rescale differential on the same residues (drop the last limb).
			rows := make([][]uint64, k)
			ref := make([][]uint64, k)
			for i := range rows {
				rows[i] = append([]uint64(nil), in[i]...)
				ref[i] = append([]uint64(nil), in[i]...)
			}
			DivRoundByLastModulus(bc.From, rows)
			DivRoundByLastModulusRef(bc.From, ref)
			for i := 0; i < k-1; i++ {
				for c := 0; c < n; c++ {
					if rows[i][c] != ref[i][c] {
						t.Fatalf("rescale limb %d col %d: %d != ref %d", i, c, rows[i][c], ref[i][c])
					}
				}
			}
		}
	})
}
