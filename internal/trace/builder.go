package trace

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/pim"
)

// Options selects the Anaheim algorithm/fusion configuration (§V, Fig 10).
type Options struct {
	Hoist     bool // hoisting-based linear transforms (vs. Base)
	MinKS     bool // minimum-key-switching linear transforms (excludes Hoist)
	BasicFuse bool // PAccum/CAccum compound instructions (+BasicFuse)
	AutFuse   bool // automorphism fused with accumulation (+AutFuse)
	ExtraFuse bool // GPU-only extra fusions, e.g. ModDown fusion [38]
	PIM       bool // mark element-wise kernels for PIM offloading

	// SplitKernels emits every compound instruction as its naive kernel
	// sequence — K tagged PMAC/CMAC kernels instead of one PAccum/CAccum,
	// a bare automorphism plus a separate accumulation instead of the fused
	// form — so the internal/fusion passes can rediscover the compounds.
	// Combine with BasicFuse/AutFuse off; the passes restore those fusions.
	SplitKernels bool
}

// SplitNaive is the pre-fusion configuration the rewrite passes start from:
// hoisted linear transforms, but every compound emitted as separate tagged
// kernels in the naive §V-B order.
func SplitNaive() Options {
	return Options{Hoist: true, SplitKernels: true, PIM: true}
}

// AnaheimDefault is the full Anaheim configuration.
func AnaheimDefault() Options {
	return Options{Hoist: true, BasicFuse: true, AutFuse: true, PIM: true}
}

// GPUBaseline is the best GPU-only configuration (Cheddar + all GPU fusions).
func GPUBaseline() Options {
	return Options{Hoist: true, BasicFuse: true, AutFuse: true, ExtraFuse: true}
}

// Builder emits kernels into a trace.
type Builder struct {
	P   Params
	Opt Options
	T   *Trace

	fuseSeq int // distinguishes same-named fuse groups across emissions
}

// newFuseGroup mints a trace-unique fuse-group identity for a compound named
// name. Repeated emissions (two linear transforms in one bootstrap trace)
// produce distinct groups, so the fusion passes never merge members of
// different compounds that happen to share a display name.
func (b *Builder) newFuseGroup(name string) string {
	b.fuseSeq++
	return fmt.Sprintf("%s#%d", name, b.fuseSeq)
}

// NewBuilder starts a trace.
func NewBuilder(p Params, opt Options, name string) *Builder {
	return &Builder{P: p, Opt: opt, T: &Trace{Name: name, P: p}}
}

// --- primitive emissions ---------------------------------------------------

// The (I)NTT/BConv chains of a ModSwitch stream their intermediates through
// the L2 cache (a level-53 polynomial is 13.8 MB against 40-72 MB of L2), so
// only the chain boundaries touch DRAM: the INTT pays its input read, the
// NTT its output write, and the BConv in between is cache-resident. This is
// what keeps (I)NTT and BConv compute-bound on GPUs (§IV-D).

func (b *Builder) ntt(name string, limbs int) {
	b.T.Append(Kernel{
		Name: name, Class: ClassNTT,
		WeightedOps: nttWeightedOps(b.P, float64(limbs)),
		Bytes:       b.P.PolyBytes(limbs), // output write
		Limbs:       limbs, Instances: 1,
	})
}

func (b *Builder) intt(name string, limbs int) {
	b.T.Append(Kernel{
		Name: name, Class: ClassINTT,
		WeightedOps: nttWeightedOps(b.P, float64(limbs)),
		Bytes:       b.P.PolyBytes(limbs), // input read
		Limbs:       limbs, Instances: 1,
	})
}

func (b *Builder) bconv(name string, kin, kout int) {
	b.T.Append(Kernel{
		Name: name, Class: ClassBConv,
		WeightedOps: bconvWeightedOps(b.P, kin, kout),
		Bytes:       0, // cache-resident between INTT and NTT
		Limbs:       kout, Instances: 1,
	})
}

// ew emits an element-wise kernel of `instances` instruction instances over
// polynomials of `limbs` limbs. oneTime is the streaming portion of its
// traffic (whole kernel).
func (b *Builder) ew(name string, op pim.Opcode, k, limbs, instances int, oneTime float64) {
	// SplitKernels: emit the naive chain as k (resp. 2k) *separate* kernels
	// tagged with a shared FuseGroup so the PAccum/CAccum passes can merge
	// them back into the compound instruction.
	if b.Opt.SplitKernels {
		switch op {
		case pim.PAccum:
			b.ewSplit(name, pim.PMAC, k, limbs, instances, oneTime)
			return
		case pim.CAccum:
			b.ewSplit(name, pim.CMAC, 2*k, limbs, instances, oneTime)
			return
		}
	}
	// Without compound fusion (+BasicFuse off), accumulations execute as
	// unfused PMAC/CMAC chains re-touching their accumulators — on the GPU
	// and on PIM alike (§VII-D).
	if !b.Opt.BasicFuse {
		switch op {
		case pim.PAccum:
			op, instances, k = pim.PMAC, instances*k, 0
		case pim.CAccum:
			op, instances, k = pim.CMAC, instances*2*k, 0
		}
	}
	spec := pim.Spec(op, k)
	accesses := spec.PIMAccesses()
	b.T.Append(Kernel{
		Name: name, Class: ClassEW,
		WeightedOps: float64(spec.ModMuls) * float64(limbs) * float64(b.P.N) * modMulW * float64(instances),
		Bytes:       float64(accesses) * b.P.PolyBytes(limbs) * float64(instances),
		OneTime:     oneTime,
		Op:          op, OpK: k, Limbs: limbs, Instances: instances,
		Offload: b.Opt.PIM,
	})
}

// ewSplit emits n naive single-instruction kernels sharing one fuse group,
// splitting the compound's one-time streaming bytes evenly across them.
func (b *Builder) ewSplit(name string, op pim.Opcode, n, limbs, instances int, oneTime float64) {
	spec := pim.Spec(op, 0)
	gid := b.newFuseGroup(name)
	for i := 0; i < n; i++ {
		b.T.Append(Kernel{
			Name: fmt.Sprintf("%s.%s[%d]", name, op, i), Class: ClassEW,
			WeightedOps: float64(spec.ModMuls) * float64(limbs) * float64(b.P.N) * modMulW * float64(instances),
			Bytes:       float64(spec.PIMAccesses()) * b.P.PolyBytes(limbs) * float64(instances),
			OneTime:     oneTime / float64(n),
			Op:          op, Limbs: limbs, Instances: instances,
			Offload:   b.Opt.PIM,
			FuseGroup: gid, FuseRole: RoleMAC,
		})
	}
}

// autSplit emits the naive unfused automorphism half-pair: the bare
// permutation (2 accesses), tagged for the AutAccum pass.
func (b *Builder) autSplit(name, gid string, limbs, instances int) {
	b.T.Append(Kernel{
		Name: name, Class: ClassAut,
		Bytes: 2 * b.P.PolyBytes(limbs) * float64(instances),
		Limbs: limbs, Instances: instances,
		FuseGroup: gid, FuseRole: RoleAut,
	})
}

// autSplitAccum emits the separate accumulation kernel an unfused
// automorphism round-trips through (3 accesses). It is welded to the
// GPU-only automorphism and never offloads on its own.
func (b *Builder) autSplitAccum(name, gid string, limbs, instances int) {
	b.T.Append(Kernel{
		Name: name + ".accum", Class: ClassEW,
		Bytes: 3 * b.P.PolyBytes(limbs) * float64(instances),
		Op:    pim.Add, Limbs: limbs, Instances: instances,
		FuseGroup: gid, FuseRole: RoleAccum,
	})
}

// aut emits automorphism kernels (GPU-only: complex data movement is
// unsuited to PIM, §V-A). With AutFuse the permutation is fused with the
// accumulation (read src + read acc + write acc); without it the
// permutation round-trips DRAM before a separate accumulation kernel.
func (b *Builder) aut(name string, limbs, instances int, withAccum bool) {
	if withAccum && b.Opt.SplitKernels {
		gid := b.newFuseGroup(name)
		b.autSplit(name, gid, limbs, instances)
		b.autSplitAccum(name, gid, limbs, instances)
		return
	}
	accesses := 2.0
	if withAccum {
		if b.Opt.AutFuse {
			accesses = 3
		} else {
			accesses = 5 // Aut (2) + separate accumulate (3)
		}
	}
	b.T.Append(Kernel{
		Name: name, Class: ClassAut,
		Bytes: accesses * b.P.PolyBytes(limbs) * float64(instances),
		Limbs: limbs, Instances: instances,
	})
}

// markWriteBack tags the most recent kernel with coherence write-back bytes
// (charged only when the consuming block actually runs on PIM).
func (b *Builder) markWriteBack(bytes float64) {
	if b.Opt.PIM && len(b.T.Kernels) > 0 {
		b.T.Kernels[len(b.T.Kernels)-1].WriteBack += bytes
	}
}

// MemOp emits a pure data-movement kernel that stays on the GPU (e.g.
// ModRaise's centered rebroadcast, which needs comparisons unsuited to the
// MMAC datapath).
func (b *Builder) MemOp(name string, limbs int) {
	b.T.Append(Kernel{
		Name: name, Class: ClassEW,
		Bytes: 2 * b.P.PolyBytes(limbs),
		Op:    pim.Move, Limbs: limbs, Instances: 1,
	})
}

// --- composite CKKS operations (Fig 1) --------------------------------------

// ModUp raises a level-ℓ polynomial into the extended basis: one INTT over
// its limbs, then per digit a BConv and an NTT over the fresh limbs.
func (b *Builder) ModUp(level int) {
	d := b.P.Digits(level)
	b.intt("ModUp.INTT", level+1)
	for i := 0; i < d; i++ {
		b.bconv(fmt.Sprintf("ModUp.BConv[%d]", i), b.P.Alpha, level+1)
		b.ntt(fmt.Sprintf("ModUp.NTT[%d]", i), level+1)
	}
	// The D digit polynomials must reside in DRAM before a PIM KeyMult.
	b.markWriteBack(float64(d) * b.P.PolyBytes(level+1+b.P.Alpha))
}

// ModUpNoINTT re-decomposes a value already held in coefficient-accessible
// form (double-hoisted giant steps [8]): BConv+NTT per digit, no INTT.
func (b *Builder) ModUpNoINTT(level int) {
	d := b.P.Digits(level)
	for i := 0; i < d; i++ {
		b.bconv(fmt.Sprintf("ModUp.BConv[%d]", i), b.P.Alpha, level+1)
		b.ntt(fmt.Sprintf("ModUp.NTT[%d]", i), level+1)
	}
	b.markWriteBack(float64(d) * b.P.PolyBytes(level+1+b.P.Alpha))
}

// KeyMult performs the inner product with a switching key: with BasicFuse a
// single PAccum⟨D⟩ per component pair, reading the 2·D evk polynomials as
// one-time data.
func (b *Builder) KeyMult(name string, level int) {
	d := b.P.Digits(level)
	ext := level + 1 + b.P.Alpha
	b.ew(name, pim.PAccum, d, ext, 1, 2*float64(d)*b.P.PolyBytes(ext))
}

// ModDown lowers both components from the extended basis back to Q:
// INTT/BConv/NTT on the P part plus the ModDownEp element-wise epilogue.
// With ExtraFuse (GPU-only baseline) the epilogue is fused into the NTT,
// halving its traffic.
func (b *Builder) ModDown(level, components int) {
	for c := 0; c < components; c++ {
		b.intt(fmt.Sprintf("ModDown.INTT[%d]", c), b.P.Alpha)
		b.bconv(fmt.Sprintf("ModDown.BConv[%d]", c), b.P.Alpha, level+1)
		b.ntt(fmt.Sprintf("ModDown.NTT[%d]", c), level+1)
		b.markWriteBack(b.P.PolyBytes(level + 1))
		if b.Opt.ExtraFuse && !b.Opt.PIM {
			// ModDown fusion [38]: the epilogue rides the NTT's output pass.
			b.T.Kernels[len(b.T.Kernels)-1].Bytes += b.P.PolyBytes(level + 1)
			continue
		}
		b.ew(fmt.Sprintf("ModDown.Ep[%d]", c), pim.ModDownEp, 0, level+1, 1, 0)
	}
}

// Rescale drops the top prime: INTT of the dropped limb, its broadcast NTT
// across the remaining primes (fused with the element-wise division, whose
// traffic the epilogue kernel carries).
func (b *Builder) Rescale(level int) {
	b.intt("Rescale.INTT", 2)
	b.T.Append(Kernel{ // broadcast NTT: compute only, fused with the epilogue
		Name: "Rescale.NTT", Class: ClassNTT,
		WeightedOps: nttWeightedOps(b.P, float64(2*level)),
		Limbs:       2 * level, Instances: 1,
	})
	b.ew("Rescale.Ep", pim.ModDownEp, 0, 2*level, 1, 0)
}

// --- basic functions (Fig 2a) -----------------------------------------------

// HADD emits an inter-ciphertext addition.
func (b *Builder) HADD(level int) {
	b.ew("HADD", pim.Add, 0, 2*(level+1), 1, 0)
}

// PMULT emits a plaintext-ciphertext multiplication; the plaintext is
// one-time data.
func (b *Builder) PMULT(level int) {
	b.ew("PMULT", pim.PMult, 0, level+1, 1, b.P.PolyBytes(level+1))
}

// HMULT emits an inter-ciphertext multiplication with relinearization and
// rescaling.
func (b *Builder) HMULT(level int) {
	b.ew("HMULT.Tensor", pim.Tensor, 0, level+1, 1, 0)
	b.ModUp(level)
	b.KeyMult("HMULT.KeyMult", level)
	b.ModDown(level, 2)
	b.ew("HMULT.Add", pim.Add, 0, 2*(level+1), 1, 0)
	b.Rescale(level)
}

// HSQUARE is HMULT with the TensorSq shortcut.
func (b *Builder) HSQUARE(level int) {
	b.ew("HSQ.TensorSq", pim.TensorSq, 0, level+1, 1, 0)
	b.ModUp(level)
	b.KeyMult("HSQ.KeyMult", level)
	b.ModDown(level, 2)
	b.ew("HSQ.Add", pim.Add, 0, 2*(level+1), 1, 0)
	b.Rescale(level)
}

// EW2 emits a constant multiply-and-add over both ciphertext components
// (CMAC), the shape of EvalMod's affine maps and double-angle epilogues.
func (b *Builder) EW2(name string, level int) {
	b.ew(name, pim.CMAC, 0, 2*(level+1), 1, 0)
}

// CAccum emits a K-term constant accumulation (the BSGS leaf linear
// combinations of Chebyshev evaluation).
func (b *Builder) CAccum(name string, level, k int) {
	b.ew(name, pim.CAccum, k, level+1, 1, 0)
}

// HROT emits a ciphertext rotation: ModUp → KeyMult → automorphism →
// ModDown → add (Fig 1).
func (b *Builder) HROT(level int) {
	b.ModUp(level)
	b.KeyMult("HROT.KeyMult", level)
	b.aut("HROT.Aut", 2*(level+1+b.P.Alpha), 1, false)
	b.ModDown(level, 2)
	b.ew("HROT.Add", pim.Add, 0, level+1, 1, 0)
}
