// Package workloads generates the kernel traces of the paper's six
// evaluation workloads (§VII-A): full-slot bootstrapping, HELR logistic
// regression, two-way sorting, RNN inference, ResNet20, and ResNet18-AESPA.
// Each generator composes the CKKS op sequences of internal/trace with the
// workload's published structure (op mix, L schedule, L_eff).
package workloads

import (
	"math"

	"github.com/anaheim-sim/anaheim/internal/trace"
)

// BootConfig selects bootstrapping hyper-parameters.
type BootConfig struct {
	FFTIterC2S int // grouped CoeffToSlot matrices
	FFTIterS2C int // grouped SlotToCoeff matrices
	ChebDegree int // EvalMod Chebyshev degree
	DoubleAng  int // double-angle steps
	SlotsLog   int // log2 of packed slots (15 = full-slot)
}

// DefaultBoot is the paper's default: an fftIter mix of three and four
// (§IV-C), full slots.
func DefaultBoot() BootConfig {
	return BootConfig{FFTIterC2S: 4, FFTIterS2C: 3, ChebDegree: 31, DoubleAng: 2, SlotsLog: 15}
}

// limbsPerMult is the double-prime scaling consumption: one multiplicative
// level drops two ~24-bit primes (Δ = 2^48, §VI-A, [1][45]).
const limbsPerMult = 2

// BootLevels returns the multiplicative depth one bootstrap consumes.
func (c BootConfig) BootLevels() int {
	// C2S + conj-split + EvalMod (chebyshev depth + double angles) + S2C;
	// the affine normalization is folded into the last C2S matrix and the
	// scale fix rides the last S2C matrix. Default: 4+1+(5+2)+3 = 15 levels,
	// i.e. 30 limbs under double-prime scaling: L goes 54 -> 24 (§VII-A).
	cheb := int(math.Ceil(math.Log2(float64(c.ChebDegree + 1))))
	return c.FFTIterC2S + 1 + (cheb + c.DoubleAng) + c.FFTIterS2C
}

// LEff returns the usable multiplicative levels after bootstrapping: the
// ciphertext returns to L limbs, bootstrapping itself consumed
// BootLevels()·2 limbs, and 2 limbs remain as the base (the paper's
// L schedule 2 -> 54 -> 24 with L_eff = 11 for the default configuration).
func LEff(p trace.Params, c BootConfig) int {
	after := p.L - limbsPerMult*c.BootLevels()
	eff := (after - 2) / limbsPerMult
	if eff < 1 {
		eff = 0
	}
	return eff
}

// BootFootprintGB estimates the DRAM residency of bootstrapping: all
// distinct evaluation keys, plaintext matrices, and working ciphertexts
// (§VIII-B: capacity becomes a limiting factor; the RTX 4090's 24GB fails
// for large configurations).
func BootFootprintGB(p trace.Params, c BootConfig) float64 {
	b := trace.NewBuilder(p, trace.Options{Hoist: true}, "footprint")
	evks := 4 // encapsulation pair, relinearization, conjugation
	ptBytes := 0.0
	for _, iters := range []int{c.FFTIterC2S, c.FFTIterS2C} {
		for i := 0; i < iters; i++ {
			k := DiagCount(c.SlotsLog, iters, i)
			evks += b.EvkCount(k)
			ptBytes += b.PlaintextBytes(p.L-1, k)
		}
	}
	working := 8 * p.CtBytes(p.L-1) // live ciphertexts and decomposition digits
	return (float64(evks)*p.EvkBytes(p.L-1) + ptBytes + working) / 1e9
}

// DiagCount returns the diagonals of one grouped DFT factor matrix when
// logSlots butterfly stages are split into iters groups (each group of g
// radix-2 stages composes into a 2^{g+1}-1-diagonal matrix; see
// internal/ckks/dft.go).
func DiagCount(logSlots, iters, group int) int {
	per := logSlots / iters
	extra := logSlots % iters
	g := per
	if group < extra {
		g++
	}
	k := 1<<(uint(g)+1) - 1
	if k > 1<<uint(logSlots) {
		k = 1 << uint(logSlots)
	}
	return k
}

// Bootstrap emits the full-slot bootstrapping trace: sparse-secret
// encapsulation, ModRaise, CoeffToSlot, two EvalMods, SlotToCoeff (§II-C).
func Bootstrap(p trace.Params, opt trace.Options, cfg BootConfig) *trace.Trace {
	b := trace.NewBuilder(p, opt, "Boot")
	top := p.L - 1 // level after ModRaise

	// Sparse-secret encapsulation: key switch at the bottom, ModRaise,
	// key switch back at the top [9].
	bottom := 1 // L=2 at the bottom of the schedule
	b.ModUp(bottom)
	b.KeyMult("Encaps.down.KeyMult", bottom)
	b.ModDown(bottom, 2)
	b.MemOp("ModRaise", 2*(top+1))
	b.ModUp(top)
	b.KeyMult("Encaps.up.KeyMult", top)
	b.ModDown(top, 2)

	lvl := top
	// CoeffToSlot: fftIterC2S grouped transforms, one level each.
	for i := 0; i < cfg.FFTIterC2S; i++ {
		k := DiagCount(cfg.SlotsLog, cfg.FFTIterC2S, i)
		b.LinearTransform(lvl, k)
		lvl -= limbsPerMult
	}
	// Conjugate split into real/imaginary parts: one rotation (the
	// conjugation) plus element-wise combinations, one level.
	b.HROT(lvl)
	b.EW2("Split.Combine", lvl)
	lvl -= limbsPerMult

	// EvalMod runs on both parts at the same levels.
	after := emitEvalMod(b, lvl, cfg)
	_ = emitEvalMod(b, lvl, cfg)
	lvl = after
	// Recombine.
	b.HADD(lvl)

	// SlotToCoeff.
	for i := 0; i < cfg.FFTIterS2C; i++ {
		k := DiagCount(cfg.SlotsLog, cfg.FFTIterS2C, i)
		b.LinearTransform(lvl, k)
		lvl -= limbsPerMult
	}

	t := b.T
	t.LEff = LEff(p, cfg)
	return t
}

// emitEvalMod emits one EvalMod: affine map, Chebyshev BSGS evaluation,
// double angles. Returns the level after consumption. The second EvalMod of
// a bootstrap runs at the same entry level, so only the returned cursor of
// the last call advances the caller.
func emitEvalMod(b *trace.Builder, lvl int, cfg BootConfig) int {
	deg := cfg.ChebDegree
	baby := 1 << uint((int(math.Ceil(math.Log2(float64(deg+1))))+1)/2)
	giants := (deg + 1 + baby - 1) / baby

	// Power basis: T_2..T_{baby-1} and the giant powers, each an HSQUARE or
	// HMULT one level deeper than its operands. We emit them at a
	// descending level cursor approximating the BSGS schedule depth.
	depth := int(math.Ceil(math.Log2(float64(deg + 1))))
	for i := 2; i < baby; i++ {
		b.HSQUARE(lvl)
	}
	g := baby
	for g <= deg {
		b.HSQUARE(lvl - limbsPerMult)
		g <<= 1
	}
	// Leaf linear combinations: one CAccum⟨baby⟩ per giant branch.
	for j := 0; j < giants; j++ {
		b.CAccum("EvalMod.Leaf", lvl-2*limbsPerMult, baby)
	}
	// Recombination products up the recursion tree.
	for j := 1; j < giants; j++ {
		b.HMULT(lvl - 2*limbsPerMult)
	}
	lvl -= limbsPerMult * depth

	// Double angles: squaring plus constant ops per step.
	for r := 0; r < cfg.DoubleAng; r++ {
		b.HSQUARE(lvl)
		b.EW2("EvalMod.DoubleAngle", lvl)
		lvl -= limbsPerMult
	}
	return lvl
}
