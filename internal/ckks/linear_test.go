package ckks

import (
	"math/rand"
	"testing"
)

// randomSparseLT builds a random linear transform with the given diagonal
// offsets.
func randomSparseLT(r *rand.Rand, slots int, offsets []int) *LinearTransform {
	diags := make(map[int][]complex128)
	for _, off := range offsets {
		d := make([]complex128, slots)
		for j := range d {
			d[j] = complex(2*r.Float64()-1, 2*r.Float64()-1)
		}
		diags[off] = d
	}
	return NewLinearTransform(slots, diags)
}

func TestLinearTransformHoisted(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(30))
	offsets := []int{0, 1, 2, 3, 5, 8}
	lt := randomSparseLT(r, tc.params.Slots(), offsets)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, lt.Rotations())

	u := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, u)
	out, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	out = tc.eval.Rescale(out)

	want := lt.Apply(u)
	if e := maxErr(tc.decryptVec(out), want); e > 1e-4 {
		t.Fatalf("hoisted LT error %g", e)
	}
	// Hoisting with pt scale = dropped prime must restore the scale.
	if rel := out.Scale/ct.Scale - 1; rel > 1e-9 || rel < -1e-9 {
		t.Fatalf("scale not restored: %g vs %g", out.Scale, ct.Scale)
	}
}

func TestLinearTransformMinKS(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(31))
	offsets := []int{0, 1, 3, 4}
	lt := randomSparseLT(r, tc.params.Slots(), offsets)
	// MinKS needs only the rotation-by-one key (4x fewer evks in Fig 1).
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{1})

	u := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, u)
	out, err := tc.eval.EvaluateLinearTransformMinKS(ct, lt, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	out = tc.eval.Rescale(out)
	want := lt.Apply(u)
	if e := maxErr(tc.decryptVec(out), want); e > 1e-4 {
		t.Fatalf("MinKS LT error %g", e)
	}
}

func TestHoistedAndMinKSAgree(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(32))
	offsets := []int{0, 1, 2, 4}
	lt := randomSparseLT(r, tc.params.Slots(), offsets)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, append(lt.Rotations(), 1))

	u := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, u)
	h, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	m, err := tc.eval.EvaluateLinearTransformMinKS(ct, lt, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	dh := tc.decryptVec(tc.eval.Rescale(h))
	dm := tc.decryptVec(tc.eval.Rescale(m))
	if e := maxErr(dh, dm); e > 1e-4 {
		t.Fatalf("hoisted and MinKS disagree by %g", e)
	}
}

// TestLinearTransformHoistedPostRescale runs the hoisted transform at every
// level a rescale can reach, not just the freshly-encrypted top: deeper in a
// circuit the ciphertext has fewer limbs and the evaluator picks smaller
// gadget plans, both of which the hoisted shared-digit path must survive.
func TestLinearTransformHoistedPostRescale(t *testing.T) {
	tc := newTestContext(t, richLevelAwareParams())
	r := rand.New(rand.NewSource(34))
	offsets := []int{0, 1, 2}
	lt := randomSparseLT(r, tc.params.Slots(), offsets)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, lt.Rotations())

	u := randomComplex(r, tc.params.Slots(), 1)
	want := lt.Apply(u)
	ctTop := tc.encryptVec(t, u)
	for lvl := 1; lvl <= tc.params.MaxLevel(); lvl++ {
		ct := tc.eval.DropLevel(ctTop, lvl)
		out, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
		if err != nil {
			t.Fatalf("lvl %d: %v", lvl, err)
		}
		out = tc.eval.Rescale(out)
		if out.Level() != lvl-1 {
			t.Fatalf("lvl %d: output at level %d", lvl, out.Level())
		}
		if e := maxErr(tc.decryptVec(out), want); e > 1e-3 {
			t.Fatalf("lvl %d: hoisted LT error %g", lvl, e)
		}
	}
}

// TestLinearTransformMinKSPostRescale is the same per-level sweep for the
// minimum-key path, which reaches every diagonal through repeated
// rotate-by-one key switches — the deepest key-switch chain in the repo.
func TestLinearTransformMinKSPostRescale(t *testing.T) {
	tc := newTestContext(t, richLevelAwareParams())
	r := rand.New(rand.NewSource(35))
	offsets := []int{0, 1, 3}
	lt := randomSparseLT(r, tc.params.Slots(), offsets)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{1})

	u := randomComplex(r, tc.params.Slots(), 1)
	want := lt.Apply(u)
	ctTop := tc.encryptVec(t, u)
	for lvl := 1; lvl <= tc.params.MaxLevel(); lvl++ {
		ct := tc.eval.DropLevel(ctTop, lvl)
		out, err := tc.eval.EvaluateLinearTransformMinKS(ct, lt, tc.enc)
		if err != nil {
			t.Fatalf("lvl %d: %v", lvl, err)
		}
		out = tc.eval.Rescale(out)
		if e := maxErr(tc.decryptVec(out), want); e > 1e-3 {
			t.Fatalf("lvl %d: MinKS LT error %g", lvl, e)
		}
	}
}

func TestLinearTransformIdentity(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	slots := tc.params.Slots()
	ones := make([]complex128, slots)
	for i := range ones {
		ones[i] = 1
	}
	lt := NewLinearTransform(slots, map[int][]complex128{0: ones})
	r := rand.New(rand.NewSource(33))
	u := randomComplex(r, slots, 1)
	ct := tc.encryptVec(t, u)
	out, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	out = tc.eval.Rescale(out)
	if e := maxErr(tc.decryptVec(out), u); e > 1e-5 {
		t.Fatalf("identity LT error %g", e)
	}
}

func TestLinearTransformApplyReference(t *testing.T) {
	// Rotation-only transform must equal a plain rotation.
	slots := 8
	ones := make([]complex128, slots)
	for i := range ones {
		ones[i] = 1
	}
	lt := NewLinearTransform(slots, map[int][]complex128{3: ones})
	u := []complex128{0, 1, 2, 3, 4, 5, 6, 7}
	got := lt.Apply(u)
	for j := 0; j < slots; j++ {
		if got[j] != u[(j+3)%slots] {
			t.Fatalf("Apply rotation mismatch at %d", j)
		}
	}
}
