package experiments

import (
	"strings"
	"testing"
)

// The acceptance criteria here implement DESIGN.md §4: the *shape* of every
// figure and table must match the paper — who wins, by roughly what factor,
// where crossovers fall — not the absolute testbed numbers.

func TestFig1HoistingVsMinKS(t *testing.T) {
	ms, tbl := Fig1Table()
	if len(ms) != 3 || tbl == nil {
		t.Fatal("want three algorithms")
	}
	byName := map[string]Fig1Metrics{}
	for _, m := range ms {
		byName[m.Alg] = m
	}
	// Base and MinKS share compute; hoisting reduces (I)NTT ~2.47x.
	if byName["Base"].NTTLimbOps != byName["MinKS"].NTTLimbOps {
		t.Fatal("Base and MinKS must have equal (I)NTT counts")
	}
	ratio := byName["Base"].NTTLimbOps / byName["Hoisting"].NTTLimbOps
	if ratio < 2.0 || ratio > 3.2 {
		t.Fatalf("hoisting (I)NTT reduction %.2fx outside [2.0, 3.2] (paper 2.47x)", ratio)
	}
	// MinKS uses far fewer evks; hoisting uses slightly larger plaintexts.
	if byName["MinKS"].EvkCount*4 > byName["Hoisting"].EvkCount {
		t.Fatal("MinKS should need >= 4x fewer evks")
	}
	if byName["Hoisting"].PtGB <= byName["Base"].PtGB {
		t.Fatal("hoisting should need larger plaintexts")
	}
}

func TestFig2aLibraryOrdering(t *testing.T) {
	ms, _ := Fig2a()
	get := func(lib, fn string) float64 {
		for _, m := range ms {
			if m.Library == lib && m.Function == fn {
				return m.TimeUs
			}
		}
		t.Fatalf("missing %s/%s", lib, fn)
		return 0
	}
	// Cheddar beats Phantom and 100x on HMULT/HROT (paper: 1.79x/1.54x).
	for _, fn := range []string{"HMULT", "HROT"} {
		for _, lib := range []string{"Phantom", "100x"} {
			if r := get(lib, fn) / get("Cheddar", fn); r < 1.2 || r > 2.3 {
				t.Errorf("%s/%s speedup over %s = %.2fx outside [1.2, 2.3]", fn, "Cheddar", lib, r)
			}
		}
	}
	// Element-wise functions do not improve across libraries with fusion
	// support ("Cheddar also failed to improve them", §IV-D).
	if get("100x", "HADD") != get("Cheddar", "HADD") {
		t.Error("HADD should be bandwidth-bound on every fused library")
	}
}

func TestFig2bShapes(t *testing.T) {
	ms, _ := Fig2b()
	var a100Shares, r4090Shares []float64
	oomSeen := false
	for _, m := range ms {
		if m.OoM {
			oomSeen = true
			if !strings.Contains(m.GPU, "4090") {
				t.Errorf("unexpected OoM on %s", m.GPU)
			}
			continue
		}
		if strings.Contains(m.GPU, "A100") {
			a100Shares = append(a100Shares, m.EWShare)
		} else {
			r4090Shares = append(r4090Shares, m.EWShare)
		}
	}
	if !oomSeen {
		t.Error("expected an OoM configuration on the RTX 4090 (Fig 2b)")
	}
	for _, s := range a100Shares {
		if s < 0.40 || s > 0.62 {
			t.Errorf("A100 EW share %.1f%% outside the widened 45-48%% band", 100*s)
		}
	}
	for _, s := range r4090Shares {
		if s < 0.58 || s > 0.80 {
			t.Errorf("RTX4090 EW share %.1f%% outside the widened 68-69%% band", 100*s)
		}
	}
}

func TestFig2cHoistWins(t *testing.T) {
	ms, _ := Fig2c()
	byName := map[string]Fig2cMetrics{}
	for _, m := range ms {
		byName[m.Alg] = m
	}
	if !(byName["Hoist"].TbootMs < byName["MinKS"].TbootMs) {
		t.Fatal("hoisting must beat MinKS on GPUs (§III-C)")
	}
	if !(byName["Hoist"].TbootMs < byName["Base"].TbootMs) {
		t.Fatal("hoisting must beat Base")
	}
	// Hoisting raises the EW share (§IV-B: it is "the main reason behind
	// these trends").
	if byName["Hoist"].EWShare <= byName["Base"].EWShare {
		t.Fatal("hoisting should increase the element-wise share")
	}
}

func TestFig3CrossoverAt4(t *testing.T) {
	ms, _ := Fig3()
	byLabel := map[string]Fig3Metrics{}
	for _, m := range ms {
		byLabel[m.Label] = m
	}
	def := byLabel["3&4 (default)"]
	// The default mix achieves the best T_boot,eff (§IV-C).
	for l, m := range byLabel {
		if l == "3&4 (default)" {
			continue
		}
		if m.TbootMs < def.TbootMs {
			t.Errorf("fftIter=%s (%.2fms) beats the default mix (%.2fms)", l, m.TbootMs, def.TbootMs)
		}
	}
	// fftIter > 4 degrades performance despite the lower EW share.
	if byLabel["6"].TbootMs <= byLabel["4"].TbootMs {
		t.Error("fftIter=6 should be worse than 4 (L_eff drop dominates)")
	}
	if byLabel["6"].EWShare >= byLabel["3"].EWShare {
		t.Error("larger fftIter should reduce the EW share")
	}
}

func TestFig4aModes(t *testing.T) {
	ms, _ := Fig4a()
	byMode := map[string]Fig4aMetrics{}
	for _, m := range ms {
		byMode[m.Mode] = m
	}
	gpuOnly, bw4, pimMode := byMode["GPU only"], byMode["4x BW DRAM"], byMode["PIM"]
	// 4x BW: EW and Aut speed up substantially, ModSwitch barely moves.
	if r := gpuOnly.EWUs / bw4.EWUs; r < 2.0 {
		t.Errorf("4x BW should speed EW by >2x (paper 2.84x), got %.2fx", r)
	}
	if r := gpuOnly.ModSwUs / bw4.ModSwUs; r > 1.3 {
		t.Errorf("4x BW should barely improve ModSwitch, got %.2fx", r)
	}
	// PIM achieves comparable EW gains without external bandwidth.
	if r := gpuOnly.EWUs / pimMode.EWUs; r < 1.8 {
		t.Errorf("PIM should speed EW comparably to 4x BW, got %.2fx", r)
	}
	if pimMode.TimeUs >= gpuOnly.TimeUs {
		t.Error("PIM mode should be faster overall")
	}
	if len(pimMode.Timeline) == 0 {
		t.Error("PIM mode should produce a Gantt timeline")
	}
}

func TestFig4bReductions(t *testing.T) {
	m, _ := Fig4b()
	if r := m.BaselineGB / m.PIMGpuGB; r < 3.5 {
		t.Errorf("GPU-side DRAM reduction %.2fx below acceptance (paper 6.15x)", r)
	}
	if m.PIMGpuGB < m.IdealGB {
		t.Error("PIM cannot beat the unlimited-cache ideal")
	}
	if m.PIMGpuGB/m.IdealGB > 4 {
		t.Errorf("PIM should be within ~4x of ideal (paper 1.86x), got %.2fx", m.PIMGpuGB/m.IdealGB)
	}
	if m.EnergyRatio < 1.8 {
		t.Errorf("DRAM energy reduction %.2fx below acceptance (paper 2.87x)", m.EnergyRatio)
	}
}

func TestFig8Bands(t *testing.T) {
	ms, _ := Fig8()
	oomR20 := false
	for _, m := range ms {
		if m.OoM {
			if m.Platform == "RTX4090 near-bank" && (m.Workload == "ResNet20" || m.Workload == "ResNet18") {
				oomR20 = true
				continue
			}
			t.Errorf("unexpected OoM: %s/%s", m.Platform, m.Workload)
			continue
		}
		if m.Speedup < 1.05 || m.Speedup > 1.9 {
			t.Errorf("%s/%s speedup %.2fx outside [1.05, 1.9] (paper 1.06-1.74)", m.Platform, m.Workload, m.Speedup)
		}
		if m.EDPGain < 1.5 || m.EDPGain > 3.4 {
			t.Errorf("%s/%s EDP gain %.2fx outside [1.5, 3.4] (paper 1.62-3.14)", m.Platform, m.Workload, m.EDPGain)
		}
	}
	if !oomR20 {
		t.Error("ResNet20/ResNet18 must OoM on the RTX 4090 (§VIII-B)")
	}
	// HELR shows the smallest gains on every platform (§VII-B).
	perPlat := map[string]map[string]float64{}
	for _, m := range ms {
		if m.OoM {
			continue
		}
		if perPlat[m.Platform] == nil {
			perPlat[m.Platform] = map[string]float64{}
		}
		perPlat[m.Platform][m.Workload] = m.EDPGain
	}
	for plat, byW := range perPlat {
		for w, g := range byW {
			if w != "HELR" && g < byW["HELR"] {
				t.Errorf("%s: %s EDP gain %.2f below HELR's %.2f", plat, w, g, byW["HELR"])
			}
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	pts, _ := Fig9()
	// Compound instructions are unsupported at B=4 and supported at 16.
	for _, p := range pts {
		if p.B == 4 && (p.Op.String() == "Tensor" || p.Op.String() == "PAccum") && p.Supported {
			t.Errorf("%s should be unsupported at B=4", p.Op)
		}
		if p.B == 16 && !p.Supported {
			t.Errorf("%s should be supported at B=16 on %s", p.Op, p.Config)
		}
		if p.Supported && (p.Speedup < 0.1 || p.Speedup > 16) {
			t.Errorf("%s/%s/B=%d speedup %.2fx outside sanity bounds", p.Config, p.Op, p.B, p.Speedup)
		}
		// At each configuration's default buffer size, every instruction
		// must actually beat the GPU (the paper's 1.65x floor).
		def := map[string]int{"A100 near-bank": 16, "A100 custom-HBM": 16, "RTX4090 near-bank": 32}
		if p.Supported && p.B == def[p.Config] && p.Speedup < 1.0 {
			t.Errorf("%s/%s at default B=%d: speedup %.2fx < 1", p.Config, p.Op, p.B, p.Speedup)
		}
	}
}

func TestFig10Shapes(t *testing.T) {
	ms, _ := Fig10()
	// Fusions monotonically improve; w/o CP nullifies the EW gains.
	type key struct{ plat, w string }
	grouped := map[key]map[string]Fig10Metrics{}
	for _, m := range ms {
		k := key{m.Platform, m.Workload}
		if grouped[k] == nil {
			grouped[k] = map[string]Fig10Metrics{}
		}
		grouped[k][m.Variant] = m
	}
	for k, vs := range grouped {
		if vs["+BasicFuse"].TimeMs > vs["Base"].TimeMs*1.001 {
			t.Errorf("%v: +BasicFuse regressed", k)
		}
		if vs["+AutFuse"].TimeMs > vs["+BasicFuse"].TimeMs*1.001 {
			t.Errorf("%v: +AutFuse regressed", k)
		}
		if cp, ok := vs["w/o CP"]; ok {
			ratio := cp.EWMs / vs["+AutFuse"].EWMs
			if ratio < 1.5 {
				t.Errorf("%v: w/o CP EW slowdown %.2fx too small (paper ~2.2x)", k, ratio)
			}
		}
	}
}

func TestTables(t *testing.T) {
	if tbl := Table3(); len(tbl.Rows) != 3 {
		t.Error("Table III should list three configurations")
	}
	if tbl := Table4(); len(tbl.Rows) != 1 {
		t.Error("Table IV should list the default parameter row")
	}
	rows, _ := Table5()
	measured := 0
	for _, r := range rows {
		if r.Measured {
			measured++
			if r.BootMs <= 0 || r.BootMs > 200 {
				t.Errorf("%s: implausible Boot time %.1fms", r.Proposal, r.BootMs)
			}
			// Anaheim must beat the GPU/FPGA rows and lose to SHARP by a
			// large margin (§VIII-A: SHARP is 8.9-17.2x faster).
			if r.BootMs < 3.12 {
				t.Errorf("%s: Anaheim should not beat SHARP", r.Proposal)
			}
		}
	}
	if measured != 3 {
		t.Errorf("want 3 measured Anaheim rows, got %d", measured)
	}
	// RTX 4090 must report no ResNet20 number (OoM).
	for _, r := range rows {
		if r.Measured && strings.Contains(r.Proposal, "4090") && r.R20s != 0 {
			t.Error("RTX 4090 ResNet20 should be OoM")
		}
	}
}

func TestPlatformsEnumeration(t *testing.T) {
	ps := Platforms()
	if len(ps) != 5 {
		t.Fatalf("want 5 platforms, got %d", len(ps))
	}
	pimCount := 0
	for _, p := range ps {
		if p.PIM != nil {
			pimCount++
		}
	}
	if pimCount != 3 {
		t.Fatalf("want 3 PIM platforms (Table III), got %d", pimCount)
	}
}
