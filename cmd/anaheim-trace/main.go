// Command anaheim-trace dumps the kernel trace of a workload and renders
// the Fig 4a-style Gantt chart of its execution on a chosen platform.
//
// Usage:
//
//	anaheim-trace -workload Boot -platform a100-nearbank -limit 40
//	anaheim-trace -lt 8          # the paper's running-example transform
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

func main() {
	workload := flag.String("workload", "", "workload trace to dump (Boot, HELR, ...)")
	lt := flag.Int("lt", 0, "emit a single hoisted linear transform with K diagonals instead")
	platform := flag.String("platform", "a100-nearbank", "a100 | a100-nearbank | a100-customhbm | rtx4090 | rtx4090-nearbank")
	limit := flag.Int("limit", 30, "max kernels to list (0 = all)")
	width := flag.Int("width", 100, "gantt width")
	flag.Parse()

	p := trace.PaperParams()
	var cfg sched.Config
	switch *platform {
	case "a100":
		cfg = sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar()}
	case "a100-nearbank":
		u := pim.A100NearBank()
		cfg = sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: &u}
	case "a100-customhbm":
		u := pim.A100CustomHBM()
		cfg = sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: &u}
	case "rtx4090":
		cfg = sched.Config{GPU: gpu.RTX4090(), Lib: gpu.Cheddar()}
	case "rtx4090-nearbank":
		u := pim.RTX4090NearBank()
		cfg = sched.Config{GPU: gpu.RTX4090(), Lib: gpu.Cheddar(), PIM: &u}
	default:
		fmt.Fprintf(os.Stderr, "unknown platform %q\n", *platform)
		os.Exit(2)
	}

	opt := trace.GPUBaseline()
	if cfg.PIM != nil {
		opt = trace.AnaheimDefault()
	}
	var t *trace.Trace
	switch {
	case *lt > 0:
		b := trace.NewBuilder(p, opt, fmt.Sprintf("LT-K%d", *lt))
		b.LinearTransform(p.L-1, *lt)
		t = b.T
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
		t = w.Gen(p, opt)
	default:
		flag.Usage()
		os.Exit(2)
	}

	r := sched.Run(t, cfg)
	fmt.Printf("trace %s: %d kernels, %.2fms, %.1fmJ, GPU %.2fGB / PIM %.2fGB\n\n",
		t.Name, len(t.Kernels), r.TimeMs(), r.EnergyMJ(), r.GPUBytes/1e9, r.PIMBytes/1e9)

	n := len(r.Timeline)
	if *limit > 0 && *limit < n {
		n = *limit
	}
	fmt.Printf("%-28s %-6s %-5s %12s %12s\n", "kernel", "class", "unit", "start(us)", "dur(us)")
	for _, s := range r.Timeline[:n] {
		unit := "GPU"
		if s.PIM {
			unit = "PIM"
		}
		fmt.Printf("%-28s %-6s %-5s %12.2f %12.2f\n", s.Name, s.Class, unit, s.StartNs/1e3, s.DurNs/1e3)
	}
	if n < len(r.Timeline) {
		fmt.Printf("... (%d more kernels)\n", len(r.Timeline)-n)
	}
	fmt.Println()
	fmt.Print(sched.RenderGantt(r.Timeline, r.TimeNs, *width))
}
