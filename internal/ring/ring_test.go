package ring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

func newTestRing(t testing.TB, logN, nPrimes int) *Ring {
	t.Helper()
	primes, err := modarith.GenerateNTTPrimes(50, logN, nPrimes)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewPolyShape(t *testing.T) {
	r := newTestRing(t, 6, 4)
	p := r.NewPoly(2)
	if p.Level() != 2 {
		t.Fatalf("level = %d", p.Level())
	}
	if len(p.Coeffs) != 3 || len(p.Coeffs[0]) != r.N {
		t.Fatalf("bad shape")
	}
}

func TestAddSubNegIdentities(t *testing.T) {
	r := newTestRing(t, 5, 3)
	s := NewSampler(7)
	level := r.MaxLevel()
	a := s.UniformPoly(r, level, false)
	b := s.UniformPoly(r, level, false)

	sum := r.NewPoly(level)
	r.Add(sum, a, b, level)
	diff := r.NewPoly(level)
	r.Sub(diff, sum, b, level)
	if !diff.Equal(a) {
		t.Fatal("(a+b)-b != a")
	}

	neg := r.NewPoly(level)
	r.Neg(neg, a, level)
	r.Add(neg, neg, a, level)
	zero := r.NewPoly(level)
	if !neg.Equal(zero) {
		t.Fatal("a + (-a) != 0")
	}
}

func TestMulCoeffsDistributes(t *testing.T) {
	r := newTestRing(t, 5, 2)
	level := r.MaxLevel()
	f := func(seed int64) bool {
		s := NewSampler(seed)
		a := s.UniformPoly(r, level, true)
		b := s.UniformPoly(r, level, true)
		c := s.UniformPoly(r, level, true)
		// a*(b+c) == a*b + a*c
		bc := r.NewPoly(level)
		r.Add(bc, b, c, level)
		lhs := r.NewPoly(level)
		r.MulCoeffs(lhs, a, bc, level)
		rhs := r.NewPoly(level)
		rhs.IsNTT = true
		r.MulCoeffsAdd(rhs, a, b, level)
		r.MulCoeffsAdd(rhs, a, c, level)
		return lhs.Equal(rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestNTTRoundTripPoly(t *testing.T) {
	r := newTestRing(t, 7, 3)
	s := NewSampler(3)
	level := r.MaxLevel()
	a := s.UniformPoly(r, level, false)
	orig := a.CopyNew()
	r.NTT(a, level)
	if !a.IsNTT {
		t.Fatal("domain flag not set")
	}
	r.INTT(a, level)
	if !a.Equal(orig) {
		t.Fatal("NTT/INTT round trip failed")
	}
}

// TestNTTLazyMatchesExact: lazy transforms agree with exact ones modulo each
// limb's prime, stay below 2q, and round-trip through ReduceLazy.
func TestNTTLazyMatchesExact(t *testing.T) {
	r := newTestRing(t, 7, 3)
	s := NewSampler(5)
	level := r.MaxLevel()
	a := s.UniformPoly(r, level, false)
	exact := a.CopyNew()
	lazy := a.CopyNew()

	r.NTT(exact, level)
	r.NTTLazy(lazy, level)
	if !lazy.IsNTT {
		t.Fatal("NTTLazy did not set domain flag")
	}
	for i := 0; i <= level; i++ {
		mod := r.Moduli[i]
		for j := range lazy.Coeffs[i] {
			v := lazy.Coeffs[i][j]
			if v >= mod.TwoQ {
				t.Fatalf("NTTLazy limb %d coeff %d = %d >= 2q", i, j, v)
			}
			if mod.ReduceTwoQ(v) != exact.Coeffs[i][j] {
				t.Fatalf("NTTLazy limb %d coeff %d !≡ NTT", i, j)
			}
		}
	}

	r.INTTLazy(lazy, level)
	r.ReduceLazy(lazy, level)
	lazy.IsNTT = a.IsNTT
	if !lazy.Equal(a) {
		t.Fatal("NTTLazy/INTTLazy/ReduceLazy round trip failed")
	}
}

func TestMulScalar(t *testing.T) {
	r := newTestRing(t, 4, 2)
	s := NewSampler(11)
	level := r.MaxLevel()
	a := s.UniformPoly(r, level, false)
	out := r.NewPoly(level)
	r.MulScalar(out, a, 3, level)
	want := r.NewPoly(level)
	r.Add(want, a, a, level)
	r.Add(want, want, a, level)
	if !out.Equal(want) {
		t.Fatal("3*a != a+a+a")
	}
}

func TestAutomorphismCoeffVsNTT(t *testing.T) {
	r := newTestRing(t, 8, 2)
	s := NewSampler(13)
	level := r.MaxLevel()
	for _, rot := range []int{1, 2, 5, 31, -1, -7} {
		g := r.GaloisElement(rot)
		a := s.UniformPoly(r, level, false)

		// Path 1: coefficient-domain automorphism then NTT.
		c1 := r.NewPoly(level)
		r.AutomorphismCoeff(c1, a, g, level)
		r.NTT(c1, level)

		// Path 2: NTT then NTT-domain automorphism.
		an := a.CopyNew()
		r.NTT(an, level)
		c2 := r.NewPoly(level)
		r.AutomorphismNTT(c2, an, g, level)

		if !c1.Equal(c2) {
			t.Fatalf("rot=%d: NTT-domain automorphism disagrees with coefficient-domain", rot)
		}
	}
}

func TestAutomorphismGroupLaw(t *testing.T) {
	// σ_g1 ∘ σ_g2 = σ_{g1*g2 mod 2N}
	r := newTestRing(t, 6, 2)
	s := NewSampler(17)
	level := r.MaxLevel()
	a := s.UniformPoly(r, level, false)
	g1, g2 := r.GaloisElement(3), r.GaloisElement(7)
	twoN := uint64(2 * r.N)

	t1 := r.NewPoly(level)
	r.AutomorphismCoeff(t1, a, g2, level)
	t2 := r.NewPoly(level)
	r.AutomorphismCoeff(t2, t1, g1, level)

	t3 := r.NewPoly(level)
	r.AutomorphismCoeff(t3, a, g1*g2%twoN, level)
	if !t2.Equal(t3) {
		t.Fatal("automorphism composition law violated")
	}
}

func TestAutomorphismConjugateInvolution(t *testing.T) {
	r := newTestRing(t, 6, 2)
	s := NewSampler(19)
	level := r.MaxLevel()
	a := s.UniformPoly(r, level, true)
	g := r.GaloisElementConjugate()
	b := r.NewPoly(level)
	r.AutomorphismNTT(b, a, g, level)
	c := r.NewPoly(level)
	r.AutomorphismNTT(c, b, g, level)
	if !c.Equal(a) {
		t.Fatal("conjugation applied twice is not the identity")
	}
}

func TestGaloisElementRotationComposition(t *testing.T) {
	r := newTestRing(t, 8, 1)
	twoN := uint64(2 * r.N)
	f := func(r1, r2 uint8) bool {
		a := int(r1) % (r.N / 2)
		b := int(r2) % (r.N / 2)
		return r.GaloisElement(a)*r.GaloisElement(b)%twoN == r.GaloisElement(a+b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTernaryPolyWeight(t *testing.T) {
	r := newTestRing(t, 8, 2)
	s := NewSampler(23)
	h := 32
	p := s.TernaryPoly(r, r.MaxLevel(), h)
	nonzero := 0
	for j := 0; j < r.N; j++ {
		c := r.Moduli[0].Centered(p.Coeffs[0][j])
		switch c {
		case 0:
		case 1, -1:
			nonzero++
		default:
			t.Fatalf("ternary coefficient %d out of range", c)
		}
		// All limbs must agree on the signed value.
		for i := 1; i <= p.Level(); i++ {
			if r.Moduli[i].Centered(p.Coeffs[i][j]) != c {
				t.Fatal("limbs disagree on small value")
			}
		}
	}
	if nonzero != h {
		t.Fatalf("hamming weight = %d, want %d", nonzero, h)
	}
}

func TestGaussianPolyBounded(t *testing.T) {
	r := newTestRing(t, 8, 1)
	s := NewSampler(29)
	sigma := 3.2
	p := s.GaussianPoly(r, 0, sigma)
	var sum, sumSq float64
	for j := 0; j < r.N; j++ {
		c := float64(r.Moduli[0].Centered(p.Coeffs[0][j]))
		if c > 6*sigma || c < -6*sigma {
			t.Fatalf("gaussian sample %f outside 6 sigma", c)
		}
		sum += c
		sumSq += c * c
	}
	n := float64(r.N)
	mean := sum / n
	std := sumSq/n - mean*mean
	if std < sigma*sigma/2 || std > sigma*sigma*2 {
		t.Fatalf("sample variance %f implausible for sigma=%f", std, sigma)
	}
}

func TestAddScalarInt(t *testing.T) {
	r := newTestRing(t, 4, 2)
	s := NewSampler(31)
	level := r.MaxLevel()
	a := s.UniformPoly(r, level, false)
	out := r.NewPoly(level)
	r.AddScalarInt(out, a, -5, level)
	r.AddScalarInt(out, out, 5, level)
	if !out.Equal(a) {
		t.Fatal("add scalar then its negation is not identity")
	}
}

func TestUniformRejectionIsUniform(t *testing.T) {
	// Crude sanity: mean of residues should be ~q/2.
	r := newTestRing(t, 10, 1)
	s := NewSampler(rand.Int63())
	p := s.UniformPoly(r, 0, false)
	q := float64(r.Moduli[0].Q)
	var sum float64
	for _, v := range p.Coeffs[0] {
		sum += float64(v)
	}
	mean := sum / float64(r.N)
	if mean < 0.4*q || mean > 0.6*q {
		t.Fatalf("uniform sample mean %.3g implausible for q=%.3g", mean, q)
	}
}
