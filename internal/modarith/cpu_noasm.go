//go:build noasm || (!amd64 && !arm64)

package modarith

// asmKernelTables reports no assembly tiers: under the `noasm` build tag or
// on architectures without assembly kernels, TierGo is the only entry in the
// dispatch table and the vec_ref.go / wide_ref.go kernels run everywhere.
func asmKernelTables() map[KernelTier]kernelTable { return nil }
