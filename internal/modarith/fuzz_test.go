package modarith

import (
	"encoding/binary"
	"testing"
)

// fuzzModuli are fixed so the fuzzer spends its budget on operand patterns,
// not prime generation: the bottom and top of the supported range plus a
// mid-chain prime.
var fuzzModuli = func() []Modulus {
	var ms []Modulus
	for _, bits := range []int{45, 55, 60} {
		ps, err := GenerateNTTPrimes(bits, 12, 1)
		if err != nil {
			panic(err)
		}
		ms = append(ms, MustModulus(ps[0]))
	}
	return ms
}()

// FuzzVecKernels cross-checks every registered assembly tier against the
// pure-Go oracle on fuzzer-chosen operands. The row length is derived from
// the data so lane tails (n mod 4, n mod 8) are exercised; operands are
// folded into the lazy domain the kernels are specified on. Any divergence —
// a wrong Barrett carry, a missed conditional subtraction, a bad tail
// split — is a crash here long before it corrupts a ciphertext.
func FuzzVecKernels(f *testing.F) {
	f.Add(uint8(0), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add(uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(uint8(2), []byte{})
	f.Fuzz(func(t *testing.T, sel uint8, data []byte) {
		m := fuzzModuli[int(sel)%len(fuzzModuli)]
		n := len(data)/16 + 1 // 1..65 for up to 1 KiB of data
		if n > 65 {
			n = 65
		}
		word := func(i int) uint64 {
			var buf [8]byte
			if (i+1)*8 <= len(data) {
				copy(buf[:], data[i*8:])
			} else {
				buf[0] = byte(i)
			}
			return binary.LittleEndian.Uint64(buf[:])
		}
		a := make([]uint64, n)
		b := make([]uint64, n)
		acc := make([]uint64, n)
		for i := range a {
			a[i] = word(i) % m.TwoQ
			b[i] = (word(i)*0x9e3779b97f4a7c15 + uint64(i)) % m.TwoQ
			acc[i] = word(i) ^ 0xa5a5a5a5a5a5a5a5 // full-range accumulator words
		}
		w := word(0) % m.Q
		ws := m.ShoupPrecomp(w)

		for _, tier := range AvailableTiers() {
			if tier == TierGo {
				continue
			}
			tbl := tierTables[tier]

			out := append([]uint64(nil), b...)
			want := append([]uint64(nil), b...)
			tbl.mulAddLazy(m, out, a, b)
			vecMulAddLazyGo(m, want, a, b)
			for j := range want {
				if out[j] != want[j] {
					t.Fatalf("%v mulAddLazy diverges at %d: %#x != %#x (q=%d n=%d)", tier, j, out[j], want[j], m.Q, n)
				}
			}

			out = make([]uint64, n)
			want = make([]uint64, n)
			tbl.mulShoup(m, out, a, w, ws)
			vecMulShoupGo(m, want, a, w, ws)
			for j := range want {
				if out[j] != want[j] {
					t.Fatalf("%v mulShoup diverges at %d: %#x != %#x (q=%d n=%d)", tier, j, out[j], want[j], m.Q, n)
				}
			}

			gotHi, gotLo := append([]uint64(nil), acc...), append([]uint64(nil), b...)
			wantHi, wantLo := append([]uint64(nil), acc...), append([]uint64(nil), b...)
			tbl.mulAccWide(gotHi, gotLo, a, w)
			vecMulAccWideGo(wantHi, wantLo, a, w)
			tbl.reduceWide128Lazy(m, out, gotHi, gotLo)
			vecReduceWide128LazyGo(m, want, wantHi, wantLo)
			for j := range want {
				if gotHi[j] != wantHi[j] || gotLo[j] != wantLo[j] || out[j] != want[j] {
					t.Fatalf("%v mulAccWide/reduceWide128Lazy diverges at %d (q=%d n=%d)", tier, j, m.Q, n)
				}
			}

			// Butterflies need a multiple-of-4 span.
			if n4 := n &^ 3; n4 > 0 {
				x := append([]uint64(nil), a[:n4]...)
				y := append([]uint64(nil), b[:n4]...)
				wx := append([]uint64(nil), x...)
				wy := append([]uint64(nil), y...)
				tbl.fwdButterfly(m, x, y, w, ws)
				vecFwdButterflyGo(m, wx, wy, w, ws)
				tbl.invButterfly(m, x, y, w, ws)
				vecInvButterflyGo(m, wx, wy, w, ws)
				for j := range wx {
					if x[j] != wx[j] || y[j] != wy[j] {
						t.Fatalf("%v butterfly chain diverges at %d (q=%d n=%d)", tier, j, m.Q, n4)
					}
				}
			}
		}
	})
}
