package ckks

import (
	"math/rand"
	"testing"
)

// Fused-vs-unfused microbenchmarks for the hoisted linear transform; the
// anaheim-bench -micro harness wraps the same shapes via testing.Benchmark.

func benchLT(b *testing.B, fused bool) {
	prev := FusionEnabled()
	SetFusion(fused)
	defer SetFusion(prev)
	tc := benchContext(b)
	r := rand.New(rand.NewSource(6))
	lt := randomSparseLT(r, tc.params.Slots(), []int{0, 1, 2, 3, 5, 8, 13, 21})
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, lt.Rotations())
	ct := tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 1))
	// Warm the diagonal-encoding cache so both modes measure kernels only.
	if _, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinearTransformFused(b *testing.B)   { benchLT(b, true) }
func BenchmarkLinearTransformUnfused(b *testing.B) { benchLT(b, false) }
