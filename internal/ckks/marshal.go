package ckks

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Binary serialization of ciphertexts, plaintexts and keys: length-prefixed
// concatenations of the ring-level polynomial encoding. Intended for
// persisting evaluation keys and shipping ciphertexts between parties.

func appendChunk(buf []byte, chunk []byte) []byte {
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(chunk)))
	return append(append(buf, l[:]...), chunk...)
}

func readChunk(data []byte) ([]byte, []byte, error) {
	if len(data) < 4 {
		return nil, nil, fmt.Errorf("ckks: chunk header truncated")
	}
	n := int(binary.LittleEndian.Uint32(data))
	data = data[4:]
	if len(data) < n {
		return nil, nil, fmt.Errorf("ckks: chunk body truncated (%d < %d)", len(data), n)
	}
	return data[:n], data[n:], nil
}

func appendPoly(buf []byte, p *ring.Poly) ([]byte, error) {
	b, err := p.MarshalBinary()
	if err != nil {
		return nil, err
	}
	return appendChunk(buf, b), nil
}

func readPoly(data []byte) (*ring.Poly, []byte, error) {
	chunk, rest, err := readChunk(data)
	if err != nil {
		return nil, nil, err
	}
	p := &ring.Poly{}
	if err := p.UnmarshalBinary(chunk); err != nil {
		return nil, nil, err
	}
	return p, rest, nil
}

// MarshalBinary encodes the ciphertext (scale + both components).
func (ct *Ciphertext) MarshalBinary() ([]byte, error) {
	buf := ring.AppendFloat64(nil, ct.Scale)
	var err error
	if buf, err = appendPoly(buf, ct.C0); err != nil {
		return nil, err
	}
	return appendPoly(buf, ct.C1)
}

// UnmarshalBinary decodes a ciphertext. Beyond framing, it rejects inputs
// that decode but could never have come from MarshalBinary — mismatched
// component shapes or a non-finite/non-positive scale — so untrusted wire
// bytes cannot smuggle a structurally broken ciphertext past the decoder
// and panic an evaluator op later.
func (ct *Ciphertext) UnmarshalBinary(data []byte) error {
	scale, rest, err := ring.ReadFloat64(data)
	if err != nil {
		return err
	}
	if !(scale > 0) || math.IsInf(scale, 0) { // !(>0) also catches NaN
		return fmt.Errorf("ckks: ciphertext scale %v is not a positive finite number", scale)
	}
	c0, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	c1, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: %d trailing bytes after ciphertext", len(rest))
	}
	if len(c0.Coeffs) != len(c1.Coeffs) {
		return fmt.Errorf("ckks: ciphertext components disagree on level (%d vs %d limbs)",
			len(c0.Coeffs), len(c1.Coeffs))
	}
	if len(c0.Coeffs) > 0 && len(c0.Coeffs[0]) != len(c1.Coeffs[0]) {
		return fmt.Errorf("ckks: ciphertext components disagree on ring degree (%d vs %d)",
			len(c0.Coeffs[0]), len(c1.Coeffs[0]))
	}
	ct.Scale, ct.C0, ct.C1 = scale, c0, c1
	return nil
}

// MarshalBinary encodes the plaintext.
func (pt *Plaintext) MarshalBinary() ([]byte, error) {
	buf := ring.AppendFloat64(nil, pt.Scale)
	return appendPoly(buf, pt.Value)
}

// UnmarshalBinary decodes a plaintext.
func (pt *Plaintext) UnmarshalBinary(data []byte) error {
	scale, rest, err := ring.ReadFloat64(data)
	if err != nil {
		return err
	}
	v, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: trailing bytes after plaintext")
	}
	pt.Scale, pt.Value = scale, v
	return nil
}

// MarshalBinary encodes the secret key (both basis embeddings).
func (sk *SecretKey) MarshalBinary() ([]byte, error) {
	buf, err := appendPoly(nil, sk.Q)
	if err != nil {
		return nil, err
	}
	return appendPoly(buf, sk.P)
}

// UnmarshalBinary decodes a secret key.
func (sk *SecretKey) UnmarshalBinary(data []byte) error {
	q, rest, err := readPoly(data)
	if err != nil {
		return err
	}
	p, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: trailing bytes after secret key")
	}
	sk.Q, sk.P = q, p
	return nil
}

// MarshalBinary encodes the public key.
func (pk *PublicKey) MarshalBinary() ([]byte, error) {
	buf, err := appendPoly(nil, pk.B)
	if err != nil {
		return nil, err
	}
	return appendPoly(buf, pk.A)
}

// UnmarshalBinary decodes a public key.
func (pk *PublicKey) UnmarshalBinary(data []byte) error {
	b, rest, err := readPoly(data)
	if err != nil {
		return err
	}
	a, rest, err := readPoly(rest)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: trailing bytes after public key")
	}
	pk.B, pk.A = b, a
	return nil
}

// MarshalBinary encodes the full evaluation key set: the relinearization
// key (if present) and every Galois key with its element.
func (s *EvaluationKeySet) MarshalBinary() ([]byte, error) {
	var buf []byte
	if s.Rlk != nil {
		b, err := s.Rlk.MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = appendChunk([]byte{1}, b)
	} else {
		buf = []byte{0}
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(s.Gal)))
	buf = append(buf, hdr[:]...)
	// Deterministic order.
	els := make([]uint64, 0, len(s.Gal))
	for g := range s.Gal {
		els = append(els, g)
	}
	sort.Slice(els, func(i, j int) bool { return els[i] < els[j] })
	for _, g := range els {
		var ge [8]byte
		binary.LittleEndian.PutUint64(ge[:], g)
		buf = append(buf, ge[:]...)
		b, err := s.Gal[g].MarshalBinary()
		if err != nil {
			return nil, err
		}
		buf = appendChunk(buf, b)
	}
	return buf, nil
}

// UnmarshalBinary decodes an evaluation key set.
func (s *EvaluationKeySet) UnmarshalBinary(data []byte) error {
	if len(data) < 1 {
		return fmt.Errorf("ckks: key set truncated")
	}
	if data[0] > 1 {
		return fmt.Errorf("ckks: bad key set flag byte %#x", data[0])
	}
	hasRlk := data[0] == 1
	rest := data[1:]
	s.Rlk = nil
	s.Gal = make(map[uint64]*SwitchingKey)
	if hasRlk {
		chunk, r, err := readChunk(rest)
		if err != nil {
			return err
		}
		s.Rlk = &SwitchingKey{}
		if err := s.Rlk.UnmarshalBinary(chunk); err != nil {
			return err
		}
		rest = r
	}
	if len(rest) < 4 {
		return fmt.Errorf("ckks: key set galois header truncated")
	}
	n := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	for i := 0; i < n; i++ {
		if len(rest) < 8 {
			return fmt.Errorf("ckks: key set galois element truncated")
		}
		g := binary.LittleEndian.Uint64(rest)
		rest = rest[8:]
		chunk, r, err := readChunk(rest)
		if err != nil {
			return err
		}
		k := &SwitchingKey{}
		if err := k.UnmarshalBinary(chunk); err != nil {
			return err
		}
		s.Gal[g] = k
		rest = r
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: trailing bytes after key set")
	}
	return nil
}

// MarshalBinary encodes a switching key (all digits, Q and P parts). When
// the key carries level-aware band variants, a band section follows the
// base digits; keys without bands keep the pre-band wire format exactly, so
// old decoders read new bandless blobs and vice versa.
func (k *SwitchingKey) MarshalBinary() ([]byte, error) {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(k.Digits()))
	buf := append([]byte{}, hdr[:]...)
	var err error
	for d := 0; d < k.Digits(); d++ {
		for _, p := range []*ring.Poly{k.BQ[d], k.AQ[d], k.BP[d], k.AP[d]} {
			if buf, err = appendPoly(buf, p); err != nil {
				return nil, err
			}
		}
	}
	if len(k.Bands) == 0 {
		return buf, nil
	}
	var u32 [4]byte
	binary.LittleEndian.PutUint32(u32[:], uint32(len(k.Bands)))
	buf = append(buf, u32[:]...)
	for _, b := range k.Bands {
		for _, v := range []int{b.Alpha, b.Width, len(b.BQ)} {
			binary.LittleEndian.PutUint32(u32[:], uint32(v))
			buf = append(buf, u32[:]...)
		}
		for d := range b.BQ {
			for _, p := range []*ring.Poly{b.BQ[d], b.AQ[d], b.BP[d], b.AP[d]} {
				if buf, err = appendPoly(buf, p); err != nil {
					return nil, err
				}
			}
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes a switching key. An absent band section (the
// pre-band format) leaves Bands nil; the evaluator falls back to the legacy
// gadget shape for such keys.
func (k *SwitchingKey) UnmarshalBinary(data []byte) error {
	if len(data) < 4 {
		return fmt.Errorf("ckks: switching key truncated")
	}
	digits := int(binary.LittleEndian.Uint32(data))
	if digits <= 0 || digits > 256 {
		return fmt.Errorf("ckks: implausible digit count %d", digits)
	}
	rest := data[4:]
	k.BQ = make([]*ring.Poly, digits)
	k.AQ = make([]*ring.Poly, digits)
	k.BP = make([]*ring.Poly, digits)
	k.AP = make([]*ring.Poly, digits)
	var err error
	for d := 0; d < digits; d++ {
		for _, dst := range []**ring.Poly{&k.BQ[d], &k.AQ[d], &k.BP[d], &k.AP[d]} {
			*dst, rest, err = readPoly(rest)
			if err != nil {
				return err
			}
		}
	}
	k.Bands = nil
	if len(rest) == 0 {
		return nil
	}
	if len(rest) < 4 {
		return fmt.Errorf("ckks: switching key band header truncated")
	}
	nBands := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if nBands <= 0 || nBands > 64 {
		return fmt.Errorf("ckks: implausible band count %d", nBands)
	}
	k.Bands = make([]*SwitchingKeyBand, nBands)
	for i := 0; i < nBands; i++ {
		if len(rest) < 12 {
			return fmt.Errorf("ckks: switching key band %d header truncated", i)
		}
		alpha := int(binary.LittleEndian.Uint32(rest))
		width := int(binary.LittleEndian.Uint32(rest[4:]))
		bd := int(binary.LittleEndian.Uint32(rest[8:]))
		rest = rest[12:]
		if alpha < 1 || alpha > 256 || width < 1 || width > 256 || bd < 1 || bd > 256 {
			return fmt.Errorf("ckks: implausible band shape (%d, %d, %d)", alpha, width, bd)
		}
		b := &SwitchingKeyBand{
			Alpha: alpha, Width: width,
			BQ: make([]*ring.Poly, bd),
			AQ: make([]*ring.Poly, bd),
			BP: make([]*ring.Poly, bd),
			AP: make([]*ring.Poly, bd),
		}
		for d := 0; d < bd; d++ {
			for _, dst := range []**ring.Poly{&b.BQ[d], &b.AQ[d], &b.BP[d], &b.AP[d]} {
				*dst, rest, err = readPoly(rest)
				if err != nil {
					return err
				}
			}
		}
		k.Bands[i] = b
	}
	if len(rest) != 0 {
		return fmt.Errorf("ckks: trailing bytes after switching key")
	}
	return nil
}
