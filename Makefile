GO ?= go

# Build tags threaded through every compile/test target. `make test TAGS=noasm`
# runs the whole suite on the pure-Go kernels (the same leg CI runs), and the
# fuzz/profile targets inherit it so a noasm profile or fuzz run needs no
# target-specific flags.
TAGS ?=
TAGFLAGS = $(if $(TAGS),-tags $(TAGS))

.PHONY: all build vet lint test race bench micro load fuzz bench-compare cover profile serve clean

all: vet build test

build:
	$(GO) build $(TAGFLAGS) ./...

vet:
	$(GO) vet $(TAGFLAGS) ./...

# Static quality gate: formatting, vet (plus an explicit asmdecl pass: the
# assembly kernels' frame/argument layout must match their Go stub
# declarations), and staticcheck (when installed). CI installs staticcheck on
# the runner; locally it is optional.
lint:
	@unformatted="$$(gofmt -l .)"; if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; fi
	$(GO) vet $(TAGFLAGS) ./...
	$(GO) vet -asmdecl ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck $(TAGFLAGS) ./...; \
		else echo "staticcheck not installed, skipping"; fi

test:
	$(GO) test $(TAGFLAGS) ./...

race:
	$(GO) test $(TAGFLAGS) -race ./...

# Paper-figure benchmarks (testing.B, one per artifact).
bench:
	$(GO) test $(TAGFLAGS) -bench=. -benchmem -run=^$$ ./...

# FHE op microbenchmarks -> BENCH_BASELINE.json (the perf trajectory file,
# fused and unfused entries for the lintrans/bootstrap pairs, pipelined and
# barriered pairs with -membw traffic columns), then the many-tenant serving
# load driver merged in as the .serving field.
micro:
	$(GO) run ./cmd/anaheim-bench -micro -fusion both -membw -o BENCH_BASELINE.json
	$(GO) run ./cmd/anaheim-bench -tenants 8 -mix logreg,lintrans -duration 3s \
		-batch both -merge BENCH_BASELINE.json -o /dev/null

# Many-tenant serving load driver with the batching gate: batching-on must
# beat batching-off throughput without regressing latency-tier p99 >10%.
load:
	$(GO) run ./cmd/anaheim-bench -tenants 8 -mix logreg,lintrans -duration 5s \
		-batch both -gate

# Fuzz smoke: 10s per untrusted-input decoder, plus the asm-vs-Go kernel
# cross-check (CI runs the same). All legs honor TAGS, so `make fuzz
# TAGS=noasm` fuzzes the pure-Go kernels (FuzzVecKernels then has no asm tier
# to diff and exits immediately, which is the correct noasm behavior).
FUZZTIME ?= 10s
fuzz:
	$(GO) test $(TAGFLAGS) -run=^$$ -fuzz=FuzzCiphertextUnmarshal -fuzztime=$(FUZZTIME) ./internal/ckks
	$(GO) test $(TAGFLAGS) -run=^$$ -fuzz=FuzzEvaluationKeySetUnmarshal -fuzztime=$(FUZZTIME) ./internal/ckks
	$(GO) test $(TAGFLAGS) -run=^$$ -fuzz=FuzzGadgetPlan -fuzztime=$(FUZZTIME) ./internal/ckks
	$(GO) test $(TAGFLAGS) -run=^$$ -fuzz=FuzzJobSpecDecode -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test $(TAGFLAGS) -run=^$$ -fuzz=FuzzNTTRoundTrip -fuzztime=$(FUZZTIME) ./internal/ntt
	$(GO) test $(TAGFLAGS) -run=^$$ -fuzz=FuzzBConv -fuzztime=$(FUZZTIME) ./internal/rns
	$(GO) test $(TAGFLAGS) -run=^$$ -fuzz=FuzzVecKernels -fuzztime=$(FUZZTIME) ./internal/modarith

# Coverage profile + per-package summary. The crypto core (internal/ckks,
# internal/rns) and the dispatched row kernels (internal/modarith,
# internal/ntt — where a coverage hole means an untested asm/Go pair) carry
# the correctness burden — below 70% statement coverage there the run warns
# loudly (but does not fail: coverage is a visibility tool, the differential
# tests are the gate).
COVER_FLOOR ?= 70
cover:
	$(GO) test $(TAGFLAGS) -coverprofile=coverage.out -covermode=atomic ./... | tee coverage.txt
	@$(GO) tool cover -func=coverage.out | tail -1
	@for pkg in internal/ckks internal/rns internal/modarith internal/ntt; do \
		pct="$$(grep "/$$pkg	" coverage.txt | grep -o 'coverage: [0-9.]*' | grep -o '[0-9.]*')"; \
		if [ -z "$$pct" ]; then echo "WARNING: no coverage figure for $$pkg"; continue; fi; \
		echo "$$pkg: $$pct%"; \
		if [ "$$(printf '%.0f' "$$pct")" -lt "$(COVER_FLOOR)" ]; then \
			echo "WARNING: $$pkg coverage $$pct% below $(COVER_FLOOR)% floor"; \
		fi; \
	done

# CPU profiles for the two hot paths: the NTT transform kernels and the full
# key-switch pipeline (ModUp -> KeyMult -> ModDown, which exercises the
# wide-accumulation BConv kernel). Each leg leaves a .prof plus its test
# binary for `go tool pprof <binary> <profile>`.
profile:
	$(GO) test $(TAGFLAGS) -run=^$$ -bench='Forward|Inverse' -benchtime=2s \
		-cpuprofile=ntt_cpu.prof -o ntt_bench.test ./internal/ntt
	$(GO) test $(TAGFLAGS) -run=^$$ -bench=KeySwitch -benchtime=2s \
		-cpuprofile=keyswitch_cpu.prof -o ckks_bench.test ./internal/ckks
	@echo "wrote ntt_cpu.prof; inspect with: go tool pprof ntt_bench.test ntt_cpu.prof"
	@echo "wrote keyswitch_cpu.prof; inspect with: go tool pprof ckks_bench.test keyswitch_cpu.prof"

# Rerun the microbenchmarks and diff against the committed baseline.
bench-compare:
	$(GO) run ./cmd/anaheim-bench -micro -metrics -o /tmp/bench-new.json
	$(GO) run ./cmd/anaheim-bench -compare BENCH_BASELINE.json -against /tmp/bench-new.json

serve:
	$(GO) run ./cmd/anaheim-serve -addr :8080

clean:
	$(GO) clean ./...
