package ring

import "sync"

// polyPool recycles Poly scratch buffers, one sync.Pool per limb count.
// Evaluator hot paths (Rescale, ModDown, Decompose) allocate and discard a
// polynomial of N×limbs uint64 per call; at serving throughput that is the
// dominant GC pressure, so they borrow from here instead.
//
// Ownership rules: a borrowed Poly is exclusively the caller's until
// returned. Only return polynomials whose backing storage has not escaped
// (no Truncated view or Coeffs row may outlive the Put). Double-Put is a
// caller bug and corrupts the pool.
type polyPool struct {
	mu    sync.Mutex
	pools []*sync.Pool // index = limbs-1
}

func (pp *polyPool) pool(limbs int) *sync.Pool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for len(pp.pools) < limbs {
		pp.pools = append(pp.pools, &sync.Pool{})
	}
	return pp.pools[limbs-1]
}

// GetPoly borrows a zeroed coefficient-domain polynomial with level+1 limbs
// from the ring's buffer pool. It is interchangeable with NewPoly; callers
// that are done with the scratch value should hand it back via PutPoly.
func (r *Ring) GetPoly(level int) *Poly {
	limbs := level + 1
	if v := r.pool.pool(limbs).Get(); v != nil {
		p := v.(*Poly)
		p.Zero()
		p.IsNTT = false
		return p
	}
	return r.NewPoly(level)
}

// PutPoly returns a borrowed polynomial to the pool. Polynomials of foreign
// shape (wrong N, truncated views) are dropped rather than pooled.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil || len(p.Coeffs) == 0 || len(p.Coeffs[0]) != r.N {
		return
	}
	r.pool.pool(len(p.Coeffs)).Put(p)
}
