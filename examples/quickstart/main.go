// Quickstart: encrypt two complex vectors, compute (u+v)·w and a rotation
// homomorphically, and verify against the plaintext result.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"github.com/anaheim-sim/anaheim"
)

func main() {
	// Small, fast, insecure demo parameters (N=2^10).
	ctx, err := anaheim.NewContext(anaheim.TestParameters(), 1)
	if err != nil {
		log.Fatal(err)
	}
	slots := ctx.Params.Slots()
	fmt.Printf("CKKS context: N=%d, %d slots, L=%d levels, Δ=2^45\n",
		ctx.Params.N(), slots, ctx.Params.MaxLevel())

	u := make([]complex128, slots)
	v := make([]complex128, slots)
	w := make([]complex128, slots)
	for i := range u {
		u[i] = complex(float64(i%7)/10, 0.1)
		v[i] = complex(0.3, float64(i%5)/10)
		w[i] = complex(0.5, -0.2)
	}

	ctU, err := ctx.Encrypt(u)
	if err != nil {
		log.Fatal(err)
	}
	ctV, err := ctx.Encrypt(v)
	if err != nil {
		log.Fatal(err)
	}
	ctW, err := ctx.Encrypt(w)
	if err != nil {
		log.Fatal(err)
	}

	// (u + v) ⊙ w, all encrypted.
	sum := ctx.Add(ctU, ctV)
	prod := ctx.Mul(sum, ctW)

	// Rotate the result by three slots.
	ctx.GenRotationKeys(3)
	rot, err := ctx.Rotate(prod, 3)
	if err != nil {
		log.Fatal(err)
	}

	got := ctx.Decrypt(rot)
	maxErr := 0.0
	for i := 0; i < slots; i++ {
		want := (u[(i+3)%slots] + v[(i+3)%slots]) * w[(i+3)%slots]
		if e := cmplx.Abs(got[i] - want); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("first slots: got %v, %v\n", got[0], got[1])
	fmt.Printf("max error vs plaintext computation: %.3g\n", maxErr)
	if maxErr > 1e-4 {
		log.Fatal("error too large — something is wrong")
	}
	fmt.Println("homomorphic (u+v)*w with rotation: OK")
}
