package ckks

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
	"math/cmplx"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Encoder maps complex slot vectors u ∈ C^{N/2} to plaintext polynomials
// ⟨u⟩ ∈ R_Q via the canonical embedding restricted to the rotation-group
// orbit of 5 (§II-A). The special FFT below evaluates/interpolates at the
// primitive 2N-th roots ζ^{5^j}, the ordering that makes slot rotations
// Galois automorphisms.
type Encoder struct {
	params   *Parameters
	m        int          // 2N
	rotGroup []int        // 5^j mod 2N
	ksiPows  []complex128 // ζ^k, k = 0..m
}

// NewEncoder builds the FFT tables for the parameter set.
func NewEncoder(params *Parameters) *Encoder {
	m := 2 * params.N()
	e := &Encoder{
		params:   params,
		m:        m,
		rotGroup: make([]int, params.Slots()),
		ksiPows:  make([]complex128, m+1),
	}
	fivePow := 1
	for j := 0; j < params.Slots(); j++ {
		e.rotGroup[j] = fivePow
		fivePow = fivePow * 5 % m
	}
	for k := 0; k <= m; k++ {
		angle := 2 * math.Pi * float64(k) / float64(m)
		e.ksiPows[k] = cmplx.Exp(complex(0, angle))
	}
	return e
}

func bitReversePermute(vals []complex128) {
	n := len(vals)
	logN := bits.Len(uint(n)) - 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> uint(64-logN))
		if i < j {
			vals[i], vals[j] = vals[j], vals[i]
		}
	}
}

// specialFFT evaluates: slots(m) from coefficients layout (decode direction).
func (e *Encoder) specialFFT(vals []complex128) {
	n := len(vals)
	bitReversePermute(vals)
	for size := 2; size <= n; size <<= 1 {
		lenh, lenq := size>>1, size<<2
		for i := 0; i < n; i += size {
			for j := 0; j < lenh; j++ {
				idx := (e.rotGroup[j] % lenq) * e.m / lenq
				u := vals[i+j]
				v := vals[i+j+lenh] * e.ksiPows[idx]
				vals[i+j] = u + v
				vals[i+j+lenh] = u - v
			}
		}
	}
}

// specialIFFT interpolates: coefficients layout from slots (encode
// direction), including the 1/n scaling.
func (e *Encoder) specialIFFT(vals []complex128) {
	n := len(vals)
	for size := n; size >= 2; size >>= 1 {
		lenh, lenq := size>>1, size<<2
		for i := 0; i < n; i += size {
			for j := 0; j < lenh; j++ {
				idx := (lenq - (e.rotGroup[j] % lenq)) * e.m / lenq
				u := vals[i+j] + vals[i+j+lenh]
				v := (vals[i+j] - vals[i+j+lenh]) * e.ksiPows[idx]
				vals[i+j] = u
				vals[i+j+lenh] = v
			}
		}
	}
	bitReversePermute(vals)
	inv := complex(1/float64(n), 0)
	for i := range vals {
		vals[i] *= inv
	}
}

// Encode produces an NTT-domain plaintext polynomial at the given level and
// scale from at most N/2 complex values (shorter inputs are zero-padded; the
// input slice is not modified).
func (e *Encoder) Encode(values []complex128, level int, scale float64) (*ring.Poly, error) {
	slots := e.params.Slots()
	if len(values) > slots {
		return nil, fmt.Errorf("ckks: %d values exceed %d slots", len(values), slots)
	}
	vals := make([]complex128, slots)
	copy(vals, values)
	e.specialIFFT(vals)

	rq := e.params.RingQ()
	p := rq.NewPoly(level)
	nh := e.params.N() / 2
	for j := 0; j < nh; j++ {
		re := int64(math.Round(real(vals[j]) * scale))
		im := int64(math.Round(imag(vals[j]) * scale))
		for i := 0; i <= level; i++ {
			mod := rq.Moduli[i]
			p.Coeffs[i][j] = mod.FromCentered(re)
			p.Coeffs[i][j+nh] = mod.FromCentered(im)
		}
	}
	rq.NTT(p, level)
	return p, nil
}

// Decode recovers the slot vector from a coefficient representation using
// exact CRT reconstruction (robust to coefficients close to Q). pt may be in
// either domain; it is not modified.
func (e *Encoder) Decode(pt *ring.Poly, scale float64) []complex128 {
	rq := e.params.RingQ()
	level := pt.Level()
	work := pt.CopyNew()
	if work.IsNTT {
		rq.INTT(work, level)
	}

	// CRT reconstruct each coefficient as a centered big integer, then to
	// float64 via big.Float for full precision.
	moduli := rq.AtLevel(level)
	bigQ := big.NewInt(1)
	for _, m := range moduli {
		bigQ.Mul(bigQ, new(big.Int).SetUint64(m.Q))
	}
	halfQ := new(big.Int).Rsh(bigQ, 1)
	// Precompute CRT weights w_i = (Q/q_i)·[(Q/q_i)^{-1}]_{q_i}.
	weights := make([]*big.Int, len(moduli))
	for i, m := range moduli {
		qi := new(big.Int).SetUint64(m.Q)
		qHat := new(big.Int).Div(bigQ, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qHat, qi), qi)
		weights[i] = new(big.Int).Mul(qHat, inv)
	}

	coeffToFloat := func(j int) float64 {
		acc := big.NewInt(0)
		for i := range moduli {
			t := new(big.Int).SetUint64(work.Coeffs[i][j])
			acc.Add(acc, t.Mul(t, weights[i]))
		}
		acc.Mod(acc, bigQ)
		if acc.Cmp(halfQ) > 0 {
			acc.Sub(acc, bigQ)
		}
		f, _ := new(big.Float).SetInt(acc).Float64()
		return f
	}

	nh := e.params.N() / 2
	vals := make([]complex128, e.params.Slots())
	for j := 0; j < nh; j++ {
		vals[j] = complex(coeffToFloat(j)/scale, coeffToFloat(j+nh)/scale)
	}
	e.specialFFT(vals)
	return vals
}
