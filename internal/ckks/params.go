// Package ckks implements the RNS-CKKS approximate homomorphic encryption
// scheme (Cheon–Kim–Kim–Song) with the structure assumed by the Anaheim
// paper: residue-number-system polynomial arithmetic, hybrid key switching
// with decomposition number D = ceil(L/α) and special modulus P (Table I),
// hoisting- and MinKS-based homomorphic linear transforms (§III-B), and full
// bootstrapping with sparse-secret encapsulation, grouped-DFT CoeffToSlot /
// SlotToCoeff (the fftIter knob of §IV-C) and Chebyshev EvalMod.
//
// The functional implementation targets research-scale parameters; the
// paper-scale N = 2^16 configurations are exercised by the performance
// simulator (internal/trace, internal/gpu, internal/pim), which consumes the
// op structure defined here.
package ckks

import (
	"fmt"
	"math"
	"math/big"
	"sort"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/ring"
)

// ParametersLiteral is the user-facing description of a CKKS parameter set.
type ParametersLiteral struct {
	LogN     int   // ring degree N = 2^LogN
	LogQ     []int // bit sizes of the Q primes; LogQ[0] is the base prime q0
	LogP     []int // bit sizes of the special-modulus primes (α = len(LogP))
	LogScale int   // log2 of the default scaling factor Δ
	HDense   int   // Hamming weight of the dense secret (Table IV H_d)
	HSparse  int   // Hamming weight of the sparse secret (Table IV H_s)
	Sigma    float64
}

// Parameters is a compiled, immutable CKKS parameter set.
type Parameters struct {
	logN  int
	n     int
	slots int

	ringQ *ring.Ring
	ringP *ring.Ring

	scale   float64
	hDense  int
	hSparse int
	sigma   float64

	plans []GadgetPlan // per-level key-switch plans, indexed by level
	bands []GadgetBand // distinct non-legacy (alpha, width) shapes keygen realizes
}

// GadgetPlan describes the hybrid key-switch decomposition used for
// ciphertexts at one level: the ModUp digits are Width Q limbs wide and the
// extension basis is Q_Level ∪ P_Alpha, where P_Alpha = p_0···p_{Alpha-1} is
// a prefix of the special modulus. The legacy (level-oblivious) shape is
// Alpha = Width = α_top, which every switching key's base digits serve; any
// other shape needs a matching SwitchingKeyBand on the key.
type GadgetPlan struct {
	Level  int // ciphertext level the plan applies to
	Alpha  int // special primes used for the extension and the ModDown divide
	Digits int // decomposition number at this level
	Width  int // digit width in Q limbs
}

// GadgetBand names one non-legacy (alpha, width) gadget shape selected by at
// least one level's plan. TopLevel is the highest level using the shape; the
// keygen realizes the band's Q digits at that level and lower levels consume
// them by truncation, exactly as they do the legacy digits.
type GadgetBand struct {
	Alpha    int
	Width    int
	TopLevel int
}

// PlanAt returns the level-aware gadget plan for a key switch at the given
// level. The top level always returns the legacy plan, so enabling
// level-aware key switching cannot change top-level behavior.
func (p *Parameters) PlanAt(level int) GadgetPlan { return p.plans[level] }

// LegacyPlanAt returns the level-oblivious plan (full P, digit stride α_top)
// that reproduces the pre-level-aware pipeline at the given level.
func (p *Parameters) LegacyPlanAt(level int) GadgetPlan {
	a := p.Alpha()
	return GadgetPlan{Level: level, Alpha: a, Digits: p.Digits(level), Width: a}
}

// IsLegacyPlan reports whether the plan is the level-oblivious shape served
// directly by a switching key's base digit arrays.
func (p *Parameters) IsLegacyPlan(pl GadgetPlan) bool {
	return pl.Alpha == p.Alpha() && pl.Width == p.Alpha()
}

// GadgetBands lists the non-legacy gadget shapes keygen must realize as
// per-key band variants, deterministically ordered.
func (p *Parameters) GadgetBands() []GadgetBand { return p.bands }

// ValidateGadgetPlan checks that (level, alpha, dnum) describes a sound
// hybrid key-switch decomposition for this parameter set: in-range operands,
// a digit count that actually tiles the level's limbs, and — the noise
// condition — every digit's modulus product Q_d at most the P-prefix product
// P_alpha, so the per-digit error term ||ĉ_d·e_d||/P_alpha stays below one
// fresh-noise unit. Products are compared exactly over big.Int; the legacy
// plan is grandfathered and never validated.
func (p *Parameters) ValidateGadgetPlan(level, alpha, dnum int) error {
	if level < 0 || level > p.MaxLevel() {
		return fmt.Errorf("ckks: plan level %d outside [0,%d]", level, p.MaxLevel())
	}
	if alpha < 1 || alpha > p.Alpha() {
		return fmt.Errorf("ckks: plan alpha %d outside [1,%d]", alpha, p.Alpha())
	}
	limbs := level + 1
	if dnum < 1 || dnum > limbs {
		return fmt.Errorf("ckks: plan dnum %d outside [1,%d]", dnum, limbs)
	}
	width := (limbs + dnum - 1) / dnum
	if (limbs+width-1)/width != dnum {
		return fmt.Errorf("ckks: plan dnum %d leaves empty digits at level %d (width %d tiles %d limbs in %d digits)",
			dnum, level, width, limbs, (limbs+width-1)/width)
	}
	pProd := big.NewInt(1)
	for _, pm := range p.ringP.Moduli[:alpha] {
		pProd.Mul(pProd, new(big.Int).SetUint64(pm.Q))
	}
	qProd := new(big.Int)
	for d := 0; d < dnum; d++ {
		lo, hi := d*width, min((d+1)*width, limbs)
		qProd.SetInt64(1)
		for _, qm := range p.ringQ.Moduli[lo:hi] {
			qProd.Mul(qProd, new(big.Int).SetUint64(qm.Q))
		}
		if qProd.Cmp(pProd) > 0 {
			return fmt.Errorf("ckks: plan digit %d modulus product exceeds P_%d (level %d, dnum %d)",
				d, alpha, level, dnum)
		}
	}
	return nil
}

// planCost models the limb-row transform volume of one key switch under a
// plan: Decompose NTTs plus gadget MACs are ~Digits passes over the extended
// basis (Level+1+Alpha rows) and the two ModDowns are one pass each over the
// P prefix plus the Q limbs. Only relative order matters — the selection
// picks the cheapest valid plan and keeps legacy on ties.
func planCost(pl GadgetPlan) int {
	ext := pl.Level + 1 + pl.Alpha
	return 2*pl.Digits*ext + 2*(pl.Alpha+pl.Level+1)
}

// selectGadgetPlans chooses, per level, the cheapest (alpha, dnum) that
// passes ValidateGadgetPlan, keeping the legacy shape when nothing validates
// strictly cheaper. The top level is pinned to legacy so the level-aware
// path is opt-out-safe: behavior at full height is bit-identical.
func (p *Parameters) selectGadgetPlans() {
	l := p.MaxLevel()
	p.plans = make([]GadgetPlan, l+1)
	for lvl := 0; lvl <= l; lvl++ {
		legacy := p.LegacyPlanAt(lvl)
		p.plans[lvl] = legacy
		if lvl == l {
			continue
		}
		limbs := lvl + 1
		bestCost := planCost(legacy)
		for alpha := 1; alpha <= p.Alpha(); alpha++ {
			for dnum := 1; dnum <= limbs; dnum++ {
				if p.ValidateGadgetPlan(lvl, alpha, dnum) != nil {
					continue
				}
				cand := GadgetPlan{Level: lvl, Alpha: alpha, Digits: dnum, Width: (limbs + dnum - 1) / dnum}
				if c := planCost(cand); c < bestCost {
					p.plans[lvl], bestCost = cand, c
				}
			}
		}
	}
	byShape := make(map[[2]int]int)
	for _, pl := range p.plans {
		if p.IsLegacyPlan(pl) {
			continue
		}
		shape := [2]int{pl.Alpha, pl.Width}
		if top, ok := byShape[shape]; !ok || pl.Level > top {
			byShape[shape] = pl.Level
		}
	}
	p.bands = p.bands[:0]
	for shape, top := range byShape {
		p.bands = append(p.bands, GadgetBand{Alpha: shape[0], Width: shape[1], TopLevel: top})
	}
	sort.Slice(p.bands, func(i, j int) bool {
		if p.bands[i].Alpha != p.bands[j].Alpha {
			return p.bands[i].Alpha < p.bands[j].Alpha
		}
		return p.bands[i].Width < p.bands[j].Width
	})
}

// NewParameters compiles a literal into a usable parameter set, generating
// the NTT-friendly prime chains.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 3 || lit.LogN > 16 {
		return nil, fmt.Errorf("ckks: LogN=%d out of supported range [3,16]", lit.LogN)
	}
	if len(lit.LogQ) < 1 || len(lit.LogP) < 1 {
		return nil, fmt.Errorf("ckks: need at least one Q prime and one P prime")
	}
	if lit.Sigma == 0 {
		lit.Sigma = 3.2
	}
	if lit.HDense == 0 {
		lit.HDense = 1 << 8
	}
	if lit.HSparse == 0 {
		lit.HSparse = 32
	}
	all := append(append([]int{}, lit.LogQ...), lit.LogP...)
	chain, err := modarith.GeneratePrimeChain(all, lit.LogN)
	if err != nil {
		return nil, err
	}
	qPrimes := chain[:len(lit.LogQ)]
	pPrimes := chain[len(lit.LogQ):]
	rq, err := ring.NewRing(lit.LogN, qPrimes)
	if err != nil {
		return nil, err
	}
	rp, err := ring.NewRing(lit.LogN, pPrimes)
	if err != nil {
		return nil, err
	}
	n := 1 << uint(lit.LogN)
	p := &Parameters{
		logN:    lit.LogN,
		n:       n,
		slots:   n / 2,
		ringQ:   rq,
		ringP:   rp,
		scale:   math.Exp2(float64(lit.LogScale)),
		hDense:  lit.HDense,
		hSparse: lit.HSparse,
		sigma:   lit.Sigma,
	}
	p.selectGadgetPlans()
	return p, nil
}

// N returns the ring degree.
func (p *Parameters) N() int { return p.n }

// LogN returns log2 of the ring degree.
func (p *Parameters) LogN() int { return p.logN }

// Slots returns the number of complex slots (N/2).
func (p *Parameters) Slots() int { return p.slots }

// MaxLevel returns the highest usable ciphertext level L-1 (L = #Q primes).
func (p *Parameters) MaxLevel() int { return p.ringQ.MaxLevel() }

// Alpha returns the number of special-modulus primes α.
func (p *Parameters) Alpha() int { return len(p.ringP.Moduli) }

// Digits returns the decomposition number D = ceil(#limbs/α) for a
// key-switching operation at the given level.
func (p *Parameters) Digits(level int) int {
	a := p.Alpha()
	return (level + 1 + a - 1) / a
}

// RingQ returns the ciphertext-modulus ring.
func (p *Parameters) RingQ() *ring.Ring { return p.ringQ }

// RingP returns the special-modulus ring.
func (p *Parameters) RingP() *ring.Ring { return p.ringP }

// DefaultScale returns the default scaling factor Δ.
func (p *Parameters) DefaultScale() float64 { return p.scale }

// Sigma returns the error standard deviation.
func (p *Parameters) Sigma() float64 { return p.sigma }

// HDense and HSparse return the dense/sparse secret Hamming weights.
func (p *Parameters) HDense() int  { return p.hDense }
func (p *Parameters) HSparse() int { return p.hSparse }

// LogQP returns the total bit size of the full modulus PQ, the quantity
// constrained by the 128-bit security tables (log PQ < 1623 for N = 2^16,
// §IV-B).
func (p *Parameters) LogQP() float64 {
	total := 0.0
	for _, m := range p.ringQ.Moduli {
		total += math.Log2(float64(m.Q))
	}
	for _, m := range p.ringP.Moduli {
		total += math.Log2(float64(m.Q))
	}
	return total
}

func repeatInts(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestParameters returns a small, fast, insecure parameter set for unit
// tests: N=2^10, 6 scaling levels.
func TestParameters() ParametersLiteral {
	return ParametersLiteral{
		LogN:     10,
		LogQ:     append([]int{55}, repeatInts(45, 6)...),
		LogP:     []int{58, 58},
		LogScale: 45,
		HDense:   64,
		HSparse:  16,
	}
}

// BootTestParameters returns an insecure but functionally complete
// bootstrapping parameter set (N=2^11) with enough modulus budget for
// CoeffToSlot, EvalMod and SlotToCoeff. Chain bottom-to-top:
// q0 (60b) | 3 usable (50b) | 1 scale-fix (50b) | 3 S2C (50b) |
// 15 EvalMod (60b, scale ≈ q0 during the sine evaluation) |
// 1 conj-split (50b) | 3 C2S (50b).
func BootTestParameters() ParametersLiteral {
	logQ := []int{60}
	logQ = append(logQ, repeatInts(50, 3)...)  // usable post-boot levels
	logQ = append(logQ, 50)                    // scale fix
	logQ = append(logQ, repeatInts(50, 3)...)  // SlotToCoeff
	logQ = append(logQ, repeatInts(60, 15)...) // EvalMod
	logQ = append(logQ, 50)                    // conjugate split
	logQ = append(logQ, repeatInts(50, 3)...)  // CoeffToSlot
	return ParametersLiteral{
		LogN:     11,
		LogQ:     logQ,
		LogP:     []int{60, 60, 60},
		LogScale: 50,
		HDense:   64,
		HSparse:  16,
	}
}

// PaperParameters returns the Table IV configuration used by the Anaheim
// evaluation as a *structural* description: N = 2^16, L = 54, α = 14, D = 4,
// primes < 2^28 with double-prime scaling (Δ = 2^48 spans two 24-bit primes
// [1,45]), log PQ = 1618 < 1623 for standard 128-bit security (§IV-B). It is
// consumed by the performance simulator; instantiating it functionally is
// possible but slow.
func PaperParameters() ParametersLiteral {
	return ParametersLiteral{
		LogN:     16,
		LogQ:     repeatInts(24, 54),
		LogP:     repeatInts(23, 14),
		LogScale: 48,
		HDense:   1 << 8,
		HSparse:  1 << 5,
	}
}
