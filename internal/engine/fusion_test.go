package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/ckks"
	"github.com/anaheim-sim/anaheim/internal/fusion"
	"github.com/anaheim-sim/anaheim/internal/obs"
)

// runJob submits a job and returns the decrypted requested outputs.
func runJob(t *testing.T, client *testClient, e *Engine, sess *Session, spec JobSpec) map[string][]complex128 {
	t.Helper()
	job, err := e.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	cts, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string][]complex128, len(cts))
	for id, ct := range cts {
		out[id] = client.decrypt(ct)
	}
	return out
}

// TestFusionRewriteCrafted drives a DAG with a known foldable shape — a
// three-term constant linear combination and a four-term add ladder —
// through an engine with fusion on and one with it disabled, and demands
// the outputs agree within CKKS precision. The fused engine's metrics must
// show the rewrite fired; the unfused engine's must not.
func TestFusionRewriteCrafted(t *testing.T) {
	client := newTestClient(t, 1)

	regOn, regOff := obs.NewRegistry(), obs.NewRegistry()
	eOn := New(Config{Workers: 2, Obs: regOn})
	defer eOn.Close()
	eOff := New(Config{Workers: 2, Obs: regOff, DisableFusion: true})
	defer eOff.Close()

	consts := []float64{0.75, -0.5, 0.25}
	ops := []OpSpec{
		{ID: "m0", Op: "mulconst", Args: []string{"in0"}, Val: consts[0]},
		{ID: "m1", Op: "mulconst", Args: []string{"in1"}, Val: consts[1]},
		{ID: "m2", Op: "mulconst", Args: []string{"in2"}, Val: consts[2]},
		{ID: "s0", Op: "add", Args: []string{"m0", "m1"}},
		{ID: "s1", Op: "add", Args: []string{"s0", "m2"}}, // -> lincomb(in0,in1,in2)
		{ID: "a0", Op: "add", Args: []string{"in0", "in1"}},
		{ID: "a1", Op: "add", Args: []string{"a0", "in2"}},
		{ID: "a2", Op: "add", Args: []string{"a1", "in0"}}, // -> addn(in0,in1,in2,in0)
	}
	outputs := []string{"s1", "a2"}

	slots := client.params.Slots()
	vals := make(map[string][]complex128, 3)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 3; i++ {
		v := make([]complex128, slots)
		for s := range v {
			v[s] = complex(2*r.Float64()-1, 2*r.Float64()-1) / 2
		}
		vals[fmt.Sprintf("in%d", i)] = v
	}
	want := map[string][]complex128{"s1": make([]complex128, slots), "a2": make([]complex128, slots)}
	for s := 0; s < slots; s++ {
		for i := 0; i < 3; i++ {
			in := vals[fmt.Sprintf("in%d", i)][s]
			want["s1"][s] += in * complex(consts[i], 0)
			want["a2"][s] += in
		}
		want["a2"][s] += vals["in0"][s]
	}

	run := func(e *Engine) map[string][]complex128 {
		sess, err := e.AttachSession(client.params, client.keys)
		if err != nil {
			t.Fatal(err)
		}
		cts := make(map[string]*ckks.Ciphertext, len(vals))
		for id, v := range vals {
			cts[id] = client.encrypt(t, v)
		}
		specOps := make([]OpSpec, len(ops))
		copy(specOps, ops)
		return runJob(t, client, e, sess, JobSpec{
			SessionID: sess.ID, Inputs: cts, Ops: specOps, Outputs: outputs,
		})
	}

	fusedOut := run(eOn)
	plainOut := run(eOff)
	for _, id := range outputs {
		// The lincomb rescales the accumulated sum where the chain rescales
		// each term, so the rounding differs slightly; both must still track
		// the exact unfused result far inside scheme precision.
		checkSlots(t, fusedOut[id], plainOut[id], slots, 1e-3, id+" fused vs unfused engine")
		checkSlots(t, fusedOut[id], want[id], slots, 1e-2, id+" fused vs plaintext model")
	}

	if got := regOn.Counter("engine_fusion_ops_eliminated_total").Value(); got < 5 {
		// 3 mulconsts + s0 fold into s1; a0 + a1 fold into a2.
		t.Errorf("fused engine eliminated %.0f ops, want >= 5", got)
	}
	if got := regOff.Counter("engine_fusion_ops_eliminated_total").Value(); got != 0 {
		t.Errorf("DisableFusion engine still rewrote %.0f ops", got)
	}
}

// fusionSuffix appends a deterministic foldable tail over the job inputs so
// every random DAG exercises both rewrites regardless of what the generator
// drew. The tail only reads inputs, so it cannot perturb the random body.
func fusionSuffix(dag *diffDAG, slots int) {
	consts := []float64{1.5, -0.25, 0.625}
	suffix := []OpSpec{
		{ID: "fx.m0", Op: "mulconst", Args: []string{"in0"}, Val: consts[0]},
		{ID: "fx.m1", Op: "mulconst", Args: []string{"in1"}, Val: consts[1]},
		{ID: "fx.m2", Op: "mulconst", Args: []string{"in2"}, Val: consts[2]},
		{ID: "fx.s0", Op: "add", Args: []string{"fx.m0", "fx.m1"}},
		{ID: "fx.s1", Op: "add", Args: []string{"fx.s0", "fx.m2"}},
		{ID: "fx.a0", Op: "add", Args: []string{"in0", "in1"}},
		{ID: "fx.a1", Op: "add", Args: []string{"fx.a0", "in2"}},
	}
	dag.ops = append(dag.ops, suffix...)
	lc := make([]complex128, slots)
	ladder := make([]complex128, slots)
	for s := 0; s < slots; s++ {
		for i, in := range []string{"in0", "in1", "in2"} {
			lc[s] += dag.inputs[in][s] * complex(consts[i], 0)
			ladder[s] += dag.inputs[in][s]
		}
	}
	scaled := func(in string, c float64) []complex128 {
		v := make([]complex128, slots)
		for s := range v {
			v[s] = dag.inputs[in][s] * complex(c, 0)
		}
		return v
	}
	dag.want["fx.m0"] = scaled("in0", consts[0])
	dag.want["fx.m1"] = scaled("in1", consts[1])
	dag.want["fx.m2"] = scaled("in2", consts[2])
	dag.want["fx.s0"] = nil // absorbed intermediates are never outputs
	dag.want["fx.s1"] = lc
	dag.want["fx.a0"] = nil
	dag.want["fx.a1"] = ladder
}

// sinks returns the ops no other op consumes — the natural output set of a
// job, and the one that leaves the rewrite free to absorb intermediates.
func sinks(ops []OpSpec) []string {
	used := make(map[string]bool)
	for _, op := range ops {
		for _, a := range op.Args {
			used[a] = true
		}
	}
	var out []string
	for _, op := range ops {
		if !used[op.ID] {
			out = append(out, op.ID)
		}
	}
	return out
}

// TestDifferentialFusionRandomDAGs is the fused variant of the differential
// property test: random op DAGs with sinks-only outputs (so the admission
// rewrite is free to fold interior ops) run through the fusion-enabled
// scheduler, and the results must agree with a sequential walk of the
// ORIGINAL unrewritten ops and with the plaintext model. The rewrite must
// actually fire — every DAG carries a foldable tail — so this is fused
// execution versus unfused execution, not a vacuous pass.
func TestDifferentialFusionRandomDAGs(t *testing.T) {
	client := newTestClient(t, 1, 2, 3)
	reg := obs.NewRegistry()
	e := New(Config{Workers: 4, Obs: reg})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	slots := client.params.Slots()

	totalFused := 0
	for seed := int64(1); seed <= 4; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			dag := genDAG(r, client.params, 10)
			fusionSuffix(&dag, slots)

			// Count what the rewrite will do to this exact job (the engine
			// applies the same passes at admission).
			fops := make([]fusion.Op, len(dag.ops))
			for i, op := range dag.ops {
				fops[i] = fusion.Op{ID: op.ID, Kind: op.Op, Args: op.Args, K: op.K, Val: op.Val, Name: op.Name}
			}
			outs := sinks(dag.ops)
			protected := make(map[string]bool, len(outs))
			for _, o := range outs {
				protected[o] = true
			}
			_, stats := fusion.RewriteDAG(fops, protected)
			for _, s := range stats {
				totalFused += s.Fused
			}

			cts := make(map[string]*ckks.Ciphertext, len(dag.inputs))
			for id, vals := range dag.inputs {
				cts[id] = client.encrypt(t, vals)
			}
			viaEngine := runJob(t, client, e, sess, JobSpec{
				SessionID: sess.ID, Inputs: cts, Ops: dag.ops, Outputs: outs,
			})

			// Reference: sequential walk over the original, unrewritten ops.
			direct := make(map[string]*ckks.Ciphertext, len(dag.ops)+len(cts))
			for id, ct := range cts {
				direct[id] = ct
			}
			arg := func(name string) (*ckks.Ciphertext, error) {
				ct, ok := direct[name]
				if !ok {
					return nil, fmt.Errorf("unresolved arg %q", name)
				}
				return ct, nil
			}
			for i := range dag.ops {
				out, err := sess.evalOp(&dag.ops[i], arg)
				if err != nil {
					t.Fatalf("direct eval of %s (%s): %v", dag.ops[i].ID, dag.ops[i].Op, err)
				}
				direct[dag.ops[i].ID] = out
			}

			for _, id := range outs {
				ge := viaEngine[id]
				gd := client.decrypt(direct[id])
				// Fused lincomb rescales once where the chain rescales per
				// term; the rounding difference is far below scheme noise.
				checkSlots(t, ge, gd, slots, 1e-3, id+" fused engine vs direct")
				checkSlots(t, ge, dag.want[id], slots, 1e-2, id+" fused engine vs plaintext model")
			}
		})
	}
	if totalFused == 0 {
		t.Fatal("fusion rewrite never fired on any seed")
	}
	if got := reg.Counter("engine_fusion_ops_eliminated_total").Value(); got != float64(totalFused) {
		t.Errorf("engine counted %.0f fused ops, rewrite analysis says %d", got, totalFused)
	}
	t.Logf("fusion rewrite eliminated %d ops across 4 random DAGs", totalFused)
}
