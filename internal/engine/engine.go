// Package engine is the concurrent FHE serving runtime that sits between
// the public facade and the ckks evaluator. It owns four things:
//
//   - a session cache: per-tenant CKKS contexts (compiled parameters +
//     uploaded evaluation keys + evaluator) held in a sharded, size-bounded
//     LRU (internal/keycache) with byte accounting, singleflight
//     rematerialization, and pinning for in-flight jobs — evaluation-key
//     sets are by far the largest per-tenant object, so the session store
//     behaves like a cache, not a map;
//
//   - a job scheduler: clients submit encrypted-compute jobs — DAGs of
//     homomorphic ops over named ciphertext handles — and the scheduler
//     tracks dependencies, dispatching each op as soon as its inputs exist;
//
//   - cross-session batch dispatch: ready ops from different tenants that
//     share a kernel class (op family × ring degree × level) are staged for
//     a short window and dispatched to the worker pool as one group — the
//     Go-worker-pool analog of the paper's Alg 1 / PolyGroups amortization
//     (see batch.go);
//
//   - admission control: weighted priority tiers (latency | standard |
//     batch) with per-tier capacity shares and per-tenant in-flight limits,
//     shedding load with typed OverloadErrors that the HTTP layer maps to
//     429 + Retry-After.
//
// The layering mirrors how the Cheddar GPU library (the substrate of the
// Anaheim paper) gets its throughput: streams and kernel queues above the
// math kernels, buffer reuse below them (the ring-level poly pool).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/anaheim-sim/anaheim/internal/keycache"
	"github.com/anaheim-sim/anaheim/internal/obs"
	"github.com/anaheim-sim/anaheim/internal/par"
)

// Config sizes the runtime.
type Config struct {
	// Workers is the number of op-executing goroutines. Defaults to
	// GOMAXPROCS.
	Workers int
	// QueueSize bounds the ready-op queue between scheduler and workers.
	// Defaults to 4×Workers.
	QueueSize int
	// MaxActiveJobs bounds admitted (queued or running) jobs; Submit fails
	// fast with an OverloadError beyond it. Defaults to 64.
	MaxActiveJobs int
	// MaxJobsPerTenant bounds one tenant's admitted jobs so a single
	// session cannot consume the whole admission budget. Defaults to 16.
	MaxJobsPerTenant int
	// TierWeights sets each tier's share of admission capacity and of the
	// ready-queue dispatch bandwidth. Defaults to latency 8, standard 4,
	// batch 2. Unknown tiers in the map are ignored.
	TierWeights map[string]int
	// BatchWindow enables cross-session batch dispatch: ready ops of the
	// same kernel class are staged up to this long (or until MaxBatch) and
	// dispatched as one group. 0 disables batching. Latency-tier ops are
	// never staged.
	BatchWindow time.Duration
	// MaxBatch caps the ops in one batched dispatch group. Defaults to 8.
	MaxBatch int
	// SessionCacheBytes bounds the resident evaluation-key bytes across all
	// sessions; least-recently-used sessions are evicted beyond it (pinned
	// sessions of in-flight jobs are never evicted). Defaults to 1 GiB.
	SessionCacheBytes int64
	// SessionCacheShards is the session cache's shard count. Defaults to 8.
	SessionCacheShards int
	// SessionLoader rematerializes an evicted session from durable storage
	// (or regenerates it). Concurrent requests for the same evicted session
	// coalesce onto one load. Nil means evicted sessions are gone and
	// Submit returns an unknown-session error.
	SessionLoader func(id string) (*Session, error)
	// DefaultDeadline applies to jobs that do not set one. Defaults to 2
	// minutes.
	DefaultDeadline time.Duration
	// MaxBodyBytes caps HTTP request bodies accepted by NewHTTPHandler;
	// oversized POSTs get 413 instead of OOMing the server. Defaults to
	// 64 MiB (evaluation-key uploads are the largest legitimate payloads).
	MaxBodyBytes int64
	// DisableFusion turns off the admission-time op-DAG rewrite (add-ladder
	// and linear-combination folding); jobs then execute exactly the ops
	// they were submitted with.
	DisableFusion bool
	// Obs receives the engine's metrics (counters, gauges, latency
	// histograms). Defaults to obs.Default.
	Obs *obs.Registry
	// Tracer records per-job/per-op spans. Defaults to obs.DefaultTracer.
	Tracer *obs.Tracer
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueSize <= 0 {
		c.QueueSize = 4 * c.Workers
	}
	if c.MaxActiveJobs <= 0 {
		c.MaxActiveJobs = 64
	}
	if c.MaxJobsPerTenant <= 0 {
		c.MaxJobsPerTenant = 16
	}
	if c.TierWeights == nil {
		c.TierWeights = map[string]int{TierLatency: 8, TierStandard: 4, TierBatch: 2}
	}
	for _, t := range tierOrder {
		if c.TierWeights[t] <= 0 {
			c.TierWeights[t] = 1
		}
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.SessionCacheBytes <= 0 {
		c.SessionCacheBytes = 1 << 30
	}
	if c.SessionCacheShards <= 0 {
		c.SessionCacheShards = 8
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	if c.Obs == nil {
		c.Obs = obs.Default
	}
	if c.Tracer == nil {
		c.Tracer = obs.DefaultTracer
	}
	return c
}

// ErrBusy is the base backpressure error: Submit rejections wrap it (see
// OverloadError for the typed form carrying reason and retry hint).
// Clients should retry with backoff; the HTTP layer maps it to 429.
var ErrBusy = errors.New("engine: job queue full")

// ErrClosed is returned after Close.
var ErrClosed = errors.New("engine: closed")

// Engine is the serving runtime. Create with New, stop with Close.
type Engine struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	sessions *keycache.Cache[*Session]

	mu           sync.Mutex
	closed       bool
	jobs         map[string]*Job
	tierActive   map[string]int // admitted jobs per tier
	tenantActive map[string]int // admitted jobs per tenant (session ID)

	tierCaps  map[string]int // per-tier admission capacity (weight shares)
	tierDepth map[string]*atomic.Int64

	active atomic.Int64 // admitted (queued or running) jobs
	seq    atomic.Uint64

	metrics *engineMetrics
	tracer  *obs.Tracer

	events chan event
	ready  chan *dispatchGroup
	wg     sync.WaitGroup
}

type eventKind int

const (
	evSubmit eventKind = iota
	evOpDone
	evJobAbort
)

type event struct {
	kind   eventKind
	job    *Job
	task   *opTask
	result *result
	err    error
}

type opTask struct {
	job     *Job
	op      *OpSpec
	readyAt time.Time // when the op's dependencies were met (queue-wait origin)
}

// tierCapacities partitions the admission budget by tier weight. Every tier
// gets at least one slot; a saturating batch tier therefore can never
// occupy the capacity reserved for the latency tier.
func tierCapacities(maxActive int, weights map[string]int) map[string]int {
	sum := 0
	for _, t := range tierOrder {
		sum += weights[t]
	}
	caps := make(map[string]int, len(tierOrder))
	for _, t := range tierOrder {
		c := maxActive * weights[t] / sum
		if c < 1 {
			c = 1
		}
		caps[t] = c
	}
	return caps
}

// New starts the worker pool and scheduler.
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:          cfg,
		ctx:          ctx,
		cancel:       cancel,
		jobs:         make(map[string]*Job),
		tierActive:   make(map[string]int),
		tenantActive: make(map[string]int),
		tierCaps:     tierCapacities(cfg.MaxActiveJobs, cfg.TierWeights),
		tierDepth:    make(map[string]*atomic.Int64),
		metrics:      newEngineMetrics(cfg.Obs),
		tracer:       cfg.Tracer,
		events:       make(chan event),
		ready:        make(chan *dispatchGroup, cfg.QueueSize),
	}
	e.sessions = keycache.New[*Session](keycache.Config{
		Shards:      cfg.SessionCacheShards,
		BudgetBytes: cfg.SessionCacheBytes,
		Name:        "sessions",
		Obs:         cfg.Obs,
	}, func(_ string, s *Session) { e.metrics.sessionsEvicted.Inc() })
	// Sampled-at-scrape gauges; when several engines share a registry the
	// most recently started one wins, which is what a serving process wants.
	cfg.Obs.GaugeFunc("engine_active_jobs", func() float64 { return float64(e.active.Load()) })
	cfg.Obs.GaugeFunc("engine_ready_queue_depth", func() float64 { return float64(len(e.ready)) })
	cfg.Obs.GaugeFunc("engine_sessions_live", func() float64 { return float64(e.sessions.Len()) })
	cfg.Obs.GaugeFunc("engine_evalkey_resident_bytes", func() float64 { return float64(e.sessions.Bytes()) })
	for _, t := range tierOrder {
		t := t
		d := &atomic.Int64{}
		e.tierDepth[t] = d
		cfg.Obs.GaugeFunc(fmt.Sprintf(`engine_tier_queue_depth{tier="%s"}`, t),
			func() float64 { return float64(d.Load()) })
		cfg.Obs.GaugeFunc(fmt.Sprintf(`engine_tier_active_jobs{tier="%s"}`, t),
			func() float64 {
				e.mu.Lock()
				defer e.mu.Unlock()
				return float64(e.tierActive[t])
			})
	}
	e.wg.Add(1)
	go e.dispatch()
	for i := 0; i < cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker()
	}
	return e
}

// Config returns the effective (defaulted) configuration.
func (e *Engine) Config() Config { return e.cfg }

// Close stops the runtime and releases per-session key material
// deterministically: in-flight jobs fail with context.Canceled, and every
// cached session is dropped and cleared so evaluation keys become
// collectable without waiting for cache churn.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.cancel()
	e.wg.Wait()
	e.sessions.Clear(func(_ string, s *Session) { s.release() })
}

func (e *Engine) newID(prefix string) string {
	return fmt.Sprintf("%s-%d", prefix, e.seq.Add(1))
}

// ---------------------------------------------------------------------------
// Workers

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case <-e.ctx.Done():
			return
		case g := <-e.ready:
			if len(g.tasks) == 1 {
				e.runSingle(g.tasks[0])
			} else {
				e.runBatch(g)
			}
		}
	}
}

// runSingle executes an unbatched op and reports its completion.
func (e *Engine) runSingle(t *opTask) {
	e.metrics.workersBusy.Add(1)
	res, err := e.runTask(t, t.job.spanID())
	e.metrics.workersBusy.Add(-1)
	e.postDone(t, res, err)
}

// runBatch executes a fused dispatch group: the members fan out over the
// shared par pool together (one wide dispatch instead of len(tasks) narrow
// ones), sharing the batch span and a single scheduler round-trip. Per-op
// metrics still tick individually.
func (e *Engine) runBatch(g *dispatchGroup) {
	n := len(g.tasks)
	e.metrics.batchesDispatched.Inc()
	e.metrics.batchedOps.Add(float64(n))
	e.metrics.batchOccupancy.Observe(float64(n))
	sp := e.tracer.Start("batch:"+g.class, 0)
	sp.Annotate(fmt.Sprintf("class=%s ops=%d", g.class, n))
	e.metrics.workersBusy.Add(1)
	results := make([]*result, n)
	errs := make([]error, n)
	par.ForEach(n, func(i int) {
		results[i], errs[i] = e.runTask(g.tasks[i], sp.ID())
	})
	e.metrics.workersBusy.Add(-1)
	sp.End()
	for i, t := range g.tasks {
		if !e.postDone(t, results[i], errs[i]) {
			return
		}
	}
}

// runTask runs one op with its per-op instrumentation. Ops of jobs that
// already expired or aborted are skipped without touching the evaluator
// (counted under engine_ops_expired_total).
func (e *Engine) runTask(t *opTask, parentSpan uint64) (*result, error) {
	if err := t.job.ctx.Err(); err != nil {
		e.metrics.opsExpired.Inc()
		return nil, err
	}
	m := e.metrics.op(t.op.Op)
	m.queueWait.Observe(time.Since(t.readyAt).Seconds())
	sp := e.tracer.Start("op:"+t.op.Op, parentSpan)
	sp.Annotate("id=" + t.op.ID + " job=" + t.job.ID)
	start := time.Now()
	res, err := e.executeTask(t)
	sp.End()
	m.exec.Observe(time.Since(start).Seconds())
	m.total.Inc()
	if err != nil {
		m.failures.Inc()
	}
	return res, err
}

// postDone reports one op completion to the dispatcher; false means the
// engine is shutting down.
func (e *Engine) postDone(t *opTask, res *result, err error) bool {
	select {
	case e.events <- event{kind: evOpDone, job: t.job, task: t, result: res, err: err}:
		return true
	case <-e.ctx.Done():
		return false
	}
}

// executeTask runs one op, converting evaluator panics (scale mismatches,
// level exhaustion) into job failures rather than process crashes.
func (e *Engine) executeTask(t *opTask) (res *result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("op %q (%s): panic: %v", t.op.ID, t.op.Op, r)
		}
	}()
	if err := t.job.ctx.Err(); err != nil {
		return nil, err
	}
	return t.job.sess.apply(t.job, t.op)
}

// ---------------------------------------------------------------------------
// Scheduler

// jobState is dispatcher-private dependency bookkeeping for one job.
type jobState struct {
	waiting    map[string]int      // opID -> unmet dependency count
	dependents map[string][]string // opID -> ops unblocked by it
	byID       map[string]*OpSpec
	remaining  int
}

func (e *Engine) dispatch() {
	defer e.wg.Done()
	states := make(map[*Job]*jobState)
	queues := newTierQueues(e.cfg.TierWeights, e.tierDepth)
	staged := newStaging(e.cfg.BatchWindow, e.cfg.MaxBatch)
	flushTimer := time.NewTimer(time.Hour)
	defer flushTimer.Stop()

	enqueueReady := func(j *Job, st *jobState, opID string) {
		t := &opTask{job: j, op: st.byID[opID], readyAt: time.Now()}
		e.tierDepth[j.tier].Add(1)
		if e.cfg.BatchWindow > 0 {
			if class, ok := e.batchClass(j, t.op); ok {
				if g := staged.add(class, j.tier, t, t.readyAt); g != nil {
					queues.push(g) // batch filled before its window expired
				}
				return
			}
		}
		queues.push(&dispatchGroup{tasks: []*opTask{t}, tier: j.tier})
	}

	handle := func(ev event) {
		j := ev.job
		switch ev.kind {
		case evSubmit:
			st := newJobState(&j.spec)
			states[j] = st
			j.setStatus(StatusRunning, nil)
			for _, op := range j.spec.Ops {
				if st.waiting[op.ID] == 0 {
					enqueueReady(j, st, op.ID)
				}
			}
		case evOpDone:
			st := states[j]
			if st == nil {
				return // job already finished (failed or aborted)
			}
			if ev.err != nil {
				e.finishJob(j, states, fmt.Errorf("op %q: %w", ev.task.op.ID, ev.err))
				return
			}
			j.storeResult(ev.task.op.ID, ev.result)
			st.remaining--
			for _, dep := range st.dependents[ev.task.op.ID] {
				st.waiting[dep]--
				if st.waiting[dep] == 0 {
					enqueueReady(j, st, dep)
				}
			}
			if st.remaining == 0 {
				e.finishJob(j, states, nil)
			}
		case evJobAbort:
			if states[j] != nil {
				e.finishJob(j, states, j.ctx.Err())
			}
		}
	}

	for {
		// Arm the flush timer to the earliest staged-batch deadline.
		if !flushTimer.Stop() {
			select {
			case <-flushTimer.C:
			default:
			}
		}
		var timerCh <-chan time.Time
		if due, ok := staged.earliest(); ok {
			flushTimer.Reset(time.Until(due))
			timerCh = flushTimer.C
		}

		var readyCh chan *dispatchGroup
		tier, head, ok := queues.head()
		if ok {
			readyCh = e.ready
		}

		select {
		case <-e.ctx.Done():
			// Fail whatever is still tracked so waiters wake up.
			for j := range states {
				j.setStatus(StatusFailed, context.Canceled)
				j.cancel()
				e.releaseJob(j)
				e.metrics.jobsCancelled.Inc()
			}
			return
		case ev := <-e.events:
			handle(ev)
		case <-timerCh:
			for _, g := range staged.due(time.Now()) {
				queues.push(g)
			}
		case readyCh <- head:
			queues.pop(tier, head)
		}
	}
}

// finishJob transitions a job to its terminal state and releases its
// admission slot, tier/tenant accounting, and session pin.
func (e *Engine) finishJob(j *Job, states map[*Job]*jobState, err error) {
	delete(states, j)
	if err != nil {
		j.setStatus(StatusFailed, err)
	} else {
		j.setStatus(StatusDone, nil)
	}
	j.cancel()
	e.releaseJob(j)
	e.metrics.finished(err,
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled))
}

// releaseJob returns a terminal job's admission slot: global count, tier
// and tenant accounting, and the session pin taken at Submit.
func (e *Engine) releaseJob(j *Job) {
	e.mu.Lock()
	e.tierActive[j.tier]--
	if e.tenantActive[j.tenant] <= 1 {
		delete(e.tenantActive, j.tenant)
	} else {
		e.tenantActive[j.tenant]--
	}
	e.mu.Unlock()
	e.sessions.Unpin(j.spec.SessionID)
	e.active.Add(-1)
}

// newJobState builds the dependency graph (validated at Submit).
func newJobState(spec *JobSpec) *jobState {
	st := &jobState{
		waiting:    make(map[string]int),
		dependents: make(map[string][]string),
		byID:       make(map[string]*OpSpec),
		remaining:  len(spec.Ops),
	}
	for i := range spec.Ops {
		op := &spec.Ops[i]
		st.byID[op.ID] = op
		for _, a := range op.Args {
			if _, isOp := opArg(spec, a); isOp {
				st.waiting[op.ID]++
				st.dependents[a] = append(st.dependents[a], op.ID)
			}
		}
	}
	return st
}

// opArg reports whether an argument name refers to an op (vs an input).
func opArg(spec *JobSpec, name string) (*OpSpec, bool) {
	for i := range spec.Ops {
		if spec.Ops[i].ID == name {
			return &spec.Ops[i], true
		}
	}
	return nil, false
}

// ---------------------------------------------------------------------------
// Submission

// Submit validates and admits a job. Admission control is three-layered —
// global MaxActiveJobs, the tier's capacity share, and the tenant's
// in-flight cap — and rejections are typed OverloadErrors (wrapping ErrBusy)
// carrying the reason and a Retry-After hint, giving HTTP clients an
// explicit backpressure signal instead of unbounded queueing.
func (e *Engine) Submit(spec JobSpec) (*Job, error) {
	tier, err := normalizeTier(spec.Tier)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.mu.Unlock()
	// Resolve and pin the session before admission so a concurrent eviction
	// cannot drop its keys between validation and execution.
	sess, err := e.acquireSession(spec.SessionID)
	if err != nil {
		return nil, err
	}
	unpin := func() { e.sessions.Unpin(spec.SessionID) }
	if err := validate(&spec); err != nil {
		unpin()
		return nil, err
	}
	if !e.cfg.DisableFusion {
		e.applyFusion(&spec)
	}

	// Admission control (backpressure + tier shares + tenant caps).
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		unpin()
		return nil, ErrClosed
	}
	reason := ""
	switch {
	case e.active.Load() >= int64(e.cfg.MaxActiveJobs):
		reason = "engine_full"
	case e.tierActive[tier] >= e.tierCaps[tier]:
		reason = "tier_full"
	case e.tenantActive[spec.SessionID] >= e.cfg.MaxJobsPerTenant:
		reason = "tenant_limit"
	}
	if reason != "" {
		depth := e.tierActive[tier]
		e.mu.Unlock()
		unpin()
		e.metrics.jobsRejected.Inc()
		e.metrics.tier(tier).rejected.Inc()
		return nil, &OverloadError{Tier: tier, Reason: reason, RetryAfter: e.retryAfter(depth)}
	}
	e.tierActive[tier]++
	e.tenantActive[spec.SessionID]++
	e.active.Add(1)
	e.mu.Unlock()

	deadline := spec.Deadline
	if deadline <= 0 {
		deadline = e.cfg.DefaultDeadline
	}
	ctx, cancel := context.WithTimeout(e.ctx, deadline)
	j := &Job{
		ID:      e.newID("job"),
		sess:    sess,
		spec:    spec,
		tier:    tier,
		tenant:  spec.SessionID,
		ctx:     ctx,
		cancel:  cancel,
		status:  StatusQueued,
		results: make(map[string]*result, len(spec.Ops)),
		done:    make(chan struct{}),
	}
	j.span = e.tracer.Start("job", 0)
	j.span.Annotate("id=" + j.ID + " sess=" + spec.SessionID + " tier=" + tier)
	e.mu.Lock()
	e.jobs[j.ID] = j
	e.mu.Unlock()

	// Deadline/cancellation watcher: wakes the dispatcher so jobs whose
	// remaining ops never reach a worker (e.g. expired while queued) still
	// terminate.
	go func() {
		<-ctx.Done()
		select {
		case e.events <- event{kind: evJobAbort, job: j}:
		case <-e.ctx.Done():
		}
	}()

	select {
	case e.events <- event{kind: evSubmit, job: j}:
	case <-e.ctx.Done():
		e.releaseJob(j)
		cancel()
		return nil, ErrClosed
	}
	e.metrics.jobsAdmitted.Inc()
	e.metrics.tier(tier).admitted.Inc()
	return j, nil
}

// retryAfter estimates when tier capacity frees up from its queue depth:
// one second per queued job ahead per worker, capped at 30s.
func (e *Engine) retryAfter(tierDepth int) time.Duration {
	d := time.Duration(1+tierDepth/e.cfg.Workers) * time.Second
	if d > 30*time.Second {
		d = 30 * time.Second
	}
	return d
}

// Job returns a submitted job by ID.
func (e *Engine) Job(id string) (*Job, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	j, ok := e.jobs[id]
	return j, ok
}

// validate checks the job spec shape before admission: known op kinds,
// resolvable references, unique IDs, and an acyclic dependency graph.
func validate(spec *JobSpec) error {
	if len(spec.Ops) == 0 {
		return fmt.Errorf("engine: job has no ops")
	}
	names := make(map[string]bool, len(spec.Inputs)+len(spec.Ops))
	for in := range spec.Inputs {
		if in == "" {
			return fmt.Errorf("engine: empty input name")
		}
		names[in] = true
	}
	for i := range spec.Ops {
		op := &spec.Ops[i]
		if op.ID == "" {
			return fmt.Errorf("engine: op %d has no id", i)
		}
		if names[op.ID] {
			return fmt.Errorf("engine: duplicate name %q", op.ID)
		}
		names[op.ID] = true
		if err := checkOp(op); err != nil {
			return err
		}
	}
	for i := range spec.Ops {
		for _, a := range spec.Ops[i].Args {
			if !names[a] {
				return fmt.Errorf("engine: op %q references unknown name %q", spec.Ops[i].ID, a)
			}
		}
	}
	if len(spec.Outputs) == 0 {
		return fmt.Errorf("engine: job has no outputs")
	}
	for _, o := range spec.Outputs {
		if _, isOp := opArg(spec, o); !isOp {
			return fmt.Errorf("engine: output %q is not an op id", o)
		}
	}
	// Cycle detection: Kahn's algorithm over the op-to-op edges.
	st := newJobState(spec)
	queue := make([]string, 0, len(spec.Ops))
	for _, op := range spec.Ops {
		if st.waiting[op.ID] == 0 {
			queue = append(queue, op.ID)
		}
	}
	seen := 0
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		for _, dep := range st.dependents[id] {
			st.waiting[dep]--
			if st.waiting[dep] == 0 {
				queue = append(queue, dep)
			}
		}
	}
	if seen != len(spec.Ops) {
		return fmt.Errorf("engine: op dependency cycle")
	}
	return nil
}
