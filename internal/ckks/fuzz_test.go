package ckks

import (
	"bytes"
	"encoding/binary"
	"math"
	"sync"
	"testing"
)

// fuzzParameters is a deliberately tiny (insecure) parameter set: the wire
// format is shape-generic, and small seeds keep per-exec cost low so the
// fuzz engine gets real throughput on slow CI runners.
func fuzzParameters() ParametersLiteral {
	return ParametersLiteral{
		LogN:     5,
		LogQ:     []int{55, 45},
		LogP:     []int{58},
		LogScale: 45,
		HDense:   8,
		HSparse:  4,
	}
}

// fuzzSeedCiphertext builds one honestly-marshaled ciphertext to seed the
// corpus, memoized because key generation is the expensive part and the
// fuzz engine re-enters the seed path per worker.
var fuzzSeedCiphertext = sync.OnceValue(func() []byte {
	params, err := NewParameters(fuzzParameters())
	if err != nil {
		panic(err)
	}
	enc := NewEncoder(params)
	kgen := NewKeyGenerator(params, 1)
	sk := kgen.GenSecretKey()
	pk := kgen.GenPublicKey(sk)
	v := make([]complex128, params.Slots())
	for i := range v {
		v[i] = complex(float64(i%5)/4, -float64(i%3)/2)
	}
	pt, err := enc.Encode(v, params.MaxLevel(), params.DefaultScale())
	if err != nil {
		panic(err)
	}
	ct := NewEncryptor(params, 2).EncryptNew(&Plaintext{Value: pt, Scale: params.DefaultScale()}, pk)
	raw, err := ct.MarshalBinary()
	if err != nil {
		panic(err)
	}
	return raw
})

// FuzzCiphertextUnmarshal feeds arbitrary bytes to the ciphertext wire
// decoder. The contract under fuzz: malformed input errors out — it never
// panics and never allocates unbounded memory (the ring layer caps poly
// shape before allocating). Anything that decodes cleanly must re-marshal
// to the identical bytes.
func FuzzCiphertextUnmarshal(f *testing.F) {
	valid := fuzzSeedCiphertext()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated mid-poly
	f.Add(valid[:11])           // truncated inside the first chunk header
	f.Add([]byte{})
	f.Add([]byte("not a ciphertext"))

	// Structurally valid framing with a hostile scale.
	evil := append([]byte{}, valid...)
	binary.LittleEndian.PutUint64(evil[:8], math.Float64bits(math.NaN()))
	f.Add(evil)

	// Huge claimed poly shape: must be rejected before allocation.
	huge := append([]byte{}, valid[:8]...)
	huge = append(huge, 0xff, 0xff, 0xff, 0x7f) // chunk length
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		ct := &Ciphertext{}
		if err := ct.UnmarshalBinary(data); err != nil {
			return // rejected: that is the expected outcome for junk
		}
		// Accepted inputs must be internally consistent and round-trip.
		if ct.C0 == nil || ct.C1 == nil {
			t.Fatal("accepted ciphertext with nil component")
		}
		if !(ct.Scale > 0) || math.IsInf(ct.Scale, 0) {
			t.Fatalf("accepted non-finite/non-positive scale %v", ct.Scale)
		}
		if len(ct.C0.Coeffs) != len(ct.C1.Coeffs) {
			t.Fatalf("accepted mismatched limb counts %d vs %d", len(ct.C0.Coeffs), len(ct.C1.Coeffs))
		}
		out, err := ct.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted ciphertext fails to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round-trip mismatch: %d bytes in, %d bytes out", len(data), len(out))
		}
	})
}

// FuzzEvaluationKeySetUnmarshal covers the other untrusted decode surface
// of the HTTP session path: client-uploaded evaluation keys.
func FuzzEvaluationKeySetUnmarshal(f *testing.F) {
	params, err := NewParameters(fuzzParameters())
	if err != nil {
		f.Fatal(err)
	}
	kgen := NewKeyGenerator(params, 1)
	sk := kgen.GenSecretKey()
	keys := NewEvaluationKeySet()
	keys.Rlk = kgen.GenRelinearizationKey(sk)
	valid, err := keys.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/3])
	f.Add([]byte{})
	f.Add([]byte{1}) // claims a relin key, then nothing

	// Claims 2^32-1 Galois keys: must fail on truncation, not allocate.
	greedy := []byte{0, 0xff, 0xff, 0xff, 0xff}
	f.Add(greedy)

	f.Fuzz(func(t *testing.T, data []byte) {
		s := &EvaluationKeySet{}
		if err := s.UnmarshalBinary(data); err != nil {
			return
		}
		out, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("accepted key set fails to re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("round-trip mismatch: %d bytes in, %d bytes out", len(data), len(out))
		}
	})
}
