package ring

import (
	"sync"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

// Pool traffic counters: the hit rate is the direct measure of how much GC
// pressure the buffer pool is absorbing on the evaluator hot paths.
var (
	poolHits   = obs.Default.Counter(`ring_pool_gets_total{result="hit"}`)
	poolMisses = obs.Default.Counter(`ring_pool_gets_total{result="miss"}`)
	poolPuts   = obs.Default.Counter("ring_pool_puts_total")
)

// polyPool recycles Poly scratch buffers, one sync.Pool per limb count.
// Evaluator hot paths (Rescale, ModDown, Decompose) allocate and discard a
// polynomial of N×limbs uint64 per call; at serving throughput that is the
// dominant GC pressure, so they borrow from here instead.
//
// Ownership rules: a borrowed Poly is exclusively the caller's until
// returned. Only return polynomials whose backing storage has not escaped
// (no Truncated view or Coeffs row may outlive the Put). Double-Put is a
// caller bug and corrupts the pool.
type polyPool struct {
	mu    sync.Mutex
	pools []*sync.Pool // index = limbs-1
}

func (pp *polyPool) pool(limbs int) *sync.Pool {
	pp.mu.Lock()
	defer pp.mu.Unlock()
	for len(pp.pools) < limbs {
		pp.pools = append(pp.pools, &sync.Pool{})
	}
	return pp.pools[limbs-1]
}

// GetPoly borrows a zeroed coefficient-domain polynomial with level+1 limbs
// from the ring's buffer pool. It is interchangeable with NewPoly; callers
// that are done with the scratch value should hand it back via PutPoly.
func (r *Ring) GetPoly(level int) *Poly {
	limbs := level + 1
	if v := r.pool.pool(limbs).Get(); v != nil {
		poolHits.Inc()
		p := v.(*Poly)
		p.Zero()
		p.IsNTT = false
		return p
	}
	poolMisses.Inc()
	return r.NewPoly(level)
}

// PutPoly returns a borrowed polynomial to the pool. Polynomials of foreign
// shape (wrong N, truncated views) are dropped rather than pooled.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil || len(p.Coeffs) == 0 || len(p.Coeffs[0]) != r.N {
		return
	}
	poolPuts.Inc()
	r.pool.pool(len(p.Coeffs)).Put(p)
}
