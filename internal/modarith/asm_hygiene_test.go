package modarith

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// Assembly hygiene: structural checks that keep the asm tiers honest without
// executing them, so they run on EVERY architecture (including the noasm CI
// leg, where they guard the files for the architectures not being built):
//
//   - every .s file is gated behind `!noasm` (the pure-Go build must contain
//     zero assembly);
//   - every TEXT symbol has exactly one Go stub declaration in the package;
//   - every stub that takes a slice is marked //go:noescape (the kernels
//     must not force their rows onto the heap);
//   - every vec stub name encodes its tier (Go oracle fallback discipline:
//     a kernel symbol without a tier suffix has no oracle to diff against).
//
// `go vet -asmdecl` (Makefile `vet` target and the CI lint job) separately
// checks that the asm frame/argument layout matches these declarations.

var (
	textSymRe = regexp.MustCompile(`(?m)^TEXT ·([A-Za-z0-9_]+)\(SB\)`)
	stubRe    = regexp.MustCompile(`(?m)^(//go:noescape\n)?func ([A-Za-z0-9_]+)\(([^)]*)\)`)
)

func TestAsmHygiene(t *testing.T) {
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}

	// Collect stub declarations (bodyless funcs) from non-test Go files.
	type stub struct {
		file      string
		noescape  bool
		params    string
		hasSlices bool
	}
	stubs := map[string]stub{}
	var asmFiles []string
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, ".s"):
			asmFiles = append(asmFiles, name)
		case strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go"):
			src, err := os.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			for _, match := range stubRe.FindAllStringSubmatch(string(src), -1) {
				// A stub has no body: the declaration line must not be
				// followed by '{' — cheap check: the full match ends at ')'
				// and the next char in src is '\n'.
				idx := strings.Index(string(src), match[0])
				rest := string(src)[idx+len(match[0]):]
				if strings.HasPrefix(strings.TrimLeft(rest, " "), "{") {
					continue // regular function
				}
				// Skip methods and non-asm declarations heuristically: asm
				// stubs in this package are all lower-case vec*/cpuid/xgetbv.
				stubs[match[2]] = stub{
					file:      name,
					noescape:  match[1] != "",
					params:    match[3],
					hasSlices: strings.Contains(match[3], "[]"),
				}
			}
		}
	}
	if len(asmFiles) == 0 {
		t.Skip("no assembly files on this architecture/tags")
	}

	for _, asmFile := range asmFiles {
		src, err := os.ReadFile(asmFile)
		if err != nil {
			t.Fatal(err)
		}
		text := string(src)
		if !strings.Contains(text, "!noasm") {
			t.Errorf("%s: missing !noasm build constraint — the noasm leg must compile zero assembly", asmFile)
		}
		syms := textSymRe.FindAllStringSubmatch(text, -1)
		if len(syms) == 0 {
			t.Errorf("%s: no TEXT symbols found", asmFile)
		}
		for _, sym := range syms {
			name := sym[1]
			st, ok := stubs[name]
			if !ok {
				t.Errorf("%s: TEXT ·%s has no Go stub declaration in the package", asmFile, name)
				continue
			}
			if st.hasSlices && !st.noescape {
				t.Errorf("%s: stub for %s takes slices but is not //go:noescape (declared in %s)", asmFile, name, st.file)
			}
			if strings.HasPrefix(name, "vec") {
				base := filepath.Base(asmFile)
				wantSuffix := ""
				switch {
				case strings.Contains(base, "avx512"):
					wantSuffix = "AVX512"
				case strings.Contains(base, "avx2"):
					wantSuffix = "AVX2"
				case strings.Contains(base, "arm64"):
					wantSuffix = "NEON"
				}
				if wantSuffix != "" && !strings.HasSuffix(name, wantSuffix) {
					t.Errorf("%s: kernel symbol %s should carry the %s tier suffix", asmFile, name, wantSuffix)
				}
			}
		}
	}
}
