package anaheim

import (
	"context"
	"fmt"
	"math/cmplx"
	"math/rand"
	"strings"
	"testing"
)

func newCtx(t *testing.T) *Context {
	t.Helper()
	ctx, err := NewContext(TestParameters(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func randVec(r *rand.Rand, n int) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex(2*r.Float64()-1, 2*r.Float64()-1)
	}
	return v
}

func facadeMaxErr(got, want []complex128) float64 {
	m := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}

func TestContextRoundTrip(t *testing.T) {
	ctx := newCtx(t)
	r := rand.New(rand.NewSource(1))
	u := randVec(r, ctx.Params.Slots())
	ct, err := ctx.Encrypt(u)
	if err != nil {
		t.Fatal(err)
	}
	if e := facadeMaxErr(ctx.Decrypt(ct), u); e > 1e-6 {
		t.Fatalf("round trip error %g", e)
	}
}

func TestContextArithmetic(t *testing.T) {
	ctx := newCtx(t)
	r := rand.New(rand.NewSource(2))
	n := ctx.Params.Slots()
	u, v := randVec(r, n), randVec(r, n)
	ctU, _ := ctx.Encrypt(u)
	ctV, _ := ctx.Encrypt(v)

	want := make([]complex128, n)
	for i := range want {
		want[i] = (u[i]+v[i])*v[i] - u[i]
	}
	out := ctx.Sub(ctx.Mul(ctx.Add(ctU, ctV), ctV), ctx.DropToLevel(ctU, ctU.Level()-1))
	if e := facadeMaxErr(ctx.Decrypt(out), want); e > 1e-4 {
		t.Fatalf("arithmetic error %g", e)
	}
}

func TestContextConstOps(t *testing.T) {
	ctx := newCtx(t)
	r := rand.New(rand.NewSource(3))
	u := randVec(r, ctx.Params.Slots())
	ct, _ := ctx.Encrypt(u)
	out := ctx.AddConst(ctx.MulConst(ct, 2.0), -0.5)
	want := make([]complex128, len(u))
	for i := range want {
		want[i] = 2*u[i] - 0.5
	}
	if e := facadeMaxErr(ctx.Decrypt(out), want); e > 1e-5 {
		t.Fatalf("const ops error %g", e)
	}
}

func TestContextPlaintextOps(t *testing.T) {
	ctx := newCtx(t)
	r := rand.New(rand.NewSource(4))
	n := ctx.Params.Slots()
	u, p := randVec(r, n), randVec(r, n)
	ct, _ := ctx.Encrypt(u)
	pt, err := ctx.Encode(p, ct.Level())
	if err != nil {
		t.Fatal(err)
	}
	out := ctx.MulPlain(ct, pt)
	want := make([]complex128, n)
	for i := range want {
		want[i] = u[i] * p[i]
	}
	if e := facadeMaxErr(ctx.Decrypt(out), want); e > 1e-5 {
		t.Fatalf("PMULT error %g", e)
	}
}

func TestContextRotationAndConjugation(t *testing.T) {
	ctx := newCtx(t)
	ctx.GenRotationKeys(5)
	ctx.GenConjugationKey()
	r := rand.New(rand.NewSource(5))
	n := ctx.Params.Slots()
	u := randVec(r, n)
	ct, _ := ctx.Encrypt(u)

	rot, err := ctx.Rotate(ct, 5)
	if err != nil {
		t.Fatal(err)
	}
	conj, err := ctx.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if cmplx.Abs(ctx.Decrypt(rot)[i]-u[(i+5)%n]) > 1e-5 {
			t.Fatal("rotation wrong")
		}
		if cmplx.Abs(ctx.Decrypt(conj)[i]-cmplx.Conj(u[i])) > 1e-5 {
			t.Fatal("conjugation wrong")
		}
	}
}

func TestContextMissingRotationKey(t *testing.T) {
	ctx := newCtx(t)
	ct, _ := ctx.Encrypt([]complex128{1})
	if _, err := ctx.Rotate(ct, 9); err == nil {
		t.Fatal("rotation without a key must error")
	}
}

func TestContextLinearTransform(t *testing.T) {
	ctx := newCtx(t)
	n := ctx.Params.Slots()
	r := rand.New(rand.NewSource(6))
	diags := map[int][]complex128{0: randVec(r, n), 2: randVec(r, n)}
	lt := NewLinearTransform(n, diags)
	ctx.GenRotationKeys(lt.Rotations()...)
	u := randVec(r, n)
	ct, _ := ctx.Encrypt(u)
	out, err := ctx.EvaluateLinearTransform(ct, lt)
	if err != nil {
		t.Fatal(err)
	}
	if e := facadeMaxErr(ctx.Decrypt(out), lt.Apply(u)); e > 1e-4 {
		t.Fatalf("LT error %g", e)
	}
}

func TestContextBootstrapUnconfigured(t *testing.T) {
	ctx := newCtx(t)
	ct, _ := ctx.Encrypt([]complex128{1})
	if _, err := ctx.Bootstrap(ct); err == nil {
		t.Fatal("Bootstrap before SetupBootstrapping must error")
	}
}

func TestSimulateFacade(t *testing.T) {
	r, err := Simulate("Boot", A100NearBank)
	if err != nil {
		t.Fatal(err)
	}
	if r.OoM || r.TimeMs <= 0 || r.PIMDramGB <= 0 {
		t.Fatalf("bad result: %+v", r)
	}
	base, err := Simulate("Boot", A100)
	if err != nil {
		t.Fatal(err)
	}
	if base.TimeMs <= r.TimeMs {
		t.Fatal("PIM platform must beat the GPU-only baseline on Boot")
	}
	oom, err := Simulate("ResNet18", RTX4090)
	if err != nil {
		t.Fatal(err)
	}
	if !oom.OoM {
		t.Fatal("ResNet18 must OoM on the RTX 4090")
	}
	if _, err := Simulate("nope", A100); err == nil {
		t.Fatal("unknown workload must error")
	}
	if _, err := Simulate("Boot", SimPlatform("cray")); err == nil {
		t.Fatal("unknown platform must error")
	}
}

func TestRunExperimentFacade(t *testing.T) {
	for _, id := range []string{"fig1-table", "table3", "table4"} {
		out, err := RunExperiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "-") || len(out) < 50 {
			t.Fatalf("experiment %s output implausible:\n%s", id, out)
		}
	}
	if _, err := RunExperiment("fig99"); err == nil {
		t.Fatal("unknown experiment must error")
	}
	if len(ExperimentIDs()) != 17 {
		t.Fatalf("want 17 experiment ids, got %d", len(ExperimentIDs()))
	}
	if len(Workloads()) != 6 {
		t.Fatalf("want 6 workloads, got %d", len(Workloads()))
	}
}

// TestConcurrentContextOps shares one Context between goroutines that
// interleave Encrypt, Mul, Rotate and Decrypt. Run under -race this guards
// the evaluator's and ring's internal caches, the encryptor mutex, and the
// limb worker pool.
func TestConcurrentContextOps(t *testing.T) {
	ctx := newCtx(t)
	ctx.GenRotationKeys(1, 2)
	r := rand.New(rand.NewSource(5))
	n := ctx.Params.Slots()
	u := randVec(r, n)
	v := randVec(r, n)

	const goroutines = 2
	const iters = 3
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		go func() {
			errs <- func() error {
				rot := g + 1 // goroutine 0 rotates by 1, goroutine 1 by 2
				for it := 0; it < iters; it++ {
					cu, err := ctx.Encrypt(u)
					if err != nil {
						return err
					}
					cv, err := ctx.Encrypt(v)
					if err != nil {
						return err
					}
					prod := ctx.Mul(cu, cv)
					rotated, err := ctx.Rotate(prod, rot)
					if err != nil {
						return err
					}
					got := ctx.Decrypt(rotated)
					want := make([]complex128, n)
					for i := range want {
						want[i] = u[(i+rot)%n] * v[(i+rot)%n]
					}
					if e := facadeMaxErr(got, want); e > 1e-3 {
						return fmt.Errorf("goroutine %d iter %d: error %g", g, it, e)
					}
				}
				return nil
			}()
		}()
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

// TestServerContext checks the serving trust model: an evaluation-only
// context computes on ciphertexts it cannot decrypt.
func TestServerContext(t *testing.T) {
	client := newCtx(t)
	client.GenRotationKeys(1)

	server, err := NewServerContext(TestParameters(), client.EvaluationKeys())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Encrypt([]complex128{1}); err == nil {
		t.Fatal("server context must not encrypt")
	}

	u := []complex128{1, 2, 3, 4}
	cu, err := client.Encrypt(u)
	if err != nil {
		t.Fatal(err)
	}
	sq := server.Mul(cu, cu)
	rotated, err := server.Rotate(sq, 1)
	if err != nil {
		t.Fatal(err)
	}
	got := client.Decrypt(rotated)
	want := []complex128{4, 9, 16}
	if e := facadeMaxErr(got[:3], want); e > 1e-3 {
		t.Fatalf("server-evaluated result off by %g", e)
	}
}

// TestEngineFacade drives a job DAG through the serving runtime via the
// facade hooks.
func TestEngineFacade(t *testing.T) {
	ctx := newCtx(t)
	ctx.GenRotationKeys(1)

	eng := NewEngine(EngineConfig{Workers: 2})
	defer eng.Close()
	sess, err := ctx.AttachSession(eng)
	if err != nil {
		t.Fatal(err)
	}

	u := []complex128{0.5, -0.25, 1, 2}
	cu, err := ctx.Encrypt(u)
	if err != nil {
		t.Fatal(err)
	}
	job, err := eng.Submit(JobSpec{
		SessionID: sess.ID,
		Inputs:    map[string]*Ciphertext{"x": cu},
		Ops: []OpSpec{
			{ID: "sq", Op: "square", Args: []string{"x"}},
			{ID: "r", Op: "rotate", Args: []string{"sq"}, K: 1},
		},
		Outputs: []string{"r"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}
	got := ctx.Decrypt(outs["r"])
	want := []complex128{0.0625, 1, 4}
	if e := facadeMaxErr(got[:3], want); e > 1e-3 {
		t.Fatalf("engine job result off by %g", e)
	}
}
