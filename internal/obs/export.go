package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// splitName separates a metric name into its family and inline label set:
// `h{op="mul"}` -> ("h", `op="mul"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promLine renders one sample, merging extra labels (e.g. le) into the
// metric's inline label set.
func promLine(w io.Writer, family, labels, suffix, extra string, value any) {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all != "" {
		all = "{" + all + "}"
	}
	switch v := value.(type) {
	case float64:
		fmt.Fprintf(w, "%s%s%s %g\n", family, suffix, all, v)
	case int64:
		fmt.Fprintf(w, "%s%s%s %d\n", family, suffix, all, v)
	}
}

// sortedKeys drains a sync.Map's string keys in sorted order.
func sortedKeys(m *sync.Map) []string {
	var keys []string
	m.Range(func(k, _ any) bool {
		keys = append(keys, k.(string))
		return true
	})
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), one `# TYPE` header per family.
func (r *Registry) WritePrometheus(w io.Writer) {
	typed := map[string]bool{}
	header := func(family, kind string) {
		if !typed[family] {
			fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
			typed[family] = true
		}
	}

	for _, name := range sortedKeys(&r.counters) {
		v, _ := r.counters.Load(name)
		family, labels := splitName(name)
		header(family, "counter")
		promLine(w, family, labels, "", "", v.(*Counter).Value())
	}
	for _, name := range sortedKeys(&r.gauges) {
		v, _ := r.gauges.Load(name)
		family, labels := splitName(name)
		header(family, "gauge")
		promLine(w, family, labels, "", "", float64(v.(*Gauge).Value()))
	}
	for _, name := range sortedKeys(&r.gaugeFns) {
		v, _ := r.gaugeFns.Load(name)
		family, labels := splitName(name)
		header(family, "gauge")
		promLine(w, family, labels, "", "", v.(func() float64)())
	}
	for _, name := range sortedKeys(&r.hists) {
		v, _ := r.hists.Load(name)
		h := v.(*Histogram)
		family, labels := splitName(name)
		header(family, "histogram")
		counts := h.BucketCounts()
		var cum int64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(h.bounds) {
				le = fmt.Sprintf("%g", h.bounds[i])
			}
			promLine(w, family, labels, "_bucket", `le="`+le+`"`, cum)
		}
		promLine(w, family, labels, "_sum", "", h.Sum())
		promLine(w, family, labels, "_count", "", h.Count())
	}
}

// HistogramSnapshot is the JSON form of one histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time JSON-serializable view of a registry.
type Snapshot struct {
	Counters   map[string]float64           `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric's current value.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]float64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	r.counters.Range(func(k, v any) bool {
		s.Counters[k.(string)] = v.(*Counter).Value()
		return true
	})
	r.gauges.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = float64(v.(*Gauge).Value())
		return true
	})
	r.gaugeFns.Range(func(k, v any) bool {
		s.Gauges[k.(string)] = v.(func() float64)()
		return true
	})
	r.hists.Range(func(k, v any) bool {
		h := v.(*Histogram)
		s.Histograms[k.(string)] = HistogramSnapshot{
			Count: h.Count(),
			Sum:   h.Sum(),
			P50:   h.Quantile(0.50),
			P95:   h.Quantile(0.95),
			P99:   h.Quantile(0.99),
		}
		return true
	})
	return s
}
