package pim

// Column-partitioning data layout (§VI-B, Fig 7): each DRAM row (32 chunks)
// is split into column groups (CGs), one polynomial per CG, so that fused
// instructions reading several polynomials of one PolyGroup hit a single
// open row. The naive alternative stores each polynomial contiguously,
// paying one row activation per polynomial per phase (the "w/o CP" ablation
// of Fig 10).

// Location is a physical placement of one chunk inside a bank.
type Location struct {
	Row int
	Col int // chunk index within the row
}

// PolyGroupLayout places `Polys` polynomials of `ChunksPerBank` chunks each
// (per bank) into a PolyGroup.
type PolyGroupLayout struct {
	Polys         int
	ChunksPerBank int
	RowChunks     int // chunks per DRAM row (32 for 8Kb rows, 256b chunks)
	BaseRow       int
}

// CGWidth returns the chunks available to each polynomial per row.
func (l PolyGroupLayout) CGWidth() int {
	w := l.RowChunks / l.Polys
	if w < 1 {
		w = 1
	}
	return w
}

// Rows returns the number of rows the PolyGroup spans (its row group).
func (l PolyGroupLayout) Rows() int {
	w := l.CGWidth()
	return (l.ChunksPerBank + w - 1) / w
}

// Chunk returns the location of chunk c of polynomial p under column
// partitioning.
func (l PolyGroupLayout) Chunk(p, c int) Location {
	w := l.CGWidth()
	return Location{
		Row: l.BaseRow + c/w,
		Col: p*w + c%w,
	}
}

// ChunkNaive returns the location under contiguous (naive) allocation:
// each polynomial occupies its own row range ("placing the polynomials all
// in separate DRAM rows", §VI-C) — in a real allocator the rest of each row
// is filled by the same polynomial's other limbs.
func (l PolyGroupLayout) ChunkNaive(p, c int) Location {
	rowsPerPoly := (l.ChunksPerBank + l.RowChunks - 1) / l.RowChunks
	return Location{
		Row: l.BaseRow + p*rowsPerPoly + c/l.RowChunks,
		Col: c % l.RowChunks,
	}
}

// RowAccessCounts returns, for an access to chunks [c0, c0+g) of every
// polynomial in the group, the touched rows and how many chunk accesses
// land in each (used to generate command streams).
func (l PolyGroupLayout) RowAccessCounts(c0, g int, columnPartitioned bool) map[int]int {
	rows := map[int]int{}
	for p := 0; p < l.Polys; p++ {
		for c := c0; c < c0+g && c < l.ChunksPerBank; c++ {
			if columnPartitioned {
				rows[l.Chunk(p, c).Row]++
			} else {
				rows[l.ChunkNaive(p, c).Row]++
			}
		}
	}
	return rows
}

// RowsTouched returns how many distinct rows an access to chunks
// [c0, c0+g) of every polynomial in the group activates, under either
// layout. This is the quantity Alg 1 amortizes.
func (l PolyGroupLayout) RowsTouched(c0, g int, columnPartitioned bool) int {
	rows := map[int]bool{}
	for p := 0; p < l.Polys; p++ {
		for c := c0; c < c0+g && c < l.ChunksPerBank; c++ {
			if columnPartitioned {
				rows[l.Chunk(p, c).Row] = true
			} else {
				rows[l.ChunkNaive(p, c).Row] = true
			}
		}
	}
	return len(rows)
}
