// Package ntt implements the negacyclic number-theoretic transform over
// Z_q[X]/(X^N+1) for power-of-two N and NTT-friendly primes q ≡ 1 (mod 2N).
//
// The forward transform maps a coefficient vector (natural order) to its
// evaluations at the primitive 2N-th roots of unity ψ^(2·brv(i)+1), i.e. the
// output is in "bit-reversed evaluation order", the conventional layout that
// makes both butterflies access contiguous memory (Longa–Naehrig). The
// inverse transform undoes it exactly, including the 1/N scaling.
package ntt

import (
	"fmt"
	"math/bits"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/par"
)

// Tables holds per-(q, N) precomputed twiddle factors.
type Tables struct {
	N    int
	LogN int
	Mod  modarith.Modulus

	Psi uint64 // primitive 2N-th root of unity mod q

	// psiRev[i] = ψ^brv(i), bit-reversed over logN bits; Shoup companions
	// alongside. psiInvRev likewise for ψ^{-1}.
	psiRev      []uint64
	psiRevShoup []uint64
	psiInvRev   []uint64
	psiInvShoup []uint64

	nInv      uint64 // N^{-1} mod q
	nInvShoup uint64
}

// NewTables builds twiddle tables for N = 2^logN and modulus q.
func NewTables(mod modarith.Modulus, logN int) (*Tables, error) {
	if logN < 1 || logN > 17 {
		return nil, fmt.Errorf("ntt: logN=%d out of range [1,17]", logN)
	}
	n := 1 << uint(logN)
	psi, err := mod.PrimitiveNthRoot(uint64(2 * n))
	if err != nil {
		return nil, fmt.Errorf("ntt: modulus %d: %w", mod.Q, err)
	}
	t := &Tables{
		N:           n,
		LogN:        logN,
		Mod:         mod,
		Psi:         psi,
		psiRev:      make([]uint64, n),
		psiRevShoup: make([]uint64, n),
		psiInvRev:   make([]uint64, n),
		psiInvShoup: make([]uint64, n),
	}
	psiInv := mod.MustInv(psi)
	fwd, inv := uint64(1), uint64(1)
	for i := 0; i < n; i++ {
		r := reverseBits(uint64(i), logN)
		t.psiRev[r] = fwd
		t.psiInvRev[r] = inv
		fwd = mod.Mul(fwd, psi)
		inv = mod.Mul(inv, psiInv)
	}
	for i := 0; i < n; i++ {
		t.psiRevShoup[i] = mod.ShoupPrecomp(t.psiRev[i])
		t.psiInvShoup[i] = mod.ShoupPrecomp(t.psiInvRev[i])
	}
	t.nInv = mod.MustInv(uint64(n))
	t.nInvShoup = mod.ShoupPrecomp(t.nInv)
	return t, nil
}

func reverseBits(x uint64, n int) uint64 {
	return bits.Reverse64(x) >> uint(64-n)
}

// Forward transforms a (length N, coefficients < q, natural order) in place
// into bit-reversed NTT form.
func (t *Tables) Forward(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: Forward on slice of length %d, want %d", len(a), t.N))
	}
	mod := t.Mod
	span := t.N
	for m := 1; m < t.N; m <<= 1 {
		span >>= 1
		for i := 0; i < m; i++ {
			w := t.psiRev[m+i]
			ws := t.psiRevShoup[m+i]
			j1 := 2 * i * span
			for j := j1; j < j1+span; j++ {
				u := a[j]
				v := mod.MulShoup(a[j+span], w, ws)
				a[j] = mod.Add(u, v)
				a[j+span] = mod.Sub(u, v)
			}
		}
	}
}

// Inverse transforms a (bit-reversed NTT form) in place back to natural-order
// coefficients, including the 1/N scaling.
func (t *Tables) Inverse(a []uint64) {
	if len(a) != t.N {
		panic(fmt.Sprintf("ntt: Inverse on slice of length %d, want %d", len(a), t.N))
	}
	mod := t.Mod
	span := 1
	for m := t.N >> 1; m >= 1; m >>= 1 {
		for i := 0; i < m; i++ {
			w := t.psiInvRev[m+i]
			ws := t.psiInvShoup[m+i]
			j1 := 2 * i * span
			for j := j1; j < j1+span; j++ {
				u := a[j]
				v := a[j+span]
				a[j] = mod.Add(u, v)
				a[j+span] = mod.MulShoup(mod.Sub(u, v), w, ws)
			}
		}
		span <<= 1
	}
	for j := range a {
		a[j] = mod.MulShoup(a[j], t.nInv, t.nInvShoup)
	}
}

// parallelLimbThreshold is the limb count above which batch transforms are
// spread over the shared worker pool. Below it the per-chunk synchronization
// costs more than the transforms.
const parallelLimbThreshold = 8

// ForwardMany runs tables[i].Forward(rows[i]) for every limb, in parallel on
// the shared worker pool when the batch is large enough. Limbs are
// independent RNS residues, so this is always safe.
func ForwardMany(tables []*Tables, rows [][]uint64) {
	if len(tables) != len(rows) {
		panic(fmt.Sprintf("ntt: ForwardMany on %d tables, %d rows", len(tables), len(rows)))
	}
	if len(rows) < parallelLimbThreshold {
		for i := range rows {
			tables[i].Forward(rows[i])
		}
		return
	}
	par.ForEach(len(rows), func(i int) { tables[i].Forward(rows[i]) })
}

// InverseMany runs tables[i].Inverse(rows[i]) for every limb, in parallel on
// the shared worker pool when the batch is large enough.
func InverseMany(tables []*Tables, rows [][]uint64) {
	if len(tables) != len(rows) {
		panic(fmt.Sprintf("ntt: InverseMany on %d tables, %d rows", len(tables), len(rows)))
	}
	if len(rows) < parallelLimbThreshold {
		for i := range rows {
			tables[i].Inverse(rows[i])
		}
		return
	}
	par.ForEach(len(rows), func(i int) { tables[i].Inverse(rows[i]) })
}

// MulCoeffs computes the element-wise product c = a ⊙ b of two NTT-form
// vectors, i.e. the negacyclic convolution of the underlying polynomials.
func (t *Tables) MulCoeffs(c, a, b []uint64) {
	mod := t.Mod
	for i := range c {
		c[i] = mod.Mul(a[i], b[i])
	}
}
