package modarith

import "math/bits"

// Vectorized kernels for the fused multiply-accumulate paths. The per-limb
// ring loops call these once per limb instead of one exported method per
// coefficient, so the Barrett constants live in registers for the whole row
// and the loop body is free of call overhead regardless of inliner budgets.
//
// All "Lazy" kernels keep out in [0, 2q) (see MulBarrettLazy for the bound
// derivation); chains end with VecReduceTwoQ.

// VecMulAddLazy computes out[j] += a[j]*b[j] lazily for full rows. The
// multiplicands may themselves be lazy (a,b < 2q — see MulBarrettLazy),
// which lets the gadget product consume NTTLazy digits directly.
func (m Modulus) VecMulAddLazy(out, a, b []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		xhi, xlo := bits.Mul64(a[j], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		s := out[j] + r
		if s >= twoQ {
			s -= twoQ
		}
		out[j] = s
	}
}

// VecMulAddLazyIdx computes out[j] += a[idx[j]]*b[j] lazily — the fused
// NTT-domain automorphism gather + multiply-accumulate (AutAccum).
func (m Modulus) VecMulAddLazyIdx(out, a, b []uint64, idx []int) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(idx)-1]
	_ = b[len(idx)-1]
	for j, k := range idx {
		xhi, xlo := bits.Mul64(a[k], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		s := out[j] + r
		if s >= twoQ {
			s -= twoQ
		}
		out[j] = s
	}
}

// VecMulShoupAddLazy computes out[j] += a[j]*w lazily for a fixed operand w
// with Shoup companion wShoup (the constant-multiply-accumulate of a fused
// CMULT+ADD ladder).
func (m Modulus) VecMulShoupAddLazy(out, a []uint64, w, wShoup uint64) {
	q, twoQ := m.Q, m.TwoQ
	_ = out[len(a)-1]
	for j := range a {
		hi, _ := bits.Mul64(a[j], wShoup)
		s := out[j] + (a[j]*w - hi*q)
		if s >= twoQ {
			s -= twoQ
		}
		out[j] = s
	}
}

// VecSubMulShoup computes out[j] = (a[j] - b[j]) * w mod q exactly, for
// a,b < q and fixed operand w with Shoup companion wShoup (the fused
// subtract-and-scale epilogue of ModDown).
func (m Modulus) VecSubMulShoup(out, a, b []uint64, w, wShoup uint64) {
	q := m.Q
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		d := a[j] - b[j]
		if d > a[j] {
			d += q
		}
		hi, _ := bits.Mul64(d, wShoup)
		r := d*w - hi*q
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

// VecMulBarrett computes out[j] = a[j]*b[j] mod q exactly via the Barrett
// reciprocal — no hardware division in the loop, unlike the scalar Mul. This
// is the element-wise (NTT-domain) polynomial product kernel.
func (m Modulus) VecMulBarrett(out, a, b []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		xhi, xlo := bits.Mul64(a[j], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

// VecMulAddBarrett computes out[j] = out[j] + a[j]*b[j] mod q exactly
// (out, a, b < q), keeping the Barrett constants in registers for the row.
func (m Modulus) VecMulAddBarrett(out, a, b []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		xhi, xlo := bits.Mul64(a[j], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		s := out[j] + r
		if s >= q {
			s -= q
		}
		out[j] = s
	}
}

// VecMulSubBarrett computes out[j] = out[j] - a[j]*b[j] mod q exactly
// (out, a, b < q).
func (m Modulus) VecMulSubBarrett(out, a, b []uint64) {
	q, twoQ, u0, u1 := m.Q, m.TwoQ, m.BRedHi, m.BRedLo
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		xhi, xlo := bits.Mul64(a[j], b[j])
		t := xhi * u0
		hhi, _ := bits.Mul64(xlo, u0)
		t += hhi
		hhi, _ = bits.Mul64(xhi, u1)
		t += hhi
		r := xlo - t*q
		if r >= twoQ {
			r -= twoQ
		}
		if r >= q {
			r -= q
		}
		d := out[j] - r
		if d > out[j] {
			d += q
		}
		out[j] = d
	}
}

// VecMulShoup computes out[j] = a[j]*w mod q exactly for a < q and fixed
// operand w with Shoup companion wShoup — the row form of MulShoup, used for
// the BConv premultiply tmp_i = [x · qHatInv_i]_{q_i}.
func (m Modulus) VecMulShoup(out, a []uint64, w, wShoup uint64) {
	q := m.Q
	_ = out[len(a)-1]
	for j := range a {
		hi, _ := bits.Mul64(a[j], wShoup)
		r := a[j]*w - hi*q
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

// VecSubMulShoupLazy is VecSubMulShoup for a lazy subtrahend: a < q exact,
// b < 2q lazy (e.g. straight out of NTTLazy), out exact in [0, q). The
// difference a + 2q − b lies in (0, 3q) < 2^63, where MulShoupLazy's bound
// r < q·(d/2^64 + 1) < 2q still holds, so one conditional subtraction
// finishes the job.
func (m Modulus) VecSubMulShoupLazy(out, a, b []uint64, w, wShoup uint64) {
	q, twoQ := m.Q, m.TwoQ
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		d := a[j] + twoQ - b[j]
		hi, _ := bits.Mul64(d, wShoup)
		r := d*w - hi*q
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

// VecAddScalar computes out[j] = a[j] + c mod q exactly, for a, c < q.
func (m Modulus) VecAddScalar(out, a []uint64, c uint64) {
	q := m.Q
	_ = out[len(a)-1]
	for j := range a {
		s := a[j] + c
		if s >= q {
			s -= q
		}
		out[j] = s
	}
}

// VecRescaleStep performs the per-limb rescale update in place:
//
//	row[j] = (row[j] + halfModQ − t[j]) · w  mod q ,
//
// where row < q is the limb's residues, t holds arbitrary uint64 values
// (the [x + q_L/2]_{q_L} row, reduced mod q lazily here with a single
// Barrett partial product: for t[j] < 2^64 the raw remainder is < 4q), and
// w = q_L^{-1} mod q with Shoup companion wShoup. The inner difference
// row[j] + halfModQ + 4q − tm sits in (0, 6q) < 2^64, inside MulShoupLazy's
// any-operand domain, so a single conditional subtraction returns the exact
// residue.
func (m Modulus) VecRescaleStep(row, t []uint64, halfModQ, w, wShoup uint64) {
	q, u0 := m.Q, m.BRedHi
	fourQ := 4 * q
	_ = t[len(row)-1]
	for j := range row {
		th, _ := bits.Mul64(t[j], u0)
		tm := t[j] - th*q // ≡ t[j] (mod q), in [0, 4q)
		v := row[j] + halfModQ + fourQ - tm
		hi, _ := bits.Mul64(v, wShoup)
		r := v*w - hi*q
		if r >= q {
			r -= q
		}
		row[j] = r
	}
}

// VecReduceTwoQ maps every lazy value in [0, 2q) to its exact residue.
func (m Modulus) VecReduceTwoQ(p []uint64) {
	q := m.Q
	for j := range p {
		if p[j] >= q {
			p[j] -= q
		}
	}
}
