package sched

import (
	"testing"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

func a100() Config { return Config{GPU: gpu.A100(), Lib: gpu.Cheddar()} }

func a100PIM() Config {
	u := pim.A100NearBank()
	return Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: &u}
}

func bootTrace(opt trace.Options) *trace.Trace {
	return workloads.Bootstrap(trace.PaperParams(), opt, workloads.DefaultBoot())
}

func TestRunBasicAccounting(t *testing.T) {
	r := Run(bootTrace(trace.GPUBaseline()), a100())
	if r.TimeNs <= 0 || r.EnergyNJ <= 0 || r.GPUBytes <= 0 {
		t.Fatalf("non-positive result: %+v", r)
	}
	if r.PIMTimeNs != 0 || r.PIMBytes != 0 || r.Transitions != 0 {
		t.Fatal("GPU-only run must not touch PIM accounting")
	}
	// Class times sum to the kernel time (total minus transitions).
	var classSum float64
	for _, v := range r.ClassTimeNs {
		classSum += v
	}
	if diff := r.TimeNs - classSum; diff < -1 || diff > 1 {
		t.Fatalf("class times (%.0f) should sum to total (%.0f)", classSum, r.TimeNs)
	}
	if len(r.Timeline) == 0 {
		t.Fatal("timeline empty")
	}
}

func TestTimelineIsContiguous(t *testing.T) {
	r := Run(bootTrace(trace.AnaheimDefault()), a100PIM())
	cursor := 0.0
	for i, s := range r.Timeline {
		if s.StartNs+1e-6 < cursor {
			t.Fatalf("segment %d overlaps predecessor", i)
		}
		cursor = s.StartNs + s.DurNs
	}
	if cursor > r.TimeNs+1 {
		t.Fatalf("timeline end %.0f exceeds total %.0f", cursor, r.TimeNs)
	}
}

func TestPIMOffloadMovesTraffic(t *testing.T) {
	base := Run(bootTrace(trace.GPUBaseline()), a100())
	pimRun := Run(bootTrace(trace.AnaheimDefault()), a100PIM())
	if pimRun.GPUBytes >= base.GPUBytes {
		t.Fatal("PIM offloading must reduce GPU-side DRAM access (§V-D)")
	}
	if pimRun.PIMBytes == 0 {
		t.Fatal("offloaded kernels must account PIM-side access")
	}
	if pimRun.TimeNs >= base.TimeNs {
		t.Fatal("Anaheim should be faster than the GPU baseline on bootstrapping")
	}
	if pimRun.Transitions == 0 {
		t.Fatal("GPU/PIM co-execution must transition between domains")
	}
	// Reduction band: the paper reports 6.15x; the model reproduces > 3.5x.
	if ratio := base.GPUBytes / pimRun.GPUBytes; ratio < 3.5 {
		t.Fatalf("GPU-side DRAM reduction %.2fx below the acceptance band", ratio)
	}
}

func TestTransitionOverheadCharged(t *testing.T) {
	r := Run(bootTrace(trace.AnaheimDefault()), a100PIM())
	var segSum float64
	for _, s := range r.Timeline {
		segSum += s.DurNs
	}
	wantOverhead := float64(r.Transitions) * gpu.A100().TransitionUs * 1e3
	if got := r.TimeNs - segSum; got < wantOverhead*0.99 || got > wantOverhead*1.01 {
		t.Fatalf("transition overhead = %.0fns, want %.0fns", got, wantOverhead)
	}
}

func TestNaiveLayoutSlower(t *testing.T) {
	cp := Run(bootTrace(trace.AnaheimDefault()), a100PIM())
	cfg := a100PIM()
	cfg.NaiveLayout = true
	naive := Run(bootTrace(trace.AnaheimDefault()), cfg)
	ratio := naive.ClassTimeNs[trace.ClassEW] / cp.ClassTimeNs[trace.ClassEW]
	// Fig 10: w/o CP slows element-wise ops ~2.2x.
	if ratio < 1.5 || ratio > 6 {
		t.Fatalf("naive layout EW slowdown %.2fx outside the acceptance band", ratio)
	}
}

func TestSmallBufferFallsBack(t *testing.T) {
	cfg := a100PIM()
	cfg.BufferSize = 4 // PAccum/Tensor unsupported: must decompose, not fail
	r := Run(bootTrace(trace.AnaheimDefault()), cfg)
	if r.TimeNs <= 0 || r.PIMBytes == 0 {
		t.Fatal("fallback execution failed")
	}
	big := a100PIM()
	big.BufferSize = 64
	r64 := Run(bootTrace(trace.AnaheimDefault()), big)
	if r64.ClassTimeNs[trace.ClassEW] >= r.ClassTimeNs[trace.ClassEW] {
		t.Fatal("larger buffers should speed up PIM element-wise execution (Fig 9)")
	}
}

func TestEWShareBands(t *testing.T) {
	// §IV-B: element-wise ops are 45-48% of bootstrapping time on the A100
	// and 68-69% on the RTX 4090 (we accept a widened band for the model).
	a := Run(bootTrace(trace.GPUBaseline()), a100())
	if s := a.EWShare(); s < 0.42 || s > 0.60 {
		t.Fatalf("A100 EW share %.1f%% outside [42, 60]", 100*s)
	}
	r4090 := Run(bootTrace(trace.GPUBaseline()), Config{GPU: gpu.RTX4090(), Lib: gpu.Cheddar()})
	if s := r4090.EWShare(); s < 0.60 || s > 0.80 {
		t.Fatalf("RTX4090 EW share %.1f%% outside [60, 80]", 100*s)
	}
	if r4090.EWShare() <= a.EWShare() {
		t.Fatal("the RTX 4090 must be more element-wise-bound than the A100")
	}
}

func TestDisableWriteBacks(t *testing.T) {
	on := Run(bootTrace(trace.AnaheimDefault()), a100PIM())
	cfg := a100PIM()
	cfg.DisableWriteBacks = true
	off := Run(bootTrace(trace.AnaheimDefault()), cfg)
	if off.WriteBackBytes != 0 {
		t.Fatal("write-backs should be suppressible")
	}
	if off.GPUBytes >= on.GPUBytes {
		t.Fatal("write-backs must add GPU-side traffic")
	}
}

func TestLibraryProfilesOrdering(t *testing.T) {
	// Fig 2a: Cheddar > 100x ~ Phantom on compute-heavy functions.
	p := trace.PaperParams()
	b := trace.NewBuilder(p, trace.GPUBaseline(), "hmult")
	b.HMULT(p.L - 1)
	cheddar := Run(b.T, Config{GPU: gpu.A100(), Lib: gpu.Cheddar()})
	hundred := Run(b.T, Config{GPU: gpu.A100(), Lib: gpu.HundredX()})
	if ratio := hundred.TimeNs / cheddar.TimeNs; ratio < 1.3 || ratio > 2.2 {
		t.Fatalf("Cheddar/100x HMULT speedup %.2fx outside band (paper 1.73x)", ratio)
	}
}
