// Command anaheim-bench regenerates the Anaheim paper's evaluation tables
// and figures on the simulation stack.
//
// Usage:
//
//	anaheim-bench -exp fig8        # one experiment
//	anaheim-bench -all             # everything
//	anaheim-bench -list            # available experiment ids
//	anaheim-bench -micro -o BENCH_BASELINE.json   # FHE op microbenchmarks as JSON
//	anaheim-bench -micro -fusion both             # fused+unfused lintrans/bootstrap entries
//	anaheim-bench -micro -metrics                 # ...with obs registry snapshot attached
//	anaheim-bench -micro -membw                   # ...with estimated DRAM bytes-moved per op
//	anaheim-bench -compare BENCH_BASELINE.json -against new.json   # perf regression gate
//	anaheim-bench -tiertable new.json             # per-kernel-tier rows as markdown
//	anaheim-bench -membwtable new.json            # pipelined-vs-barriered traffic as markdown
//	anaheim-bench -lttable new.json               # lintrans BSGS-vs-per-diagonal rows as markdown
//	anaheim-bench -tenants 8 -mix logreg,lintrans -duration 5s -batch both
//	                                              # many-tenant serving load driver:
//	                                              # per-tier p50/p99, batch occupancy,
//	                                              # batching-on vs batching-off
//	anaheim-bench -tenants 8 -batch both -gate -merge BENCH_BASELINE.json
//	                                              # ...enforce the batching win and
//	                                              # record it as the baseline's
//	                                              # .serving field
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/anaheim-sim/anaheim"
)

func main() {
	exp := flag.String("exp", "", "experiment id (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiment ids")
	csv := flag.Bool("csv", false, "emit CSV instead of an aligned table")
	micro := flag.Bool("micro", false, "run FHE op microbenchmarks, emit JSON")
	fusion := flag.String("fusion", "both", "fused-kernel modes for -micro lintrans/bootstrap: both|on|off")
	metrics := flag.Bool("metrics", false, "attach obs registry snapshot to -micro JSON")
	membw := flag.Bool("membw", false, "attach estimated DRAM bytes-moved per op (ring traffic model) to -micro JSON")
	outPath := flag.String("o", "", "write -micro JSON here instead of stdout")
	tierTable := flag.String("tiertable", "", "emit the per-kernel-tier rows of a -micro JSON as a markdown table")
	membwTable := flag.String("membwtable", "", "emit the pipelined-vs-barriered traffic rows of a -micro JSON as a markdown table")
	ltTable := flag.String("lttable", "", "emit the linear-transform strategy rows (BSGS vs per-diagonal, with key-switch counts) of a -micro JSON as a markdown table")
	compareBase := flag.String("compare", "", "baseline -micro JSON to compare against")
	compareNew := flag.String("against", "", "candidate -micro JSON for -compare")
	tolerance := flag.Float64("tolerance", 25, "percent ns/op slowdown tolerated by -compare")
	tenants := flag.Int("tenants", 0, "run the many-tenant serving load driver with N tenant sessions")
	mix := flag.String("mix", "logreg,lintrans", "comma-separated workload mix for -tenants: logreg,lintrans,bootstrap")
	duration := flag.Duration("duration", 5*time.Second, "per-configuration wall clock for -tenants")
	batchWindow := flag.Duration("batchwindow", time.Millisecond, "staging window for the batching-on -tenants runs")
	batchMode := flag.String("batch", "both", "engine configurations for -tenants: off|on|both")
	gate := flag.Bool("gate", false, "with -tenants -batch both: fail (exit 3) unless batching-on beats batching-off without latency-tier p99 regression")
	mergeInto := flag.String("merge", "", "with -tenants: also attach the load report as the .serving field of an existing -micro JSON file")
	flag.Parse()

	run := func(id string) (string, error) {
		if *csv {
			return anaheim.RunExperimentCSV(id)
		}
		return anaheim.RunExperiment(id)
	}

	switch {
	case *tenants > 0:
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		rep, gateErr, err := runLoad(out, *tenants, *mix, *duration, *batchWindow, *batchMode, *gate)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *mergeInto != "" {
			if err := mergeServing(*mergeInto, rep); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if gateErr != nil {
			fmt.Fprintln(os.Stderr, gateErr)
			os.Exit(3) // soft failure, same convention as -compare
		}
	case *tierTable != "":
		if err := runTierTable(os.Stdout, *tierTable); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *membwTable != "":
		if err := runMemBWTable(os.Stdout, *membwTable); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *ltTable != "":
		if err := runLinTransTable(os.Stdout, *ltTable); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *compareBase != "":
		regressed, err := runCompare(os.Stdout, *compareBase, *compareNew, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if regressed {
			os.Exit(3) // distinct from hard errors so CI can treat it as a warning
		}
	case *micro:
		out := os.Stdout
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := runMicro(out, *metrics, *fusion, *membw); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *list:
		fmt.Println(strings.Join(anaheim.ExperimentIDs(), "\n"))
	case *all:
		for _, id := range anaheim.ExperimentIDs() {
			out, err := run(id)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Printf("=== %s ===\n%s\n", id, out)
		}
	case *exp != "":
		out, err := run(*exp)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(out)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
