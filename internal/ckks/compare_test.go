package ckks

import (
	"math"
	"math/rand"
	"testing"
)

// compareParams gives enough depth for several sign iterations.
func compareParams() ParametersLiteral {
	return ParametersLiteral{
		LogN:     11,
		LogQ:     append([]int{55}, repeatInts(45, 19)...),
		LogP:     []int{58, 58},
		LogScale: 45,
		HDense:   64,
		HSparse:  16,
	}
}

func TestEvalSign(t *testing.T) {
	tc := newTestContext(t, compareParams())
	r := rand.New(rand.NewSource(70))
	slots := tc.params.Slots()
	u := make([]complex128, slots)
	for i := range u {
		// Keep a margin around zero: sign is approximate there.
		v := 0.3 + 0.7*r.Float64()
		if r.Intn(2) == 0 {
			v = -v
		}
		u[i] = complex(v, 0)
	}
	ct := tc.encryptVec(t, u)
	out := tc.eval.EvalSign(ct, 5)
	got := tc.decryptVec(out)
	for i := range u {
		want := 1.0
		if real(u[i]) < 0 {
			want = -1
		}
		if math.Abs(real(got[i])-want) > 0.1 {
			t.Fatalf("sign(%.3f) = %.3f, want %.0f", real(u[i]), real(got[i]), want)
		}
	}
}

func TestEvalCompare(t *testing.T) {
	tc := newTestContext(t, compareParams())
	r := rand.New(rand.NewSource(71))
	slots := tc.params.Slots()
	a := make([]complex128, slots)
	b := make([]complex128, slots)
	for i := range a {
		a[i] = complex(r.Float64()-0.5, 0)
		for {
			b[i] = complex(r.Float64()-0.5, 0)
			if math.Abs(real(a[i])-real(b[i])) > 0.3 {
				break
			}
		}
	}
	cta, ctb := tc.encryptVec(t, a), tc.encryptVec(t, b)
	out := tc.eval.EvalCompare(cta, ctb, 5)
	got := tc.decryptVec(out)
	for i := range a {
		want := 0.0
		if real(a[i]) > real(b[i]) {
			want = 1
		}
		if math.Abs(real(got[i])-want) > 0.06 {
			t.Fatalf("compare(%.3f, %.3f) = %.3f, want %.0f", real(a[i]), real(b[i]), real(got[i]), want)
		}
	}
}

func TestEvalMinMax(t *testing.T) {
	tc := newTestContext(t, compareParams())
	r := rand.New(rand.NewSource(72))
	slots := tc.params.Slots()
	a := make([]complex128, slots)
	b := make([]complex128, slots)
	for i := range a {
		a[i] = complex(r.Float64()-0.5, 0)
		for {
			b[i] = complex(r.Float64()-0.5, 0)
			if math.Abs(real(a[i])-real(b[i])) > 0.3 {
				break
			}
		}
	}
	cta, ctb := tc.encryptVec(t, a), tc.encryptVec(t, b)
	minCt, maxCt := tc.eval.EvalMinMax(cta, ctb, 5)
	gotMin := tc.decryptVec(minCt)
	gotMax := tc.decryptVec(maxCt)
	for i := range a {
		wantMin := math.Min(real(a[i]), real(b[i]))
		wantMax := math.Max(real(a[i]), real(b[i]))
		if math.Abs(real(gotMin[i])-wantMin) > 0.06 || math.Abs(real(gotMax[i])-wantMax) > 0.06 {
			t.Fatalf("minmax(%.3f, %.3f) = (%.3f, %.3f), want (%.3f, %.3f)",
				real(a[i]), real(b[i]), real(gotMin[i]), real(gotMax[i]), wantMin, wantMax)
		}
	}
	// min + max must equal a + b (exactly in the reals, approximately here).
	for i := range a {
		if math.Abs(real(gotMin[i])+real(gotMax[i])-real(a[i])-real(b[i])) > 0.06 {
			t.Fatal("min + max != a + b")
		}
	}
}
