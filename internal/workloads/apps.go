package workloads

import (
	"github.com/anaheim-sim/anaheim/internal/trace"
)

// The application traces compose bootstrapping with each workload's
// published op mix (§VII-A). The structures below are derived from the cited
// workload papers at the level of operation counts — what the simulator
// needs — not from their trained models or datasets (see DESIGN.md's
// substitution table).

// Workload couples a trace generator with its paper metadata.
type Workload struct {
	Name string
	LEff int
	Gen  func(p trace.Params, opt trace.Options) *trace.Trace
}

// All returns the six evaluation workloads of Fig 8.
func All() []Workload {
	return []Workload{
		{"Boot", 11, func(p trace.Params, o trace.Options) *trace.Trace {
			return Bootstrap(p, o, DefaultBoot())
		}},
		{"HELR", 10, HELR},
		{"Sort", 9, Sort},
		{"RNN", 10, RNN},
		{"ResNet20", 8, ResNet20},
		{"ResNet18", 7, ResNet18AESPA},
	}
}

// ByName returns one workload.
func ByName(name string) (Workload, bool) {
	for _, w := range All() {
		if w.Name == name {
			return w, true
		}
	}
	return Workload{}, false
}

// FootprintGB estimates a workload's DRAM residency: bootstrapping keys and
// matrices plus workload weights/plaintexts and live feature maps. ResNet20
// and ResNet18-AESPA exceed the RTX 4090's 24GB (§VIII-B: "ResNet18-AESPA
// requires over 40GB of memory").
func FootprintGB(name string, p trace.Params) float64 {
	boot := BootFootprintGB(p, DefaultBoot())
	switch name {
	case "Boot":
		return boot
	case "HELR":
		sparse := DefaultBoot()
		sparse.SlotsLog = 8
		return BootFootprintGB(p, sparse) + 1
	case "Sort":
		return boot + 3 // comparison polynomial plaintexts + live arrays
	case "RNN":
		return boot + 4 // two weight matrices as diagonal plaintexts
	case "ResNet20":
		// 20 layers of multiplexed convolution plaintexts + feature maps.
		return boot + 20*0.35 + 20*p.CtBytes(p.L-1)/1e9 + 6
	case "ResNet18":
		// ImageNet feature maps: several ciphertexts per layer and NeuJeans
		// convolution matrices (paper: > 40GB).
		return boot + 18*0.8 + 80*p.CtBytes(p.L-1)/1e9 + 12
	default:
		return boot
	}
}

// levelFor returns a representative mid-schedule level for application ops.
func levelFor(p trace.Params, depth int) int {
	l := p.L - 1 - 2*depth
	if l < 3 {
		l = 3
	}
	return l
}

// HELR is one training iteration of logistic regression on a 1024-batch of
// 14×14 MNIST images [33]: the model has only 196 weights, so bootstrapping
// packs few slots and its linear transforms shrink, leaving ModSwitch
// dominant (§VII-B explains the resulting smaller Anaheim gains).
func HELR(p trace.Params, opt trace.Options) *trace.Trace {
	b := trace.NewBuilder(p, opt, "HELR")
	lvl := levelFor(p, 2)
	// Batch inner products: sigma(X·w): one mat-vec plus rotations for the
	// intra-ciphertext reduction tree.
	b.LinearTransform(lvl, 8)
	for i := 0; i < 8; i++ { // log-depth rotation-sum over 196 packed weights
		b.HROT(lvl - 2)
	}
	// Degree-3 sigmoid approximation and gradient computation.
	for i := 0; i < 4; i++ {
		b.HMULT(lvl - 4 - 2*i)
	}
	b.PMULT(lvl - 8)
	b.HADD(lvl - 8)
	// Sparse-slot bootstrapping: only 196 slots are packed, so the DFT
	// matrices have few diagonals (SlotsLog 8) while ModSwitch retains its
	// full cost.
	cfg := DefaultBoot()
	cfg.SlotsLog = 8
	boot := Bootstrap(p, opt, cfg)
	t := b.T
	t.Concat(boot, 2) // one bootstrap per ciphertext pair kept alive
	t.LEff = 10
	return t
}

// Sort is the two-way sorting of 2^14 reals [35]: a bitonic-style network of
// log²-depth rounds, each evaluating a minimax comparison polynomial and a
// swap, with periodic bootstrapping.
func Sort(p trace.Params, opt trace.Options) *trace.Trace {
	b := trace.NewBuilder(p, opt, "Sort")
	rounds := 105 // log(2^14)·(log(2^14)+1)/2 comparator rounds
	boot := Bootstrap(p, opt, DefaultBoot())
	t := b.T
	for r := 0; r < rounds; r++ {
		rb := trace.NewBuilder(p, opt, "Sort.round")
		lvl := levelFor(p, 1)
		// Comparison via a composition of minimax polynomials (depth ~15)
		// plus the swap network; consumes more than L_eff levels, so each
		// round bootstraps twice.
		for i := 0; i < 15; i++ {
			rb.HMULT(lvl - 2*(i%7))
		}
		rb.HROT(lvl - 6)
		rb.HADD(lvl - 8)
		rb.HADD(lvl - 8)
		t.Concat(rb.T, 1)
		t.Concat(boot, 2)
	}
	t.LEff = 9
	return t
}

// RNN is 200 iterations of an RNN cell on a 32-batch of 128-long
// embeddings [67]: two 128×128 mat-vecs, a tanh-like activation, and a
// bootstrap every few cells.
func RNN(p trace.Params, opt trace.Options) *trace.Trace {
	t := &trace.Trace{Name: "RNN", P: p, LEff: 10}
	boot := Bootstrap(p, opt, DefaultBoot())
	for it := 0; it < 200; it++ {
		b := trace.NewBuilder(p, opt, "RNN.cell")
		lvl := levelFor(p, 1)
		b.LinearTransform(lvl, 16)   // W_x·x
		b.LinearTransform(lvl-2, 16) // W_h·h
		b.HADD(lvl - 4)
		for i := 0; i < 3; i++ { // activation polynomial
			b.HMULT(lvl - 4 - 2*i)
		}
		t.Concat(b.T, 1)
		if it%3 == 2 {
			t.Concat(boot, 1)
		}
	}
	return t
}

// ResNet20 is CIFAR-10 inference [49]: 20 convolution layers as multiplexed
// packed convolutions (rotation-heavy linear transforms), AESPA-free ReLU
// via a composite minimax polynomial, and one bootstrap per layer.
func ResNet20(p trace.Params, opt trace.Options) *trace.Trace {
	t := &trace.Trace{Name: "ResNet20", P: p, LEff: 8}
	boot := Bootstrap(p, opt, DefaultBoot())
	for layer := 0; layer < 20; layer++ {
		b := trace.NewBuilder(p, opt, "R20.layer")
		lvl := levelFor(p, 1)
		b.LinearTransform(lvl, 18) // multiplexed parallel convolution
		for i := 0; i < 6; i++ {   // high-degree ReLU approximation
			b.HMULT(lvl - 2 - 2*i)
		}
		b.HADD(lvl - 12)
		t.Concat(b.T, 1)
		t.Concat(boot, 1)
	}
	return t
}

// ResNet18AESPA is ImageNet inference with NeuJeans packing and AESPA
// activations [37][64]: larger feature maps mean several ciphertexts per
// layer, convolutions fused with bootstrapping's DFTs, and quadratic
// activations.
func ResNet18AESPA(p trace.Params, opt trace.Options) *trace.Trace {
	t := &trace.Trace{Name: "ResNet18", P: p, LEff: 7}
	boot := Bootstrap(p, opt, DefaultBoot())
	for layer := 0; layer < 18; layer++ {
		b := trace.NewBuilder(p, opt, "R18.layer")
		lvl := levelFor(p, 1)
		cts := 2 // ciphertexts per layer after NeuJeans packing
		for c := 0; c < cts; c++ {
			b.LinearTransform(lvl, 24)
			b.HSQUARE(lvl - 2) // AESPA quadratic activation
			b.PMULT(lvl - 4)
			b.HADD(lvl - 4)
		}
		t.Concat(b.T, 1)
		t.Concat(boot, 2)
	}
	return t
}
