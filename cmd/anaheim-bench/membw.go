package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// runMemBWTable pivots the bytes-moved columns of a -micro -membw report
// into a markdown table for the CI bench job's step summary. Rows whose op
// names differ only by a -pipelined/-barriered segment are paired so the
// traffic cut of the limb-pipelining rewrite (DESIGN.md §3.13) is readable
// at a glance; remaining probed ops are listed below the pairs.
func runMemBWTable(out io.Writer, path string) error {
	rep, err := readReport(path)
	if err != nil {
		return err
	}
	probed := make(map[string]microResult)
	for _, r := range rep.Results {
		if r.MemBytesOp > 0 {
			probed[r.Op] = r
		}
	}
	if len(probed) == 0 {
		return fmt.Errorf("anaheim-bench: %s has no memBytesPerOp columns — was it produced with -micro -membw?", path)
	}

	mb := func(v float64) string { return fmt.Sprintf("%.1f", v/(1<<20)) }

	// Pair rows: "keyswitch-pipelined-n14-l16" <-> "keyswitch-barriered-n14-l16".
	type pair struct{ piped, barr microResult }
	pairs := make(map[string]pair)
	var singles []string
	for op, r := range probed {
		switch {
		case strings.Contains(op, "pipelined"):
			key := strings.Replace(op, "pipelined", "*", 1)
			p := pairs[key]
			p.piped = r
			pairs[key] = p
		case strings.Contains(op, "barriered"):
			key := strings.Replace(op, "barriered", "*", 1)
			p := pairs[key]
			p.barr = r
			pairs[key] = p
		default:
			singles = append(singles, op)
		}
	}

	fmt.Fprintln(out, "## Estimated DRAM traffic (ring bytes-moved model)")
	fmt.Fprintln(out)
	fmt.Fprintln(out, "| op | barriered MB/op | pipelined MB/op | traffic cut | pipelined speedup |")
	fmt.Fprintln(out, "|---|---|---|---|---|")
	keys := make([]string, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		p := pairs[k]
		if p.piped.Op == "" || p.barr.Op == "" {
			continue // half a pair: the other mode's row is missing from the report
		}
		cut := (1 - p.piped.MemBytesOp/p.barr.MemBytesOp) * 100
		speedup := p.barr.NsPerOp / p.piped.NsPerOp
		fmt.Fprintf(out, "| %s | %s | %s | %.0f%% | %.2fx |\n",
			strings.Replace(k, "*", "·", 1), mb(p.barr.MemBytesOp), mb(p.piped.MemBytesOp), cut, speedup)
	}
	if len(singles) > 0 {
		sort.Strings(singles)
		fmt.Fprintln(out)
		fmt.Fprintln(out, "| op | MB moved/op | MB saved/op |")
		fmt.Fprintln(out, "|---|---|---|")
		for _, op := range singles {
			r := probed[op]
			fmt.Fprintf(out, "| %s | %s | %s |\n", op, mb(r.MemBytesOp), mb(r.MemSavedOp))
		}
	}
	return nil
}
