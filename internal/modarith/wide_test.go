package modarith

import (
	"math/big"
	"math/rand"
	"testing"
)

func big128(hi, lo uint64) *big.Int {
	v := new(big.Int).SetUint64(hi)
	v.Lsh(v, 64)
	return v.Or(v, new(big.Int).SetUint64(lo))
}

func TestMul64AddWide(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 2000; iter++ {
		a, b := r.Uint64(), r.Uint64()
		// Seed small enough that a*b never overflows the accumulator.
		hi, lo := r.Uint64()>>2, r.Uint64()
		gotHi, gotLo := Mul64AddWide(a, b, hi, lo)
		want := big128(hi, lo)
		want.Add(want, new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b)))
		want.Mod(want, new(big.Int).Lsh(big.NewInt(1), 128))
		if big128(gotHi, gotLo).Cmp(want) != 0 {
			t.Fatalf("Mul64AddWide(%d, %d, %d, %d) = (%d, %d), want %v", a, b, hi, lo, gotHi, gotLo, want)
		}
	}
}

func TestReduceWide128(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for _, bits := range []int{45, 55, 60} {
		primes, err := GenerateNTTPrimes(bits, 10, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range primes {
			m := MustModulus(q)
			qb := new(big.Int).SetUint64(q)
			check := func(hi, lo uint64) {
				t.Helper()
				want := new(big.Int).Mod(big128(hi, lo), qb).Uint64()
				if got := m.ReduceWide128(hi, lo); got != want {
					t.Fatalf("q=%d ReduceWide128(%d, %d) = %d, want %d", q, hi, lo, got, want)
				}
				lz := m.ReduceWide128Lazy(hi, lo)
				if lz >= m.TwoQ {
					t.Fatalf("q=%d ReduceWide128Lazy(%d, %d) = %d out of [0, 2q)", q, hi, lo, lz)
				}
				if lz != want && lz != want+q {
					t.Fatalf("q=%d lazy %d not congruent to %d", q, lz, want)
				}
			}
			// Adversarial corners of the 128-bit domain.
			for _, pair := range [][2]uint64{
				{0, 0}, {0, q - 1}, {0, q}, {0, 2*q - 1},
				{0, ^uint64(0)}, {^uint64(0), ^uint64(0)},
				{^uint64(0), 0}, {q - 1, q - 1},
			} {
				check(pair[0], pair[1])
			}
			for iter := 0; iter < 2000; iter++ {
				check(r.Uint64(), r.Uint64())
			}
		}
	}
}

func TestVecWideAccumulateChain(t *testing.T) {
	// Full chain differential vs big.Int: VecMulWide + (k-1)×VecMulAccWide
	// + VecReduceWide128[Lazy] computes an exact k-term inner product mod q.
	r := rand.New(rand.NewSource(3))
	primes, err := GenerateNTTPrimes(55, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := MustModulus(primes[0])
	qb := new(big.Int).SetUint64(m.Q)
	const n, k = 37, 16 // 16 terms of 55+55 bits fit 128 bits with slack
	rows := make([][]uint64, k)
	ws := make([]uint64, k)
	want := make([]*big.Int, n)
	for c := range want {
		want[c] = new(big.Int)
	}
	for i := range rows {
		rows[i] = make([]uint64, n)
		ws[i] = r.Uint64() % m.Q
		for c := range rows[i] {
			rows[i][c] = r.Uint64() % m.Q
			term := new(big.Int).Mul(new(big.Int).SetUint64(rows[i][c]), new(big.Int).SetUint64(ws[i]))
			want[c].Add(want[c], term)
		}
	}
	hi := make([]uint64, n)
	lo := make([]uint64, n)
	VecMulWide(hi, lo, rows[0], ws[0])
	for i := 1; i < k; i++ {
		VecMulAccWide(hi, lo, rows[i], ws[i])
	}
	exact := make([]uint64, n)
	lazy := make([]uint64, n)
	m.VecReduceWide128(exact, hi, lo)
	m.VecReduceWide128Lazy(lazy, hi, lo)
	folded := append([]uint64(nil), lo...)
	foldedHi := append([]uint64(nil), hi...)
	m.VecFoldWide128Lazy(foldedHi, folded)
	for c := 0; c < n; c++ {
		w := new(big.Int).Mod(want[c], qb).Uint64()
		if exact[c] != w {
			t.Fatalf("col %d: exact %d want %d", c, exact[c], w)
		}
		if lazy[c] >= m.TwoQ || (lazy[c] != w && lazy[c] != w+m.Q) {
			t.Fatalf("col %d: lazy %d not congruent to %d in [0, 2q)", c, lazy[c], w)
		}
		if foldedHi[c] != 0 || folded[c] >= m.TwoQ || (folded[c] != w && folded[c] != w+m.Q) {
			t.Fatalf("col %d: fold (%d, %d) not a lazy residue of %d", c, foldedHi[c], folded[c], w)
		}
	}
}

func TestVecMulShoup(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	primes, err := GenerateNTTPrimes(60, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := MustModulus(primes[0])
	a := make([]uint64, 65)
	for c := range a {
		a[c] = r.Uint64() % m.Q
	}
	a[0], a[1] = 0, m.Q-1
	w := r.Uint64() % m.Q
	ws := m.ShoupPrecomp(w)
	out := make([]uint64, len(a))
	m.VecMulShoup(out, a, w, ws)
	for c := range a {
		if want := m.MulShoup(a[c], w, ws); out[c] != want {
			t.Fatalf("col %d: got %d want %d", c, out[c], want)
		}
	}
}

func TestVecSubMulShoupLazy(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	primes, err := GenerateNTTPrimes(60, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := MustModulus(primes[0])
	qb := new(big.Int).SetUint64(m.Q)
	n := 64
	a := make([]uint64, n)
	b := make([]uint64, n)
	for c := range a {
		a[c] = r.Uint64() % m.Q
		b[c] = r.Uint64() % m.TwoQ // lazy subtrahend domain
	}
	a[0], b[0] = 0, m.TwoQ-1
	a[1], b[1] = m.Q-1, 0
	w := r.Uint64() % m.Q
	ws := m.ShoupPrecomp(w)
	out := make([]uint64, n)
	m.VecSubMulShoupLazy(out, a, b, w, ws)
	for c := range a {
		want := new(big.Int).Sub(new(big.Int).SetUint64(a[c]), new(big.Int).SetUint64(b[c]))
		want.Mul(want, new(big.Int).SetUint64(w))
		want.Mod(want, qb)
		if out[c] != want.Uint64() {
			t.Fatalf("col %d: (%d - %d)*%d = %d, want %v", c, a[c], b[c], w, out[c], want)
		}
	}
}

func TestVecAddScalarAndRescaleStep(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	primes, err := GenerateNTTPrimes(60, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, mL := MustModulus(primes[0]), MustModulus(primes[1])
	qb := new(big.Int).SetUint64(m.Q)
	n := 64
	a := make([]uint64, n)
	for c := range a {
		a[c] = r.Uint64() % m.Q
	}
	s := r.Uint64() % m.Q
	sum := make([]uint64, n)
	m.VecAddScalar(sum, a, s)
	for c := range a {
		if want := m.Add(a[c], s); sum[c] != want {
			t.Fatalf("VecAddScalar col %d: got %d want %d", c, sum[c], want)
		}
	}

	// VecRescaleStep: t holds arbitrary uint64 values (residues of another,
	// larger modulus), row < q.
	row := make([]uint64, n)
	tRow := make([]uint64, n)
	for c := range row {
		row[c] = r.Uint64() % m.Q
		tRow[c] = r.Uint64() % mL.Q
	}
	row[0], tRow[0] = 0, mL.Q-1
	row[1], tRow[1] = m.Q-1, 0
	half := mL.QHalf % m.Q
	w := r.Uint64() % m.Q
	ws := m.ShoupPrecomp(w)
	want := make([]uint64, n)
	for c := range row {
		v := new(big.Int).SetUint64(row[c])
		v.Add(v, new(big.Int).SetUint64(half))
		v.Sub(v, new(big.Int).SetUint64(tRow[c]))
		v.Mul(v, new(big.Int).SetUint64(w))
		want[c] = v.Mod(v, qb).Uint64()
	}
	m.VecRescaleStep(row, tRow, half, w, ws)
	for c := range row {
		if row[c] != want[c] {
			t.Fatalf("VecRescaleStep col %d: got %d want %d", c, row[c], want[c])
		}
	}
}
