package ckks

import (
	"fmt"
	"sort"
	"time"

	"github.com/anaheim-sim/anaheim/internal/obs"
	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Baby-step/giant-step evaluation of diagonal linear transforms with double
// hoisting (§V-B, Fig 5). Every diagonal offset is factored as
//
//	r = g·bs + b ,  b ∈ [0, bs) ,
//
// and the sweep Σ_r d_r ⊙ σ_r(u) regrouped as
//
//	Σ_g σ_{g·bs}( Σ_b d'_{g,b} ⊙ σ_b(u) ) ,  d'_{g,b}[j] = d_{g·bs+b}[(j − g·bs) mod n] ,
//
// i.e. the encoded diagonals are pre-rotated by −g·bs offline so only the bs
// baby rotations touch the ciphertext inside each giant's inner sum. The baby
// rotations all come from ONE shared decomposition of c1 (hoisting) and their
// key-switched halves stay in the extended QP basis; each giant's inner sum
// is accumulated in QP and key-switched once by the giant rotation with the
// ModDown deferred to the very end (double hoisting). A K-diagonal sweep thus
// pays ~(bs − 1) + ⌈K/bs⌉ − 1 key-switch gadget products instead of K − 1.

// bsgsDiag is one diagonal's factorization: offset r = rot + b with rot the
// owning giant's rotation.
type bsgsDiag struct {
	r int // original diagonal offset (key into LinearTransform.Diags)
	b int // baby offset, r ≡ rot + b (mod slots)
}

// bsgsGiant is one giant step: the rotation g·bs and the diagonals it owns.
type bsgsGiant struct {
	rot   int
	diags []bsgsDiag
}

// bsgsPlan is the materialized factorization of a transform's diagonal set
// for one baby step. It is immutable once built.
type bsgsPlan struct {
	bs     int
	babies []int       // distinct nonzero baby offsets, sorted
	giants []bsgsGiant // sorted by rotation; rot 0 first when present
}

// rotations returns the Galois rotation indices the plan needs: the nonzero
// babies plus the nonzero giant rotations, sorted.
func (pl *bsgsPlan) rotations() []int {
	out := make([]int, 0, len(pl.babies)+len(pl.giants))
	out = append(out, pl.babies...)
	for _, g := range pl.giants {
		if g.rot != 0 {
			out = append(out, g.rot)
		}
	}
	sort.Ints(out)
	return out
}

// keySwitchCount is the number of key-switch gadget products one sweep under
// the plan spends: one per nonzero baby plus one per nonzero giant. This is
// the count the ckks_lintrans_rotations_total counter advances by and the
// quantity the sim's linearHoisted EvkCount models (trace parity).
func (pl *bsgsPlan) keySwitchCount() int {
	n := len(pl.babies)
	for _, g := range pl.giants {
		if g.rot != 0 {
			n++
		}
	}
	return n
}

// newBSGSPlan factors the diagonal set under the given baby step. Iteration
// is over sorted offsets so the plan — and therefore the kernel execution
// order — is deterministic.
func newBSGSPlan(diags map[int][]complex128, n, bs int) *bsgsPlan {
	if bs < 1 {
		return nil
	}
	rs := make([]int, 0, len(diags))
	for r := range diags {
		rs = append(rs, r)
	}
	sort.Ints(rs)

	pl := &bsgsPlan{bs: bs}
	babySet := make(map[int]bool)
	giantIdx := make(map[int]int)
	for _, r := range rs {
		b := r % bs
		rot := r - b
		gi, ok := giantIdx[rot]
		if !ok {
			gi = len(pl.giants)
			giantIdx[rot] = gi
			pl.giants = append(pl.giants, bsgsGiant{rot: rot})
		}
		pl.giants[gi].diags = append(pl.giants[gi].diags, bsgsDiag{r: r, b: b})
		if b != 0 {
			babySet[b] = true
		}
	}
	for b := range babySet {
		pl.babies = append(pl.babies, b)
	}
	sort.Ints(pl.babies)
	sort.Slice(pl.giants, func(i, j int) bool { return pl.giants[i].rot < pl.giants[j].rot })
	return pl
}

// sweepShape counts the key-switch primitives one linear-transform sweep
// executes; sweepRowCost prices it. The diagonal PMULT/accumulate volume is
// identical across strategies (each diagonal is multiplied exactly once), so
// it is omitted — only relative order matters, as in planCost.
type sweepShape struct {
	decomps  int // ModUp decompositions (INTT + per-digit BConv + NTT)
	gadgets  int // key-switch gadget products (KeyMult MACs)
	modDowns int // ModDown compound ops
	giants   int // nonzero giant steps (σ + add epilogue over QP)
}

// sweepRowCost models the limb-row transform volume of a sweep at level lvl,
// in the same units as planCost: a decomposition is ~Digits passes over the
// extended basis plus the source INTT, a gadget product 2·Digits extended
// passes, a ModDown one pass over P plus Q, and a giant epilogue one σ+add
// pass over the QP accumulators. The legacy plan shape is used so the choice
// is deterministic and independent of the level-aware toggle.
func sweepRowCost(p *Parameters, lvl int, s sweepShape) int {
	pl := p.LegacyPlanAt(lvl)
	ext := lvl + 1 + pl.Alpha
	decompRows := pl.Digits*ext + lvl + 1
	gadgetRows := 2 * pl.Digits * ext
	modDownRows := pl.Alpha + lvl + 1
	giantRows := 2*ext + lvl + 1
	return s.decomps*decompRows + s.gadgets*gadgetRows + s.modDowns*modDownRows + s.giants*giantRows
}

// bsgsShape returns the sweep shape of evaluating the diagonal set with baby
// step bs: (1 + G₁) decompositions, (B₁ + G₁) gadget products, (G₁ + 2)
// ModDowns and G₁ giant epilogues, where B₁/G₁ are the distinct nonzero baby
// and giant counts. G₁ == 0 means the factorization degenerates to the
// per-diagonal hoisted sweep.
func bsgsShape(diags map[int][]complex128, bs int) (sweepShape, bool) {
	babies := make(map[int]bool)
	giants := make(map[int]bool)
	for r := range diags {
		b := r % bs
		if b != 0 {
			babies[b] = true
		}
		if rot := r - b; rot != 0 {
			giants[rot] = true
		}
	}
	g1 := len(giants)
	if g1 == 0 {
		return sweepShape{}, false
	}
	return sweepShape{
		decomps:  1 + g1,
		gadgets:  len(babies) + g1,
		modDowns: g1 + 2,
		giants:   g1,
	}, true
}

// selectBabyStep picks the baby step minimizing the modeled row cost at the
// top level (the DFT sweeps run near the top of the chain, and a fixed level
// keeps the choice — and hence the Galois key set — stable across the
// ciphertext's descent). Candidates are the powers of two below the slot
// count: the bootstrap DFT diagonals are symmetric sets of power-of-two
// multiples, which power-of-two baby steps tile exactly. Returns 0 when the
// per-diagonal hoisted sweep is never beaten.
func (lt *LinearTransform) selectBabyStep(p *Parameters) int {
	nonzero := 0
	for r := range lt.Diags {
		if r != 0 {
			nonzero++
		}
	}
	if nonzero <= 2 {
		return 0
	}
	lvl := p.MaxLevel()
	bestBS := 0
	bestCost := sweepRowCost(p, lvl, sweepShape{decomps: 1, gadgets: nonzero, modDowns: 2})
	for bs := 2; bs < lt.Slots; bs <<= 1 {
		shape, ok := bsgsShape(lt.Diags, bs)
		if !ok {
			continue
		}
		if c := sweepRowCost(p, lvl, shape); c < bestCost {
			bestCost, bestBS = c, bs
		}
	}
	return bestBS
}

// SetBabyStep overrides the cost model's baby-step choice: bs > 0 forces the
// BSGS factorization with that baby step, bs < 0 forces the per-diagonal
// hoisted sweep, bs == 0 restores the automatic choice. Pre-rotated encodings
// cached for a previous baby step are dropped.
func (lt *LinearTransform) SetBabyStep(bs int) {
	lt.bsgsMu.Lock()
	switch {
	case bs > 0:
		lt.bsgsOverride = bs
	case bs < 0:
		lt.bsgsOverride = -1
	default:
		lt.bsgsOverride = 0
	}
	lt.bsgsReady = false
	lt.bsgsSel = nil
	lt.bsgsMu.Unlock()
	lt.dropPreRotated()
}

// bsgsPlanFor returns the transform's BSGS plan under the parameters, or nil
// when the per-diagonal hoisted sweep is the better (or forced) strategy. The
// plan is computed once and cached; SetBabyStep invalidates it.
func (lt *LinearTransform) bsgsPlanFor(p *Parameters) *bsgsPlan {
	lt.bsgsMu.Lock()
	defer lt.bsgsMu.Unlock()
	if lt.bsgsOverride < 0 {
		return nil
	}
	if lt.bsgsOverride > 0 {
		if lt.bsgsSel == nil || lt.bsgsSel.bs != lt.bsgsOverride {
			lt.bsgsSel = newBSGSPlan(lt.Diags, lt.Slots, lt.bsgsOverride)
		}
		return lt.bsgsSel
	}
	if !lt.bsgsReady {
		if bs := lt.selectBabyStep(p); bs > 0 {
			lt.bsgsSel = newBSGSPlan(lt.Diags, lt.Slots, bs)
		}
		lt.bsgsReady = true
	}
	return lt.bsgsSel
}

// GaloisKeysForLinearTransform returns the rotation indices the evaluator's
// selected strategy needs for the given transforms: the baby ∪ giant set for
// BSGS-eligible transforms, the raw diagonal offsets otherwise. Generating
// exactly these keys is what turns the BSGS rotation saving into an
// evaluation-key memory saving too (≤ bs + ⌈K/bs⌉ keys instead of K).
func GaloisKeysForLinearTransform(p *Parameters, lts ...*LinearTransform) []int {
	set := make(map[int]bool)
	for _, lt := range lts {
		if plan := lt.bsgsPlanFor(p); plan != nil {
			for _, r := range plan.rotations() {
				set[r] = true
			}
		} else {
			for _, r := range lt.Rotations() {
				set[r] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// hasGaloisKeys reports whether every listed rotation has a Galois key.
func (ev *Evaluator) hasGaloisKeys(rotations []int) bool {
	rq := ev.params.RingQ()
	for _, r := range rotations {
		if _, err := ev.keys.GaloisKey(rq.GaloisElement(r)); err != nil {
			return false
		}
	}
	return true
}

// EvaluateLinearTransform computes M·u with the cheapest available strategy:
// the BSGS double-hoisted sweep when the cost model selects it and the baby +
// giant Galois keys are present (they are when the key set was generated via
// GaloisKeysForLinearTransform), else the per-diagonal hoisted sweep — so
// callers holding only per-diagonal keys keep working unchanged.
func (ev *Evaluator) EvaluateLinearTransform(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	if plan := lt.bsgsPlanFor(ev.params); plan != nil && ev.hasGaloisKeys(plan.rotations()) {
		return ev.EvaluateLinearTransformBSGS(ct, lt, enc)
	}
	return ev.EvaluateLinearTransformHoisted(ct, lt, enc)
}

// giantAcc holds one giant step's accumulators. The baby-rotated key-switched
// halves accumulate in the extended QP basis (t*), the σ_b(c0) products and
// the unrotated (b == 0) c1 product stay in Q (a0/a1) — the same Q-vs-QP
// split as the hoisted sweep, but per giant. For the rotation-0 giant the
// fields alias the sweep's final accumulators directly, so its contributions
// skip the giant epilogue entirely.
type giantAcc struct {
	t0q, t1q *ring.Poly // QP accumulators, Q half
	t0p, t1p *ring.Poly // QP accumulators, P half
	a0q      *ring.Poly // Q basis: Σ pt ⊙ σ_b(c0) over the giant's diagonals
	a1q      *ring.Poly // Q basis: pt ⊙ c1 for the giant's b == 0 diagonal
	ext      bool       // some b != 0 diagonal contributed (t* live)
	hasA0    bool       // a0q carries content
	hasA1    bool       // a1q carries content
}

// bsgsBabyTarget is one (giant, diagonal) MAC set inside a baby's block: the
// five accumulators the baby's key-switched halves and c0 are multiplied
// into, and the pre-rotated plaintext doing the multiplying.
type bsgsBabyTarget struct {
	acc      *giantAcc
	ptQ, ptP *ring.Poly
}

// EvaluateLinearTransformBSGS computes M·u with the baby-step/giant-step
// double-hoisting strategy. Falls back to the per-diagonal hoisted sweep when
// the cost model rejects the factorization. The output scale is
// ct.Scale · q_lvl, exactly like the hoisted sweep, so the caller's Rescale
// restores the input scale.
func (ev *Evaluator) EvaluateLinearTransformBSGS(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	plan := lt.bsgsPlanFor(ev.params)
	if plan == nil {
		return ev.EvaluateLinearTransformHoisted(ct, lt, enc)
	}
	fused := FusionEnabled()
	piped := pipelineActive()
	defer obsLinTransBSGS.done(time.Now())
	sweep := obs.DefaultTracer.Start("lintrans-bsgs", 0)
	sweep.Annotate(fmt.Sprintf("bs=%d diags=%d ks=%d", plan.bs, len(lt.Diags), plan.keySwitchCount()))
	defer sweep.End()

	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := ct.Level()
	ptScale := float64(rq.Moduli[lvl].Q)

	diags, err := lt.encodedBSGSAt(enc, lvl, ptScale, plan)
	if err != nil {
		return nil, err
	}

	// Resolve every Galois key before decomposing: the hoisted digits are
	// shared across all baby rotations, so the gadget plan (and its per-key
	// band check) must see the full baby + giant key list up front.
	babyKeys := make(map[int]*SwitchingKey, len(plan.babies))
	planKeys := make([]*SwitchingKey, 0, len(plan.babies)+len(plan.giants))
	for _, b := range plan.babies {
		swk, err := ev.keys.GaloisKey(rq.GaloisElement(b))
		if err != nil {
			return nil, err
		}
		babyKeys[b] = swk
		planKeys = append(planKeys, swk)
	}
	giantKeys := make(map[int]*SwitchingKey, len(plan.giants))
	for _, g := range plan.giants {
		if g.rot == 0 {
			continue
		}
		swk, err := ev.keys.GaloisKey(rq.GaloisElement(g.rot))
		if err != nil {
			return nil, err
		}
		giantKeys[g.rot] = swk
		planKeys = append(planKeys, swk)
	}
	gpl := ev.planFor(lvl, planKeys...)
	lvlP := gpl.Alpha - 1

	dec := ev.decomposePlan(ct.C1, lvl, gpl)
	defer dec.release(p)

	// Final accumulators (same roles as the hoisted sweep's). The rotation-0
	// giant writes them directly — its inner sum needs no giant rotation.
	accE0q, accE1q := rq.NewPoly(lvl), rq.NewPoly(lvl)
	accE0p, accE1p := rp.NewPoly(lvlP), rp.NewPoly(lvlP)
	accQ0, accQ1 := rq.NewPoly(lvl), rq.NewPoly(lvl)
	accE0q.IsNTT, accE1q.IsNTT, accE0p.IsNTT, accE1p.IsNTT = true, true, true, true
	accQ0.IsNTT, accQ1.IsNTT = true, true

	newQP := func() (q0, q1, p0, p1 *ring.Poly) {
		q0, q1 = rq.NewPoly(lvl), rq.NewPoly(lvl)
		p0, p1 = rp.NewPoly(lvlP), rp.NewPoly(lvlP)
		q0.IsNTT, q1.IsNTT, p0.IsNTT, p1.IsNTT = true, true, true, true
		return
	}
	accs := make([]*giantAcc, len(plan.giants))
	for i, g := range plan.giants {
		if g.rot == 0 {
			accs[i] = &giantAcc{
				t0q: accE0q, t1q: accE1q, t0p: accE0p, t1p: accE1p,
				a0q: accQ0, a1q: accQ1,
			}
		} else {
			accs[i] = &giantAcc{}
		}
	}
	ensureExt := func(ga *giantAcc) {
		if ga.t0q == nil {
			ga.t0q, ga.t1q, ga.t0p, ga.t1p = newQP()
		}
		ga.ext = true
	}
	ensureA := func(ga *giantAcc) {
		if ga.a0q == nil {
			ga.a0q, ga.a1q = rq.NewPoly(lvl), rq.NewPoly(lvl)
			ga.a0q.IsNTT, ga.a1q.IsNTT = true, true
		}
	}

	// Group the plan's (giant, diagonal) pairs by baby offset: each baby pays
	// one gadget product from the shared decomposition and its key-switched
	// halves are multiplied into every giant owning a diagonal at rot + b.
	perBaby := make(map[int][]bsgsBabyTarget)
	for i, g := range plan.giants {
		for _, d := range g.diags {
			ed, ok := diags[d.r]
			if !ok {
				return nil, fmt.Errorf("ckks: bsgs encoding missing diagonal %d", d.r)
			}
			perBaby[d.b] = append(perBaby[d.b], bsgsBabyTarget{acc: accs[i], ptQ: ed.q, ptP: ed.p})
		}
	}

	// Baby offset 0: no rotation — the products land in the giant's Q-basis
	// accumulators directly (for the rotation-0 giant this is the classic
	// r == 0 term).
	for _, tg := range perBaby[0] {
		ga := tg.acc
		ensureA(ga)
		if fused {
			rq.MulCoeffsAddLazy(ga.a0q, ct.C0, tg.ptQ, lvl)
			rq.MulCoeffsAddLazy(ga.a1q, ct.C1, tg.ptQ, lvl)
		} else {
			rq.MulCoeffsAdd(ga.a0q, ct.C0, tg.ptQ, lvl)
			rq.MulCoeffsAdd(ga.a1q, ct.C1, tg.ptQ, lvl)
		}
		ga.hasA0, ga.hasA1 = true, true
	}

	// Baby step: one gadget product per distinct nonzero baby offset, shared
	// across every giant consuming it. The key-switched halves stay in the
	// extended QP basis — no per-baby ModDown (first hoisting level).
	for _, b := range plan.babies {
		targets := perBaby[b]
		for _, tg := range targets {
			ensureExt(tg.acc)
			ensureA(tg.acc)
			tg.acc.hasA0 = true
		}
		g := rq.GaloisElement(b)
		swk := babyKeys[b]
		obsLinTransRotations.Inc()
		if piped {
			ev.babyAccumPipelined(dec, swk, targets, ct.C0, g)
			continue
		}
		if fused {
			u0q, u1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
			u0p, u1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
			u0q.IsNTT, u1q.IsNTT, u0p.IsNTT, u1p.IsNTT = true, true, true, true
			ev.gadgetProductLazyInto(dec, swk, u0q, u1q, u0p, u1p)
			for _, tg := range targets {
				ga := tg.acc
				rq.AutMulCoeffsAddLazy(ga.t0q, u0q, tg.ptQ, g, lvl)
				rq.AutMulCoeffsAddLazy(ga.t1q, u1q, tg.ptQ, g, lvl)
				rp.AutMulCoeffsAddLazy(ga.t0p, u0p, tg.ptP, g, lvlP)
				rp.AutMulCoeffsAddLazy(ga.t1p, u1p, tg.ptP, g, lvlP)
				rq.AutMulCoeffsAddLazy(ga.a0q, ct.C0, tg.ptQ, g, lvl)
			}
			rq.PutPoly(u0q)
			rq.PutPoly(u1q)
			rp.PutPoly(u0p)
			rp.PutPoly(u1p)
			continue
		}
		// Unfused: rotate the key-switched halves (and c0) once per baby,
		// then exact PMULT+accumulate passes per consuming giant.
		u0q, u0p, u1q, u1p := ev.gadgetProduct(dec, swk)
		rot0q, rot1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
		rot0p, rot1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
		rq.AutomorphismNTT(rot0q, u0q, g, lvl)
		rq.AutomorphismNTT(rot1q, u1q, g, lvl)
		rp.AutomorphismNTT(rot0p, u0p, g, lvlP)
		rp.AutomorphismNTT(rot1p, u1p, g, lvlP)
		rq.PutPoly(u0q)
		rq.PutPoly(u1q)
		rp.PutPoly(u0p)
		rp.PutPoly(u1p)
		rotC0 := rq.GetPoly(lvl)
		rq.AutomorphismNTT(rotC0, ct.C0, g, lvl)
		for _, tg := range targets {
			ga := tg.acc
			rq.MulCoeffsAdd(ga.t0q, rot0q, tg.ptQ, lvl)
			rq.MulCoeffsAdd(ga.t1q, rot1q, tg.ptQ, lvl)
			rp.MulCoeffsAdd(ga.t0p, rot0p, tg.ptP, lvlP)
			rp.MulCoeffsAdd(ga.t1p, rot1p, tg.ptP, lvlP)
			rq.MulCoeffsAdd(ga.a0q, rotC0, tg.ptQ, lvl)
		}
		rq.PutPoly(rot0q)
		rq.PutPoly(rot1q)
		rp.PutPoly(rot0p)
		rp.PutPoly(rot1p)
		rq.PutPoly(rotC0)
	}

	// Phase boundary: normalize every lazy accumulator once, so the giant
	// phase can mix exact adds and σ permutations freely.
	if fused {
		var qs, ps []*ring.Poly
		for _, ga := range accs {
			if ga.ext {
				qs = append(qs, ga.t0q, ga.t1q)
				ps = append(ps, ga.t0p, ga.t1p)
			}
			if ga.hasA0 || ga.hasA1 {
				qs = append(qs, ga.a0q, ga.a1q)
			}
		}
		if piped {
			ev.reduceManyPipelined(qs, lvl, ps, lvlP)
		} else {
			for _, q := range qs {
				rq.ReduceLazy(q, lvl)
			}
			for _, pp := range ps {
				rp.ReduceLazy(pp, lvlP)
			}
		}
	}

	// Giant step: key-switch each nonzero giant's inner sum once by its
	// rotation. The inner sum's c1 is reconstructed in Q (one ModDown of the
	// baby accumulators plus the b == 0 term), decomposed, and the gadget
	// product's v0 half accumulates straight onto the giant's T0 so the σ_g
	// permutation applies to the sum once — the final ModDown of the whole
	// sweep stays deferred (second hoisting level).
	anyExt := false
	for i, g := range plan.giants {
		ga := accs[i]
		if g.rot == 0 {
			if ga.ext {
				anyExt = true
			}
			continue
		}
		anyExt = true
		span := obs.DefaultTracer.Start("lintrans-giant", sweep.ID())
		span.Annotate(fmt.Sprintf("rot=%d diags=%d", g.rot, len(g.diags)))

		var t1 *ring.Poly
		if ga.ext {
			t1 = ev.ModDown(ga.t1q, ga.t1p, lvl)
			if ga.hasA1 {
				rq.Add(t1, t1, ga.a1q, lvl)
			}
		} else {
			t1 = ga.a1q
		}
		if !ga.ext {
			// Giant with only a b == 0 diagonal: fresh zero QP accumulators
			// receive the gadget product alone.
			ga.t0q, ga.t1q, ga.t0p, ga.t1p = newQP()
		}

		decG := ev.decomposePlan(t1, lvl, gpl)
		obsLinTransRotations.Inc()
		gk := giantKeys[g.rot]
		gal := rq.GaloisElement(g.rot)

		w1q, w1p := rq.NewPoly(lvl), rp.NewPoly(lvlP)
		w1q.IsNTT, w1p.IsNTT = true, true
		if piped {
			// gadgetProductPipelined reduces its accumulators on exit, so the
			// σ+add epilogue below reads exact values.
			ev.gadgetProductPipelined(decG, gk, ga.t0q, w1q, ga.t0p, w1p)
		} else if fused {
			ev.gadgetProductLazyInto(decG, gk, ga.t0q, w1q, ga.t0p, w1p)
			rq.ReduceLazy(ga.t0q, lvl)
			rq.ReduceLazy(w1q, lvl)
			rp.ReduceLazy(ga.t0p, lvlP)
			rp.ReduceLazy(w1p, lvlP)
		} else {
			v0q, v0p, v1q, v1p := ev.gadgetProduct(decG, gk)
			rq.Add(ga.t0q, ga.t0q, v0q, lvl)
			rp.Add(ga.t0p, ga.t0p, v0p, lvlP)
			rq.Add(w1q, w1q, v1q, lvl)
			rp.Add(w1p, w1p, v1p, lvlP)
			rq.PutPoly(v0q)
			rq.PutPoly(v1q)
			rp.PutPoly(v0p)
			rp.PutPoly(v1p)
		}
		decG.release(p)

		// σ_g the giant's three partial results into the sweep accumulators.
		if piped {
			var a0 *ring.Poly
			if ga.hasA0 {
				a0 = ga.a0q
			}
			ev.giantAccumPipelined(ga.t0q, w1q, ga.t0p, w1p, a0, accE0q, accE1q, accE0p, accE1p, accQ0, gal)
		} else {
			tmpQ := rq.GetPoly(lvl)
			rq.AutomorphismNTT(tmpQ, ga.t0q, gal, lvl)
			rq.Add(accE0q, accE0q, tmpQ, lvl)
			rq.AutomorphismNTT(tmpQ, w1q, gal, lvl)
			rq.Add(accE1q, accE1q, tmpQ, lvl)
			if ga.hasA0 {
				rq.AutomorphismNTT(tmpQ, ga.a0q, gal, lvl)
				rq.Add(accQ0, accQ0, tmpQ, lvl)
			}
			rq.PutPoly(tmpQ)
			tmpP := rp.GetPoly(lvlP)
			rp.AutomorphismNTT(tmpP, ga.t0p, gal, lvlP)
			rp.Add(accE0p, accE0p, tmpP, lvlP)
			rp.AutomorphismNTT(tmpP, w1p, gal, lvlP)
			rp.Add(accE1p, accE1p, tmpP, lvlP)
			rp.PutPoly(tmpP)
		}
		span.End()
	}

	out := &Ciphertext{Scale: ct.Scale * ptScale}
	if anyExt {
		if piped {
			out.C0, out.C1 = ev.modDownPairPipelined(accE0q, accE0p, accE1q, accE1p, accQ0, accQ1, lvl)
		} else {
			d0 := ev.ModDown(accE0q, accE0p, lvl)
			d1 := ev.ModDown(accE1q, accE1p, lvl)
			rq.Add(d0, d0, accQ0, lvl)
			rq.Add(d1, d1, accQ1, lvl)
			out.C0, out.C1 = d0, d1
		}
	} else {
		out.C0, out.C1 = accQ0, accQ1
	}
	return out, nil
}
