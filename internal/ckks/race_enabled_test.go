//go:build race

package ckks

// raceEnabled reports whether the race detector is active; its runtime
// instrumentation adds allocations, so AllocsPerRun assertions skip under it.
const raceEnabled = true
