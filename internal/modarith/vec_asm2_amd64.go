//go:build amd64 && !noasm

package modarith

// AVX2 kernels (4 lanes). vec_avx2_amd64.s. The tier registers 10 kernels:
// the Shoup-multiply family, butterflies, wide accumulation and the
// reductions. The Barrett-multiply family, mulAddLazyIdx and rescaleStep are
// left nil and fall back per-kernel to Go via fillDefaults — the Barrett
// quotient needs three synthesized 128-bit multiplies per element (~30
// VPMULUDQ-ladder instructions), which measures ~25% SLOWER than the scalar
// MULX path.
//
// The whole tier is OPT-IN (optIn below): measured end to end, it loses to
// the compiler's scalar code everywhere it matters on our hosts — a full
// n=2^12 forward transform runs ~3.5x slower than the Go tier (the constant
// broadcast preamble dominates the many short butterfly spans) and a 16->16
// limb n=2^14 BConv ~1.3x slower, against AVX-512's 1.4x/2x wins on the
// same cells. It is never auto-selected; ANAHEIM_KERNEL_TIER=avx2 or
// SetKernelTier(TierAVX2) pin it for differential testing and benchmarking
// (the per-tier micro rows keep the loss on the record). AVX-512 covers all
// 16 kernels (VPMULLQ + native masks) and is the amd64 tier that ships.

//go:noescape
func vecMulShoupAVX2(out, a []uint64, w, wShoup, q uint64)

//go:noescape
func vecSubMulShoupLazyAVX2(out, a, b []uint64, w, wShoup, q, twoQ uint64)

//go:noescape
func vecMulWideAVX2(accHi, accLo, row []uint64, w uint64)

//go:noescape
func vecMulAccWideAVX2(accHi, accLo, row []uint64, w uint64)

//go:noescape
func vecFoldWide128LazyAVX2(accHi, accLo []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecReduceWide128AVX2(dst, accHi, accLo []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecReduceWide128LazyAVX2(dst, accHi, accLo []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecReduceTwoQAVX2(p []uint64, q uint64)

//go:noescape
func vecFwdButterflyAVX2(x, y []uint64, w, wShoup, q, twoQ uint64)

//go:noescape
func vecInvButterflyAVX2(x, y []uint64, w, wShoup, q, twoQ uint64)

func avx2Table() kernelTable {
	return kernelTable{
		tier:  TierAVX2,
		optIn: true, // net loss vs scalar Go end to end; see file header
		mulShoup: func(m Modulus, out, a []uint64, w, wShoup uint64) {
			n := len(a) &^ 3
			if n > 0 {
				vecMulShoupAVX2(out[:n], a[:n], w, wShoup, m.Q)
			}
			if n < len(a) {
				vecMulShoupGo(m, out[n:], a[n:], w, wShoup)
			}
		},
		subMulShoupLazy: func(m Modulus, out, a, b []uint64, w, wShoup uint64) {
			n := len(a) &^ 3
			if n > 0 {
				vecSubMulShoupLazyAVX2(out[:n], a[:n], b[:n], w, wShoup, m.Q, m.TwoQ)
			}
			if n < len(a) {
				vecSubMulShoupLazyGo(m, out[n:], a[n:], b[n:], w, wShoup)
			}
		},
		mulWide: func(accHi, accLo, row []uint64, w uint64) {
			n := len(row) &^ 3
			if n > 0 {
				vecMulWideAVX2(accHi[:n], accLo[:n], row[:n], w)
			}
			if n < len(row) {
				vecMulWideGo(accHi[n:], accLo[n:], row[n:], w)
			}
		},
		mulAccWide: func(accHi, accLo, row []uint64, w uint64) {
			n := len(row) &^ 3
			if n > 0 {
				vecMulAccWideAVX2(accHi[:n], accLo[:n], row[:n], w)
			}
			if n < len(row) {
				vecMulAccWideGo(accHi[n:], accLo[n:], row[n:], w)
			}
		},
		foldWide128Lazy: func(m Modulus, accHi, accLo []uint64) {
			n := len(accLo) &^ 3
			if n > 0 {
				vecFoldWide128LazyAVX2(accHi[:n], accLo[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(accLo) {
				vecFoldWide128LazyGo(m, accHi[n:], accLo[n:])
			}
		},
		reduceWide128: func(m Modulus, dst, accHi, accLo []uint64) {
			n := len(dst) &^ 3
			if n > 0 {
				vecReduceWide128AVX2(dst[:n], accHi[:n], accLo[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(dst) {
				vecReduceWide128Go(m, dst[n:], accHi[n:], accLo[n:])
			}
		},
		reduceWide128Lazy: func(m Modulus, dst, accHi, accLo []uint64) {
			n := len(dst) &^ 3
			if n > 0 {
				vecReduceWide128LazyAVX2(dst[:n], accHi[:n], accLo[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(dst) {
				vecReduceWide128LazyGo(m, dst[n:], accHi[n:], accLo[n:])
			}
		},
		reduceTwoQ: func(m Modulus, p []uint64) {
			n := len(p) &^ 3
			if n > 0 {
				vecReduceTwoQAVX2(p[:n], m.Q)
			}
			if n < len(p) {
				vecReduceTwoQGo(m, p[n:])
			}
		},
		fwdButterfly: func(m Modulus, x, y []uint64, w, wShoup uint64) {
			if len(x) > 0 { // len is a multiple of 4 by the Vec*Butterfly contract
				vecFwdButterflyAVX2(x, y[:len(x)], w, wShoup, m.Q, m.TwoQ)
			}
		},
		invButterfly: func(m Modulus, x, y []uint64, w, wShoup uint64) {
			if len(x) > 0 {
				vecInvButterflyAVX2(x, y[:len(x)], w, wShoup, m.Q, m.TwoQ)
			}
		},
	}
}
