package experiments

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/report"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

// --- Fig 9 -------------------------------------------------------------------

// Fig9Point is one (config, instruction, B) microbenchmark sample.
type Fig9Point struct {
	Config    string
	Op        pim.Opcode
	K         int
	B         int
	Supported bool
	Speedup   float64
	EnergyEff float64
}

// Fig9 sweeps every Table II instruction over buffer sizes B in 4..64 on
// all three PIM configurations.
func Fig9() ([]Fig9Point, *report.Table) {
	var out []Fig9Point
	tbl := &report.Table{
		Title:   "Fig 9: PIM instruction microbenchmark vs data buffer entries B",
		Headers: []string{"Config", "Instr", "B=4", "B=8", "B=16", "B=32", "B=64"},
	}
	bs := []int{4, 8, 16, 32, 64}
	for _, u := range []pim.UnitConfig{pim.A100NearBank(), pim.A100CustomHBM(), pim.RTX4090NearBank()} {
		for _, op := range pim.AllOpcodes() {
			k := 0
			if op == pim.PAccum {
				k = 4
			}
			if op == pim.CAccum {
				k = 8
			}
			row := []string{u.Name, op.String()}
			for _, b := range bs {
				mb := u.RunMicrobenchmark(op, k, b)
				out = append(out, Fig9Point{u.Name, op, k, b, mb.Supported, mb.Speedup, mb.EnergyEff})
				if mb.Supported {
					row = append(row, fmt.Sprintf("%.2fx/%.1fx", mb.Speedup, mb.EnergyEff))
				} else {
					row = append(row, "n/s")
				}
			}
			tbl.AddRow(row...)
		}
	}
	tbl.AddNote("cells: speedup/energy-efficiency vs GPU; n/s = unsupported at that B (buffer too small)")
	tbl.AddNote("paper: 1.65-10.33x speedups, 2.63-17.39x energy at default B; PAccum 7.26x and CAccum 10.33x on A100 NB")
	return out, tbl
}

// --- Fig 10 ------------------------------------------------------------------

// Fig10Metrics is one (platform, workload, configuration) sample of the
// sensitivity study.
type Fig10Metrics struct {
	Platform string
	Workload string
	Variant  string
	TimeMs   float64
	EWMs     float64
	EDP      float64
}

// fig10Variants enumerates the incremental configurations of Fig 10.
func fig10Variants(pimOn bool) []struct {
	Name string
	Opt  trace.Options
} {
	base := trace.Options{Hoist: true, PIM: pimOn}
	bf := base
	bf.BasicFuse = true
	af := bf
	af.AutFuse = true
	v := []struct {
		Name string
		Opt  trace.Options
	}{
		{"Base", base},
		{"+BasicFuse", bf},
		{"+AutFuse", af},
	}
	if !pimOn {
		xf := af
		xf.ExtraFuse = true
		v = append(v, struct {
			Name string
			Opt  trace.Options
		}{"+ExtraFuse", xf})
	}
	return v
}

// Fig10 runs the fusion sensitivity study (and the w/o CP layout ablation)
// on both near-bank platforms.
func Fig10() ([]Fig10Metrics, *report.Table) {
	p := trace.PaperParams()
	var out []Fig10Metrics
	tbl := &report.Table{
		Title:   "Fig 10: sensitivity to kernel fusion and the column-partitioning layout",
		Headers: []string{"Platform", "Workload", "Variant", "time", "EW time", "EDP"},
	}
	plats := []struct {
		name string
		g    gpu.Config
		u    *pim.UnitConfig
	}{
		{"A100 GPU-only", gpu.A100(), nil},
		{"A100 near-bank", gpu.A100(), ptr(pim.A100NearBank())},
		{"RTX4090 GPU-only", gpu.RTX4090(), nil},
		{"RTX4090 near-bank", gpu.RTX4090(), ptr(pim.RTX4090NearBank())},
	}
	for _, pl := range plats {
		for _, w := range []string{"Boot", "HELR"} {
			wl, _ := workloads.ByName(w)
			if workloads.FootprintGB(w, p) > pl.g.DRAM.CapacityGB {
				continue
			}
			for _, v := range fig10Variants(pl.u != nil) {
				r := sched.Run(wl.Gen(p, v.Opt), sched.Config{GPU: pl.g, Lib: gpu.Cheddar(), PIM: pl.u})
				m := Fig10Metrics{pl.name, w, v.Name, r.TimeMs(), r.ClassTimeNs[trace.ClassEW] / 1e6, r.EDP()}
				out = append(out, m)
				tbl.AddRow(pl.name, w, v.Name, report.Ms(r.TimeNs), report.F(m.EWMs, 2)+"ms", report.F(m.EDP, 1))
			}
			// Layout ablation: all algorithms on, naive contiguous layout.
			if pl.u != nil {
				r := sched.Run(wl.Gen(p, trace.AnaheimDefault()),
					sched.Config{GPU: pl.g, Lib: gpu.Cheddar(), PIM: pl.u, NaiveLayout: true})
				m := Fig10Metrics{pl.name, w, "w/o CP", r.TimeMs(), r.ClassTimeNs[trace.ClassEW] / 1e6, r.EDP()}
				out = append(out, m)
				tbl.AddRow(pl.name, w, "w/o CP", report.Ms(r.TimeNs), report.F(m.EWMs, 2)+"ms", report.F(m.EDP, 1))
			}
		}
	}
	tbl.AddNote("paper: w/o CP slows element-wise ops 2.24x (A100) / 2.11x (4090) geomean, nullifying the gains")
	return out, tbl
}

func ptr(u pim.UnitConfig) *pim.UnitConfig { return &u }

// --- Table III ---------------------------------------------------------------

// Table3 prints the modeled hardware configurations.
func Table3() *report.Table {
	tbl := &report.Table{
		Title: "Table III: tested GPUs and Anaheim configurations",
		Headers: []string{"Config", "DRAM", "banks", "PIM clock", "B", "BW incr",
			"area mm2/die", "area %"},
	}
	for _, u := range []pim.UnitConfig{pim.A100NearBank(), pim.A100CustomHBM(), pim.RTX4090NearBank()} {
		tbl.AddRow(u.Name, u.DRAM.Name, fmt.Sprint(u.DRAM.TotalBanks()),
			fmt.Sprintf("%.0fMHz", u.ClockMHz), fmt.Sprint(u.BufferSize),
			fmt.Sprintf("%.0fx", u.BWIncrease), report.F(u.AreaMM2PerDie, 2),
			report.F(100*u.AreaPortion, 2))
	}
	return tbl
}

// --- Table IV ----------------------------------------------------------------

// Table4 prints the default CKKS parameters.
func Table4() *report.Table {
	p := trace.PaperParams()
	tbl := &report.Table{
		Title:   "Table IV: default parameters",
		Headers: []string{"N", "primes", "L", "alpha", "D", "Delta", "H_d", "H_s", "lambda"},
	}
	tbl.AddRow("2^16", "< 2^28", fmt.Sprint(p.L), fmt.Sprint(p.Alpha), fmt.Sprint(p.D),
		"2^48 (double-prime)", "2^8", "2^5", ">= 128")
	return tbl
}

// --- Table V -----------------------------------------------------------------

// Table5Row is one proposal's reported workload times.
type Table5Row struct {
	Proposal string
	Measured bool // measured by this simulator vs reported by the paper
	BootMs   float64
	HELRMs   float64
	R20s     float64
	SortS    float64
}

// Table5 runs Anaheim's rows and reproduces the paper-reported rows of prior
// work for comparison.
func Table5() ([]Table5Row, *report.Table) {
	p := trace.PaperParams()
	prior := []Table5Row{
		{Proposal: "100x (V100) [38]", BootMs: 328, HELRMs: 775},
		{Proposal: "TensorFHE (A100) [28]", BootMs: 250, HELRMs: 1007, R20s: 4.94},
		{Proposal: "GME (MI100) [74]", BootMs: 33.6, HELRMs: 54.5, R20s: 0.98},
		{Proposal: "FAB (FPGA) [3]", BootMs: 477, HELRMs: 103},
		{Proposal: "Poseidon (FPGA) [78]", BootMs: 128, HELRMs: 72.9, R20s: 2.66},
		{Proposal: "CraterLake (ASIC) [72]", BootMs: 6.33, HELRMs: 3.81, R20s: 0.32},
		{Proposal: "BTS (ASIC) [47]", BootMs: 28.6, HELRMs: 28.4, R20s: 1.91, SortS: 15.6},
		{Proposal: "ARK (ASIC) [46]", BootMs: 3.52, HELRMs: 7.42, R20s: 0.13, SortS: 1.99},
		{Proposal: "SHARP (ASIC) [45]", BootMs: 3.12, HELRMs: 2.53, R20s: 0.10, SortS: 1.38},
	}
	configs := []struct {
		name string
		g    gpu.Config
		u    pim.UnitConfig
	}{
		{"Anaheim (A100, near-bank)", gpu.A100(), pim.A100NearBank()},
		{"Anaheim (A100, custom-HBM)", gpu.A100(), pim.A100CustomHBM()},
		{"Anaheim (RTX4090, near-bank)", gpu.RTX4090(), pim.RTX4090NearBank()},
	}
	rows := prior
	for _, cfg := range configs {
		row := Table5Row{Proposal: cfg.name, Measured: true}
		for _, name := range []string{"Boot", "HELR", "ResNet20", "Sort"} {
			if workloads.FootprintGB(name, p) > cfg.g.DRAM.CapacityGB {
				continue // OoM (ResNet20 on the RTX 4090)
			}
			w, _ := workloads.ByName(name)
			u := cfg.u
			r := sched.Run(w.Gen(p, trace.AnaheimDefault()),
				sched.Config{GPU: cfg.g, Lib: gpu.Cheddar(), PIM: &u})
			switch name {
			case "Boot":
				row.BootMs = r.TimeMs()
			case "HELR":
				row.HELRMs = r.TimeMs()
			case "ResNet20":
				row.R20s = r.TimeMs() / 1e3
			case "Sort":
				row.SortS = r.TimeMs() / 1e3
			}
		}
		rows = append(rows, row)
	}
	tbl := &report.Table{
		Title:   "Table V: Boot / HELR / ResNet20 / Sort vs prior work",
		Headers: []string{"Proposal", "Boot", "HELR", "R20", "Sort", "source"},
	}
	fmtOr := func(v float64, f string) string {
		if v == 0 {
			return "-"
		}
		return fmt.Sprintf(f, v)
	}
	for _, r := range rows {
		src := "paper-reported"
		if r.Measured {
			src = "measured (this simulator)"
		}
		tbl.AddRow(r.Proposal, fmtOr(r.BootMs, "%.1fms"), fmtOr(r.HELRMs, "%.1fms"),
			fmtOr(r.R20s, "%.2fs"), fmtOr(r.SortS, "%.1fs"), src)
	}
	tbl.AddNote("paper Anaheim rows: Boot 29.3/32.7/32.6ms, HELR 41.2/43.5/33.7ms, R20 1.02/1.12s/OoM, Sort 12.3/13.6/13.0s")
	return rows, tbl
}
