package engine

import (
	"github.com/anaheim-sim/anaheim/internal/fusion"
)

// applyFusion rewrites an already-validated job spec through the op-DAG
// fusion passes: ADD ladders collapse into one variadic "addn" and sums of
// single-use constant multiplies into one "lincomb", both of which the
// evaluator executes with single-pass fused ring kernels. Requested outputs
// are protected, so every result a client asked for keeps its identity.
//
// The rewritten spec is re-validated before it replaces the original; if the
// rewrite ever produces an invalid graph the job falls back to its submitted
// form (counted, never fatal) — fusion is an optimization, not a gate.
func (e *Engine) applyFusion(spec *JobSpec) {
	protected := make(map[string]bool, len(spec.Outputs))
	for _, o := range spec.Outputs {
		protected[o] = true
	}
	ops := make([]fusion.Op, len(spec.Ops))
	for i, op := range spec.Ops {
		ops[i] = fusion.Op{
			ID: op.ID, Kind: op.Op, Args: op.Args,
			K: op.K, Val: op.Val, Vals: op.Vals, Name: op.Name,
		}
	}
	rewritten, stats := fusion.RewriteDAG(ops, protected)
	fused := 0
	for _, s := range stats {
		fused += s.Fused
	}
	if fused == 0 {
		return
	}
	out := make([]OpSpec, len(rewritten))
	for i, op := range rewritten {
		out[i] = OpSpec{
			ID: op.ID, Op: op.Kind, Args: op.Args,
			K: op.K, Val: op.Val, Vals: op.Vals, Name: op.Name,
		}
	}
	candidate := *spec
	candidate.Ops = out
	if err := validate(&candidate); err != nil {
		e.metrics.fusionFallbacks.Inc()
		return
	}
	spec.Ops = out
	e.metrics.fusionOpsFused.Add(float64(fused))
}
