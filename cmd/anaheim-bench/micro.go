package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"

	"github.com/anaheim-sim/anaheim"
	"github.com/anaheim-sim/anaheim/internal/obs"
	"github.com/anaheim-sim/anaheim/internal/par"
)

// microResult is one operation's measured cost, the unit future PRs diff
// their perf trajectory against (see BENCH_BASELINE.json at the repo root).
type microResult struct {
	Op       string  `json:"op"`
	NsPerOp  float64 `json:"nsPerOp"`
	AllocsOp int64   `json:"allocsPerOp"`
	BytesOp  int64   `json:"bytesPerOp"`
}

type microReport struct {
	GoVersion string        `json:"goVersion"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"numCpu"`
	Workers   int           `json:"parWorkers"`
	Params    string        `json:"params"`
	Results   []microResult `json:"results"`
	// Metrics is the obs registry snapshot after the run (counter totals,
	// latency quantiles), attached when -metrics is set so the same JSON
	// artifact carries both ns/op numbers and instrumentation counts.
	Metrics *obs.Snapshot `json:"metrics,omitempty"`
}

// fusionModes maps the -fusion flag to the kernel modes the fused-path
// benchmarks (lintrans, bootstrap) run in. "both" emits a -fused and an
// -unfused entry per op in one report, which is what the CI bench stage and
// the speedup gate diff.
func fusionModes(mode string) ([]bool, error) {
	switch mode {
	case "both":
		return []bool{true, false}, nil
	case "on":
		return []bool{true}, nil
	case "off":
		return []bool{false}, nil
	}
	return nil, fmt.Errorf("anaheim-bench: -fusion must be both, on, or off (got %q)", mode)
}

// runMicro benchmarks the FHE hot ops at the test-scale parameter set and
// writes machine-readable JSON. testing.Benchmark picks the iteration count,
// so wall-clock stays in seconds even on slow hosts. withMetrics attaches
// the observability registry snapshot to the report. fusionMode selects the
// kernel modes for the fused-path benchmarks (see fusionModes).
func runMicro(out io.Writer, withMetrics bool, fusionMode string) error {
	modes, err := fusionModes(fusionMode)
	if err != nil {
		return err
	}
	ctx, err := anaheim.NewContext(anaheim.TestParameters(), 1)
	if err != nil {
		return err
	}
	ctx.GenRotationKeys(1)
	u := make([]complex128, ctx.Params.Slots())
	for i := range u {
		u[i] = complex(float64(i%7)/8, -float64(i%3)/4)
	}
	ctU, err := ctx.Encrypt(u)
	if err != nil {
		return err
	}
	ctV, err := ctx.Encrypt(u)
	if err != nil {
		return err
	}
	pt, err := ctx.Encode(u, ctU.Level())
	if err != nil {
		return err
	}

	benches := map[string]func(b *testing.B){
		"encrypt": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ctx.Encrypt(u); err != nil {
					b.Fatal(err)
				}
			}
		},
		"decrypt": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.Decrypt(ctU)
			}
		},
		"add": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.Add(ctU, ctV)
			}
		},
		"mul-relin-rescale": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.Mul(ctU, ctV)
			}
		},
		"mul-plain": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ctx.MulPlain(ctU, pt)
			}
		},
		"rotate": func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ctx.Rotate(ctU, 1); err != nil {
					b.Fatal(err)
				}
			}
		},
	}

	// Fused-path functional benchmarks: the hoisted linear transform and a
	// full bootstrap, each in the requested fusion modes. These are the two
	// workloads the §V rewrites target, so their fused/unfused ratio is the
	// headline number of the report.
	slots := ctx.Params.Slots()
	diags := make(map[int][]complex128)
	for _, d := range []int{0, 1, 2, 3, 5, 8, 13, 21} {
		row := make([]complex128, slots)
		for i := range row {
			row[i] = complex(float64((i+d)%5)/5, float64(d%3)/4)
		}
		diags[d%slots] = row
	}
	lt := anaheim.NewLinearTransform(slots, diags)
	ctx.GenRotationKeys(lt.Rotations()...)

	bootCtx, err := anaheim.NewContext(anaheim.BootParameters(), 2)
	if err != nil {
		return err
	}
	if err := bootCtx.SetupBootstrapping(anaheim.DefaultBootstrapConfig()); err != nil {
		return err
	}
	vb := make([]complex128, bootCtx.Params.Slots())
	for i := range vb {
		vb[i] = complex(float64(i%5)/8, 0)
	}
	ctBoot, err := bootCtx.Encrypt(vb)
	if err != nil {
		return err
	}
	ctBoot = bootCtx.DropToLevel(ctBoot, 0)

	withFusion := func(fused bool, body func(b *testing.B)) func(b *testing.B) {
		return func(b *testing.B) {
			prev := anaheim.FusionEnabled()
			anaheim.SetFusion(fused)
			defer anaheim.SetFusion(prev)
			body(b)
		}
	}
	for _, fused := range modes {
		suffix := "fused"
		if !fused {
			suffix = "unfused"
		}
		benches["lintrans-"+suffix] = withFusion(fused, func(b *testing.B) {
			// Warm the diagonal-encoding cache so both modes measure kernels.
			if _, err := ctx.EvaluateLinearTransform(ctU, lt); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ctx.EvaluateLinearTransform(ctU, lt); err != nil {
					b.Fatal(err)
				}
			}
		})
		benches["bootstrap-"+suffix] = withFusion(fused, func(b *testing.B) {
			if _, err := bootCtx.Bootstrap(ctBoot); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bootCtx.Bootstrap(ctBoot); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	rep := microReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Workers:   par.Workers(),
		Params:    fmt.Sprintf("logN=%d levels=%d (test preset)", ctx.Params.LogN(), ctx.Params.MaxLevel()+1),
	}
	names := make([]string, 0, len(benches))
	for name := range benches {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		r := testing.Benchmark(benches[name])
		rep.Results = append(rep.Results, microResult{
			Op:       name,
			NsPerOp:  float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsOp: r.AllocsPerOp(),
			BytesOp:  r.AllocedBytesPerOp(),
		})
		fmt.Fprintf(os.Stderr, "%-18s %12.0f ns/op %8d allocs/op\n",
			name, float64(r.T.Nanoseconds())/float64(r.N), r.AllocsPerOp())
	}

	if withMetrics {
		snap := obs.Default.Snapshot()
		rep.Metrics = &snap
	}

	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
