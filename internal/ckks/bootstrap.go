package ckks

import (
	"fmt"
	"math"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// BootstrapConfig selects the bootstrapping hyper-parameters (§II-C, §IV-C).
type BootstrapConfig struct {
	FFTIterC2S   int // number of grouped CoeffToSlot matrices
	FFTIterS2C   int // number of grouped SlotToCoeff matrices
	EvalModDeg   int // Chebyshev degree of the cosine approximation
	DoubleAngles int // r: cos(θ/2^r) is interpolated, then doubled r times
	K            int // bound on the modular-reduction integer I
}

// DefaultBootstrapConfig mirrors the paper's default fftIter mix of 3 and 4
// at test scale (3 C2S / 3 S2C groups) with a deg-47 cosine and 3 double
// angles.
func DefaultBootstrapConfig() BootstrapConfig {
	return BootstrapConfig{FFTIterC2S: 3, FFTIterS2C: 3, EvalModDeg: 47, DoubleAngles: 3, K: 12}
}

// Bootstrapper refreshes exhausted ciphertexts: sparse-secret encapsulation
// [9], ModRaise, CoeffToSlot, EvalMod (homomorphic modular reduction by q0
// via a scaled sine), SlotToCoeff.
type Bootstrapper struct {
	params *Parameters
	enc    *Encoder
	eval   *Evaluator
	cfg    BootstrapConfig

	c2s, s2c []*LinearTransform
	evalMod  []float64 // Chebyshev coefficients of cos(2π(t-1/4)/2^r)

	toSparse *SwitchingKey // dense -> sparse
	toDense  *SwitchingKey // sparse -> dense

	q0 float64
}

// NewBootstrapper generates all keys (encapsulation, rotations for the DFT
// matrices, conjugation, relinearization if absent) and precomputes the
// transform matrices and EvalMod polynomial.
func NewBootstrapper(params *Parameters, enc *Encoder, eval *Evaluator,
	kgen *KeyGenerator, sk *SecretKey, keys *EvaluationKeySet, cfg BootstrapConfig) (*Bootstrapper, error) {

	if cfg.FFTIterC2S < 1 || cfg.FFTIterS2C < 1 {
		return nil, fmt.Errorf("ckks: fftIter must be >= 1")
	}
	b := &Bootstrapper{
		params: params,
		enc:    enc,
		eval:   eval,
		cfg:    cfg,
		q0:     float64(params.RingQ().Moduli[0].Q),
	}
	b.c2s = enc.CoeffToSlotMatrices(cfg.FFTIterC2S)
	b.s2c = enc.SlotToCoeffMatrices(cfg.FFTIterS2C)

	// cos(2π(t − 1/4)/2^r) on t ∈ [−(K+1), K+1]; after r double-angle steps
	// this becomes cos(2πt − π/2) = sin(2πt).
	r := float64(int(1) << uint(cfg.DoubleAngles))
	f := func(t float64) float64 { return math.Cos(2 * math.Pi * (t - 0.25) / r) }
	b.evalMod = ChebyshevInterpolation(f, -float64(cfg.K+1), float64(cfg.K+1), cfg.EvalModDeg)

	// Keys.
	skSparse := kgen.GenSparseSecretKey()
	b.toSparse = kgen.GenKeySwitchKey(sk, skSparse)
	b.toDense = kgen.GenKeySwitchKey(skSparse, sk)
	if keys.Rlk == nil {
		keys.Rlk = kgen.GenRelinearizationKey(sk)
	}
	kgen.GenConjugationKey(sk, keys)
	// Only the baby + giant rotations of the BSGS factorization (falling
	// back to the raw diagonal offsets for matrices the cost model keeps on
	// the per-diagonal sweep): the same helper the evaluator's dispatcher
	// assumes, so the DFT sweeps below run BSGS by default.
	lts := append(append([]*LinearTransform{}, b.c2s...), b.s2c...)
	kgen.GenRotationKeys(sk, keys, GaloisKeysForLinearTransform(params, lts...))
	return b, nil
}

// ModRaise reinterprets a level-0 ciphertext at the full modulus: each
// centered residue mod q0 is embedded into every prime of the chain. The
// raised ciphertext encrypts W = Δu + q0·I for a small integer polynomial I
// bounded by the (sparse) secret's Hamming weight.
func (b *Bootstrapper) ModRaise(ct *Ciphertext) *Ciphertext {
	rq := b.params.RingQ()
	top := b.params.MaxLevel()
	q0 := rq.Moduli[0]
	out := &Ciphertext{Scale: ct.Scale}
	for k, src := range []*ring.Poly{ct.C0, ct.C1} {
		w := src.Truncated(0).CopyNew()
		rq.INTT(w, 0)
		raised := rq.NewPoly(top)
		for j := 0; j < b.params.N(); j++ {
			v := q0.Centered(w.Coeffs[0][j])
			for i := 0; i <= top; i++ {
				raised.Coeffs[i][j] = rq.Moduli[i].FromCentered(v)
			}
		}
		rq.NTT(raised, top)
		if k == 0 {
			out.C0 = raised
		} else {
			out.C1 = raised
		}
	}
	return out
}

// evalModCt removes the q0·I component of one real-slotted ciphertext. On
// entry the slots hold w/s where w = Δu + q0·I and s is the declared scale;
// on exit they hold u at the returned (re-declared) scale ≈ 2πΔ.
func (b *Bootstrapper) evalModCt(ct *Ciphertext, delta float64) *Ciphertext {
	ev := b.eval
	k1 := float64(b.cfg.K + 1)

	// Re-declare the scale so the message becomes t = w/q0 ∈ [-K-1, K+1].
	work := ct.CopyNew()
	work.Scale = b.q0

	// cos(2π(t-1/4)/2^r), then r double angles -> sin(2πt).
	out := ev.EvaluateChebyshev(work, b.evalMod, -k1, k1)
	for i := 0; i < b.cfg.DoubleAngles; i++ {
		sq := ev.Rescale(ev.Square(out))
		out = ev.AddConst(ev.Add(sq, sq), -1)
	}
	// sin(2πt) = 2π(Δu)/q0 + O((Δu/q0)³): fold q0/(2πΔ) into the scale.
	out.Scale *= 2 * math.Pi * delta / b.q0
	return out
}

// Bootstrap refreshes ct (consumed at its lowest levels) back to a high
// level. The input is dropped to level 0 first, matching the paper's L
// schedule (2 -> 54 -> 24 for the full-scale Boot workload).
func (b *Bootstrapper) Bootstrap(ct *Ciphertext) (*Ciphertext, error) {
	defer obsBootstrap.done(time.Now())
	ev := b.eval
	rq := b.params.RingQ()
	delta := ct.Scale

	// 1. Sparse-secret encapsulation at the bottom of the chain.
	low := ev.DropLevel(ct, 0)
	low = ev.SwitchKeys(low, b.toSparse)

	// 2. ModRaise under the sparse secret, then switch back to the dense
	// secret at the top of the chain.
	raised := b.ModRaise(low)
	raised = ev.SwitchKeys(raised, b.toDense)

	// 3. CoeffToSlot: slots now hold the raw coefficients (bit-reversed).
	cur := raised
	var err error
	for _, g := range b.c2s {
		cur, err = ev.EvaluateLinearTransform(cur, g, b.enc)
		if err != nil {
			return nil, err
		}
		cur = ev.Rescale(cur)
	}

	// 4. Split into real and imaginary coefficient vectors.
	conj, err := ev.Conjugate(cur)
	if err != nil {
		return nil, err
	}
	qd := float64(rq.Moduli[cur.Level()].Q)
	ct0 := ev.Rescale(ev.MultConst(ev.Add(cur, conj), 0.5, qd))
	ct1 := ev.Rescale(ev.MultConst(ev.MulByI(ev.Sub(conj, cur)), 0.5, qd))

	// 5. EvalMod on each real vector.
	ct0 = b.evalModCt(ct0, delta)
	ct1 = b.evalModCt(ct1, delta)

	// 6. Recombine z = ct0 + i·ct1 and return to coefficient packing.
	cur = ev.Add(ct0, ev.MulByI(ev.matchLevel(ct1, ct0)))
	for _, g := range b.s2c {
		cur, err = ev.EvaluateLinearTransform(cur, g, b.enc)
		if err != nil {
			return nil, err
		}
		cur = ev.Rescale(cur)
	}

	// 7. Normalize the scale back to exactly Δ using one level.
	qd = float64(rq.Moduli[cur.Level()].Q)
	cur = ev.Rescale(ev.MultConst(cur, 1.0, qd*delta/cur.Scale))
	cur.Scale = delta
	return cur, nil
}

// MinLevelBudget reports how many levels a bootstrap invocation consumes
// with this configuration (used by tests and the workload trace generators).
func (b *Bootstrapper) MinLevelBudget() int {
	chebDepth := 2 + bitsLen(b.cfg.EvalModDeg)
	return b.cfg.FFTIterC2S + 1 + chebDepth + b.cfg.DoubleAngles + b.cfg.FFTIterS2C + 1
}
