package trace

import (
	"fmt"
	"sort"

	"github.com/anaheim-sim/anaheim/internal/obs"
	"github.com/anaheim-sim/anaheim/internal/report"
)

// SpanTable renders a tracer snapshot through the same report path the
// kernel traces use: rooted trees (a serving job and its ops), children
// indented under their parents, times relative to the earliest span. This
// is the runtime counterpart of the Gantt view — what actually executed,
// rather than what the model priced.
func SpanTable(spans []obs.SpanRecord) *report.Table {
	t := &report.Table{
		Title:   "Span trace (oldest first)",
		Headers: []string{"span", "parent", "name", "start", "dur", "attrs"},
	}
	if len(spans) == 0 {
		return t
	}

	byParent := make(map[uint64][]obs.SpanRecord, len(spans))
	ids := make(map[uint64]bool, len(spans))
	for _, s := range spans {
		ids[s.ID] = true
	}
	t0 := spans[0].StartUnixNs
	for _, s := range spans {
		if s.StartUnixNs < t0 {
			t0 = s.StartUnixNs
		}
		parent := s.Parent
		if !ids[parent] {
			parent = 0 // orphaned child (parent rotated out of the ring): promote to root
		}
		byParent[parent] = append(byParent[parent], s)
	}
	for _, group := range byParent {
		sort.Slice(group, func(i, j int) bool {
			return group[i].StartUnixNs < group[j].StartUnixNs
		})
	}

	var walk func(parent uint64, depth int)
	walk = func(parent uint64, depth int) {
		for _, s := range byParent[parent] {
			indent := ""
			for i := 0; i < depth; i++ {
				indent += "  "
			}
			parentCell := "-"
			if s.Parent != 0 {
				parentCell = fmt.Sprintf("%d", s.Parent)
			}
			t.AddRow(
				fmt.Sprintf("%d", s.ID),
				parentCell,
				indent+s.Name,
				fmt.Sprintf("+%.3fms", float64(s.StartUnixNs-t0)/1e6),
				fmt.Sprintf("%.3fms", float64(s.DurNs)/1e6),
				s.Attrs,
			)
			if s.ID != parent { // self-parented spans must not recurse
				walk(s.ID, depth+1)
			}
		}
	}
	walk(0, 0)
	t.AddNote("%d spans", len(spans))
	return t
}
