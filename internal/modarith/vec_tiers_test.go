package modarith

import (
	"math/rand"
	"testing"
)

// Differential sweep: every registered kernel tier must produce BIT-IDENTICAL
// output to the pure-Go oracle on every kernel, for random and adversarial
// inputs across the supported modulus range and across lengths that exercise
// both the vector body and the scalar tail. On a host with no assembly tier
// this degenerates to Go-vs-Go and passes trivially; CI's amd64 and arm64
// legs provide the real coverage.

// tierTestLens hits 0-tail, partial-tail and multi-block cases for both the
// 4-lane (AVX2) and 8-lane (AVX-512) kernels.
var tierTestLens = []int{1, 2, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 23, 24, 31, 32, 33, 64, 100, 256, 1000, 1024}

// butterflyLens must be positive multiples of 4 (the Vec*Butterfly contract).
var butterflyLens = []int{4, 8, 12, 16, 24, 32, 64, 100, 256, 1024}

func tierTestModuli(t testing.TB) []Modulus {
	t.Helper()
	var ms []Modulus
	for _, bits := range []int{45, 55, 60} {
		ps, err := GenerateNTTPrimes(bits, 12, 1)
		if err != nil {
			t.Fatalf("GenerateNTTPrimes(%d): %v", bits, err)
		}
		ms = append(ms, MustModulus(ps[0]))
	}
	return ms
}

// randBelow returns a uniform-ish value in [0, bound) with the domain
// boundaries (0, 1, bound-2, bound-1) over-sampled — the values that expose
// missed conditional subtractions and carry bugs.
func randBelow(rng *rand.Rand, bound uint64) uint64 {
	switch rng.Intn(8) {
	case 0:
		return bound - 1
	case 1:
		return bound - 1 - uint64(rng.Intn(2))
	case 2:
		return uint64(rng.Intn(2))
	default:
		return rng.Uint64() % bound
	}
}

func randRow(rng *rand.Rand, n int, bound uint64) []uint64 {
	r := make([]uint64, n)
	for i := range r {
		r[i] = randBelow(rng, bound)
	}
	return r
}

func cloneRow(a []uint64) []uint64 {
	return append([]uint64(nil), a...)
}

func rowsEqual(t *testing.T, kernel string, tier KernelTier, m Modulus, got, want []uint64) {
	t.Helper()
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("%s: tier %v q=%d n=%d: out[%d] = %#x, oracle %#x",
				kernel, tier, m.Q, len(want), j, got[j], want[j])
		}
	}
}

// forEachTierCase runs fn for every registered tier × modulus × length.
func forEachTierCase(t *testing.T, lens []int, fn func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand)) {
	t.Helper()
	moduli := tierTestModuli(t)
	for _, tier := range AvailableTiers() {
		tbl := tierTables[tier]
		t.Run(tier.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(0x5eed + int64(tier)))
			for _, m := range moduli {
				for _, n := range lens {
					fn(t, tbl, m, n, rng)
				}
			}
		})
	}
}

func TestTierMulAddLazy(t *testing.T) {
	forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		a := randRow(rng, n, m.TwoQ)
		b := randRow(rng, n, m.TwoQ)
		out := randRow(rng, n, m.TwoQ)
		want := cloneRow(out)
		vecMulAddLazyGo(m, want, a, b)
		tbl.mulAddLazy(m, out, a, b)
		rowsEqual(t, "mulAddLazy", tbl.tier, m, out, want)
	})
}

func TestTierMulAddLazyIdx(t *testing.T) {
	forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		na := n + rng.Intn(17)
		a := randRow(rng, na, m.TwoQ)
		b := randRow(rng, n, m.TwoQ)
		idx := make([]uint32, n)
		for j := range idx {
			idx[j] = uint32(rng.Intn(na))
		}
		out := randRow(rng, n, m.TwoQ)
		want := cloneRow(out)
		vecMulAddLazyIdxGo(m, want, a, b, idx)
		tbl.mulAddLazyIdx(m, out, a, b, idx)
		rowsEqual(t, "mulAddLazyIdx", tbl.tier, m, out, want)
	})
}

func TestTierBarrettFamily(t *testing.T) {
	kernels := []struct {
		name string
		ref  func(m Modulus, out, a, b []uint64)
		tab  func(tbl *kernelTable) func(m Modulus, out, a, b []uint64)
	}{
		{"mulBarrett", vecMulBarrettGo, func(tbl *kernelTable) func(Modulus, []uint64, []uint64, []uint64) { return tbl.mulBarrett }},
		{"mulAddBarrett", vecMulAddBarrettGo, func(tbl *kernelTable) func(Modulus, []uint64, []uint64, []uint64) { return tbl.mulAddBarrett }},
		{"mulSubBarrett", vecMulSubBarrettGo, func(tbl *kernelTable) func(Modulus, []uint64, []uint64, []uint64) { return tbl.mulSubBarrett }},
	}
	for _, k := range kernels {
		k := k
		t.Run(k.name, func(t *testing.T) {
			forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
				a := randRow(rng, n, m.TwoQ) // lazy operands allowed
				b := randRow(rng, n, m.TwoQ)
				out := randRow(rng, n, m.Q)
				want := cloneRow(out)
				k.ref(m, want, a, b)
				k.tab(tbl)(m, out, a, b)
				rowsEqual(t, k.name, tbl.tier, m, out, want)
			})
		})
	}
}

func TestTierMulShoup(t *testing.T) {
	forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		a := randRow(rng, n, m.Q)
		w := randBelow(rng, m.Q)
		ws := m.ShoupPrecomp(w)
		out := make([]uint64, n)
		want := make([]uint64, n)
		vecMulShoupGo(m, want, a, w, ws)
		tbl.mulShoup(m, out, a, w, ws)
		rowsEqual(t, "mulShoup", tbl.tier, m, out, want)
	})
}

func TestTierSubMulShoupLazy(t *testing.T) {
	forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		a := randRow(rng, n, m.TwoQ)
		b := randRow(rng, n, m.TwoQ)
		w := randBelow(rng, m.Q)
		ws := m.ShoupPrecomp(w)
		out := make([]uint64, n)
		want := make([]uint64, n)
		vecSubMulShoupLazyGo(m, want, a, b, w, ws)
		tbl.subMulShoupLazy(m, out, a, b, w, ws)
		rowsEqual(t, "subMulShoupLazy", tbl.tier, m, out, want)
	})
}

func TestTierRescaleStep(t *testing.T) {
	forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		row := randRow(rng, n, m.TwoQ)
		tt := randRow(rng, n, 4*m.Q)
		halfModQ := randBelow(rng, m.Q)
		w := randBelow(rng, m.Q)
		ws := m.ShoupPrecomp(w)
		want := cloneRow(row)
		vecRescaleStepGo(m, want, tt, halfModQ, w, ws)
		tbl.rescaleStep(m, row, tt, halfModQ, w, ws)
		rowsEqual(t, "rescaleStep", tbl.tier, m, row, want)
	})
}

func TestTierWideKernels(t *testing.T) {
	forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		row := randRow(rng, n, m.TwoQ)
		w := randBelow(rng, m.TwoQ)

		gotHi, gotLo := make([]uint64, n), make([]uint64, n)
		wantHi, wantLo := make([]uint64, n), make([]uint64, n)
		vecMulWideGo(wantHi, wantLo, row, w)
		tbl.mulWide(gotHi, gotLo, row, w)
		rowsEqual(t, "mulWide.hi", tbl.tier, m, gotHi, wantHi)
		rowsEqual(t, "mulWide.lo", tbl.tier, m, gotLo, wantLo)

		// Accumulate on top of near-overflow accumulators: accLo close to
		// 2^64 forces the cross-word carry, accHi arbitrary.
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				gotLo[j] = ^uint64(0) - uint64(rng.Intn(4))
			} else {
				gotLo[j] = rng.Uint64()
			}
			gotHi[j] = rng.Uint64() % (m.Q << 1)
			wantLo[j], wantHi[j] = gotLo[j], gotHi[j]
		}
		vecMulAccWideGo(wantHi, wantLo, row, w)
		tbl.mulAccWide(gotHi, gotLo, row, w)
		rowsEqual(t, "mulAccWide.hi", tbl.tier, m, gotHi, wantHi)
		rowsEqual(t, "mulAccWide.lo", tbl.tier, m, gotLo, wantLo)
	})
}

func TestTierFoldAndReduceWide(t *testing.T) {
	forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		hi := randRow(rng, n, m.Q) // fold-domain accumulators keep hi < q
		lo := make([]uint64, n)
		for j := range lo {
			lo[j] = rng.Uint64()
		}

		gotHi, gotLo := cloneRow(hi), cloneRow(lo)
		wantHi, wantLo := cloneRow(hi), cloneRow(lo)
		vecFoldWide128LazyGo(m, wantHi, wantLo)
		tbl.foldWide128Lazy(m, gotHi, gotLo)
		rowsEqual(t, "foldWide128Lazy.hi", tbl.tier, m, gotHi, wantHi)
		rowsEqual(t, "foldWide128Lazy.lo", tbl.tier, m, gotLo, wantLo)

		got, want := make([]uint64, n), make([]uint64, n)
		vecReduceWide128Go(m, want, hi, lo)
		tbl.reduceWide128(m, got, hi, lo)
		rowsEqual(t, "reduceWide128", tbl.tier, m, got, want)

		vecReduceWide128LazyGo(m, want, hi, lo)
		tbl.reduceWide128Lazy(m, got, hi, lo)
		rowsEqual(t, "reduceWide128Lazy", tbl.tier, m, got, want)
	})
}

func TestTierReduceTwoQ(t *testing.T) {
	forEachTierCase(t, tierTestLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		p := randRow(rng, n, m.TwoQ)
		want := cloneRow(p)
		vecReduceTwoQGo(m, want)
		tbl.reduceTwoQ(m, p)
		rowsEqual(t, "reduceTwoQ", tbl.tier, m, p, want)
	})
}

func TestTierButterflies(t *testing.T) {
	forEachTierCase(t, butterflyLens, func(t *testing.T, tbl *kernelTable, m Modulus, n int, rng *rand.Rand) {
		w := randBelow(rng, m.Q)
		ws := m.ShoupPrecomp(w)

		x := randRow(rng, n, 4*m.Q) // CT butterfly domain [0, 4q)
		y := randRow(rng, n, 4*m.Q)
		wantX, wantY := cloneRow(x), cloneRow(y)
		vecFwdButterflyGo(m, wantX, wantY, w, ws)
		tbl.fwdButterfly(m, x, y, w, ws)
		rowsEqual(t, "fwdButterfly.x", tbl.tier, m, x, wantX)
		rowsEqual(t, "fwdButterfly.y", tbl.tier, m, y, wantY)

		x = randRow(rng, n, m.TwoQ) // GS butterfly domain [0, 2q)
		y = randRow(rng, n, m.TwoQ)
		wantX, wantY = cloneRow(x), cloneRow(y)
		vecInvButterflyGo(m, wantX, wantY, w, ws)
		tbl.invButterfly(m, x, y, w, ws)
		rowsEqual(t, "invButterfly.x", tbl.tier, m, x, wantX)
		rowsEqual(t, "invButterfly.y", tbl.tier, m, y, wantY)
	})
}
