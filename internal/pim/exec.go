package pim

import (
	"fmt"
	"math"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

// Cost is the outcome of executing one PIM instruction (or kernel) instance.
type Cost struct {
	TimeNs   float64
	EnergyNJ float64
	Bytes    int64 // PIM-side DRAM bytes accessed
}

// Add accumulates another cost (kernels are sequences of instructions).
func (c *Cost) Add(o Cost) {
	c.TimeNs += o.TimeNs
	c.EnergyNJ += o.EnergyNJ
	c.Bytes += o.Bytes
}

// wordBytes is the in-DRAM element size: data are stored in 32-bit
// granularity and truncated to 28 bits at the PIM unit (§VI-A).
const wordBytes = 4

// InstrCost models one instruction over polynomials with `limbs` limbs of
// `n` coefficients, executed all-bank with buffer size B and the chosen
// layout, following Alg 1: per iteration, each phase opens its PolyGroup's
// row(s) and streams G chunks of every polynomial it touches.
func (u UnitConfig) InstrCost(op Opcode, k, limbs, n, bufferSize int, columnPartitioned bool) (Cost, error) {
	spec := Spec(op, k)
	if !spec.Supported(bufferSize) {
		return Cost{}, fmt.Errorf("pim: %v needs %d buffer entries, have %d (§VII-C)",
			op, spec.BufferSlots, bufferSize)
	}
	g := spec.ChunkGranularity(bufferSize)

	elemsPerChunk := u.DRAM.ChunkBits / (wordBytes * 8)
	banksPerGroup := u.BanksPerGroup()
	chunksPerBankPerLimb := int(math.Ceil(float64(n) / float64(banksPerGroup*elemsPerChunk)))
	limbsPerGroup := (limbs + u.DieGroups - 1) / u.DieGroups
	c := limbsPerGroup * chunksPerBankPerLimb // per-bank chunk count per polynomial
	iters := (c + g - 1) / g

	rowChunks := u.DRAM.ChunksPerRow()
	clkGHz := u.ClockMHz / 1e3
	rsCycles := u.DRAM.RowSwitchNs() * clkGHz

	// Exact totals: the final iteration processes only the remaining chunks.
	cyclesPerChunk := u.CyclesPerChunk
	if cyclesPerChunk == 0 {
		cyclesPerChunk = 1
	}
	totalWorkCycles := float64(spec.PIMAccesses()*c) * cyclesPerChunk
	var rowsPerIter float64
	for _, ph := range spec.Phases {
		l := PolyGroupLayout{Polys: ph.GroupPolys, ChunksPerBank: c, RowChunks: rowChunks}
		rowsPerIter += float64(l.RowsTouched(0, g, columnPartitioned))
	}
	totalRows := float64(iters) * rowsPerIter

	var cycles float64
	if u.LogicDie {
		// A logic-die unit round-robins its banks: row switches on one bank
		// overlap with chunk transfers on the others, at the price of
		// serializing the banks' transfers through the unit.
		hidden := float64(u.BanksPerUnit-1) * totalWorkCycles
		exposed := totalRows*rsCycles - hidden
		if exposed < 0 {
			exposed = 0
		}
		cycles = float64(u.BanksPerUnit)*totalWorkCycles + exposed
	} else {
		cycles = totalWorkCycles + totalRows*rsCycles
	}
	timeNs := cycles / clkGHz

	activeGroups := u.DieGroups
	if limbs < u.DieGroups {
		activeGroups = limbs
	}
	activeBanks := banksPerGroup * activeGroups
	bytes := int64(spec.PIMAccesses()*c) * int64(u.DRAM.ChunkBits/8) * int64(activeBanks)

	if u.LogicDie {
		// TSV-budget bandwidth cap (4× external for custom-HBM), derated by
		// the achievable TSV utilization.
		const tsvUtilization = 0.7
		minTime := float64(bytes) / (u.InternalBWGBs() * tsvUtilization)
		if minTime > timeNs {
			timeNs = minTime
		}
	}

	mmacOps := float64(spec.ModMuls) * float64(limbs) * float64(n)
	energy := float64(bytes*8)*u.DRAM.PIMAccessPJb(u.LogicDie)/1e3 + // pJ/b -> nJ
		totalRows*float64(activeBanks)*u.ActEnergyNJ +
		mmacOps*u.MMACEnergyPJ/1e3
	label := `{op="` + op.String() + `"}`
	obs.Default.Counter("pim_sim_instr_total" + label).Inc()
	obs.Default.Counter("pim_sim_time_ns_total" + label).Add(timeNs)
	obs.Default.Counter("pim_sim_bytes_total" + label).Add(float64(bytes))
	return Cost{TimeNs: timeNs, EnergyNJ: energy, Bytes: bytes}, nil
}

// GPUCorePJb is the energy of moving one bit through the GPU's on-chip
// hierarchy (LSU, L2, register file, pipeline overhead) on top of the DRAM
// access itself; PIM avoids this tier entirely, which is a large part of the
// per-instruction energy-efficiency gains of Fig 9.
const GPUCorePJb = 4.0

// GPUBaselineCost models the GPU executing the same computation with its
// standard (unfused for compound ops) kernels: purely DRAM-bandwidth-bound
// element-wise traffic (§IV-D: < 2 ops/byte of arithmetic intensity).
func (u UnitConfig) GPUBaselineCost(op Opcode, k, limbs, n int, effBWFrac, gpuDramPJb float64) Cost {
	spec := Spec(op, k)
	perElemAccesses := float64(spec.GPUAccesses) / float64(spec.OutPolys)
	outElems := float64(spec.OutPolys) * float64(limbs) * float64(n)
	bytes := perElemAccesses * outElems * wordBytes
	bw := u.DRAM.ExternalBWGBs * effBWFrac // GB/s == B/ns
	return Cost{
		TimeNs:   bytes / bw,
		EnergyNJ: bytes * 8 * gpuDramPJb / 1e3,
		Bytes:    int64(bytes),
	}
}

// Microbenchmark reports the Fig 9 quantities for one instruction at a given
// buffer size: PIM vs GPU speedup and energy-efficiency improvement.
type Microbenchmark struct {
	Op        Opcode
	K         int
	B         int
	Supported bool
	Speedup   float64
	EnergyEff float64
}

// RunMicrobenchmark sweeps one instruction at one buffer size using the
// paper's default workload shape (all limbs of an extended-modulus
// polynomial at N = 2^16, L+α = 68).
func (u UnitConfig) RunMicrobenchmark(op Opcode, k, bufferSize int) Microbenchmark {
	const limbs, n = 68, 1 << 16
	mb := Microbenchmark{Op: op, K: k, B: bufferSize}
	pimCost, err := u.InstrCost(op, k, limbs, n, bufferSize, true)
	if err != nil {
		return mb
	}
	mb.Supported = true
	gpuCost := u.GPUBaselineCost(op, k, limbs, n, 0.85, u.DRAM.GPUAccessPJb()+GPUCorePJb)
	mb.Speedup = gpuCost.TimeNs / pimCost.TimeNs
	mb.EnergyEff = gpuCost.EnergyNJ / pimCost.EnergyNJ
	return mb
}
