package pim

import (
	"math"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/dram"
)

func TestCommandStreamStructure(t *testing.T) {
	// PAccum⟨4⟩ at B=16 (G=2) over 16 chunks: 8 iterations × 3 phases, CP
	// layout -> one row visit per phase: 24 ACTs, 24 PREs, and
	// (3K+2)·c = 14·16 = 224 column accesses.
	spec := Spec(PAccum, 4)
	cmds := CommandStream(spec, 2, 16, 32, true)
	var acts, pres, cols int
	for _, c := range cmds {
		switch c.Kind {
		case dram.ACT:
			acts++
		case dram.PRE:
			pres++
		default:
			cols++
		}
	}
	if acts != 24 || pres != 24 {
		t.Fatalf("ACT/PRE = %d/%d, want 24/24", acts, pres)
	}
	if cols != 224 {
		t.Fatalf("column accesses = %d, want 224", cols)
	}
	// The final phase must write.
	sawWR := false
	for _, c := range cmds {
		if c.Kind == dram.WR {
			sawWR = true
		}
	}
	if !sawWR {
		t.Fatal("stream has no writes")
	}
}

func TestCommandStreamNaiveHasMoreACTs(t *testing.T) {
	spec := Spec(PAccum, 4)
	cp := CommandStream(spec, 2, 16, 32, true)
	naive := CommandStream(spec, 2, 16, 32, false)
	count := func(cmds []dram.Command) int {
		n := 0
		for _, c := range cmds {
			if c.Kind == dram.ACT {
				n++
			}
		}
		return n
	}
	// §VI-C: naive needs 4x/8x/2x the activations across the three phases:
	// (4+8+2)/(1+1+1) = 14/3 per iteration.
	if r := float64(count(naive)) / float64(count(cp)); r < 4 || r > 5 {
		t.Fatalf("naive/CP ACT ratio = %.2f, want ~4.7", r)
	}
}

func TestEngineValidatesAnalyticalModel(t *testing.T) {
	// The closed-form InstrCost and the command-level engine must agree on
	// Alg-1 streams (the engine adds tRAS effects the closed form folds
	// into the row-switch constant).
	u := A100NearBank()
	for _, tc := range []struct {
		op Opcode
		k  int
	}{
		{Move, 0}, {Add, 0}, {Mult, 0}, {PMult, 0},
		{Tensor, 0}, {PAccum, 4}, {CAccum, 8},
	} {
		analytic, err := u.InstrCost(tc.op, tc.k, 68, 1<<16, u.BufferSize, true)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := u.SimulateInstr(tc.op, tc.k, 68, 1<<16, u.BufferSize, true)
		if err != nil {
			t.Fatal(err)
		}
		ratio := sim.TotalNs / analytic.TimeNs
		if math.Abs(ratio-1) > 0.35 {
			t.Errorf("%v: engine %.0fns vs analytic %.0fns (ratio %.2f) — models diverged",
				tc.op, sim.TotalNs, analytic.TimeNs, ratio)
		}
	}
}

func TestSimulateInstrUnsupported(t *testing.T) {
	u := A100NearBank()
	if _, err := u.SimulateInstr(Tensor, 0, 68, 1<<16, 4, true); err == nil {
		t.Fatal("Tensor at B=4 must be unsupported")
	}
}

func TestEngineNaiveSlowerThanCP(t *testing.T) {
	u := A100NearBank()
	cp, err := u.SimulateInstr(PAccum, 4, 68, 1<<16, u.BufferSize, true)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := u.SimulateInstr(PAccum, 4, 68, 1<<16, u.BufferSize, false)
	if err != nil {
		t.Fatal(err)
	}
	if naive.TotalNs <= cp.TotalNs {
		t.Fatal("naive layout must be slower in the command-level engine too")
	}
	if naive.ACTs <= cp.ACTs {
		t.Fatal("naive layout must activate more rows")
	}
}
