// Command anaheim-sim simulates one FHE workload on one hardware platform
// at the paper-scale parameters (Table IV) and reports time, energy, EDP
// and DRAM traffic.
//
// Usage:
//
//	anaheim-sim -workload Boot -platform a100-nearbank
//	anaheim-sim -all
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/anaheim-sim/anaheim"
)

var platforms = []anaheim.SimPlatform{
	anaheim.A100, anaheim.A100NearBank, anaheim.A100CustomHBM,
	anaheim.RTX4090, anaheim.RTX4090PIM,
}

func printResult(out io.Writer, r anaheim.SimResult) {
	if r.OoM {
		fmt.Fprintf(out, "%-10s %-18s OoM (exceeds DRAM capacity)\n", r.Workload, r.Platform)
		return
	}
	fmt.Fprintf(out, "%-10s %-18s time=%9.2fms energy=%8.1fmJ EDP=%12.1f EW=%4.1f%% gpuDRAM=%7.2fGB pimDRAM=%7.2fGB\n",
		r.Workload, r.Platform, r.TimeMs, r.EnergyMJ, r.EDP, 100*r.EWShare, r.GPUDramGB, r.PIMDramGB)
}

// run is the testable body of main: parse args, simulate, print.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("anaheim-sim", flag.ContinueOnError)
	workload := fs.String("workload", "Boot", "workload name (Boot, HELR, Sort, RNN, ResNet20, ResNet18)")
	platform := fs.String("platform", string(anaheim.A100NearBank), "platform id")
	all := fs.Bool("all", false, "simulate every workload on every platform")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *all {
		for _, w := range anaheim.Workloads() {
			for _, p := range platforms {
				r, err := anaheim.Simulate(w, p)
				if err != nil {
					return err
				}
				printResult(out, r)
			}
		}
		return nil
	}
	r, err := anaheim.Simulate(*workload, anaheim.SimPlatform(*platform))
	if err != nil {
		return err
	}
	printResult(out, r)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
