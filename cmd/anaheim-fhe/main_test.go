package main

import (
	"path/filepath"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/ckks"
)

// End-to-end test of the file-based workflow: keygen -> encrypt -> eval ->
// decrypt, all through the serialized artifacts on disk.
func TestFileWorkflow(t *testing.T) {
	dir := t.TempDir()
	keys := filepath.Join(dir, "keys")
	ct1 := filepath.Join(dir, "ct.bin")
	ct2 := filepath.Join(dir, "ct2.bin")

	keygen(keys)
	encrypt(keys, "1.5, 2.5, -3", ct1)
	eval(keys, "square", ct1, ct2)

	// Decrypt through the library directly so we can assert values.
	p := params()
	var sk ckks.SecretKey
	readFile(filepath.Join(keys, "sk.bin"), &sk)
	var ct ckks.Ciphertext
	readFile(ct2, &ct)
	vals := ckks.NewEncoder(p).Decode(ckks.NewDecryptor(p, &sk).DecryptNew(&ct).Value, ct.Scale)
	want := []float64{2.25, 6.25, 9.0}
	for i, w := range want {
		if d := real(vals[i]) - w; d > 1e-4 || d < -1e-4 {
			t.Fatalf("slot %d: got %f want %f", i, real(vals[i]), w)
		}
	}

	// The other eval ops must run too.
	for _, op := range []string{"double", "negate", "addone"} {
		eval(keys, op, ct1, filepath.Join(dir, op+".bin"))
	}
}
