package experiments

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/report"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

// --- Fig 4a ------------------------------------------------------------------

// Fig4aMetrics is one execution mode of the running-example linear
// transform (hoisting, K=8, D=4).
type Fig4aMetrics struct {
	Mode     string
	TimeUs   float64
	EWUs     float64
	AutUs    float64
	ModSwUs  float64
	Timeline []sched.Segment
}

// Fig4a evaluates the K=8 hoisted linear transform on the A100 under three
// modes: GPU-only, hypothetical 4x-bandwidth DRAM, and PIM offloading.
func Fig4a() ([]Fig4aMetrics, *report.Table) {
	p := trace.PaperParams()
	lvl := p.L - 1

	build := func(opt trace.Options) *trace.Trace {
		b := trace.NewBuilder(p, opt, "LT-K8")
		b.LinearTransform(lvl, 8)
		return b.T
	}

	g := gpu.A100()
	g4 := g
	g4.DRAM.ExternalBWGBs *= 4
	nb := pim.A100NearBank()

	modes := []struct {
		name string
		t    *trace.Trace
		cfg  sched.Config
	}{
		{"GPU only", build(trace.GPUBaseline()), sched.Config{GPU: g, Lib: gpu.Cheddar()}},
		{"4x BW DRAM", build(trace.GPUBaseline()), sched.Config{GPU: g4, Lib: gpu.Cheddar()}},
		{"PIM", build(trace.AnaheimDefault()), sched.Config{GPU: g, Lib: gpu.Cheddar(), PIM: &nb}},
	}
	var out []Fig4aMetrics
	tbl := &report.Table{
		Title:   "Fig 4a: hoisted linear transform (K=8, D=4) on A100",
		Headers: []string{"Mode", "time", "EW", "Aut", "ModSwitch"},
	}
	for _, m := range modes {
		r := sched.Run(m.t, m.cfg)
		modsw := r.ClassTimeNs[trace.ClassNTT] + r.ClassTimeNs[trace.ClassINTT] + r.ClassTimeNs[trace.ClassBConv]
		fm := Fig4aMetrics{
			Mode: m.name, TimeUs: r.TimeNs / 1e3,
			EWUs: r.ClassTimeNs[trace.ClassEW] / 1e3, AutUs: r.ClassTimeNs[trace.ClassAut] / 1e3,
			ModSwUs: modsw / 1e3, Timeline: r.Timeline,
		}
		out = append(out, fm)
		tbl.AddRow(m.name, fmt.Sprintf("%.0fus", fm.TimeUs), fmt.Sprintf("%.0fus", fm.EWUs),
			fmt.Sprintf("%.0fus", fm.AutUs), fmt.Sprintf("%.0fus", fm.ModSwUs))
	}
	tbl.AddNote("paper: 4x BW speeds EW 2.84x and Aut 2.54x but barely moves ModSwitch; PIM achieves similar EW gains")
	return out, tbl
}

// --- Fig 4b ------------------------------------------------------------------

// Fig4bMetrics summarizes bootstrapping DRAM access and energy.
type Fig4bMetrics struct {
	BaselineGB  float64 // GPU-only total DRAM access
	PIMGpuGB    float64 // GPU-side access with PIM
	PIMSideGB   float64 // PIM-side access
	IdealGB     float64 // unlimited-cache compulsory traffic (MinKS)
	EnergyRatio float64 // DRAM access energy reduction from PIM
}

// Fig4b measures bootstrapping DRAM access with and without PIM, plus the
// ideal unlimited-cache case.
func Fig4b() (Fig4bMetrics, *report.Table) {
	p := trace.PaperParams()
	g := gpu.A100()
	nb := pim.A100NearBank()

	base, _ := runBoot(p, trace.GPUBaseline(), sched.Config{GPU: g, Lib: gpu.Cheddar()}, workloads.DefaultBoot())
	withPIM, _ := runBoot(p, trace.AnaheimDefault(), sched.Config{GPU: g, Lib: gpu.Cheddar(), PIM: &nb}, workloads.DefaultBoot())

	// Ideal: unlimited cache, MinKS to minimize distinct evks, only
	// compulsory misses for evks/plaintexts plus ciphertext in/out.
	mk := trace.Options{MinKS: true, BasicFuse: true, AutFuse: true, ExtraFuse: true}
	mkTrace := workloads.Bootstrap(p, mk, workloads.DefaultBoot())
	distinctEvks := 4.0 + 2.0*float64(workloads.DefaultBoot().FFTIterC2S+workloads.DefaultBoot().FFTIterS2C)
	idealGB := (distinctEvks*p.EvkBytes(p.L-1) + mkTrace.OneTimeBytes() -
		/* evk re-reads already inside OneTime for MinKS: keep pts only */ 0 +
		2*p.CtBytes(p.L-1)) / 1e9
	// MinKS traces stream each of the two iteration keys repeatedly; the
	// ideal case reads each distinct key once. Replace the streamed evk
	// bytes with the distinct-key volume.
	idealGB = (distinctEvks*p.EvkBytes(p.L-1) + ptOnlyBytes(mkTrace, p) + 2*p.CtBytes(p.L-1)) / 1e9

	dramPJb := g.DRAM.GPUAccessPJb()
	pimPJb := g.DRAM.PIMAccessPJb(false)
	baseEnergy := base.GPUBytes * 8 * dramPJb
	pimEnergy := withPIM.GPUBytes*8*dramPJb + withPIM.PIMBytes*8*pimPJb

	m := Fig4bMetrics{
		BaselineGB:  base.GPUBytes / 1e9,
		PIMGpuGB:    withPIM.GPUBytes / 1e9,
		PIMSideGB:   withPIM.PIMBytes / 1e9,
		IdealGB:     idealGB,
		EnergyRatio: baseEnergy / pimEnergy,
	}
	tbl := &report.Table{
		Title:   "Fig 4b: bootstrapping DRAM access and energy (A100, near-bank PIM)",
		Headers: []string{"Case", "GPU-side GB", "PIM-side GB"},
	}
	tbl.AddRow("w/o PIM", report.F(m.BaselineGB, 2), "-")
	tbl.AddRow("PIM", report.F(m.PIMGpuGB, 2), report.F(m.PIMSideGB, 2))
	tbl.AddRow("ideal (inf cache, MinKS)", report.F(m.IdealGB, 2), "-")
	tbl.AddNote("GPU-side reduction: %.2fx (paper: 6.15x); DRAM energy reduction: %.2fx (paper: 2.87x)",
		m.BaselineGB/m.PIMGpuGB, m.EnergyRatio)
	return m, tbl
}

// ptOnlyBytes sums the one-time traffic that is plaintexts (everything
// except the evk streams of KeyMult kernels).
func ptOnlyBytes(t *trace.Trace, p trace.Params) float64 {
	s := 0.0
	for _, k := range t.Kernels {
		if k.Op == pim.PAccum && k.OpK == p.Digits(k.Limbs-1-p.Alpha) {
			continue // KeyMult evk stream
		}
		s += k.OneTime
	}
	return s
}

// --- Fig 8 -------------------------------------------------------------------

// Fig8Metrics is one (platform, workload) result.
type Fig8Metrics struct {
	Platform  string
	Workload  string
	OoM       bool
	BaseMs    float64
	PIMMs     float64
	Speedup   float64
	EnergyEff float64
	EDPGain   float64
}

// Fig8 runs the six workloads on the three Anaheim configurations against
// their GPU-only baselines.
func Fig8() ([]Fig8Metrics, *report.Table) {
	p := trace.PaperParams()
	var out []Fig8Metrics
	tbl := &report.Table{
		Title:   "Fig 8: workload speedup, energy efficiency and EDP improvement",
		Headers: []string{"Platform", "Workload", "GPU-only", "Anaheim", "speedup", "energy eff", "EDP gain"},
	}
	configs := []struct {
		name string
		g    gpu.Config
		u    pim.UnitConfig
	}{
		{"A100 near-bank", gpu.A100(), pim.A100NearBank()},
		{"A100 custom-HBM", gpu.A100(), pim.A100CustomHBM()},
		{"RTX4090 near-bank", gpu.RTX4090(), pim.RTX4090NearBank()},
	}
	for _, cfg := range configs {
		for _, w := range workloads.All() {
			m := Fig8Metrics{Platform: cfg.name, Workload: w.Name}
			if workloads.FootprintGB(w.Name, p) > cfg.g.DRAM.CapacityGB {
				m.OoM = true
				out = append(out, m)
				tbl.AddRow(cfg.name, w.Name, "OoM", "OoM", "-", "-", "-")
				continue
			}
			base := sched.Run(w.Gen(p, trace.GPUBaseline()), sched.Config{GPU: cfg.g, Lib: gpu.Cheddar()})
			u := cfg.u
			anah := sched.Run(w.Gen(p, trace.AnaheimDefault()), sched.Config{GPU: cfg.g, Lib: gpu.Cheddar(), PIM: &u})
			m.BaseMs, m.PIMMs = base.TimeMs(), anah.TimeMs()
			m.Speedup = base.TimeNs / anah.TimeNs
			m.EnergyEff = base.EnergyNJ / anah.EnergyNJ
			m.EDPGain = base.EDP() / anah.EDP()
			out = append(out, m)
			tbl.AddRow(cfg.name, w.Name, report.Ms(base.TimeNs), report.Ms(anah.TimeNs),
				report.X(m.Speedup), report.X(m.EnergyEff), report.X(m.EDPGain))
		}
	}
	tbl.AddNote("paper bands: speedups 1.24-1.74x (A100 NB), 1.17-1.55x (custom-HBM), 1.06-1.49x (4090); EDP 1.62-3.14x")
	return out, tbl
}
