// Package par provides the process-wide worker pool that the RNS limb-level
// kernels (ring element-wise ops, per-limb NTT/INTT) share. Limbs of an RNS
// polynomial are independent, so spreading them across cores is always safe;
// what needs care is doing it without spawning goroutines per call and
// without deadlocking when parallel sections nest (e.g. an engine job worker
// calling into a parallel NTT).
//
// The pool keeps a fixed set of long-lived workers fed by an unbuffered task
// channel. Submission never blocks: if no worker is idle, the submitting
// goroutine runs the chunk inline. Under nesting this degrades gracefully
// toward serial execution instead of deadlocking, and an idle machine gets
// full fan-out.
package par

import (
	"runtime"
	"sync"
)

var (
	mu      sync.Mutex
	size    int         // configured width; 0 = GOMAXPROCS at first use
	tasks   chan func() // unbuffered: a send succeeds only if a worker is idle
	started int         // workers spawned so far
)

// Workers returns the configured pool width.
func Workers() int {
	mu.Lock()
	defer mu.Unlock()
	if size == 0 {
		size = runtime.GOMAXPROCS(0)
	}
	return size
}

// SetWorkers fixes the pool width and returns the previous value. n <= 1
// forces serial execution. Intended for benchmarks comparing serial vs
// parallel kernels; already-running workers beyond the new width drain
// naturally (they only matter if a task is submitted to them).
func SetWorkers(n int) int {
	mu.Lock()
	defer mu.Unlock()
	prev := size
	if prev == 0 {
		prev = runtime.GOMAXPROCS(0)
	}
	if n < 1 {
		n = 1
	}
	size = n
	return prev
}

// ensure spawns workers up to the configured width and returns the task
// channel along with the effective width.
func ensure() (chan func(), int) {
	mu.Lock()
	defer mu.Unlock()
	if size == 0 {
		size = runtime.GOMAXPROCS(0)
	}
	if tasks == nil {
		tasks = make(chan func())
	}
	for ; started < size; started++ {
		go func(ch chan func()) {
			for f := range ch {
				f()
			}
		}(tasks)
	}
	return tasks, size
}

// ForEachChunk partitions [0, n) into at most pool-width contiguous ranges
// and runs f(lo, hi) for each on the shared pool, returning after every
// range completed. Contiguous ranges keep each worker's memory accesses
// sequential — the right split for limb loops over a polynomial's single
// backing array, where ForEach's strided assignment is cache-hostile. With a
// pool width of 1 it is exactly f(0, n).
func ForEachChunk(n int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	ch, width := ensure()
	if width > n {
		width = n
	}
	if width <= 1 {
		f(0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(width)
	chunk, rem := n/width, n%width
	lo := 0
	for w := 0; w < width; w++ {
		hi := lo + chunk
		if w < rem {
			hi++
		}
		lo0, hi0 := lo, hi
		task := func() {
			defer wg.Done()
			f(lo0, hi0)
		}
		select {
		case ch <- task:
		default:
			task() // no idle worker: run inline (nesting-safe)
		}
		lo = hi
	}
	wg.Wait()
}

// ForEach runs f(i) for every i in [0, n), spreading the iterations over the
// shared pool in strided chunks. It returns only after every call completed.
// With a pool width of 1 (or n == 1) it is exactly a for loop.
// For index ranges that walk contiguous memory, prefer ForEachChunk.
func ForEach(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	ch, width := ensure()
	if width > n {
		width = n
	}
	if width <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(width)
	for w := 0; w < width; w++ {
		w := w
		chunk := func() {
			defer wg.Done()
			for i := w; i < n; i += width {
				f(i)
			}
		}
		select {
		case ch <- chunk:
		default:
			chunk() // no idle worker: run inline (nesting-safe)
		}
	}
	wg.Wait()
}
