package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunMicroEmitsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmarks are slow")
	}
	var sb strings.Builder
	if err := runMicro(&sb); err != nil {
		t.Fatal(err)
	}
	var rep microReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Results) < 5 {
		t.Fatalf("want >=5 benchmarked ops, got %d", len(rep.Results))
	}
	for _, r := range rep.Results {
		if r.Op == "" || r.NsPerOp <= 0 {
			t.Fatalf("bad result entry: %+v", r)
		}
	}
}
