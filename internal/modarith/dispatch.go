package modarith

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

// Runtime kernel dispatch. The row kernels in vec.go / wide.go and the NTT
// butterfly spans are the innermost loops of every FHE operation; on amd64
// and arm64 they have hand-written assembly implementations selected once at
// init into a function-pointer table, so the per-row call sites never branch
// on CPU features. The pure-Go kernels (vec_ref.go, wide_ref.go) are always
// compiled and serve three roles: the only implementation under the `noasm`
// build tag or on other architectures, the per-kernel fallback for tiers
// that implement a subset of the table, and the differential oracle the
// tier-sweep tests compare every assembly implementation against
// (DESIGN.md §3.12).
//
// The active tier can be forced — for differential tests, benchmarking one
// tier against another, or sidestepping a suspect kernel in production —
// either programmatically via SetKernelTier or with the environment variable
// ANAHEIM_KERNEL_TIER=go|neon|avx2|avx512, read once at init.

// KernelTier identifies one implementation family of the row kernels.
// Higher values are preferred by the init-time selection when available.
type KernelTier uint8

const (
	// TierGo is the portable pure-Go implementation; always available.
	TierGo KernelTier = iota
	// TierNEON is the arm64 assembly tier. The 64x64->128 multiply ladders
	// are scalar MUL/UMULH (AArch64 SIMD has no 64-bit vector multiply);
	// ASIMD is architecturally mandatory on arm64, so the tier is always
	// available there.
	TierNEON
	// TierAVX2 is the amd64 AVX2 assembly tier (4 lanes per row step,
	// 32-bit partial-product ladders). Measured end to end it LOSES to the
	// compiler's scalar code on every hot path we benchmarked — synthesizing
	// 64x64->128 from VPMULUDQ ladders costs more than the two-instruction
	// scalar MULX pair, and the butterfly kernels' constant-broadcast
	// preamble dominates the many short spans of a real transform — so the
	// tier is opt-in: it is never auto-selected at init and only runs under
	// an explicit ANAHEIM_KERNEL_TIER=avx2 or SetKernelTier(TierAVX2). It
	// stays implemented, differentially tested, and benchmarked (the
	// per-tier rows document the loss) as the measurement surface for
	// revisiting on microarchitectures with cheaper cross-lane carries.
	TierAVX2
	// TierAVX512 is the amd64 AVX-512 assembly tier (8 lanes, VPMULLQ
	// low-halves, mask-register conditional folds). Requires AVX-512 F+DQ
	// and OS support for ZMM state.
	TierAVX512
)

// String returns the canonical lower-case tier name used by
// ANAHEIM_KERNEL_TIER, the bench row suffixes, and the obs gauge docs.
func (t KernelTier) String() string {
	switch t {
	case TierGo:
		return "go"
	case TierNEON:
		return "neon"
	case TierAVX2:
		return "avx2"
	case TierAVX512:
		return "avx512"
	}
	return fmt.Sprintf("tier(%d)", uint8(t))
}

// ParseKernelTier is the inverse of String.
func ParseKernelTier(s string) (KernelTier, error) {
	for _, t := range []KernelTier{TierGo, TierNEON, TierAVX2, TierAVX512} {
		if s == t.String() {
			return t, nil
		}
	}
	return TierGo, fmt.Errorf("modarith: unknown kernel tier %q (want go, neon, avx2, or avx512)", s)
}

// kernelTable is the function-pointer table the public row-kernel methods
// call through. One table exists per available tier; entries a tier does not
// implement are filled with the pure-Go kernel at init, so every table is
// total and call sites never nil-check.
type kernelTable struct {
	tier KernelTier
	// optIn marks a tier that must never be auto-selected at init (it is
	// still listed by AvailableTiers and reachable via SetKernelTier or
	// ANAHEIM_KERNEL_TIER): the tier exists for measurement and as a
	// differential target, not because it wins on current hardware.
	optIn bool

	mulAddLazy    func(m Modulus, out, a, b []uint64)
	mulAddLazyIdx func(m Modulus, out, a, b []uint64, idx []uint32)
	mulBarrett    func(m Modulus, out, a, b []uint64)
	mulAddBarrett func(m Modulus, out, a, b []uint64)
	mulSubBarrett func(m Modulus, out, a, b []uint64)

	mulShoup        func(m Modulus, out, a []uint64, w, wShoup uint64)
	subMulShoupLazy func(m Modulus, out, a, b []uint64, w, wShoup uint64)
	rescaleStep     func(m Modulus, row, t []uint64, halfModQ, w, wShoup uint64)

	mulWide           func(accHi, accLo, row []uint64, w uint64)
	mulAccWide        func(accHi, accLo, row []uint64, w uint64)
	foldWide128Lazy   func(m Modulus, accHi, accLo []uint64)
	reduceWide128     func(m Modulus, dst, accHi, accLo []uint64)
	reduceWide128Lazy func(m Modulus, dst, accHi, accLo []uint64)
	reduceTwoQ        func(m Modulus, p []uint64)

	fwdButterfly func(m Modulus, x, y []uint64, w, wShoup uint64)
	invButterfly func(m Modulus, x, y []uint64, w, wShoup uint64)
}

// goKernels is the pure-Go table: the noasm fallback and the oracle.
var goKernels = kernelTable{
	tier:              TierGo,
	mulAddLazy:        vecMulAddLazyGo,
	mulAddLazyIdx:     vecMulAddLazyIdxGo,
	mulBarrett:        vecMulBarrettGo,
	mulAddBarrett:     vecMulAddBarrettGo,
	mulSubBarrett:     vecMulSubBarrettGo,
	mulShoup:          vecMulShoupGo,
	subMulShoupLazy:   vecSubMulShoupLazyGo,
	rescaleStep:       vecRescaleStepGo,
	mulWide:           vecMulWideGo,
	mulAccWide:        vecMulAccWideGo,
	foldWide128Lazy:   vecFoldWide128LazyGo,
	reduceWide128:     vecReduceWide128Go,
	reduceWide128Lazy: vecReduceWide128LazyGo,
	reduceTwoQ:        vecReduceTwoQGo,
	fwdButterfly:      vecFwdButterflyGo,
	invButterfly:      vecInvButterflyGo,
}

var (
	tierMu sync.Mutex
	// tierTables holds one normalized (total) table per available tier.
	tierTables = map[KernelTier]*kernelTable{}
	// active is the table the public kernel methods dispatch through. An
	// atomic pointer so SetKernelTier is race-clean against in-flight rows:
	// a concurrent row sees either the old or the new table, both total.
	active atomic.Pointer[kernelTable]
)

// fillDefaults replaces every nil entry of t with the pure-Go kernel so the
// table is total. Tiers implement subsets; dispatch stays per-kernel.
func fillDefaults(t *kernelTable) {
	if t.mulAddLazy == nil {
		t.mulAddLazy = goKernels.mulAddLazy
	}
	if t.mulAddLazyIdx == nil {
		t.mulAddLazyIdx = goKernels.mulAddLazyIdx
	}
	if t.mulBarrett == nil {
		t.mulBarrett = goKernels.mulBarrett
	}
	if t.mulAddBarrett == nil {
		t.mulAddBarrett = goKernels.mulAddBarrett
	}
	if t.mulSubBarrett == nil {
		t.mulSubBarrett = goKernels.mulSubBarrett
	}
	if t.mulShoup == nil {
		t.mulShoup = goKernels.mulShoup
	}
	if t.subMulShoupLazy == nil {
		t.subMulShoupLazy = goKernels.subMulShoupLazy
	}
	if t.rescaleStep == nil {
		t.rescaleStep = goKernels.rescaleStep
	}
	if t.mulWide == nil {
		t.mulWide = goKernels.mulWide
	}
	if t.mulAccWide == nil {
		t.mulAccWide = goKernels.mulAccWide
	}
	if t.foldWide128Lazy == nil {
		t.foldWide128Lazy = goKernels.foldWide128Lazy
	}
	if t.reduceWide128 == nil {
		t.reduceWide128 = goKernels.reduceWide128
	}
	if t.reduceWide128Lazy == nil {
		t.reduceWide128Lazy = goKernels.reduceWide128Lazy
	}
	if t.reduceTwoQ == nil {
		t.reduceTwoQ = goKernels.reduceTwoQ
	}
	if t.fwdButterfly == nil {
		t.fwdButterfly = goKernels.fwdButterfly
	}
	if t.invButterfly == nil {
		t.invButterfly = goKernels.invButterfly
	}
}

func init() {
	tierTables[TierGo] = &goKernels
	for tier, tbl := range asmKernelTables() {
		t := tbl
		t.tier = tier
		fillDefaults(&t)
		tierTables[tier] = &t
	}
	best := pickDefaultTier(tierTables)
	if env := os.Getenv("ANAHEIM_KERNEL_TIER"); env != "" {
		if tier, err := ParseKernelTier(env); err != nil {
			fmt.Fprintf(os.Stderr, "modarith: ignoring ANAHEIM_KERNEL_TIER: %v\n", err)
		} else if _, ok := tierTables[tier]; !ok {
			fmt.Fprintf(os.Stderr, "modarith: ignoring ANAHEIM_KERNEL_TIER=%s: tier not available on this host (have %v)\n", env, AvailableTiers())
		} else {
			best = tier
		}
	}
	setTier(best)
}

// pickDefaultTier returns the best tier eligible for automatic selection:
// the highest available one not marked opt-in.
func pickDefaultTier(tables map[KernelTier]*kernelTable) KernelTier {
	best := TierGo
	for tier, tbl := range tables {
		if tier > best && !tbl.optIn {
			best = tier
		}
	}
	return best
}

func setTier(t KernelTier) {
	active.Store(tierTables[t])
	// Numeric gauge (0=go 1=neon 2=avx2 3=avx512) for dashboards; the test
	// log line and /metrics docs carry the name mapping.
	obs.Default.Gauge("modarith_kernel_tier").Set(int64(t))
}

// ActiveTier returns the tier the row kernels currently dispatch to.
func ActiveTier() KernelTier { return active.Load().tier }

// AvailableTiers returns every tier usable on this host (always at least
// TierGo), in preference order (best last).
func AvailableTiers() []KernelTier {
	out := make([]KernelTier, 0, len(tierTables))
	for tier := range tierTables {
		out = append(out, tier)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetKernelTier forces all row kernels onto the given implementation tier.
// The swap is atomic: rows already executing finish on the table they
// loaded; subsequent rows use the new tier. Used by the differential
// tier-sweep tests and the per-tier bench grid; also a production escape
// hatch (ANAHEIM_KERNEL_TIER reaches the same switch at init).
func SetKernelTier(t KernelTier) error {
	tierMu.Lock()
	defer tierMu.Unlock()
	if _, ok := tierTables[t]; !ok {
		return fmt.Errorf("modarith: kernel tier %s not available on this host (have %v)", t, AvailableTiers())
	}
	setTier(t)
	return nil
}
