package main

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func TestRunTierTable(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep microReport) string {
		t.Helper()
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	rep := write("rep.json", microReport{
		GOOS: "linux", GOARCH: "amd64", NumCPU: 8,
		Results: []microResult{
			{Op: "ntt_fwd-n14-l1-go", NsPerOp: 1000},
			{Op: "ntt_fwd-n14-l1-avx2", NsPerOp: 900},
			{Op: "ntt_fwd-n14-l1-avx512", NsPerOp: 400},
			{Op: "bconv-n14-l16-go", NsPerOp: 5000},
			{Op: "bconv-n14-l16-avx512", NsPerOp: 2500},
			{Op: "keyswitch-n14-l16", NsPerOp: 77}, // not a tier row: ignored
		},
	})
	var sb strings.Builder
	if err := runTierTable(&sb, rep); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"| op | go ns/op | avx2 ns/op | avx512 ns/op | best vs go |",
		"| ntt_fwd-n14-l1 | 1000 | 900 | 400 | 2.50x |",
		"| bconv-n14-l16 | 5000 | - | 2500 | 2.00x |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tier table missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "keyswitch") {
		t.Errorf("non-tier row leaked into the table:\n%s", out)
	}

	// A report with no per-tier rows is the wrong artifact: hard error, not
	// an empty table that a CI step summary would silently render as nothing.
	plain := write("plain.json", microReport{Results: []microResult{
		{Op: "keyswitch-n14-l16", NsPerOp: 77},
	}})
	if err := runTierTable(&sb, plain); err == nil {
		t.Fatal("want error for a report without per-tier rows")
	}
}

// TestKernelTierBenchRegistration checks the per-tier rows exist for every
// host-available tier without timing them (the shape test runs the real
// bodies at a shrunk grid).
func TestKernelTierBenchRegistration(t *testing.T) {
	benches := map[string]func(b *testing.B){}
	addKernelTierBenches(benches)
	if len(benches) == 0 {
		t.Fatal("no per-tier benchmarks registered")
	}
	if _, ok := benches["ntt_fwd-n14-l1-go"]; !ok {
		t.Errorf("missing the pure-Go baseline row; have %d rows", len(benches))
	}
	if len(benches)%4 != 0 {
		t.Errorf("want 4 rows per tier, got %d total", len(benches))
	}
}
