// Encrypted logistic-regression inference (HELR-style, [33]): score a batch
// of feature vectors against a model without ever decrypting the features.
// The sigmoid is evaluated as a Chebyshev polynomial, as HELR does with its
// low-degree approximations.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/anaheim-sim/anaheim"
)

const features = 8 // one feature vector per slot group

func main() {
	ctx, err := anaheim.NewContext(anaheim.ParametersLiteral{
		LogN:     11,
		LogQ:     []int{55, 45, 45, 45, 45, 45, 45, 45, 45},
		LogP:     []int{58, 58},
		LogScale: 45,
		HDense:   64,
		HSparse:  16,
	}, 7)
	if err != nil {
		log.Fatal(err)
	}
	slots := ctx.Params.Slots()
	batch := slots / features
	r := rand.New(rand.NewSource(99))

	// Synthetic model and data (the paper's HELR uses 14x14 MNIST; the op
	// structure is identical).
	weights := make([]float64, features)
	bias := 0.15
	for i := range weights {
		weights[i] = 2*r.Float64() - 1
	}
	x := make([][]float64, batch)
	for b := range x {
		x[b] = make([]float64, features)
		for i := range x[b] {
			x[b][i] = 2*r.Float64() - 1
		}
	}

	// Pack: slot b*features+i holds x[b][i].
	packed := make([]complex128, slots)
	wvec := make([]complex128, slots)
	for b := 0; b < batch; b++ {
		for i := 0; i < features; i++ {
			packed[b*features+i] = complex(x[b][i], 0)
			wvec[b*features+i] = complex(weights[i], 0)
		}
	}

	ct, err := ctx.Encrypt(packed)
	if err != nil {
		log.Fatal(err)
	}

	// Dot product: multiply by the replicated weight vector, then a
	// log2(features)-step rotation-and-add reduction.
	wpt, err := ctx.Encode(wvec, ct.Level())
	if err != nil {
		log.Fatal(err)
	}
	acc := ctx.MulPlain(ct, wpt)
	rots := []int{}
	for s := 1; s < features; s <<= 1 {
		rots = append(rots, s)
	}
	ctx.GenRotationKeys(rots...)
	for s := 1; s < features; s <<= 1 {
		rot, err := ctx.Rotate(acc, s)
		if err != nil {
			log.Fatal(err)
		}
		acc = ctx.Add(acc, rot)
	}
	acc = ctx.AddConst(acc, bias)

	// Sigmoid via a degree-15 Chebyshev approximation on [-8, 8].
	sigmoid := func(t float64) float64 { return 1 / (1 + math.Exp(-t)) }
	scored := ctx.EvaluatePolynomial(acc, sigmoid, -8, 8, 15)

	got := ctx.Decrypt(scored)
	maxErr, correct := 0.0, 0
	for b := 0; b < batch; b++ {
		z := bias
		for i := 0; i < features; i++ {
			z += weights[i] * x[b][i]
		}
		want := sigmoid(z)
		e := math.Abs(real(got[b*features]) - want)
		if e > maxErr {
			maxErr = e
		}
		if (real(got[b*features]) > 0.5) == (want > 0.5) {
			correct++
		}
	}
	fmt.Printf("scored %d samples homomorphically\n", batch)
	fmt.Printf("max sigmoid error: %.3g; decision agreement: %d/%d\n", maxErr, correct, batch)
	if maxErr > 5e-2 || correct < batch*99/100 {
		log.Fatal("encrypted inference diverged from plaintext")
	}
	fmt.Println("encrypted logistic-regression inference: OK")
}
