package trace

import (
	"testing"
	"testing/quick"

	"github.com/anaheim-sim/anaheim/internal/pim"
)

func TestPaperParamsSizes(t *testing.T) {
	p := PaperParams()
	// §III-A: a polynomial can be as large as 17MB, an evk 136MB; a
	// ciphertext is 27MB (3×27MB fit alongside an evk in a 217MB cache).
	if got := p.PolyBytes(p.L + p.Alpha); got < 16e6 || got > 19e6 {
		t.Fatalf("extended polynomial = %.1fMB, want ~17MB", got/1e6)
	}
	if got := p.EvkBytes(p.L - 1); got < 130e6 || got > 145e6 {
		t.Fatalf("evk = %.1fMB, want ~136MB", got/1e6)
	}
	if got := p.CtBytes(p.L - 1); got < 26e6 || got > 30e6 {
		t.Fatalf("ciphertext = %.1fMB, want ~27MB", got/1e6)
	}
}

func TestWithDKeepsLimbBudget(t *testing.T) {
	for _, d := range []int{1, 2, 3, 4, 6, 8} {
		p := PaperParams().WithD(d)
		if p.L+p.Alpha != 68 {
			t.Fatalf("D=%d: L+alpha = %d, want 68", d, p.L+p.Alpha)
		}
		if got := (p.L + p.Alpha - 1) / p.Alpha; got != d {
			t.Fatalf("D=%d: derived D = %d", d, got)
		}
	}
	p4 := PaperParams().WithD(4)
	if p4.L != 54 || p4.Alpha != 14 {
		t.Fatalf("D=4 should recover Table IV: L=%d alpha=%d", p4.L, p4.Alpha)
	}
}

func TestModUpWriteBackIs68MB(t *testing.T) {
	// §V-D: "we write back only up to 68MB more for ModUp(a)".
	p := PaperParams()
	b := NewBuilder(p, Options{PIM: true}, "wb")
	b.ModUp(p.L - 1)
	var wb float64
	for _, k := range b.T.Kernels {
		wb += k.WriteBack
	}
	if wb < 65e6 || wb > 72e6 {
		t.Fatalf("ModUp write-back = %.1fMB, want ~68MB", wb/1e6)
	}
}

func TestWriteBackOnlyWhenPIM(t *testing.T) {
	p := PaperParams()
	b := NewBuilder(p, Options{PIM: false}, "nowb")
	b.ModUp(p.L - 1)
	for _, k := range b.T.Kernels {
		if k.WriteBack != 0 {
			t.Fatal("write-backs must only be emitted in PIM mode")
		}
	}
}

func TestHoistingReducesNTT(t *testing.T) {
	// Fig 1 table: hoisting reduces the (I)NTT count ~2.47x for linear
	// transforms; Base and MinKS share the same compute.
	p := PaperParams()
	counts := map[string]float64{}
	for _, alg := range []struct {
		name string
		opt  Options
	}{
		{"base", Options{}},
		{"hoist", Options{Hoist: true}},
		{"minks", Options{MinKS: true}},
	} {
		b := NewBuilder(p, alg.opt, "lt")
		b.LinearTransform(p.L-1, 31)
		counts[alg.name] = b.T.NTTLimbTransforms()
	}
	if counts["base"] != counts["minks"] {
		t.Fatalf("Base (%v) and MinKS (%v) should have equal (I)NTT counts", counts["base"], counts["minks"])
	}
	ratio := counts["base"] / counts["hoist"]
	if ratio < 1.8 || ratio > 4 {
		t.Fatalf("hoisting (I)NTT reduction = %.2fx, want ~2.5x", ratio)
	}
}

func TestMinKSNeedsTwoKeys(t *testing.T) {
	p := PaperParams()
	bm := NewBuilder(p, Options{MinKS: true}, "")
	bh := NewBuilder(p, Options{Hoist: true}, "")
	if bm.EvkCount(31) != 2 {
		t.Fatalf("MinKS evk count = %d, want 2", bm.EvkCount(31))
	}
	if bh.EvkCount(31) <= 2 {
		t.Fatal("hoisting should need one key per distinct rotation")
	}
}

func TestHoistingPlaintextsLarger(t *testing.T) {
	// §III-B: hoisting performs PMULT in the extended modulus, requiring
	// larger plaintexts.
	p := PaperParams()
	bh := NewBuilder(p, Options{Hoist: true}, "")
	bb := NewBuilder(p, Options{}, "")
	if bh.PlaintextBytes(p.L-1, 8) <= bb.PlaintextBytes(p.L-1, 8) {
		t.Fatal("hoisted plaintexts should be larger (extended modulus)")
	}
}

func TestBasicFuseReducesEWBytes(t *testing.T) {
	p := PaperParams()
	fused := NewBuilder(p, Options{BasicFuse: true}, "")
	fused.KeyMult("km", p.L-1)
	unfused := NewBuilder(p, Options{}, "")
	unfused.KeyMult("km", p.L-1)
	fb := fused.T.TotalBytes()
	ub := unfused.T.TotalBytes()
	if fb >= ub {
		t.Fatalf("BasicFuse should reduce traffic: %.0f vs %.0f", fb, ub)
	}
	// Unfused: 7K accesses vs fused 3K+2 (PAccum spec).
	want := float64(pim.Spec(pim.PAccum, p.D).GPUAccesses) / float64(pim.Spec(pim.PAccum, p.D).PIMAccesses())
	if got := ub / fb; got < want*0.9 || got > want*1.1 {
		t.Fatalf("unfused/fused byte ratio = %.2f, want ~%.2f", got, want)
	}
}

func TestAutFuseReducesAutBytes(t *testing.T) {
	p := PaperParams()
	get := func(autFuse bool) float64 {
		b := NewBuilder(p, Options{Hoist: true, AutFuse: autFuse}, "")
		b.LinearTransform(p.L-1, 16)
		return b.T.CountClass(ClassAut, func(k Kernel) float64 { return k.Bytes })
	}
	if get(true) >= get(false) {
		t.Fatal("AutFuse should reduce automorphism traffic")
	}
}

func TestEWKernelsOffloadableOnlyWithPIM(t *testing.T) {
	p := PaperParams()
	b := NewBuilder(p, AnaheimDefault(), "")
	b.HMULT(p.L - 1)
	sawEW, sawNonOffload := false, false
	for _, k := range b.T.Kernels {
		if k.Class == ClassEW && k.Offload {
			sawEW = true
		}
		if k.Class != ClassEW && k.Offload {
			t.Fatalf("non-EW kernel %s marked offloadable", k.Name)
		}
		if k.Class == ClassAut || k.Class == ClassNTT {
			sawNonOffload = true
		}
	}
	if !sawEW || !sawNonOffload {
		t.Fatal("HMULT should mix offloadable EW and GPU-only kernels")
	}
}

func TestTraceAccountingInvariants(t *testing.T) {
	p := PaperParams()
	f := func(kRaw, lvlRaw uint8) bool {
		k := int(kRaw)%30 + 2
		lvl := int(lvlRaw)%40 + 10
		b := NewBuilder(p, AnaheimDefault(), "q")
		b.LinearTransform(lvl, k)
		for _, kn := range b.T.Kernels {
			if kn.Bytes < 0 || kn.OneTime < 0 || kn.OneTime > kn.Bytes+1 {
				return false
			}
			if kn.WeightedOps < 0 || kn.Limbs < 0 || kn.Instances < 0 {
				return false
			}
		}
		return b.T.TotalBytes() > 0 && b.T.NTTLimbTransforms() > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
