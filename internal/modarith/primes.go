package modarith

import (
	"fmt"
	"math/bits"
)

// millerRabinWitnesses is a deterministic witness set for 64-bit integers
// (Sinclair 2011): testing against these bases is a proof of primality for
// all n < 2^64.
var millerRabinWitnesses = []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37}

// IsPrime reports whether n is prime, deterministically for all uint64.
func IsPrime(n uint64) bool {
	if n < 2 {
		return false
	}
	for _, p := range []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37} {
		if n == p {
			return true
		}
		if n%p == 0 {
			return false
		}
	}
	// Write n-1 = d * 2^s.
	d := n - 1
	s := bits.TrailingZeros64(d)
	d >>= uint(s)

	mulmod := func(a, b uint64) uint64 {
		hi, lo := bits.Mul64(a, b)
		_, r := bits.Div64(hi%n, lo, n)
		return r
	}
	powmod := func(a, e uint64) uint64 {
		r := uint64(1)
		a %= n
		for e > 0 {
			if e&1 == 1 {
				r = mulmod(r, a)
			}
			a = mulmod(a, a)
			e >>= 1
		}
		return r
	}

witness:
	for _, a := range millerRabinWitnesses {
		x := powmod(a, d)
		if x == 1 || x == n-1 {
			continue
		}
		for i := 0; i < s-1; i++ {
			x = mulmod(x, x)
			if x == n-1 {
				continue witness
			}
		}
		return false
	}
	return true
}

// GenerateNTTPrimes returns count distinct primes q with bit length bitSize
// satisfying q ≡ 1 (mod 2N) where N = 2^logN, the eligibility condition for
// negacyclic NTT (§VI-A of the Anaheim paper uses the same condition to build
// the Montgomery reduction circuit). Primes are found by scanning outward
// from 2^bitSize in steps of 2N, alternating above/below so the produced
// primes straddle the target size as closely as possible (which keeps CKKS
// rescaling near-exact).
func GenerateNTTPrimes(bitSize, logN, count int) ([]uint64, error) {
	if bitSize < logN+2 || bitSize > MaxModulusBits {
		return nil, fmt.Errorf("modarith: bitSize %d out of range for logN=%d", bitSize, logN)
	}
	step := uint64(1) << uint(logN+1) // 2N
	center := uint64(1) << uint(bitSize)
	// First candidate ≡ 1 mod 2N at or below the center.
	lo := center - (center-1)%step
	hi := lo + step

	primes := make([]uint64, 0, count)
	for len(primes) < count {
		progressed := false
		if bits.Len64(hi) == bitSize+1 || bits.Len64(hi) == bitSize {
			if IsPrime(hi) {
				primes = append(primes, hi)
			}
			hi += step
			progressed = true
		}
		if len(primes) < count && bits.Len64(lo) == bitSize {
			if IsPrime(lo) {
				primes = append(primes, lo)
			}
			if lo > step {
				lo -= step
			}
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("modarith: exhausted %d-bit candidates ≡ 1 mod 2^%d (found %d/%d)",
				bitSize, logN+1, len(primes), count)
		}
	}
	return primes, nil
}

// GeneratePrimeChain returns one prime per entry of bitSizes, all ≡ 1 mod 2N,
// with no duplicates across entries of equal size.
func GeneratePrimeChain(bitSizes []int, logN int) ([]uint64, error) {
	// Group by size so equal-size requests share one scan.
	need := map[int]int{}
	for _, b := range bitSizes {
		need[b]++
	}
	pool := map[int][]uint64{}
	for b, n := range need {
		ps, err := GenerateNTTPrimes(b, logN, n)
		if err != nil {
			return nil, err
		}
		pool[b] = ps
	}
	out := make([]uint64, len(bitSizes))
	for i, b := range bitSizes {
		out[i] = pool[b][0]
		pool[b] = pool[b][1:]
	}
	return out, nil
}
