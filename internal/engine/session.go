package engine

import (
	"fmt"
	"sync"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ckks"
)

// Session is one client's serving context: compiled parameters, the
// client-uploaded evaluation keys, and the evaluator bound to them. The
// server never holds secret material — clients keep the secret key, upload
// only relinearization/Galois keys, and ship ciphertexts.
//
// A Session is safe for concurrent use: the evaluator's lazy caches are
// internally locked and every op allocates its outputs. The session mutex
// only serializes the few stateful extras (bootstrapper, transform map).
//
// Sessions live in the engine's byte-bounded key cache, keyed by ID and
// costed by their evaluation-key size; cold sessions are evicted under
// memory pressure and come back through Config.SessionLoader.
type Session struct {
	ID      string
	Params  *ckks.Parameters
	Keys    *ckks.EvaluationKeySet
	Eval    *ckks.Evaluator
	Enc     *ckks.Encoder
	Created time.Time

	keyBytes int64

	mu         sync.Mutex
	boot       *ckks.Bootstrapper
	transforms map[string]*ckks.LinearTransform
}

// NewSession builds a session object without registering it anywhere — the
// constructor Config.SessionLoader implementations use to rematerialize an
// evicted tenant.
func NewSession(id string, params *ckks.Parameters, keys *ckks.EvaluationKeySet) (*Session, error) {
	if keys == nil {
		return nil, fmt.Errorf("engine: session needs an evaluation key set")
	}
	return &Session{
		ID:         id,
		Params:     params,
		Keys:       keys,
		Eval:       ckks.NewEvaluator(params, keys),
		Enc:        ckks.NewEncoder(params),
		Created:    time.Now(),
		keyBytes:   evalKeySetBytes(keys),
		transforms: make(map[string]*ckks.LinearTransform),
	}, nil
}

// KeyBytes is the measured size of the session's evaluation-key material —
// the cost the key cache accounts this session at.
func (s *Session) KeyBytes() int64 { return s.keyBytes }

// release drops the session's references to its key material and evaluator
// so the (large) evaluation keys become collectable deterministically
// instead of waiting on cache churn. Only called once no job can still use
// the session (engine Close after the worker pool drained).
func (s *Session) release() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Keys = nil
	s.Eval = nil
	s.Enc = nil
	s.boot = nil
	s.transforms = nil
}

// evalKeySetBytes measures a key set's coefficient payload: every switching
// key is D digit polynomials over Q plus the P extension, 8 bytes per
// coefficient, plus any level-aware band variants the key carries. The
// arithmetic lives with the key types so banded layouts can't silently
// desynchronize the cache accounting.
func evalKeySetBytes(keys *ckks.EvaluationKeySet) int64 {
	return keys.CoeffBytes()
}

// CreateSession compiles a parameter literal, binds the client's evaluation
// keys, and registers the session.
func (e *Engine) CreateSession(lit ckks.ParametersLiteral, keys *ckks.EvaluationKeySet) (*Session, error) {
	params, err := ckks.NewParameters(lit)
	if err != nil {
		return nil, err
	}
	return e.AttachSession(params, keys)
}

// AttachSession registers a session over already-compiled parameters (the
// embedded path, where the caller owns a full local context). The session
// enters the key cache costed at its measured evaluation-key size; under
// memory pressure it can be evicted and — if a SessionLoader is configured —
// rematerialized on next use.
func (e *Engine) AttachSession(params *ckks.Parameters, keys *ckks.EvaluationKeySet) (*Session, error) {
	s, err := NewSession(e.newID("sess"), params, keys)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	closed := e.closed
	e.mu.Unlock()
	if closed {
		return nil, ErrClosed
	}
	e.sessions.Put(s.ID, s, s.keyBytes)
	return s, nil
}

// Session returns a resident session by ID. It does not trigger
// rematerialization; Submit does.
func (e *Engine) Session(id string) (*Session, bool) {
	return e.sessions.Get(id)
}

// DetachSession removes a session and reports whether it was resident.
// Running jobs keep their pinned reference and finish normally; the
// session's key bytes just stop being accounted (and a detached session is
// not rematerialized unless re-attached or re-loaded).
func (e *Engine) DetachSession(id string) bool {
	_, ok := e.sessions.Remove(id)
	return ok
}

// DropSession is DetachSession without the report (kept for callers of the
// original API).
func (e *Engine) DropSession(id string) { e.sessions.Remove(id) }

// acquireSession resolves and pins a session for a job, rematerializing an
// evicted one through Config.SessionLoader (concurrent misses on the same
// tenant coalesce onto a single load). The caller owns one Unpin.
func (e *Engine) acquireSession(id string) (*Session, error) {
	var load func() (*Session, int64, error)
	if e.cfg.SessionLoader != nil {
		loader := e.cfg.SessionLoader
		load = func() (*Session, int64, error) {
			s, err := loader(id)
			if err != nil {
				return nil, 0, err
			}
			if s == nil {
				return nil, 0, fmt.Errorf("session loader returned nil")
			}
			return s, s.keyBytes, nil
		}
	}
	s, err := e.sessions.Acquire(id, load)
	if err != nil {
		return nil, fmt.Errorf("engine: unknown session %q: %w", id, err)
	}
	return s, nil
}

// SetBootstrapper enables the "bootstrap" op for embedded sessions (the
// HTTP path cannot: constructing a bootstrapper requires the secret key).
func (s *Session) SetBootstrapper(b *ckks.Bootstrapper) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.boot = b
}

// RegisterTransform names a linear transform for use by "lintrans" ops.
// The needed rotation keys must be present in the session's key set.
func (s *Session) RegisterTransform(name string, lt *ckks.LinearTransform) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.transforms[name] = lt
}

func (s *Session) transform(name string) (*ckks.LinearTransform, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	lt, ok := s.transforms[name]
	return lt, ok
}

// apply executes one op of a job against this session's evaluator.
func (s *Session) apply(j *Job, op *OpSpec) (*result, error) {
	out, err := s.evalOp(op, j.arg)
	if err != nil {
		return nil, err
	}
	return &result{ct: out}, nil
}

// evalOp executes one op spec against the session's evaluator, resolving
// argument names through arg. It is the single place the op vocabulary is
// given semantics — the scheduler path (apply) and the direct path the
// differential tests drive both go through it, so they cannot drift.
func (s *Session) evalOp(op *OpSpec, arg func(string) (*ckks.Ciphertext, error)) (*ckks.Ciphertext, error) {
	args := make([]*ckks.Ciphertext, len(op.Args))
	for i, a := range op.Args {
		ct, err := arg(a)
		if err != nil {
			return nil, err
		}
		args[i] = ct
	}
	ev := s.Eval
	var out *ckks.Ciphertext
	var err error
	switch op.Op {
	case "add":
		out = ev.Add(args[0], args[1])
	case "sub":
		out = ev.Sub(args[0], args[1])
	case "mul":
		out = ev.Rescale(ev.MulRelin(args[0], args[1], nil))
	case "square":
		out = ev.Rescale(ev.Square(args[0]))
	case "rotate":
		out, err = ev.Rotate(args[0], op.K)
	case "conjugate":
		out, err = ev.Conjugate(args[0])
	case "addconst":
		out = ev.AddConst(args[0], op.Val)
	case "mulconst":
		qd := float64(s.Params.RingQ().Moduli[args[0].Level()].Q)
		out = ev.Rescale(ev.MultConst(args[0], op.Val, qd))
	case "addn":
		out = ev.AddMany(args)
	case "lincomb":
		lvl := args[0].Level()
		for _, ct := range args[1:] {
			if ct.Level() < lvl {
				lvl = ct.Level()
			}
		}
		qd := float64(s.Params.RingQ().Moduli[lvl].Q)
		out = ev.Rescale(ev.MulConstAccum(args, op.Vals, qd))
	case "rescale":
		out = ev.Rescale(args[0])
	case "droplevel":
		out = ev.DropLevel(args[0], op.K)
	case "lintrans":
		lt, ok := s.transform(op.Name)
		if !ok {
			return nil, fmt.Errorf("engine: unknown transform %q", op.Name)
		}
		// Dispatches to the BSGS double-hoisted sweep when the session's key
		// set carries the baby + giant rotations; per-diagonal key sets keep
		// the hoisted path.
		out, err = ev.EvaluateLinearTransform(args[0], lt, s.Enc)
		if err == nil {
			out = ev.Rescale(out)
		}
	case "bootstrap":
		s.mu.Lock()
		boot := s.boot
		s.mu.Unlock()
		if boot == nil {
			return nil, fmt.Errorf("engine: session has no bootstrapper")
		}
		out, err = boot.Bootstrap(args[0])
	default:
		err = fmt.Errorf("engine: unknown op kind %q", op.Op)
	}
	if err != nil {
		return nil, err
	}
	return out, nil
}
