// Command anaheim-fhe is a file-based FHE workflow around the functional
// CKKS library: generate keys, encrypt a vector of reals, evaluate simple
// circuits on the ciphertext file, and decrypt — every artifact persisted
// through the library's binary serialization.
//
//	anaheim-fhe keygen  -dir keys
//	anaheim-fhe encrypt -dir keys -values 1.5,2.5,-3 -out ct.bin
//	anaheim-fhe eval    -dir keys -op square -in ct.bin -out ct2.bin
//	anaheim-fhe decrypt -dir keys -in ct2.bin -n 3
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/anaheim-sim/anaheim/internal/ckks"
)

func params() *ckks.Parameters {
	p, err := ckks.NewParameters(ckks.TestParameters())
	if err != nil {
		panic(err)
	}
	return p
}

func die(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "anaheim-fhe:", err)
		os.Exit(1)
	}
}

func writeFile(path string, m interface{ MarshalBinary() ([]byte, error) }) {
	data, err := m.MarshalBinary()
	die(err)
	die(os.WriteFile(path, data, 0o600))
}

func readFile(path string, m interface{ UnmarshalBinary([]byte) error }) {
	data, err := os.ReadFile(path)
	die(err)
	die(m.UnmarshalBinary(data))
}

func keygen(dir string) {
	die(os.MkdirAll(dir, 0o700))
	p := params()
	kg := ckks.NewKeyGenerator(p, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	writeFile(filepath.Join(dir, "sk.bin"), sk)
	writeFile(filepath.Join(dir, "pk.bin"), pk)
	writeFile(filepath.Join(dir, "rlk.bin"), rlk)
	fmt.Printf("wrote sk.bin, pk.bin, rlk.bin to %s (N=%d, %d levels; DEMO parameters, not secure)\n",
		dir, p.N(), p.MaxLevel())
}

func encrypt(dir, valuesCSV, out string) {
	p := params()
	enc := ckks.NewEncoder(p)
	var pk ckks.PublicKey
	readFile(filepath.Join(dir, "pk.bin"), &pk)

	var vals []complex128
	for _, s := range strings.Split(valuesCSV, ",") {
		f, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		die(err)
		vals = append(vals, complex(f, 0))
	}
	pt, err := enc.Encode(vals, p.MaxLevel(), p.DefaultScale())
	die(err)
	ct := ckks.NewEncryptor(p, 2).EncryptNew(&ckks.Plaintext{Value: pt, Scale: p.DefaultScale()}, &pk)
	writeFile(out, ct)
	fmt.Printf("encrypted %d values into %s (level %d)\n", len(vals), out, ct.Level())
}

func eval(dir, op, in, out string) {
	p := params()
	var rlk ckks.SwitchingKey
	readFile(filepath.Join(dir, "rlk.bin"), &rlk)
	keys := ckks.NewEvaluationKeySet()
	keys.Rlk = &rlk
	ev := ckks.NewEvaluator(p, keys)

	var ct ckks.Ciphertext
	readFile(in, &ct)
	var res *ckks.Ciphertext
	switch op {
	case "square":
		res = ev.Rescale(ev.Square(&ct))
	case "double":
		res = ev.Add(&ct, &ct)
	case "negate":
		res = ev.Neg(&ct)
	case "addone":
		res = ev.AddConst(&ct, 1)
	default:
		die(fmt.Errorf("unknown op %q (square, double, negate, addone)", op))
	}
	writeFile(out, res)
	fmt.Printf("evaluated %s: %s -> %s (level %d)\n", op, in, out, res.Level())
}

func decrypt(dir, in string, n int) {
	p := params()
	var sk ckks.SecretKey
	readFile(filepath.Join(dir, "sk.bin"), &sk)
	var ct ckks.Ciphertext
	readFile(in, &ct)
	vals := ckks.NewEncoder(p).Decode(ckks.NewDecryptor(p, &sk).DecryptNew(&ct).Value, ct.Scale)
	if n > len(vals) {
		n = len(vals)
	}
	for i := 0; i < n; i++ {
		fmt.Printf("slot[%d] = %.6f\n", i, real(vals[i]))
	}
}

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: anaheim-fhe {keygen|encrypt|eval|decrypt} [flags]")
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", "keys", "key directory")
	switch cmd {
	case "keygen":
		die(fs.Parse(args))
		keygen(*dir)
	case "encrypt":
		values := fs.String("values", "", "comma-separated reals")
		out := fs.String("out", "ct.bin", "output ciphertext file")
		die(fs.Parse(args))
		encrypt(*dir, *values, *out)
	case "eval":
		op := fs.String("op", "square", "square | double | negate | addone")
		in := fs.String("in", "ct.bin", "input ciphertext file")
		out := fs.String("out", "ct-out.bin", "output ciphertext file")
		die(fs.Parse(args))
		eval(*dir, *op, *in, *out)
	case "decrypt":
		in := fs.String("in", "ct.bin", "input ciphertext file")
		n := fs.Int("n", 8, "slots to print")
		die(fs.Parse(args))
		decrypt(*dir, *in, *n)
	default:
		fmt.Fprintf(os.Stderr, "unknown command %q\n", cmd)
		os.Exit(2)
	}
}
