// Package ckks implements the RNS-CKKS approximate homomorphic encryption
// scheme (Cheon–Kim–Kim–Song) with the structure assumed by the Anaheim
// paper: residue-number-system polynomial arithmetic, hybrid key switching
// with decomposition number D = ceil(L/α) and special modulus P (Table I),
// hoisting- and MinKS-based homomorphic linear transforms (§III-B), and full
// bootstrapping with sparse-secret encapsulation, grouped-DFT CoeffToSlot /
// SlotToCoeff (the fftIter knob of §IV-C) and Chebyshev EvalMod.
//
// The functional implementation targets research-scale parameters; the
// paper-scale N = 2^16 configurations are exercised by the performance
// simulator (internal/trace, internal/gpu, internal/pim), which consumes the
// op structure defined here.
package ckks

import (
	"fmt"
	"math"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/ring"
)

// ParametersLiteral is the user-facing description of a CKKS parameter set.
type ParametersLiteral struct {
	LogN     int   // ring degree N = 2^LogN
	LogQ     []int // bit sizes of the Q primes; LogQ[0] is the base prime q0
	LogP     []int // bit sizes of the special-modulus primes (α = len(LogP))
	LogScale int   // log2 of the default scaling factor Δ
	HDense   int   // Hamming weight of the dense secret (Table IV H_d)
	HSparse  int   // Hamming weight of the sparse secret (Table IV H_s)
	Sigma    float64
}

// Parameters is a compiled, immutable CKKS parameter set.
type Parameters struct {
	logN  int
	n     int
	slots int

	ringQ *ring.Ring
	ringP *ring.Ring

	scale   float64
	hDense  int
	hSparse int
	sigma   float64
}

// NewParameters compiles a literal into a usable parameter set, generating
// the NTT-friendly prime chains.
func NewParameters(lit ParametersLiteral) (*Parameters, error) {
	if lit.LogN < 3 || lit.LogN > 16 {
		return nil, fmt.Errorf("ckks: LogN=%d out of supported range [3,16]", lit.LogN)
	}
	if len(lit.LogQ) < 1 || len(lit.LogP) < 1 {
		return nil, fmt.Errorf("ckks: need at least one Q prime and one P prime")
	}
	if lit.Sigma == 0 {
		lit.Sigma = 3.2
	}
	if lit.HDense == 0 {
		lit.HDense = 1 << 8
	}
	if lit.HSparse == 0 {
		lit.HSparse = 32
	}
	all := append(append([]int{}, lit.LogQ...), lit.LogP...)
	chain, err := modarith.GeneratePrimeChain(all, lit.LogN)
	if err != nil {
		return nil, err
	}
	qPrimes := chain[:len(lit.LogQ)]
	pPrimes := chain[len(lit.LogQ):]
	rq, err := ring.NewRing(lit.LogN, qPrimes)
	if err != nil {
		return nil, err
	}
	rp, err := ring.NewRing(lit.LogN, pPrimes)
	if err != nil {
		return nil, err
	}
	n := 1 << uint(lit.LogN)
	return &Parameters{
		logN:    lit.LogN,
		n:       n,
		slots:   n / 2,
		ringQ:   rq,
		ringP:   rp,
		scale:   math.Exp2(float64(lit.LogScale)),
		hDense:  lit.HDense,
		hSparse: lit.HSparse,
		sigma:   lit.Sigma,
	}, nil
}

// N returns the ring degree.
func (p *Parameters) N() int { return p.n }

// LogN returns log2 of the ring degree.
func (p *Parameters) LogN() int { return p.logN }

// Slots returns the number of complex slots (N/2).
func (p *Parameters) Slots() int { return p.slots }

// MaxLevel returns the highest usable ciphertext level L-1 (L = #Q primes).
func (p *Parameters) MaxLevel() int { return p.ringQ.MaxLevel() }

// Alpha returns the number of special-modulus primes α.
func (p *Parameters) Alpha() int { return len(p.ringP.Moduli) }

// Digits returns the decomposition number D = ceil(#limbs/α) for a
// key-switching operation at the given level.
func (p *Parameters) Digits(level int) int {
	a := p.Alpha()
	return (level + 1 + a - 1) / a
}

// RingQ returns the ciphertext-modulus ring.
func (p *Parameters) RingQ() *ring.Ring { return p.ringQ }

// RingP returns the special-modulus ring.
func (p *Parameters) RingP() *ring.Ring { return p.ringP }

// DefaultScale returns the default scaling factor Δ.
func (p *Parameters) DefaultScale() float64 { return p.scale }

// Sigma returns the error standard deviation.
func (p *Parameters) Sigma() float64 { return p.sigma }

// HDense and HSparse return the dense/sparse secret Hamming weights.
func (p *Parameters) HDense() int  { return p.hDense }
func (p *Parameters) HSparse() int { return p.hSparse }

// LogQP returns the total bit size of the full modulus PQ, the quantity
// constrained by the 128-bit security tables (log PQ < 1623 for N = 2^16,
// §IV-B).
func (p *Parameters) LogQP() float64 {
	total := 0.0
	for _, m := range p.ringQ.Moduli {
		total += math.Log2(float64(m.Q))
	}
	for _, m := range p.ringP.Moduli {
		total += math.Log2(float64(m.Q))
	}
	return total
}

func repeatInts(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// TestParameters returns a small, fast, insecure parameter set for unit
// tests: N=2^10, 6 scaling levels.
func TestParameters() ParametersLiteral {
	return ParametersLiteral{
		LogN:     10,
		LogQ:     append([]int{55}, repeatInts(45, 6)...),
		LogP:     []int{58, 58},
		LogScale: 45,
		HDense:   64,
		HSparse:  16,
	}
}

// BootTestParameters returns an insecure but functionally complete
// bootstrapping parameter set (N=2^11) with enough modulus budget for
// CoeffToSlot, EvalMod and SlotToCoeff. Chain bottom-to-top:
// q0 (60b) | 3 usable (50b) | 1 scale-fix (50b) | 3 S2C (50b) |
// 15 EvalMod (60b, scale ≈ q0 during the sine evaluation) |
// 1 conj-split (50b) | 3 C2S (50b).
func BootTestParameters() ParametersLiteral {
	logQ := []int{60}
	logQ = append(logQ, repeatInts(50, 3)...)  // usable post-boot levels
	logQ = append(logQ, 50)                    // scale fix
	logQ = append(logQ, repeatInts(50, 3)...)  // SlotToCoeff
	logQ = append(logQ, repeatInts(60, 15)...) // EvalMod
	logQ = append(logQ, 50)                    // conjugate split
	logQ = append(logQ, repeatInts(50, 3)...)  // CoeffToSlot
	return ParametersLiteral{
		LogN:     11,
		LogQ:     logQ,
		LogP:     []int{60, 60, 60},
		LogScale: 50,
		HDense:   64,
		HSparse:  16,
	}
}

// PaperParameters returns the Table IV configuration used by the Anaheim
// evaluation as a *structural* description: N = 2^16, L = 54, α = 14, D = 4,
// primes < 2^28 with double-prime scaling (Δ = 2^48 spans two 24-bit primes
// [1,45]), log PQ = 1618 < 1623 for standard 128-bit security (§IV-B). It is
// consumed by the performance simulator; instantiating it functionally is
// possible but slow.
func PaperParameters() ParametersLiteral {
	return ParametersLiteral{
		LogN:     16,
		LogQ:     repeatInts(24, 54),
		LogP:     repeatInts(23, 14),
		LogScale: 48,
		HDense:   1 << 8,
		HSparse:  1 << 5,
	}
}
