package dram

import "testing"

func TestConfigGeometry(t *testing.T) {
	a := A100HBM2()
	if a.TotalBanks() != 2560 {
		t.Fatalf("A100 banks = %d, want 2560 (5 stacks x 8 dies x 64 banks)", a.TotalBanks())
	}
	if a.ChunksPerRow() != 32 {
		t.Fatalf("chunks per row = %d, want 32 (8Kb rows / 256b chunks)", a.ChunksPerRow())
	}
	r := RTX4090GDDR6X()
	if r.TotalBanks() != 384 {
		t.Fatalf("4090 banks = %d, want 384 (12 dies x 32 banks)", r.TotalBanks())
	}
	if r.CapacityGB != 24 || a.CapacityGB != 80 {
		t.Fatal("capacities must match Table III")
	}
}

func TestRowSwitchComponents(t *testing.T) {
	a := A100HBM2()
	if a.RowSwitchNs() != a.TRCDns+a.TRPns+a.ActStaggerNs {
		t.Fatal("row switch must be tRCD + tRP + stagger")
	}
	c := A100CustomHBM()
	if c.ActStaggerNs != 0 {
		t.Fatal("custom-HBM hides the activation stagger (§VI-D)")
	}
	if c.RowSwitchNs() >= a.RowSwitchNs() {
		t.Fatal("custom-HBM row switches must be cheaper")
	}
}

func TestEnergyTiers(t *testing.T) {
	for _, c := range []Config{A100HBM2(), RTX4090GDDR6X(), A100CustomHBM()} {
		gpu := c.GPUAccessPJb()
		nearBank := c.PIMAccessPJb(false)
		logicDie := c.PIMAccessPJb(true)
		if !(nearBank < logicDie && logicDie < gpu) {
			t.Fatalf("%s: energy tiers must order near-bank < logic-die < GPU: %.2f %.2f %.2f",
				c.Name, nearBank, logicDie, gpu)
		}
	}
	// GDDR6X off-chip signaling (PCB) costs more than HBM's interposer.
	if RTX4090GDDR6X().OffChipPJb <= A100HBM2().OffChipPJb {
		t.Fatal("GDDR6X off-chip energy should exceed HBM's")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{HBM2: "HBM2", GDDR6X: "GDDR6X", CustomHBM: "custom-HBM"} {
		if k.String() != want {
			t.Fatalf("Kind(%d).String() = %q", int(k), k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Fatal("unknown kinds should still format")
	}
}

func TestBandwidthOrdering(t *testing.T) {
	if RTX4090GDDR6X().ExternalBWGBs >= A100HBM2().ExternalBWGBs {
		t.Fatal("A100 must have higher DRAM bandwidth (1802 vs 939 GB/s)")
	}
}
