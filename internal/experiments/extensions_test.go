package experiments

import "testing"

func TestExtGeneralPurposePIM(t *testing.T) {
	ms, tbl := ExtGeneralPurposePIM()
	if len(ms) != 3 || tbl == nil {
		t.Fatal("want GPU, Anaheim, and UPMEM-style rows")
	}
	byUnit := map[string]ExtGeneralPurposeMetrics{}
	for _, m := range ms {
		byUnit[m.Unit] = m
	}
	anaheim := byUnit["A100 near-bank"]
	gp := byUnit["A100 general-purpose PIM (UPMEM-style)"]
	if anaheim.Speedup <= 1.2 {
		t.Fatalf("Anaheim unit should clearly beat the GPU, got %.2fx", anaheim.Speedup)
	}
	// §IX: general-purpose PIM gains "stay at modest levels even compared
	// to CPUs" — in our model it actively loses to the GPU on FHE.
	if gp.Speedup >= 1.0 {
		t.Fatalf("UPMEM-style PIM should not beat the GPU on FHE, got %.2fx", gp.Speedup)
	}
	if gp.Speedup >= anaheim.Speedup {
		t.Fatal("the custom MMAC datapath must be decisive")
	}
}

func TestExtPipelining(t *testing.T) {
	ms, tbl := ExtPipelining()
	if len(ms) != 6 || tbl == nil {
		t.Fatal("want all six workloads")
	}
	for _, m := range ms {
		if m.OverlapMs > m.SerialMs {
			t.Fatalf("%s: overlap bound exceeds serial time", m.Workload)
		}
		// §V-C: "further gains from pipelining would be marginal" once
		// Anaheim has shrunk the element-wise share.
		if m.MaxGainPct > 35 {
			t.Fatalf("%s: pipelining bound %.1f%% is not marginal — model drifted", m.Workload, m.MaxGainPct)
		}
		if m.MaxGainPct < 0 {
			t.Fatalf("%s: negative gain", m.Workload)
		}
	}
}

func TestExtMemoryTechnologies(t *testing.T) {
	ms, tbl := ExtMemoryTechnologies()
	if len(ms) != 4 || tbl == nil {
		t.Fatal("want four memory technologies")
	}
	byName := map[string]ExtMemoryTechMetrics{}
	for _, m := range ms {
		byName[m.Memory] = m
		if m.Speedup < 1.0 {
			t.Errorf("%s: Anaheim should not lose to the GPU (%.2fx)", m.Memory, m.Speedup)
		}
	}
	// §IV-D: the element-wise share grows as external bandwidth shrinks.
	hbm := byName["A100-HBM2e"]
	ddr := byName["DDR5-6400x8ch"]
	if ddr.EWShareGPU <= hbm.EWShareGPU {
		t.Error("lower bandwidth must raise the element-wise share")
	}
	if ddr.Speedup <= hbm.Speedup {
		t.Error("PIM leverage should grow as external bandwidth shrinks")
	}
}
