// Command anaheim-serve runs the FHE serving runtime as an HTTP/JSON
// service. Clients create a session by uploading their evaluation keys
// (relinearization + Galois; the secret key never leaves the client), then
// submit op-DAG jobs over base64-encoded ciphertexts and poll for results.
//
// Usage:
//
//	anaheim-serve -addr :8080 -workers 4 -queue 16 -maxjobs 64
//
// Endpoints:
//
//	GET    /healthz
//	GET    /metrics                       Prometheus text-format metrics
//	GET    /debug/spans                   recent job/op span trace (text table)
//	POST   /v1/sessions                   create a session from evaluation keys
//	DELETE /v1/sessions/{sid}             detach a session, freeing its keys
//	POST   /v1/sessions/{sid}/transforms  register a named linear transform
//	POST   /v1/sessions/{sid}/jobs        submit a job (tier: latency|standard|batch;
//	                                      429 + Retry-After when saturated)
//	GET    /v1/jobs/{id}                  poll job status
//	GET    /v1/jobs/{id}/result           fetch output ciphertexts
//
// With -pprof ADDR, net/http/pprof is served on a side listener so
// profiling traffic never competes with (or exposes itself to) the public
// serving port.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/anaheim-sim/anaheim/internal/engine"
	"github.com/anaheim-sim/anaheim/internal/obs"
	"github.com/anaheim-sim/anaheim/internal/trace"
)

type serveConfig struct {
	addr        string
	pprofAddr   string
	workers     int
	queue       int
	maxJobs     int
	maxBody     int64
	deadline    time.Duration
	batchWindow time.Duration
	maxBatch    int
	cacheBytes  int64
	tenantJobs  int
}

func parseFlags(args []string) (serveConfig, error) {
	fs := flag.NewFlagSet("anaheim-serve", flag.ContinueOnError)
	cfg := serveConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.StringVar(&cfg.pprofAddr, "pprof", "", "side-port address for net/http/pprof (empty = disabled)")
	fs.IntVar(&cfg.workers, "workers", 0, "op worker goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.queue, "queue", 0, "ready-op queue depth (0 = 4x workers)")
	fs.IntVar(&cfg.maxJobs, "maxjobs", 0, "max in-flight jobs before 429 (0 = default)")
	fs.Int64Var(&cfg.maxBody, "maxbody", 0, "max request body bytes before 413 (0 = 64MiB)")
	fs.DurationVar(&cfg.deadline, "deadline", 0, "default per-job deadline (0 = engine default)")
	fs.DurationVar(&cfg.batchWindow, "batchwindow", 0, "cross-session batch staging window (0 = batching off)")
	fs.IntVar(&cfg.maxBatch, "maxbatch", 0, "max ops per fused dispatch group (0 = default 8)")
	fs.Int64Var(&cfg.cacheBytes, "cachebytes", 0, "eval-key cache byte budget; LRU sessions evicted beyond it (0 = 1GiB)")
	fs.IntVar(&cfg.tenantJobs, "tenantjobs", 0, "max in-flight jobs per session before 429 (0 = default 16)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// observedMux wraps the engine's API with the observability endpoints.
func observedMux(e *engine.Engine) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/", engine.NewHTTPHandler(e))
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.Default.WritePrometheus(w)
	})
	mux.HandleFunc("GET /debug/spans", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, trace.SpanTable(obs.DefaultTracer.Snapshot()).String())
	})
	return mux
}

// pprofMux builds an explicit pprof mux so the profiling handlers bind only
// to the side listener, never to the public serving mux.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// run starts the engine and HTTP server and blocks until ctx is cancelled,
// then drains both. Split from main so tests can drive it.
func run(ctx context.Context, cfg serveConfig, ready chan<- string) error {
	e := engine.New(engine.Config{
		Workers:           cfg.workers,
		QueueSize:         cfg.queue,
		MaxActiveJobs:     cfg.maxJobs,
		MaxBodyBytes:      cfg.maxBody,
		DefaultDeadline:   cfg.deadline,
		BatchWindow:       cfg.batchWindow,
		MaxBatch:          cfg.maxBatch,
		SessionCacheBytes: cfg.cacheBytes,
		MaxJobsPerTenant:  cfg.tenantJobs,
	})
	defer e.Close()

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           observedMux(e),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("anaheim-serve: listen %s: %w", cfg.addr, err)
	}
	log.Printf("anaheim-serve: listening on %s", ln.Addr())

	var pprofSrv *http.Server
	if cfg.pprofAddr != "" {
		pln, err := net.Listen("tcp", cfg.pprofAddr)
		if err != nil {
			ln.Close()
			return fmt.Errorf("anaheim-serve: pprof listen %s: %w", cfg.pprofAddr, err)
		}
		pprofSrv = &http.Server{Handler: pprofMux(), ReadHeaderTimeout: 10 * time.Second}
		log.Printf("anaheim-serve: pprof on %s", pln.Addr())
		go pprofSrv.Serve(pln)
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if pprofSrv != nil {
			pprofSrv.Shutdown(shutCtx)
		}
		return srv.Shutdown(shutCtx)
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
