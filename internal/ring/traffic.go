package ring

import "github.com/anaheim-sim/anaheim/internal/obs"

// Estimated-DRAM-traffic accounting. The Anaheim thesis is that FHE is
// bottlenecked by data movement, so the ring layer publishes an explicit
// bytes-moved model next to its wall-clock numbers:
//
//   - A barriered kernel (one forEachLimb sweep per op) streams every operand
//     row it reads from DRAM and writes every output row back: a polynomial
//     at N=2^14 with 16 limbs is 2 MB per operand, far beyond L1/L2, so
//     consecutive kernels in a chain re-fetch the same rows.
//   - A pipelined chain (see pipeline.go) executes a whole stage chain for
//     one limb before touching the next, so each distinct row is fetched at
//     most once and written back at most once per chain, no matter how many
//     stages touch it — the accumulator of a 2·digits-deep MAC ladder costs
//     one read and one write instead of 2·digits of each.
//
// The model counts coefficient rows only (limbs × N × 8 bytes); twiddle,
// index, and scalar tables are small, shared, and cache-resident, so they
// are excluded. Counters are exported as
// `ring_bytes_moved_total{class=...,mode=...}` plus `ring_bytes_saved_total`
// (the barriered-equivalent minus actual estimate of every pipelined chain),
// which is what `anaheim-bench -membw` samples around each op.
var (
	bytesElemwise  = obs.Default.Counter(`ring_bytes_moved_total{class="elemwise",mode="barriered"}`)
	bytesMac       = obs.Default.Counter(`ring_bytes_moved_total{class="mac",mode="barriered"}`)
	bytesReduce    = obs.Default.Counter(`ring_bytes_moved_total{class="reduce",mode="barriered"}`)
	bytesTransform = obs.Default.Counter(`ring_bytes_moved_total{class="transform",mode="barriered"}`)
	bytesAut       = obs.Default.Counter(`ring_bytes_moved_total{class="aut",mode="barriered"}`)
	bytesPipelined = obs.Default.Counter(`ring_bytes_moved_total{class="chain",mode="pipelined"}`)
	bytesSaved     = obs.Default.Counter("ring_bytes_saved_total")
)

// accountRows charges `rows` row-streams (reads plus writes) of `limbs`
// limbs, N coefficients each, to the given op class.
func accountRows(c *obs.Counter, rows, limbs, n int) {
	c.Add(float64(rows) * float64(limbs) * float64(n) * 8)
}
