package sched

import (
	"fmt"
	"strings"

	"github.com/anaheim-sim/anaheim/internal/trace"
)

// RenderGantt draws an ASCII Gantt chart of a timeline (Fig 4a style): one
// lane for GPU kernels split by class, one for PIM kernels. width is the
// chart width in characters.
func RenderGantt(timeline []Segment, totalNs float64, width int) string {
	if len(timeline) == 0 || totalNs <= 0 {
		return "(empty timeline)\n"
	}
	if width < 20 {
		width = 20
	}
	scale := float64(width) / totalNs

	lanes := []struct {
		label string
		match func(Segment) bool
		fill  byte
	}{
		{"GPU ModSwitch", func(s Segment) bool {
			return !s.PIM && (s.Class == trace.ClassNTT || s.Class == trace.ClassINTT || s.Class == trace.ClassBConv)
		}, 'M'},
		{"GPU elem-wise", func(s Segment) bool { return !s.PIM && s.Class == trace.ClassEW }, 'E'},
		{"GPU automorph", func(s Segment) bool { return !s.PIM && s.Class == trace.ClassAut }, 'A'},
		{"PIM kernels  ", func(s Segment) bool { return s.PIM }, 'P'},
	}

	var sb strings.Builder
	for _, lane := range lanes {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		used := false
		for _, seg := range timeline {
			if !lane.match(seg) {
				continue
			}
			used = true
			start := int(seg.StartNs * scale)
			end := int((seg.StartNs + seg.DurNs) * scale)
			if end == start && end < width {
				end = start + 1
			}
			for i := start; i < end && i < width; i++ {
				row[i] = lane.fill
			}
		}
		if used {
			sb.WriteString(fmt.Sprintf("%s |%s|\n", lane.label, row))
		}
	}
	sb.WriteString(fmt.Sprintf("%s  0%sT=%.0fus\n", strings.Repeat(" ", 13),
		strings.Repeat(" ", width-10), totalNs/1e3))
	return sb.String()
}
