// Package modarith provides 64-bit modular arithmetic primitives used by the
// RNS-CKKS stack: Barrett and Montgomery reductions, Shoup multiplication for
// fixed operands (NTT twiddle factors), modular exponentiation and inversion,
// and primitive-root search for number-theoretic transforms.
//
// All moduli are odd primes q < 2^61 so that lazy values up to 4q (and the
// transient sums up to 8q that appear inside Harvey butterflies) fit in a
// uint64 without overflow.
//
// # Lazy-reduction domains
//
// The hot kernels defer exact reduction and instead track which interval a
// value lives in (DESIGN.md §3.8 has the full discipline):
//
//   - exact:     [0, q)  — what every public non-Lazy function accepts/returns
//   - lazy:      [0, 2q) — *Lazy kernel outputs; normalized by ReduceTwoQ
//   - butterfly: [0, 4q) — internal to the Harvey NTT stages (internal/ntt)
//
// MulShoupLazy and MulBarrettLazy both land in [0, 2q) and tolerate lazy
// (and, for MulShoupLazy, arbitrary uint64) variable operands, which is what
// lets whole NTT + MAC chains run with one exact reduction at the end.
package modarith

import (
	"fmt"
	"math/bits"
)

// MaxModulusBits is the largest supported modulus size in bits.
const MaxModulusBits = 61

// Modulus bundles a prime modulus with its precomputed reduction constants.
// The zero value is not usable; construct with NewModulus.
type Modulus struct {
	Q     uint64 // the modulus itself
	Bits  int    // bit length of Q
	QHalf uint64 // floor(Q/2), used for centered representations

	// Montgomery constants: QInvNeg = -Q^{-1} mod 2^64 and
	// RSq = 2^128 mod Q (to enter Montgomery form with one MRed).
	QInvNeg uint64
	RSq     uint64

	// Barrett constants: BRedHi:BRedLo = floor(2^128 / Q), the two words of
	// the reciprocal used by MulBarrett/MulBarrettLazy to replace the
	// hardware division in variable-operand products. TwoQ = 2*Q caches the
	// lazy-reduction bound.
	BRedHi uint64
	BRedLo uint64
	TwoQ   uint64
}

// NewModulus precomputes reduction constants for an odd modulus q.
// q must be odd (required by Montgomery reduction) and < 2^61.
func NewModulus(q uint64) (Modulus, error) {
	if q < 3 || q&1 == 0 {
		return Modulus{}, fmt.Errorf("modarith: modulus %d must be an odd integer >= 3", q)
	}
	if bits.Len64(q) > MaxModulusBits {
		return Modulus{}, fmt.Errorf("modarith: modulus %d exceeds %d bits", q, MaxModulusBits)
	}
	m := Modulus{
		Q:     q,
		Bits:  bits.Len64(q),
		QHalf: q >> 1,
	}
	// Newton iteration for -q^{-1} mod 2^64.
	qInv := q // correct mod 2^3
	for i := 0; i < 5; i++ {
		qInv *= 2 - q*qInv
	}
	m.QInvNeg = -qInv
	// 2^128 mod q via two reductions of 2^64 mod q.
	r := (1<<63)%q + (1<<63)%q // 2^64 mod q, < 2q < 2^62
	r %= q
	hi, lo := bits.Mul64(r, r)
	_, m.RSq = bits.Div64(hi%q, lo, q)
	// floor(2^128/q) by schoolbook long division over base-2^64 digits
	// [1,0,0]: the leading digit divides to 0 remainder 1, then each
	// bits.Div64 has its high word < q by construction.
	var rem uint64
	m.BRedHi, rem = bits.Div64(1, 0, q)
	m.BRedLo, _ = bits.Div64(rem, 0, q)
	m.TwoQ = 2 * q
	return m, nil
}

// MustModulus is NewModulus that panics on error; for package-internal tables
// and tests with known-good inputs.
func MustModulus(q uint64) Modulus {
	m, err := NewModulus(q)
	if err != nil {
		panic(err)
	}
	return m
}

// Add returns a+b mod q for a,b < q.
func (m Modulus) Add(a, b uint64) uint64 {
	s := a + b
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns a-b mod q for a,b < q.
func (m Modulus) Sub(a, b uint64) uint64 {
	d := a - b
	if d > a { // borrow
		d += m.Q
	}
	return d
}

// Neg returns -a mod q for a < q.
func (m Modulus) Neg(a uint64) uint64 {
	if a == 0 {
		return 0
	}
	return m.Q - a
}

// Reduce returns a mod q for arbitrary a.
func (m Modulus) Reduce(a uint64) uint64 { return a % m.Q }

// Mul returns a*b mod q for a,b < q using a 128-bit product and hardware
// division. Exact for all inputs; the hot NTT paths use MulShoup instead.
func (m Modulus) Mul(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	_, r := bits.Div64(hi%m.Q, lo, m.Q)
	return r
}

// MulAdd returns a*b + c mod q for a,b,c < q.
func (m Modulus) MulAdd(a, b, c uint64) uint64 { return m.Add(m.Mul(a, b), c) }

// MulBarrettLazy returns a*b mod q up to one multiple of q: the result is in
// [0, 2q) and congruent to a*b. Operands may themselves be lazy (a,b < 2q):
// the derivation below only needs a*b < 2^128, and 4q^2 < 2^124. This is the
// core of the fused multiply-accumulate kernels: the quotient t ≈
// floor(a*b/q) comes from the precomputed 128-bit reciprocal instead of a
// hardware division, and the final exact reduction is deferred to ReduceTwoQ
// after the whole accumulation chain.
func (m Modulus) MulBarrettLazy(a, b uint64) uint64 {
	xhi, xlo := bits.Mul64(a, b)
	// t = floor(x * floor(2^128/q) / 2^128) approximated by summing the
	// high words of the three contributing partial products and dropping
	// their low-word carries. Each dropped piece underestimates t by < 1
	// (three in total, plus one from flooring the reciprocal), so the raw
	// remainder is in [0, 4q) — one conditional 2q subtraction lands in
	// [0, 2q). Requires 4q < 2^64, guaranteed by MaxModulusBits = 61.
	t := xhi * m.BRedHi
	hhi, _ := bits.Mul64(xlo, m.BRedHi)
	t += hhi
	hhi, _ = bits.Mul64(xhi, m.BRedLo)
	t += hhi
	r := xlo - t*m.Q
	if r >= m.TwoQ {
		r -= m.TwoQ
	}
	return r
}

// MulBarrett returns a*b mod q exactly for a,b < q, using the Barrett
// reciprocal instead of hardware division.
func (m Modulus) MulBarrett(a, b uint64) uint64 {
	r := m.MulBarrettLazy(a, b)
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// AddLazy returns a+b reduced to [0, 2q), for a,b < 2q. The sum is < 4q <
// 2^63, so no overflow. Used to keep accumulators in the lazy domain.
func (m Modulus) AddLazy(a, b uint64) uint64 {
	s := a + b
	if s >= m.TwoQ {
		s -= m.TwoQ
	}
	return s
}

// ReduceTwoQ maps a lazy value in [0, 2q) to its exact residue in [0, q).
func (m Modulus) ReduceTwoQ(a uint64) uint64 {
	if a >= m.Q {
		a -= m.Q
	}
	return a
}

// SubLazy returns a value congruent to a-b in [0, 4q) for a,b < 2q, without
// any conditional: a - b + 2q. This is the subtraction half of the Harvey
// butterfly; the caller's domain bookkeeping must absorb the 4q bound (a
// multiply via MulShoupLazy does so for free).
func (m Modulus) SubLazy(a, b uint64) uint64 {
	return a - b + m.TwoQ
}

// ReduceFourQ maps a butterfly-domain value in [0, 4q) to its exact residue
// in [0, q): two conditional subtractions.
func (m Modulus) ReduceFourQ(a uint64) uint64 {
	if a >= m.TwoQ {
		a -= m.TwoQ
	}
	if a >= m.Q {
		a -= m.Q
	}
	return a
}

// ReduceFourQLazy maps a butterfly-domain value in [0, 4q) to the lazy
// domain [0, 2q): one conditional subtraction.
func (m Modulus) ReduceFourQLazy(a uint64) uint64 {
	if a >= m.TwoQ {
		a -= m.TwoQ
	}
	return a
}

// ShoupPrecomp returns floor(w * 2^64 / q), the Shoup companion constant for
// multiplying by the fixed operand w < q.
func (m Modulus) ShoupPrecomp(w uint64) uint64 {
	// floor(w * 2^64 / q); bits.Div64 requires w < q, which holds for all
	// valid fixed operands.
	q, _ := bits.Div64(w, 0, m.Q)
	return q
}

// MulShoup returns a*w mod q where wShoup = ShoupPrecomp(w). Requires a < q
// (w < q by construction). This is the fast fixed-operand multiplication used
// throughout the NTT.
func (m Modulus) MulShoup(a, w, wShoup uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	r := a*w - hi*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MulShoupLazy is MulShoup without the final correction: the result is in
// [0, 2q) and congruent to a*w — for ANY a, not just a < q. With
// w' = floor(w·2^64/q) and c = a·w' mod 2^64, the returned value equals
// (a·(w·2^64 - w'·q) + c·q)/2^64 < q·(a/2^64 + 1) < 2q. This is what lets
// the Harvey NTT butterflies feed [0, 4q) values straight into the twiddle
// multiply without reducing first.
func (m Modulus) MulShoupLazy(a, w, wShoup uint64) uint64 {
	hi, _ := bits.Mul64(a, wShoup)
	return a*w - hi*m.Q
}

// MRed performs Montgomery reduction: returns a*b/2^64 mod q. If b is in
// Montgomery form (b = x*2^64 mod q), the result is a*x mod q.
func (m Modulus) MRed(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	mq := lo * m.QInvNeg
	h2, _ := bits.Mul64(mq, m.Q)
	var carry uint64
	if lo != 0 {
		carry = 1
	}
	r := hi + h2 + carry
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// MForm converts a < q into Montgomery form: a*2^64 mod q.
func (m Modulus) MForm(a uint64) uint64 { return m.MRed(a, m.RSq) }

// IForm converts out of Montgomery form: a/2^64 mod q.
func (m Modulus) IForm(a uint64) uint64 { return m.MRed(a, 1) }

// Pow returns a^e mod q by square-and-multiply.
func (m Modulus) Pow(a, e uint64) uint64 {
	result := uint64(1)
	base := a % m.Q
	for e > 0 {
		if e&1 == 1 {
			result = m.Mul(result, base)
		}
		base = m.Mul(base, base)
		e >>= 1
	}
	return result
}

// Inv returns a^{-1} mod q (q prime, a != 0 mod q) via Fermat's little
// theorem.
func (m Modulus) Inv(a uint64) (uint64, error) {
	if a%m.Q == 0 {
		return 0, fmt.Errorf("modarith: no inverse of 0 mod %d", m.Q)
	}
	return m.Pow(a, m.Q-2), nil
}

// MustInv is Inv that panics on error.
func (m Modulus) MustInv(a uint64) uint64 {
	v, err := m.Inv(a)
	if err != nil {
		panic(err)
	}
	return v
}

// Centered maps a residue a < q to its centered signed representative in
// (-q/2, q/2].
func (m Modulus) Centered(a uint64) int64 {
	if a > m.QHalf {
		return int64(a) - int64(m.Q)
	}
	return int64(a)
}

// FromCentered maps a signed value to its residue mod q.
func (m Modulus) FromCentered(v int64) uint64 {
	r := v % int64(m.Q)
	if r < 0 {
		r += int64(m.Q)
	}
	return uint64(r)
}

// primeFactors returns the distinct prime factors of n by trial division.
// The moduli used in this package have smooth q-1 = 2^k * odd with small odd
// cofactors, so trial division is adequate.
func primeFactors(n uint64) []uint64 {
	var fs []uint64
	for _, p := range []uint64{2, 3, 5, 7, 11, 13} {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	for p := uint64(17); p*p <= n; p += 2 {
		if n%p == 0 {
			fs = append(fs, p)
			for n%p == 0 {
				n /= p
			}
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// PrimitiveRoot returns a generator of the multiplicative group Z_q^*.
func (m Modulus) PrimitiveRoot() (uint64, error) {
	factors := primeFactors(m.Q - 1)
	for g := uint64(2); g < m.Q; g++ {
		ok := true
		for _, p := range factors {
			if m.Pow(g, (m.Q-1)/p) == 1 {
				ok = false
				break
			}
		}
		if ok {
			return g, nil
		}
	}
	return 0, fmt.Errorf("modarith: no primitive root found mod %d", m.Q)
}

// PrimitiveNthRoot returns a primitive n-th root of unity mod q. Requires
// n | q-1.
func (m Modulus) PrimitiveNthRoot(n uint64) (uint64, error) {
	if (m.Q-1)%n != 0 {
		return 0, fmt.Errorf("modarith: %d does not divide q-1 = %d", n, m.Q-1)
	}
	g, err := m.PrimitiveRoot()
	if err != nil {
		return 0, err
	}
	psi := m.Pow(g, (m.Q-1)/n)
	// Verify order is exactly n.
	if m.Pow(psi, n/2) == 1 {
		return 0, fmt.Errorf("modarith: root order check failed for n=%d mod %d", n, m.Q)
	}
	return psi, nil
}
