package ckks

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// LinearTransform is a slot-space linear map in the diagonal (Halevi–Shoup)
// representation used for FHE linear transforms (§III-B):
//
//	(M·u)_j = Σ_r Diags[r][j] · u_{(j+r) mod slots} ,
//
// i.e. M·u = Σ_r d_r ⊙ (u ≪ r), evaluated homomorphically with K = |Diags|
// PMULT and HROT pairs.
type LinearTransform struct {
	Slots int
	Diags map[int][]complex128

	// encMu guards encCache: level -> rotation -> diagonal encoded in the Q
	// and P bases. Encoding a diagonal costs an IFFT plus two NTTs; it
	// depends only on (diagonal, level), so it is the paper's "offline"
	// plaintext preprocessing (§V-B pre-rotates these same plaintexts) and
	// is cached across evaluations. The cache serves the fused and unfused
	// paths alike, keeping their comparison about kernel shape only.
	encMu    sync.Mutex
	encCache map[int]map[int]encodedDiag
}

// encodedDiag is one diagonal lifted to the extended basis: NTT-form
// plaintexts over Q (at some level) and over P.
type encodedDiag struct {
	q, p *ring.Poly
}

// NewLinearTransform copies the provided diagonals.
func NewLinearTransform(slots int, diags map[int][]complex128) *LinearTransform {
	lt := &LinearTransform{
		Slots:    slots,
		Diags:    make(map[int][]complex128, len(diags)),
		encCache: make(map[int]map[int]encodedDiag),
	}
	for r, d := range diags {
		v := make([]complex128, slots)
		copy(v, d)
		lt.Diags[((r%slots)+slots)%slots] = v
	}
	return lt
}

// encodedAt returns the transform's diagonals encoded for a ciphertext at
// level lvl (scale = the level's top prime), building and caching them on
// first use.
func (lt *LinearTransform) encodedAt(enc *Encoder, lvl int, scale float64) (map[int]encodedDiag, error) {
	lt.encMu.Lock()
	defer lt.encMu.Unlock()
	if lt.encCache == nil {
		lt.encCache = make(map[int]map[int]encodedDiag)
	}
	if m, ok := lt.encCache[lvl]; ok {
		return m, nil
	}
	m := make(map[int]encodedDiag, len(lt.Diags))
	for r, diag := range lt.Diags {
		pq, pp, err := enc.encodeDiagQP(diag, lvl, scale)
		if err != nil {
			return nil, err
		}
		m[r] = encodedDiag{q: pq, p: pp}
	}
	lt.encCache[lvl] = m
	return m, nil
}

// Rotations returns the rotation indices needed to evaluate the transform.
func (lt *LinearTransform) Rotations() []int {
	out := make([]int, 0, len(lt.Diags))
	for r := range lt.Diags {
		if r != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Apply evaluates the transform on a plaintext vector (reference for tests).
func (lt *LinearTransform) Apply(u []complex128) []complex128 {
	n := lt.Slots
	out := make([]complex128, n)
	for r, d := range lt.Diags {
		for j := 0; j < n; j++ {
			out[j] += d[j] * u[(j+r)%n]
		}
	}
	return out
}

// encodeDiagQP encodes a diagonal into both the Q basis (level lvl) and the
// P basis, sharing the same integer coefficients — the "larger plaintexts in
// the extended modulus PQ" that hoisting requires (§III-B).
func (e *Encoder) encodeDiagQP(values []complex128, lvl int, scale float64) (*ring.Poly, *ring.Poly, error) {
	slots := e.params.Slots()
	if len(values) > slots {
		return nil, nil, fmt.Errorf("ckks: diagonal longer than slot count")
	}
	vals := make([]complex128, slots)
	copy(vals, values)
	e.specialIFFT(vals)

	nh := e.params.N() / 2
	ints := make([]int64, e.params.N())
	for j := 0; j < nh; j++ {
		ints[j] = int64(math.Round(real(vals[j]) * scale))
		ints[j+nh] = int64(math.Round(imag(vals[j]) * scale))
	}
	rq, rp := e.params.RingQ(), e.params.RingP()
	pq := ring.SmallVectorToPoly(rq, lvl, ints)
	pp := ring.SmallVectorToPoly(rp, rp.MaxLevel(), ints)
	rq.NTT(pq, lvl)
	rp.NTT(pp, rp.MaxLevel())
	return pq, pp, nil
}

// EvaluateLinearTransformHoisted computes M·u with the hoisting optimization
// of Fig 1/Fig 5: one ModUp for all K rotations, PMULT and accumulation in
// the extended modulus PQ, and a single hoisted ModDown at the end. The
// diagonals are encoded at the scale of the ciphertext's top prime so that
// the caller's Rescale restores the input scale exactly.
func (ev *Evaluator) EvaluateLinearTransformHoisted(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	fused := FusionEnabled()
	piped := pipelineActive()
	if fused {
		defer obsLinTransFused.done(time.Now())
	} else {
		defer obsLinTransUnfused.done(time.Now())
	}
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := ct.Level()
	ptScale := float64(rq.Moduli[lvl].Q)

	diags, err := lt.encodedAt(enc, lvl, ptScale)
	if err != nil {
		return nil, err
	}

	// Resolve every Galois key before decomposing: the hoisted digits are
	// shared across all rotations, so the plan (and its per-key band check)
	// must see the full key list up front.
	swks := make(map[int]*SwitchingKey, len(diags))
	planKeys := make([]*SwitchingKey, 0, len(diags))
	for r := range diags {
		if r == 0 {
			continue
		}
		swk, err := ev.keys.GaloisKey(rq.GaloisElement(r))
		if err != nil {
			return nil, err
		}
		swks[r] = swk
		planKeys = append(planKeys, swk)
	}
	plan := ev.planFor(lvl, planKeys...)
	lvlP := plan.Alpha - 1

	dec := ev.decomposePlan(ct.C1, lvl, plan)
	defer dec.release(p)

	// Q-basis accumulators for the rotation-0 term and the c0 parts;
	// QP-basis accumulators for the hoisted key-switched parts.
	accQ0, accQ1 := rq.NewPoly(lvl), rq.NewPoly(lvl)
	accQ0.IsNTT, accQ1.IsNTT = true, true
	accE0q, accE1q := rq.NewPoly(lvl), rq.NewPoly(lvl)
	accE0p, accE1p := rp.NewPoly(lvlP), rp.NewPoly(lvlP)
	accE0q.IsNTT, accE1q.IsNTT, accE0p.IsNTT, accE1p.IsNTT = true, true, true, true
	anyExt := false

	for r, ed := range diags {
		ptQ, ptP := ed.q, ed.p
		if r == 0 {
			if fused {
				rq.MulCoeffsAddLazy(accQ0, ct.C0, ptQ, lvl)
				rq.MulCoeffsAddLazy(accQ1, ct.C1, ptQ, lvl)
			} else {
				rq.MulCoeffsAdd(accQ0, ct.C0, ptQ, lvl)
				rq.MulCoeffsAdd(accQ1, ct.C1, ptQ, lvl)
			}
			continue
		}
		anyExt = true
		g := rq.GaloisElement(r)
		swk := swks[r]
		if fused && piped {
			// One pipeline Run per rotation: digit NTTs (first consumer
			// only), the gadget-product MACs, and the five AutAccum MACs
			// execute per limb while the rows are cache-resident.
			ev.autAccumPipelined(dec, swk, accE0q, accE1q, accE0p, accE1p, accQ0, ct.C0, ptQ, ptP, g)
			continue
		}
		if fused {
			// Fused KeyMult: the gadget-product accumulators stay lazy —
			// the AutAccum MACs below tolerate multiplicands in [0, 2q),
			// so the four per-rotation reductions are skipped entirely.
			u0q, u1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
			u0p, u1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
			u0q.IsNTT, u1q.IsNTT, u0p.IsNTT, u1p.IsNTT = true, true, true, true
			ev.gadgetProductLazyInto(dec, swk, u0q, u1q, u0p, u1p)
			// AutAccum (§V-B Fig 6): the automorphism permutation, the
			// PMULT by the diagonal, and the accumulation run as one pass
			// per component — no rotated temporaries, one deferred
			// reduction per accumulator.
			rq.AutMulCoeffsAddLazy(accE0q, u0q, ptQ, g, lvl)
			rq.AutMulCoeffsAddLazy(accE1q, u1q, ptQ, g, lvl)
			rp.AutMulCoeffsAddLazy(accE0p, u0p, ptP, g, lvlP)
			rp.AutMulCoeffsAddLazy(accE1p, u1p, ptP, g, lvlP)
			rq.PutPoly(u0q)
			rq.PutPoly(u1q)
			rp.PutPoly(u0p)
			rp.PutPoly(u1p)
			// The σ(c0) contribution stays in the Q basis.
			rq.AutMulCoeffsAddLazy(accQ0, ct.C0, ptQ, g, lvl)
			continue
		}
		// Unfused: automorphism of the extended-basis partial results into
		// temporaries, then separate PMULT+accumulate passes.
		u0q, u0p, u1q, u1p := ev.gadgetProduct(dec, swk)
		rot0q, rot1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
		rot0p, rot1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
		rq.AutomorphismNTT(rot0q, u0q, g, lvl)
		rq.AutomorphismNTT(rot1q, u1q, g, lvl)
		rp.AutomorphismNTT(rot0p, u0p, g, lvlP)
		rp.AutomorphismNTT(rot1p, u1p, g, lvlP)
		rq.PutPoly(u0q)
		rq.PutPoly(u1q)
		rp.PutPoly(u0p)
		rp.PutPoly(u1p)
		rq.MulCoeffsAdd(accE0q, rot0q, ptQ, lvl)
		rq.MulCoeffsAdd(accE1q, rot1q, ptQ, lvl)
		rp.MulCoeffsAdd(accE0p, rot0p, ptP, lvlP)
		rp.MulCoeffsAdd(accE1p, rot1p, ptP, lvlP)
		rq.PutPoly(rot0q)
		rq.PutPoly(rot1q)
		rp.PutPoly(rot0p)
		rp.PutPoly(rot1p)
		// The σ(c0) contribution stays in the Q basis.
		rotC0 := rq.GetPoly(lvl)
		rq.AutomorphismNTT(rotC0, ct.C0, g, lvl)
		rq.MulCoeffsAdd(accQ0, rotC0, ptQ, lvl)
		rq.PutPoly(rotC0)
	}

	if fused {
		if piped {
			// End-of-sweep normalization of all lazy accumulators in one
			// pipeline Run (one barrier instead of one per accumulator).
			qs := []*ring.Poly{accQ0, accQ1}
			var ps []*ring.Poly
			if anyExt {
				qs = append(qs, accE0q, accE1q)
				ps = append(ps, accE0p, accE1p)
			}
			ev.reduceManyPipelined(qs, lvl, ps, lvlP)
		} else {
			rq.ReduceLazy(accQ0, lvl)
			rq.ReduceLazy(accQ1, lvl)
			if anyExt {
				rq.ReduceLazy(accE0q, lvl)
				rq.ReduceLazy(accE1q, lvl)
				rp.ReduceLazy(accE0p, lvlP)
				rp.ReduceLazy(accE1p, lvlP)
			}
		}
	}

	out := &Ciphertext{Scale: ct.Scale * ptScale}
	if anyExt {
		var d0, d1 *ring.Poly
		if piped {
			d0, d1 = ev.modDownPairPipelined(accE0q, accE0p, accE1q, accE1p, accQ0, accQ1, lvl)
		} else {
			d0 = ev.ModDown(accE0q, accE0p, lvl)
			d1 = ev.ModDown(accE1q, accE1p, lvl)
			rq.Add(d0, d0, accQ0, lvl)
			rq.Add(d1, d1, accQ1, lvl)
		}
		out.C0, out.C1 = d0, d1
	} else {
		out.C0, out.C1 = accQ0, accQ1
	}
	return out, nil
}

// EvaluateLinearTransformMinKS computes M·u with the minimum-key-switching
// strategy (§III-B): only the rotation-by-one key is used, iterating
// HROT(·, 1) and accumulating the needed diagonals. It trades K evaluation
// keys for K sequential key switches.
func (ev *Evaluator) EvaluateLinearTransformMinKS(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	p := ev.params
	rq := p.RingQ()
	lvl := ct.Level()
	ptScale := float64(rq.Moduli[lvl].Q)

	maxRot := 0
	for r := range lt.Diags {
		if r > maxRot {
			maxRot = r
		}
	}

	diags, err := lt.encodedAt(enc, lvl, ptScale)
	if err != nil {
		return nil, err
	}

	fused := FusionEnabled()
	acc0, acc1 := rq.NewPoly(lvl), rq.NewPoly(lvl)
	acc0.IsNTT, acc1.IsNTT = true, true
	cur := ct
	for k := 0; k <= maxRot; k++ {
		if k > 0 {
			var err error
			cur, err = ev.Rotate(cur, 1)
			if err != nil {
				return nil, err
			}
		}
		ed, ok := diags[k]
		if !ok {
			continue
		}
		if fused {
			rq.MulCoeffsAddLazy(acc0, cur.C0, ed.q, lvl)
			rq.MulCoeffsAddLazy(acc1, cur.C1, ed.q, lvl)
		} else {
			rq.MulCoeffsAdd(acc0, cur.C0, ed.q, lvl)
			rq.MulCoeffsAdd(acc1, cur.C1, ed.q, lvl)
		}
	}
	if fused {
		rq.ReduceLazy(acc0, lvl)
		rq.ReduceLazy(acc1, lvl)
	}
	return &Ciphertext{C0: acc0, C1: acc1, Scale: ct.Scale * ptScale}, nil
}
