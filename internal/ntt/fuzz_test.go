package ntt

import (
	"encoding/binary"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

// fuzzTables are fixed per-logN tables so the fuzzer spends its budget on
// coefficient patterns, not prime generation.
var fuzzTables = func() []*Tables {
	tables := make([]*Tables, 7) // logN 1..6
	for logN := 1; logN <= 6; logN++ {
		primes, err := modarith.GenerateNTTPrimes(55, logN, 1)
		if err != nil {
			panic(err)
		}
		tbl, err := NewTables(modarith.MustModulus(primes[0]), logN)
		if err != nil {
			panic(err)
		}
		tables[logN] = tbl
	}
	return tables
}()

// FuzzNTTRoundTrip feeds arbitrary coefficient vectors (including lazy-domain
// values in [0, 2q)) through every transform variant and cross-checks them:
// exact and lazy round trips must reproduce the input, lazy outputs must stay
// below 2q and agree with the exact outputs modulo q, and the element-wise
// product must match the big.Int schoolbook convolution.
func FuzzNTTRoundTrip(f *testing.F) {
	f.Add(uint8(3), []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(uint8(1), []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})
	f.Add(uint8(6), []byte{})
	f.Fuzz(func(t *testing.T, logNByte uint8, data []byte) {
		logN := int(logNByte)%6 + 1
		tbl := fuzzTables[logN]
		q := tbl.Mod.Q
		a := make([]uint64, tbl.N)
		b := make([]uint64, tbl.N)
		for i := range a {
			var buf [8]byte
			if (i+1)*8 <= len(data) {
				copy(buf[:], data[i*8:])
			}
			a[i] = binary.LittleEndian.Uint64(buf[:]) % (2 * q) // lazy domain
			b[i] = (a[i]*2654435761 + uint64(i)) % q
		}

		exact := append([]uint64(nil), a...)
		tbl.Forward(exact)
		lazy := append([]uint64(nil), a...)
		tbl.ForwardLazy(lazy)
		for i := range exact {
			if exact[i] >= q {
				t.Fatalf("Forward output %d at %d not < q", exact[i], i)
			}
			if lazy[i] >= 2*q {
				t.Fatalf("ForwardLazy output %d at %d not < 2q", lazy[i], i)
			}
			if tbl.Mod.ReduceTwoQ(lazy[i]) != exact[i] {
				t.Fatalf("lazy/exact forward mismatch at %d: %d !≡ %d", i, lazy[i], exact[i])
			}
		}
		tbl.Inverse(exact)
		tbl.InverseLazy(lazy)
		for i := range exact {
			want := tbl.Mod.ReduceTwoQ(a[i])
			if exact[i] != want {
				t.Fatalf("exact round trip differs at %d: %d != %d", i, exact[i], want)
			}
			if tbl.Mod.ReduceTwoQ(lazy[i]) != want {
				t.Fatalf("lazy round trip differs at %d: %d !≡ %d", i, lazy[i], want)
			}
		}

		ra := make([]uint64, tbl.N)
		for i := range ra {
			ra[i] = tbl.Mod.ReduceTwoQ(a[i])
		}
		want := bigIntNegacyclic(ra, b, q)
		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tbl.ForwardLazy(fa)
		tbl.Forward(fb)
		c := make([]uint64, tbl.N)
		tbl.MulCoeffs(c, fa, fb)
		tbl.Inverse(c)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("convolution differs at %d: got %d want %d", i, c[i], want[i])
			}
		}
	})
}
