package ckks

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// SecretKey holds the ternary secret s embedded in both the Q and P bases
// (NTT domain).
type SecretKey struct {
	Q *ring.Poly // over RingQ at max level
	P *ring.Poly // over RingP
}

// PublicKey is an RLWE encryption of zero: (B, A) = (-A·s + e, A) over Q.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey is a gadget ("hybrid") key-switching key with D digits
// (Table I: 2·D polynomials in R_PQ). Digit d encrypts P·g_d·w under the key
// s', where g_d = (Q/Q_d)·[(Q/Q_d)^{-1}]_{Q_d} is the RNS gadget factor:
//
//	B[d] + A[d]·s' = P·g_d·w + e_d  (mod PQ).
//
// For rotation keys, w = s and s' = σ_g^{-1}(s), the layout that supports
// hoisting: the ModUp digits of c1 can be computed once and reused across
// rotations, with the automorphism applied after the inner product (§III-B).
type SwitchingKey struct {
	BQ, AQ []*ring.Poly // Q parts, indexed by digit, max level, NTT
	BP, AP []*ring.Poly // P parts

	// Bands holds the non-legacy gadget shapes of the parameter set's
	// level-aware plans, one variant per (alpha, width). A key without
	// bands (e.g. unmarshalled from an old blob) still serves every level
	// through the legacy digits above; the evaluator falls back per key.
	Bands []*SwitchingKeyBand
}

// SwitchingKeyBand is one realized gadget shape: digits Width Q limbs wide
// at the band's top level, extended by the P prefix p_0···p_{Alpha-1}, so
// digit d satisfies B[d] + A[d]·s' = P_Alpha·g_d·w + e_d over Q ∪ P_Alpha.
// Lower levels of the band consume the same digits by limb truncation,
// exactly as the legacy digits are consumed below the top level.
type SwitchingKeyBand struct {
	Alpha, Width   int
	BQ, AQ, BP, AP []*ring.Poly
}

// Digits returns the decomposition number D of the key.
func (k *SwitchingKey) Digits() int { return len(k.BQ) }

// gadget resolves the digit arrays serving a plan: the base arrays for the
// legacy shape (alpha and width both aTop), else the matching band. ok is
// false when the key predates the parameter set's bands (old marshal blobs)
// or the band cannot serve the plan's level.
func (k *SwitchingKey) gadget(pl GadgetPlan, aTop int) (bQ, aQ, bP, aP []*ring.Poly, ok bool) {
	if pl.Alpha == aTop && pl.Width == aTop {
		return k.BQ, k.AQ, k.BP, k.AP, true
	}
	for _, b := range k.Bands {
		if b.Alpha == pl.Alpha && b.Width == pl.Width &&
			len(b.BQ) >= pl.Digits && b.BQ[pl.Digits-1].Level() >= pl.Level {
			return b.BQ, b.AQ, b.BP, b.AP, true
		}
	}
	return nil, nil, nil, nil, false
}

// polysBytes sums the coefficient storage of a digit array.
func polysBytes(ps []*ring.Poly) int64 {
	var n int64
	for _, p := range ps {
		if p != nil && len(p.Coeffs) > 0 {
			n += int64(len(p.Coeffs)) * int64(len(p.Coeffs[0])) * 8
		}
	}
	return n
}

// CoeffBytes returns the coefficient bytes the key pins in memory,
// including every band variant — the figure keycache accounting uses.
func (k *SwitchingKey) CoeffBytes() int64 {
	n := polysBytes(k.BQ) + polysBytes(k.AQ) + polysBytes(k.BP) + polysBytes(k.AP)
	for _, b := range k.Bands {
		n += polysBytes(b.BQ) + polysBytes(b.AQ) + polysBytes(b.BP) + polysBytes(b.AP)
	}
	return n
}

// EvaluationKeySet bundles the keys an Evaluator may need.
type EvaluationKeySet struct {
	Rlk *SwitchingKey            // relinearization key (w = s²)
	Gal map[uint64]*SwitchingKey // Galois keys by Galois element
}

// NewEvaluationKeySet returns an empty key set.
func NewEvaluationKeySet() *EvaluationKeySet {
	return &EvaluationKeySet{Gal: make(map[uint64]*SwitchingKey)}
}

// GaloisKey returns the switching key for a Galois element, or an error
// listing it as missing.
func (s *EvaluationKeySet) GaloisKey(galEl uint64) (*SwitchingKey, error) {
	if k, ok := s.Gal[galEl]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("ckks: missing Galois key for element %d", galEl)
}

// CoeffBytes returns the coefficient bytes of every key in the set,
// band variants included.
func (s *EvaluationKeySet) CoeffBytes() int64 {
	var n int64
	if s.Rlk != nil {
		n += s.Rlk.CoeffBytes()
	}
	for _, k := range s.Gal {
		n += k.CoeffBytes()
	}
	return n
}

// KeyGenerator samples keys for a parameter set.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator returns a deterministic key generator (seeded; see
// ring.NewSampler).
func NewKeyGenerator(params *Parameters, seed int64) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(seed)}
}

// GenSecretKey samples a dense ternary secret of Hamming weight params.HDense.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	return kg.genSecretKeyWithWeight(kg.params.HDense())
}

// GenSparseSecretKey samples a sparse ternary secret (Hamming weight H_s)
// for the sparse-secret encapsulation of bootstrapping [9].
func (kg *KeyGenerator) GenSparseSecretKey() *SecretKey {
	return kg.genSecretKeyWithWeight(kg.params.HSparse())
}

func (kg *KeyGenerator) genSecretKeyWithWeight(h int) *SecretKey {
	p := kg.params
	v := kg.sampler.TernaryVector(p.N(), h)
	sk := &SecretKey{
		Q: ring.SmallVectorToPoly(p.RingQ(), p.MaxLevel(), v),
		P: ring.SmallVectorToPoly(p.RingP(), p.RingP().MaxLevel(), v),
	}
	p.RingQ().NTT(sk.Q, p.MaxLevel())
	p.RingP().NTT(sk.P, p.RingP().MaxLevel())
	return sk
}

// GenPublicKey returns an RLWE encryption of zero under sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	p := kg.params
	rq := p.RingQ()
	lvl := p.MaxLevel()
	a := kg.sampler.UniformPoly(rq, lvl, true)
	e := kg.sampler.GaussianPoly(rq, lvl, p.Sigma())
	rq.NTT(e, lvl)
	b := rq.NewPoly(lvl)
	b.IsNTT = true
	rq.MulCoeffs(b, a, sk.Q, lvl)
	rq.Neg(b, b, lvl)
	rq.Add(b, b, e, lvl)
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey produces a key with digit d satisfying
// B[d] + A[d]·under = P·g_d·w + e_d over PQ, where w and under are NTT-form
// secrets over (Q, P).
func (kg *KeyGenerator) genSwitchingKey(wQ *ring.Poly, underQ, underP *ring.Poly) *SwitchingKey {
	p := kg.params
	aTop := p.Alpha()
	bQ, aQ, bP, aP := kg.genGadgetDigits(wQ, underQ, underP, p.MaxLevel(), aTop, aTop)
	key := &SwitchingKey{BQ: bQ, AQ: aQ, BP: bP, AP: aP}
	kg.attachBands(key, wQ, underQ, underP)
	return key
}

// genGadgetDigits emits the digit polynomials of one gadget shape: digits
// width Q limbs wide at level lvlQ, extended by the P prefix
// P_alpha = p_0···p_{alpha-1}, so digit d satisfies
// B[d] + A[d]·under = P_alpha·g_d·w + e_d over Q_lvlQ ∪ P_alpha. The legacy
// shape is (lvlQ, alpha, width) = (MaxLevel, α_top, α_top); its draw order
// is unchanged, so base digits are bit-identical to pre-band keygen.
func (kg *KeyGenerator) genGadgetDigits(wQ, underQ, underP *ring.Poly, lvlQ, alpha, width int) (bQs, aQs, bPs, aPs []*ring.Poly) {
	p := kg.params
	rq, rp := p.RingQ(), p.RingP()
	lvlP := alpha - 1
	digits := (lvlQ + width) / width // ceil((lvlQ+1)/width)

	// P_alpha mod q_i for the in-group gadget term.
	pModQ := make([]uint64, lvlQ+1)
	for i := 0; i <= lvlQ; i++ {
		prod := uint64(1)
		for _, pm := range rp.Moduli[:alpha] {
			prod = rq.Moduli[i].Mul(prod, pm.Q%rq.Moduli[i].Q)
		}
		pModQ[i] = prod
	}

	bQs = make([]*ring.Poly, digits)
	aQs = make([]*ring.Poly, digits)
	bPs = make([]*ring.Poly, digits)
	aPs = make([]*ring.Poly, digits)
	for d := 0; d < digits; d++ {
		aQ := kg.sampler.UniformPoly(rq, lvlQ, true)
		aP := kg.sampler.UniformPoly(rp, lvlP, true)
		ev := kg.sampler.GaussianVector(p.N(), p.Sigma())
		eQ := ring.SmallVectorToPoly(rq, lvlQ, ev)
		eP := ring.SmallVectorToPoly(rp, lvlP, ev)
		rq.NTT(eQ, lvlQ)
		rp.NTT(eP, lvlP)

		bQ := rq.NewPoly(lvlQ)
		bQ.IsNTT = true
		rq.MulCoeffs(bQ, aQ, underQ, lvlQ)
		rq.Neg(bQ, bQ, lvlQ)
		rq.Add(bQ, bQ, eQ, lvlQ)
		// Gadget term: P_alpha·g_d·w has residue (P_alpha mod q_i)·w_i for
		// i in the digit's prime group and 0 elsewhere (and 0 mod every
		// p_j in the prefix).
		lo, hi := d*width, min((d+1)*width, lvlQ+1)
		for i := lo; i < hi; i++ {
			mod := rq.Moduli[i]
			dst, src := bQ.Coeffs[i], wQ.Coeffs[i]
			c := pModQ[i]
			cs := mod.ShoupPrecomp(c)
			for j := range dst {
				dst[j] = mod.Add(dst[j], mod.MulShoup(src[j], c, cs))
			}
		}

		bP := rp.NewPoly(lvlP)
		bP.IsNTT = true
		rp.MulCoeffs(bP, aP, underP, lvlP)
		rp.Neg(bP, bP, lvlP)
		rp.Add(bP, bP, eP, lvlP)

		bQs[d], aQs[d] = bQ, aQ
		bPs[d], aPs[d] = bP, aP
	}
	return bQs, aQs, bPs, aPs
}

// attachBands realizes the parameter set's non-legacy gadget shapes on the
// key. Shapes whose width is a whole multiple of the base stride (and use
// the full P) are merged from the base digits — no fresh secret-dependent
// sampling; other shapes are generated fresh under the same secrets, so no
// band introduces new secret-key material.
func (kg *KeyGenerator) attachBands(key *SwitchingKey, wQ, underQ, underP *ring.Poly) {
	p := kg.params
	bands := p.GadgetBands()
	if len(bands) == 0 {
		return
	}
	aTop := p.Alpha()
	for _, b := range bands {
		var kb *SwitchingKeyBand
		if b.Alpha == aTop && b.Width%aTop == 0 {
			kb = kg.mergeBand(key, b)
		} else {
			bQ, aQ, bP, aP := kg.genGadgetDigits(wQ, underQ, underP, b.TopLevel, b.Alpha, b.Width)
			kb = &SwitchingKeyBand{Alpha: b.Alpha, Width: b.Width, BQ: bQ, AQ: aQ, BP: bP, AP: aP}
		}
		key.Bands = append(key.Bands, kb)
	}
}

// mergeBand realizes an (α_top, m·α_top) band by summing m adjacent base
// digits: the merged gadget indicator is the disjoint union of the merged
// base groups, so ΣB[d] + (ΣA[d])·under = P·g_e·w + Σe_d holds exactly with
// the same secrets, the error growing only m-fold. This is sound precisely
// because the band width is a whole multiple of the base stride; a
// straddling width would overlap the next group's primes and is generated
// fresh instead. Base digits whose groups lie entirely above the band's top
// level are excluded — they would contribute pure mask noise.
func (kg *KeyGenerator) mergeBand(key *SwitchingKey, b GadgetBand) *SwitchingKeyBand {
	p := kg.params
	rq, rp := p.RingQ(), p.RingP()
	lvlQ, lvlP := b.TopLevel, rp.MaxLevel()
	aTop := p.Alpha()
	m := b.Width / aTop
	coveringBase := min((lvlQ+aTop)/aTop, len(key.BQ))
	digits := (lvlQ + b.Width) / b.Width

	kb := &SwitchingKeyBand{
		Alpha: b.Alpha, Width: b.Width,
		BQ: make([]*ring.Poly, digits),
		AQ: make([]*ring.Poly, digits),
		BP: make([]*ring.Poly, digits),
		AP: make([]*ring.Poly, digits),
	}
	for e := 0; e < digits; e++ {
		bQ := rq.NewPoly(lvlQ)
		aQ := rq.NewPoly(lvlQ)
		bP := rp.NewPoly(lvlP)
		aP := rp.NewPoly(lvlP)
		bQ.IsNTT, aQ.IsNTT, bP.IsNTT, aP.IsNTT = true, true, true, true
		for d := e * m; d < min((e+1)*m, coveringBase); d++ {
			rq.Add(bQ, bQ, key.BQ[d], lvlQ)
			rq.Add(aQ, aQ, key.AQ[d], lvlQ)
			rp.Add(bP, bP, key.BP[d], lvlP)
			rp.Add(aP, aP, key.AP[d], lvlP)
		}
		kb.BQ[e], kb.AQ[e] = bQ, aQ
		kb.BP[e], kb.AP[e] = bP, aP
	}
	return kb
}

// GenRelinearizationKey returns the key switching s² -> s.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *SwitchingKey {
	p := kg.params
	rq := p.RingQ()
	lvl := p.MaxLevel()
	s2 := rq.NewPoly(lvl)
	rq.MulCoeffs(s2, sk.Q, sk.Q, lvl)
	s2.IsNTT = true
	return kg.genSwitchingKey(s2, sk.Q, sk.P)
}

// GenGaloisKey returns the key enabling the automorphism σ_g on ciphertexts
// under sk, in the hoisting-compatible layout (w = s, under = σ_g^{-1}(s)).
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, galEl uint64) *SwitchingKey {
	p := kg.params
	rq, rp := p.RingQ(), p.RingP()
	gInv := invGalois(galEl, uint64(2*p.N()))
	underQ := rq.NewPoly(p.MaxLevel())
	rq.AutomorphismNTT(underQ, sk.Q, gInv, p.MaxLevel())
	underP := rp.NewPoly(rp.MaxLevel())
	rp.AutomorphismNTT(underP, sk.P, gInv, rp.MaxLevel())
	return kg.genSwitchingKey(sk.Q, underQ, underP)
}

// GenRotationKeys populates ks with Galois keys for the given slot
// rotations.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, ks *EvaluationKeySet, rotations []int) {
	rq := kg.params.RingQ()
	for _, r := range rotations {
		g := rq.GaloisElement(r)
		if _, ok := ks.Gal[g]; !ok {
			ks.Gal[g] = kg.GenGaloisKey(sk, g)
		}
	}
}

// GenConjugationKey adds the key for complex conjugation.
func (kg *KeyGenerator) GenConjugationKey(sk *SecretKey, ks *EvaluationKeySet) {
	g := kg.params.RingQ().GaloisElementConjugate()
	if _, ok := ks.Gal[g]; !ok {
		ks.Gal[g] = kg.GenGaloisKey(sk, g)
	}
}

// GenKeySwitchKey returns the key switching ciphertexts under skFrom to
// skTo (used by sparse-secret encapsulation).
func (kg *KeyGenerator) GenKeySwitchKey(skFrom, skTo *SecretKey) *SwitchingKey {
	return kg.genSwitchingKey(skFrom.Q, skTo.Q, skTo.P)
}

// invGalois returns g^{-1} mod m for odd g (m a power of two).
func invGalois(g, m uint64) uint64 {
	// The multiplicative group mod 2^k has exponent 2^{k-2}; brute power is
	// fine for our sizes, but extended Euclid is simplest and exact.
	var inv func(a, m int64) int64
	inv = func(a, m int64) int64 {
		g0, g1 := m, a
		x0, x1 := int64(0), int64(1)
		for g1 != 0 {
			q := g0 / g1
			g0, g1 = g1, g0-q*g1
			x0, x1 = x1, x0-q*x1
		}
		return ((x0 % m) + m) % m
	}
	return uint64(inv(int64(g%m), int64(m)))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
