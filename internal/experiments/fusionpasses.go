package experiments

import (
	"github.com/anaheim-sim/anaheim/internal/fusion"
	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/report"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

// ExtFusionPassMetrics is one cumulative fusion-pass stage of the bootstrap
// trace: the kernel count and DRAM traffic after the pass, and the simulated
// time on the GPU-only and GPU+PIM platforms.
type ExtFusionPassMetrics struct {
	Stage      string
	Kernels    int
	TrafficGB  float64
	GPUMs      float64
	SpeedupGPU float64
	PIMMs      float64
	SpeedupPIM float64
}

// ExtFusionPasses rebuilds the paper's §V op-sequence rewrites one pass at a
// time: starting from the naive split-kernel bootstrap trace, it applies
// SwapAutPMult, AutAccum, PAccum and CAccum cumulatively, simulating each
// stage on the GPU-only and A100 near-bank co-execution models. The final
// stage is kernel-for-kernel what the fused Anaheim builder emits (asserted
// by the fusion package's tests), so the rows decompose the fused
// configuration's win into per-pass contributions.
func ExtFusionPasses() ([]ExtFusionPassMetrics, *report.Table) {
	p := trace.PaperParams()
	boot := workloads.DefaultBoot()
	cfgGPU := sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar()}
	u := pim.A100NearBank()
	cfgPIM := sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: &u}

	gpuStages := fusion.Report(workloads.Bootstrap(p, trace.SplitNaive(), boot), cfgGPU, fusion.AllPasses()...)
	pimStages := fusion.Report(workloads.Bootstrap(p, trace.SplitNaive(), boot), cfgPIM, fusion.AllPasses()...)

	var out []ExtFusionPassMetrics
	tbl := &report.Table{
		Title: "Extension: per-pass fusion gains on Boot (naive split kernels -> Anaheim, cumulative)",
		Headers: []string{"After pass", "kernels", "traffic",
			"GPU-only", "speedup", "A100+PIM", "speedup"},
	}
	for i, s := range gpuStages {
		m := ExtFusionPassMetrics{
			Stage:      s.Name,
			Kernels:    s.Kernels,
			TrafficGB:  s.Bytes / 1e9,
			GPUMs:      s.SimTimeNs / 1e6,
			SpeedupGPU: s.SpeedupVsBase(gpuStages[0]),
			PIMMs:      pimStages[i].SimTimeNs / 1e6,
			SpeedupPIM: pimStages[i].SpeedupVsBase(pimStages[0]),
		}
		out = append(out, m)
		tbl.AddRow(m.Stage, report.F(float64(m.Kernels), 0), report.F(m.TrafficGB, 2)+"GB",
			report.F(m.GPUMs, 2)+"ms", report.X(m.SpeedupGPU),
			report.F(m.PIMMs, 2)+"ms", report.X(m.SpeedupPIM))
	}
	tbl.AddNote("swap-aut-pmult reorders only (§V-B); AutAccum = Fig 6; PAccum/CAccum = Table II compounds")
	return out, tbl
}
