package engine

import (
	"sync"

	"github.com/anaheim-sim/anaheim/internal/obs"
)

// engineMetrics is the scheduler's view into the observability registry:
// job lifecycle counters, worker-pool occupancy, and per-op-kind queue-wait
// and execution histograms.
type engineMetrics struct {
	reg *obs.Registry

	jobsAdmitted    *obs.Counter
	jobsRejected    *obs.Counter
	jobsDone        *obs.Counter
	jobsFailed      *obs.Counter
	jobsExpired     *obs.Counter
	jobsCancelled   *obs.Counter
	fusionOpsFused  *obs.Counter
	fusionFallbacks *obs.Counter
	workersBusy     *obs.Gauge

	opsExpired        *obs.Counter   // ops skipped because their job expired before dispatch
	batchesDispatched *obs.Counter   // fused dispatch groups (>1 op)
	batchedOps        *obs.Counter   // ops that rode in fused groups
	batchOccupancy    *obs.Histogram // ops per fused group
	sessionsEvicted   *obs.Counter   // sessions dropped by the key cache for space

	mu      sync.Mutex
	perOp   map[string]*opMetrics
	perTier map[string]*tierMetrics
}

// tierMetrics is one priority tier's admission instrument set.
type tierMetrics struct {
	admitted *obs.Counter
	rejected *obs.Counter
}

// opMetrics is one op kind's instrument set.
type opMetrics struct {
	total     *obs.Counter
	failures  *obs.Counter
	queueWait *obs.Histogram
	exec      *obs.Histogram
}

func newEngineMetrics(reg *obs.Registry) *engineMetrics {
	return &engineMetrics{
		reg:             reg,
		jobsAdmitted:    reg.Counter("engine_jobs_admitted_total"),
		jobsRejected:    reg.Counter("engine_jobs_rejected_total"),
		jobsDone:        reg.Counter("engine_jobs_done_total"),
		jobsFailed:      reg.Counter("engine_jobs_failed_total"),
		jobsExpired:     reg.Counter("engine_jobs_expired_total"),
		jobsCancelled:   reg.Counter("engine_jobs_cancelled_total"),
		fusionOpsFused:  reg.Counter("engine_fusion_ops_eliminated_total"),
		fusionFallbacks: reg.Counter("engine_fusion_fallbacks_total"),
		workersBusy:     reg.Gauge("engine_workers_busy"),

		opsExpired:        reg.Counter("engine_ops_expired_total"),
		batchesDispatched: reg.Counter("engine_batches_dispatched_total"),
		batchedOps:        reg.Counter("engine_batched_ops_total"),
		batchOccupancy: reg.HistogramWith("engine_batch_occupancy",
			[]float64{1, 2, 3, 4, 6, 8, 12, 16, 24, 32}),
		sessionsEvicted: reg.Counter("engine_sessions_evicted_total"),

		perOp:   make(map[string]*opMetrics),
		perTier: make(map[string]*tierMetrics),
	}
}

// tier returns (creating on first use) the instrument set for one tier.
func (m *engineMetrics) tier(name string) *tierMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	tm, ok := m.perTier[name]
	if !ok {
		label := `{tier="` + name + `"}`
		tm = &tierMetrics{
			admitted: m.reg.Counter("engine_tier_jobs_admitted_total" + label),
			rejected: m.reg.Counter("engine_tier_jobs_rejected_total" + label),
		}
		m.perTier[name] = tm
	}
	return tm
}

// op returns (creating on first use) the instrument set for one op kind.
func (m *engineMetrics) op(kind string) *opMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	om, ok := m.perOp[kind]
	if !ok {
		label := `{op="` + kind + `"}`
		om = &opMetrics{
			total:     m.reg.Counter("engine_ops_total" + label),
			failures:  m.reg.Counter("engine_op_failures_total" + label),
			queueWait: m.reg.Histogram("engine_op_queue_wait_seconds" + label),
			exec:      m.reg.Histogram("engine_op_exec_seconds" + label),
		}
		m.perOp[kind] = om
	}
	return om
}

// finished classifies one terminal job into exactly one lifecycle counter.
func (m *engineMetrics) finished(err error, expired, cancelled bool) {
	switch {
	case err == nil:
		m.jobsDone.Inc()
	case expired:
		m.jobsExpired.Inc()
	case cancelled:
		m.jobsCancelled.Inc()
	default:
		m.jobsFailed.Inc()
	}
}
