package ckks

// Higher-level evaluator routines built from the basic functions: the
// rotation-tree inner sum used by dot products and convolution reductions,
// exponentiation by squaring, and Goldschmidt division — the "optimized
// routines for advanced features" the Anaheim software framework exposes to
// programmers (§V-C: linear algebra, arbitrary polynomial evaluation, DNN
// support).

import "fmt"

// InnerSum replaces every slot with the sum of its window of n consecutive
// slots (n a power of two ≤ slots): slot i becomes Σ_{j<n} slot (i+j).
// Requires rotation keys for the powers of two below n. Consumes no levels.
func (ev *Evaluator) InnerSum(ct *Ciphertext, n int) (*Ciphertext, error) {
	if n <= 0 || n&(n-1) != 0 || n > ev.params.Slots() {
		return nil, fmt.Errorf("ckks: InnerSum window %d must be a power of two <= %d", n, ev.params.Slots())
	}
	out := ct
	for s := 1; s < n; s <<= 1 {
		rot, err := ev.Rotate(out, s)
		if err != nil {
			return nil, err
		}
		out = ev.Add(out, rot)
	}
	return out, nil
}

// EvalPower computes ct^k by square-and-multiply (consumes ceil(log2 k)+
// popcount levels).
func (ev *Evaluator) EvalPower(ct *Ciphertext, k int) (*Ciphertext, error) {
	if k < 1 {
		return nil, fmt.Errorf("ckks: power %d must be >= 1", k)
	}
	var acc *Ciphertext
	base := ct
	for k > 0 {
		if k&1 == 1 {
			if acc == nil {
				acc = base
			} else {
				a := ev.matchLevel(acc, base)
				b := ev.matchLevel(base, acc)
				acc = ev.Rescale(ev.MulRelin(a, b, nil))
			}
		}
		k >>= 1
		if k > 0 {
			base = ev.Rescale(ev.Square(base))
		}
	}
	return acc, nil
}

// EvalInverse approximates 1/x by Goldschmidt iteration for slots in
// (0, 2): y₀ = 2-x, then y ← y·(2-x·y), doubling the correct bits each
// round. Each iteration consumes two levels.
func (ev *Evaluator) EvalInverse(ct *Ciphertext, iterations int) *Ciphertext {
	// y = 2 - x
	y := ev.AddConst(ev.Neg(ct), 2)
	x := ct
	for i := 0; i < iterations; i++ {
		xy := ev.Rescale(ev.MulRelin(ev.matchLevel(x, y), y, nil))
		t := ev.AddConst(ev.Neg(xy), 2)
		y = ev.Rescale(ev.MulRelin(ev.matchLevel(y, t), t, nil))
		x = ev.matchLevel(x, y)
	}
	return y
}
