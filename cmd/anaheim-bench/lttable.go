package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// runLinTransTable emits the linear-transform strategy rows of a -micro JSON
// as a markdown table: ns/op next to the deterministic key-switch count per
// sweep (rotationsPerOp), with the BSGS-vs-per-diagonal pair summarized as a
// speedup line. The rotation column is what makes strategy regressions
// visible in CI even when shared-runner ns/op jitter hides them.
func runLinTransTable(out io.Writer, path string) error {
	rep, err := readReport(path)
	if err != nil {
		return err
	}
	byOp := make(map[string]microResult)
	var ops []string
	for _, r := range rep.Results {
		if strings.HasPrefix(r.Op, "lintrans") {
			byOp[r.Op] = r
			ops = append(ops, r.Op)
		}
	}
	if len(ops) == 0 {
		return fmt.Errorf("anaheim-bench: %s has no lintrans rows — was it produced with -micro?", path)
	}
	sort.Strings(ops)

	fmt.Fprintln(out, "## Linear-transform sweeps (BSGS vs per-diagonal hoisting)")
	fmt.Fprintln(out)
	fmt.Fprintln(out, "| op | ns/op | key switches/op | allocs/op |")
	fmt.Fprintln(out, "|---|---|---|---|")
	for _, op := range ops {
		r := byOp[op]
		rot := "—"
		if r.RotationsOp > 0 {
			rot = fmt.Sprintf("%.0f", r.RotationsOp)
		}
		fmt.Fprintf(out, "| %s | %.0f | %s | %d |\n", r.Op, r.NsPerOp, rot, r.AllocsOp)
	}

	bsgs, haveBSGS := byOp["lintrans-bsgs"]
	pd, havePD := byOp["lintrans-perdiag"]
	if haveBSGS && havePD && bsgs.NsPerOp > 0 && bsgs.RotationsOp > 0 {
		fmt.Fprintln(out)
		fmt.Fprintf(out, "BSGS runs the dense sweep with %.0f key switches vs %.0f per-diagonal (%.1fx fewer), %.2fx faster end to end (interleaved timing).\n",
			bsgs.RotationsOp, pd.RotationsOp, pd.RotationsOp/bsgs.RotationsOp, pd.NsPerOp/bsgs.NsPerOp)
	}
	return nil
}
