package ring

import (
	"testing"
)

// The fused kernels are exact mod q: every test demands bit-identical
// agreement with the composition of unfused kernels they replace.

func TestMulCoeffsAddLazyMatchesUnfused(t *testing.T) {
	r := newTestRing(t, 6, 10) // above the parallel-limb threshold
	s := NewSampler(11)
	level := r.MaxLevel()

	acc := s.UniformPoly(r, level, true)
	want := acc.CopyNew()

	fused := acc.CopyNew()
	tmp := r.NewPoly(level)
	for k := 0; k < 7; k++ {
		a := s.UniformPoly(r, level, true)
		b := s.UniformPoly(r, level, true)
		r.MulCoeffsAddLazy(fused, a, b, level)
		r.MulCoeffs(tmp, a, b, level)
		r.Add(want, want, tmp, level)
	}
	r.ReduceLazy(fused, level)
	if !fused.Equal(want) {
		t.Fatal("lazy MAC chain != MulCoeffs+Add composition")
	}
}

func TestAutMulCoeffsAddLazyMatchesUnfused(t *testing.T) {
	r := newTestRing(t, 6, 10)
	s := NewSampler(13)
	level := r.MaxLevel()

	acc := s.UniformPoly(r, level, true)
	want := acc.CopyNew()
	fused := acc.CopyNew()

	rot := r.NewPoly(level)
	tmp := r.NewPoly(level)
	for _, rotBy := range []int{1, 2, 5, -3} {
		g := r.GaloisElement(rotBy)
		a := s.UniformPoly(r, level, true)
		b := s.UniformPoly(r, level, true)

		r.AutMulCoeffsAddLazy(fused, a, b, g, level)

		r.AutomorphismNTT(rot, a, g, level)
		r.MulCoeffs(tmp, rot, b, level)
		r.Add(want, want, tmp, level)
	}
	r.ReduceLazy(fused, level)
	if !fused.Equal(want) {
		t.Fatal("fused aut-MAC != Automorphism+MulCoeffs+Add composition")
	}
}

func TestMulByLimbScalarsAddLazyMatchesUnfused(t *testing.T) {
	r := newTestRing(t, 5, 9)
	s := NewSampler(17)
	level := r.MaxLevel()

	scalars := make([]uint64, level+1)
	for i := range scalars {
		scalars[i] = uint64(i*i+3) % r.Moduli[i].Q
	}

	acc := s.UniformPoly(r, level, true)
	want := acc.CopyNew()
	fused := acc.CopyNew()
	tmp := r.NewPoly(level)
	for k := 0; k < 5; k++ {
		a := s.UniformPoly(r, level, true)
		r.MulByLimbScalarsAddLazy(fused, a, scalars, level)
		r.MulByLimbScalars(tmp, a, scalars, level)
		r.Add(want, want, tmp, level)
	}
	r.ReduceLazy(fused, level)
	if !fused.Equal(want) {
		t.Fatal("fused scalar MAC != MulByLimbScalars+Add composition")
	}
}

func TestAddManyMatchesAddChain(t *testing.T) {
	r := newTestRing(t, 5, 9)
	s := NewSampler(19)
	level := r.MaxLevel()

	var ins []*Poly
	for k := 0; k < 6; k++ {
		ins = append(ins, s.UniformPoly(r, level, true))
	}

	want := ins[0].CopyNew()
	for _, in := range ins[1:] {
		r.Add(want, want, in, level)
	}

	out := r.NewPoly(level)
	r.AddMany(out, ins, level)
	if !out.Equal(want) {
		t.Fatal("AddMany != chained Add")
	}
	if out.IsNTT != ins[0].IsNTT {
		t.Fatal("AddMany dropped domain flag")
	}

	// Aliasing out with ins[0] is allowed.
	alias := ins[0].CopyNew()
	insAlias := append([]*Poly{alias}, ins[1:]...)
	r.AddMany(alias, insAlias, level)
	if !alias.Equal(want) {
		t.Fatal("AddMany aliased with ins[0] diverged")
	}
}
