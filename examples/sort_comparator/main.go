// Encrypted two-way comparator: the primitive the paper's Sort workload
// ([35]) iterates over a sorting network. Computes slot-wise min and max of
// two encrypted vectors via an approximate homomorphic sign function,
// without ever decrypting the values.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/anaheim-sim/anaheim"
)

func main() {
	ctx, err := anaheim.NewContext(anaheim.ParametersLiteral{
		LogN: 11,
		LogQ: []int{55, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45, 45},
		LogP: []int{58, 58}, LogScale: 45, HDense: 64, HSparse: 16,
	}, 11)
	if err != nil {
		log.Fatal(err)
	}
	slots := ctx.Params.Slots()
	r := rand.New(rand.NewSource(5))

	a := make([]complex128, slots)
	b := make([]complex128, slots)
	for i := range a {
		a[i] = complex(r.Float64()-0.5, 0)
		for {
			b[i] = complex(r.Float64()-0.5, 0)
			if math.Abs(real(a[i])-real(b[i])) > 0.3 {
				break // the approximate sign needs a margin around ties
			}
		}
	}
	ctA, _ := ctx.Encrypt(a)
	ctB, _ := ctx.Encrypt(b)

	minCt, maxCt := ctx.MinMax(ctA, ctB, 5)

	gotMin := ctx.Decrypt(minCt)
	gotMax := ctx.Decrypt(maxCt)
	worst := 0.0
	for i := range a {
		em := math.Abs(real(gotMin[i]) - math.Min(real(a[i]), real(b[i])))
		ex := math.Abs(real(gotMax[i]) - math.Max(real(a[i]), real(b[i])))
		worst = math.Max(worst, math.Max(em, ex))
	}
	fmt.Printf("compared %d encrypted pairs\n", slots)
	fmt.Printf("sample: min(%.3f, %.3f) = %.3f, max = %.3f\n",
		real(a[0]), real(b[0]), real(gotMin[0]), real(gotMax[0]))
	fmt.Printf("worst comparator error: %.3g\n", worst)
	if worst > 0.06 {
		log.Fatal("comparator error too large")
	}
	fmt.Println("encrypted min/max comparator: OK")
}
