package dram

import (
	"testing"
)

func simpleTiming() Timing {
	return Timing{TRCD: 14, TRP: 14, TRAS: 33, TCCD: 2, ActExtra: 0}
}

func TestEngineBasicStream(t *testing.T) {
	// ACT, 4 reads, PRE: tRCD + 4*tCCD, then PRE waits for tRAS.
	cmds := []Command{
		{ACT, 0}, {RD, 0}, {RD, 0}, {RD, 0}, {RD, 0}, {PRE, 0},
	}
	st, err := Execute(cmds, simpleTiming())
	if err != nil {
		t.Fatal(err)
	}
	if st.ACTs != 1 || st.ColAccess != 4 {
		t.Fatalf("counts wrong: %+v", st)
	}
	// First RD starts at tRCD=14, reads end 14+4*2=22 < tRAS=33 -> PRE at 33.
	if st.TotalNs != 33 {
		t.Fatalf("makespan = %.1f, want 33 (tRAS-bound)", st.TotalNs)
	}
}

func TestEngineLongRowVisitNotRASBound(t *testing.T) {
	cmds := []Command{{ACT, 0}}
	for i := 0; i < 32; i++ {
		cmds = append(cmds, Command{RD, 0})
	}
	cmds = append(cmds, Command{PRE, 0})
	st, err := Execute(cmds, simpleTiming())
	if err != nil {
		t.Fatal(err)
	}
	if want := 14.0 + 32*2; st.TotalNs != want {
		t.Fatalf("makespan = %.1f, want %.1f", st.TotalNs, want)
	}
}

func TestEngineRowSwitchCost(t *testing.T) {
	// Two row visits: the second ACT waits tRP after PRE (and tRC after the
	// first ACT).
	cmds := []Command{
		{ACT, 0}, {RD, 0}, {PRE, 0},
		{ACT, 1}, {RD, 1}, {PRE, 1},
	}
	st, err := Execute(cmds, simpleTiming())
	if err != nil {
		t.Fatal(err)
	}
	// visit1 PRE at 33 (tRAS); ACT2 at 33+14=47; RD at 47+14=61+2; PRE2 at
	// max(63, 47+33) = 80.
	if st.TotalNs != 80 {
		t.Fatalf("makespan = %.1f, want 80", st.TotalNs)
	}
}

func TestEngineProtocolViolations(t *testing.T) {
	tm := simpleTiming()
	if _, err := Execute([]Command{{RD, 0}}, tm); err == nil {
		t.Fatal("RD with no open row must error")
	}
	if _, err := Execute([]Command{{ACT, 0}, {ACT, 1}}, tm); err == nil {
		t.Fatal("ACT on open bank must error")
	}
	if _, err := Execute([]Command{{PRE, 0}}, tm); err == nil {
		t.Fatal("PRE with no open row must error")
	}
	if _, err := Execute([]Command{{ACT, 0}, {RD, 1}}, tm); err == nil {
		t.Fatal("RD to a closed row must error")
	}
}

func TestEngineActExtraExposed(t *testing.T) {
	tm := simpleTiming()
	tm.ActExtra = 78
	cmds := []Command{{ACT, 0}, {RD, 0}, {PRE, 0}}
	st, err := Execute(cmds, tm)
	if err != nil {
		t.Fatal(err)
	}
	// ACT done at 78; RD at 78+14; PRE at max(94, 78+33-78)=94.
	if st.TotalNs != 94 {
		t.Fatalf("makespan = %.1f, want 94", st.TotalNs)
	}
}
