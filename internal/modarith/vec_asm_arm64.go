//go:build arm64 && !noasm

package modarith

// arm64 assembly tier. Scalar kernels need no lane alignment, so the
// wrappers only guard the empty case; there is no tail split. Advanced SIMD
// is architecturally mandatory on AArch64 — the tier is always available and
// needs no feature detection. Like TierAVX2, the Barrett-quotient family,
// mulAddLazyIdx and rescaleStep stay on the per-kernel Go fallback
// (vec_arm64.s explains why).

//go:noescape
func vecMulShoupNEON(out, a []uint64, w, wShoup, q uint64)

//go:noescape
func vecSubMulShoupLazyNEON(out, a, b []uint64, w, wShoup, q, twoQ uint64)

//go:noescape
func vecMulWideNEON(accHi, accLo, row []uint64, w uint64)

//go:noescape
func vecMulAccWideNEON(accHi, accLo, row []uint64, w uint64)

//go:noescape
func vecReduceTwoQNEON(p []uint64, q uint64)

//go:noescape
func vecFwdButterflyNEON(x, y []uint64, w, wShoup, q, twoQ uint64)

//go:noescape
func vecInvButterflyNEON(x, y []uint64, w, wShoup, q, twoQ uint64)

func asmKernelTables() map[KernelTier]kernelTable {
	return map[KernelTier]kernelTable{
		TierNEON: {
			tier: TierNEON,
			mulShoup: func(m Modulus, out, a []uint64, w, wShoup uint64) {
				if len(a) > 0 {
					vecMulShoupNEON(out[:len(a)], a, w, wShoup, m.Q)
				}
			},
			subMulShoupLazy: func(m Modulus, out, a, b []uint64, w, wShoup uint64) {
				if len(a) > 0 {
					vecSubMulShoupLazyNEON(out[:len(a)], a, b[:len(a)], w, wShoup, m.Q, m.TwoQ)
				}
			},
			mulWide: func(accHi, accLo, row []uint64, w uint64) {
				if len(row) > 0 {
					vecMulWideNEON(accHi[:len(row)], accLo[:len(row)], row, w)
				}
			},
			mulAccWide: func(accHi, accLo, row []uint64, w uint64) {
				if len(row) > 0 {
					vecMulAccWideNEON(accHi[:len(row)], accLo[:len(row)], row, w)
				}
			},
			reduceTwoQ: func(m Modulus, p []uint64) {
				if len(p) > 0 {
					vecReduceTwoQNEON(p, m.Q)
				}
			},
			fwdButterfly: func(m Modulus, x, y []uint64, w, wShoup uint64) {
				if len(x) > 0 {
					vecFwdButterflyNEON(x, y[:len(x)], w, wShoup, m.Q, m.TwoQ)
				}
			},
			invButterfly: func(m Modulus, x, y []uint64, w, wShoup uint64) {
				if len(x) > 0 {
					vecInvButterflyNEON(x, y[:len(x)], w, wShoup, m.Q, m.TwoQ)
				}
			},
		},
	}
}
