package engine

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/ckks"
)

// The differential test drives randomly generated op DAGs through two
// independent execution paths — the concurrent scheduler (Submit/Wait) and
// a sequential walk over Session.evalOp — and demands the decrypted outputs
// agree. The scheduler adds worker pools, queues, and completion plumbing
// on top of the evaluator; any divergence (lost op, wrong arg resolution,
// result aliasing between concurrent ops) shows up as a slot mismatch here.
// Both paths also have to agree with a plaintext model of the DAG within
// CKKS precision, so "both paths equally wrong" cannot slip through.

// diffNode tracks what the generator knows about one DAG value: its CKKS
// level/scale (mirroring the evaluator's own arithmetic, so scale-compat
// checks match what Add would enforce) and its plaintext slots.
type diffNode struct {
	id    string
	level int
	scale float64
	vals  []complex128
}

type diffDAG struct {
	inputs map[string][]complex128
	ops    []OpSpec
	want   map[string][]complex128 // op id -> plaintext model of its value
}

// genDAG builds a random valid job over nOps ops. Every op's precondition
// (level budget for mul/rescale-like ops, scale compatibility for add/sub,
// available rotation keys) is enforced by construction, so the job must
// execute cleanly end to end.
func genDAG(r *rand.Rand, params *ckks.Parameters, nOps int) diffDAG {
	slots := params.Slots()
	q := func(lvl int) float64 { return float64(params.RingQ().Moduli[lvl].Q) }

	randVals := func() []complex128 {
		v := make([]complex128, slots)
		for i := range v {
			v[i] = complex(2*r.Float64()-1, 2*r.Float64()-1) / 2
		}
		return v
	}

	dag := diffDAG{inputs: map[string][]complex128{}, want: map[string][]complex128{}}
	var nodes []diffNode
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("in%d", i)
		vals := randVals()
		dag.inputs[id] = vals
		nodes = append(nodes, diffNode{id: id, level: params.MaxLevel(), scale: params.DefaultScale(), vals: vals})
	}

	pick := func() diffNode { return nodes[r.Intn(len(nodes))] }
	// pickLeveled returns a node that can still afford a level drop.
	pickLeveled := func() (diffNode, bool) {
		cands := nodes[:0:0]
		for _, n := range nodes {
			if n.level >= 1 {
				cands = append(cands, n)
			}
		}
		if len(cands) == 0 {
			return diffNode{}, false
		}
		return cands[r.Intn(len(cands))], true
	}
	// pickPair returns two nodes whose scales are close enough for the
	// evaluator's add-time scale check; the same node twice always is.
	pickPair := func() (diffNode, diffNode) {
		for tries := 0; tries < 8; tries++ {
			a, b := pick(), pick()
			if d := a.scale/b.scale - 1; d < 1e-4 && d > -1e-4 {
				return a, b
			}
		}
		n := pick()
		return n, n
	}

	kinds := []string{"add", "sub", "mul", "square", "rotate", "addconst", "mulconst", "droplevel"}
	for i := 0; i < nOps; i++ {
		id := fmt.Sprintf("op%d", i)
		var op OpSpec
		var out diffNode
		switch kind := kinds[r.Intn(len(kinds))]; kind {
		case "mul", "square":
			a, ok := pickLeveled()
			if !ok {
				continue
			}
			b := a
			if kind == "mul" {
				// The partner can be any node: MulRelin truncates to the
				// min level, which a's level>=1 keeps rescalable only if
				// the partner also has level>=1.
				if b2, ok := pickLeveled(); ok {
					b = b2
				}
			}
			lvl := min(a.level, b.level)
			op = OpSpec{ID: id, Op: kind, Args: []string{a.id}}
			if kind == "mul" {
				op.Args = []string{a.id, b.id}
			}
			out = diffNode{id: id, level: lvl - 1, scale: a.scale * b.scale / q(lvl)}
			out.vals = make([]complex128, slots)
			for s := 0; s < slots; s++ {
				out.vals[s] = a.vals[s] * b.vals[s]
			}
		case "add", "sub":
			a, b := pickPair()
			op = OpSpec{ID: id, Op: kind, Args: []string{a.id, b.id}}
			out = diffNode{id: id, level: min(a.level, b.level), scale: a.scale}
			out.vals = make([]complex128, slots)
			for s := 0; s < slots; s++ {
				if kind == "add" {
					out.vals[s] = a.vals[s] + b.vals[s]
				} else {
					out.vals[s] = a.vals[s] - b.vals[s]
				}
			}
		case "rotate":
			a := pick()
			k := 1 + r.Intn(3)
			op = OpSpec{ID: id, Op: "rotate", Args: []string{a.id}, K: k}
			out = diffNode{id: id, level: a.level, scale: a.scale}
			out.vals = make([]complex128, slots)
			for s := 0; s < slots; s++ {
				out.vals[s] = a.vals[(s+k)%slots]
			}
		case "addconst":
			a := pick()
			c := r.Float64() - 0.5
			op = OpSpec{ID: id, Op: "addconst", Args: []string{a.id}, Val: c}
			out = diffNode{id: id, level: a.level, scale: a.scale}
			out.vals = make([]complex128, slots)
			for s := 0; s < slots; s++ {
				out.vals[s] = a.vals[s] + complex(c, 0)
			}
		case "mulconst":
			a, ok := pickLeveled()
			if !ok {
				continue
			}
			c := 2*r.Float64() - 1
			op = OpSpec{ID: id, Op: "mulconst", Args: []string{a.id}, Val: c}
			// MultConst encodes c at scale q[level]; the following Rescale
			// divides by the same prime, restoring the scale.
			out = diffNode{id: id, level: a.level - 1, scale: a.scale * q(a.level) / q(a.level)}
			out.vals = make([]complex128, slots)
			for s := 0; s < slots; s++ {
				out.vals[s] = a.vals[s] * complex(c, 0)
			}
		case "droplevel":
			a, ok := pickLeveled()
			if !ok {
				continue
			}
			op = OpSpec{ID: id, Op: "droplevel", Args: []string{a.id}, K: a.level - 1}
			out = diffNode{id: id, level: a.level - 1, scale: a.scale, vals: a.vals}
		}
		dag.ops = append(dag.ops, op)
		dag.want[id] = out.vals
		nodes = append(nodes, out)
	}
	return dag
}

func TestDifferentialSchedulerVsEvaluator(t *testing.T) {
	client := newTestClient(t, 1, 2, 3)
	e := New(Config{Workers: 4})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}

	for seed := int64(1); seed <= 3; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			dag := genDAG(r, client.params, 10)
			if len(dag.ops) == 0 {
				t.Fatal("generator produced an empty DAG")
			}

			cts := make(map[string]*ckks.Ciphertext, len(dag.inputs))
			for id, vals := range dag.inputs {
				cts[id] = client.encrypt(t, vals)
			}

			// Path 1: the scheduler. Every op id is an output so the job
			// retains all intermediate results for comparison.
			outputs := make([]string, 0, len(dag.ops))
			for _, op := range dag.ops {
				outputs = append(outputs, op.ID)
			}
			job, err := e.Submit(JobSpec{
				SessionID: sess.ID,
				Inputs:    cts,
				Ops:       dag.ops,
				Outputs:   outputs,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := job.Wait(context.Background()); err != nil {
				t.Fatal(err)
			}
			viaEngine, err := job.Results()
			if err != nil {
				t.Fatal(err)
			}

			// Path 2: sequential walk over the same op semantics, no
			// scheduler involved. Ops are generated in topological order.
			direct := make(map[string]*ckks.Ciphertext, len(dag.ops)+len(cts))
			for id, ct := range cts {
				direct[id] = ct
			}
			arg := func(name string) (*ckks.Ciphertext, error) {
				ct, ok := direct[name]
				if !ok {
					return nil, fmt.Errorf("unresolved arg %q", name)
				}
				return ct, nil
			}
			for i := range dag.ops {
				out, err := sess.evalOp(&dag.ops[i], arg)
				if err != nil {
					t.Fatalf("direct eval of %s (%s): %v", dag.ops[i].ID, dag.ops[i].Op, err)
				}
				direct[dag.ops[i].ID] = out
			}

			slots := client.params.Slots()
			for _, op := range dag.ops {
				ge := client.decrypt(viaEngine[op.ID])
				gd := client.decrypt(direct[op.ID])
				// Same inputs, same deterministic evaluator ops: the two
				// paths must agree to far beyond CKKS noise.
				checkSlots(t, ge, gd, slots, 1e-6, op.ID+" engine vs direct")
				// And both must track the plaintext model within scheme
				// precision at the 45-bit scale.
				checkSlots(t, ge, dag.want[op.ID], slots, 1e-2, op.ID+" engine vs plaintext model")
			}
		})
	}
}
