package main

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseMix(t *testing.T) {
	if _, err := parseMix("logreg,lintrans,bootstrap"); err != nil {
		t.Fatal(err)
	}
	if _, err := parseMix("logreg,nosuch"); err == nil {
		t.Fatal("want error for unknown workload")
	}
}

func TestPercentile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := percentile(s, 50); p != 5 {
		t.Fatalf("p50 = %v, want 5", p)
	}
	if p := percentile(s, 99); p != 10 {
		t.Fatalf("p99 = %v, want 10", p)
	}
	if p := percentile(nil, 50); p != 0 {
		t.Fatalf("p50 of empty = %v, want 0", p)
	}
}

// TestLoadSmoke drives the many-tenant load driver end to end at a small
// scale: both engine configurations run, every tier completes jobs, and the
// report has the shape BENCH_BASELINE.json records.
func TestLoadSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load driver is slow")
	}
	// A single workload kind with three tenants per tier guarantees
	// same-kernel-class overlap, and a wide window keeps batch formation
	// deterministic even under -race slowdown.
	var sb strings.Builder
	repPtr, gateErr, err := runLoad(&sb, 9, "logreg", time.Second, 20*time.Millisecond, "both", false)
	if err != nil {
		t.Fatal(err)
	}
	if repPtr == nil {
		t.Fatal("runLoad returned nil report")
	}
	if gateErr != nil {
		t.Fatalf("gate disabled but gateErr = %v", gateErr)
	}
	var rep loadReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if rep.Tenants != 9 || len(rep.Runs) != 2 {
		t.Fatalf("report shape: tenants=%d runs=%d", rep.Tenants, len(rep.Runs))
	}
	if rep.Runs[0].Batching || !rep.Runs[1].Batching {
		t.Fatalf("-batch both must run off then on: %+v", rep.Runs)
	}
	for i, run := range rep.Runs {
		if run.JobsDone == 0 || run.OpsDone == 0 || run.ThroughputOpsPerSec <= 0 {
			t.Errorf("run %d did no work: %+v", i, run)
		}
		for _, tier := range loadTiers {
			ts := run.Tiers[tier]
			if ts == nil || ts.Jobs == 0 {
				t.Errorf("run %d tier %s has no completed jobs", i, tier)
				continue
			}
			if ts.P99Ms < ts.P50Ms || ts.P50Ms <= 0 {
				t.Errorf("run %d tier %s: implausible latency p50=%v p99=%v", i, tier, ts.P50Ms, ts.P99Ms)
			}
		}
	}
	// The batching-on run must actually fuse something at 6 tenants.
	if rep.Runs[1].BatchesDispatched == 0 || rep.Runs[1].MeanBatchOccupancy < 1 {
		t.Errorf("batching-on run dispatched no fused groups: %+v", rep.Runs[1])
	}
}
