package ring

import "math/big"

// Limb-wise ring operations. All operate on limbs 0..level and write into
// out, which may alias either input. Domain flags are propagated from the
// first input; element-wise operations are valid in either domain (they are
// coefficient-wise in both).
//
// Every loop body touches only its own limb, so the loops are spread over
// the shared worker pool (forEachLimb) once the limb count crosses the
// parallel threshold — the same pattern as the per-limb NTT batches.

// Add sets out = a + b.
func (r *Ring) Add(out, a, b *Poly, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		oa, ob, oo := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oo {
			oo[j] = mod.Add(oa[j], ob[j])
		}
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesElemwise, 3, level+1, r.N)
}

// Sub sets out = a - b.
func (r *Ring) Sub(out, a, b *Poly, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		oa, ob, oo := a.Coeffs[i], b.Coeffs[i], out.Coeffs[i]
		for j := range oo {
			oo[j] = mod.Sub(oa[j], ob[j])
		}
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesElemwise, 3, level+1, r.N)
}

// Neg sets out = -a.
func (r *Ring) Neg(out, a *Poly, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		oa, oo := a.Coeffs[i], out.Coeffs[i]
		for j := range oo {
			oo[j] = mod.Neg(oa[j])
		}
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesElemwise, 2, level+1, r.N)
}

// MulCoeffs sets out = a ⊙ b (element-wise product). In the NTT domain this
// is the ring product. Runs on the Barrett-reciprocal row kernel — no
// hardware division per coefficient.
func (r *Ring) MulCoeffs(out, a, b *Poly, level int) {
	forEachLimb(level, func(i int) {
		r.Moduli[i].VecMulBarrett(out.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesMac, 3, level+1, r.N)
}

// MulCoeffsAdd sets out += a ⊙ b.
func (r *Ring) MulCoeffsAdd(out, a, b *Poly, level int) {
	forEachLimb(level, func(i int) {
		r.Moduli[i].VecMulAddBarrett(out.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	accountRows(bytesMac, 4, level+1, r.N)
}

// MulCoeffsSub sets out -= a ⊙ b.
func (r *Ring) MulCoeffsSub(out, a, b *Poly, level int) {
	forEachLimb(level, func(i int) {
		r.Moduli[i].VecMulSubBarrett(out.Coeffs[i], a.Coeffs[i], b.Coeffs[i])
	})
	accountRows(bytesMac, 4, level+1, r.N)
}

// MulScalar sets out = a * s for a small unsigned scalar s (reduced per
// limb).
func (r *Ring) MulScalar(out, a *Poly, s uint64, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		sr := s % mod.Q
		srs := mod.ShoupPrecomp(sr)
		oa, oo := a.Coeffs[i], out.Coeffs[i]
		for j := range oo {
			oo[j] = mod.MulShoup(oa[j], sr, srs)
		}
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesElemwise, 2, level+1, r.N)
}

// MulByLimbScalars sets out[i] = a[i] * s[i] where s carries one scalar per
// limb (already reduced). Used for gadget factors and rescaling constants.
func (r *Ring) MulByLimbScalars(out, a *Poly, s []uint64, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		sr := s[i]
		srs := mod.ShoupPrecomp(sr)
		oa, oo := a.Coeffs[i], out.Coeffs[i]
		for j := range oo {
			oo[j] = mod.MulShoup(oa[j], sr, srs)
		}
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesElemwise, 2, level+1, r.N)
}

// AddScalarBig adds an arbitrarily large signed integer constant (reduced
// per limb). Needed by bootstrapping, where constants scale with q0 and
// exceed int64. Domain handling matches AddScalarInt.
func (r *Ring) AddScalarBig(out, a *Poly, v *big.Int, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		c := new(big.Int).Mod(v, new(big.Int).SetUint64(mod.Q)).Uint64()
		oa, oo := a.Coeffs[i], out.Coeffs[i]
		if a.IsNTT {
			for j := range oo {
				oo[j] = mod.Add(oa[j], c)
			}
		} else {
			copy(oo, oa)
			oo[0] = mod.Add(oa[0], c)
		}
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesElemwise, 2, level+1, r.N)
}

// MulScalarBig multiplies by an arbitrarily large signed integer constant
// (reduced per limb).
func (r *Ring) MulScalarBig(out, a *Poly, v *big.Int, level int) {
	s := make([]uint64, level+1)
	for i := 0; i <= level; i++ {
		s[i] = new(big.Int).Mod(v, new(big.Int).SetUint64(r.Moduli[i].Q)).Uint64()
	}
	r.MulByLimbScalars(out, a, s, level)
}

// AddScalarInt adds a signed integer constant to the polynomial's constant
// term representation: in the coefficient domain this touches coefficient 0;
// in the NTT domain a constant shifts every slot, so it is added to all
// positions.
func (r *Ring) AddScalarInt(out, a *Poly, v int64, level int) {
	forEachLimb(level, func(i int) {
		mod := r.Moduli[i]
		c := mod.FromCentered(v)
		oa, oo := a.Coeffs[i], out.Coeffs[i]
		if a.IsNTT {
			for j := range oo {
				oo[j] = mod.Add(oa[j], c)
			}
		} else {
			copy(oo, oa)
			oo[0] = mod.Add(oa[0], c)
		}
	})
	out.IsNTT = a.IsNTT
	accountRows(bytesElemwise, 2, level+1, r.N)
}
