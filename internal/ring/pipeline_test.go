package ring

import (
	"sync"
	"testing"
)

// The pipeline executes the same row kernels the barriered ops dispatch, in
// the same per-limb order — every test here demands bit-identical agreement
// with the barriered composition it replaces.

// TestPipelineKeySwitchShapedChain runs the gadget-product-shaped chain
// (forward NTTLazy of each "digit" fused with the MACs consuming it, ending
// in a reduction) and compares against the barriered composition, at every
// level.
func TestPipelineKeySwitchShapedChain(t *testing.T) {
	r := newTestRing(t, 6, 10)
	s := NewSampler(19)
	const digits = 3
	for level := 0; level <= r.MaxLevel(); level++ {
		digQ := make([]*Poly, digits)
		keyB := make([]*Poly, digits)
		keyA := make([]*Poly, digits)
		for d := range digQ {
			digQ[d] = s.UniformPoly(r, level, false) // coeff domain, exact
			keyB[d] = s.UniformPoly(r, level, true)
			keyA[d] = s.UniformPoly(r, level, true)
		}

		// Barriered reference.
		wantDig := make([]*Poly, digits)
		for d := range digQ {
			wantDig[d] = digQ[d].CopyNew()
			r.NTTLazy(wantDig[d], level)
		}
		want0, want1 := r.NewPoly(level), r.NewPoly(level)
		want0.IsNTT, want1.IsNTT = true, true
		for d := range digQ {
			r.MulCoeffsAddLazy(want0, wantDig[d], keyB[d], level)
			r.MulCoeffsAddLazy(want1, wantDig[d], keyA[d], level)
		}
		r.ReduceLazy(want0, level)
		r.ReduceLazy(want1, level)

		// Pipelined: whole chain per limb, one barrier.
		got0, got1 := r.NewPoly(level), r.NewPoly(level)
		got0.IsNTT, got1.IsNTT = true, true
		pl := GetPipeline()
		ln := pl.Lane(r, level)
		for d := range digQ {
			ln.NTTLazy(digQ[d])
			ln.MulCoeffsAddLazy(got0, digQ[d], keyB[d])
			ln.MulCoeffsAddLazy(got1, digQ[d], keyA[d])
		}
		ln.ReduceLazy(got0)
		ln.ReduceLazy(got1)
		pl.Run()
		pl.Release()

		if !got0.Equal(want0) || !got1.Equal(want1) {
			t.Fatalf("level %d: pipelined gadget chain != barriered composition", level)
		}
		for d := range digQ {
			if !digQ[d].IsNTT {
				t.Fatalf("level %d: pipeline did not apply the NTT domain flag", level)
			}
			if !digQ[d].Equal(wantDig[d]) {
				t.Fatalf("level %d digit %d: pipelined NTTLazy != barriered NTTLazy", level, d)
			}
		}
	}
}

// TestPipelineModDownShapedChain covers the ModDown epilogue ops: Copy+INTT
// in one lane, NTTLazy+SubMulByLimbScalarsLazy+Add in another, plus the
// automorphism tail (AddAutomorphismNTT / AutomorphismNTT), against the
// barriered composition.
func TestPipelineModDownShapedChain(t *testing.T) {
	r := newTestRing(t, 6, 9)
	s := NewSampler(23)
	level := r.MaxLevel()
	g := r.GaloisElement(3)

	scalars := make([]uint64, level+1)
	for i := range scalars {
		scalars[i] = uint64(7*i+5) % r.Moduli[i].Q
	}

	uq := s.UniformPoly(r, level, true)
	conv := s.UniformPoly(r, level, false)
	c0 := s.UniformPoly(r, level, true)
	src := s.UniformPoly(r, level, true)

	// Barriered reference.
	wantW := r.NewPoly(level)
	wantW.Copy(src)
	r.INTT(wantW, level)
	wantConv := conv.CopyNew()
	r.NTTLazy(wantConv, level)
	wantD := r.NewPoly(level)
	r.SubMulByLimbScalarsLazy(wantD, uq, wantConv, scalars, level)
	wantD.IsNTT = true
	preAdd := wantD.CopyNew()
	r.Add(wantD, wantD, c0, level)
	wantO := r.NewPoly(level)
	r.AutomorphismNTT(wantO, wantD, g, level)
	r.NTT(wantW, level)
	wantO1 := r.NewPoly(level)
	r.AutomorphismNTT(wantO1, wantW, g, level)

	// Pipelined. The add-then-permute pair is recorded as the fused
	// AddAutomorphismNTT stage.
	gotW := r.NewPoly(level)
	gotConv := conv.CopyNew()
	gotD := r.NewPoly(level)
	gotO := r.NewPoly(level)
	gotO1 := r.NewPoly(level)
	pl := GetPipeline()
	ln := pl.Lane(r, level)
	ln.Copy(gotW, src)
	ln.INTT(gotW)
	ln.NTTLazy(gotConv)
	ln.SubMulByLimbScalarsLazy(gotD, uq, gotConv, scalars)
	ln.AddAutomorphismNTT(gotO, gotD, c0, g)
	pl.Run()
	// Separate Run on the same (released-and-reused) pipeline: the coeff
	// domain poly from the first chain feeds an NTT-domain permutation after
	// a manual flag fix, exercising re-recording.
	r.NTT(gotW, level)
	ln2 := pl.Lane(r, level)
	ln2.AutomorphismNTT(gotO1, gotW, g)
	pl.Run()
	pl.Release()

	// The pipelined gotD holds the pre-add value: the fused AddAutomorphismNTT
	// stage sums on the fly without writing the intermediate.
	if !gotD.Equal(preAdd) {
		t.Fatal("pipelined SubMul epilogue != barriered SubMul epilogue")
	}
	if !gotO.Equal(wantO) {
		t.Fatal("pipelined AddAutomorphismNTT != barriered Add + AutomorphismNTT")
	}
	if !gotW.Equal(wantW) {
		t.Fatal("pipelined Copy+INTT != barriered Copy+INTT")
	}
	if !gotO1.Equal(wantO1) {
		t.Fatal("second-chain AutomorphismNTT mismatch after pipeline reuse")
	}
}

// TestPipelineTensorChain covers the exact element-wise stages (MulCoeffs,
// MulCoeffsAdd, Add) against the barriered composition.
func TestPipelineTensorChain(t *testing.T) {
	r := newTestRing(t, 5, 8)
	s := NewSampler(29)
	level := r.MaxLevel()
	a0 := s.UniformPoly(r, level, true)
	a1 := s.UniformPoly(r, level, true)
	b0 := s.UniformPoly(r, level, true)
	b1 := s.UniformPoly(r, level, true)

	want0, want1, want2 := r.NewPoly(level), r.NewPoly(level), r.NewPoly(level)
	want1.IsNTT = true
	r.MulCoeffs(want0, a0, b0, level)
	r.MulCoeffsAdd(want1, a0, b1, level)
	r.MulCoeffsAdd(want1, a1, b0, level)
	r.MulCoeffs(want2, a1, b1, level)
	wantSum := r.NewPoly(level)
	r.Add(wantSum, want0, want2, level)

	got0, got1, got2 := r.NewPoly(level), r.NewPoly(level), r.NewPoly(level)
	got1.IsNTT = true
	gotSum := r.NewPoly(level)
	pl := GetPipeline()
	ln := pl.Lane(r, level)
	ln.MulCoeffs(got0, a0, b0)
	ln.MulCoeffsAdd(got1, a0, b1)
	ln.MulCoeffsAdd(got1, a1, b0)
	ln.MulCoeffs(got2, a1, b1)
	ln.Add(gotSum, got0, got2)
	pl.Run()
	pl.Release()

	if !got0.Equal(want0) || !got1.Equal(want1) || !got2.Equal(want2) || !gotSum.Equal(wantSum) {
		t.Fatal("pipelined tensor chain != barriered composition")
	}
	if !got0.IsNTT || !gotSum.IsNTT {
		t.Fatal("pipeline did not propagate NTT domain flags")
	}
}

// TestPipelineTwoLanes runs a Q-lane and a (shorter) P-lane chain in one
// pipeline, as every key-switch chain does, and checks both against the
// barriered forms.
func TestPipelineTwoLanes(t *testing.T) {
	rq := newTestRing(t, 5, 9)
	rp := newTestRing(t, 5, 2)
	s := NewSampler(31)
	lq, lp := rq.MaxLevel(), rp.MaxLevel()

	aq := s.UniformPoly(rq, lq, true)
	bq := s.UniformPoly(rq, lq, true)
	ap := s.UniformPoly(rp, lp, true)
	bp := s.UniformPoly(rp, lp, true)

	wantQ := rq.NewPoly(lq)
	wantQ.IsNTT = true
	rq.MulCoeffsAddLazy(wantQ, aq, bq, lq)
	rq.ReduceLazy(wantQ, lq)
	wantP := rp.NewPoly(lp)
	wantP.IsNTT = true
	rp.MulCoeffsAddLazy(wantP, ap, bp, lp)
	rp.ReduceLazy(wantP, lp)

	gotQ := rq.NewPoly(lq)
	gotQ.IsNTT = true
	gotP := rp.NewPoly(lp)
	gotP.IsNTT = true
	pl := GetPipeline()
	lnQ := pl.Lane(rq, lq)
	lnP := pl.Lane(rp, lp)
	lnQ.MulCoeffsAddLazy(gotQ, aq, bq)
	lnQ.ReduceLazy(gotQ)
	lnP.MulCoeffsAddLazy(gotP, ap, bp)
	lnP.ReduceLazy(gotP)
	pl.Run()
	pl.Release()

	if !gotQ.Equal(wantQ) || !gotP.Equal(wantP) {
		t.Fatal("two-lane pipeline != barriered per-ring composition")
	}
}

// TestPipelineFuncStage checks the escape-hatch stage sees every limb exactly
// once, in a valid position of the chain.
func TestPipelineFuncStage(t *testing.T) {
	r := newTestRing(t, 4, 9)
	level := r.MaxLevel()
	p := r.NewPoly(level)
	seen := make([]int, level+1)
	pl := GetPipeline()
	ln := pl.Lane(r, level)
	ln.Func(func(i int) { seen[i]++ }, nil, []*Poly{p})
	pl.Run()
	pl.Release()
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("limb %d executed %d times", i, c)
		}
	}
}

// TestPipelineDomainValidation: record-time checks fire against the pending
// domain, not the current header flag.
func TestPipelineDomainValidation(t *testing.T) {
	r := newTestRing(t, 4, 3)
	level := r.MaxLevel()
	p := r.NewPoly(level) // coeff domain

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected record-time panic", name)
			}
		}()
		f()
	}

	pl := GetPipeline()
	ln := pl.Lane(r, level)
	ln.NTT(p) // pending domain is now NTT although p.IsNTT is still false
	mustPanic("double NTT", func() { ln.NTT(p) })
	out := r.NewPoly(level)
	ln.AutomorphismNTT(out, p, r.GaloisElement(1)) // legal: pending-NTT input
	mustPanic("in-place automorphism", func() { ln.AutomorphismNTT(p, p, r.GaloisElement(1)) })
	pl.Run()
	pl.Release()
	if !p.IsNTT {
		t.Fatal("domain flag not applied after Run")
	}

	mustPanic("short operand", func() {
		pl := GetPipeline()
		defer pl.Release()
		short := r.NewPoly(0)
		pl.Lane(r, level).ReduceLazy(short)
	})
}

// TestPipelineTrafficAccounting: a pipelined chain charges distinct rows
// once, credits the saved difference, and bumps the ring's limb-transform
// counters exactly like the barriered transforms.
func TestPipelineTrafficAccounting(t *testing.T) {
	r := newTestRing(t, 5, 4)
	s := NewSampler(37)
	level := r.MaxLevel()
	limbs := level + 1

	acc := r.NewPoly(level)
	acc.IsNTT = true
	a := s.UniformPoly(r, level, false)
	b := s.UniformPoly(r, level, true)

	ntt0, _ := r.Counters()
	pipeBefore := bytesPipelined.Value()
	savedBefore := bytesSaved.Value()

	pl := GetPipeline()
	ln := pl.Lane(r, level)
	ln.NTTLazy(a)                  // naive 2 rows
	ln.MulCoeffsAddLazy(acc, a, b) // naive 4 rows
	ln.ReduceLazy(acc)             // naive 2 rows
	pl.Run()
	pl.Release()

	ntt1, _ := r.Counters()
	if ntt1-ntt0 != int64(limbs) {
		t.Fatalf("ntt limb counter moved by %d, want %d", ntt1-ntt0, limbs)
	}
	rowBytes := float64(limbs * r.N * 8)
	// Distinct rows: a (read+written), b (read), acc (read+written) = 5.
	if got := bytesPipelined.Value() - pipeBefore; got != 5*rowBytes {
		t.Fatalf("pipelined bytes = %v, want %v", got, 5*rowBytes)
	}
	// Naive 8 rows - distinct 5 = 3 rows saved.
	if got := bytesSaved.Value() - savedBefore; got != 3*rowBytes {
		t.Fatalf("saved bytes = %v, want %v", got, 3*rowBytes)
	}
}

// ---------------------------------------------------------------------------
// Automorphism cache satellites

// TestGaloisElementMatchesLoop: the square-and-multiply form agrees with the
// retired O(r) multiply loop, including negative and wrapped rotations, and
// the cached second lookup returns the same value.
func TestGaloisElementMatchesLoop(t *testing.T) {
	r := newTestRing(t, 8, 1)
	rots := []int{0, 1, 2, 3, 5, 17, 100, r.N/2 - 1, r.N / 2, r.N, -1, -7, -r.N / 2, 123456, -99999}
	for _, rot := range rots {
		want := r.galoisElementLoop(rot)
		if got := r.GaloisElement(rot); got != want {
			t.Fatalf("rot %d: square-and-multiply %d != loop %d", rot, got, want)
		}
		if got := r.GaloisElement(rot); got != want {
			t.Fatalf("rot %d: cached lookup %d != loop %d", rot, got, want)
		}
	}
}

// TestAutomorphismCacheConcurrent hammers the lock-free snapshot caches from
// many goroutines resolving overlapping rotation sets (run under -race this
// is the S2 regression: hot rotate paths must never contend or tear).
func TestAutomorphismCacheConcurrent(t *testing.T) {
	r := newTestRing(t, 6, 2)
	s := NewSampler(41)
	level := r.MaxLevel()
	in := s.UniformPoly(r, level, true)

	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := r.NewPoly(level)
			for iter := 0; iter < 50; iter++ {
				rot := (w+iter)%7 + 1
				g := r.GaloisElement(rot)
				if g != r.galoisElementLoop(rot) {
					t.Errorf("concurrent GaloisElement(%d) disagreed with loop oracle", rot)
					return
				}
				if idx := r.nttAutoIndex(g); len(idx) != r.N {
					t.Errorf("concurrent nttAutoIndex(%d) returned short table", g)
					return
				}
				r.AutomorphismNTT(out, in, g, level)
			}
		}()
	}
	wg.Wait()
}
