package ckks

import (
	"math/rand"
	"testing"
)

// Benchmarks of the functional stack's basic CKKS functions (§II-A) at
// research scale (N=2^10), plus bootstrapping at N=2^11.

func benchContext(b *testing.B) *testContext {
	return newTestContext(b, TestParameters())
}

func BenchmarkEncode(b *testing.B) {
	tc := benchContext(b)
	r := rand.New(rand.NewSource(1))
	v := randomComplex(r, tc.params.Slots(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncryptDecrypt(b *testing.B) {
	tc := benchContext(b)
	r := rand.New(rand.NewSource(2))
	v := randomComplex(r, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ct := tc.encr.EncryptNew(&Plaintext{Value: pt, Scale: tc.params.DefaultScale()}, tc.pk)
		tc.decr.DecryptNew(ct)
	}
}

func BenchmarkHADDFunc(b *testing.B) {
	tc := benchContext(b)
	r := rand.New(rand.NewSource(3))
	ct1 := tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 1))
	ct2 := tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.Add(ct1, ct2)
	}
}

func BenchmarkHMULTFunc(b *testing.B) {
	tc := benchContext(b)
	r := rand.New(rand.NewSource(4))
	ct1 := tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 1))
	ct2 := tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.eval.Rescale(tc.eval.MulRelin(ct1, ct2, nil))
	}
}

func BenchmarkHROTFunc(b *testing.B) {
	tc := benchContext(b)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{1})
	r := rand.New(rand.NewSource(5))
	ct := tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.Rotate(ct, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeySwitch times the bare ModUp -> KeyMult -> ModDown pipeline
// (relinearization key, top level). `make profile` uses it to emit the
// key-switch CPU profile.
func BenchmarkKeySwitch(b *testing.B) {
	tc := benchContext(b)
	r := rand.New(rand.NewSource(8))
	ct := tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 1))
	lvl := ct.Level()
	rq := tc.params.RingQ()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d0, d1 := tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk)
		rq.PutPoly(d0)
		rq.PutPoly(d1)
	}
}

func BenchmarkLinearTransformHoistedFunc(b *testing.B) {
	tc := benchContext(b)
	r := rand.New(rand.NewSource(6))
	lt := randomSparseLT(r, tc.params.Slots(), []int{0, 1, 2, 3, 5, 8, 13, 21})
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, lt.Rotations())
	ct := tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBootstrapFunc(b *testing.B) {
	if testing.Short() {
		b.Skip("bootstrapping bench is expensive")
	}
	tc := newTestContext(b, BootTestParameters())
	boot, err := NewBootstrapper(tc.params, tc.enc, tc.eval, tc.kgen, tc.sk, tc.keys, DefaultBootstrapConfig())
	if err != nil {
		b.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	ct := tc.eval.DropLevel(tc.encryptVec(b, randomComplex(r, tc.params.Slots(), 0.7)), 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := boot.Bootstrap(ct); err != nil {
			b.Fatal(err)
		}
	}
}
