module github.com/anaheim-sim/anaheim

go 1.22
