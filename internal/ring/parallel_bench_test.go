package ring

import (
	"fmt"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/par"
)

// BenchmarkParallelLimbs measures the limb-parallel kernels at the paper's
// ring degree (N = 2^16, Table IV) against the serial baseline: the same
// code paths with the shared worker pool forced to width 1. Run with
//
//	go test ./internal/ring -bench ParallelLimbs -benchtime 10x
//
// to see the before/after of routing the limb loops through internal/par.
func BenchmarkParallelLimbs(b *testing.B) {
	const logN, limbs = 16, 24
	bits := make([]int, limbs)
	for i := range bits {
		bits[i] = 45
	}
	primes, err := modarith.GeneratePrimeChain(bits, logN)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRing(logN, primes)
	if err != nil {
		b.Fatal(err)
	}
	level := limbs - 1
	s := NewSampler(1)
	a := s.UniformPoly(r, level, false)
	c := s.UniformPoly(r, level, false)
	out := r.NewPoly(level)

	for _, workers := range []int{1, par.Workers()} {
		tag := fmt.Sprintf("workers=%d", workers)
		b.Run("NTT+INTT/"+tag, func(b *testing.B) {
			prev := par.SetWorkers(workers)
			defer par.SetWorkers(prev)
			p := a.CopyNew()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.NTT(p, level)
				r.INTT(p, level)
			}
		})
		b.Run("MulCoeffsAdd/"+tag, func(b *testing.B) {
			prev := par.SetWorkers(workers)
			defer par.SetWorkers(prev)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.MulCoeffsAdd(out, a, c, level)
			}
		})
	}
}
