//go:build amd64 && !noasm

package modarith

// CPU feature detection for the amd64 assembly tiers. Hand-rolled CPUID
// rather than golang.org/x/sys/cpu to keep the module dependency-free; the
// checks mirror what the runtime itself does: a feature counts only if the
// CPU reports it AND the OS saves the corresponding register state (XCR0 via
// XGETBV, gated on OSXSAVE).

// cpuid executes CPUID with the given leaf/subleaf. Implemented in
// cpu_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0 (requires OSXSAVE, checked by the caller). Implemented
// in cpu_amd64.s.
func xgetbv() (eax, edx uint32)

var hasAVX2, hasAVX512 = detectAMD64()

func detectAMD64() (avx2, avx512 bool) {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false, false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		osxsaveBit = 1 << 27
		avxBit     = 1 << 28
	)
	if ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false, false
	}
	xcr0, _ := xgetbv()
	const ymmState = 0x6 // XMM + YMM
	if xcr0&ymmState != ymmState {
		return false, false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	const (
		avx2Bit     = 1 << 5
		avx512FBit  = 1 << 16
		avx512DQBit = 1 << 17
		zmmState    = 0xe6 // XMM + YMM + opmask + ZMM_Hi256 + Hi16_ZMM
	)
	avx2 = ebx7&avx2Bit != 0
	// The AVX-512 tier uses ZMM registers, opmasks, and VPMULLQ: require
	// F + DQ and full ZMM state saving from the OS.
	avx512 = xcr0&zmmState == zmmState &&
		ebx7&avx512FBit != 0 && ebx7&avx512DQBit != 0
	return avx2, avx512
}
