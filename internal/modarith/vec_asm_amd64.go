//go:build amd64 && !noasm

package modarith

// amd64 assembly tiers. Each raw asm kernel processes a multiple of its lane
// count (8 for AVX-512, 4 for AVX2) and requires a non-empty input; the
// wrappers below run the largest aligned prefix through assembly and hand the
// remainder to the pure-Go kernel, which keeps the bit-identical contract
// trivially (the Go kernel IS the spec). For the gather kernel the `a`
// operand is never split — indices address it absolutely.

// AVX-512 kernels (8 lanes, F+DQ). vec_avx512_amd64.s.
//
//go:noescape
func vecMulAddLazyAVX512(out, a, b []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecMulAddLazyIdxAVX512(out, a, b []uint64, idx []uint32, q, twoQ, u0, u1 uint64)

//go:noescape
func vecMulBarrettAVX512(out, a, b []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecMulAddBarrettAVX512(out, a, b []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecMulSubBarrettAVX512(out, a, b []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecMulShoupAVX512(out, a []uint64, w, wShoup, q uint64)

//go:noescape
func vecSubMulShoupLazyAVX512(out, a, b []uint64, w, wShoup, q, twoQ uint64)

//go:noescape
func vecRescaleStepAVX512(row, t []uint64, hf4, w, wShoup, q, u0 uint64)

//go:noescape
func vecMulWideAVX512(accHi, accLo, row []uint64, w uint64)

//go:noescape
func vecMulAccWideAVX512(accHi, accLo, row []uint64, w uint64)

//go:noescape
func vecFoldWide128LazyAVX512(accHi, accLo []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecReduceWide128AVX512(dst, accHi, accLo []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecReduceWide128LazyAVX512(dst, accHi, accLo []uint64, q, twoQ, u0, u1 uint64)

//go:noescape
func vecReduceTwoQAVX512(p []uint64, q uint64)

//go:noescape
func vecFwdButterflyAVX512(x, y []uint64, w, wShoup, q, twoQ uint64)

//go:noescape
func vecInvButterflyAVX512(x, y []uint64, w, wShoup, q, twoQ uint64)

func avx512Table() kernelTable {
	return kernelTable{
		tier: TierAVX512,
		mulAddLazy: func(m Modulus, out, a, b []uint64) {
			n := len(a) &^ 7
			if n > 0 {
				vecMulAddLazyAVX512(out[:n], a[:n], b[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(a) {
				vecMulAddLazyGo(m, out[n:], a[n:], b[n:])
			}
		},
		mulAddLazyIdx: func(m Modulus, out, a, b []uint64, idx []uint32) {
			n := len(idx) &^ 7
			if n > 0 {
				vecMulAddLazyIdxAVX512(out[:n], a, b[:n], idx[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(idx) {
				vecMulAddLazyIdxGo(m, out[n:], a, b[n:], idx[n:])
			}
		},
		mulBarrett: func(m Modulus, out, a, b []uint64) {
			n := len(a) &^ 7
			if n > 0 {
				vecMulBarrettAVX512(out[:n], a[:n], b[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(a) {
				vecMulBarrettGo(m, out[n:], a[n:], b[n:])
			}
		},
		mulAddBarrett: func(m Modulus, out, a, b []uint64) {
			n := len(a) &^ 7
			if n > 0 {
				vecMulAddBarrettAVX512(out[:n], a[:n], b[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(a) {
				vecMulAddBarrettGo(m, out[n:], a[n:], b[n:])
			}
		},
		mulSubBarrett: func(m Modulus, out, a, b []uint64) {
			n := len(a) &^ 7
			if n > 0 {
				vecMulSubBarrettAVX512(out[:n], a[:n], b[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(a) {
				vecMulSubBarrettGo(m, out[n:], a[n:], b[n:])
			}
		},
		mulShoup: func(m Modulus, out, a []uint64, w, wShoup uint64) {
			n := len(a) &^ 7
			if n > 0 {
				vecMulShoupAVX512(out[:n], a[:n], w, wShoup, m.Q)
			}
			if n < len(a) {
				vecMulShoupGo(m, out[n:], a[n:], w, wShoup)
			}
		},
		subMulShoupLazy: func(m Modulus, out, a, b []uint64, w, wShoup uint64) {
			n := len(a) &^ 7
			if n > 0 {
				vecSubMulShoupLazyAVX512(out[:n], a[:n], b[:n], w, wShoup, m.Q, m.TwoQ)
			}
			if n < len(a) {
				vecSubMulShoupLazyGo(m, out[n:], a[n:], b[n:], w, wShoup)
			}
		},
		rescaleStep: func(m Modulus, row, t []uint64, halfModQ, w, wShoup uint64) {
			n := len(row) &^ 7
			if n > 0 {
				// halfModQ+4q folded once; wrapping adds commute, so the
				// per-element sum matches the scalar kernel exactly.
				vecRescaleStepAVX512(row[:n], t[:n], halfModQ+4*m.Q, w, wShoup, m.Q, m.BRedHi)
			}
			if n < len(row) {
				vecRescaleStepGo(m, row[n:], t[n:], halfModQ, w, wShoup)
			}
		},
		mulWide: func(accHi, accLo, row []uint64, w uint64) {
			n := len(row) &^ 7
			if n > 0 {
				vecMulWideAVX512(accHi[:n], accLo[:n], row[:n], w)
			}
			if n < len(row) {
				vecMulWideGo(accHi[n:], accLo[n:], row[n:], w)
			}
		},
		mulAccWide: func(accHi, accLo, row []uint64, w uint64) {
			n := len(row) &^ 7
			if n > 0 {
				vecMulAccWideAVX512(accHi[:n], accLo[:n], row[:n], w)
			}
			if n < len(row) {
				vecMulAccWideGo(accHi[n:], accLo[n:], row[n:], w)
			}
		},
		foldWide128Lazy: func(m Modulus, accHi, accLo []uint64) {
			n := len(accLo) &^ 7
			if n > 0 {
				vecFoldWide128LazyAVX512(accHi[:n], accLo[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(accLo) {
				vecFoldWide128LazyGo(m, accHi[n:], accLo[n:])
			}
		},
		reduceWide128: func(m Modulus, dst, accHi, accLo []uint64) {
			n := len(dst) &^ 7
			if n > 0 {
				vecReduceWide128AVX512(dst[:n], accHi[:n], accLo[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(dst) {
				vecReduceWide128Go(m, dst[n:], accHi[n:], accLo[n:])
			}
		},
		reduceWide128Lazy: func(m Modulus, dst, accHi, accLo []uint64) {
			n := len(dst) &^ 7
			if n > 0 {
				vecReduceWide128LazyAVX512(dst[:n], accHi[:n], accLo[:n], m.Q, m.TwoQ, m.BRedHi, m.BRedLo)
			}
			if n < len(dst) {
				vecReduceWide128LazyGo(m, dst[n:], accHi[n:], accLo[n:])
			}
		},
		reduceTwoQ: func(m Modulus, p []uint64) {
			n := len(p) &^ 7
			if n > 0 {
				vecReduceTwoQAVX512(p[:n], m.Q)
			}
			if n < len(p) {
				vecReduceTwoQGo(m, p[n:])
			}
		},
		fwdButterfly: func(m Modulus, x, y []uint64, w, wShoup uint64) {
			n := len(x) &^ 7
			if n > 0 {
				vecFwdButterflyAVX512(x[:n], y[:n], w, wShoup, m.Q, m.TwoQ)
			}
			if n < len(x) { // tail is a multiple of 4 by the Vec*Butterfly contract
				vecFwdButterflyGo(m, x[n:], y[n:], w, wShoup)
			}
		},
		invButterfly: func(m Modulus, x, y []uint64, w, wShoup uint64) {
			n := len(x) &^ 7
			if n > 0 {
				vecInvButterflyAVX512(x[:n], y[:n], w, wShoup, m.Q, m.TwoQ)
			}
			if n < len(x) {
				vecInvButterflyGo(m, x[n:], y[n:], w, wShoup)
			}
		},
	}
}

// asmKernelTables registers the amd64 assembly tiers present on this CPU.
func asmKernelTables() map[KernelTier]kernelTable {
	tables := map[KernelTier]kernelTable{}
	if hasAVX2 {
		tables[TierAVX2] = avx2Table()
	}
	if hasAVX512 {
		tables[TierAVX512] = avx512Table()
	}
	return tables
}
