package ntt

import (
	"math/big"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/par"
)

func newTestTables(t testing.TB, logN int) *Tables {
	t.Helper()
	primes, err := modarith.GenerateNTTPrimes(55, logN, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTables(modarith.MustModulus(primes[0]), logN)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randPoly(r *rand.Rand, n int, q uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.Uint64() % q
	}
	return a
}

// naiveNegacyclic computes the schoolbook negacyclic convolution
// c = a*b mod (X^N+1, q).
func naiveNegacyclic(a, b []uint64, mod modarith.Modulus) []uint64 {
	n := len(a)
	c := make([]uint64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := mod.Mul(a[i], b[j])
			k := i + j
			if k < n {
				c[k] = mod.Add(c[k], p)
			} else {
				c[k-n] = mod.Sub(c[k-n], p)
			}
		}
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	for _, logN := range []int{3, 6, 10, 13} {
		tbl := newTestTables(t, logN)
		r := rand.New(rand.NewSource(int64(logN)))
		a := randPoly(r, tbl.N, tbl.Mod.Q)
		orig := append([]uint64(nil), a...)
		tbl.Forward(a)
		tbl.Inverse(a)
		for i := range a {
			if a[i] != orig[i] {
				t.Fatalf("logN=%d: round trip differs at %d: %d != %d", logN, i, a[i], orig[i])
			}
		}
	}
}

func TestConvolutionMatchesSchoolbook(t *testing.T) {
	for _, logN := range []int{3, 5, 8} {
		tbl := newTestTables(t, logN)
		r := rand.New(rand.NewSource(42))
		a := randPoly(r, tbl.N, tbl.Mod.Q)
		b := randPoly(r, tbl.N, tbl.Mod.Q)
		want := naiveNegacyclic(a, b, tbl.Mod)

		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tbl.Forward(fa)
		tbl.Forward(fb)
		c := make([]uint64, tbl.N)
		tbl.MulCoeffs(c, fa, fb)
		tbl.Inverse(c)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("logN=%d: convolution differs at %d: got %d want %d", logN, i, c[i], want[i])
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	tbl := newTestTables(t, 6)
	mod := tbl.Mod
	f := func(seed int64, s1, s2 uint32) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPoly(r, tbl.N, mod.Q)
		b := randPoly(r, tbl.N, mod.Q)
		c1, c2 := uint64(s1)%mod.Q, uint64(s2)%mod.Q
		// NTT(c1*a + c2*b) == c1*NTT(a) + c2*NTT(b)
		lhs := make([]uint64, tbl.N)
		for i := range lhs {
			lhs[i] = mod.Add(mod.Mul(c1, a[i]), mod.Mul(c2, b[i]))
		}
		tbl.Forward(lhs)
		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tbl.Forward(fa)
		tbl.Forward(fb)
		for i := range lhs {
			rhs := mod.Add(mod.Mul(c1, fa[i]), mod.Mul(c2, fb[i]))
			if lhs[i] != rhs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantPolynomial(t *testing.T) {
	// NTT of the constant polynomial c is the all-c vector.
	tbl := newTestTables(t, 8)
	a := make([]uint64, tbl.N)
	a[0] = 7
	tbl.Forward(a)
	for i := range a {
		if a[i] != 7 {
			t.Fatalf("NTT(const 7)[%d] = %d", i, a[i])
		}
	}
}

func TestMonomialShiftIsNegacyclic(t *testing.T) {
	// X^(N-1) * X = X^N = -1 mod X^N+1.
	tbl := newTestTables(t, 4)
	mod := tbl.Mod
	a := make([]uint64, tbl.N) // X^(N-1)
	a[tbl.N-1] = 1
	b := make([]uint64, tbl.N) // X
	b[1] = 1
	tbl.Forward(a)
	tbl.Forward(b)
	c := make([]uint64, tbl.N)
	tbl.MulCoeffs(c, a, b)
	tbl.Inverse(c)
	if c[0] != mod.Q-1 {
		t.Fatalf("c[0] = %d, want q-1 (i.e. -1)", c[0])
	}
	for i := 1; i < tbl.N; i++ {
		if c[i] != 0 {
			t.Fatalf("c[%d] = %d, want 0", i, c[i])
		}
	}
}

func TestRejectsWrongLength(t *testing.T) {
	tbl := newTestTables(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward on wrong-length slice should panic")
		}
	}()
	tbl.Forward(make([]uint64, 3))
}

// randLazy returns a vector with coefficients in the lazy domain [0, 2q).
func randLazy(r *rand.Rand, n int, q uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.Uint64() % (2 * q)
	}
	return a
}

// bigIntNegacyclic is an independently-derived reference: the negacyclic
// convolution accumulated in big.Int with a single reduction per output
// coefficient, so none of the package's modular arithmetic is trusted.
func bigIntNegacyclic(a, b []uint64, q uint64) []uint64 {
	n := len(a)
	bq := new(big.Int).SetUint64(q)
	acc := make([]*big.Int, n)
	for i := range acc {
		acc[i] = new(big.Int)
	}
	t := new(big.Int)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		ai := new(big.Int).SetUint64(a[i])
		for j := 0; j < n; j++ {
			t.SetUint64(b[j]).Mul(t, ai)
			if i+j < n {
				acc[i+j].Add(acc[i+j], t)
			} else {
				acc[i+j-n].Sub(acc[i+j-n], t)
			}
		}
	}
	c := make([]uint64, n)
	for i := range c {
		acc[i].Mod(acc[i], bq)
		c[i] = acc[i].Uint64()
	}
	return c
}

// TestConvolutionMatchesBigInt checks the full lazy pipeline — ForwardLazy,
// lazy MulCoeffs inputs, Inverse — against the big.Int schoolbook reference.
func TestConvolutionMatchesBigInt(t *testing.T) {
	for _, logN := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		tbl := newTestTables(t, logN)
		r := rand.New(rand.NewSource(int64(100 + logN)))
		a := randPoly(r, tbl.N, tbl.Mod.Q)
		b := randPoly(r, tbl.N, tbl.Mod.Q)
		want := bigIntNegacyclic(a, b, tbl.Mod.Q)

		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tbl.ForwardLazy(fa)
		tbl.ForwardLazy(fb)
		c := make([]uint64, tbl.N)
		tbl.MulCoeffs(c, fa, fb) // lazy inputs, exact output
		tbl.Inverse(c)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("logN=%d: lazy convolution differs at %d: got %d want %d", logN, i, c[i], want[i])
			}
		}
	}
}

// TestRoundTripEveryLogN exercises exact and lazy round trips at every
// supported transform size, including the [0, q) / [0, 2q) output bounds.
func TestRoundTripEveryLogN(t *testing.T) {
	for logN := 1; logN <= 17; logN++ {
		tbl := newTestTables(t, logN)
		q := tbl.Mod.Q
		r := rand.New(rand.NewSource(int64(logN)))
		orig := randPoly(r, tbl.N, q)

		exact := append([]uint64(nil), orig...)
		tbl.Forward(exact)
		for i, v := range exact {
			if v >= q {
				t.Fatalf("logN=%d: Forward output %d at %d not < q", logN, v, i)
			}
		}
		tbl.Inverse(exact)
		lazy := append([]uint64(nil), orig...)
		tbl.ForwardLazy(lazy)
		for i, v := range lazy {
			if v >= 2*q {
				t.Fatalf("logN=%d: ForwardLazy output %d at %d not < 2q", logN, v, i)
			}
		}
		tbl.InverseLazy(lazy)
		for i := range orig {
			if exact[i] != orig[i] {
				t.Fatalf("logN=%d: exact round trip differs at %d: %d != %d", logN, i, exact[i], orig[i])
			}
			if tbl.Mod.ReduceTwoQ(lazy[i]) != orig[i] {
				t.Fatalf("logN=%d: lazy round trip differs at %d: %d !≡ %d", logN, i, lazy[i], orig[i])
			}
		}
	}
}

// TestLazyMatchesExact: the lazy variants agree with the exact ones modulo q
// for both exact and lazy-domain inputs.
func TestLazyMatchesExact(t *testing.T) {
	for _, logN := range []int{1, 2, 5, 9, 12, 14} {
		tbl := newTestTables(t, logN)
		mod := tbl.Mod
		r := rand.New(rand.NewSource(int64(7 * logN)))
		for trial := 0; trial < 4; trial++ {
			in := randLazy(r, tbl.N, mod.Q) // Forward/Inverse accept [0, 2q)
			fe := append([]uint64(nil), in...)
			fl := append([]uint64(nil), in...)
			tbl.Forward(fe)
			tbl.ForwardLazy(fl)
			for i := range fe {
				if fe[i] != mod.ReduceTwoQ(fl[i]) {
					t.Fatalf("logN=%d: ForwardLazy[%d]=%d !≡ Forward=%d", logN, i, fl[i], fe[i])
				}
			}
			ie := append([]uint64(nil), in...)
			il := append([]uint64(nil), in...)
			tbl.Inverse(ie)
			tbl.InverseLazy(il)
			for i := range ie {
				if ie[i] != mod.ReduceTwoQ(il[i]) {
					t.Fatalf("logN=%d: InverseLazy[%d]=%d !≡ Inverse=%d", logN, i, il[i], ie[i])
				}
			}
		}
	}
}

// TestMatchesReference: the Harvey rewrite agrees everywhere with the
// retained pre-rewrite kernels.
func TestMatchesReference(t *testing.T) {
	for _, logN := range []int{1, 2, 3, 4, 6, 8, 10, 13} {
		tbl := newTestTables(t, logN)
		r := rand.New(rand.NewSource(int64(31 * logN)))
		a := randPoly(r, tbl.N, tbl.Mod.Q)

		fNew := append([]uint64(nil), a...)
		fRef := append([]uint64(nil), a...)
		tbl.Forward(fNew)
		tbl.ForwardRef(fRef)
		for i := range fNew {
			if fNew[i] != fRef[i] {
				t.Fatalf("logN=%d: Forward differs from ForwardRef at %d: %d != %d", logN, i, fNew[i], fRef[i])
			}
		}
		iNew := append([]uint64(nil), a...)
		iRef := append([]uint64(nil), a...)
		tbl.Inverse(iNew)
		tbl.InverseRef(iRef)
		for i := range iNew {
			if iNew[i] != iRef[i] {
				t.Fatalf("logN=%d: Inverse differs from InverseRef at %d: %d != %d", logN, i, iNew[i], iRef[i])
			}
		}
		b := randPoly(r, tbl.N, tbl.Mod.Q)
		cNew := make([]uint64, tbl.N)
		cRef := make([]uint64, tbl.N)
		tbl.MulCoeffs(cNew, a, b)
		tbl.MulCoeffsRef(cRef, a, b)
		for i := range cNew {
			if cNew[i] != cRef[i] {
				t.Fatalf("logN=%d: MulCoeffs differs from MulCoeffsRef at %d: %d != %d", logN, i, cNew[i], cRef[i])
			}
		}
	}
}

// TestSplitMatchesSerial checks the intra-polynomial parallel path against
// the serial transform for every split width, exact and lazy. Runs on a
// widened pool so the split actually fans out (and so `go test -race` sees
// the concurrent stage writes).
func TestSplitMatchesSerial(t *testing.T) {
	prev := par.SetWorkers(8)
	defer par.SetWorkers(prev)
	for _, logN := range []int{13, 14} {
		tbl := newTestTables(t, logN)
		r := rand.New(rand.NewSource(int64(13 * logN)))
		a := randPoly(r, tbl.N, tbl.Mod.Q)
		for _, s := range []int{2, 4, 8, 16} {
			for _, lazy := range []bool{false, true} {
				want := append([]uint64(nil), a...)
				tbl.forward(want, lazy)
				got := append([]uint64(nil), a...)
				tbl.forwardSplit(got, s, lazy)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("logN=%d s=%d lazy=%v: forwardSplit differs at %d: %d != %d", logN, s, lazy, i, got[i], want[i])
					}
				}
				want = append([]uint64(nil), a...)
				tbl.inverse(want, lazy)
				got = append([]uint64(nil), a...)
				tbl.inverseSplit(got, s, lazy)
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("logN=%d s=%d lazy=%v: inverseSplit differs at %d: %d != %d", logN, s, lazy, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestManyMatchesSerial drives ForwardMany/InverseMany through every plan
// branch (serial, limb-parallel, intra-poly split) and checks against the
// per-limb serial transforms.
func TestManyMatchesSerial(t *testing.T) {
	for _, workers := range []int{1, 4} {
		prev := par.SetWorkers(workers)
		for _, logN := range []int{6, 13} {
			for _, limbs := range []int{1, 2, 3, 8, 12} {
				primes, err := modarith.GenerateNTTPrimes(55, logN, limbs)
				if err != nil {
					t.Fatal(err)
				}
				tables := make([]*Tables, limbs)
				for i, q := range primes {
					tbl, err := NewTables(modarith.MustModulus(q), logN)
					if err != nil {
						t.Fatal(err)
					}
					tables[i] = tbl
				}
				r := rand.New(rand.NewSource(int64(workers*1000 + logN*10 + limbs)))
				rows := make([][]uint64, limbs)
				want := make([][]uint64, limbs)
				for i := range rows {
					rows[i] = randPoly(r, tables[i].N, tables[i].Mod.Q)
					want[i] = append([]uint64(nil), rows[i]...)
				}
				ForwardMany(tables, rows)
				for i := range rows {
					tables[i].ForwardRef(want[i])
					for j := range rows[i] {
						if rows[i][j] != want[i][j] {
							t.Fatalf("w=%d logN=%d limbs=%d: ForwardMany limb %d differs at %d", workers, logN, limbs, i, j)
						}
					}
				}
				InverseMany(tables, rows)
				for i := range rows {
					tables[i].InverseRef(want[i])
					for j := range rows[i] {
						if rows[i][j] != want[i][j] {
							t.Fatalf("w=%d logN=%d limbs=%d: InverseMany limb %d differs at %d", workers, logN, limbs, i, j)
						}
					}
				}
			}
		}
		par.SetWorkers(prev)
	}
}

// TestParallelTransformsConcurrent runs split-plan transforms from several
// goroutines at once so the race detector can watch the pool-shared stage
// writes under contention (the engine's serving pattern).
func TestParallelTransformsConcurrent(t *testing.T) {
	prev := par.SetWorkers(4)
	defer par.SetWorkers(prev)
	tbl := newTestTables(t, 13)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			a := randPoly(r, tbl.N, tbl.Mod.Q)
			orig := append([]uint64(nil), a...)
			for iter := 0; iter < 3; iter++ {
				ForwardMany([]*Tables{tbl}, [][]uint64{a})
				InverseMany([]*Tables{tbl}, [][]uint64{a})
			}
			for i := range a {
				if a[i] != orig[i] {
					t.Errorf("seed %d: concurrent round trip differs at %d", seed, i)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}

func TestMulCoeffsRejectsWrongLength(t *testing.T) {
	tbl := newTestTables(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("MulCoeffs on wrong-length slice should panic")
		}
	}()
	tbl.MulCoeffs(make([]uint64, tbl.N), make([]uint64, 3), make([]uint64, tbl.N))
}

func BenchmarkForwardN4096(b *testing.B) {
	tbl := newTestTables(b, 12)
	r := rand.New(rand.NewSource(9))
	a := randPoly(r, tbl.N, tbl.Mod.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Forward(a)
	}
}

func BenchmarkInverseN4096(b *testing.B) {
	tbl := newTestTables(b, 12)
	r := rand.New(rand.NewSource(9))
	a := randPoly(r, tbl.N, tbl.Mod.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Inverse(a)
	}
}
