package ckks

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// SecretKey holds the ternary secret s embedded in both the Q and P bases
// (NTT domain).
type SecretKey struct {
	Q *ring.Poly // over RingQ at max level
	P *ring.Poly // over RingP
}

// PublicKey is an RLWE encryption of zero: (B, A) = (-A·s + e, A) over Q.
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey is a gadget ("hybrid") key-switching key with D digits
// (Table I: 2·D polynomials in R_PQ). Digit d encrypts P·g_d·w under the key
// s', where g_d = (Q/Q_d)·[(Q/Q_d)^{-1}]_{Q_d} is the RNS gadget factor:
//
//	B[d] + A[d]·s' = P·g_d·w + e_d  (mod PQ).
//
// For rotation keys, w = s and s' = σ_g^{-1}(s), the layout that supports
// hoisting: the ModUp digits of c1 can be computed once and reused across
// rotations, with the automorphism applied after the inner product (§III-B).
type SwitchingKey struct {
	BQ, AQ []*ring.Poly // Q parts, indexed by digit, max level, NTT
	BP, AP []*ring.Poly // P parts
}

// Digits returns the decomposition number D of the key.
func (k *SwitchingKey) Digits() int { return len(k.BQ) }

// EvaluationKeySet bundles the keys an Evaluator may need.
type EvaluationKeySet struct {
	Rlk *SwitchingKey            // relinearization key (w = s²)
	Gal map[uint64]*SwitchingKey // Galois keys by Galois element
}

// NewEvaluationKeySet returns an empty key set.
func NewEvaluationKeySet() *EvaluationKeySet {
	return &EvaluationKeySet{Gal: make(map[uint64]*SwitchingKey)}
}

// GaloisKey returns the switching key for a Galois element, or an error
// listing it as missing.
func (s *EvaluationKeySet) GaloisKey(galEl uint64) (*SwitchingKey, error) {
	if k, ok := s.Gal[galEl]; ok {
		return k, nil
	}
	return nil, fmt.Errorf("ckks: missing Galois key for element %d", galEl)
}

// KeyGenerator samples keys for a parameter set.
type KeyGenerator struct {
	params  *Parameters
	sampler *ring.Sampler
}

// NewKeyGenerator returns a deterministic key generator (seeded; see
// ring.NewSampler).
func NewKeyGenerator(params *Parameters, seed int64) *KeyGenerator {
	return &KeyGenerator{params: params, sampler: ring.NewSampler(seed)}
}

// GenSecretKey samples a dense ternary secret of Hamming weight params.HDense.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	return kg.genSecretKeyWithWeight(kg.params.HDense())
}

// GenSparseSecretKey samples a sparse ternary secret (Hamming weight H_s)
// for the sparse-secret encapsulation of bootstrapping [9].
func (kg *KeyGenerator) GenSparseSecretKey() *SecretKey {
	return kg.genSecretKeyWithWeight(kg.params.HSparse())
}

func (kg *KeyGenerator) genSecretKeyWithWeight(h int) *SecretKey {
	p := kg.params
	v := kg.sampler.TernaryVector(p.N(), h)
	sk := &SecretKey{
		Q: ring.SmallVectorToPoly(p.RingQ(), p.MaxLevel(), v),
		P: ring.SmallVectorToPoly(p.RingP(), p.RingP().MaxLevel(), v),
	}
	p.RingQ().NTT(sk.Q, p.MaxLevel())
	p.RingP().NTT(sk.P, p.RingP().MaxLevel())
	return sk
}

// GenPublicKey returns an RLWE encryption of zero under sk.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	p := kg.params
	rq := p.RingQ()
	lvl := p.MaxLevel()
	a := kg.sampler.UniformPoly(rq, lvl, true)
	e := kg.sampler.GaussianPoly(rq, lvl, p.Sigma())
	rq.NTT(e, lvl)
	b := rq.NewPoly(lvl)
	b.IsNTT = true
	rq.MulCoeffs(b, a, sk.Q, lvl)
	rq.Neg(b, b, lvl)
	rq.Add(b, b, e, lvl)
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey produces a key with digit d satisfying
// B[d] + A[d]·under = P·g_d·w + e_d over PQ, where w and under are NTT-form
// secrets over (Q, P).
func (kg *KeyGenerator) genSwitchingKey(wQ *ring.Poly, underQ, underP *ring.Poly) *SwitchingKey {
	p := kg.params
	rq, rp := p.RingQ(), p.RingP()
	lvlQ, lvlP := p.MaxLevel(), rp.MaxLevel()
	alpha := p.Alpha()
	digits := p.Digits(lvlQ)

	// P mod q_i for the in-group gadget term.
	pModQ := make([]uint64, lvlQ+1)
	for i := 0; i <= lvlQ; i++ {
		prod := uint64(1)
		for _, pm := range rp.Moduli {
			prod = rq.Moduli[i].Mul(prod, pm.Q%rq.Moduli[i].Q)
		}
		pModQ[i] = prod
	}

	key := &SwitchingKey{
		BQ: make([]*ring.Poly, digits),
		AQ: make([]*ring.Poly, digits),
		BP: make([]*ring.Poly, digits),
		AP: make([]*ring.Poly, digits),
	}
	for d := 0; d < digits; d++ {
		aQ := kg.sampler.UniformPoly(rq, lvlQ, true)
		aP := kg.sampler.UniformPoly(rp, lvlP, true)
		ev := kg.sampler.GaussianVector(p.N(), p.Sigma())
		eQ := ring.SmallVectorToPoly(rq, lvlQ, ev)
		eP := ring.SmallVectorToPoly(rp, lvlP, ev)
		rq.NTT(eQ, lvlQ)
		rp.NTT(eP, lvlP)

		bQ := rq.NewPoly(lvlQ)
		bQ.IsNTT = true
		rq.MulCoeffs(bQ, aQ, underQ, lvlQ)
		rq.Neg(bQ, bQ, lvlQ)
		rq.Add(bQ, bQ, eQ, lvlQ)
		// Gadget term: P·g_d·w has residue (P mod q_i)·w_i for i in the
		// digit's prime group and 0 elsewhere (and 0 mod every p_j).
		lo, hi := d*alpha, min((d+1)*alpha, lvlQ+1)
		for i := lo; i < hi; i++ {
			mod := rq.Moduli[i]
			dst, src := bQ.Coeffs[i], wQ.Coeffs[i]
			c := pModQ[i]
			cs := mod.ShoupPrecomp(c)
			for j := range dst {
				dst[j] = mod.Add(dst[j], mod.MulShoup(src[j], c, cs))
			}
		}

		bP := rp.NewPoly(lvlP)
		bP.IsNTT = true
		rp.MulCoeffs(bP, aP, underP, lvlP)
		rp.Neg(bP, bP, lvlP)
		rp.Add(bP, bP, eP, lvlP)

		key.BQ[d], key.AQ[d] = bQ, aQ
		key.BP[d], key.AP[d] = bP, aP
	}
	return key
}

// GenRelinearizationKey returns the key switching s² -> s.
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *SwitchingKey {
	p := kg.params
	rq := p.RingQ()
	lvl := p.MaxLevel()
	s2 := rq.NewPoly(lvl)
	rq.MulCoeffs(s2, sk.Q, sk.Q, lvl)
	s2.IsNTT = true
	return kg.genSwitchingKey(s2, sk.Q, sk.P)
}

// GenGaloisKey returns the key enabling the automorphism σ_g on ciphertexts
// under sk, in the hoisting-compatible layout (w = s, under = σ_g^{-1}(s)).
func (kg *KeyGenerator) GenGaloisKey(sk *SecretKey, galEl uint64) *SwitchingKey {
	p := kg.params
	rq, rp := p.RingQ(), p.RingP()
	gInv := invGalois(galEl, uint64(2*p.N()))
	underQ := rq.NewPoly(p.MaxLevel())
	rq.AutomorphismNTT(underQ, sk.Q, gInv, p.MaxLevel())
	underP := rp.NewPoly(rp.MaxLevel())
	rp.AutomorphismNTT(underP, sk.P, gInv, rp.MaxLevel())
	return kg.genSwitchingKey(sk.Q, underQ, underP)
}

// GenRotationKeys populates ks with Galois keys for the given slot
// rotations.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, ks *EvaluationKeySet, rotations []int) {
	rq := kg.params.RingQ()
	for _, r := range rotations {
		g := rq.GaloisElement(r)
		if _, ok := ks.Gal[g]; !ok {
			ks.Gal[g] = kg.GenGaloisKey(sk, g)
		}
	}
}

// GenConjugationKey adds the key for complex conjugation.
func (kg *KeyGenerator) GenConjugationKey(sk *SecretKey, ks *EvaluationKeySet) {
	g := kg.params.RingQ().GaloisElementConjugate()
	if _, ok := ks.Gal[g]; !ok {
		ks.Gal[g] = kg.GenGaloisKey(sk, g)
	}
}

// GenKeySwitchKey returns the key switching ciphertexts under skFrom to
// skTo (used by sparse-secret encapsulation).
func (kg *KeyGenerator) GenKeySwitchKey(skFrom, skTo *SecretKey) *SwitchingKey {
	return kg.genSwitchingKey(skFrom.Q, skTo.Q, skTo.P)
}

// invGalois returns g^{-1} mod m for odd g (m a power of two).
func invGalois(g, m uint64) uint64 {
	// The multiplicative group mod 2^k has exponent 2^{k-2}; brute power is
	// fine for our sizes, but extended Euclid is simplest and exact.
	var inv func(a, m int64) int64
	inv = func(a, m int64) int64 {
		g0, g1 := m, a
		x0, x1 := int64(0), int64(1)
		for g1 != 0 {
			q := g0 / g1
			g0, g1 = g1, g0-q*g1
			x0, x1 = x1, x0-q*x1
		}
		return ((x0 % m) + m) % m
	}
	return uint64(inv(int64(g%m), int64(m)))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
