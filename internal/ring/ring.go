// Package ring implements arithmetic over the cyclotomic quotient rings
// R_Q = Z_Q[X]/(X^N+1) in RNS (residue number system) representation: a
// polynomial with L+1 limbs is stored as an (L+1)×N matrix of uint64
// residues, one row per prime of the basis (§II-A of the Anaheim paper).
//
// The package provides limb-wise ring operations, forward/inverse NTT across
// limbs, Galois automorphisms in both coefficient and NTT domains, and the
// random samplers (uniform, ternary with fixed Hamming weight, discrete
// Gaussian) needed by RLWE-based schemes.
package ring

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/ntt"
	"github.com/anaheim-sim/anaheim/internal/par"
)

// Ring is an RNS cyclotomic ring: degree N = 2^LogN with a chain of NTT-
// friendly prime moduli. Operations take a level argument selecting how many
// limbs (level+1) participate, supporting CKKS modulus switching.
type Ring struct {
	N      int
	LogN   int
	Moduli []modarith.Modulus
	Tables []*ntt.Tables

	autoMu   sync.Mutex                 // serializes autoSnap writers (cold path only)
	autoSnap atomic.Pointer[autoTables] // automorphism caches; lock-free reads

	// pool recycles Poly scratch buffers per limb count (see pool.go).
	pool polyPool

	// Limb-transform counters (atomic), used to cross-validate the
	// simulator's kernel traces against the functional library's actual
	// operation counts.
	nttLimbs, inttLimbs atomic.Int64
}

// ResetCounters zeroes the limb-transform counters.
func (r *Ring) ResetCounters() {
	r.nttLimbs.Store(0)
	r.inttLimbs.Store(0)
}

// Counters returns the forward/inverse limb-transform counts since the last
// reset.
func (r *Ring) Counters() (ntt, intt int64) {
	return r.nttLimbs.Load(), r.inttLimbs.Load()
}

// NewRing constructs a ring of degree 2^logN over the given primes, which
// must all satisfy q ≡ 1 (mod 2N).
func NewRing(logN int, primes []uint64) (*Ring, error) {
	if len(primes) == 0 {
		return nil, fmt.Errorf("ring: empty prime chain")
	}
	r := &Ring{
		N:      1 << uint(logN),
		LogN:   logN,
		Moduli: make([]modarith.Modulus, len(primes)),
		Tables: make([]*ntt.Tables, len(primes)),
	}
	r.autoSnap.Store(&autoTables{perm: map[uint64][]uint32{}, gal: map[int]uint64{}})
	for i, q := range primes {
		mod, err := modarith.NewModulus(q)
		if err != nil {
			return nil, fmt.Errorf("ring: prime %d: %w", i, err)
		}
		tbl, err := ntt.NewTables(mod, logN)
		if err != nil {
			return nil, fmt.Errorf("ring: prime %d: %w", i, err)
		}
		r.Moduli[i] = mod
		r.Tables[i] = tbl
	}
	return r, nil
}

// MaxLevel is the level of a polynomial using every prime of the chain.
func (r *Ring) MaxLevel() int { return len(r.Moduli) - 1 }

// AtLevel returns the moduli participating at the given level.
func (r *Ring) AtLevel(level int) []modarith.Modulus { return r.Moduli[:level+1] }

// Poly is an RNS polynomial. Coeffs[i][j] is coefficient j modulo the i-th
// prime. IsNTT records the current domain; operations that require a
// specific domain check it.
type Poly struct {
	Coeffs [][]uint64
	IsNTT  bool
}

// NewPoly allocates a zero polynomial with level+1 limbs, backed by a single
// contiguous allocation.
func (r *Ring) NewPoly(level int) *Poly {
	limbs := level + 1
	backing := make([]uint64, limbs*r.N)
	p := &Poly{Coeffs: make([][]uint64, limbs)}
	for i := 0; i < limbs; i++ {
		p.Coeffs[i], backing = backing[:r.N], backing[r.N:]
	}
	return p
}

// Level returns the polynomial's level (number of limbs minus one).
func (p *Poly) Level() int { return len(p.Coeffs) - 1 }

// CopyNew returns a deep copy of p.
func (p *Poly) CopyNew() *Poly {
	q := &Poly{Coeffs: make([][]uint64, len(p.Coeffs)), IsNTT: p.IsNTT}
	backing := make([]uint64, len(p.Coeffs)*len(p.Coeffs[0]))
	for i := range p.Coeffs {
		q.Coeffs[i], backing = backing[:len(p.Coeffs[i])], backing[len(p.Coeffs[i]):]
		copy(q.Coeffs[i], p.Coeffs[i])
	}
	return q
}

// Copy copies q into p (p must have at least as many limbs).
func (p *Poly) Copy(q *Poly) {
	for i := range q.Coeffs {
		copy(p.Coeffs[i], q.Coeffs[i])
	}
	p.IsNTT = q.IsNTT
}

// Truncated returns a view of p restricted to level+1 limbs (shares backing
// storage with p).
func (p *Poly) Truncated(level int) *Poly {
	return &Poly{Coeffs: p.Coeffs[:level+1], IsNTT: p.IsNTT}
}

// Zero clears all limbs.
func (p *Poly) Zero() {
	for i := range p.Coeffs {
		row := p.Coeffs[i]
		for j := range row {
			row[j] = 0
		}
	}
}

// Equal reports deep equality of coefficients and domain up to the smaller
// of the two levels.
func (p *Poly) Equal(q *Poly) bool {
	if p.IsNTT != q.IsNTT || len(p.Coeffs) != len(q.Coeffs) {
		return false
	}
	for i := range p.Coeffs {
		for j := range p.Coeffs[i] {
			if p.Coeffs[i][j] != q.Coeffs[i][j] {
				return false
			}
		}
	}
	return true
}

// parallelLimbThreshold is the limb count above which per-limb work is
// spread over the shared worker pool (internal/par). Limbs are independent
// (RNS), so this is safe; below the threshold the synchronization overhead
// dominates.
const parallelLimbThreshold = 8

// forEachLimb runs f over limbs 0..level, on the shared worker pool when
// worthwhile. Workers get contiguous limb ranges (par.ForEachChunk): the
// limb rows of a Poly share one backing array, so a contiguous split keeps
// each worker streaming sequential memory instead of striding across it.
func forEachLimb(level int, f func(i int)) {
	limbs := level + 1
	if limbs < parallelLimbThreshold || par.Workers() < 2 {
		for i := 0; i < limbs; i++ {
			f(i)
		}
		return
	}
	par.ForEachChunk(limbs, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			f(i)
		}
	})
}

// NTT transforms p in place to the NTT domain (all limbs up to level).
func (r *Ring) NTT(p *Poly, level int) {
	if p.IsNTT {
		panic("ring: NTT on a polynomial already in NTT form")
	}
	ntt.ForwardMany(r.Tables[:level+1], p.Coeffs[:level+1])
	r.nttLimbs.Add(int64(level + 1))
	accountRows(bytesTransform, 2, level+1, r.N)
	p.IsNTT = true
}

// INTT transforms p in place back to the coefficient domain.
func (r *Ring) INTT(p *Poly, level int) {
	if !p.IsNTT {
		panic("ring: INTT on a polynomial already in coefficient form")
	}
	ntt.InverseMany(r.Tables[:level+1], p.Coeffs[:level+1])
	r.inttLimbs.Add(int64(level + 1))
	accountRows(bytesTransform, 2, level+1, r.N)
	p.IsNTT = false
}

// NTTLazy is NTT with lazy outputs: coefficients land in [0, 2q) instead of
// [0, q), skipping the transform's exit reduction. Use it when the result
// feeds a lazy-tolerant chain (the fused gadget-product MACs); end the chain
// with ReduceLazy before any exact kernel sees the polynomial. Counts toward
// the same limb-transform counters as NTT.
func (r *Ring) NTTLazy(p *Poly, level int) {
	if p.IsNTT {
		panic("ring: NTTLazy on a polynomial already in NTT form")
	}
	ntt.ForwardManyLazy(r.Tables[:level+1], p.Coeffs[:level+1])
	r.nttLimbs.Add(int64(level + 1))
	accountRows(bytesTransform, 2, level+1, r.N)
	p.IsNTT = true
}

// INTTLazy is INTT with lazy [0, 2q) outputs (inputs may also be lazy).
func (r *Ring) INTTLazy(p *Poly, level int) {
	if !p.IsNTT {
		panic("ring: INTTLazy on a polynomial already in coefficient form")
	}
	ntt.InverseManyLazy(r.Tables[:level+1], p.Coeffs[:level+1])
	r.inttLimbs.Add(int64(level + 1))
	accountRows(bytesTransform, 2, level+1, r.N)
	p.IsNTT = false
}
