// Exact integer arithmetic with BGV (§VIII-C of the Anaheim paper: the
// scheme shares its KeyMult structure with CKKS, so the same PIM
// architecture serves it). Computes a·b + c over 1024 integer slots mod
// 65537 with zero error — unlike CKKS, BGV results are exact.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/anaheim-sim/anaheim/internal/bgv"
)

func main() {
	p, err := bgv.TestParameters()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("BGV: N=%d slots, plaintext modulus t=%d, %d levels\n",
		p.N(), p.T(), p.MaxLevel())

	sk, pk, rlk := bgv.KeyGen(p, 1)
	ev := bgv.NewEvaluator(p)
	r := rand.New(rand.NewSource(7))

	a := make([]uint64, p.N())
	b := make([]uint64, p.N())
	c := make([]uint64, p.N())
	for i := range a {
		a[i], b[i], c[i] = r.Uint64()%p.T(), r.Uint64()%p.T(), r.Uint64()%p.T()
	}
	encA, _ := p.Encode(a)
	encB, _ := p.Encode(b)
	encC, _ := p.Encode(c)
	ctA := bgv.Encrypt(p, pk, encA, 2)
	ctB := bgv.Encrypt(p, pk, encB, 3)

	// a·b + c, then a modulus switch to tame the noise.
	prod := ev.MulRelin(ctA, ctB, rlk)
	res := ev.ModSwitch(ev.AddPlain(prod, encC))

	got := bgv.Decrypt(p, sk, res)
	for i := range a {
		want := (a[i]*b[i] + c[i]) % p.T()
		if got[i] != want {
			log.Fatalf("slot %d: got %d want %d — BGV must be exact", i, got[i], want)
		}
	}
	fmt.Printf("sample: %d*%d + %d = %d (mod %d)\n", a[0], b[0], c[0], got[0], p.T())
	fmt.Printf("all %d slots exact: OK\n", p.N())
}
