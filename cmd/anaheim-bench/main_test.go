package main

import (
	"encoding/json"
	"io"
	"os"
	"strings"
	"testing"
)

func TestRunMicroEmitsJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("microbenchmarks are slow")
	}
	// One NTT grid cell is enough to validate report shape; the full grid
	// belongs to `make micro`, not the test suite.
	prevGrid := nttGrid
	nttGrid.logNs, nttGrid.limbs = []int{12}, []int{1}
	defer func() { nttGrid = prevGrid }()
	prevBConv := bconvGrid
	bconvGrid.logNs, bconvGrid.limbs = []int{12}, []int{4}
	defer func() { bconvGrid = prevBConv }()
	prevKSLevel := ksLevelGrid
	ksLevelGrid.logNs = []int{12}
	ksLevelGrid.levels = ksLevelGrid.levels[:1] // low only; full grid is `make micro`
	defer func() { ksLevelGrid = prevKSLevel }()
	prevTier := tierGrid
	tierGrid.logN, tierGrid.bconvLimbs = 12, 4
	defer func() { tierGrid = prevTier }()
	var sb strings.Builder
	if err := runMicro(&sb, true, "both"); err != nil {
		t.Fatal(err)
	}
	var rep microReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(rep.Results) < 5 {
		t.Fatalf("want >=5 benchmarked ops, got %d", len(rep.Results))
	}
	byOp := make(map[string]microResult, len(rep.Results))
	for _, r := range rep.Results {
		byOp[r.Op] = r
	}
	// The lazy-NTT/Barrett rewrite sped the unfused element-wise kernels
	// ~3x, so at test scale the bootstrap fused/unfused gap sits inside
	// single-iteration timing jitter (bootstrap runs at b.N=1); there the
	// fused path must merely not be materially slower. Lintrans iterates
	// enough for a stable strict ordering.
	for _, pair := range []struct {
		fused, unfused string
		slack          float64
	}{
		{"lintrans-fused", "lintrans-unfused", 1.0},
		{"bootstrap-fused", "bootstrap-unfused", 1.25},
	} {
		f, fok := byOp[pair.fused]
		u, uok := byOp[pair.unfused]
		if !fok || !uok {
			t.Fatalf("-fusion both must emit %v, have %v", pair, rep.Results)
		}
		if f.NsPerOp >= u.NsPerOp*pair.slack {
			t.Errorf("%s (%.0f ns/op) not within %.2fx of %s (%.0f ns/op)",
				pair.fused, f.NsPerOp, pair.slack, pair.unfused, u.NsPerOp)
		}
	}
	for _, r := range rep.Results {
		if r.Op == "" || r.NsPerOp <= 0 {
			t.Fatalf("bad result entry: %+v", r)
		}
	}
	if rep.Metrics == nil {
		t.Fatal("-metrics snapshot missing from report")
	}
	if v, ok := rep.Metrics.Counters[`ckks_ops_total{op="mul"}`]; !ok || v <= 0 {
		t.Fatalf("metrics snapshot has no mul count: %v", rep.Metrics.Counters)
	}
}

func TestRunCompare(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep microReport) string {
		t.Helper()
		raw, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		path := dir + "/" + name
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	base := write("base.json", microReport{Results: []microResult{
		{Op: "add", NsPerOp: 100},
		{Op: "mul", NsPerOp: 1000},
	}})
	cand := write("cand.json", microReport{Results: []microResult{
		{Op: "add", NsPerOp: 110},  // +10%: within tolerance
		{Op: "mul", NsPerOp: 1500}, // +50%: regression
		{Op: "rotate", NsPerOp: 5}, // new op: reported, not a regression
	}})

	var sb strings.Builder
	regressed, err := runCompare(&sb, base, cand, 25)
	if err != nil {
		t.Fatal(err)
	}
	if !regressed {
		t.Fatalf("want regression flagged:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "REGRESSION") || !strings.Contains(sb.String(), "mul") {
		t.Fatalf("missing regression marker:\n%s", sb.String())
	}

	sb.Reset()
	regressed, err = runCompare(&sb, base, cand, 60)
	if err != nil {
		t.Fatal(err)
	}
	if regressed {
		t.Fatalf("60%% tolerance must pass:\n%s", sb.String())
	}

	if _, err := runCompare(&sb, base, "", 25); err == nil {
		t.Fatal("want error when -against is missing")
	}
	if _, err := runCompare(&sb, dir+"/nosuch.json", cand, 25); err == nil {
		t.Fatal("want error for missing baseline file")
	}
	empty := write("empty.json", microReport{})
	if _, err := runCompare(&sb, empty, cand, 25); err == nil {
		t.Fatal("want error for a report with no results")
	}
	disjoint := write("disjoint.json", microReport{Results: []microResult{
		{Op: "encode", NsPerOp: 10},
	}})
	if _, err := runCompare(&sb, base, disjoint, 25); err == nil {
		t.Fatal("want error when the reports share no benchmark ops")
	}
}

func TestFusionModeFlag(t *testing.T) {
	if err := runMicro(io.Discard, false, "sometimes"); err == nil {
		t.Fatal("want error for unknown -fusion mode")
	}
	for _, mode := range []string{"both", "on", "off"} {
		if _, err := fusionModes(mode); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
	}
}
