package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %g, want 8000", got)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("same name must return the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("same name must return the same gauge")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Fatal("same name must return the same histogram")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := newHistogram(nil)
	// 1000 observations uniform on (0, 1ms]: p50 ≈ 0.5ms, p99 ≈ 0.99ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.Sum(), 1000*1001/2*1e-6; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	p50 := h.Quantile(0.5)
	if p50 < 0.25e-3 || p50 > 0.75e-3 {
		t.Fatalf("p50 = %g, want ≈ 0.5ms", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Fatalf("p99 %g < p50 %g", p99, p50)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := newHistogram([]float64{1, 2})
	h.Observe(100) // beyond the last bound: +Inf bucket
	counts := h.BucketCounts()
	if counts[2] != 1 {
		t.Fatalf("+Inf bucket = %d, want 1", counts[2])
	}
	if q := h.Quantile(0.99); q != 2 {
		t.Fatalf("overflow quantile = %g, want last bound 2", q)
	}
}

func TestPrometheusExport(t *testing.T) {
	r := NewRegistry()
	r.Counter(`ops_total{op="mul"}`).Add(3)
	r.Counter(`ops_total{op="add"}`).Add(1)
	r.Gauge("busy").Set(2)
	r.GaugeFunc("depth", func() float64 { return 7 })
	r.HistogramWith(`lat_seconds{op="mul"}`, []float64{0.1, 1}).Observe(0.05)

	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE ops_total counter",
		`ops_total{op="mul"} 3`,
		`ops_total{op="add"} 1`,
		"# TYPE busy gauge",
		"busy 2",
		"depth 7",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{op="mul",le="0.1"} 1`,
		`lat_seconds_bucket{op="mul",le="+Inf"} 1`,
		`lat_seconds_sum{op="mul"} 0.05`,
		`lat_seconds_count{op="mul"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// One TYPE header per family even with several label sets.
	if strings.Count(out, "# TYPE ops_total") != 1 {
		t.Errorf("duplicated TYPE header:\n%s", out)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c").Add(2)
	r.Histogram("h").Observe(0.5)
	s := r.Snapshot()
	if s.Counters["c"] != 2 {
		t.Fatalf("snapshot counter = %g", s.Counters["c"])
	}
	if s.Histograms["h"].Count != 1 {
		t.Fatalf("snapshot histogram count = %d", s.Histograms["h"].Count)
	}
}

func TestTracerRingBounded(t *testing.T) {
	tr := NewTracer(4)
	root := tr.Start("root", 0)
	root.End()
	for i := 0; i < 10; i++ {
		sp := tr.Start("child", root.ID())
		sp.Annotate("i")
		sp.End()
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4 (bounded ring)", len(spans))
	}
	if tr.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", tr.Dropped())
	}
	for _, s := range spans {
		if s.Name != "child" || s.Parent != root.ID() {
			t.Fatalf("unexpected retained span %+v", s)
		}
	}
	// Oldest-first ordering.
	for i := 1; i < len(spans); i++ {
		if spans[i].ID < spans[i-1].ID {
			t.Fatalf("snapshot not oldest-first: %v", spans)
		}
	}
}

func TestNilSpanSafe(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x", 0)
	sp.Annotate("a") // must not panic
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil span must have ID 0")
	}
}
