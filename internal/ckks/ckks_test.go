package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// testContext bundles everything the scheme tests need.
type testContext struct {
	params *Parameters
	enc    *Encoder
	kgen   *KeyGenerator
	sk     *SecretKey
	pk     *PublicKey
	keys   *EvaluationKeySet
	encr   *Encryptor
	decr   *Decryptor
	eval   *Evaluator
}

func newTestContext(t testing.TB, lit ParametersLiteral) *testContext {
	t.Helper()
	params, err := NewParameters(lit)
	if err != nil {
		t.Fatal(err)
	}
	tc := &testContext{params: params}
	tc.enc = NewEncoder(params)
	tc.kgen = NewKeyGenerator(params, 1)
	tc.sk = tc.kgen.GenSecretKey()
	tc.pk = tc.kgen.GenPublicKey(tc.sk)
	tc.keys = NewEvaluationKeySet()
	tc.keys.Rlk = tc.kgen.GenRelinearizationKey(tc.sk)
	tc.encr = NewEncryptor(params, 2)
	tc.decr = NewDecryptor(params, tc.sk)
	tc.eval = NewEvaluator(params, tc.keys)
	return tc
}

func randomComplex(r *rand.Rand, n int, bound float64) []complex128 {
	v := make([]complex128, n)
	for i := range v {
		v[i] = complex((2*r.Float64()-1)*bound, (2*r.Float64()-1)*bound)
	}
	return v
}

// maxErr returns the max absolute slot-wise error between got and want.
func maxErr(got, want []complex128) float64 {
	m := 0.0
	for i := range want {
		if e := cmplx.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m
}

func (tc *testContext) encryptVec(t testing.TB, v []complex128) *Ciphertext {
	t.Helper()
	pt, err := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	return tc.encr.EncryptNew(&Plaintext{Value: pt, Scale: tc.params.DefaultScale()}, tc.pk)
}

func (tc *testContext) decryptVec(ct *Ciphertext) []complex128 {
	pt := tc.decr.DecryptNew(ct)
	return tc.enc.Decode(pt.Value, pt.Scale)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(10))
	v := randomComplex(r, tc.params.Slots(), 1)
	pt, err := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt, tc.params.DefaultScale())
	if e := maxErr(got, v); e > 1e-9 {
		t.Fatalf("encode/decode error %g too large", e)
	}
}

func TestEncodeShortVectorPads(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	v := []complex128{1, 2i, -3}
	pt, err := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(pt, tc.params.DefaultScale())
	for i := range v {
		if cmplx.Abs(got[i]-v[i]) > 1e-9 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], v[i])
		}
	}
	for i := len(v); i < 8; i++ {
		if cmplx.Abs(got[i]) > 1e-9 {
			t.Fatalf("slot %d should be ~0, got %v", i, got[i])
		}
	}
}

func TestEncryptDecrypt(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(11))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	got := tc.decryptVec(ct)
	if e := maxErr(got, v); e > 1e-6 {
		t.Fatalf("encrypt/decrypt error %g too large", e)
	}
}

func TestEncryptWithSecretKey(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(12))
	v := randomComplex(r, tc.params.Slots(), 1)
	pt, _ := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encr.EncryptSkNew(&Plaintext{Value: pt, Scale: tc.params.DefaultScale()}, tc.sk)
	got := tc.decryptVec(ct)
	if e := maxErr(got, v); e > 1e-6 {
		t.Fatalf("sk-encrypt error %g too large", e)
	}
}

func TestHADD(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(13))
	a := randomComplex(r, tc.params.Slots(), 1)
	b := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.eval.Add(tc.encryptVec(t, a), tc.encryptVec(t, b))
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] + b[i]
	}
	if e := maxErr(tc.decryptVec(ct), want); e > 1e-6 {
		t.Fatalf("HADD error %g", e)
	}
}

func TestSubNeg(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(14))
	a := randomComplex(r, tc.params.Slots(), 1)
	b := randomComplex(r, tc.params.Slots(), 1)
	cta, ctb := tc.encryptVec(t, a), tc.encryptVec(t, b)
	diff := tc.eval.Sub(cta, ctb)
	negB := tc.eval.Neg(ctb)
	alt := tc.eval.Add(cta, negB)
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] - b[i]
	}
	if e := maxErr(tc.decryptVec(diff), want); e > 1e-6 {
		t.Fatalf("Sub error %g", e)
	}
	if e := maxErr(tc.decryptVec(alt), want); e > 1e-6 {
		t.Fatalf("Add(Neg) error %g", e)
	}
}

func TestPMULT(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(15))
	a := randomComplex(r, tc.params.Slots(), 1)
	p := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, a)
	ptp, _ := tc.enc.Encode(p, ct.Level(), tc.params.DefaultScale())
	prod := tc.eval.MulPlain(ct, &Plaintext{Value: ptp, Scale: tc.params.DefaultScale()})
	prod = tc.eval.Rescale(prod)
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] * p[i]
	}
	if e := maxErr(tc.decryptVec(prod), want); e > 1e-5 {
		t.Fatalf("PMULT error %g", e)
	}
}

func TestHMULT(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(16))
	a := randomComplex(r, tc.params.Slots(), 1)
	b := randomComplex(r, tc.params.Slots(), 1)
	prod := tc.eval.MulRelin(tc.encryptVec(t, a), tc.encryptVec(t, b), nil)
	prod = tc.eval.Rescale(prod)
	want := make([]complex128, len(a))
	for i := range want {
		want[i] = a[i] * b[i]
	}
	if e := maxErr(tc.decryptVec(prod), want); e > 1e-4 {
		t.Fatalf("HMULT error %g", e)
	}
}

func TestHMULTDepth(t *testing.T) {
	// Repeated squaring down the modulus chain.
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(17))
	v := randomComplex(r, tc.params.Slots(), 0.9)
	ct := tc.encryptVec(t, v)
	want := append([]complex128(nil), v...)
	for d := 0; d < 3; d++ {
		ct = tc.eval.Rescale(tc.eval.Square(ct))
		for i := range want {
			want[i] *= want[i]
		}
	}
	if e := maxErr(tc.decryptVec(ct), want); e > 1e-3 {
		t.Fatalf("depth-3 squaring error %g", e)
	}
}

func TestHROT(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(18))
	v := randomComplex(r, tc.params.Slots(), 1)
	for _, k := range []int{1, 2, 7, tc.params.Slots() - 1} {
		tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{k})
		ct := tc.encryptVec(t, v)
		rot, err := tc.eval.Rotate(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]complex128, len(v))
		for i := range want {
			want[i] = v[(i+k)%len(v)]
		}
		if e := maxErr(tc.decryptVec(rot), want); e > 1e-5 {
			t.Fatalf("HROT(%d) error %g", k, e)
		}
	}
}

func TestConjugate(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	tc.kgen.GenConjugationKey(tc.sk, tc.keys)
	r := rand.New(rand.NewSource(19))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	conj, err := tc.eval.Conjugate(ct)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = cmplx.Conj(v[i])
	}
	if e := maxErr(tc.decryptVec(conj), want); e > 1e-5 {
		t.Fatalf("Conjugate error %g", e)
	}
}

func TestRotateHoistedMatchesRotate(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	rots := []int{1, 3, 5, 8}
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, rots)
	r := rand.New(rand.NewSource(20))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	hoisted, err := tc.eval.RotateHoisted(ct, rots)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range rots {
		direct, err := tc.eval.Rotate(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		dh := tc.decryptVec(hoisted[k])
		dd := tc.decryptVec(direct)
		if e := maxErr(dh, dd); e > 1e-5 {
			t.Fatalf("hoisted rot %d differs from direct by %g", k, e)
		}
	}
}

// TestRotateHoistedErrors pins the failure modes of the hoisted path: a
// missing Galois key must surface as an error before any work is done (the
// key scan runs ahead of the shared decomposition), and full-slot rotations
// must come back as plain copies without requiring a key at all.
func TestRotateHoistedErrors(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{1})
	r := rand.New(rand.NewSource(22))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)

	// Key for rotation 2 was never generated.
	if out, err := tc.eval.RotateHoisted(ct, []int{1, 2}); err == nil {
		t.Fatalf("want missing-key error, got %d ciphertexts", len(out))
	}

	// k ≡ 0 mod slots is the identity: no key needed, result is a copy.
	slots := tc.params.Slots()
	out, err := tc.eval.RotateHoisted(ct, []int{0, slots, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{0, slots} {
		got, ok := out[k]
		if !ok {
			t.Fatalf("identity rotation %d missing from result", k)
		}
		if got == ct {
			t.Fatalf("identity rotation %d aliases the input", k)
		}
		if e := maxErr(tc.decryptVec(got), v); e > 1e-6 {
			t.Fatalf("identity rotation %d error %g", k, e)
		}
	}

	// Empty rotation list: no keys touched, empty result.
	if out, err := tc.eval.RotateHoisted(ct, nil); err != nil || len(out) != 0 {
		t.Fatalf("empty rotation list: out=%v err=%v", out, err)
	}
}

func TestAddConstMultConst(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(21))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)

	ct2 := tc.eval.AddConst(ct, 2.5)
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] + 2.5
	}
	if e := maxErr(tc.decryptVec(ct2), want); e > 1e-6 {
		t.Fatalf("AddConst error %g", e)
	}

	dropQ := float64(tc.params.RingQ().Moduli[ct.Level()].Q)
	ct3 := tc.eval.Rescale(tc.eval.MultConst(ct, -1.25, dropQ))
	for i := range want {
		want[i] = v[i] * -1.25
	}
	if e := maxErr(tc.decryptVec(ct3), want); e > 1e-6 {
		t.Fatalf("MultConst error %g", e)
	}
	if math.Abs(ct3.Scale/ct.Scale-1) > 1e-9 {
		t.Fatalf("MultConst at drop-prime scale should restore scale exactly: %g vs %g", ct3.Scale, ct.Scale)
	}
}

func TestMulByI(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(22))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.eval.MulByI(tc.encryptVec(t, v))
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[i] * 1i
	}
	if e := maxErr(tc.decryptVec(ct), want); e > 1e-6 {
		t.Fatalf("MulByI error %g", e)
	}
}

func TestSwitchKeysEncapsulation(t *testing.T) {
	// Round trip dense -> sparse -> dense secret.
	tc := newTestContext(t, TestParameters())
	skSparse := tc.kgen.GenSparseSecretKey()
	toSparse := tc.kgen.GenKeySwitchKey(tc.sk, skSparse)
	toDense := tc.kgen.GenKeySwitchKey(skSparse, tc.sk)

	r := rand.New(rand.NewSource(23))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	ctSparse := tc.eval.SwitchKeys(ct, toSparse)

	// Decrypts under the sparse key.
	dSparse := NewDecryptor(tc.params, skSparse)
	got := tc.enc.Decode(dSparse.DecryptNew(ctSparse).Value, ctSparse.Scale)
	if e := maxErr(got, v); e > 1e-5 {
		t.Fatalf("switch to sparse error %g", e)
	}

	ctBack := tc.eval.SwitchKeys(ctSparse, toDense)
	if e := maxErr(tc.decryptVec(ctBack), v); e > 1e-5 {
		t.Fatalf("round-trip encapsulation error %g", e)
	}
}

func TestDropLevel(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(24))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.eval.DropLevel(tc.encryptVec(t, v), 2)
	if ct.Level() != 2 {
		t.Fatalf("level = %d", ct.Level())
	}
	if e := maxErr(tc.decryptVec(ct), v); e > 1e-6 {
		t.Fatalf("drop-level error %g", e)
	}
}

func TestParametersAccessors(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	p := tc.params
	if p.N() != 1<<10 || p.Slots() != 1<<9 {
		t.Fatal("bad N/slots")
	}
	if p.Digits(p.MaxLevel()) != (p.MaxLevel()+1+p.Alpha()-1)/p.Alpha() {
		t.Fatal("bad digit count")
	}
	if p.LogQP() <= 0 {
		t.Fatal("bad LogQP")
	}
}

func TestPaperParametersStructure(t *testing.T) {
	// Table IV: N=2^16, L=54, alpha=14, D=4. Structural check only (we do
	// not instantiate the rings).
	lit := PaperParameters()
	if lit.LogN != 16 || len(lit.LogQ) != 54 || len(lit.LogP) != 14 {
		t.Fatalf("paper parameter shape wrong: %v", lit)
	}
	d := (len(lit.LogQ) + len(lit.LogP) - 1) / len(lit.LogP)
	if d != 4 {
		t.Fatalf("D = %d, want 4", d)
	}
	// log PQ < 1623 for 128-bit security at N=2^16 (§IV-B).
	total := 0
	for _, b := range append(append([]int{}, lit.LogQ...), lit.LogP...) {
		total += b
	}
	if total >= 1623 {
		t.Fatalf("log PQ = %d violates the 128-bit security bound", total)
	}
}
