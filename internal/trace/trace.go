// Package trace defines the kernel-level intermediate representation the
// Anaheim software framework lowers FHE programs into (§V): typed kernels
// (NTT, INTT, BConv, element-wise, automorphism) annotated with weighted
// operation counts, DRAM traffic split into working-set and one-time
// (evk/plaintext streaming) bytes, PIM-offloadability, and the coherence
// write-backs a PIM offload requires. Builders emit the op sequences of the
// basic CKKS functions and of hoisting-, MinKS- and BSGS-based linear
// transforms under the paper's fusion options.
package trace

import (
	"math"

	"github.com/anaheim-sim/anaheim/internal/pim"
)

// Params is the structural (paper-scale) CKKS parameter set: only shapes
// matter here; the functional scheme lives in internal/ckks.
type Params struct {
	LogN      int
	N         int
	L         int // number of Q primes
	Alpha     int // number of P primes
	D         int // decomposition number = ceil(L/Alpha)
	WordBytes int
}

// PaperParams returns Table IV: N=2^16, L=54, α=14, D=4, 32-bit words.
func PaperParams() Params {
	return Params{LogN: 16, N: 1 << 16, L: 54, Alpha: 14, D: 4, WordBytes: 4}
}

// WithD returns a copy reconfigured for a different decomposition number,
// holding the modulus budget log PQ (and thus the total limb count L+α=68)
// constant as in Fig 2b: α = ceil(68/(D+1)), L = 68-α. Larger D yields more
// usable levels but larger evks (§II-C).
func (p Params) WithD(d int) Params {
	q := p
	q.D = d
	q.Alpha = (68 + d) / (d + 1)
	q.L = 68 - q.Alpha
	return q
}

// LimbBytes is the size of one limb (N coefficients).
func (p Params) LimbBytes() float64 { return float64(p.N * p.WordBytes) }

// PolyBytes is the size of a polynomial with the given limb count.
func (p Params) PolyBytes(limbs int) float64 { return float64(limbs) * p.LimbBytes() }

// CtBytes is the size of a ciphertext at the given level.
func (p Params) CtBytes(level int) float64 { return 2 * p.PolyBytes(level+1) }

// EvkBytes is the size of one evaluation key at the given level
// (2·D polynomials in R_PQ, Table I).
func (p Params) EvkBytes(level int) float64 {
	return 2 * float64(p.D) * p.PolyBytes(level+1+p.Alpha)
}

// Digits returns the decomposition count at a level.
func (p Params) Digits(level int) int {
	return (level + 1 + p.Alpha - 1) / p.Alpha
}

// Class labels a kernel with its primary polynomial operation (§II-B).
type Class int

const (
	ClassNTT Class = iota
	ClassINTT
	ClassBConv
	ClassEW
	ClassAut
)

func (c Class) String() string {
	return [...]string{"NTT", "INTT", "BConv", "EW", "Aut"}[c]
}

// Kernel is one schedulable unit.
type Kernel struct {
	Name  string
	Class Class

	// Compute: weighted 32-bit integer op count (modmul = 5, modadd = 1).
	WeightedOps float64

	// Memory: total DRAM bytes under GPU execution, and the portion that is
	// one-time streaming data (evks, plaintexts) that never benefits from
	// caching (§V-D).
	Bytes   float64
	OneTime float64

	// Element-wise detail for PIM pricing.
	Op        pim.Opcode
	OpK       int
	Limbs     int // limbs per polynomial operand
	Instances int // identical instruction instances in this kernel

	// Offload marks kernels the Anaheim framework sends to PIM.
	Offload bool
	// WriteBack is the extra GPU-side DRAM write traffic required before a
	// following PIM kernel may read this kernel's products (§V-C coherence).
	WriteBack float64

	// FuseGroup/FuseRole tag kernels emitted by the naive (SplitKernels)
	// builder for the internal/fusion rewrite passes: kernels sharing a
	// FuseGroup form one fusable compound (the members of a PAccum/CAccum
	// chain, or an automorphism and its accumulation). Untagged kernels are
	// never touched by the passes.
	FuseGroup string
	FuseRole  string
}

// Fuse roles recognized by the internal/fusion passes.
const (
	// RoleMAC tags one naive multiply-accumulate instruction of a compound
	// PAccum/CAccum chain (Table II).
	RoleMAC = "mac"
	// RoleAut tags a bare automorphism whose accumulation was split off
	// (the Fig 6 "before" shape: permute to a temporary, 2 accesses).
	RoleAut = "aut"
	// RoleAccum tags the separate accumulation kernel an unfused
	// automorphism round-trips through (3 accesses).
	RoleAccum = "accum"
	// RoleSwapPMult tags a diagonal plaintext multiply emitted *after* its
	// automorphism in the naive hoisted linear transform; the §V-B reorder
	// pass moves it before the automorphism (pre-rotating the plaintext
	// offline), which is what frees the automorphism to fuse with the
	// accumulation.
	RoleSwapPMult = "pmult-diag"
)

// Trace is an ordered kernel sequence with workload metadata.
type Trace struct {
	Name    string
	P       Params
	Kernels []Kernel
	LEff    int // multiplicative levels per bootstrap (T_boot,eff divisor)
}

// Append adds kernels.
func (t *Trace) Append(ks ...Kernel) { t.Kernels = append(t.Kernels, ks...) }

// Concat appends another trace's kernels n times.
func (t *Trace) Concat(o *Trace, n int) {
	for i := 0; i < n; i++ {
		t.Kernels = append(t.Kernels, o.Kernels...)
	}
}

// CountClass sums a quantity over kernels of one class.
func (t *Trace) CountClass(c Class, f func(Kernel) float64) float64 {
	s := 0.0
	for _, k := range t.Kernels {
		if k.Class == c {
			s += f(k)
		}
	}
	return s
}

// NTTLimbTransforms counts (I)NTT limb transforms, the unit of the Fig 1
// table comparison.
func (t *Trace) NTTLimbTransforms() float64 {
	one := func(k Kernel) float64 { return float64(k.Limbs) * float64(k.Instances) }
	return t.CountClass(ClassNTT, one) + t.CountClass(ClassINTT, one)
}

// OneTimeBytes sums streaming evk/plaintext traffic.
func (t *Trace) OneTimeBytes() float64 {
	s := 0.0
	for _, k := range t.Kernels {
		s += k.OneTime
	}
	return s
}

// TotalBytes sums all GPU DRAM traffic (no PIM).
func (t *Trace) TotalBytes() float64 {
	s := 0.0
	for _, k := range t.Kernels {
		s += k.Bytes
	}
	return s
}

// weights of modular ops in 32-bit integer-op equivalents ("one modular mult
// involves a handful of instructions on GPUs", §III-A D2).
const (
	modMulW = 8.0
	modAddW = 1.0
)

func nttWeightedOps(p Params, limbs float64) float64 {
	n := float64(p.N)
	logN := float64(p.LogN)
	butterflies := n / 2 * logN
	return limbs * (butterflies*modMulW + 2*butterflies*modAddW)
}

func bconvWeightedOps(p Params, kin, kout int) float64 {
	return float64(kin) * float64(kout) * float64(p.N) * (modMulW + modAddW)
}

func ceilSqrt(k int) int { return int(math.Ceil(math.Sqrt(float64(k)))) }
