package ring

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary serialization of polynomials: a fixed header (limb count,
// coefficient count, domain flag) followed by little-endian uint64
// coefficients. Scales linearly and round-trips exactly.

const polyMagic = 0x414e504f // "ANPO"

// MarshalBinary encodes the polynomial.
func (p *Poly) MarshalBinary() ([]byte, error) {
	limbs := len(p.Coeffs)
	if limbs == 0 {
		return nil, fmt.Errorf("ring: cannot marshal an empty polynomial")
	}
	n := len(p.Coeffs[0])
	buf := make([]byte, 16+8*limbs*n)
	binary.LittleEndian.PutUint32(buf[0:], polyMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(limbs))
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	if p.IsNTT {
		buf[12] = 1
	}
	off := 16
	for _, row := range p.Coeffs {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[off:], v)
			off += 8
		}
	}
	return buf, nil
}

// UnmarshalBinary decodes into p, allocating storage.
func (p *Poly) UnmarshalBinary(data []byte) error {
	if len(data) < 16 {
		return fmt.Errorf("ring: polynomial data truncated (%d bytes)", len(data))
	}
	if binary.LittleEndian.Uint32(data) != polyMagic {
		return fmt.Errorf("ring: bad polynomial magic")
	}
	limbs := int(binary.LittleEndian.Uint32(data[4:]))
	n := int(binary.LittleEndian.Uint32(data[8:]))
	if limbs <= 0 || n <= 0 || limbs > 1<<16 || n > 1<<20 {
		return fmt.Errorf("ring: implausible polynomial shape %dx%d", limbs, n)
	}
	if want := 16 + 8*limbs*n; len(data) != want {
		return fmt.Errorf("ring: polynomial data length %d, want %d", len(data), want)
	}
	p.IsNTT = data[12] == 1
	backing := make([]uint64, limbs*n)
	p.Coeffs = make([][]uint64, limbs)
	off := 16
	for i := 0; i < limbs; i++ {
		p.Coeffs[i], backing = backing[:n], backing[n:]
		for j := 0; j < n; j++ {
			p.Coeffs[i][j] = binary.LittleEndian.Uint64(data[off:])
			off += 8
		}
	}
	return nil
}

// AppendFloat64 and ReadFloat64 are helpers for composite structures that
// carry scales alongside polynomials.
func AppendFloat64(buf []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(buf, b[:]...)
}

// ReadFloat64 reads a float64 and returns the remaining slice.
func ReadFloat64(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("ring: float64 data truncated")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), data[8:], nil
}
