package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ckks"
	"github.com/anaheim-sim/anaheim/internal/obs"
)

// squareJob is a one-op job spec against sess.
func squareJob(t *testing.T, client *testClient, sid, tier string) JobSpec {
	t.Helper()
	return JobSpec{
		SessionID: sid,
		Inputs:    map[string]*ckks.Ciphertext{"x": client.encrypt(t, []complex128{1, 0.5})},
		Ops:       []OpSpec{{ID: "a", Op: "square", Args: []string{"x"}}},
		Outputs:   []string{"a"},
		Tier:      tier,
	}
}

func TestTierValidation(t *testing.T) {
	client := newTestClient(t)
	e := New(Config{Workers: 1})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Submit(squareJob(t, client, sess.ID, "extreme")); err == nil ||
		!strings.Contains(err.Error(), "unknown tier") {
		t.Fatalf("unknown tier: got %v", err)
	}
	// Empty tier normalizes to standard.
	job, err := e.Submit(squareJob(t, client, sess.ID, ""))
	if err != nil {
		t.Fatal(err)
	}
	if job.tier != TierStandard {
		t.Fatalf("empty tier normalized to %q", job.tier)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestAdmissionReasons drives each rejection layer and checks the typed
// reason: tier capacity share, then per-tenant limit.
func TestAdmissionReasons(t *testing.T) {
	client := newTestClient(t)
	e := New(Config{Workers: 1, MaxActiveJobs: 14})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}

	overloadReason := func(err error) string {
		t.Helper()
		var oe *OverloadError
		if !errors.As(err, &oe) {
			t.Fatalf("got %v (%T), want *OverloadError", err, err)
		}
		if !errors.Is(err, ErrBusy) {
			t.Fatal("OverloadError must unwrap to ErrBusy")
		}
		return oe.Reason
	}

	// Tier share: weights 8/4/2 over 14 slots give the batch tier 2.
	e.mu.Lock()
	e.tierActive[TierBatch] = e.tierCaps[TierBatch]
	e.mu.Unlock()
	_, err = e.Submit(squareJob(t, client, sess.ID, TierBatch))
	if got := overloadReason(err); got != "tier_full" {
		t.Fatalf("reason = %q, want tier_full", got)
	}
	e.mu.Lock()
	e.tierActive[TierBatch] = 0
	e.mu.Unlock()

	// Per-tenant cap.
	e.mu.Lock()
	e.tenantActive[sess.ID] = e.cfg.MaxJobsPerTenant
	e.mu.Unlock()
	_, err = e.Submit(squareJob(t, client, sess.ID, TierLatency))
	if got := overloadReason(err); got != "tenant_limit" {
		t.Fatalf("reason = %q, want tenant_limit", got)
	}
	e.mu.Lock()
	delete(e.tenantActive, sess.ID)
	e.mu.Unlock()

	// Rejections must not leak session pins: the session stays evictable.
	if got := e.sessions.Len(); got != 1 {
		t.Fatalf("sessions resident = %d, want 1", got)
	}
}

// TestBatchDispatchCorrectness runs the same multi-tenant workload through a
// batching engine and checks both that fused groups actually formed and that
// every job's math is right — batching must be a scheduling optimization,
// never a semantic one.
func TestBatchDispatchCorrectness(t *testing.T) {
	client := newTestClient(t)
	reg := obs.NewRegistry()
	e := New(Config{Workers: 2, BatchWindow: 25 * time.Millisecond, MaxBatch: 4, Obs: reg})
	defer e.Close()

	const tenants = 6
	u := []complex128{0.5, -1, 2}
	jobs := make([]*Job, tenants)
	for i := range jobs {
		sess, err := e.AttachSession(client.params, client.keys)
		if err != nil {
			t.Fatal(err)
		}
		job, err := e.Submit(JobSpec{
			SessionID: sess.ID,
			Inputs:    map[string]*ckks.Ciphertext{"x": client.encrypt(t, u)},
			Ops: []OpSpec{
				{ID: "s", Op: "square", Args: []string{"x"}},
				{ID: "o", Op: "add", Args: []string{"s", "s"}},
			},
			Outputs: []string{"o"},
			Tier:    TierBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = job
	}
	for i, job := range jobs {
		if err := job.Wait(context.Background()); err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		outs, err := job.Results()
		if err != nil {
			t.Fatal(err)
		}
		got := client.decrypt(outs["o"])
		for s, want := range []complex128{0.5, 2, 8} { // 2*u^2
			d := got[s] - want
			if real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
				t.Fatalf("job %d slot %d: got %v, want %v", i, s, got[s], want)
			}
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["engine_batches_dispatched_total"] == 0 {
		t.Fatal("no fused groups dispatched despite 6 same-class tenants and a 25ms window")
	}
	if snap.Counters["engine_batched_ops_total"] < 2 {
		t.Fatalf("batched ops = %v, want >= 2", snap.Counters["engine_batched_ops_total"])
	}
}

// TestTierIsolation is the admission-control acceptance gate: a saturating
// batch-tier tenant must not starve the latency tier. The assertion is
// ordering-based (robust under -race slowdown): every latency job completes
// while the batch backlog is still draining, and none is rejected for
// capacity the batch tenant consumed.
func TestTierIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("tier isolation test is slow")
	}
	client := newTestClient(t)
	e := New(Config{Workers: 2, MaxActiveJobs: 32, MaxJobsPerTenant: 24,
		BatchWindow: time.Millisecond, DefaultDeadline: time.Minute})
	defer e.Close()
	batchSess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	latSess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}

	// Flood: deep sequential chains on the batch tier, filling its share.
	ct := client.encrypt(t, []complex128{1, 0.5})
	deepSpec := JobSpec{
		SessionID: batchSess.ID,
		Inputs:    map[string]*ckks.Ciphertext{"x": ct},
		Tier:      TierBatch,
	}
	deepSpec.Ops = []OpSpec{{ID: "op0", Op: "square", Args: []string{"x"}}}
	for i := 1; i < 12; i++ {
		deepSpec.Ops = append(deepSpec.Ops, OpSpec{ID: fmt.Sprintf("op%d", i), Op: "add",
			Args: []string{fmt.Sprintf("op%d", i-1), fmt.Sprintf("op%d", i-1)}})
	}
	deepSpec.Outputs = []string{"op11"}

	var flood []*Job
	for i := 0; i < 16; i++ {
		job, err := e.Submit(deepSpec)
		if errors.Is(err, ErrBusy) {
			continue // the batch tier saturating its own share is the premise
		}
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, job)
	}
	if len(flood) == 0 {
		t.Fatal("no flood jobs admitted")
	}

	// Latency jobs submitted into the saturated engine: all must admit
	// (their tier share is reserved) and complete ahead of the backlog.
	for i := 0; i < 4; i++ {
		job, err := e.Submit(squareJob(t, client, latSess.ID, TierLatency))
		if err != nil {
			t.Fatalf("latency job %d rejected under batch flood: %v", i, err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatalf("latency job %d: %v", i, err)
		}
	}
	pending := 0
	for _, job := range flood {
		if !job.terminal() {
			pending++
		}
	}
	if pending == 0 {
		t.Fatal("batch backlog fully drained before latency jobs finished: saturation premise failed")
	}
	for _, job := range flood {
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestExpiredNeverDispatched is the deadline/backpressure stress gate: jobs
// that expire while queued behind a busy worker must terminate with the
// deadline error, their ops must never reach the evaluator, and the engine
// must shut down without leaking goroutines (the PR 2 leak gate).
func TestExpiredNeverDispatched(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test is slow")
	}
	client := newTestClient(t, 1)

	// Warm process-wide lazy pools through a throwaway engine so the
	// goroutine baseline captures only this test's engine.
	func() {
		e := New(Config{Workers: 1})
		defer e.Close()
		sess, err := e.AttachSession(client.params, client.keys)
		if err != nil {
			t.Fatal(err)
		}
		job, err := e.Submit(squareJob(t, client, sess.ID, ""))
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	baseline := runtime.NumGoroutine()

	// QueueSize 1 means at most one dispatch group sits pre-claimed beyond
	// the busy worker; everything else waits in the tier queues, where
	// terminal jobs are pruned before dispatch.
	reg := obs.NewRegistry()
	e := New(Config{Workers: 1, QueueSize: 1, MaxActiveJobs: 48, MaxJobsPerTenant: 32, Obs: reg})
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}

	// Blockers: latency-tier squares keep the single worker saturated. The
	// latency tier's dequeue priority (credit weight 8) means the first
	// standard-tier group cannot be offered before eight latency dispatches
	// — several op-times, far beyond the victims' deadline.
	ct := client.encrypt(t, []complex128{1})
	var blockers []*Job
	for i := 0; i < 12; i++ {
		job, err := e.Submit(JobSpec{
			SessionID: sess.ID,
			Inputs:    map[string]*ckks.Ciphertext{"x": ct},
			Ops:       []OpSpec{{ID: "s", Op: "square", Args: []string{"x"}}},
			Outputs:   []string{"s"},
			Tier:      TierLatency,
		})
		if err != nil {
			t.Fatal(err)
		}
		blockers = append(blockers, job)
	}

	// Victims: rotate-only standard-tier jobs with deadlines far shorter
	// than the latency backlog. "rotate" appears in no other job, so its
	// per-op execution counter staying at zero proves no expired op touched
	// the evaluator.
	var victims []*Job
	for i := 0; i < 8; i++ {
		job, err := e.Submit(JobSpec{
			SessionID: sess.ID,
			Inputs:    map[string]*ckks.Ciphertext{"x": ct},
			Ops:       []OpSpec{{ID: "r", Op: "rotate", Args: []string{"x"}, K: 1}},
			Outputs:   []string{"r"},
			Deadline:  500 * time.Microsecond,
		})
		if errors.Is(err, ErrBusy) {
			continue // full backpressure shedding some victims is fine
		}
		if err != nil {
			t.Fatal(err)
		}
		victims = append(victims, job)
	}
	if len(victims) == 0 {
		t.Fatal("no victim jobs admitted")
	}
	for _, job := range victims {
		err := job.Wait(context.Background())
		if err == nil || (!errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline")) {
			t.Errorf("victim: want deadline error, got %v", err)
		}
	}
	for _, job := range blockers {
		if err := job.Wait(context.Background()); err != nil {
			t.Fatalf("blocker: %v", err)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters[`engine_ops_total{op="rotate"}`]; got != 0 {
		t.Errorf("expired rotate ops executed %v times, want 0", got)
	}

	e.Close()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			n := runtime.NumGoroutine()
			var buf strings.Builder
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutine leak: %d after close, baseline %d\n%s", n, baseline, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSessionDetachAndClose covers the session lifetime fixes: detach
// removes key bytes from the cache, running jobs survive a detach, and
// Close releases every session's key material deterministically.
func TestSessionDetachAndClose(t *testing.T) {
	client := newTestClient(t)
	e := New(Config{Workers: 1})
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	if sess.KeyBytes() <= 0 {
		t.Fatal("session key bytes not measured")
	}
	if got := e.sessions.Bytes(); got != sess.KeyBytes() {
		t.Fatalf("cache bytes = %d, want %d", got, sess.KeyBytes())
	}

	job, err := e.Submit(squareJob(t, client, sess.ID, ""))
	if err != nil {
		t.Fatal(err)
	}
	if !e.DetachSession(sess.ID) {
		t.Fatal("DetachSession on live session reported not found")
	}
	if e.DetachSession(sess.ID) {
		t.Fatal("second DetachSession reported found")
	}
	// The in-flight job keeps its reference and still completes.
	if err := job.Wait(context.Background()); err != nil {
		t.Fatalf("job after detach: %v", err)
	}
	if _, err := e.Submit(squareJob(t, client, sess.ID, "")); err == nil ||
		!strings.Contains(err.Error(), "unknown session") {
		t.Fatalf("submit on detached session: got %v", err)
	}

	sess2, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	if sess2.Keys != nil || sess2.Eval != nil {
		t.Fatal("Close did not release session key material")
	}
	if e.sessions.Len() != 0 {
		t.Fatalf("sessions resident after close: %d", e.sessions.Len())
	}
	if _, err := e.Submit(squareJob(t, client, sess2.ID, "")); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: got %v, want ErrClosed", err)
	}
}

// TestSessionLoaderRematerializes wires the rematerialization hook: a
// detached (evicted) session comes back through Config.SessionLoader, and
// concurrent submits coalesce onto one load.
func TestSessionLoaderRematerializes(t *testing.T) {
	client := newTestClient(t)
	var loads int
	var mu sync.Mutex
	var e *Engine
	e = New(Config{Workers: 2, SessionLoader: func(id string) (*Session, error) {
		mu.Lock()
		loads++
		mu.Unlock()
		return NewSession(id, client.params, client.keys)
	}})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	e.DetachSession(sess.ID) // simulate eviction

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			job, err := e.Submit(squareJob(t, client, sess.ID, ""))
			if err != nil {
				t.Errorf("submit after eviction: %v", err)
				return
			}
			if err := job.Wait(context.Background()); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	if loads < 1 {
		t.Fatal("loader never ran")
	}
	// Coalescing: 8 concurrent submits on one evicted key should land far
	// fewer than 8 loads; exactly-once is guaranteed only while the flight
	// is open, so allow the (rare) sequential-miss case.
	if loads > 3 {
		t.Fatalf("loader ran %d times for 8 concurrent submits", loads)
	}
}

// TestServingMetricsExported is the export-shape gate for the serving
// capacity gauge family and the batching counters.
func TestServingMetricsExported(t *testing.T) {
	client := newTestClient(t)
	reg := obs.NewRegistry()
	e := New(Config{Workers: 1, Obs: reg})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(squareJob(t, client, sess.ID, TierLatency))
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	text := sb.String()
	for _, want := range []string{
		"engine_sessions_live 1",
		"engine_evalkey_resident_bytes",
		`engine_tier_queue_depth{tier="latency"}`,
		`engine_tier_queue_depth{tier="standard"}`,
		`engine_tier_queue_depth{tier="batch"}`,
		`engine_tier_active_jobs{tier="latency"}`,
		`engine_tier_jobs_admitted_total{tier="latency"} 1`,
		"engine_batches_dispatched_total",
		"engine_ops_expired_total",
		`keycache_resident_bytes{cache="sessions"}`,
		`keycache_hits_total{cache="sessions"}`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus export missing %q", want)
		}
	}
}
