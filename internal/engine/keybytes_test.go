package engine

import (
	"testing"

	"github.com/anaheim-sim/anaheim/internal/ckks"
	"github.com/anaheim-sim/anaheim/internal/ring"
)

// rawPolysBytes recomputes a poly slice's coefficient payload from first
// principles — limbs × degree × 8 — independently of the CoeffBytes
// arithmetic inside the ckks package.
func rawPolysBytes(ps []*ring.Poly) int64 {
	var n int64
	for _, p := range ps {
		if len(p.Coeffs) > 0 {
			n += int64(len(p.Coeffs)) * int64(len(p.Coeffs[0])) * 8
		}
	}
	return n
}

func rawSwitchingKeyBytes(k *ckks.SwitchingKey) int64 {
	n := rawPolysBytes(k.BQ) + rawPolysBytes(k.AQ) + rawPolysBytes(k.BP) + rawPolysBytes(k.AP)
	for _, b := range k.Bands {
		n += rawPolysBytes(b.BQ) + rawPolysBytes(b.AQ) + rawPolysBytes(b.BP) + rawPolysBytes(b.AP)
	}
	return n
}

// TestSessionKeyBytesAccounting pins the cache-costing contract: the bytes a
// session is accounted at must equal an independent walk over every
// switching key's limb matrices — base digits AND level-aware band variants.
// If keygen grows a new key component without teaching CoeffBytes about it,
// this test catches the cache under-accounting.
func TestSessionKeyBytesAccounting(t *testing.T) {
	client := newTestClient(t, 1, 3)
	e := New(Config{Workers: 1})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}

	var want int64
	bands := 0
	want += rawSwitchingKeyBytes(client.keys.Rlk)
	bands += len(client.keys.Rlk.Bands)
	for _, k := range client.keys.Gal {
		want += rawSwitchingKeyBytes(k)
		bands += len(k.Bands)
	}
	if bands == 0 {
		t.Fatal("test parameters produced no banded keys; accounting test is vacuous")
	}
	if got := sess.KeyBytes(); got != want {
		t.Fatalf("session accounted at %d bytes, independent sum is %d", got, want)
	}
	if got := e.sessions.Bytes(); got != want {
		t.Fatalf("key cache holds %d bytes, independent sum is %d", got, want)
	}

	// Bands must be a real fraction of the payload, and stripping them must
	// shrink the measured size by exactly their raw bytes.
	stripped := &ckks.SwitchingKey{
		BQ: client.keys.Rlk.BQ, AQ: client.keys.Rlk.AQ,
		BP: client.keys.Rlk.BP, AP: client.keys.Rlk.AP,
	}
	bandBytes := rawSwitchingKeyBytes(client.keys.Rlk) - rawSwitchingKeyBytes(stripped)
	if bandBytes <= 0 {
		t.Fatal("relinearization key bands carry no bytes")
	}
	if got := client.keys.Rlk.CoeffBytes() - stripped.CoeffBytes(); got != bandBytes {
		t.Fatalf("CoeffBytes attributes %d bytes to bands, raw walk says %d", got, bandBytes)
	}
}
