package modarith

import (
	"math/rand"
	"testing"
)

// Array-shaped MAC benchmarks mirroring the ring kernels' access pattern, so
// the Div64-vs-Barrett comparison reflects throughput (pipelined, cache-hot)
// rather than dependent-chain latency.

func macBenchData(q uint64) (m Modulus, a, b, out []uint64) {
	m = MustModulus(q)
	n := 1 << 13
	a = make([]uint64, n)
	b = make([]uint64, n)
	out = make([]uint64, n)
	r := rand.New(rand.NewSource(1))
	for i := range a {
		a[i] = r.Uint64() % q
		b[i] = r.Uint64() % q
		out[i] = r.Uint64() % q
	}
	return
}

func BenchmarkMACDiv64(b *testing.B) {
	m, x, y, out := macBenchData(0x1fffffffffe00001)
	b.SetBytes(int64(len(x) * 8))
	for i := 0; i < b.N; i++ {
		for j := range out {
			out[j] = m.Add(out[j], m.Mul(x[j], y[j]))
		}
	}
}

func BenchmarkMACBarrettLazy(b *testing.B) {
	m, x, y, out := macBenchData(0x1fffffffffe00001)
	b.SetBytes(int64(len(x) * 8))
	for i := 0; i < b.N; i++ {
		for j := range out {
			out[j] = m.AddLazy(out[j], m.MulBarrettLazy(x[j], y[j]))
		}
	}
}
