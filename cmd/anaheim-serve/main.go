// Command anaheim-serve runs the FHE serving runtime as an HTTP/JSON
// service. Clients create a session by uploading their evaluation keys
// (relinearization + Galois; the secret key never leaves the client), then
// submit op-DAG jobs over base64-encoded ciphertexts and poll for results.
//
// Usage:
//
//	anaheim-serve -addr :8080 -workers 4 -queue 16 -maxjobs 64
//
// Endpoints:
//
//	GET  /healthz
//	POST /v1/sessions                   create a session from evaluation keys
//	POST /v1/sessions/{sid}/transforms  register a named linear transform
//	POST /v1/sessions/{sid}/jobs        submit a job (429 when saturated)
//	GET  /v1/jobs/{id}                  poll job status
//	GET  /v1/jobs/{id}/result           fetch output ciphertexts
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/anaheim-sim/anaheim/internal/engine"
)

type serveConfig struct {
	addr     string
	workers  int
	queue    int
	maxJobs  int
	deadline time.Duration
}

func parseFlags(args []string) (serveConfig, error) {
	fs := flag.NewFlagSet("anaheim-serve", flag.ContinueOnError)
	cfg := serveConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	fs.IntVar(&cfg.workers, "workers", 0, "op worker goroutines (0 = GOMAXPROCS)")
	fs.IntVar(&cfg.queue, "queue", 0, "ready-op queue depth (0 = 4x workers)")
	fs.IntVar(&cfg.maxJobs, "maxjobs", 0, "max in-flight jobs before 429 (0 = default)")
	fs.DurationVar(&cfg.deadline, "deadline", 0, "default per-job deadline (0 = engine default)")
	if err := fs.Parse(args); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// run starts the engine and HTTP server and blocks until ctx is cancelled,
// then drains both. Split from main so tests can drive it.
func run(ctx context.Context, cfg serveConfig, ready chan<- string) error {
	e := engine.New(engine.Config{
		Workers:         cfg.workers,
		QueueSize:       cfg.queue,
		MaxActiveJobs:   cfg.maxJobs,
		DefaultDeadline: cfg.deadline,
	})
	defer e.Close()

	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           engine.NewHTTPHandler(e),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("anaheim-serve: listen %s: %w", cfg.addr, err)
	}
	log.Printf("anaheim-serve: listening on %s", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutCtx)
	}
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, cfg, nil); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}
