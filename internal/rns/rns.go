// Package rns provides residue-number-system utilities on top of the prime
// chains used by RNS-CKKS: the fast (approximate) basis conversion BConv of
// §II-B, rounding division by the last modulus (rescaling), and the constant
// vectors (P mod q_i, P^{-1} mod q_i) used by ModUp/ModDown key switching.
package rns

import (
	"fmt"
	"sync"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/par"
)

// convTile is the coefficient-tile width of the blocked Convert kernel. A
// tile keeps k premultiplied tmp rows plus two accumulator rows resident in
// L1 while every target limb consumes them: at 256 coefficients a k=32 digit
// needs 32·256·8 = 64 KiB of tmp plus 4 KiB of accumulators, the L1d
// footprint the kernel is sized for (per-core L1d is 32–64 KiB; the hot
// working set at any instant is one tmp row + the accumulators).
const convTile = 256

// BasisConverter performs the fast base conversion of a value represented in
// basis "from" (moduli q_0..q_{k-1}, product Q) into basis "to": for each
// target prime p_j it computes
//
//	out_j = Σ_i [x·(Q/q_i)^{-1}]_{q_i} · (Q/q_i)  mod p_j ,
//
// which equals x + e·Q for some 0 ≤ e < k (the standard approximate BConv;
// the small multiple of Q is absorbed by the noise in CKKS). Computing BConv
// is "mostly equivalent to a matrix-matrix mult between a predefined α×L
// BConv matrix and the L×N input" (§II-B).
//
// The kernel blocks the coefficient dimension into convTile-wide tiles
// (dispatched over the par worker pool), Shoup-premultiplies the k tmp rows
// once per tile, and accumulates the k products tmp_i·qHat_i of each target
// limb as exact 128-bit (hi, lo) pairs, reducing ONCE per output coefficient
// with the 128-bit Barrett reciprocal — no per-term reduction and no
// hardware division anywhere (see modarith/wide.go for the domain
// contracts, and ref.go for the retired scalar kernel kept as an oracle).
//
// A BasisConverter must not be copied after creation (it embeds a
// sync.Pool); use the *BasisConverter returned by NewBasisConverter.
type BasisConverter struct {
	From []modarith.Modulus
	To   []modarith.Modulus

	qHatInv      []uint64   // [ (Q/q_i)^{-1} ]_{q_i}
	qHatInvShoup []uint64   // Shoup companions for the per-limb premultiply
	qHatModTo    [][]uint64 // qHatModTo[j][i] = (Q/q_i) mod p_j

	// foldEvery bounds the number of b1×b2-bit products a 128-bit
	// accumulator absorbs before VecFoldWide128Lazy must compress it:
	// 2^(128-b1-b2) products of b1-bit by b2-bit factors always fit. At the
	// 61-bit modulus ceiling that is 64 terms; for the 45–55-bit primes of
	// real parameter sets it is ≥ 2^33, so the fold never fires in practice.
	foldEvery int

	scratch sync.Pool // *convScratch
}

// convScratch is the per-worker tile scratch: k premultiplied tmp rows plus
// one (hi, lo) accumulator pair, all convTile wide.
type convScratch struct {
	tmp     [][]uint64
	backing []uint64
	hi, lo  []uint64
}

// NewBasisConverter precomputes the conversion constants.
func NewBasisConverter(from, to []modarith.Modulus) (*BasisConverter, error) {
	if len(from) == 0 || len(to) == 0 {
		return nil, fmt.Errorf("rns: empty basis")
	}
	k := len(from)
	bc := &BasisConverter{
		From:         from,
		To:           to,
		qHatInv:      make([]uint64, k),
		qHatInvShoup: make([]uint64, k),
		qHatModTo:    make([][]uint64, len(to)),
	}
	for i, qi := range from {
		// Q/q_i mod q_i = prod of the other primes mod q_i.
		prod := uint64(1)
		for l, ql := range from {
			if l != i {
				prod = qi.Mul(prod, ql.Q%qi.Q)
			}
		}
		inv, err := qi.Inv(prod)
		if err != nil {
			return nil, fmt.Errorf("rns: duplicate primes in basis (q_%d)", i)
		}
		bc.qHatInv[i] = inv
		bc.qHatInvShoup[i] = qi.ShoupPrecomp(inv)
	}
	for j, pj := range to {
		row := make([]uint64, k)
		for i := range from {
			prod := uint64(1)
			for l, ql := range from {
				if l != i {
					prod = pj.Mul(prod, ql.Q%pj.Q)
				}
			}
			row[i] = prod
		}
		bc.qHatModTo[j] = row
	}
	maxBits := func(ms []modarith.Modulus) int {
		b := 0
		for _, m := range ms {
			if m.Bits > b {
				b = m.Bits
			}
		}
		return b
	}
	if shift := 128 - maxBits(from) - maxBits(to); shift >= 31 {
		bc.foldEvery = 1 << 31 // effectively unbounded: k ≤ limb count ≪ 2^31
	} else {
		bc.foldEvery = 1 << shift
	}
	return bc, nil
}

func (bc *BasisConverter) getScratch() *convScratch {
	if v := bc.scratch.Get(); v != nil {
		return v.(*convScratch)
	}
	k := len(bc.From)
	s := &convScratch{
		tmp:     make([][]uint64, k),
		backing: make([]uint64, k*convTile),
		hi:      make([]uint64, convTile),
		lo:      make([]uint64, convTile),
	}
	for i := range s.tmp {
		s.tmp[i] = s.backing[i*convTile : (i+1)*convTile]
	}
	return s
}

// checkShape validates in/out against the converter bases: all rows of in
// (len(From) of them) and out (len(To)) must have equal length. Mirrors the
// panic-on-mismatch contract of ntt.MulCoeffs.
func (bc *BasisConverter) checkShape(out, in [][]uint64) int {
	if len(in) != len(bc.From) || len(out) != len(bc.To) {
		panic(fmt.Sprintf("rns: Convert shape mismatch: in %d/%d, out %d/%d",
			len(in), len(bc.From), len(out), len(bc.To)))
	}
	n := len(in[0])
	for i, row := range in {
		if len(row) != n {
			panic(fmt.Sprintf("rns: Convert input row %d has length %d, want %d", i, len(row), n))
		}
	}
	for j, row := range out {
		if len(row) != n {
			panic(fmt.Sprintf("rns: Convert output row %d has length %d, want %d", j, len(row), n))
		}
	}
	return n
}

// Convert converts coefficient-domain residue rows in (len(From) rows of
// equal length) into out (len(To) rows), producing exact residues in
// [0, p_j). out must not alias in.
func (bc *BasisConverter) Convert(out, in [][]uint64) {
	bc.convert(out, in, false)
}

// ConvertLazy is Convert with lazy outputs: each target row stays in the
// [0, 2p_j) domain (one conditional subtraction fewer per coefficient),
// which ring.NTTLazy / ring.NTT accept directly — Decompose feeds these rows
// straight into the forward transform without an intermediate reduction.
func (bc *BasisConverter) ConvertLazy(out, in [][]uint64) {
	bc.convert(out, in, true)
}

func (bc *BasisConverter) convert(out, in [][]uint64, lazy bool) {
	n := bc.checkShape(out, in)
	k := len(bc.From)
	nTiles := (n + convTile - 1) / convTile
	par.ForEachChunk(nTiles, func(tileLo, tileHi int) {
		s := bc.getScratch()
		for t := tileLo; t < tileHi; t++ {
			c0 := t * convTile
			c1 := c0 + convTile
			if c1 > n {
				c1 = n
			}
			w := c1 - c0
			// tmp_i = [x · qHatInv_i]_{q_i}, premultiplied once per tile and
			// reused by every target limb below.
			for i := 0; i < k; i++ {
				bc.From[i].VecMulShoup(s.tmp[i][:w], in[i][c0:c1], bc.qHatInv[i], bc.qHatInvShoup[i])
			}
			for j := range bc.To {
				pj := bc.To[j]
				hat := bc.qHatModTo[j]
				modarith.VecMulWide(s.hi[:w], s.lo[:w], s.tmp[0][:w], hat[0])
				terms := 1
				for i := 1; i < k; i++ {
					if terms == bc.foldEvery {
						pj.VecFoldWide128Lazy(s.hi[:w], s.lo[:w])
						terms = 1 // folded residue < 2q re-enters as one term
					}
					modarith.VecMulAccWide(s.hi[:w], s.lo[:w], s.tmp[i][:w], hat[i])
					terms++
				}
				if lazy {
					pj.VecReduceWide128Lazy(out[j][c0:c1], s.hi[:w], s.lo[:w])
				} else {
					pj.VecReduceWide128(out[j][c0:c1], s.hi[:w], s.lo[:w])
				}
			}
		}
		bc.scratch.Put(s)
	})
}

// Rescaler precomputes the per-limb constants of DivRoundByLastModulus for a
// fixed modulus chain, so the hot rescale path runs the vectorized row
// kernel with no per-call inversions or allocations. It is bound to the
// chain moduli[0..L] and drops moduli[L].
type Rescaler struct {
	moduli  []modarith.Modulus
	half    uint64   // q_L / 2
	inv     []uint64 // q_L^{-1} mod q_i, i < L
	invS    []uint64 // Shoup companions
	halfMod []uint64 // (q_L/2) mod q_i

	tPool sync.Pool // *[]uint64 scratch for the [x + q_L/2]_{q_L} row
}

// NewRescaler precomputes rescale constants for dropping the last modulus of
// the chain. The chain needs at least two limbs and distinct primes.
func NewRescaler(moduli []modarith.Modulus) *Rescaler {
	l := len(moduli) - 1
	if l < 1 {
		panic("rns: cannot rescale a single-limb value")
	}
	qL := moduli[l]
	rs := &Rescaler{
		moduli:  moduli,
		half:    qL.QHalf,
		inv:     make([]uint64, l),
		invS:    make([]uint64, l),
		halfMod: make([]uint64, l),
	}
	for i := 0; i < l; i++ {
		qi := moduli[i]
		rs.inv[i] = qi.MustInv(qL.Q % qi.Q)
		rs.invS[i] = qi.ShoupPrecomp(rs.inv[i])
		rs.halfMod[i] = rs.half % qi.Q
	}
	return rs
}

// DivRoundByLastModulus computes the rounding division of a coefficient-
// domain RNS value by its last modulus q_L and drops that limb:
//
//	out_i = [ (x + q_L/2 − [x + q_L/2]_{q_L}) / q_L ]_{q_i} ,  i < L,
//
// i.e. out = round(x / q_L) exactly, limb-wise. rows carries the same number
// of limbs as the Rescaler's chain, all of equal length; the first L rows
// are updated in place and the last row becomes dead.
func (rs *Rescaler) DivRoundByLastModulus(rows [][]uint64) {
	l := len(rows) - 1
	if l != len(rs.moduli)-1 {
		panic(fmt.Sprintf("rns: DivRoundByLastModulus limb mismatch: rows %d, chain %d",
			len(rows), len(rs.moduli)))
	}
	n := len(rows[l])
	for i, row := range rows {
		if len(row) != n {
			panic(fmt.Sprintf("rns: DivRoundByLastModulus row %d has length %d, want %d", i, len(row), n))
		}
	}
	var t []uint64
	if v := rs.tPool.Get(); v != nil {
		t = (*(v.(*[]uint64)))[:0]
	}
	if cap(t) < n {
		t = make([]uint64, n)
	}
	t = t[:n]
	// t = [x + q_L/2]_{q_L}
	rs.moduli[l].VecAddScalar(t, rows[l], rs.half)
	par.ForEachChunk(l, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			rs.moduli[i].VecRescaleStep(rows[i], t, rs.halfMod[i], rs.inv[i], rs.invS[i])
		}
	})
	rs.tPool.Put(&t)
}

// Per-limb access to the rescale step, for callers that schedule limbs
// themselves (the ckks limb pipeline): BorrowT/LastRowPlusHalf compute the
// shared [x + q_L/2]_{q_L} row once, then StepRow applies the update to one
// limb. The kernels are exactly the ones DivRoundByLastModulus dispatches,
// so a per-limb schedule is bit-identical to the batch form.

// BorrowT returns a pooled scratch row of length n for LastRowPlusHalf.
// Return it with ReturnT.
func (rs *Rescaler) BorrowT(n int) []uint64 {
	var t []uint64
	if v := rs.tPool.Get(); v != nil {
		t = (*(v.(*[]uint64)))[:0]
	}
	if cap(t) < n {
		t = make([]uint64, n)
	}
	return t[:n]
}

// ReturnT hands a BorrowT row back to the pool.
func (rs *Rescaler) ReturnT(t []uint64) { rs.tPool.Put(&t) }

// LastRowPlusHalf fills t with [x + q_L/2]_{q_L} from the chain's last row.
func (rs *Rescaler) LastRowPlusHalf(t, last []uint64) {
	rs.moduli[len(rs.moduli)-1].VecAddScalar(t, last, rs.half)
}

// StepRow applies the rescale update in place to limb i < L:
// row[j] = (row[j] + (q_L/2 mod q_i) − t[j]) · q_L^{-1} mod q_i.
func (rs *Rescaler) StepRow(i int, row, t []uint64) {
	rs.moduli[i].VecRescaleStep(row, t, rs.halfMod[i], rs.inv[i], rs.invS[i])
}

// DivRoundByLastModulus is the one-shot form of Rescaler: it derives the
// constants for moduli (len(rows) limbs) and rescales rows in place. Hot
// paths should cache a Rescaler per level instead.
func DivRoundByLastModulus(moduli []modarith.Modulus, rows [][]uint64) {
	NewRescaler(moduli[:len(rows)]).DivRoundByLastModulus(rows)
}

// ProductMod returns (∏ primes) mod each modulus of target.
func ProductMod(primes []modarith.Modulus, target []modarith.Modulus) []uint64 {
	out := make([]uint64, len(target))
	for j, tj := range target {
		prod := uint64(1)
		for _, p := range primes {
			prod = tj.Mul(prod, p.Q%tj.Q)
		}
		out[j] = prod
	}
	return out
}

// ProductInvMod returns (∏ primes)^{-1} mod each modulus of target. The
// product must be invertible (distinct primes).
func ProductInvMod(primes []modarith.Modulus, target []modarith.Modulus) []uint64 {
	out := ProductMod(primes, target)
	for j, tj := range target {
		out[j] = tj.MustInv(out[j])
	}
	return out
}
