package engine

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ckks"
)

// testClient is the client side of a serving session: it owns the secret
// key and encrypts/decrypts locally; only evaluation keys go to the engine.
type testClient struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	encr   *ckks.Encryptor
	decr   *ckks.Decryptor
	pk     *ckks.PublicKey
	keys   *ckks.EvaluationKeySet
}

func newTestClient(t testing.TB, rotations ...int) *testClient {
	t.Helper()
	params, err := ckks.NewParameters(ckks.TestParameters())
	if err != nil {
		t.Fatal(err)
	}
	kgen := ckks.NewKeyGenerator(params, 7)
	sk := kgen.GenSecretKey()
	keys := ckks.NewEvaluationKeySet()
	keys.Rlk = kgen.GenRelinearizationKey(sk)
	kgen.GenRotationKeys(sk, keys, rotations)
	return &testClient{
		params: params,
		enc:    ckks.NewEncoder(params),
		encr:   ckks.NewEncryptor(params, 8),
		decr:   ckks.NewDecryptor(params, sk),
		pk:     kgen.GenPublicKey(sk),
		keys:   keys,
	}
}

func (c *testClient) encrypt(t testing.TB, vals []complex128) *ckks.Ciphertext {
	t.Helper()
	pt, err := c.enc.Encode(vals, c.params.MaxLevel(), c.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	return c.encr.EncryptNew(&ckks.Plaintext{Value: pt, Scale: c.params.DefaultScale()}, c.pk)
}

func (c *testClient) decrypt(ct *ckks.Ciphertext) []complex128 {
	pt := c.decr.DecryptNew(ct)
	return c.enc.Decode(pt.Value, pt.Scale)
}

func checkSlots(t *testing.T, got, want []complex128, n int, tol float64, label string) {
	t.Helper()
	for i := 0; i < n; i++ {
		if d := cmplxAbs(got[i] - want[i]); d > tol {
			t.Fatalf("%s: slot %d: got %v want %v (|Δ|=%g)", label, i, got[i], want[i], d)
		}
	}
}

func cmplxAbs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}

func TestJobDAGRoundTrip(t *testing.T) {
	client := newTestClient(t, 1)
	e := New(Config{Workers: 2})
	defer e.Close()

	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}

	n := 8
	x := make([]complex128, n)
	y := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i)*0.1, 0)
		y[i] = complex(1.5-float64(i)*0.05, 0)
	}

	job, err := e.Submit(JobSpec{
		SessionID: sess.ID,
		Inputs: map[string]*ckks.Ciphertext{
			"x": client.encrypt(t, x),
			"y": client.encrypt(t, y),
		},
		Ops: []OpSpec{
			{ID: "m", Op: "mul", Args: []string{"x", "y"}},
			{ID: "r", Op: "rotate", Args: []string{"m"}, K: 1},
			{ID: "s", Op: "add", Args: []string{"r", "r"}},
		},
		Outputs: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	outs, err := job.Results()
	if err != nil {
		t.Fatal(err)
	}

	// Plaintext reference: 2 * rot1(x ⊙ y).
	slots := client.params.Slots()
	prod := make([]complex128, slots)
	for i := 0; i < n; i++ {
		prod[i] = x[i] * y[i]
	}
	want := make([]complex128, slots)
	for i := range want {
		want[i] = 2 * prod[(i+1)%slots]
	}
	checkSlots(t, client.decrypt(outs["s"]), want, n-1, 1e-4, "2*rot1(x*y)")
}

func TestSubmitValidation(t *testing.T) {
	client := newTestClient(t)
	e := New(Config{Workers: 1})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	ct := client.encrypt(t, []complex128{1})
	in := map[string]*ckks.Ciphertext{"x": ct}

	cases := []struct {
		name string
		spec JobSpec
		want string
	}{
		{"no ops", JobSpec{SessionID: sess.ID, Inputs: in, Outputs: []string{"x"}}, "no ops"},
		{"unknown kind", JobSpec{SessionID: sess.ID, Inputs: in,
			Ops: []OpSpec{{ID: "a", Op: "frobnicate", Args: []string{"x"}}}, Outputs: []string{"a"}}, "unknown kind"},
		{"bad arity", JobSpec{SessionID: sess.ID, Inputs: in,
			Ops: []OpSpec{{ID: "a", Op: "add", Args: []string{"x"}}}, Outputs: []string{"a"}}, "want 2 args"},
		{"unknown ref", JobSpec{SessionID: sess.ID, Inputs: in,
			Ops: []OpSpec{{ID: "a", Op: "square", Args: []string{"zzz"}}}, Outputs: []string{"a"}}, "unknown name"},
		{"dup id", JobSpec{SessionID: sess.ID, Inputs: in,
			Ops: []OpSpec{{ID: "x", Op: "square", Args: []string{"x"}}}, Outputs: []string{"x"}}, "duplicate"},
		{"cycle", JobSpec{SessionID: sess.ID, Inputs: in,
			Ops: []OpSpec{
				{ID: "a", Op: "add", Args: []string{"b", "x"}},
				{ID: "b", Op: "add", Args: []string{"a", "x"}},
			}, Outputs: []string{"b"}}, "cycle"},
		{"output not op", JobSpec{SessionID: sess.ID, Inputs: in,
			Ops: []OpSpec{{ID: "a", Op: "square", Args: []string{"x"}}}, Outputs: []string{"x"}}, "not an op id"},
		{"bad session", JobSpec{SessionID: "nope", Inputs: in,
			Ops: []OpSpec{{ID: "a", Op: "square", Args: []string{"x"}}}, Outputs: []string{"a"}}, "unknown session"},
	}
	for _, tc := range cases {
		_, err := e.Submit(tc.spec)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: got error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestBackpressure(t *testing.T) {
	client := newTestClient(t)
	e := New(Config{Workers: 1, MaxActiveJobs: 2})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the admission budget artificially, then verify Submit sheds
	// load with a typed overload error that still unwraps to ErrBusy.
	e.active.Add(int64(e.cfg.MaxActiveJobs))
	_, err = e.Submit(JobSpec{
		SessionID: sess.ID,
		Inputs:    map[string]*ckks.Ciphertext{"x": client.encrypt(t, []complex128{1})},
		Ops:       []OpSpec{{ID: "a", Op: "square", Args: []string{"x"}}},
		Outputs:   []string{"a"},
	})
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("got %v, want ErrBusy", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("got %T, want *OverloadError", err)
	}
	if oe.Reason != "engine_full" || oe.RetryAfter <= 0 {
		t.Fatalf("overload error = %+v, want reason engine_full with positive RetryAfter", oe)
	}
	e.active.Add(-int64(e.cfg.MaxActiveJobs))
}

func TestJobDeadline(t *testing.T) {
	client := newTestClient(t)
	e := New(Config{Workers: 1})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(JobSpec{
		SessionID: sess.ID,
		Inputs:    map[string]*ckks.Ciphertext{"x": client.encrypt(t, []complex128{1})},
		Ops:       []OpSpec{{ID: "a", Op: "square", Args: []string{"x"}}},
		Outputs:   []string{"a"},
		Deadline:  time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	werr := job.Wait(context.Background())
	st, _ := job.Status()
	if st != StatusFailed || werr == nil {
		t.Fatalf("status=%s err=%v, want failed with deadline error", st, werr)
	}
}

func TestOpFailureFailsJob(t *testing.T) {
	client := newTestClient(t) // no rotation keys
	e := New(Config{Workers: 1})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}
	job, err := e.Submit(JobSpec{
		SessionID: sess.ID,
		Inputs:    map[string]*ckks.Ciphertext{"x": client.encrypt(t, []complex128{1})},
		Ops: []OpSpec{
			{ID: "r", Op: "rotate", Args: []string{"x"}, K: 3}, // missing galois key
			{ID: "s", Op: "square", Args: []string{"r"}},
		},
		Outputs: []string{"s"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if werr := job.Wait(context.Background()); werr == nil {
		t.Fatal("want job failure from missing rotation key")
	}
	if _, rerr := job.Results(); rerr == nil {
		t.Fatal("Results on failed job must error")
	}
}

// TestConcurrentJobs drives several jobs through one shared session at once
// and checks every result; run with -race this exercises the evaluator's
// concurrency safety through the engine path.
func TestConcurrentJobs(t *testing.T) {
	client := newTestClient(t, 1)
	e := New(Config{Workers: 4})
	defer e.Close()
	sess, err := e.AttachSession(client.params, client.keys)
	if err != nil {
		t.Fatal(err)
	}

	const jobs = 4
	var wg sync.WaitGroup
	errs := make(chan error, jobs)
	for k := 0; k < jobs; k++ {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			v := []complex128{complex(float64(k)+1, 0), complex(0.5, 0)}
			job, err := e.Submit(JobSpec{
				SessionID: sess.ID,
				Inputs:    map[string]*ckks.Ciphertext{"x": client.encrypt(t, v)},
				Ops: []OpSpec{
					{ID: "sq", Op: "square", Args: []string{"x"}},
					{ID: "tw", Op: "add", Args: []string{"sq", "sq"}},
				},
				Outputs: []string{"tw"},
			})
			if err != nil {
				errs <- fmt.Errorf("job %d: %w", k, err)
				return
			}
			if err := job.Wait(context.Background()); err != nil {
				errs <- fmt.Errorf("job %d: %w", k, err)
				return
			}
			outs, err := job.Results()
			if err != nil {
				errs <- fmt.Errorf("job %d: %w", k, err)
				return
			}
			got := client.decrypt(outs["tw"])
			want := 2 * (float64(k) + 1) * (float64(k) + 1)
			if d := math.Abs(real(got[0]) - want); d > 1e-3 {
				errs <- fmt.Errorf("job %d: slot0 = %v, want %v", k, got[0], want)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// BenchmarkEngineThroughput compares sequential submission against
// engine-concurrent execution of independent jobs — the acceptance demo
// that the worker-pool runtime sustains concurrent jobs with speedup on a
// multi-core host.
func BenchmarkEngineThroughput(b *testing.B) {
	client := newTestClient(b, 1)
	spec := func(sess *Session, ct *ckks.Ciphertext) JobSpec {
		return JobSpec{
			SessionID: sess.ID,
			Inputs:    map[string]*ckks.Ciphertext{"x": ct},
			Ops: []OpSpec{
				{ID: "m", Op: "square", Args: []string{"x"}},
				{ID: "r", Op: "rotate", Args: []string{"m"}, K: 1},
			},
			Outputs: []string{"r"},
		}
	}
	ct := client.encrypt(b, []complex128{1, 2, 3, 4})
	const batch = 4

	b.Run("sequential", func(b *testing.B) {
		e := New(Config{Workers: 1})
		defer e.Close()
		sess, _ := e.AttachSession(client.params, client.keys)
		for i := 0; i < b.N; i++ {
			for k := 0; k < batch; k++ {
				job, err := e.Submit(spec(sess, ct))
				if err != nil {
					b.Fatal(err)
				}
				if err := job.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("concurrent", func(b *testing.B) {
		e := New(Config{})
		defer e.Close()
		sess, _ := e.AttachSession(client.params, client.keys)
		for i := 0; i < b.N; i++ {
			jobs := make([]*Job, batch)
			for k := range jobs {
				job, err := e.Submit(spec(sess, ct))
				if err != nil {
					b.Fatal(err)
				}
				jobs[k] = job
			}
			for _, j := range jobs {
				if err := j.Wait(context.Background()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
