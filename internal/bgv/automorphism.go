package bgv

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Galois automorphisms on BGV ciphertexts: σ_g permutes the batched slots.
// Because our batching uses the bit-reversed-evaluation NTT ordering, the
// induced slot permutation is exposed explicitly via PermutationOf rather
// than being a cyclic shift.

// GaloisKey enables σ_g: per-limb BV digits encrypting g_i·σ_g(s) under s.
type GaloisKey struct {
	GalEl uint64
	B, A  []*ring.Poly
}

// GenGaloisKey produces the key for the Galois element g (odd mod 2N).
func GenGaloisKey(p *Parameters, sk *SecretKey, galEl uint64, seed int64) (*GaloisKey, error) {
	if galEl%2 == 0 || galEl >= uint64(2*p.n) {
		return nil, fmt.Errorf("bgv: galois element %d must be odd and < 2N", galEl)
	}
	s := ring.NewSampler(seed)
	lvl := p.MaxLevel()
	sigmaS := p.rq.NewPoly(lvl)
	p.rq.AutomorphismNTT(sigmaS, sk.Value, galEl, lvl)

	gk := &GaloisKey{GalEl: galEl, B: make([]*ring.Poly, lvl+1), A: make([]*ring.Poly, lvl+1)}
	for i := 0; i <= lvl; i++ {
		ai := s.UniformPoly(p.rq, lvl, true)
		e := s.GaussianPoly(p.rq, lvl, 3.2)
		p.rq.NTT(e, lvl)
		te := p.rq.NewPoly(lvl)
		p.rq.MulScalar(te, e, p.t.Q, lvl)

		bi := p.rq.NewPoly(lvl)
		bi.IsNTT = true
		p.rq.MulCoeffs(bi, ai, sk.Value, lvl)
		p.rq.Neg(bi, bi, lvl)
		p.rq.Add(bi, bi, te, lvl)
		mod := p.rq.Moduli[i]
		for j := 0; j < p.n; j++ {
			bi.Coeffs[i][j] = mod.Add(bi.Coeffs[i][j], sigmaS.Coeffs[i][j])
		}
		gk.B[i], gk.A[i] = bi, ai
	}
	return gk, nil
}

// Permute applies σ_g to the ciphertext: the slots are permuted according
// to PermutationOf(g).
func (ev *Evaluator) Permute(ct *Ciphertext, gk *GaloisKey) *Ciphertext {
	rq := ev.p.rq
	lvl := ct.Level()

	// σ(c0), σ(c1): NTT-domain slot permutation of the components.
	s0 := rq.NewPoly(lvl)
	s1 := rq.NewPoly(lvl)
	rq.AutomorphismNTT(s0, ct.C0, gk.GalEl, lvl)
	rq.AutomorphismNTT(s1, ct.C1, gk.GalEl, lvl)

	// Key switch σ(c1) from σ(s) back to s with exact per-limb digits.
	coeff := s1.CopyNew()
	rq.INTT(coeff, lvl)
	u0 := rq.NewPoly(lvl)
	u1 := rq.NewPoly(lvl)
	u0.IsNTT, u1.IsNTT = true, true
	for i := 0; i <= lvl; i++ {
		digit := rq.NewPoly(lvl)
		for j := 0; j <= lvl; j++ {
			mod := rq.Moduli[j]
			src := coeff.Coeffs[i]
			dst := digit.Coeffs[j]
			if j == i {
				copy(dst, src)
				continue
			}
			for k := range dst {
				dst[k] = src[k] % mod.Q
			}
		}
		rq.NTT(digit, lvl)
		rq.MulCoeffsAdd(u0, digit, gk.B[i].Truncated(lvl), lvl)
		rq.MulCoeffsAdd(u1, digit, gk.A[i].Truncated(lvl), lvl)
	}
	rq.Add(u0, u0, s0, lvl)
	return &Ciphertext{C0: u0, C1: u1, PtFactor: ct.PtFactor}
}

// PermutationOf returns the slot permutation perm such that after
// Permute(ct, gk) the new slot i holds the old slot perm[i].
func (p *Parameters) PermutationOf(galEl uint64) []int {
	// The plaintext batching is the NTT over Z_t with the same bit-reversed
	// evaluation ordering as the ciphertext ring, so σ_g permutes plaintext
	// slots identically to ciphertext NTT slots. Recompute the map the same
	// way ring.AutomorphismNTT does.
	n := uint64(p.n)
	logN := p.logN
	mask := 2*n - 1
	perm := make([]int, n)
	for i := uint64(0); i < n; i++ {
		e := 2*brv(i, logN) + 1
		src := (galEl * e) & mask
		perm[i] = int(brv((src-1)>>1, logN))
	}
	return perm
}

func brv(x uint64, bits int) uint64 {
	var r uint64
	for i := 0; i < bits; i++ {
		r = r<<1 | (x>>uint(i))&1
	}
	return r
}
