package modarith

import "math/bits"

// Vectorized kernels for the fused multiply-accumulate paths. The per-limb
// ring loops call these once per limb instead of one exported method per
// coefficient, so the reduction constants live in registers for the whole
// row and the loop body is free of call overhead regardless of inliner
// budgets.
//
// Every method below dispatches through the runtime kernel table
// (dispatch.go): one atomic load selects the active implementation tier
// (pure Go, NEON, AVX2, or AVX-512) for the whole row, so the inner loops
// never branch on CPU features. The pure-Go bodies live in vec_ref.go and
// remain the differential oracle for every assembly tier.
//
// All "Lazy" kernels keep out in [0, 2q) (see MulBarrettLazy for the bound
// derivation); chains end with VecReduceTwoQ.

// VecMulAddLazy computes out[j] += a[j]*b[j] lazily for full rows. The
// multiplicands may themselves be lazy (a,b < 2q — see MulBarrettLazy),
// which lets the gadget product consume NTTLazy digits directly.
func (m Modulus) VecMulAddLazy(out, a, b []uint64) {
	active.Load().mulAddLazy(m, out, a, b)
}

// VecMulAddLazyIdx computes out[j] += a[idx[j]]*b[j] lazily — the fused
// NTT-domain automorphism gather + multiply-accumulate (AutAccum). Indices
// are uint32 (N ≤ 2^31): the permutation table is half the size of an []int
// one, so it displaces less of the coefficient data from cache.
func (m Modulus) VecMulAddLazyIdx(out, a, b []uint64, idx []uint32) {
	active.Load().mulAddLazyIdx(m, out, a, b, idx)
}

// VecMulShoupAddLazy computes out[j] += a[j]*w lazily for a fixed operand w
// with Shoup companion wShoup (the constant-multiply-accumulate of a fused
// CMULT+ADD ladder).
func (m Modulus) VecMulShoupAddLazy(out, a []uint64, w, wShoup uint64) {
	q, twoQ := m.Q, m.TwoQ
	_ = out[len(a)-1]
	for j := range a {
		hi, _ := bits.Mul64(a[j], wShoup)
		s := out[j] + (a[j]*w - hi*q)
		if s >= twoQ {
			s -= twoQ
		}
		out[j] = s
	}
}

// VecSubMulShoup computes out[j] = (a[j] - b[j]) * w mod q exactly, for
// a,b < q and fixed operand w with Shoup companion wShoup (the fused
// subtract-and-scale epilogue of ModDown).
func (m Modulus) VecSubMulShoup(out, a, b []uint64, w, wShoup uint64) {
	q := m.Q
	_ = out[len(a)-1]
	_ = b[len(a)-1]
	for j := range a {
		d := a[j] - b[j]
		if d > a[j] {
			d += q
		}
		hi, _ := bits.Mul64(d, wShoup)
		r := d*w - hi*q
		if r >= q {
			r -= q
		}
		out[j] = r
	}
}

// VecMulBarrett computes out[j] = a[j]*b[j] mod q exactly via the Barrett
// reciprocal — no hardware division in the loop, unlike the scalar Mul. This
// is the element-wise (NTT-domain) polynomial product kernel.
func (m Modulus) VecMulBarrett(out, a, b []uint64) {
	active.Load().mulBarrett(m, out, a, b)
}

// VecMulAddBarrett computes out[j] = out[j] + a[j]*b[j] mod q exactly
// (out, a, b < q), keeping the Barrett constants in registers for the row.
func (m Modulus) VecMulAddBarrett(out, a, b []uint64) {
	active.Load().mulAddBarrett(m, out, a, b)
}

// VecMulSubBarrett computes out[j] = out[j] - a[j]*b[j] mod q exactly
// (out, a, b < q).
func (m Modulus) VecMulSubBarrett(out, a, b []uint64) {
	active.Load().mulSubBarrett(m, out, a, b)
}

// VecMulShoup computes out[j] = a[j]*w mod q exactly for a < q and fixed
// operand w with Shoup companion wShoup — the row form of MulShoup, used for
// the BConv premultiply tmp_i = [x · qHatInv_i]_{q_i}.
func (m Modulus) VecMulShoup(out, a []uint64, w, wShoup uint64) {
	active.Load().mulShoup(m, out, a, w, wShoup)
}

// VecSubMulShoupLazy is VecSubMulShoup for a lazy subtrahend: a < q exact,
// b < 2q lazy (e.g. straight out of NTTLazy), out exact in [0, q). The
// difference a + 2q − b lies in (0, 3q) < 2^63, where MulShoupLazy's bound
// r < q·(d/2^64 + 1) < 2q still holds, so one conditional subtraction
// finishes the job.
func (m Modulus) VecSubMulShoupLazy(out, a, b []uint64, w, wShoup uint64) {
	active.Load().subMulShoupLazy(m, out, a, b, w, wShoup)
}

// VecAddScalar computes out[j] = a[j] + c mod q exactly, for a, c < q.
func (m Modulus) VecAddScalar(out, a []uint64, c uint64) {
	q := m.Q
	_ = out[len(a)-1]
	for j := range a {
		s := a[j] + c
		if s >= q {
			s -= q
		}
		out[j] = s
	}
}

// VecRescaleStep performs the per-limb rescale update in place:
//
//	row[j] = (row[j] + halfModQ − t[j]) · w  mod q ,
//
// where row < q is the limb's residues, t holds arbitrary uint64 values
// (the [x + q_L/2]_{q_L} row, reduced mod q lazily here with a single
// Barrett partial product: for t[j] < 2^64 the raw remainder is < 4q), and
// w = q_L^{-1} mod q with Shoup companion wShoup. The inner difference
// row[j] + halfModQ + 4q − tm sits in (0, 6q) < 2^64, inside MulShoupLazy's
// any-operand domain, so a single conditional subtraction returns the exact
// residue.
func (m Modulus) VecRescaleStep(row, t []uint64, halfModQ, w, wShoup uint64) {
	active.Load().rescaleStep(m, row, t, halfModQ, w, wShoup)
}

// VecReduceTwoQ maps every lazy value in [0, 2q) to its exact residue.
func (m Modulus) VecReduceTwoQ(p []uint64) {
	active.Load().reduceTwoQ(m, p)
}

// VecFwdButterflyLazy applies the Harvey Cooley–Tukey butterfly pairwise
// over the two halves of one NTT block:
//
//	x' = x̃ + w·y,  y' = x̃ - w·y + 2q,  x̃ = x - 2q·[x ≥ 2q]
//
// Inputs and outputs live in [0, 4q); the twiddle product w·y lands in
// [0, 2q) via the MulShoupLazy bound for any y. len(x) == len(y) must be a
// positive multiple of 4. This is the span kernel of every forward NTT
// stage with span ≥ 4 (internal/ntt).
func (m Modulus) VecFwdButterflyLazy(x, y []uint64, w, wShoup uint64) {
	active.Load().fwdButterfly(m, x, y, w, wShoup)
}

// VecInvButterflyLazy applies the Harvey Gentleman–Sande butterfly pairwise
// over the two halves of one NTT block:
//
//	x' = (x + y) - 2q·[x+y ≥ 2q],  y' = (x - y + 2q)·w  (MulShoupLazy)
//
// Inputs and outputs live in [0, 2q). len(x) == len(y) must be a positive
// multiple of 4. This is the span kernel of every inverse NTT stage with
// span ≥ 4 (internal/ntt).
func (m Modulus) VecInvButterflyLazy(x, y []uint64, w, wShoup uint64) {
	active.Load().invButterfly(m, x, y, w, wShoup)
}
