package obs

import (
	"sort"
	"sync/atomic"
)

// DefBuckets are the default latency bucket upper bounds in seconds:
// exponential ×2 from 1µs to ~33s. Wide enough to cover a pool hit on one
// end and a bootstrap on the other without configuration.
var DefBuckets = expBuckets(1e-6, 2, 26)

// expBuckets returns n upper bounds starting at start, multiplying by
// factor each step.
func expBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket concurrent histogram. Observations beyond the
// last bound land in an implicit +Inf bucket, so memory stays bounded no
// matter the input.
type Histogram struct {
	bounds []float64      // sorted upper bounds (le semantics)
	counts []atomic.Int64 // len(bounds)+1; last is +Inf
	count  atomic.Int64
	sum    Counter
}

func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of per-bucket counts (last is +Inf).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket containing the target rank, the same estimate
// Prometheus' histogram_quantile computes. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	counts := h.BucketCounts()
	var total int64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum int64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		if i >= len(h.bounds) {
			// +Inf bucket: report its lower bound, the best bounded answer.
			return h.bounds[len(h.bounds)-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + (hi-lo)*frac
	}
	return h.bounds[len(h.bounds)-1]
}
