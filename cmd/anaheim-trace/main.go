// Command anaheim-trace dumps the kernel trace of a workload and renders
// the Fig 4a-style Gantt chart of its execution on a chosen platform.
//
// Usage:
//
//	anaheim-trace -workload Boot -platform a100-nearbank -limit 40
//	anaheim-trace -lt 8          # the paper's running-example transform
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

func platformConfig(name string) (sched.Config, error) {
	switch name {
	case "a100":
		return sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar()}, nil
	case "a100-nearbank":
		u := pim.A100NearBank()
		return sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: &u}, nil
	case "a100-customhbm":
		u := pim.A100CustomHBM()
		return sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: &u}, nil
	case "rtx4090":
		return sched.Config{GPU: gpu.RTX4090(), Lib: gpu.Cheddar()}, nil
	case "rtx4090-nearbank":
		u := pim.RTX4090NearBank()
		return sched.Config{GPU: gpu.RTX4090(), Lib: gpu.Cheddar(), PIM: &u}, nil
	default:
		return sched.Config{}, fmt.Errorf("unknown platform %q", name)
	}
}

// run is the testable body of main: parse args, build the trace, schedule it,
// and print the kernel table plus Gantt chart.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("anaheim-trace", flag.ContinueOnError)
	workload := fs.String("workload", "", "workload trace to dump (Boot, HELR, ...)")
	lt := fs.Int("lt", 0, "emit a single hoisted linear transform with K diagonals instead")
	platform := fs.String("platform", "a100-nearbank", "a100 | a100-nearbank | a100-customhbm | rtx4090 | rtx4090-nearbank")
	limit := fs.Int("limit", 30, "max kernels to list (0 = all)")
	width := fs.Int("width", 100, "gantt width")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p := trace.PaperParams()
	cfg, err := platformConfig(*platform)
	if err != nil {
		return err
	}

	opt := trace.GPUBaseline()
	if cfg.PIM != nil {
		opt = trace.AnaheimDefault()
	}
	var t *trace.Trace
	switch {
	case *lt > 0:
		b := trace.NewBuilder(p, opt, fmt.Sprintf("LT-K%d", *lt))
		b.LinearTransform(p.L-1, *lt)
		t = b.T
	case *workload != "":
		w, ok := workloads.ByName(*workload)
		if !ok {
			return fmt.Errorf("unknown workload %q", *workload)
		}
		t = w.Gen(p, opt)
	default:
		return fmt.Errorf("anaheim-trace: need -workload or -lt")
	}

	r := sched.Run(t, cfg)
	fmt.Fprintf(out, "trace %s: %d kernels, %.2fms, %.1fmJ, GPU %.2fGB / PIM %.2fGB\n\n",
		t.Name, len(t.Kernels), r.TimeMs(), r.EnergyMJ(), r.GPUBytes/1e9, r.PIMBytes/1e9)

	n := len(r.Timeline)
	if *limit > 0 && *limit < n {
		n = *limit
	}
	fmt.Fprintf(out, "%-28s %-6s %-5s %12s %12s\n", "kernel", "class", "unit", "start(us)", "dur(us)")
	for _, s := range r.Timeline[:n] {
		unit := "GPU"
		if s.PIM {
			unit = "PIM"
		}
		fmt.Fprintf(out, "%-28s %-6s %-5s %12.2f %12.2f\n", s.Name, s.Class, unit, s.StartNs/1e3, s.DurNs/1e3)
	}
	if n < len(r.Timeline) {
		fmt.Fprintf(out, "... (%d more kernels)\n", len(r.Timeline)-n)
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, sched.RenderGantt(r.Timeline, r.TimeNs, *width))
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
}
