package modarith

import "math/bits"

// Wide-accumulation primitives for the BConv matrix product (internal/rns).
// BConv computes, per output coefficient, an inner product of k terms
// tmp_i · qHat_i with both factors < 2^61. Instead of k modular multiplies
// and k modular additions, the terms are accumulated exactly as a 128-bit
// (hi, lo) pair and reduced once per output with the 128-bit Barrett
// reciprocal BRedHi:BRedLo = floor(2^128/q) that Modulus already carries.
//
// The row forms dispatch through the runtime kernel table (dispatch.go)
// like the vec.go kernels; pure-Go bodies live in wide_ref.go.
//
// # Domain contracts
//
//   - Mul64AddWide / VecMulWide / VecMulAccWide take arbitrary uint64
//     factors and perform NO reduction: the caller must bound the number of
//     accumulated products so the 128-bit pair cannot overflow (with b1-bit
//     and b2-bit factors, 2^(128-b1-b2) products always fit; see
//     rns.BasisConverter.foldEvery for the guard).
//   - ReduceWide128 / VecReduceWide128 accept ANY 128-bit value and return
//     the exact residue in [0, q).
//   - ReduceWide128Lazy / VecReduceWide128Lazy / VecFoldWide128Lazy return
//     the lazy domain [0, 2q) (one fewer conditional subtraction), matching
//     the [0, 2q) discipline of DESIGN.md §3.8.

// Mul64AddWide returns (hi, lo) + a·b as a 128-bit pair. The caller is
// responsible for the no-overflow bound on the accumulation chain.
func Mul64AddWide(a, b, hi, lo uint64) (uint64, uint64) {
	phi, plo := bits.Mul64(a, b)
	var carry uint64
	lo, carry = bits.Add64(lo, plo, 0)
	hi, _ = bits.Add64(hi, phi, carry)
	return hi, lo
}

// ReduceWide128Lazy reduces a 128-bit value hi:lo to [0, 2q). The quotient
// approximation is the same three-partial-product sum as MulBarrettLazy and
// its bound derivation holds for any x < 2^128: the raw remainder is in
// [0, 4q), and one conditional 2q-subtraction lands in [0, 2q).
func (m Modulus) ReduceWide128Lazy(hi, lo uint64) uint64 {
	t := hi * m.BRedHi
	hhi, _ := bits.Mul64(lo, m.BRedHi)
	t += hhi
	hhi, _ = bits.Mul64(hi, m.BRedLo)
	t += hhi
	r := lo - t*m.Q
	if r >= m.TwoQ {
		r -= m.TwoQ
	}
	return r
}

// ReduceWide128 reduces a 128-bit value hi:lo to its exact residue in [0, q).
func (m Modulus) ReduceWide128(hi, lo uint64) uint64 {
	r := m.ReduceWide128Lazy(hi, lo)
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// VecMulWide starts an accumulation chain: (accHi[j], accLo[j]) = row[j]·w.
// No reduction; factors are arbitrary uint64.
func VecMulWide(accHi, accLo, row []uint64, w uint64) {
	active.Load().mulWide(accHi, accLo, row, w)
}

// VecMulAccWide continues an accumulation chain:
// (accHi[j], accLo[j]) += row[j]·w. No reduction; the caller bounds the
// chain length (see the package comment).
func VecMulAccWide(accHi, accLo, row []uint64, w uint64) {
	active.Load().mulAccWide(accHi, accLo, row, w)
}

// VecFoldWide128Lazy folds each accumulator pair back into a single word:
// accLo[j] becomes the lazy residue in [0, 2q) and accHi[j] is cleared. This
// is the mid-chain overflow guard for accumulations longer than the 128-bit
// capacity; the folded value re-enters the chain as one (tiny) term.
func (m Modulus) VecFoldWide128Lazy(accHi, accLo []uint64) {
	active.Load().foldWide128Lazy(m, accHi, accLo)
}

// VecReduceWide128 reduces each accumulator pair to its exact residue:
// dst[j] = (accHi[j]:accLo[j]) mod q ∈ [0, q).
func (m Modulus) VecReduceWide128(dst, accHi, accLo []uint64) {
	active.Load().reduceWide128(m, dst, accHi, accLo)
}

// VecReduceWide128Lazy reduces each accumulator pair to the lazy domain:
// dst[j] = (accHi[j]:accLo[j]) mod q up to one multiple of q, in [0, 2q).
func (m Modulus) VecReduceWide128Lazy(dst, accHi, accLo []uint64) {
	active.Load().reduceWide128Lazy(m, dst, accHi, accLo)
}
