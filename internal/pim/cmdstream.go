package pim

import (
	"sort"

	"github.com/anaheim-sim/anaheim/internal/dram"
)

// CommandStream generates the per-bank DRAM command stream of Alg 1 for one
// instruction over c chunks per polynomial with chunk granularity g: per
// iteration, each phase activates its PolyGroup's row(s), streams the
// phase's chunk accesses, and precharges before the next phase. The last
// phase writes (the instruction's outputs); earlier phases read.
//
// The stream feeds the command-level engine in internal/dram, which serves
// as ground truth for the closed-form timing in InstrCost.
func CommandStream(spec InstrSpec, g, c, rowChunks int, columnPartitioned bool) []dram.Command {
	var cmds []dram.Command
	// Distinct base rows per phase so PolyGroups never share rows.
	phaseBase := make([]int, len(spec.Phases))
	for i := 1; i < len(spec.Phases); i++ {
		prev := PolyGroupLayout{Polys: spec.Phases[i-1].GroupPolys, ChunksPerBank: c, RowChunks: rowChunks}
		rows := prev.Rows()
		if !columnPartitioned {
			rows = spec.Phases[i-1].GroupPolys * ((c + rowChunks - 1) / rowChunks)
		}
		phaseBase[i] = phaseBase[i-1] + rows
	}

	for c0 := 0; c0 < c; c0 += g {
		for pi, ph := range spec.Phases {
			l := PolyGroupLayout{
				Polys: ph.GroupPolys, ChunksPerBank: c,
				RowChunks: rowChunks, BaseRow: phaseBase[pi],
			}
			counts := l.RowAccessCounts(c0, g, columnPartitioned)
			rows := make([]int, 0, len(counts))
			for r := range counts {
				rows = append(rows, r)
			}
			sort.Ints(rows)
			kind := dram.RD
			if pi == len(spec.Phases)-1 {
				kind = dram.WR // the final phase stores the outputs
			}
			for _, r := range rows {
				cmds = append(cmds, dram.Command{Kind: dram.ACT, Row: r})
				// The phase touches PolysTouched of the group's polynomials;
				// scale the row's access count accordingly (a phase may
				// visit a PolyGroup that hosts more polynomials than it
				// touches, e.g. MAC's accumulator row).
				n := counts[r] * ph.PolysTouched / ph.GroupPolys
				if n < 1 {
					n = 1
				}
				for k := 0; k < n; k++ {
					cmds = append(cmds, dram.Command{Kind: kind, Row: r})
				}
				cmds = append(cmds, dram.Command{Kind: dram.PRE, Row: r})
			}
		}
	}
	return cmds
}

// SimulateInstr runs the generated stream through the command-level engine
// and returns its per-bank makespan in nanoseconds.
func (u UnitConfig) SimulateInstr(op Opcode, k, limbs, n, bufferSize int, columnPartitioned bool) (dram.Stats, error) {
	spec := Spec(op, k)
	g := spec.ChunkGranularity(bufferSize)
	if g == 0 {
		return dram.Stats{}, errUnsupported(spec, bufferSize)
	}
	elemsPerChunk := u.DRAM.ChunkBits / (wordBytes * 8)
	chunksPerBankPerLimb := (n + u.BanksPerGroup()*elemsPerChunk - 1) / (u.BanksPerGroup() * elemsPerChunk)
	limbsPerGroup := (limbs + u.DieGroups - 1) / u.DieGroups
	c := limbsPerGroup * chunksPerBankPerLimb

	cmds := CommandStream(spec, g, c, u.DRAM.ChunksPerRow(), columnPartitioned)
	return dram.Execute(cmds, dram.TimingFor(u.DRAM, u.ClockMHz))
}

func errUnsupported(spec InstrSpec, b int) error {
	return &unsupportedError{spec.Op, spec.BufferSlots, b}
}

type unsupportedError struct {
	op    Opcode
	need  int
	given int
}

func (e *unsupportedError) Error() string {
	return "pim: " + e.op.String() + " unsupported at this buffer size"
}
