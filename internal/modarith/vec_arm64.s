//go:build arm64 && !noasm

#include "textflag.h"

// arm64 row kernels (TierNEON). AArch64 SIMD has no 64-bit vector multiply,
// so the 64x64->128 products are scalar MUL/UMULH ladders; the tier's win
// over compiled Go is bounds-check-free inner loops with post-increment
// addressing, not lane parallelism. Like TierAVX2, only the kernels at or
// above parity are implemented: the Shoup-multiply family, butterflies, wide
// accumulation and the reductions. The Barrett-quotient family stays on the
// Go fallback (the compiler already emits the same MUL/UMULH sequence).
//
// Bit-identical contract as vec_ref.go: same products, same conditional
// subtractions (CSEL on the HS/unsigned-no-borrow condition mirrors
// `if r >= bound { r -= bound }` exactly).
//
// Callers guarantee len > 0; scalar kernels need no lane alignment.

// func vecMulShoupNEON(out, a []uint64, w, wShoup, q uint64)
TEXT ·vecMulShoupNEON(SB), NOSPLIT, $0-72
	MOVD out_base+0(FP), R0
	MOVD a_base+24(FP), R1
	MOVD a_len+32(FP), R3
	MOVD w+48(FP), R10
	MOVD wShoup+56(FP), R11
	MOVD q+64(FP), R12
mulShoupLoop:
	MOVD.P 8(R1), R4
	UMULH R11, R4, R5      // hi64(a*wShoup)
	MUL R10, R4, R6        // a*w
	MUL R12, R5, R7        // hi*q
	SUB R7, R6, R4         // r in [0, 2q)
	SUBS R12, R4, R5
	CSEL HS, R5, R4, R4    // r cond-sub q
	MOVD.P R4, 8(R0)
	SUBS $1, R3
	BNE mulShoupLoop
	RET

// func vecSubMulShoupLazyNEON(out, a, b []uint64, w, wShoup, q, twoQ uint64)
TEXT ·vecSubMulShoupLazyNEON(SB), NOSPLIT, $0-104
	MOVD out_base+0(FP), R0
	MOVD a_base+24(FP), R1
	MOVD a_len+32(FP), R3
	MOVD b_base+48(FP), R2
	MOVD w+72(FP), R10
	MOVD wShoup+80(FP), R11
	MOVD q+88(FP), R12
	MOVD twoQ+96(FP), R13
subMulShoupLazyLoop:
	MOVD.P 8(R1), R4
	MOVD.P 8(R2), R5
	ADD R13, R4, R4
	SUB R5, R4, R4         // d = a + 2q - b
	UMULH R11, R4, R5      // hi64(d*wShoup)
	MUL R10, R4, R6        // d*w
	MUL R12, R5, R7        // hi*q
	SUB R7, R6, R4
	SUBS R12, R4, R5
	CSEL HS, R5, R4, R4
	MOVD.P R4, 8(R0)
	SUBS $1, R3
	BNE subMulShoupLazyLoop
	RET

// func vecMulWideNEON(accHi, accLo, row []uint64, w uint64)
TEXT ·vecMulWideNEON(SB), NOSPLIT, $0-80
	MOVD accHi_base+0(FP), R0
	MOVD accLo_base+24(FP), R1
	MOVD row_base+48(FP), R2
	MOVD row_len+56(FP), R3
	MOVD w+72(FP), R10
mulWideLoop:
	MOVD.P 8(R2), R4
	MUL R10, R4, R5        // plo
	UMULH R10, R4, R6      // phi
	MOVD.P R6, 8(R0)
	MOVD.P R5, 8(R1)
	SUBS $1, R3
	BNE mulWideLoop
	RET

// func vecMulAccWideNEON(accHi, accLo, row []uint64, w uint64)
TEXT ·vecMulAccWideNEON(SB), NOSPLIT, $0-80
	MOVD accHi_base+0(FP), R0
	MOVD accLo_base+24(FP), R1
	MOVD row_base+48(FP), R2
	MOVD row_len+56(FP), R3
	MOVD w+72(FP), R10
mulAccWideLoop:
	MOVD.P 8(R2), R4
	MUL R10, R4, R5        // plo
	UMULH R10, R4, R6      // phi
	MOVD (R1), R7
	ADDS R5, R7, R7        // accLo += plo, carry out
	MOVD (R0), R8
	ADC R6, R8, R8         // accHi += phi + carry
	MOVD.P R7, 8(R1)
	MOVD.P R8, 8(R0)
	SUBS $1, R3
	BNE mulAccWideLoop
	RET

// func vecReduceTwoQNEON(p []uint64, q uint64)
TEXT ·vecReduceTwoQNEON(SB), NOSPLIT, $0-32
	MOVD p_base+0(FP), R0
	MOVD p_len+8(FP), R3
	MOVD q+24(FP), R12
reduceTwoQLoop:
	MOVD (R0), R4
	SUBS R12, R4, R5
	CSEL HS, R5, R4, R4
	MOVD.P R4, 8(R0)
	SUBS $1, R3
	BNE reduceTwoQLoop
	RET

// func vecFwdButterflyNEON(x, y []uint64, w, wShoup, q, twoQ uint64)
TEXT ·vecFwdButterflyNEON(SB), NOSPLIT, $0-80
	MOVD x_base+0(FP), R0
	MOVD x_len+8(FP), R3
	MOVD y_base+24(FP), R1
	MOVD w+48(FP), R10
	MOVD wShoup+56(FP), R11
	MOVD q+64(FP), R12
	MOVD twoQ+72(FP), R13
fwdButterflyLoop:
	MOVD (R0), R4          // u
	MOVD (R1), R5          // v
	SUBS R13, R4, R6
	CSEL HS, R6, R4, R4    // u cond-sub 2q
	UMULH R11, R5, R6      // h = hi64(v*wShoup)
	MUL R10, R5, R7        // v*w
	MUL R12, R6, R8        // h*q
	SUB R8, R7, R5         // v' in [0, 2q)
	ADD R5, R4, R6         // x' = u + v'
	SUB R5, R4, R7
	ADD R13, R7, R7        // y' = u - v' + 2q
	MOVD.P R6, 8(R0)
	MOVD.P R7, 8(R1)
	SUBS $1, R3
	BNE fwdButterflyLoop
	RET

// func vecInvButterflyNEON(x, y []uint64, w, wShoup, q, twoQ uint64)
TEXT ·vecInvButterflyNEON(SB), NOSPLIT, $0-80
	MOVD x_base+0(FP), R0
	MOVD x_len+8(FP), R3
	MOVD y_base+24(FP), R1
	MOVD w+48(FP), R10
	MOVD wShoup+56(FP), R11
	MOVD q+64(FP), R12
	MOVD twoQ+72(FP), R13
invButterflyLoop:
	MOVD (R0), R4          // u
	MOVD (R1), R5          // v
	ADD R5, R4, R6         // s = u + v
	SUBS R13, R6, R7
	CSEL HS, R7, R6, R6    // x' in [0, 2q)
	SUB R5, R4, R7
	ADD R13, R7, R7        // d = u - v + 2q
	UMULH R11, R7, R8      // h = hi64(d*wShoup)
	MUL R10, R7, R9        // d*w
	MUL R12, R8, R8        // h*q
	SUB R8, R9, R7         // y' in [0, 2q)
	MOVD.P R6, 8(R0)
	MOVD.P R7, 8(R1)
	SUBS $1, R3
	BNE invButterflyLoop
	RET
