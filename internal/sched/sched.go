// Package sched is the Anaheim co-execution framework (§V-C): it prices a
// kernel trace on a GPU model, optionally offloading the marked element-wise
// kernels to a PIM model, serializes GPU and PIM kernels on one stream (no
// pipelining), charges the GPU↔PIM transition overhead and the coherence
// write-backs, and aggregates time, energy, DRAM traffic and a Gantt
// timeline.
package sched

import (
	"time"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/obs"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/trace"
)

// classObs accumulates, per kernel class and execution platform, the
// simulated time/bytes the model predicts alongside the wall-clock time the
// model itself took to evaluate — the "simulated vs wall-clock" pair the
// §VII methodology asks to keep visible.
type classObs struct {
	kernels *obs.Counter
	simNs   *obs.Counter
	bytes   *obs.Counter
	wall    *obs.Counter
}

func newClassObs(class trace.Class, pim bool) classObs {
	platform := "gpu"
	if pim {
		platform = "pim"
	}
	label := `{class="` + class.String() + `",platform="` + platform + `"}`
	return classObs{
		kernels: obs.Default.Counter("sched_sim_kernels_total" + label),
		simNs:   obs.Default.Counter("sched_sim_time_ns_total" + label),
		bytes:   obs.Default.Counter("sched_sim_bytes_total" + label),
		wall:    obs.Default.Counter("sched_model_wall_seconds_total" + label),
	}
}

func (o classObs) record(timeNs, bytes float64, wallStart time.Time) {
	o.kernels.Inc()
	o.simNs.Add(timeNs)
	o.bytes.Add(bytes)
	o.wall.Add(time.Since(wallStart).Seconds())
}

// writeBackFraction is the share of PIM-bound producer output that would
// otherwise have remained in the L2 cache and therefore counts as extra
// coherence write-back traffic (§V-C).
const writeBackFraction = 0.3

// Config selects the execution platform.
type Config struct {
	GPU gpu.Config
	Lib gpu.LibraryProfile
	PIM *pim.UnitConfig // nil: GPU-only execution

	BufferSize        int  // override of the PIM data buffer B (0: default)
	NaiveLayout       bool // disable column partitioning (Fig 10 "w/o CP")
	DisableWriteBacks bool // for ideal-case studies
}

// Segment is one timeline entry (Fig 4a Gantt charts).
type Segment struct {
	Name    string
	Class   trace.Class
	PIM     bool
	StartNs float64
	DurNs   float64
}

// Result aggregates one simulated execution.
type Result struct {
	TimeNs   float64
	EnergyNJ float64

	GPUTimeNs, PIMTimeNs float64
	GPUBytes, PIMBytes   float64
	OneTimeBytes         float64
	WriteBackBytes       float64
	Transitions          int

	ClassTimeNs map[trace.Class]float64 // by kernel class, GPU or PIM
	Timeline    []Segment
}

// TimeMs returns the total time in milliseconds.
func (r Result) TimeMs() float64 { return r.TimeNs / 1e6 }

// EnergyMJ returns the total energy in millijoules.
func (r Result) EnergyMJ() float64 { return r.EnergyNJ / 1e6 }

// EDP returns the energy-delay product (mJ·ms).
func (r Result) EDP() float64 { return r.TimeMs() * r.EnergyMJ() }

// EWShare returns the fraction of execution time spent on element-wise
// kernels (the Fig 2b/2c breakdown quantity).
func (r Result) EWShare() float64 {
	if r.TimeNs == 0 {
		return 0
	}
	return r.ClassTimeNs[trace.ClassEW] / r.TimeNs
}

func classEff(lib gpu.LibraryProfile, c trace.Class) float64 {
	switch c {
	case trace.ClassNTT, trace.ClassINTT:
		return lib.NTTEff
	case trace.ClassBConv:
		return lib.BConvEff
	default:
		return 1.0
	}
}

// Run executes the trace under the configuration.
func Run(t *trace.Trace, cfg Config) Result {
	res := Result{ClassTimeNs: map[trace.Class]float64{}}
	bufferSize := cfg.BufferSize
	if cfg.PIM != nil && bufferSize == 0 {
		bufferSize = cfg.PIM.BufferSize
	}
	prevPIM := false
	cursor := 0.0
	transitionNs := cfg.GPU.TransitionUs * 1e3

	// Metric handles resolved once per (class, platform) pair per run.
	classMetrics := map[[2]any]classObs{}
	metric := func(c trace.Class, pim bool) classObs {
		key := [2]any{c, pim}
		m, ok := classMetrics[key]
		if !ok {
			m = newClassObs(c, pim)
			classMetrics[key] = m
		}
		return m
	}

	for _, k := range t.Kernels {
		onPIM := k.Offload && cfg.PIM != nil && k.Class == trace.ClassEW
		var timeNs, energyNJ float64
		var bytes float64
		wallStart := time.Now()

		if onPIM {
			cost := pimKernelCost(*cfg.PIM, k, t.P.N, bufferSize, !cfg.NaiveLayout)
			timeNs = cost.TimeNs
			// The GPU idles (but stays powered) while PIM computes.
			energyNJ = cost.EnergyNJ + timeNs*cfg.GPU.StaticW
			bytes = float64(cost.Bytes)
			res.PIMTimeNs += timeNs
			res.PIMBytes += bytes
		} else {
			kb := k.Bytes
			if k.Class == trace.ClassEW && !cfg.Lib.EWFusion {
				kb *= 1.5 // unfused libraries round-trip intermediates
			}
			if cfg.PIM != nil && !cfg.DisableWriteBacks {
				// Most PIM-consumed data would spill to DRAM anyway (§V-D:
				// "GPUs often do not have enough cache to hold ModUp(a)");
				// only the fraction that could have stayed cached is extra.
				wb := writeBackFraction * k.WriteBack
				kb += wb
				res.WriteBackBytes += wb
			}
			cost := cfg.GPU.KernelCost(k.WeightedOps, kb, classEff(cfg.Lib, k.Class))
			timeNs = cost.TimeNs
			energyNJ = cost.EnergyNJ
			bytes = kb
			res.GPUTimeNs += timeNs
			res.GPUBytes += bytes
			res.OneTimeBytes += k.OneTime
		}
		metric(k.Class, onPIM).record(timeNs, bytes, wallStart)

		if onPIM != prevPIM {
			res.Transitions++
			cursor += transitionNs
			res.TimeNs += transitionNs
		}
		prevPIM = onPIM

		res.Timeline = append(res.Timeline, Segment{
			Name: k.Name, Class: k.Class, PIM: onPIM, StartNs: cursor, DurNs: timeNs,
		})
		cursor += timeNs
		res.TimeNs += timeNs
		res.EnergyNJ += energyNJ
		res.ClassTimeNs[k.Class] += timeNs
	}
	return res
}

// pimKernelCost prices an element-wise kernel on the PIM model, falling back
// to the unfused instruction sequence when the compound form does not fit in
// the data buffer (§VII-C).
func pimKernelCost(u pim.UnitConfig, k trace.Kernel, n, bufferSize int, cp bool) pim.Cost {
	cost, err := u.InstrCost(k.Op, k.OpK, k.Limbs, n, bufferSize, cp)
	if err != nil {
		// Decompose: PAccum -> K PMACs, CAccum -> K CMACs, Tensor -> Mult+2MAC.
		var fallback pim.Cost
		switch k.Op {
		case pim.PAccum:
			c, _ := u.InstrCost(pim.PMAC, 0, k.Limbs, n, bufferSize, cp)
			for i := 0; i < k.OpK; i++ {
				fallback.Add(c)
			}
		case pim.CAccum:
			c, _ := u.InstrCost(pim.CMAC, 0, k.Limbs, n, bufferSize, cp)
			for i := 0; i < 2*k.OpK; i++ {
				fallback.Add(c)
			}
		case pim.Tensor, pim.TensorSq:
			c, _ := u.InstrCost(pim.Mult, 0, k.Limbs, n, bufferSize, cp)
			m, _ := u.InstrCost(pim.MAC, 0, k.Limbs, n, bufferSize, cp)
			fallback.Add(c)
			fallback.Add(m)
			fallback.Add(m)
		default:
			c, _ := u.InstrCost(pim.Move, 0, k.Limbs, n, bufferSize, cp)
			fallback.Add(c)
			fallback.Add(c)
		}
		cost = fallback
	}
	total := pim.Cost{}
	for i := 0; i < k.Instances; i++ {
		total.Add(cost)
	}
	return total
}
