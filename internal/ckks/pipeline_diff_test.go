package ckks

import (
	"math/rand"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// withPipelined runs f under the requested pipelining mode (fusion stays on —
// the pipelined paths build on the lazy kernels) and restores the
// process-wide default afterwards.
func withPipelined(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := PipelinedEnabled()
	SetPipelined(on)
	defer SetPipelined(prev)
	f()
}

// Pipelining changes execution order across limbs, not arithmetic: every
// stage body is the same row kernel the barriered op dispatches, in the same
// per-limb order, so pipelined and barriered evaluation of the same
// ciphertext must produce bit-identical polynomials — at every level.

func TestPipelinedKeySwitchMatchesBarrieredEveryLevel(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(50))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))
	rq := tc.params.RingQ()

	for lvl := ct.Level(); lvl >= 0; lvl-- {
		var p0, p1, b0, b1 *ring.Poly
		withPipelined(t, true, func() { p0, p1 = tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk) })
		withPipelined(t, false, func() { b0, b1 = tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk) })
		if !p0.Equal(b0) || !p1.Equal(b1) {
			t.Fatalf("level %d: pipelined keySwitch differs from barriered bit-for-bit", lvl)
		}
		rq.PutPoly(p0)
		rq.PutPoly(p1)
		rq.PutPoly(b0)
		rq.PutPoly(b1)
	}
}

func TestPipelinedRotateMatchesBarriered(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{1, 3})
	r := rand.New(rand.NewSource(51))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))

	for lvl := ct.Level(); lvl >= 0; lvl-- {
		at := tc.eval.DropLevel(ct, lvl)
		var piped, barr *Ciphertext
		withPipelined(t, true, func() {
			out, err := tc.eval.Rotate(at, 3)
			if err != nil {
				t.Fatal(err)
			}
			piped = out
		})
		withPipelined(t, false, func() {
			out, err := tc.eval.Rotate(at, 3)
			if err != nil {
				t.Fatal(err)
			}
			barr = out
		})
		if !piped.C0.Equal(barr.C0) || !piped.C1.Equal(barr.C1) {
			t.Fatalf("level %d: pipelined Rotate differs from barriered bit-for-bit", lvl)
		}
	}
}

func TestPipelinedRotateHoistedMatchesBarriered(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	rots := []int{1, 2, 5}
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, rots)
	r := rand.New(rand.NewSource(52))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))

	var piped, barr map[int]*Ciphertext
	withPipelined(t, true, func() {
		out, err := tc.eval.RotateHoisted(ct, rots)
		if err != nil {
			t.Fatal(err)
		}
		piped = out
	})
	withPipelined(t, false, func() {
		out, err := tc.eval.RotateHoisted(ct, rots)
		if err != nil {
			t.Fatal(err)
		}
		barr = out
	})
	for _, k := range rots {
		if !piped[k].C0.Equal(barr[k].C0) || !piped[k].C1.Equal(barr[k].C1) {
			t.Fatalf("rotation %d: pipelined RotateHoisted differs from barriered", k)
		}
	}
}

func TestPipelinedMulRelinRescaleMatchesBarriered(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(53))
	u := randomComplex(r, tc.params.Slots(), 1)
	v := randomComplex(r, tc.params.Slots(), 1)
	ct0 := tc.encryptVec(t, u)
	ct1 := tc.encryptVec(t, v)

	var pipedMul, barrMul, pipedRs, barrRs *Ciphertext
	withPipelined(t, true, func() {
		pipedMul = tc.eval.MulRelin(ct0, ct1, nil)
		pipedRs = tc.eval.Rescale(pipedMul)
	})
	withPipelined(t, false, func() {
		barrMul = tc.eval.MulRelin(ct0, ct1, nil)
		barrRs = tc.eval.Rescale(barrMul)
	})
	if !pipedMul.C0.Equal(barrMul.C0) || !pipedMul.C1.Equal(barrMul.C1) {
		t.Fatal("pipelined MulRelin differs from barriered bit-for-bit")
	}
	if !pipedRs.C0.Equal(barrRs.C0) || !pipedRs.C1.Equal(barrRs.C1) {
		t.Fatal("pipelined Rescale differs from barriered bit-for-bit")
	}

	// And the product must still decrypt correctly.
	want := make([]complex128, len(u))
	for j := range want {
		want[j] = u[j] * v[j]
	}
	if e := maxErr(tc.decryptVec(pipedRs), want); e > 1e-3 {
		t.Fatalf("pipelined MulRelin+Rescale error %g", e)
	}
}

func TestPipelinedRescaleMatchesBarrieredEveryLevel(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(54))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))

	for lvl := ct.Level(); lvl >= 1; lvl-- {
		at := tc.eval.DropLevel(ct, lvl)
		var piped, barr *Ciphertext
		withPipelined(t, true, func() { piped = tc.eval.Rescale(at) })
		withPipelined(t, false, func() { barr = tc.eval.Rescale(at) })
		if !piped.C0.Equal(barr.C0) || !piped.C1.Equal(barr.C1) {
			t.Fatalf("level %d: pipelined Rescale differs from barriered bit-for-bit", lvl)
		}
		if piped.Scale != barr.Scale {
			t.Fatalf("level %d: scale mismatch %g vs %g", lvl, piped.Scale, barr.Scale)
		}
	}
}

func TestPipelinedLinearTransformMatchesBarriered(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(55))
	lt := randomSparseLT(r, tc.params.Slots(), []int{0, 1, 2, 3, 5, 8})
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, lt.Rotations())

	u := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, u)

	var piped, barr *Ciphertext
	withPipelined(t, true, func() {
		out, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
		if err != nil {
			t.Fatal(err)
		}
		piped = out
	})
	withPipelined(t, false, func() {
		out, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
		if err != nil {
			t.Fatal(err)
		}
		barr = out
	})
	if !piped.C0.Equal(barr.C0) || !piped.C1.Equal(barr.C1) {
		t.Fatal("pipelined hoisted LT differs from barriered bit-for-bit")
	}
	got := tc.decryptVec(tc.eval.Rescale(piped))
	if e := maxErr(got, lt.Apply(u)); e > 1e-4 {
		t.Fatalf("pipelined hoisted LT error %g", e)
	}
}

// TestPipelinedDecomposeConsumedBarriered flips the toggle between decompose
// and consume: a pipelined decomposition defers the digit NTTs (coeffDomain),
// so a consumer running after SetPipelined(false) must materialize them via
// ensureNTT and still produce the barriered result.
func TestPipelinedDecomposeConsumedBarriered(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(56))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))
	lvl := ct.Level()
	rq, rp := tc.params.RingQ(), tc.params.RingP()

	var want0, want1, wantP0, wantP1 *ring.Poly
	withPipelined(t, false, func() {
		dec := tc.eval.decomposePlan(ct.C1, lvl, tc.eval.planFor(lvl, tc.keys.Rlk))
		want0, wantP0, want1, wantP1 = tc.eval.gadgetProduct(dec, tc.keys.Rlk)
		dec.release(tc.params)
	})

	SetPipelined(true)
	dec := tc.eval.decomposePlan(ct.C1, lvl, tc.eval.planFor(lvl, tc.keys.Rlk))
	if !dec.coeffDomain {
		t.Fatal("pipelined decomposition should defer the digit NTTs")
	}
	SetPipelined(false)
	defer SetPipelined(true)
	u0q, u0p, u1q, u1p := tc.eval.gadgetProduct(dec, tc.keys.Rlk)
	dec.release(tc.params)

	if !u0q.Equal(want0) || !u1q.Equal(want1) || !u0p.Equal(wantP0) || !u1p.Equal(wantP1) {
		t.Fatal("deferred-NTT digits consumed barriered differ from barriered decompose+consume")
	}
	rq.PutPoly(u0q)
	rq.PutPoly(u1q)
	rp.PutPoly(u0p)
	rp.PutPoly(u1p)
	rq.PutPoly(want0)
	rq.PutPoly(want1)
	rp.PutPoly(wantP0)
	rp.PutPoly(wantP1)
}
