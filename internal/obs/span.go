package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one completed span. Parent links spans into trees: a job
// root span owns one child span per executed op.
type SpanRecord struct {
	ID          uint64 `json:"id"`
	Parent      uint64 `json:"parent,omitempty"`
	Name        string `json:"name"`
	Attrs       string `json:"attrs,omitempty"`
	StartUnixNs int64  `json:"startUnixNs"`
	DurNs       int64  `json:"durNs"`
}

// Tracer records completed spans into a bounded ring buffer: when full, the
// oldest spans are overwritten, so a long-lived server never grows its
// trace memory. The zero value is not usable; create with NewTracer.
type Tracer struct {
	nextID  atomic.Uint64
	dropped atomic.Int64

	mu   sync.Mutex
	buf  []SpanRecord
	head int // next write position
	full bool
}

// NewTracer returns a tracer retaining the last capacity completed spans.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 1
	}
	return &Tracer{buf: make([]SpanRecord, 0, capacity)}
}

// DefaultTracer is the process-wide tracer.
var DefaultTracer = NewTracer(4096)

// Span is an in-flight span handle. Methods are nil-safe so call sites can
// stay unconditional.
type Span struct {
	tr     *Tracer
	id     uint64
	parent uint64
	name   string
	attrs  string
	start  time.Time
}

// Start opens a span. parent is the ID of the enclosing span (0 for a
// root). The span is recorded when End is called.
func (t *Tracer) Start(name string, parent uint64) *Span {
	if t == nil {
		return nil
	}
	return &Span{
		tr:     t,
		id:     t.nextID.Add(1),
		parent: parent,
		name:   name,
		start:  time.Now(),
	}
}

// ID returns the span's identifier for parenting children (0 for nil).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Annotate attaches a short free-form attribute string (last write wins).
func (s *Span) Annotate(attrs string) {
	if s != nil {
		s.attrs = attrs
	}
}

// End completes the span and records it in the tracer's ring.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		ID:          s.id,
		Parent:      s.parent,
		Name:        s.name,
		Attrs:       s.attrs,
		StartUnixNs: s.start.UnixNano(),
		DurNs:       int64(time.Since(s.start)),
	}
	t := s.tr
	t.mu.Lock()
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, rec)
	} else {
		t.buf[t.head] = rec
		t.full = true
		t.dropped.Add(1)
	}
	t.head = (t.head + 1) % cap(t.buf)
	t.mu.Unlock()
}

// Snapshot returns the retained spans, oldest first.
func (t *Tracer) Snapshot() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped returns how many spans were overwritten by ring wraparound.
func (t *Tracer) Dropped() int64 { return t.dropped.Load() }

// Reset discards the retained spans (tests).
func (t *Tracer) Reset() {
	t.mu.Lock()
	t.buf = t.buf[:0]
	t.head = 0
	t.full = false
	t.mu.Unlock()
}
