package fusion

// Op mirrors the engine's op-DAG node (engine.OpSpec). The engine converts
// at its boundary: fusion cannot import engine, because engine imports
// fusion to rewrite jobs at admission.
type Op struct {
	ID   string
	Kind string
	Args []string
	K    int
	Val  float64
	Vals []float64
	Name string
}

// DAGStats summarizes one DAG pass application.
type DAGStats struct {
	Pass      string
	OpsBefore int
	OpsAfter  int
	Fused     int // ops absorbed into a variadic replacement
}

// RewriteDAG applies the op-DAG fusion passes in order: ADD ladders collapse
// into one variadic "addn" (executed by the single-pass ckks.AddMany), then
// sums whose operands are all single-use constant multiplies collapse into
// one "lincomb" (ckks.MulConstAccum). Ops whose IDs appear in protected (job
// outputs) are never absorbed, so every requested result keeps its identity.
// The input is expected in topological order (the engine validates this) and
// the output preserves it.
func RewriteDAG(ops []Op, protected map[string]bool) ([]Op, []DAGStats) {
	out, addStats := foldAddLadders(ops, protected)
	out, lcStats := foldLinComb(out, protected)
	return out, []DAGStats{addStats, lcStats}
}

// useCounts returns, per op ID, how many times other ops reference it.
func useCounts(ops []Op) map[string]int {
	uses := make(map[string]int)
	for _, op := range ops {
		for _, a := range op.Args {
			uses[a]++
		}
	}
	return uses
}

// foldAddLadders collapses chains and trees of binary adds whose
// intermediates are single-use and unprotected into one variadic sum.
// Addition is associative and the evaluator's scale/level rules agree
// (AddMany checks the same scale compatibility pairwise adds would, and
// truncates to the minimum level like a chain does), so flattening is
// semantics-preserving.
func foldAddLadders(ops []Op, protected map[string]bool) ([]Op, DAGStats) {
	st := DAGStats{Pass: "add-ladder", OpsBefore: len(ops)}
	uses := useCounts(ops)
	flat := make(map[string][]string) // add-like op ID -> flattened arg list
	absorbed := make(map[string]bool)

	for _, op := range ops {
		if op.Kind != "add" && op.Kind != "addn" {
			continue
		}
		args := make([]string, 0, len(op.Args))
		for _, a := range op.Args {
			if f, ok := flat[a]; ok && uses[a] == 1 && !protected[a] {
				args = append(args, f...)
				absorbed[a] = true
			} else {
				args = append(args, a)
			}
		}
		flat[op.ID] = args
	}

	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		if absorbed[op.ID] {
			st.Fused++
			continue
		}
		if f, ok := flat[op.ID]; ok && len(f) > len(op.Args) {
			op.Kind = "addn"
			op.Args = f
		}
		out = append(out, op)
	}
	st.OpsAfter = len(out)
	return out, st
}

// foldLinComb rewrites a sum whose operands are all single-use, unprotected
// constant multiplies into one linear-combination op carrying the constants:
// addn(mulconst(x₀,c₀), …) → lincomb([x₀,…], [c₀,…]). The engine executes
// it as one rescale over a fused multiply-accumulate instead of one rescale
// and one full traversal per term.
func foldLinComb(ops []Op, protected map[string]bool) ([]Op, DAGStats) {
	st := DAGStats{Pass: "lincomb", OpsBefore: len(ops)}
	uses := useCounts(ops)
	byID := make(map[string]*Op, len(ops))
	for i := range ops {
		byID[ops[i].ID] = &ops[i]
	}

	absorbed := make(map[string]bool)
	out := make([]Op, 0, len(ops))
	for _, op := range ops {
		if op.Kind == "add" || op.Kind == "addn" {
			terms := make([]*Op, 0, len(op.Args))
			ok := true
			for _, a := range op.Args {
				mc := byID[a]
				if mc == nil || mc.Kind != "mulconst" || uses[a] != 1 || protected[a] {
					ok = false
					break
				}
				terms = append(terms, mc)
			}
			// Duplicate args (add(x, x)) have uses >= 2 and fail the
			// single-use check, so each term is distinct here.
			if ok && len(terms) >= 2 {
				args := make([]string, len(terms))
				vals := make([]float64, len(terms))
				for i, mc := range terms {
					args[i] = mc.Args[0]
					vals[i] = mc.Val
					absorbed[mc.ID] = true
				}
				op.Kind = "lincomb"
				op.Args = args
				op.Vals = vals
			}
		}
		out = append(out, op)
	}
	// The absorbed mulconsts precede their consumer in topological order,
	// so they were appended before being marked; filter them out now.
	final := out[:0]
	for _, op := range out {
		if absorbed[op.ID] {
			st.Fused++
			continue
		}
		final = append(final, op)
	}
	st.OpsAfter = len(final)
	return final, st
}
