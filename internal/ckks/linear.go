package ckks

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// LinearTransform is a slot-space linear map in the diagonal (Halevi–Shoup)
// representation used for FHE linear transforms (§III-B):
//
//	(M·u)_j = Σ_r Diags[r][j] · u_{(j+r) mod slots} ,
//
// i.e. M·u = Σ_r d_r ⊙ (u ≪ r), evaluated homomorphically with K = |Diags|
// PMULT and HROT pairs.
type LinearTransform struct {
	Slots int
	Diags map[int][]complex128

	// encMu guards only the encCache map itself: each (level, variant) entry
	// is built once outside the lock via per-entry singleflight, so
	// concurrent sessions encoding different levels proceed in parallel and
	// same-level racers wait on the builder instead of serializing every
	// evaluation behind one transform-wide mutex. Encoding a diagonal costs
	// an IFFT plus two NTTs; it depends only on (diagonal, level, giant
	// pre-rotation), so it is the paper's "offline" plaintext preprocessing
	// (§V-B pre-rotates these same plaintexts) and is cached across
	// evaluations. The cache serves the fused and unfused paths alike,
	// keeping their comparison about kernel shape only.
	encMu    sync.Mutex
	encCache map[encKey]*encEntry

	// cacheBytes tracks the coefficient bytes held by encCache (also
	// mirrored into the ckks_lintrans_cache_bytes gauge), so servers hosting
	// many transforms can bound the pre-rotated plaintext working set via
	// CacheBytes/ClearEncodedCache.
	cacheBytes atomic.Int64

	// BSGS strategy state (see bsgs.go): the cost model's decision is cached
	// after the first query; SetBabyStep overrides and invalidates it.
	bsgsMu       sync.Mutex
	bsgsOverride int // 0 auto, >0 forced baby step, -1 forced per-diagonal
	bsgsReady    bool
	bsgsSel      *bsgsPlan
}

// encKey names one cached encoding variant of the transform's diagonals.
type encKey struct {
	lvl int
	bs  int // 0: plain diagonals; >0: pre-rotated for the BSGS plan with this baby step
}

// encEntry is one singleflight-built encoding variant: ready is closed when
// the build finishes (diags/err/bytes are immutable afterwards).
type encEntry struct {
	ready chan struct{}
	diags map[int]encodedDiag
	bytes int64
	err   error
}

// encodedDiag is one diagonal lifted to the extended basis: NTT-form
// plaintexts over Q (at some level) and over P.
type encodedDiag struct {
	q, p *ring.Poly
}

func (d encodedDiag) bytes() int64 {
	n := int64(len(d.q.Coeffs[0]))
	return 8 * n * int64(d.q.Level()+1+d.p.Level()+1)
}

// NewLinearTransform copies the provided diagonals.
func NewLinearTransform(slots int, diags map[int][]complex128) *LinearTransform {
	lt := &LinearTransform{
		Slots:    slots,
		Diags:    make(map[int][]complex128, len(diags)),
		encCache: make(map[encKey]*encEntry),
	}
	for r, d := range diags {
		v := make([]complex128, slots)
		copy(v, d)
		lt.Diags[((r%slots)+slots)%slots] = v
	}
	return lt
}

// encodedVariant returns the cached encoding for key, building it via build
// on first use. The transform-wide lock is held only for the map lookup and
// insert; the expensive encode runs outside it, and concurrent callers of the
// same key block on the entry's ready channel (singleflight). A failed build
// is evicted so a later call can retry.
func (lt *LinearTransform) encodedVariant(key encKey, build func() (map[int]encodedDiag, error)) (map[int]encodedDiag, error) {
	lt.encMu.Lock()
	if lt.encCache == nil {
		lt.encCache = make(map[encKey]*encEntry)
	}
	if e, ok := lt.encCache[key]; ok {
		lt.encMu.Unlock()
		<-e.ready
		return e.diags, e.err
	}
	e := &encEntry{ready: make(chan struct{})}
	lt.encCache[key] = e
	lt.encMu.Unlock()

	e.diags, e.err = build()
	if e.err != nil {
		lt.encMu.Lock()
		delete(lt.encCache, key)
		lt.encMu.Unlock()
	} else {
		for _, d := range e.diags {
			e.bytes += d.bytes()
		}
		lt.cacheBytes.Add(e.bytes)
		obsLinTransCacheBytes.Add(e.bytes)
	}
	close(e.ready)
	return e.diags, e.err
}

// encodedAt returns the transform's diagonals encoded for a ciphertext at
// level lvl (scale = the level's top prime), building and caching them on
// first use.
func (lt *LinearTransform) encodedAt(enc *Encoder, lvl int, scale float64) (map[int]encodedDiag, error) {
	return lt.encodedVariant(encKey{lvl: lvl}, func() (map[int]encodedDiag, error) {
		m := make(map[int]encodedDiag, len(lt.Diags))
		for r, diag := range lt.Diags {
			pq, pp, err := enc.encodeDiagQP(diag, 0, lvl, scale)
			if err != nil {
				return nil, err
			}
			m[r] = encodedDiag{q: pq, p: pp}
		}
		return m, nil
	})
}

// encodedBSGSAt returns the diagonals encoded for the BSGS plan at level lvl:
// each diagonal r = rot + b is pre-rotated by −rot at encode time (the §V-B
// offline preprocessing), so the giant rotation can be applied to the whole
// inner sum after the fact instead of to the ciphertext per diagonal.
func (lt *LinearTransform) encodedBSGSAt(enc *Encoder, lvl int, scale float64, plan *bsgsPlan) (map[int]encodedDiag, error) {
	return lt.encodedVariant(encKey{lvl: lvl, bs: plan.bs}, func() (map[int]encodedDiag, error) {
		m := make(map[int]encodedDiag, len(lt.Diags))
		for _, g := range plan.giants {
			for _, d := range g.diags {
				pq, pp, err := enc.encodeDiagQP(lt.Diags[d.r], -g.rot, lvl, scale)
				if err != nil {
					return nil, err
				}
				m[d.r] = encodedDiag{q: pq, p: pp}
			}
		}
		return m, nil
	})
}

// CacheBytes reports the coefficient bytes currently held by the encoded
// diagonal cache.
func (lt *LinearTransform) CacheBytes() int64 { return lt.cacheBytes.Load() }

// ClearEncodedCache drops every completed cached encoding (entries still
// being built are left for their builder to publish) and returns the bytes
// freed.
func (lt *LinearTransform) ClearEncodedCache() int64 {
	return lt.dropCached(func(encKey) bool { return true })
}

// dropPreRotated evicts the pre-rotated (BSGS) encoding variants, used when
// the baby step changes.
func (lt *LinearTransform) dropPreRotated() {
	lt.dropCached(func(k encKey) bool { return k.bs != 0 })
}

func (lt *LinearTransform) dropCached(match func(encKey) bool) int64 {
	var freed int64
	lt.encMu.Lock()
	for k, e := range lt.encCache {
		if !match(k) {
			continue
		}
		select {
		case <-e.ready:
			if e.err == nil {
				freed += e.bytes
			}
			delete(lt.encCache, k)
		default:
			// Still building: the builder owns the entry; leave it.
		}
	}
	lt.encMu.Unlock()
	if freed != 0 {
		lt.cacheBytes.Add(-freed)
		obsLinTransCacheBytes.Add(-freed)
	}
	return freed
}

// Rotations returns the rotation indices needed to evaluate the transform.
func (lt *LinearTransform) Rotations() []int {
	out := make([]int, 0, len(lt.Diags))
	for r := range lt.Diags {
		if r != 0 {
			out = append(out, r)
		}
	}
	return out
}

// Apply evaluates the transform on a plaintext vector (reference for tests).
func (lt *LinearTransform) Apply(u []complex128) []complex128 {
	n := lt.Slots
	out := make([]complex128, n)
	for r, d := range lt.Diags {
		for j := 0; j < n; j++ {
			out[j] += d[j] * u[(j+r)%n]
		}
	}
	return out
}

// encodeDiagQP encodes a diagonal into both the Q basis (level lvl) and the
// P basis, sharing the same integer coefficients — the "larger plaintexts in
// the extended modulus PQ" that hoisting requires (§III-B). rot slot-rotates
// the values before encoding (v[j] = values[(j+rot) mod slots]); the BSGS
// path passes −(giant rotation) so the pre-rotation happens offline, at
// encode time, instead of on the ciphertext.
func (e *Encoder) encodeDiagQP(values []complex128, rot, lvl int, scale float64) (*ring.Poly, *ring.Poly, error) {
	slots := e.params.Slots()
	if len(values) > slots {
		return nil, nil, fmt.Errorf("ckks: diagonal longer than slot count")
	}
	vals := make([]complex128, slots)
	copy(vals, values)
	if rot %= slots; rot != 0 {
		rotated := make([]complex128, slots)
		for j := range rotated {
			rotated[j] = vals[((j+rot)%slots+slots)%slots]
		}
		vals = rotated
	}
	e.specialIFFT(vals)

	nh := e.params.N() / 2
	ints := make([]int64, e.params.N())
	for j := 0; j < nh; j++ {
		ints[j] = int64(math.Round(real(vals[j]) * scale))
		ints[j+nh] = int64(math.Round(imag(vals[j]) * scale))
	}
	rq, rp := e.params.RingQ(), e.params.RingP()
	pq := ring.SmallVectorToPoly(rq, lvl, ints)
	pp := ring.SmallVectorToPoly(rp, rp.MaxLevel(), ints)
	rq.NTT(pq, lvl)
	rp.NTT(pp, rp.MaxLevel())
	return pq, pp, nil
}

// EvaluateLinearTransformHoisted computes M·u with the hoisting optimization
// of Fig 1/Fig 5: one ModUp for all K rotations, PMULT and accumulation in
// the extended modulus PQ, and a single hoisted ModDown at the end. The
// diagonals are encoded at the scale of the ciphertext's top prime so that
// the caller's Rescale restores the input scale exactly.
func (ev *Evaluator) EvaluateLinearTransformHoisted(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	fused := FusionEnabled()
	piped := pipelineActive()
	if fused {
		defer obsLinTransFused.done(time.Now())
	} else {
		defer obsLinTransUnfused.done(time.Now())
	}
	p := ev.params
	rq, rp := p.RingQ(), p.RingP()
	lvl := ct.Level()
	ptScale := float64(rq.Moduli[lvl].Q)

	diags, err := lt.encodedAt(enc, lvl, ptScale)
	if err != nil {
		return nil, err
	}

	// Resolve every Galois key before decomposing: the hoisted digits are
	// shared across all rotations, so the plan (and its per-key band check)
	// must see the full key list up front.
	swks := make(map[int]*SwitchingKey, len(diags))
	planKeys := make([]*SwitchingKey, 0, len(diags))
	for r := range diags {
		if r == 0 {
			continue
		}
		swk, err := ev.keys.GaloisKey(rq.GaloisElement(r))
		if err != nil {
			return nil, err
		}
		swks[r] = swk
		planKeys = append(planKeys, swk)
	}
	plan := ev.planFor(lvl, planKeys...)
	lvlP := plan.Alpha - 1

	dec := ev.decomposePlan(ct.C1, lvl, plan)
	defer dec.release(p)

	// Q-basis accumulators for the rotation-0 term and the c0 parts;
	// QP-basis accumulators for the hoisted key-switched parts.
	accQ0, accQ1 := rq.NewPoly(lvl), rq.NewPoly(lvl)
	accQ0.IsNTT, accQ1.IsNTT = true, true
	accE0q, accE1q := rq.NewPoly(lvl), rq.NewPoly(lvl)
	accE0p, accE1p := rp.NewPoly(lvlP), rp.NewPoly(lvlP)
	accE0q.IsNTT, accE1q.IsNTT, accE0p.IsNTT, accE1p.IsNTT = true, true, true, true
	anyExt := false

	for r, ed := range diags {
		ptQ, ptP := ed.q, ed.p
		if r == 0 {
			if fused {
				rq.MulCoeffsAddLazy(accQ0, ct.C0, ptQ, lvl)
				rq.MulCoeffsAddLazy(accQ1, ct.C1, ptQ, lvl)
			} else {
				rq.MulCoeffsAdd(accQ0, ct.C0, ptQ, lvl)
				rq.MulCoeffsAdd(accQ1, ct.C1, ptQ, lvl)
			}
			continue
		}
		anyExt = true
		obsLinTransRotations.Inc()
		g := rq.GaloisElement(r)
		swk := swks[r]
		if fused && piped {
			// One pipeline Run per rotation: digit NTTs (first consumer
			// only), the gadget-product MACs, and the five AutAccum MACs
			// execute per limb while the rows are cache-resident.
			ev.autAccumPipelined(dec, swk, accE0q, accE1q, accE0p, accE1p, accQ0, ct.C0, ptQ, ptP, g)
			continue
		}
		if fused {
			// Fused KeyMult: the gadget-product accumulators stay lazy —
			// the AutAccum MACs below tolerate multiplicands in [0, 2q),
			// so the four per-rotation reductions are skipped entirely.
			u0q, u1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
			u0p, u1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
			u0q.IsNTT, u1q.IsNTT, u0p.IsNTT, u1p.IsNTT = true, true, true, true
			ev.gadgetProductLazyInto(dec, swk, u0q, u1q, u0p, u1p)
			// AutAccum (§V-B Fig 6): the automorphism permutation, the
			// PMULT by the diagonal, and the accumulation run as one pass
			// per component — no rotated temporaries, one deferred
			// reduction per accumulator.
			rq.AutMulCoeffsAddLazy(accE0q, u0q, ptQ, g, lvl)
			rq.AutMulCoeffsAddLazy(accE1q, u1q, ptQ, g, lvl)
			rp.AutMulCoeffsAddLazy(accE0p, u0p, ptP, g, lvlP)
			rp.AutMulCoeffsAddLazy(accE1p, u1p, ptP, g, lvlP)
			rq.PutPoly(u0q)
			rq.PutPoly(u1q)
			rp.PutPoly(u0p)
			rp.PutPoly(u1p)
			// The σ(c0) contribution stays in the Q basis.
			rq.AutMulCoeffsAddLazy(accQ0, ct.C0, ptQ, g, lvl)
			continue
		}
		// Unfused: automorphism of the extended-basis partial results into
		// temporaries, then separate PMULT+accumulate passes.
		u0q, u0p, u1q, u1p := ev.gadgetProduct(dec, swk)
		rot0q, rot1q := rq.GetPoly(lvl), rq.GetPoly(lvl)
		rot0p, rot1p := rp.GetPoly(lvlP), rp.GetPoly(lvlP)
		rq.AutomorphismNTT(rot0q, u0q, g, lvl)
		rq.AutomorphismNTT(rot1q, u1q, g, lvl)
		rp.AutomorphismNTT(rot0p, u0p, g, lvlP)
		rp.AutomorphismNTT(rot1p, u1p, g, lvlP)
		rq.PutPoly(u0q)
		rq.PutPoly(u1q)
		rp.PutPoly(u0p)
		rp.PutPoly(u1p)
		rq.MulCoeffsAdd(accE0q, rot0q, ptQ, lvl)
		rq.MulCoeffsAdd(accE1q, rot1q, ptQ, lvl)
		rp.MulCoeffsAdd(accE0p, rot0p, ptP, lvlP)
		rp.MulCoeffsAdd(accE1p, rot1p, ptP, lvlP)
		rq.PutPoly(rot0q)
		rq.PutPoly(rot1q)
		rp.PutPoly(rot0p)
		rp.PutPoly(rot1p)
		// The σ(c0) contribution stays in the Q basis.
		rotC0 := rq.GetPoly(lvl)
		rq.AutomorphismNTT(rotC0, ct.C0, g, lvl)
		rq.MulCoeffsAdd(accQ0, rotC0, ptQ, lvl)
		rq.PutPoly(rotC0)
	}

	if fused {
		if piped {
			// End-of-sweep normalization of all lazy accumulators in one
			// pipeline Run (one barrier instead of one per accumulator).
			qs := []*ring.Poly{accQ0, accQ1}
			var ps []*ring.Poly
			if anyExt {
				qs = append(qs, accE0q, accE1q)
				ps = append(ps, accE0p, accE1p)
			}
			ev.reduceManyPipelined(qs, lvl, ps, lvlP)
		} else {
			rq.ReduceLazy(accQ0, lvl)
			rq.ReduceLazy(accQ1, lvl)
			if anyExt {
				rq.ReduceLazy(accE0q, lvl)
				rq.ReduceLazy(accE1q, lvl)
				rp.ReduceLazy(accE0p, lvlP)
				rp.ReduceLazy(accE1p, lvlP)
			}
		}
	}

	out := &Ciphertext{Scale: ct.Scale * ptScale}
	if anyExt {
		var d0, d1 *ring.Poly
		if piped {
			d0, d1 = ev.modDownPairPipelined(accE0q, accE0p, accE1q, accE1p, accQ0, accQ1, lvl)
		} else {
			d0 = ev.ModDown(accE0q, accE0p, lvl)
			d1 = ev.ModDown(accE1q, accE1p, lvl)
			rq.Add(d0, d0, accQ0, lvl)
			rq.Add(d1, d1, accQ1, lvl)
		}
		out.C0, out.C1 = d0, d1
	} else {
		out.C0, out.C1 = accQ0, accQ1
	}
	return out, nil
}

// EvaluateLinearTransformMinKS computes M·u with the minimum-key-switching
// strategy (§III-B): only the rotation-by-one key is used, iterating
// HROT(·, 1) and accumulating the needed diagonals. It trades K evaluation
// keys for K sequential key switches.
func (ev *Evaluator) EvaluateLinearTransformMinKS(ct *Ciphertext, lt *LinearTransform, enc *Encoder) (*Ciphertext, error) {
	p := ev.params
	rq := p.RingQ()
	lvl := ct.Level()
	ptScale := float64(rq.Moduli[lvl].Q)

	maxRot := 0
	for r := range lt.Diags {
		if r > maxRot {
			maxRot = r
		}
	}

	diags, err := lt.encodedAt(enc, lvl, ptScale)
	if err != nil {
		return nil, err
	}

	fused := FusionEnabled()
	acc0, acc1 := rq.NewPoly(lvl), rq.NewPoly(lvl)
	acc0.IsNTT, acc1.IsNTT = true, true
	cur := ct
	for k := 0; k <= maxRot; k++ {
		if k > 0 {
			var err error
			cur, err = ev.Rotate(cur, 1)
			if err != nil {
				return nil, err
			}
		}
		ed, ok := diags[k]
		if !ok {
			continue
		}
		if fused {
			rq.MulCoeffsAddLazy(acc0, cur.C0, ed.q, lvl)
			rq.MulCoeffsAddLazy(acc1, cur.C1, ed.q, lvl)
		} else {
			rq.MulCoeffsAdd(acc0, cur.C0, ed.q, lvl)
			rq.MulCoeffsAdd(acc1, cur.C1, ed.q, lvl)
		}
	}
	if fused {
		rq.ReduceLazy(acc0, lvl)
		rq.ReduceLazy(acc1, lvl)
	}
	return &Ciphertext{C0: acc0, C1: acc1, Scale: ct.Scale * ptScale}, nil
}
