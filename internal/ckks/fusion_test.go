package ckks

import (
	"math/rand"
	"testing"
)

// withFusion runs f under the requested fusion mode and restores the
// process-wide default afterwards.
func withFusion(t *testing.T, on bool, f func()) {
	t.Helper()
	prev := FusionEnabled()
	SetFusion(on)
	defer SetFusion(prev)
	f()
}

// Fusion changes kernel shape, not arithmetic: every mod-q operation in the
// fused path is exact, so fused and unfused evaluation of the same
// ciphertext must produce bit-identical polynomials.

func TestLinearTransformFusedMatchesUnfusedExactly(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(40))
	lt := randomSparseLT(r, tc.params.Slots(), []int{0, 1, 2, 3, 5, 8})
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, lt.Rotations())

	u := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, u)

	var fusedOut, plainOut *Ciphertext
	withFusion(t, true, func() {
		out, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
		if err != nil {
			t.Fatal(err)
		}
		fusedOut = out
	})
	withFusion(t, false, func() {
		out, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
		if err != nil {
			t.Fatal(err)
		}
		plainOut = out
	})

	if !fusedOut.C0.Equal(plainOut.C0) || !fusedOut.C1.Equal(plainOut.C1) {
		t.Fatal("fused and unfused hoisted LT differ bit-for-bit")
	}
	if fusedOut.Scale != plainOut.Scale {
		t.Fatalf("scale mismatch: %g vs %g", fusedOut.Scale, plainOut.Scale)
	}

	// And both must still be correct.
	got := tc.decryptVec(tc.eval.Rescale(fusedOut))
	if e := maxErr(got, lt.Apply(u)); e > 1e-4 {
		t.Fatalf("fused hoisted LT error %g", e)
	}
}

func TestRotateFusedMatchesUnfusedExactly(t *testing.T) {
	// Rotate exercises the fused gadget product (KeyMult PAccum) through
	// keySwitch without the linear-transform machinery on top.
	tc := newTestContext(t, TestParameters())
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{3})
	r := rand.New(rand.NewSource(41))
	u := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, u)

	var fusedOut, plainOut *Ciphertext
	withFusion(t, true, func() {
		out, err := tc.eval.Rotate(ct, 3)
		if err != nil {
			t.Fatal(err)
		}
		fusedOut = out
	})
	withFusion(t, false, func() {
		out, err := tc.eval.Rotate(ct, 3)
		if err != nil {
			t.Fatal(err)
		}
		plainOut = out
	})
	if !fusedOut.C0.Equal(plainOut.C0) || !fusedOut.C1.Equal(plainOut.C1) {
		t.Fatal("fused and unfused Rotate differ bit-for-bit")
	}
}

func TestAddManyMatchesAddChain(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(42))
	slots := tc.params.Slots()

	var cts []*Ciphertext
	var want []complex128
	for k := 0; k < 5; k++ {
		u := randomComplex(r, slots, 1)
		cts = append(cts, tc.encryptVec(t, u))
		if want == nil {
			want = make([]complex128, slots)
		}
		for j := range want {
			want[j] += u[j]
		}
	}

	var fusedOut, plainOut *Ciphertext
	withFusion(t, true, func() { fusedOut = tc.eval.AddMany(cts) })
	withFusion(t, false, func() { plainOut = tc.eval.AddMany(cts) })

	if !fusedOut.C0.Equal(plainOut.C0) || !fusedOut.C1.Equal(plainOut.C1) {
		t.Fatal("fused AddMany differs from chained Add")
	}
	if e := maxErr(tc.decryptVec(fusedOut), want); e > 1e-4 {
		t.Fatalf("AddMany error %g", e)
	}
}

func TestMulConstAccumMatchesUnfusedWithinPrecision(t *testing.T) {
	// The fused path rescales the accumulated sum once while the unfused
	// path rescales nothing here (both return the pre-rescale value at
	// scale*constScale); the only rounding difference is per-term constant
	// encoding, identical in both. So outputs agree exactly.
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(43))
	slots := tc.params.Slots()

	var cts []*Ciphertext
	consts := []float64{0.5, -1.25, 0.75}
	want := make([]complex128, slots)
	for range consts {
		u := randomComplex(r, slots, 1)
		cts = append(cts, tc.encryptVec(t, u))
		for j := range want {
			want[j] += u[j] * complex(consts[len(cts)-1], 0)
		}
	}
	lvl := cts[0].Level()
	constScale := float64(tc.params.RingQ().Moduli[lvl].Q)

	var fusedOut, plainOut *Ciphertext
	withFusion(t, true, func() { fusedOut = tc.eval.MulConstAccum(cts, consts, constScale) })
	withFusion(t, false, func() { plainOut = tc.eval.MulConstAccum(cts, consts, constScale) })

	if !fusedOut.C0.Equal(plainOut.C0) || !fusedOut.C1.Equal(plainOut.C1) {
		t.Fatal("fused MulConstAccum differs from MultConst+Add composition")
	}
	got := tc.decryptVec(tc.eval.Rescale(fusedOut))
	if e := maxErr(got, want); e > 1e-3 {
		t.Fatalf("MulConstAccum error %g", e)
	}
}
