package ckks

import (
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// Failure-injection and adversarial-condition tests: the scheme must fail
// loudly (panic on misuse) or safely (garbage without the right key), never
// silently produce near-correct results for an attacker.

func TestDecryptWithWrongKeyIsGarbage(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(100))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)

	wrongKG := NewKeyGenerator(tc.params, 999)
	wrongSk := wrongKG.GenSecretKey()
	wrongDec := NewDecryptor(tc.params, wrongSk)
	got := tc.enc.Decode(wrongDec.DecryptNew(ct).Value, ct.Scale)

	// The wrong key must not recover anything close to the message: with a
	// uniform mask the decoded values are enormous relative to the inputs.
	close := 0
	for i := range v {
		if cmplx.Abs(got[i]-v[i]) < 1 {
			close++
		}
	}
	if close > len(v)/100 {
		t.Fatalf("%d/%d slots decrypted near-correctly under the wrong key", close, len(v))
	}
}

func TestTamperedCiphertextDecryptsWrong(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(101))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	// Flip one residue in C0.
	ct.C0.Coeffs[0][17] ^= 1
	got := tc.decryptVec(ct)
	same := 0
	for i := range v {
		if cmplx.Abs(got[i]-v[i]) < 1e-9 {
			same++
		}
	}
	if same == len(v) {
		t.Fatal("tampering had no effect on decryption")
	}
}

func TestFreshCiphertextsDiffer(t *testing.T) {
	// Probabilistic encryption: the same message encrypts to different
	// ciphertexts.
	tc := newTestContext(t, TestParameters())
	v := []complex128{1, 2, 3}
	ct1, _ := tc.enc.Encode(v, tc.params.MaxLevel(), tc.params.DefaultScale())
	a := tc.encr.EncryptNew(&Plaintext{Value: ct1, Scale: tc.params.DefaultScale()}, tc.pk)
	b := tc.encr.EncryptNew(&Plaintext{Value: ct1, Scale: tc.params.DefaultScale()}, tc.pk)
	if a.C0.Equal(b.C0) || a.C1.Equal(b.C1) {
		t.Fatal("two encryptions of the same message are identical")
	}
}

func TestRescaleAtLevelZeroPanics(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	ct := tc.eval.DropLevel(tc.encryptVec(t, []complex128{1}), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("rescale at level 0 must panic")
		}
	}()
	tc.eval.Rescale(ct)
}

func TestAddScaleMismatchPanics(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	a := tc.encryptVec(t, []complex128{1})
	b := a.CopyNew()
	b.Scale *= 2
	defer func() {
		if recover() == nil {
			t.Fatal("adding ciphertexts at incompatible scales must panic")
		}
	}()
	tc.eval.Add(a, b)
}

// Property-based homomorphism checks over random messages.

func TestHomomorphismProperties(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	slots := tc.params.Slots()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := randomComplex(r, slots, 1)
		v := randomComplex(r, slots, 1)
		ctU, ctV := tc.encryptVec(t, u), tc.encryptVec(t, v)

		// Additive homomorphism + commutativity.
		s1 := tc.decryptVec(tc.eval.Add(ctU, ctV))
		s2 := tc.decryptVec(tc.eval.Add(ctV, ctU))
		for i := range u {
			if cmplx.Abs(s1[i]-(u[i]+v[i])) > 1e-5 || cmplx.Abs(s1[i]-s2[i]) > 1e-7 {
				return false
			}
		}
		// a - a = 0.
		z := tc.decryptVec(tc.eval.Sub(ctU, ctU))
		for i := range z {
			if cmplx.Abs(z[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestMulCommutesWithPlain(t *testing.T) {
	// PMULT(u, p) must agree with HMULT(u, Enc(p)).
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(103))
	u := randomComplex(r, tc.params.Slots(), 1)
	p := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, u)

	ptp, _ := tc.enc.Encode(p, ct.Level(), tc.params.DefaultScale())
	viaPlain := tc.decryptVec(tc.eval.Rescale(tc.eval.MulPlain(ct, &Plaintext{Value: ptp, Scale: tc.params.DefaultScale()})))
	viaCipher := tc.decryptVec(tc.eval.Rescale(tc.eval.MulRelin(ct, tc.encryptVec(t, p), nil)))
	if e := maxErr(viaPlain, viaCipher); e > 1e-4 {
		t.Fatalf("PMULT and HMULT disagree by %g", e)
	}
}

func TestRotationComposition(t *testing.T) {
	// HROT(HROT(ct, a), b) == HROT(ct, a+b).
	tc := newTestContext(t, TestParameters())
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{3, 4, 7})
	r := rand.New(rand.NewSource(104))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	r3, _ := tc.eval.Rotate(ct, 3)
	r34, _ := tc.eval.Rotate(r3, 4)
	r7, _ := tc.eval.Rotate(ct, 7)
	if e := maxErr(tc.decryptVec(r34), tc.decryptVec(r7)); e > 1e-4 {
		t.Fatalf("rotation composition violated by %g", e)
	}
}
