// Package rns provides residue-number-system utilities on top of the prime
// chains used by RNS-CKKS: the fast (approximate) basis conversion BConv of
// §II-B, rounding division by the last modulus (rescaling), and the constant
// vectors (P mod q_i, P^{-1} mod q_i) used by ModUp/ModDown key switching.
package rns

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

// BasisConverter performs the fast base conversion of a value represented in
// basis "from" (moduli q_0..q_{k-1}, product Q) into basis "to": for each
// target prime p_j it computes
//
//	out_j = Σ_i [x·(Q/q_i)^{-1}]_{q_i} · (Q/q_i)  mod p_j ,
//
// which equals x + e·Q for some 0 ≤ e < k (the standard approximate BConv;
// the small multiple of Q is absorbed by the noise in CKKS). Computing BConv
// is "mostly equivalent to a matrix-matrix mult between a predefined α×L
// BConv matrix and the L×N input" (§II-B), which is exactly the loop below.
type BasisConverter struct {
	From []modarith.Modulus
	To   []modarith.Modulus

	qHatInv      []uint64   // [ (Q/q_i)^{-1} ]_{q_i}
	qHatInvShoup []uint64   // Shoup companions for the per-limb premultiply
	qHatModTo    [][]uint64 // qHatModTo[j][i] = (Q/q_i) mod p_j
}

// NewBasisConverter precomputes the conversion constants.
func NewBasisConverter(from, to []modarith.Modulus) (*BasisConverter, error) {
	if len(from) == 0 || len(to) == 0 {
		return nil, fmt.Errorf("rns: empty basis")
	}
	k := len(from)
	bc := &BasisConverter{
		From:         from,
		To:           to,
		qHatInv:      make([]uint64, k),
		qHatInvShoup: make([]uint64, k),
		qHatModTo:    make([][]uint64, len(to)),
	}
	for i, qi := range from {
		// Q/q_i mod q_i = prod of the other primes mod q_i.
		prod := uint64(1)
		for l, ql := range from {
			if l != i {
				prod = qi.Mul(prod, ql.Q%qi.Q)
			}
		}
		inv, err := qi.Inv(prod)
		if err != nil {
			return nil, fmt.Errorf("rns: duplicate primes in basis (q_%d)", i)
		}
		bc.qHatInv[i] = inv
		bc.qHatInvShoup[i] = qi.ShoupPrecomp(inv)
	}
	for j, pj := range to {
		row := make([]uint64, k)
		for i := range from {
			prod := uint64(1)
			for l, ql := range from {
				if l != i {
					prod = pj.Mul(prod, ql.Q%pj.Q)
				}
			}
			row[i] = prod
		}
		bc.qHatModTo[j] = row
	}
	return bc, nil
}

// Convert converts coefficient-domain residue rows in (len(From) rows of
// equal length) into out (len(To) rows). out must not alias in.
func (bc *BasisConverter) Convert(out, in [][]uint64) {
	if len(in) != len(bc.From) || len(out) != len(bc.To) {
		panic(fmt.Sprintf("rns: Convert shape mismatch: in %d/%d, out %d/%d",
			len(in), len(bc.From), len(out), len(bc.To)))
	}
	n := len(in[0])
	k := len(bc.From)
	// tmp_i = [x · qHatInv_i]_{q_i}
	tmp := make([][]uint64, k)
	for i := 0; i < k; i++ {
		qi := bc.From[i]
		row := make([]uint64, n)
		src := in[i]
		w, ws := bc.qHatInv[i], bc.qHatInvShoup[i]
		for c := 0; c < n; c++ {
			row[c] = qi.MulShoup(src[c], w, ws)
		}
		tmp[i] = row
	}
	for j := range bc.To {
		pj := bc.To[j]
		dst := out[j]
		hat := bc.qHatModTo[j]
		for c := 0; c < n; c++ {
			acc := uint64(0)
			for i := 0; i < k; i++ {
				acc = pj.Add(acc, pj.Mul(tmp[i][c]%pj.Q, hat[i]))
			}
			dst[c] = acc
		}
	}
}

// DivRoundByLastModulus computes the rounding division of a coefficient-
// domain RNS value by its last modulus q_L and drops that limb:
//
//	out_i = [ (x + q_L/2 − [x + q_L/2]_{q_L}) / q_L ]_{q_i} ,  i < L,
//
// i.e. out = round(x / q_L) exactly, limb-wise. rows carries level+1 limbs
// of equal length; the first level rows are updated in place and the last
// row becomes dead.
func DivRoundByLastModulus(moduli []modarith.Modulus, rows [][]uint64) {
	l := len(rows) - 1
	if l < 1 {
		panic("rns: cannot rescale a single-limb value")
	}
	qL := moduli[l]
	half := qL.QHalf
	n := len(rows[0])
	// t = [x + q_L/2]_{q_L}
	t := make([]uint64, n)
	for c := 0; c < n; c++ {
		t[c] = qL.Add(rows[l][c], half)
	}
	for i := 0; i < l; i++ {
		qi := moduli[i]
		inv := qi.MustInv(qL.Q % qi.Q)
		invS := qi.ShoupPrecomp(inv)
		halfModQi := half % qi.Q
		row := rows[i]
		for c := 0; c < n; c++ {
			// (x + half) mod q_i  −  t mod q_i, then exact division.
			v := qi.Sub(qi.Add(row[c], halfModQi), t[c]%qi.Q)
			row[c] = qi.MulShoup(v, inv, invS)
		}
	}
}

// ProductMod returns (∏ primes) mod each modulus of target.
func ProductMod(primes []modarith.Modulus, target []modarith.Modulus) []uint64 {
	out := make([]uint64, len(target))
	for j, tj := range target {
		prod := uint64(1)
		for _, p := range primes {
			prod = tj.Mul(prod, p.Q%tj.Q)
		}
		out[j] = prod
	}
	return out
}

// ProductInvMod returns (∏ primes)^{-1} mod each modulus of target. The
// product must be invertible (distinct primes).
func ProductInvMod(primes []modarith.Modulus, target []modarith.Modulus) []uint64 {
	out := ProductMod(primes, target)
	for j, tj := range target {
		out[j] = tj.MustInv(out[j])
	}
	return out
}
