package report

import (
	"math"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-longer-name", "2")
	tbl.AddNote("footnote %d", 7)
	s := tbl.String()
	for _, want := range []string{"Demo", "name", "a-longer-name", "footnote 7", "---"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: both value cells start at the same offset.
	lines := strings.Split(s, "\n")
	var rows []string
	for _, l := range lines {
		if strings.HasPrefix(l, "alpha") || strings.HasPrefix(l, "a-longer-name") {
			rows = append(rows, l)
		}
	}
	if len(rows) != 2 || strings.Index(rows[0], "1") != strings.Index(rows[1], "2") {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal("F")
	}
	if Ms(1.5e6) != "1.50ms" {
		t.Fatal("Ms")
	}
	if GB(2.5e9) != "2.50GB" {
		t.Fatal("GB")
	}
	if X(1.62) != "1.62x" {
		t.Fatal("X")
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2,8) = %f", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatal("geomean of empty should be 0")
	}
	if g := Geomean([]float64{5}); math.Abs(g-5) > 1e-12 {
		t.Fatal("geomean of singleton")
	}
}

func TestCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("x,y", `q"z`)
	got := tbl.CSV()
	want := "a,b\n\"x,y\",\"q\"\"z\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
