package ckks

import (
	"math"
	"math/rand"
	"testing"
)

func TestChebyshevInterpolationPlain(t *testing.T) {
	for _, tc := range []struct {
		f      func(float64) float64
		a, b   float64
		degree int
		tol    float64
	}{
		{math.Sin, -3, 3, 31, 1e-10},
		{math.Exp, -1, 1, 15, 1e-9},
		{func(x float64) float64 { return math.Cos(2 * math.Pi * x) }, -1, 1, 31, 1e-9},
	} {
		coeffs := ChebyshevInterpolation(tc.f, tc.a, tc.b, tc.degree)
		for i := 0; i <= 100; i++ {
			x := tc.a + (tc.b-tc.a)*float64(i)/100
			got := EvalChebyshevSeries(coeffs, tc.a, tc.b, x)
			if d := math.Abs(got - tc.f(x)); d > tc.tol {
				t.Fatalf("interpolation error %g at x=%g (deg %d)", d, x, tc.degree)
			}
		}
	}
}

func TestSplitChebyshev(t *testing.T) {
	// p = q·T_split + r must hold as functions.
	coeffs := []float64{0.3, -1.2, 0.7, 0.01, -0.4, 0.9, 0.05, -0.2, 0.6}
	split := 4
	quo, rem := splitChebyshev(coeffs, split)
	chebT := func(n int, t float64) float64 { return math.Cos(float64(n) * math.Acos(math.Max(-1, math.Min(1, t)))) }
	evalSeries := func(c []float64, t float64) float64 {
		s := 0.0
		for i, ci := range c {
			s += ci * chebT(i, t)
		}
		return s
	}
	for i := 0; i <= 50; i++ {
		tt := -1 + 2*float64(i)/50
		lhs := evalSeries(coeffs, tt)
		rhs := evalSeries(quo, tt)*chebT(split, tt) + evalSeries(rem, tt)
		if math.Abs(lhs-rhs) > 1e-12 {
			t.Fatalf("split identity violated at t=%g: %g vs %g", tt, lhs, rhs)
		}
	}
}

func TestEvaluateChebyshevHomomorphic(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(40))
	a, b := -1.0, 1.0
	f := func(x float64) float64 { return math.Sin(2 * x) }
	coeffs := ChebyshevInterpolation(f, a, b, 15)

	slots := tc.params.Slots()
	u := make([]complex128, slots)
	want := make([]complex128, slots)
	for i := range u {
		x := a + (b-a)*r.Float64()
		u[i] = complex(x, 0)
		want[i] = complex(f(x), 0)
	}
	ct := tc.encryptVec(t, u)
	out := tc.eval.EvaluateChebyshev(ct, coeffs, a, b)
	if e := maxErr(tc.decryptVec(out), want); e > 1e-3 {
		t.Fatalf("homomorphic Chebyshev error %g", e)
	}
}

func TestEvaluateChebyshevDegree31(t *testing.T) {
	// Deeper series exercising the recursive BSGS splitting; needs a deep
	// chain with uniform prime sizes (EvaluateChebyshev's contract).
	tc := newTestContext(t, ParametersLiteral{
		LogN:     11,
		LogQ:     append([]int{60}, repeatInts(45, 12)...),
		LogP:     []int{55, 55},
		LogScale: 45,
		HDense:   64,
		HSparse:  16,
	})
	r := rand.New(rand.NewSource(41))
	a, b := -1.0, 1.0
	f := func(x float64) float64 { return math.Cos(2 * math.Pi * x / 8) }
	coeffs := ChebyshevInterpolation(f, a, b, 31)

	slots := tc.params.Slots()
	u := make([]complex128, slots)
	want := make([]complex128, slots)
	for i := range u {
		x := a + (b-a)*r.Float64()
		u[i] = complex(x, 0)
		want[i] = complex(f(x), 0)
	}
	ct := tc.encryptVec(t, u)
	out := tc.eval.EvaluateChebyshev(ct, coeffs, a, b)
	if e := maxErr(tc.decryptVec(out), want); e > 1e-3 {
		t.Fatalf("deg-31 Chebyshev error %g", e)
	}
}
