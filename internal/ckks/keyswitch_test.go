package ckks

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/par"
	"github.com/anaheim-sim/anaheim/internal/ring"
)

// TestKeySwitchAllocs pins the steady-state allocation count of the full
// ModUp -> KeyMult -> ModDown pipeline: with the BConv scratch, the
// Decompose row headers, and the digit polynomials all pooled, the only
// remaining allocations are the two result polynomials and the small
// decomposed bookkeeping. Runs serially — the par dispatch allocates chunk
// closures, which is noise here, not key-switch state.
func TestKeySwitchAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation inflates allocation counts")
	}
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(11))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))
	lvl := ct.Level()
	// Warm the polynomial, scratch, and row-header pools.
	for i := 0; i < 4; i++ {
		d0, d1 := tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk)
		tc.params.RingQ().PutPoly(d0)
		tc.params.RingQ().PutPoly(d1)
	}
	rq := tc.params.RingQ()
	allocs := testing.AllocsPerRun(20, func() {
		d0, d1 := tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk)
		rq.PutPoly(d0)
		rq.PutPoly(d1)
	})
	// Steady state measures ~45: two NewPoly results (3 allocs each), the
	// decomposed bookkeeping, plus per-call kernel closures and Truncated
	// headers in the gadget product. The BConv tmp rows, the Decompose row
	// headers, and every scratch polynomial are pooled; if any of those
	// regress to per-call allocation the count jumps by O(limbs · digits)
	// (the retired kernel measured ~65 here).
	if allocs > 48 {
		t.Fatalf("keySwitch allocates %.1f objects/op, want <= 48", allocs)
	}
}

// TestKeySwitchConcurrentEquivalence hammers keySwitch from many goroutines
// (the BasisConverter scratch pool, row-header pool, and polynomial pools
// are all shared) and checks every result against a serial reference, under
// both fusion modes. Run with -race in CI.
func TestKeySwitchConcurrentEquivalence(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(12))
	ct := tc.encryptVec(t, randomComplex(r, tc.params.Slots(), 1))
	lvl := ct.Level()
	prev := FusionEnabled()
	defer SetFusion(prev)
	for _, fused := range []bool{true, false} {
		SetFusion(fused)
		want0, want1 := tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk)
		var wg sync.WaitGroup
		errs := make(chan string, 8)
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 5; i++ {
					d0, d1 := tc.eval.keySwitch(ct.C1, lvl, tc.keys.Rlk)
					if !d0.Equal(want0) || !d1.Equal(want1) {
						errs <- "concurrent keySwitch result differs from serial reference"
						return
					}
					tc.params.RingQ().PutPoly(d0)
					tc.params.RingQ().PutPoly(d1)
				}
			}()
		}
		wg.Wait()
		close(errs)
		for msg := range errs {
			t.Fatalf("fused=%v: %s", fused, msg)
		}
	}
}

// TestModDownLazyMatchesExact checks the fused ModDown (ConvertLazy ->
// NTTLazy -> lazy-subtrahend epilogue) against the exact chain on the same
// inputs.
func TestModDownLazyMatchesExact(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	rq, rp := tc.params.RingQ(), tc.params.RingP()
	lvl := tc.params.MaxLevel()
	s := ring.NewSampler(99)
	uq := s.UniformPoly(rq, lvl, true)
	up := s.UniformPoly(rp, rp.MaxLevel(), true)

	prev := FusionEnabled()
	defer SetFusion(prev)
	SetFusion(true)
	fused := tc.eval.ModDown(uq, up, lvl)
	SetFusion(false)
	exact := tc.eval.ModDown(uq, up, lvl)
	if !fused.Equal(exact) {
		t.Fatal("fused (lazy-chain) ModDown differs from exact ModDown")
	}
}
