package ntt

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/anaheim-sim/anaheim/internal/modarith"
)

func newTestTables(t testing.TB, logN int) *Tables {
	t.Helper()
	primes, err := modarith.GenerateNTTPrimes(55, logN, 1)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := NewTables(modarith.MustModulus(primes[0]), logN)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func randPoly(r *rand.Rand, n int, q uint64) []uint64 {
	a := make([]uint64, n)
	for i := range a {
		a[i] = r.Uint64() % q
	}
	return a
}

// naiveNegacyclic computes the schoolbook negacyclic convolution
// c = a*b mod (X^N+1, q).
func naiveNegacyclic(a, b []uint64, mod modarith.Modulus) []uint64 {
	n := len(a)
	c := make([]uint64, n)
	for i := 0; i < n; i++ {
		if a[i] == 0 {
			continue
		}
		for j := 0; j < n; j++ {
			p := mod.Mul(a[i], b[j])
			k := i + j
			if k < n {
				c[k] = mod.Add(c[k], p)
			} else {
				c[k-n] = mod.Sub(c[k-n], p)
			}
		}
	}
	return c
}

func TestRoundTrip(t *testing.T) {
	for _, logN := range []int{3, 6, 10, 13} {
		tbl := newTestTables(t, logN)
		r := rand.New(rand.NewSource(int64(logN)))
		a := randPoly(r, tbl.N, tbl.Mod.Q)
		orig := append([]uint64(nil), a...)
		tbl.Forward(a)
		tbl.Inverse(a)
		for i := range a {
			if a[i] != orig[i] {
				t.Fatalf("logN=%d: round trip differs at %d: %d != %d", logN, i, a[i], orig[i])
			}
		}
	}
}

func TestConvolutionMatchesSchoolbook(t *testing.T) {
	for _, logN := range []int{3, 5, 8} {
		tbl := newTestTables(t, logN)
		r := rand.New(rand.NewSource(42))
		a := randPoly(r, tbl.N, tbl.Mod.Q)
		b := randPoly(r, tbl.N, tbl.Mod.Q)
		want := naiveNegacyclic(a, b, tbl.Mod)

		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tbl.Forward(fa)
		tbl.Forward(fb)
		c := make([]uint64, tbl.N)
		tbl.MulCoeffs(c, fa, fb)
		tbl.Inverse(c)
		for i := range c {
			if c[i] != want[i] {
				t.Fatalf("logN=%d: convolution differs at %d: got %d want %d", logN, i, c[i], want[i])
			}
		}
	}
}

func TestLinearity(t *testing.T) {
	tbl := newTestTables(t, 6)
	mod := tbl.Mod
	f := func(seed int64, s1, s2 uint32) bool {
		r := rand.New(rand.NewSource(seed))
		a := randPoly(r, tbl.N, mod.Q)
		b := randPoly(r, tbl.N, mod.Q)
		c1, c2 := uint64(s1)%mod.Q, uint64(s2)%mod.Q
		// NTT(c1*a + c2*b) == c1*NTT(a) + c2*NTT(b)
		lhs := make([]uint64, tbl.N)
		for i := range lhs {
			lhs[i] = mod.Add(mod.Mul(c1, a[i]), mod.Mul(c2, b[i]))
		}
		tbl.Forward(lhs)
		fa := append([]uint64(nil), a...)
		fb := append([]uint64(nil), b...)
		tbl.Forward(fa)
		tbl.Forward(fb)
		for i := range lhs {
			rhs := mod.Add(mod.Mul(c1, fa[i]), mod.Mul(c2, fb[i]))
			if lhs[i] != rhs {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConstantPolynomial(t *testing.T) {
	// NTT of the constant polynomial c is the all-c vector.
	tbl := newTestTables(t, 8)
	a := make([]uint64, tbl.N)
	a[0] = 7
	tbl.Forward(a)
	for i := range a {
		if a[i] != 7 {
			t.Fatalf("NTT(const 7)[%d] = %d", i, a[i])
		}
	}
}

func TestMonomialShiftIsNegacyclic(t *testing.T) {
	// X^(N-1) * X = X^N = -1 mod X^N+1.
	tbl := newTestTables(t, 4)
	mod := tbl.Mod
	a := make([]uint64, tbl.N) // X^(N-1)
	a[tbl.N-1] = 1
	b := make([]uint64, tbl.N) // X
	b[1] = 1
	tbl.Forward(a)
	tbl.Forward(b)
	c := make([]uint64, tbl.N)
	tbl.MulCoeffs(c, a, b)
	tbl.Inverse(c)
	if c[0] != mod.Q-1 {
		t.Fatalf("c[0] = %d, want q-1 (i.e. -1)", c[0])
	}
	for i := 1; i < tbl.N; i++ {
		if c[i] != 0 {
			t.Fatalf("c[%d] = %d, want 0", i, c[i])
		}
	}
}

func TestRejectsWrongLength(t *testing.T) {
	tbl := newTestTables(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("Forward on wrong-length slice should panic")
		}
	}()
	tbl.Forward(make([]uint64, 3))
}

func BenchmarkForwardN4096(b *testing.B) {
	tbl := newTestTables(b, 12)
	r := rand.New(rand.NewSource(9))
	a := randPoly(r, tbl.N, tbl.Mod.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Forward(a)
	}
}

func BenchmarkInverseN4096(b *testing.B) {
	tbl := newTestTables(b, 12)
	r := rand.New(rand.NewSource(9))
	a := randPoly(r, tbl.N, tbl.Mod.Q)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Inverse(a)
	}
}
