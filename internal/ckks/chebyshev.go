package ckks

import (
	"math"
)

// ChebyshevInterpolation approximates f on [a, b] by a degree-"degree"
// Chebyshev series (coefficients in the Chebyshev basis of the affinely
// mapped variable t ∈ [-1, 1]).
func ChebyshevInterpolation(f func(float64) float64, a, b float64, degree int) []float64 {
	n := degree + 1
	nodes := make([]float64, n)
	fv := make([]float64, n)
	for k := 0; k < n; k++ {
		t := math.Cos(math.Pi * (float64(k) + 0.5) / float64(n))
		nodes[k] = t
		x := (b-a)/2*t + (b+a)/2
		fv[k] = f(x)
	}
	coeffs := make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += fv[k] * math.Cos(math.Pi*float64(j)*(float64(k)+0.5)/float64(n))
		}
		coeffs[j] = 2 * sum / float64(n)
	}
	coeffs[0] /= 2
	return coeffs
}

// EvalChebyshevSeries evaluates a Chebyshev series on plaintext input
// (reference for tests): Σ c_j T_j(t) with t = (2x-a-b)/(b-a).
func EvalChebyshevSeries(coeffs []float64, a, b, x float64) float64 {
	t := (2*x - a - b) / (b - a)
	// Clenshaw recurrence.
	var b0, b1 float64
	for j := len(coeffs) - 1; j >= 1; j-- {
		b0, b1 = coeffs[j]+2*t*b0-b1, b0
	}
	return coeffs[0] + t*b0 - b1
}

// splitChebyshev divides the series p by T_split: p = q·T_split + r using
// 2·T_a·T_b = T_{a+b} + T_{|a-b|}; requires split ≥ (deg+1)/2 so all folded
// indices stay in range.
func splitChebyshev(coeffs []float64, split int) (quo, rem []float64) {
	rem = make([]float64, split)
	copy(rem, coeffs[:split])
	quo = make([]float64, len(coeffs)-split)
	quo[0] = coeffs[split]
	for i := split + 1; i < len(coeffs); i++ {
		quo[i-split] = 2 * coeffs[i]
		rem[2*split-i] -= coeffs[i]
	}
	return quo, rem
}

// chebyshevPowers builds the Chebyshev basis ciphertexts T_1..T_{baby-1} and
// the giant steps T_baby, T_{2·baby}, ... T_{2^k·baby} needed to evaluate a
// series of the given degree via BSGS, using T_{2k} = 2T_k²-1 and
// T_{i+j} = 2·T_i·T_j − T_{|i−j|}.
func (ev *Evaluator) chebyshevPowers(t1 *Ciphertext, degree, baby int) map[int]*Ciphertext {
	pow := map[int]*Ciphertext{1: t1}
	var build func(k int) *Ciphertext
	build = func(k int) *Ciphertext {
		if ct, ok := pow[k]; ok {
			return ct
		}
		// Split k = i + j with i = largest power of two ≤ k/2... prefer
		// halves to minimize depth.
		i := k / 2
		j := k - i
		ti := build(i)
		tj := build(j)
		prod := ev.Rescale(ev.MulRelin(ti, tj, nil))
		two := ev.addCiphertexts(prod, prod)
		var res *Ciphertext
		if i == j {
			res = ev.AddConst(two, -1) // 2T_i² − T_0
		} else {
			td := build(j - i)
			res = ev.Sub(two, ev.matchLevel(td, two))
		}
		pow[k] = res
		return res
	}
	for k := 2; k < baby; k++ {
		build(k)
	}
	for g := baby; g <= degree; g <<= 1 {
		build(g)
	}
	return pow
}

// addCiphertexts is Add without the scale check (operands are identical).
func (ev *Evaluator) addCiphertexts(a, b *Ciphertext) *Ciphertext { return ev.Add(a, b) }

// matchLevel drops a to b's level if needed.
func (ev *Evaluator) matchLevel(a, b *Ciphertext) *Ciphertext {
	if a.Level() > b.Level() {
		return ev.DropLevel(a, b.Level())
	}
	return a
}

// EvaluateChebyshev homomorphically evaluates the Chebyshev series on a
// ciphertext whose slots lie in [a, b]. Consumes ~2+log2(degree) levels.
// The primes spanned by the evaluation must have near-uniform sizes (as in
// the EvalMod region of a bootstrapping chain); otherwise the scales of
// sibling BSGS branches diverge beyond the additive tolerance.
func (ev *Evaluator) EvaluateChebyshev(ct *Ciphertext, coeffs []float64, a, b float64) *Ciphertext {
	rq := ev.params.RingQ()
	// t = (2x - a - b)/(b - a), computed with one constant mult + add.
	lvl := ct.Level()
	t1 := ev.MultConst(ct, 2/(b-a), float64(rq.Moduli[lvl].Q))
	t1 = ev.Rescale(t1)
	t1 = ev.AddConst(t1, -(a+b)/(b-a))

	degree := len(coeffs) - 1
	if degree == 0 {
		out := ev.MultConst(t1, 0, float64(rq.Moduli[t1.Level()].Q))
		out = ev.Rescale(out)
		return ev.AddConst(out, coeffs[0])
	}
	baby := 1 << ((bitsLen(degree) + 1) / 2)
	if baby < 2 {
		baby = 2
	}
	pow := ev.chebyshevPowers(t1, degree, baby)

	var eval func(c []float64) *Ciphertext
	eval = func(c []float64) *Ciphertext {
		deg := len(c) - 1
		if deg < baby {
			return ev.linearCombination(c, pow)
		}
		split := 1 << (bitsLen(deg) - 1)
		if split < baby {
			split = baby
		}
		quo, rem := splitChebyshev(c, split)
		qc := eval(quo)
		rc := eval(rem)
		ts := pow[split]
		prod := ev.Rescale(ev.MulRelin(qc, ev.matchLevel(ts, qc), nil))
		return ev.Add(prod, ev.matchLevel(rc, prod))
	}
	return eval(coeffs)
}

// linearCombination computes Σ c_i·T_i for i < baby from the power basis,
// encoding the constants at the dropped prime's scale so a single Rescale
// lands all terms on a common scale.
func (ev *Evaluator) linearCombination(c []float64, pow map[int]*Ciphertext) *Ciphertext {
	rq := ev.params.RingQ()
	// Find the lowest level among the needed powers.
	lvl := ev.params.MaxLevel()
	for i := 1; i < len(c); i++ {
		if c[i] != 0 && pow[i].Level() < lvl {
			lvl = pow[i].Level()
		}
	}
	qd := float64(rq.Moduli[lvl].Q)
	var acc *Ciphertext
	for i := 1; i < len(c); i++ {
		if c[i] == 0 {
			continue
		}
		term := ev.MultConst(ev.DropLevel(pow[i], lvl), c[i], qd)
		if acc == nil {
			acc = term
		} else {
			acc = ev.Add(acc, term)
		}
	}
	if acc == nil {
		// Only the constant term: manufacture a zero at the right scale.
		t1 := pow[1]
		acc = ev.MultConst(ev.DropLevel(t1, lvl), 0, qd)
	}
	acc = ev.Rescale(acc)
	return ev.AddConst(acc, c[0])
}

func bitsLen(x int) int {
	n := 0
	for x > 0 {
		x >>= 1
		n++
	}
	return n
}
