package par

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		var sum atomic.Int64
		seen := make([]atomic.Bool, n)
		ForEach(n, func(i int) {
			if seen[i].Swap(true) {
				t.Errorf("n=%d: index %d visited twice", n, i)
			}
			sum.Add(int64(i))
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum.Load() != want {
			t.Fatalf("n=%d: sum=%d want %d", n, sum.Load(), want)
		}
	}
}

func TestForEachNested(t *testing.T) {
	// Nested parallel sections must not deadlock and must still cover every
	// index (inner sections fall back to inline execution when the pool is
	// saturated).
	var count atomic.Int64
	ForEach(8, func(i int) {
		ForEach(16, func(j int) {
			count.Add(1)
		})
	})
	if count.Load() != 8*16 {
		t.Fatalf("nested count=%d want %d", count.Load(), 8*16)
	}
}

func TestForEachChunkCoversAllIndices(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		var sum atomic.Int64
		var calls atomic.Int64
		seen := make([]atomic.Bool, n)
		ForEachChunk(n, func(lo, hi int) {
			calls.Add(1)
			if lo >= hi && n > 0 {
				t.Errorf("n=%d: empty chunk [%d,%d)", n, lo, hi)
			}
			for i := lo; i < hi; i++ {
				if seen[i].Swap(true) {
					t.Errorf("n=%d: index %d visited twice", n, i)
				}
				sum.Add(int64(i))
			}
		})
		want := int64(n) * int64(n-1) / 2
		if n == 0 {
			want = 0
		}
		if sum.Load() != want {
			t.Fatalf("n=%d: sum=%d want %d", n, sum.Load(), want)
		}
		if w := int64(Workers()); n > 0 && calls.Load() > w {
			t.Fatalf("n=%d: %d chunks for pool width %d", n, calls.Load(), w)
		}
	}
}

func TestForEachChunkContiguous(t *testing.T) {
	// Every chunk must be a contiguous range; collectively they tile [0, n).
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var mu sync.Mutex
	var ranges [][2]int
	ForEachChunk(41, func(lo, hi int) {
		mu.Lock()
		ranges = append(ranges, [2]int{lo, hi})
		mu.Unlock()
	})
	sort.Slice(ranges, func(i, j int) bool { return ranges[i][0] < ranges[j][0] })
	next := 0
	for _, r := range ranges {
		if r[0] != next {
			t.Fatalf("gap or overlap at %d: ranges %v", next, ranges)
		}
		next = r[1]
	}
	if next != 41 {
		t.Fatalf("ranges end at %d, want 41: %v", next, ranges)
	}
}

func TestForEachChunkNested(t *testing.T) {
	var count atomic.Int64
	ForEachChunk(8, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ForEachChunk(16, func(lo2, hi2 int) {
				count.Add(int64(hi2 - lo2))
			})
		}
	})
	if count.Load() != 8*16 {
		t.Fatalf("nested count=%d want %d", count.Load(), 8*16)
	}
}

func TestSetWorkersSerial(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	var order []int // no lock needed: width 1 means serial execution
	ForEach(5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial execution out of order: %v", order)
		}
	}
}
