package ckks

import (
	"math/cmplx"
)

// Homomorphic DFT factors for CoeffToSlot and SlotToCoeff.
//
// With the special-FFT encoding E = (1/n)·B·S̄_2·S̄_4·…·S̄_n (B = bit-reversal,
// S̄_len the radix-2 stage of the encoder's specialIFFT), the map that turns a
// ciphertext's coefficients into its slots *in bit-reversed order* is
//
//	C2S = B·E = (1/n)·S̄_2·S̄_4·…·S̄_n ,
//
// a product of log(n) matrices each with only three nonzero diagonals at
// offsets {0, ±len/2} — no permutation factor. SlotToCoeff is the inverse
// product n·S̄_n^{-1}·…·S̄_2^{-1}. EvalMod is slot-wise, so the bit-reversed
// intermediate ordering cancels between the two transforms.
//
// Decomposing each product into `fftIter` grouped matrices (by composing
// consecutive stages) reproduces the fftIter knob of MAD [2] studied in
// §IV-C: fewer groups → fewer levels consumed but denser matrices.

// diagMap is a sparse slot-space matrix keyed by diagonal offset.
type diagMap map[int][]complex128

// composeDiag returns A·B (B applied first):
// C_t[j] = Σ_{r+s=t} A_r[j] · B_s[(j+r) mod n].
//
// The stage diagonals are mostly zero (each butterfly diagonal touches half
// its block), so a candidate offset row is allocated only when some product
// term is actually nonzero — composing the grouped bootstrap matrices stays
// O(nonzero offsets) in allocations instead of O(K²) full-length rows that
// would mostly be pruned again.
func composeDiag(a, b diagMap, n int) diagMap {
	c := make(diagMap)
	for r, ar := range a {
		for s, bs := range b {
			t := ((r+s)%n + n) % n
			row := c[t]
			for j := 0; j < n; j++ {
				av := ar[j]
				if av == 0 {
					continue
				}
				bv := bs[(j+r)%n]
				if bv == 0 {
					continue
				}
				if row == nil {
					row = make([]complex128, n)
					c[t] = row
				}
				row[j] += av * bv
			}
		}
	}
	// Prune numerically zero diagonals (cancellation) to keep rotation
	// counts honest.
	for t, row := range c {
		nonzero := false
		for _, v := range row {
			if cmplx.Abs(v) > 1e-12 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			delete(c, t)
		}
	}
	return c
}

// scaleDiag multiplies all entries by a scalar.
func scaleDiag(d diagMap, c complex128) {
	for _, row := range d {
		for j := range row {
			row[j] *= c
		}
	}
}

// c2sStage returns the 3-diagonal map of stage S̄_size (the encoder's
// specialIFFT butterfly of the given size).
func (e *Encoder) c2sStage(size int) diagMap {
	n := e.params.Slots()
	lenh, lenq := size>>1, size<<2
	d0 := make([]complex128, n)
	dp := make([]complex128, n) // offset +lenh
	dm := make([]complex128, n) // offset -lenh (stored mod n)
	for i := 0; i < n; i += size {
		for j := 0; j < lenh; j++ {
			idx := (lenq - (e.rotGroup[j] % lenq)) * e.m / lenq
			k := e.ksiPows[idx]
			// out[i+j] = v[i+j] + v[i+j+lenh]
			d0[i+j] = 1
			dp[i+j] = 1
			// out[i+j+lenh] = (v[i+j] - v[i+j+lenh]) * k
			d0[i+j+lenh] = -k
			dm[i+j+lenh] = k
		}
	}
	return mergeDiags(n, d0, dp, dm, lenh)
}

// mergeDiags assembles the three stage diagonals, summing the ±lenh entries
// when they coincide (lenh = n/2, where +n/2 ≡ -n/2 mod n).
func mergeDiags(n int, d0, dp, dm []complex128, lenh int) diagMap {
	out := diagMap{0: d0}
	addDiag := func(off int, row []complex128) {
		off = ((off % n) + n) % n
		if cur, ok := out[off]; ok {
			for j := range cur {
				cur[j] += row[j]
			}
		} else {
			out[off] = row
		}
	}
	addDiag(lenh, dp)
	addDiag(-lenh, dm)
	return out
}

// s2cStage returns the 3-diagonal map of S̄_size^{-1}.
func (e *Encoder) s2cStage(size int) diagMap {
	n := e.params.Slots()
	lenh, lenq := size>>1, size<<2
	d0 := make([]complex128, n)
	dp := make([]complex128, n)
	dm := make([]complex128, n)
	for i := 0; i < n; i += size {
		for j := 0; j < lenh; j++ {
			idx := (lenq - (e.rotGroup[j] % lenq)) * e.m / lenq
			k := e.ksiPows[idx]
			// a[i+j]      = (w[i+j] + w[i+j+lenh]/k) / 2
			// a[i+j+lenh] = (w[i+j] - w[i+j+lenh]/k) / 2
			d0[i+j] = 0.5
			dp[i+j] = 0.5 / k
			dm[i+j+lenh] = 0.5
			d0[i+j+lenh] = -0.5 / k
		}
	}
	return mergeDiags(n, d0, dp, dm, lenh)
}

// groupStages composes the per-stage maps into `groups` matrices of (nearly)
// equal stage counts. stages[0] is applied first homomorphically; within a
// group later stages multiply from the left.
func groupStages(stages []diagMap, groups, n int) []diagMap {
	if groups > len(stages) {
		groups = len(stages)
	}
	if groups < 1 {
		groups = 1
	}
	out := make([]diagMap, 0, groups)
	per := len(stages) / groups
	extra := len(stages) % groups
	idx := 0
	for g := 0; g < groups; g++ {
		cnt := per
		if g < extra {
			cnt++
		}
		m := stages[idx]
		for k := 1; k < cnt; k++ {
			m = composeDiag(stages[idx+k], m, n)
		}
		idx += cnt
		out = append(out, m)
	}
	return out
}

// CoeffToSlotMatrices returns the fftIter grouped matrices (applied in
// order) whose product maps a ciphertext's coefficient packing to its slots
// in bit-reversed order, including the 1/n normalization distributed evenly
// across groups.
func (e *Encoder) CoeffToSlotMatrices(fftIter int) []*LinearTransform {
	n := e.params.Slots()
	var stages []diagMap
	for size := n; size >= 2; size >>= 1 {
		stages = append(stages, e.c2sStage(size))
	}
	grouped := groupStages(stages, fftIter, n)
	norm := complex(1/float64(n), 0)
	per := cmplx.Pow(norm, complex(1/float64(len(grouped)), 0))
	out := make([]*LinearTransform, len(grouped))
	for i, g := range grouped {
		scaleDiag(g, per)
		out[i] = &LinearTransform{Slots: n, Diags: g}
	}
	return out
}

// SlotToCoeffMatrices returns the grouped inverse matrices (applied in
// order), including the n normalization distributed evenly.
func (e *Encoder) SlotToCoeffMatrices(fftIter int) []*LinearTransform {
	n := e.params.Slots()
	var stages []diagMap
	for size := 2; size <= n; size <<= 1 {
		stages = append(stages, e.s2cStage(size))
	}
	grouped := groupStages(stages, fftIter, n)
	norm := complex(float64(n), 0)
	per := cmplx.Pow(norm, complex(1/float64(len(grouped)), 0))
	out := make([]*LinearTransform, len(grouped))
	for i, g := range grouped {
		scaleDiag(g, per)
		out[i] = &LinearTransform{Slots: n, Diags: g}
	}
	return out
}
