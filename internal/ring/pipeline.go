package ring

import (
	"sync"

	"github.com/anaheim-sim/anaheim/internal/par"
)

// Limb-resident pipeline executor. A Pipeline records a chain of per-limb
// stages (NTT/INTT, MAC row kernels, automorphism permutations, rescale
// epilogues) and executes the *entire chain for one limb* before moving to
// the next, inside a single par dispatch — one barrier per chain instead of
// one per kernel.
//
// The point is cache residency, the software analog of Anaheim's
// move-the-kernel-to-the-data thesis: a barriered chain streams every operand
// (limbs × N × 8 bytes, megabytes at bootstrap parameters) through DRAM once
// per kernel, while the pipelined chain touches one N×8-byte row per operand
// (128 KB at N=2^14) that stays L2-resident across all stages. The stage set
// is a fixed op-code enum executed over the same Vec* row kernels the
// barriered ops use, in the same per-limb order, so pipelined execution is
// bit-identical to the barriered kernel sequence on every tier — the
// differential tests in pipeline_test.go and the ckks evaluator hold this
// line.
//
// Usage:
//
//	pl := ring.GetPipeline()
//	ln := pl.Lane(rq, level)         // one lane per (ring, level) pair
//	ln.NTTLazy(p)                    // record stages; no work yet
//	ln.MulCoeffsAddLazy(acc, p, k)
//	ln.ReduceLazy(acc)
//	pl.Run()                         // one barrier for the whole chain
//	pl.Release()
//
// Contracts:
//   - Stages within a lane run strictly in recorded order for each limb;
//     limbs (and lanes) are mutually independent, exactly like forEachLimb.
//     A chain must therefore never make limb i read a row that another limb's
//     stage writes — the same RNS independence every barriered op relies on.
//   - Domain (IsNTT) checks happen at record time against the *pending*
//     domain (the flag the polynomial will have at that point of the chain);
//     flags are applied to the Poly headers when Run completes.
//   - Lazy-domain discipline is unchanged from fused.go: accumulators stay in
//     [0, 2q) between MAC stages and must pass through ReduceLazy before an
//     exact kernel or the end of the chain hands them to exact consumers.
//   - All polynomials recorded into a lane must have at least level+1 limbs.
//     Run resets the pipeline for re-recording; Release returns it to a pool.
type Pipeline struct {
	lanes  []*Lane
	nLanes int
}

// Lane is the per-(ring, level) stage list of a Pipeline. All stages of a
// lane execute over limbs 0..level of its ring.
type Lane struct {
	r     *Ring
	level int

	stages  []stage
	effects []polyEffect

	nttStages  int // stages counting toward the forward limb-transform counter
	inttStages int // ...and the inverse counter
	naiveRows  int // per-limb row streams a barriered execution would move
}

type stageOp uint8

const (
	opFunc stageOp = iota
	opCopy
	opNTT
	opNTTLazy
	opINTT
	opINTTLazy
	opMulCoeffs
	opMulCoeffsAdd
	opMulCoeffsAddLazy
	opAutMulAddLazy
	opReduceLazy
	opAdd
	opSubMulScalars
	opSubMulScalarsLazy
	opAutNTT
	opAddAutNTT
)

// stage is one recorded per-limb operation. A struct of op code plus operand
// pointers — not a closure — so recording a chain allocates nothing in steady
// state (the slices are pooled with the Pipeline).
type stage struct {
	op   stageOp
	out  *Poly
	a, b *Poly
	s    []uint64 // per-limb scalars (opSubMulScalars*)
	idx  []uint32 // NTT-domain automorphism permutation (opAut*)
	fn   func(limb int)
}

// polyEffect tracks, per lane, what the chain does to one polynomial: the
// pending IsNTT domain for record-time checks, whether the flag must be
// applied after Run, and whether the chain reads/writes it (the distinct-row
// traffic estimate: each distinct operand row is fetched at most once and
// written back at most once per chain).
type polyEffect struct {
	p         *Poly
	isNTT     bool
	flagDirty bool
	read      bool
	written   bool
}

var pipelinePool = sync.Pool{New: func() any { return &Pipeline{} }}

// GetPipeline borrows a pipeline from the package pool.
func GetPipeline() *Pipeline { return pipelinePool.Get().(*Pipeline) }

// Release returns the pipeline (and its recorded-stage capacity) to the pool.
// The caller must not use the pipeline or its lanes afterwards.
func (pl *Pipeline) Release() {
	pl.reset()
	pipelinePool.Put(pl)
}

func (pl *Pipeline) reset() {
	for _, ln := range pl.lanes[:pl.nLanes] {
		for i := range ln.stages {
			ln.stages[i] = stage{}
		}
		for i := range ln.effects {
			ln.effects[i] = polyEffect{}
		}
		ln.stages = ln.stages[:0]
		ln.effects = ln.effects[:0]
		ln.nttStages, ln.inttStages, ln.naiveRows = 0, 0, 0
		ln.r = nil
	}
	pl.nLanes = 0
}

// Lane opens (or reuses) a recording lane over limbs 0..level of r. Lanes
// are independent; a chain that spans two rings (the Q and P halves of a
// key-switch) records one lane per ring in the same pipeline and still pays
// a single barrier.
func (pl *Pipeline) Lane(r *Ring, level int) *Lane {
	if pl.nLanes < len(pl.lanes) {
		ln := pl.lanes[pl.nLanes]
		ln.r, ln.level = r, level
		pl.nLanes++
		return ln
	}
	ln := &Lane{r: r, level: level}
	pl.lanes = append(pl.lanes, ln)
	pl.nLanes++
	return ln
}

// use records a read and/or write of p, returning the index of its effect
// entry. Never hold the returned pointer across another use/effect call —
// the backing slice may grow.
func (ln *Lane) use(p *Poly, read, write bool) {
	e := ln.effect(p)
	e.read = e.read || read
	e.written = e.written || write
}

func (ln *Lane) effect(p *Poly) *polyEffect {
	for i := range ln.effects {
		if ln.effects[i].p == p {
			return &ln.effects[i]
		}
	}
	if len(p.Coeffs) < ln.level+1 {
		panic("ring: pipeline operand has fewer limbs than the lane level")
	}
	ln.effects = append(ln.effects, polyEffect{p: p, isNTT: p.IsNTT})
	return &ln.effects[len(ln.effects)-1]
}

// domain returns p's pending IsNTT state at this point of the chain.
func (ln *Lane) domain(p *Poly) bool { return ln.effect(p).isNTT }

func (ln *Lane) setDomain(p *Poly, ntt bool) {
	e := ln.effect(p)
	e.isNTT = ntt
	e.flagDirty = true
}

func (ln *Lane) push(st stage, naiveRows int) {
	ln.stages = append(ln.stages, st)
	ln.naiveRows += naiveRows
}

// Copy records out ← a (rows copied limb-wise; domain follows a).
func (ln *Lane) Copy(out, a *Poly) {
	ln.use(a, true, false)
	ln.use(out, false, true)
	ln.setDomain(out, ln.domain(a))
	ln.push(stage{op: opCopy, out: out, a: a}, 2)
}

// NTT records an in-place exact forward transform of p.
func (ln *Lane) NTT(p *Poly) { ln.recordNTT(p, opNTT) }

// NTTLazy records an in-place forward transform with lazy [0, 2q) outputs.
func (ln *Lane) NTTLazy(p *Poly) { ln.recordNTT(p, opNTTLazy) }

func (ln *Lane) recordNTT(p *Poly, op stageOp) {
	if ln.domain(p) {
		panic("ring: pipeline NTT on a polynomial already in NTT form")
	}
	ln.use(p, true, true)
	ln.setDomain(p, true)
	ln.nttStages++
	ln.push(stage{op: op, out: p}, 2)
}

// INTT records an in-place exact inverse transform of p.
func (ln *Lane) INTT(p *Poly) { ln.recordINTT(p, opINTT) }

// INTTLazy records an in-place inverse transform with lazy outputs.
func (ln *Lane) INTTLazy(p *Poly) { ln.recordINTT(p, opINTTLazy) }

func (ln *Lane) recordINTT(p *Poly, op stageOp) {
	if !ln.domain(p) {
		panic("ring: pipeline INTT on a polynomial already in coefficient form")
	}
	ln.use(p, true, true)
	ln.setDomain(p, false)
	ln.inttStages++
	ln.push(stage{op: op, out: p}, 2)
}

// MulCoeffs records out = a ⊙ b (exact element-wise product).
func (ln *Lane) MulCoeffs(out, a, b *Poly) {
	ln.use(a, true, false)
	ln.use(b, true, false)
	ln.use(out, false, true)
	ln.setDomain(out, ln.domain(a))
	ln.push(stage{op: opMulCoeffs, out: out, a: a, b: b}, 3)
}

// MulCoeffsAdd records out += a ⊙ b (exact).
func (ln *Lane) MulCoeffsAdd(out, a, b *Poly) {
	ln.use(a, true, false)
	ln.use(b, true, false)
	ln.use(out, true, true)
	ln.push(stage{op: opMulCoeffsAdd, out: out, a: a, b: b}, 4)
}

// MulCoeffsAddLazy records out += a ⊙ b with out kept lazy in [0, 2q).
func (ln *Lane) MulCoeffsAddLazy(out, a, b *Poly) {
	ln.use(a, true, false)
	ln.use(b, true, false)
	ln.use(out, true, true)
	ln.push(stage{op: opMulCoeffsAddLazy, out: out, a: a, b: b}, 4)
}

// AutMulCoeffsAddLazy records out += σ_g(a) ⊙ b lazily (the fused AutAccum
// gather-MAC). a must be pending-NTT and must not alias out.
func (ln *Lane) AutMulCoeffsAddLazy(out, a, b *Poly, g uint64) {
	if !ln.domain(a) {
		panic("ring: pipeline AutMulCoeffsAddLazy requires NTT domain")
	}
	if out == a {
		panic("ring: pipeline AutMulCoeffsAddLazy cannot accumulate in place over its input")
	}
	ln.use(a, true, false)
	ln.use(b, true, false)
	ln.use(out, true, true)
	ln.push(stage{op: opAutMulAddLazy, out: out, a: a, b: b, idx: ln.r.nttAutoIndex(g)}, 4)
}

// ReduceLazy records the [0, 2q) → [0, q) normalization of p.
func (ln *Lane) ReduceLazy(p *Poly) {
	ln.use(p, true, true)
	ln.push(stage{op: opReduceLazy, out: p}, 2)
}

// Add records out = a + b (exact element-wise sum; domain follows a).
func (ln *Lane) Add(out, a, b *Poly) {
	ln.use(a, true, false)
	ln.use(b, true, false)
	ln.use(out, false, true)
	ln.setDomain(out, ln.domain(a))
	ln.push(stage{op: opAdd, out: out, a: a, b: b}, 3)
}

// SubMulByLimbScalars records out = (a - b) · s[i] per limb (exact; the
// fused ModDown epilogue).
func (ln *Lane) SubMulByLimbScalars(out, a, b *Poly, s []uint64) {
	ln.use(a, true, false)
	ln.use(b, true, false)
	ln.use(out, false, true)
	ln.setDomain(out, ln.domain(a))
	ln.push(stage{op: opSubMulScalars, out: out, a: a, b: b, s: s}, 3)
}

// SubMulByLimbScalarsLazy is SubMulByLimbScalars for a lazy subtrahend b in
// [0, 2q) (e.g. straight out of an NTTLazy stage).
func (ln *Lane) SubMulByLimbScalarsLazy(out, a, b *Poly, s []uint64) {
	ln.use(a, true, false)
	ln.use(b, true, false)
	ln.use(out, false, true)
	ln.setDomain(out, ln.domain(a))
	ln.push(stage{op: opSubMulScalarsLazy, out: out, a: a, b: b, s: s}, 3)
}

// AutomorphismNTT records out = σ_g(a) by NTT-domain slot permutation.
// a must be pending-NTT and must not alias out.
func (ln *Lane) AutomorphismNTT(out, a *Poly, g uint64) {
	if !ln.domain(a) {
		panic("ring: pipeline AutomorphismNTT requires NTT domain")
	}
	if out == a {
		panic("ring: pipeline AutomorphismNTT cannot operate in place")
	}
	ln.use(a, true, false)
	ln.use(out, false, true)
	ln.setDomain(out, true)
	ln.push(stage{op: opAutNTT, out: out, a: a, idx: ln.r.nttAutoIndex(g)}, 2)
}

// AddAutomorphismNTT records out = σ_g(a + b): the exact sum permuted in the
// same pass, bit-identical to Add followed by AutomorphismNTT because the
// sum is element-wise. a and b must be pending-NTT; neither may alias out.
func (ln *Lane) AddAutomorphismNTT(out, a, b *Poly, g uint64) {
	if !ln.domain(a) || !ln.domain(b) {
		panic("ring: pipeline AddAutomorphismNTT requires NTT domain")
	}
	if out == a || out == b {
		panic("ring: pipeline AddAutomorphismNTT cannot operate in place")
	}
	ln.use(a, true, false)
	ln.use(b, true, false)
	ln.use(out, false, true)
	ln.setDomain(out, true)
	ln.push(stage{op: opAddAutNTT, out: out, a: a, b: b, idx: ln.r.nttAutoIndex(g)}, 3)
}

// Func records an arbitrary per-limb stage (the escape hatch for steps with
// no dedicated op code, e.g. the rescale divide). reads/writes declare the
// polynomials it touches, for traffic accounting and limb validation; fn
// must touch only limb `limb` of them, and domain flags are the caller's
// responsibility (record a dedicated stage or set flags after Run).
func (ln *Lane) Func(fn func(limb int), reads, writes []*Poly) {
	for _, p := range reads {
		ln.use(p, true, false)
	}
	for _, p := range writes {
		ln.use(p, false, true)
	}
	ln.push(stage{op: opFunc, fn: fn}, len(reads)+len(writes))
}

// Run executes every recorded lane, whole-chain-per-limb, under a single
// barrier, then applies domain flags, updates the ring limb-transform
// counters and the bytes-moved model, and resets the pipeline for
// re-recording.
func (pl *Pipeline) Run() {
	lanes := pl.lanes[:pl.nLanes]
	total := 0
	for _, ln := range lanes {
		total += ln.level + 1
	}
	if total > 0 {
		if total < parallelLimbThreshold || par.Workers() < 2 {
			for _, ln := range lanes {
				for i := 0; i <= ln.level; i++ {
					ln.exec(i)
				}
			}
		} else {
			par.ForEachChunk(total, func(lo, hi int) {
				for t := lo; t < hi; t++ {
					for _, ln := range lanes {
						limbs := ln.level + 1
						if t < limbs {
							ln.exec(t)
							break
						}
						t -= limbs
					}
				}
			})
		}
	}
	pl.finish()
}

// finish applies the deferred Poly-header updates and traffic accounting,
// then resets the pipeline so it can record the next chain.
func (pl *Pipeline) finish() {
	for _, ln := range pl.lanes[:pl.nLanes] {
		limbs := ln.level + 1
		for i := range ln.effects {
			e := &ln.effects[i]
			if e.flagDirty {
				e.p.IsNTT = e.isNTT
			}
		}
		if ln.nttStages > 0 {
			ln.r.nttLimbs.Add(int64(ln.nttStages * limbs))
		}
		if ln.inttStages > 0 {
			ln.r.inttLimbs.Add(int64(ln.inttStages * limbs))
		}
		distinct := 0
		for i := range ln.effects {
			if ln.effects[i].read {
				distinct++
			}
			if ln.effects[i].written {
				distinct++
			}
		}
		accountRows(bytesPipelined, distinct, limbs, ln.r.N)
		if saved := ln.naiveRows - distinct; saved > 0 {
			accountRows(bytesSaved, saved, limbs, ln.r.N)
		}
	}
	pl.reset()
}

// exec runs the lane's whole stage chain over limb i. This is the inner loop
// of the executor: every stage body is the same row kernel its barriered
// counterpart dispatches per limb, in the same order, so the results are
// bit-identical on every kernel tier.
func (ln *Lane) exec(i int) {
	r := ln.r
	mod := r.Moduli[i]
	for si := range ln.stages {
		st := &ln.stages[si]
		switch st.op {
		case opCopy:
			copy(st.out.Coeffs[i], st.a.Coeffs[i])
		case opNTT:
			r.Tables[i].Forward(st.out.Coeffs[i])
		case opNTTLazy:
			r.Tables[i].ForwardLazy(st.out.Coeffs[i])
		case opINTT:
			r.Tables[i].Inverse(st.out.Coeffs[i])
		case opINTTLazy:
			r.Tables[i].InverseLazy(st.out.Coeffs[i])
		case opMulCoeffs:
			mod.VecMulBarrett(st.out.Coeffs[i], st.a.Coeffs[i], st.b.Coeffs[i])
		case opMulCoeffsAdd:
			mod.VecMulAddBarrett(st.out.Coeffs[i], st.a.Coeffs[i], st.b.Coeffs[i])
		case opMulCoeffsAddLazy:
			mod.VecMulAddLazy(st.out.Coeffs[i], st.a.Coeffs[i], st.b.Coeffs[i])
		case opAutMulAddLazy:
			mod.VecMulAddLazyIdx(st.out.Coeffs[i], st.a.Coeffs[i], st.b.Coeffs[i], st.idx)
		case opReduceLazy:
			mod.VecReduceTwoQ(st.out.Coeffs[i])
		case opAdd:
			oa, ob, oo := st.a.Coeffs[i], st.b.Coeffs[i], st.out.Coeffs[i]
			for j := range oo {
				oo[j] = mod.Add(oa[j], ob[j])
			}
		case opSubMulScalars:
			s := st.s[i]
			mod.VecSubMulShoup(st.out.Coeffs[i], st.a.Coeffs[i], st.b.Coeffs[i], s, mod.ShoupPrecomp(s))
		case opSubMulScalarsLazy:
			s := st.s[i]
			mod.VecSubMulShoupLazy(st.out.Coeffs[i], st.a.Coeffs[i], st.b.Coeffs[i], s, mod.ShoupPrecomp(s))
		case opAutNTT:
			src, dst := st.a.Coeffs[i], st.out.Coeffs[i]
			for j, k := range st.idx {
				dst[j] = src[k]
			}
		case opAddAutNTT:
			oa, ob, dst := st.a.Coeffs[i], st.b.Coeffs[i], st.out.Coeffs[i]
			for j, k := range st.idx {
				dst[j] = mod.Add(oa[k], ob[k])
			}
		case opFunc:
			st.fn(i)
		}
	}
}
