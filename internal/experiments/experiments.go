// Package experiments regenerates every table and figure of the Anaheim
// paper's evaluation (§III-B Fig 1 table, §IV Figs 2-3, §V Fig 4, §VII
// Figs 8-10, Tables III-V) on the simulation stack. Each experiment returns
// both machine-readable metrics (consumed by tests and benchmarks) and a
// formatted table mirroring the paper's presentation.
package experiments

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/report"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
	"github.com/anaheim-sim/anaheim/internal/workloads"
)

// Platform bundles a GPU model with an optional PIM deployment.
type Platform struct {
	Name string
	GPU  gpu.Config
	PIM  *pim.UnitConfig
}

// Platforms returns the three Anaheim configurations of Table III plus the
// two GPU-only baselines.
func Platforms() []Platform {
	a100nb := pim.A100NearBank()
	a100ch := pim.A100CustomHBM()
	r4090 := pim.RTX4090NearBank()
	return []Platform{
		{"A100 (GPU only)", gpu.A100(), nil},
		{"A100 + near-bank PIM", gpu.A100(), &a100nb},
		{"A100 + custom-HBM", gpu.A100(), &a100ch},
		{"RTX4090 (GPU only)", gpu.RTX4090(), nil},
		{"RTX4090 + near-bank PIM", gpu.RTX4090(), &r4090},
	}
}

// runBoot executes the default bootstrap trace under the given options.
func runBoot(p trace.Params, opt trace.Options, cfg sched.Config, boot workloads.BootConfig) (sched.Result, *trace.Trace) {
	t := workloads.Bootstrap(p, opt, boot)
	return sched.Run(t, cfg), t
}

// --- Fig 1 table -------------------------------------------------------------

// Fig1Metrics compares the CoeffToSlot collection under Base, Hoisting, and
// MinKS: evaluation-key and plaintext volumes and (I)NTT limb-transform
// counts (the table embedded in Fig 1).
type Fig1Metrics struct {
	Alg        string
	EvkCount   int
	EvkGB      float64
	PtGB       float64
	NTTLimbOps float64
}

// Fig1Table evaluates CoeffToSlot (the paper's default fftIter split) under
// the three linear-transform algorithms.
func Fig1Table() ([]Fig1Metrics, *report.Table) {
	p := trace.PaperParams()
	boot := workloads.DefaultBoot()
	var out []Fig1Metrics
	for _, alg := range []struct {
		name string
		opt  trace.Options
	}{
		{"Base", trace.Options{}},
		{"Hoisting", trace.Options{Hoist: true}},
		{"MinKS", trace.Options{MinKS: true}},
	} {
		b := trace.NewBuilder(p, alg.opt, "C2S")
		lvl := p.L - 1
		evks, evkGB, ptGB := 0, 0.0, 0.0
		for i := 0; i < boot.FFTIterC2S; i++ {
			k := workloads.DiagCount(boot.SlotsLog, boot.FFTIterC2S, i)
			b.LinearTransform(lvl, k)
			evks += b.EvkCount(k)
			ptGB += b.PlaintextBytes(lvl, k) / 1e9
			lvl -= 2
		}
		if alg.opt.MinKS {
			evks = 2 // the iteration keys are shared across the matrices
		}
		evkGB = float64(evks) * p.EvkBytes(p.L-1) / 1e9
		out = append(out, Fig1Metrics{
			Alg: alg.name, EvkCount: evks, EvkGB: evkGB, PtGB: ptGB,
			NTTLimbOps: b.T.NTTLimbTransforms(),
		})
	}
	tbl := &report.Table{
		Title:   "Fig 1 (table): CoeffToSlot under Base / Hoisting / MinKS",
		Headers: []string{"Algorithm", "#evks", "evk GB", "pt GB", "(I)NTT limb ops"},
	}
	for _, m := range out {
		tbl.AddRow(m.Alg, fmt.Sprint(m.EvkCount), report.F(m.EvkGB, 2), report.F(m.PtGB, 2), report.F(m.NTTLimbOps, 0))
	}
	tbl.AddNote("paper: hoisting cuts (I)NTT ops 2.47x; MinKS needs ~4x fewer evks but extra ModSwitch")
	return out, tbl
}

// --- Fig 2a ------------------------------------------------------------------

// Fig2aMetrics is one (library, function) execution-time breakdown.
type Fig2aMetrics struct {
	Library  string
	Function string
	TimeUs   float64
	EWShare  float64
}

// Fig2a reproduces the basic-function comparison across Phantom, 100x and
// Cheddar on the A100 model.
func Fig2a() ([]Fig2aMetrics, *report.Table) {
	p := trace.PaperParams()
	libs := []gpu.LibraryProfile{gpu.Phantom(), gpu.HundredX(), gpu.Cheddar()}
	fns := []struct {
		name string
		emit func(b *trace.Builder)
	}{
		{"HADD", func(b *trace.Builder) { b.HADD(p.L - 1) }},
		{"PMULT", func(b *trace.Builder) { b.PMULT(p.L - 1) }},
		{"HMULT", func(b *trace.Builder) { b.HMULT(p.L - 1) }},
		{"HROT", func(b *trace.Builder) { b.HROT(p.L - 1) }},
	}
	var out []Fig2aMetrics
	tbl := &report.Table{
		Title:   "Fig 2a: basic CKKS function times on A100 80GB by library",
		Headers: []string{"Library", "Function", "time", "EW%", "NTT%", "BConv%", "Aut%"},
	}
	for _, lib := range libs {
		for _, fn := range fns {
			b := trace.NewBuilder(p, trace.GPUBaseline(), fn.name)
			fn.emit(b)
			r := sched.Run(b.T, sched.Config{GPU: gpu.A100(), Lib: lib})
			out = append(out, Fig2aMetrics{lib.Name, fn.name, r.TimeNs / 1e3, r.EWShare()})
			tbl.AddRow(lib.Name, fn.name, fmt.Sprintf("%.1fus", r.TimeNs/1e3),
				report.F(100*r.EWShare(), 1),
				report.F(100*(r.ClassTimeNs[trace.ClassNTT]+r.ClassTimeNs[trace.ClassINTT])/r.TimeNs, 1),
				report.F(100*r.ClassTimeNs[trace.ClassBConv]/r.TimeNs, 1),
				report.F(100*r.ClassTimeNs[trace.ClassAut]/r.TimeNs, 1))
		}
	}
	tbl.AddNote("paper: Cheddar is 1.79x/1.54x faster than Phantom on HMULT/HROT via 1.73-1.81x faster (I)NTT+BConv")
	return out, tbl
}

// --- Fig 2b ------------------------------------------------------------------

// Fig2bMetrics is one (GPU, D) bootstrapping data point.
type Fig2bMetrics struct {
	GPU     string
	D       int
	OoM     bool
	TbootMs float64 // T_boot,eff
	EWShare float64
	LEff    int
}

// Fig2b sweeps the decomposition number D on both GPUs (GPU-only, Cheddar).
func Fig2b() ([]Fig2bMetrics, *report.Table) {
	var out []Fig2bMetrics
	tbl := &report.Table{
		Title:   "Fig 2b: T_boot,eff breakdown vs decomposition number D",
		Headers: []string{"GPU", "D", "L", "alpha", "L_eff", "T_boot,eff", "EW%", "status"},
	}
	for _, g := range []gpu.Config{gpu.A100(), gpu.RTX4090()} {
		for _, d := range []int{2, 3, 4, 6, 8} {
			p := trace.PaperParams().WithD(d)
			boot := workloads.DefaultBoot()
			m := Fig2bMetrics{GPU: g.Name, D: d}
			if workloads.BootFootprintGB(p, boot) > g.DRAM.CapacityGB {
				m.OoM = true
				out = append(out, m)
				tbl.AddRow(g.Name, fmt.Sprint(d), fmt.Sprint(p.L), fmt.Sprint(p.Alpha), "-", "-", "-", "OoM")
				continue
			}
			r, t := runBoot(p, trace.GPUBaseline(), sched.Config{GPU: g, Lib: gpu.Cheddar()}, boot)
			m.LEff = t.LEff
			m.TbootMs = r.TimeMs() / float64(t.LEff)
			m.EWShare = r.EWShare()
			out = append(out, m)
			tbl.AddRow(g.Name, fmt.Sprint(d), fmt.Sprint(p.L), fmt.Sprint(p.Alpha),
				fmt.Sprint(t.LEff), report.F(m.TbootMs, 2)+"ms", report.F(100*m.EWShare, 1), "ok")
		}
	}
	tbl.AddNote("paper: element-wise ops reach 45-48%% (A100) and 68-69%% (RTX4090) across D")
	return out, tbl
}

// --- Fig 2c ------------------------------------------------------------------

// Fig2cMetrics is one algorithm's bootstrapping result on the A100.
type Fig2cMetrics struct {
	Alg     string
	TbootMs float64
	EWShare float64
}

// Fig2c compares Base / MinKS / Hoist at D=4 on the A100 (GPU-only).
func Fig2c() ([]Fig2cMetrics, *report.Table) {
	p := trace.PaperParams()
	var out []Fig2cMetrics
	tbl := &report.Table{
		Title:   "Fig 2c: T_boot,eff for Base / MinKS / Hoist (A100, D=4)",
		Headers: []string{"Algorithm", "T_boot,eff", "EW%"},
	}
	for _, alg := range []struct {
		name string
		opt  trace.Options
	}{
		{"Base", trace.Options{BasicFuse: true, AutFuse: true, ExtraFuse: true}},
		{"MinKS", trace.Options{MinKS: true, BasicFuse: true, AutFuse: true, ExtraFuse: true}},
		{"Hoist", trace.GPUBaseline()},
	} {
		r, t := runBoot(p, alg.opt, sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar()}, workloads.DefaultBoot())
		m := Fig2cMetrics{alg.name, r.TimeMs() / float64(t.LEff), r.EWShare()}
		out = append(out, m)
		tbl.AddRow(alg.name, report.F(m.TbootMs, 2)+"ms", report.F(100*m.EWShare, 1))
	}
	tbl.AddNote("paper: hoisting wins on GPUs; MinKS drops the EW share to ~28%% but is no faster")
	return out, tbl
}

// --- Fig 3 -------------------------------------------------------------------

// Fig3Metrics is one fftIter configuration.
type Fig3Metrics struct {
	Label   string
	LEff    int
	TbootMs float64
	EWShare float64
}

// Fig3 sweeps fftIter (including the default 3&4 mix) on the A100.
func Fig3() ([]Fig3Metrics, *report.Table) {
	p := trace.PaperParams()
	var out []Fig3Metrics
	tbl := &report.Table{
		Title:   "Fig 3: T_boot,eff vs fftIter (A100, GPU-only)",
		Headers: []string{"fftIter", "L_eff", "Boot time", "T_boot,eff", "EW%"},
	}
	for _, cfgv := range []struct {
		label    string
		c2s, s2c int
	}{
		{"3", 3, 3}, {"3&4 (default)", 4, 3}, {"4", 4, 4}, {"5", 5, 5}, {"6", 6, 6},
	} {
		boot := workloads.DefaultBoot()
		boot.FFTIterC2S, boot.FFTIterS2C = cfgv.c2s, cfgv.s2c
		r, t := runBoot(p, trace.GPUBaseline(), sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar()}, boot)
		m := Fig3Metrics{cfgv.label, t.LEff, r.TimeMs() / float64(t.LEff), r.EWShare()}
		out = append(out, m)
		tbl.AddRow(cfgv.label, fmt.Sprint(t.LEff), report.Ms(r.TimeNs),
			report.F(m.TbootMs, 2)+"ms", report.F(100*m.EWShare, 1))
	}
	tbl.AddNote("paper: increasing fftIter trims EW share but the L_eff drop degrades T_boot,eff beyond 4")
	return out, tbl
}
