package dram

import "fmt"

// Command-level bank timing engine: a Ramulator-style simulator for the
// regular all-bank command streams PIM execution produces. It schedules
// ACT/RD/WR/PRE against the bank's timing constraints and reports the
// stream's makespan. The analytical model in internal/pim is validated
// against this engine (they must agree on Alg-1 streams); the engine is the
// ground truth for irregular streams.

// CommandKind enumerates DRAM commands.
type CommandKind int

const (
	ACT CommandKind = iota
	RD
	WR
	PRE
)

func (k CommandKind) String() string {
	return [...]string{"ACT", "RD", "WR", "PRE"}[k]
}

// Command is one DRAM command addressed to a row (RD/WR operate on the open
// row; their Row field is advisory).
type Command struct {
	Kind CommandKind
	Row  int
}

// Timing bundles the constraint set in nanoseconds.
type Timing struct {
	TRCD float64 // ACT -> first RD/WR
	TRP  float64 // PRE -> next ACT
	TRAS float64 // ACT -> PRE (minimum row-open time)
	TRC  float64 // ACT -> next ACT (0: derive as tRAS + tRP)
	TCCD float64 // RD/WR -> next RD/WR (column-to-column, the chunk interval)
	// ActExtra models the staggered all-bank activation overhead exposed
	// under lock-step PIM operation (§VI-B).
	ActExtra float64
}

// TimingFor derives the engine constraints from a device config at the PIM
// clock (one chunk per cycle through the MMAC datapath).
func TimingFor(c Config, pimClockMHz float64) Timing {
	cycleNs := 1e3 / pimClockMHz
	return Timing{
		TRCD:     c.TRCDns,
		TRP:      c.TRPns,
		TRAS:     33,
		TCCD:     cycleNs,
		ActExtra: c.ActStaggerNs,
	}
}

// BankState tracks one bank during simulation.
type BankState struct {
	rowOpen   bool
	openRow   int
	lastACT   float64
	lastPRE   float64
	lastCol   float64
	nowNs     float64
	acts      int
	colAccess int
}

// Stats summarizes an executed stream.
type Stats struct {
	TotalNs   float64
	ACTs      int
	ColAccess int
}

// Execute runs a command stream on one bank from t=0 and returns its
// makespan and counts. It returns an error on protocol violations (RD/WR
// with no open row, ACT on an open bank, PRE with no open row).
func Execute(cmds []Command, t Timing) (Stats, error) {
	if t.TRC == 0 {
		t.TRC = t.TRAS + t.TRP
	}
	var b BankState
	b.lastACT = -1e18
	b.lastPRE = -1e18
	b.lastCol = -1e18

	for i, c := range cmds {
		switch c.Kind {
		case ACT:
			if b.rowOpen {
				return Stats{}, fmt.Errorf("dram: command %d: ACT on bank with open row %d", i, b.openRow)
			}
			start := b.nowNs
			start = maxf(start, b.lastPRE+t.TRP)
			start = maxf(start, b.lastACT+t.TRC)
			done := start + t.ActExtra
			b.lastACT = done
			b.nowNs = done
			b.rowOpen, b.openRow = true, c.Row
			b.acts++
		case RD, WR:
			if !b.rowOpen {
				return Stats{}, fmt.Errorf("dram: command %d: %v with no open row", i, c.Kind)
			}
			if c.Row != b.openRow {
				return Stats{}, fmt.Errorf("dram: command %d: %v to row %d but row %d is open", i, c.Kind, c.Row, b.openRow)
			}
			start := b.nowNs
			start = maxf(start, b.lastACT+t.TRCD)
			start = maxf(start, b.lastCol+t.TCCD)
			b.lastCol = start
			b.nowNs = start + t.TCCD
			b.colAccess++
		case PRE:
			if !b.rowOpen {
				return Stats{}, fmt.Errorf("dram: command %d: PRE with no open row", i)
			}
			start := maxf(b.nowNs, b.lastACT+t.TRAS-t.ActExtra)
			b.lastPRE = start
			b.nowNs = start
			b.rowOpen = false
		}
	}
	return Stats{TotalNs: b.nowNs, ACTs: b.acts, ColAccess: b.colAccess}, nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
