package ckks

import (
	"math/rand"
	"testing"
)

func TestCiphertextSerialization(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(80))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)

	data, err := ct.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Ciphertext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Scale != ct.Scale || back.Level() != ct.Level() {
		t.Fatal("metadata not preserved")
	}
	if !back.C0.Equal(ct.C0) || !back.C1.Equal(ct.C1) {
		t.Fatal("coefficients not preserved")
	}
	// And it still decrypts.
	if e := maxErr(tc.decryptVec(&back), v); e > 1e-6 {
		t.Fatalf("deserialized ciphertext decrypts with error %g", e)
	}
}

func TestKeySerialization(t *testing.T) {
	tc := newTestContext(t, TestParameters())

	skData, err := tc.sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var sk SecretKey
	if err := sk.UnmarshalBinary(skData); err != nil {
		t.Fatal(err)
	}
	if !sk.Q.Equal(tc.sk.Q) || !sk.P.Equal(tc.sk.P) {
		t.Fatal("secret key not preserved")
	}

	pkData, err := tc.pk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var pk PublicKey
	if err := pk.UnmarshalBinary(pkData); err != nil {
		t.Fatal(err)
	}
	if !pk.A.Equal(tc.pk.A) || !pk.B.Equal(tc.pk.B) {
		t.Fatal("public key not preserved")
	}

	rlkData, err := tc.keys.Rlk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var rlk SwitchingKey
	if err := rlk.UnmarshalBinary(rlkData); err != nil {
		t.Fatal(err)
	}
	if rlk.Digits() != tc.keys.Rlk.Digits() {
		t.Fatal("digit count not preserved")
	}

	// A deserialized relinearization key must still relinearize: multiply
	// with it and check correctness.
	r := rand.New(rand.NewSource(81))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	prod := tc.eval.Rescale(tc.eval.MulRelin(ct, ct, &rlk))
	want := make([]complex128, len(v))
	for i := range v {
		want[i] = v[i] * v[i]
	}
	if e := maxErr(tc.decryptVec(prod), want); e > 1e-4 {
		t.Fatalf("deserialized rlk multiplication error %g", e)
	}
}

func TestPlaintextSerialization(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(82))
	v := randomComplex(r, tc.params.Slots(), 1)
	pt, err := tc.enc.Encode(v, 3, tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	orig := &Plaintext{Value: pt, Scale: tc.params.DefaultScale()}
	data, err := orig.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back Plaintext
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if e := maxErr(tc.enc.Decode(back.Value, back.Scale), v); e > 1e-9 {
		t.Fatalf("plaintext round trip error %g", e)
	}
}

func TestSerializationRejectsCorruption(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(83))
	ct := tc.encryptVec(t, randomComplex(r, 4, 1))
	data, _ := ct.MarshalBinary()

	var back Ciphertext
	if err := back.UnmarshalBinary(data[:len(data)/2]); err == nil {
		t.Fatal("truncated data must be rejected")
	}
	if err := back.UnmarshalBinary(append(data, 0)); err == nil {
		t.Fatal("trailing bytes must be rejected")
	}
	bad := append([]byte{}, data...)
	bad[8+4] ^= 0xFF // corrupt the first polynomial's magic
	if err := back.UnmarshalBinary(bad); err == nil {
		t.Fatal("bad magic must be rejected")
	}
	var sk SecretKey
	if err := sk.UnmarshalBinary([]byte{1, 2}); err == nil {
		t.Fatal("short secret key must be rejected")
	}
	var swk SwitchingKey
	if err := swk.UnmarshalBinary([]byte{255, 255, 255, 255}); err == nil {
		t.Fatal("implausible digit count must be rejected")
	}
}

func TestEvaluationKeySetSerialization(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, []int{1, 5, 9})
	tc.kgen.GenConjugationKey(tc.sk, tc.keys)

	data, err := tc.keys.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back EvaluationKeySet
	if err := back.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if back.Rlk == nil || len(back.Gal) != len(tc.keys.Gal) {
		t.Fatalf("key set shape lost: rlk=%v gal=%d/%d", back.Rlk != nil, len(back.Gal), len(tc.keys.Gal))
	}

	// An evaluator over the deserialized set must rotate correctly.
	ev := NewEvaluator(tc.params, &back)
	r := rand.New(rand.NewSource(84))
	v := randomComplex(r, tc.params.Slots(), 1)
	ct := tc.encryptVec(t, v)
	rot, err := ev.Rotate(ct, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]complex128, len(v))
	for i := range want {
		want[i] = v[(i+5)%len(v)]
	}
	if e := maxErr(tc.decryptVec(rot), want); e > 1e-5 {
		t.Fatalf("rotation with deserialized keys error %g", e)
	}

	// Empty set round trip.
	empty := NewEvaluationKeySet()
	d2, err := empty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var back2 EvaluationKeySet
	if err := back2.UnmarshalBinary(d2); err != nil {
		t.Fatal(err)
	}
	if back2.Rlk != nil || len(back2.Gal) != 0 {
		t.Fatal("empty set not preserved")
	}
}
