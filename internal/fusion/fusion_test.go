package fusion

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"github.com/anaheim-sim/anaheim/internal/gpu"
	"github.com/anaheim-sim/anaheim/internal/pim"
	"github.com/anaheim-sim/anaheim/internal/sched"
	"github.com/anaheim-sim/anaheim/internal/trace"
)

// buildMixed emits a representative op mix: ciphertext multiply, rotation,
// hoisted linear transform, Chebyshev leaf accumulation, affine map.
func buildMixed(opt trace.Options) *trace.Trace { return buildMixedAt(opt, 20) }

func buildMixedAt(opt trace.Options, level int) *trace.Trace {
	b := trace.NewBuilder(trace.PaperParams(), opt, "mixed")
	b.HMULT(level)
	b.HROT(level)
	b.LinearTransform(level, 16)
	b.CAccum("cheb.leaf", level/2, 8)
	b.EW2("evalmod.affine", level/2)
	return b.T
}

func anaheimFused() trace.Options {
	return trace.Options{Hoist: true, BasicFuse: true, AutFuse: true, PIM: true}
}

// kernelKey serializes every cost-bearing field of a kernel for multiset
// comparison (fuse tags excluded: the fused builder never sets them and the
// passes clear them on merged kernels).
func kernelKey(k trace.Kernel) string {
	return fmt.Sprintf("%s|%s|%s|k=%d|limbs=%d|inst=%d|ops=%.6g|bytes=%.6g|one=%.6g|wb=%.6g|off=%t",
		k.Name, k.Class, k.Op, k.OpK, k.Limbs, k.Instances,
		k.WeightedOps, k.Bytes, k.OneTime, k.WriteBack, k.Offload)
}

// TestPassesReconstructFusedBuilder is the end-to-end equivalence property:
// the naive SplitKernels trace, rewritten by all four passes, must contain
// exactly the kernel multiset the natively fused builder emits.
func TestPassesReconstructFusedBuilder(t *testing.T) {
	// Level 20 has multi-digit key switching (Digits=2); level 10 exercises
	// the singleton-group path (Digits=1, PAccum⟨1⟩).
	for _, level := range []int{10, 20} {
		t.Run(fmt.Sprintf("level=%d", level), func(t *testing.T) {
			fused := buildMixedAt(anaheimFused(), level)
			naive := buildMixedAt(trace.SplitNaive(), level)

			if len(naive.Kernels) <= len(fused.Kernels) {
				t.Fatalf("split builder should emit more kernels than fused: %d vs %d",
					len(naive.Kernels), len(fused.Kernels))
			}
			stats := Apply(naive, AllPasses()...)
			for _, s := range stats {
				t.Logf("%-16s kernels %3d -> %3d, fused %2d, swaps %2d, bytes saved %.1f MB",
					s.Pass, s.KernelsBefore, s.KernelsAfter, s.Fused, s.Swaps, s.BytesSaved/1e6)
			}

			if len(naive.Kernels) != len(fused.Kernels) {
				t.Fatalf("kernel count after fusion: got %d, want %d", len(naive.Kernels), len(fused.Kernels))
			}
			got := make([]string, len(naive.Kernels))
			want := make([]string, len(fused.Kernels))
			for i, k := range naive.Kernels {
				got[i] = kernelKey(k)
			}
			for i, k := range fused.Kernels {
				want[i] = kernelKey(k)
			}
			sort.Strings(got)
			sort.Strings(want)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("kernel multiset mismatch at %d:\n  got  %s\n  want %s", i, got[i], want[i])
				}
			}
		})
	}
}

// TestPassesAreToggleable verifies each pass only rewrites its own pattern.
func TestPassesAreToggleable(t *testing.T) {
	// Only grouped members count: a standalone CMAC (EvalMod's affine map)
	// is not a compound and must survive every pass.
	countOp := func(tr *trace.Trace, op pim.Opcode) int {
		n := 0
		for _, k := range tr.Kernels {
			if k.Class == trace.ClassEW && k.Op == op && k.FuseGroup != "" {
				n++
			}
		}
		return n
	}
	countRole := func(tr *trace.Trace, role string) int {
		n := 0
		for _, k := range tr.Kernels {
			if k.FuseRole == role {
				n++
			}
		}
		return n
	}

	t.Run("paccum-only", func(t *testing.T) {
		tr := buildMixed(trace.SplitNaive())
		pmacs := countOp(tr, pim.PMAC)
		Apply(tr, Passes(Config{PAccum: true})...)
		if got := countOp(tr, pim.PMAC); got != 0 {
			t.Fatalf("PAccum pass left %d of %d PMACs unmerged", got, pmacs)
		}
		if countOp(tr, pim.CMAC) == 0 {
			t.Fatal("PAccum pass must not touch CMAC chains")
		}
		if countRole(tr, trace.RoleAut) == 0 {
			t.Fatal("PAccum pass must not touch split automorphisms")
		}
	})

	t.Run("caccum-only", func(t *testing.T) {
		tr := buildMixed(trace.SplitNaive())
		Apply(tr, Passes(Config{CAccum: true})...)
		if got := countOp(tr, pim.CMAC); got != 0 {
			t.Fatalf("CAccum pass left %d CMACs unmerged", got)
		}
		if countOp(tr, pim.PMAC) == 0 {
			t.Fatal("CAccum pass must not touch PMAC chains")
		}
	})

	t.Run("autaccum-needs-swap", func(t *testing.T) {
		// Without the reorder, baby automorphisms stay separated from their
		// accumulations by the diagonal multiplies; only the adjacent
		// giant-rotation pairs fuse.
		tr := buildMixed(trace.SplitNaive())
		before := countRole(tr, trace.RoleAut)
		st := Apply(tr, Passes(Config{AutAccum: true})...)
		if after := countRole(tr, trace.RoleAut); after == 0 {
			t.Fatal("expected some automorphisms to stay unfused without the swap pass")
		} else if st[0].Fused == 0 {
			t.Fatal("adjacent aut/accum pairs should fuse even without the swap pass")
		} else if after >= before {
			t.Fatalf("no automorphism fused: %d -> %d", before, after)
		}

		// With the swap first, every pair fuses.
		tr2 := buildMixed(trace.SplitNaive())
		Apply(tr2, Passes(Config{Swap: true, AutAccum: true})...)
		if got := countRole(tr2, trace.RoleAut); got != 0 {
			t.Fatalf("%d automorphisms left unfused after swap+autaccum", got)
		}
	})
}

// TestSwapPreservesCost: the reorder moves kernels but must not change any
// aggregate cost of the trace.
func TestSwapPreservesCost(t *testing.T) {
	tr := buildMixed(trace.SplitNaive())
	wantBytes, wantOps, wantN := tr.TotalBytes(), totalOps(tr), len(tr.Kernels)
	st := Apply(tr, SwapAutPMult())
	if st[0].Swaps == 0 {
		t.Fatal("swap pass found nothing to reorder in the naive hoisted transform")
	}
	if tr.TotalBytes() != wantBytes || totalOps(tr) != wantOps || len(tr.Kernels) != wantN {
		t.Fatal("swap pass changed trace cost")
	}
}

func totalOps(tr *trace.Trace) float64 {
	s := 0.0
	for _, k := range tr.Kernels {
		s += k.WeightedOps
	}
	return s
}

// TestPassesIdempotent: re-applying the full pipeline to an already fused
// trace changes nothing.
func TestPassesIdempotent(t *testing.T) {
	tr := buildMixed(trace.SplitNaive())
	Apply(tr, AllPasses()...)
	n, bytes := len(tr.Kernels), tr.TotalBytes()
	stats := Apply(tr, AllPasses()...)
	for _, s := range stats {
		if s.Fused != 0 || s.Swaps != 0 || s.BytesSaved != 0 {
			t.Fatalf("second application of %s still rewrote: %+v", s.Pass, s)
		}
	}
	if len(tr.Kernels) != n || tr.TotalBytes() != bytes {
		t.Fatal("second application changed the trace")
	}
}

// TestReportStages: cumulative per-pass simulation must show monotonically
// non-increasing traffic and a strictly faster final stage.
func TestReportStages(t *testing.T) {
	tr := buildMixed(trace.SplitNaive())
	cfg := sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar()}
	stages := Report(tr, cfg, AllPasses()...)
	if len(stages) != 5 {
		t.Fatalf("want 5 stages (naive + 4 passes), got %d", len(stages))
	}
	for i := 1; i < len(stages); i++ {
		if stages[i].Bytes > stages[i-1].Bytes+1 {
			t.Fatalf("stage %s increased traffic: %.0f -> %.0f",
				stages[i].Name, stages[i-1].Bytes, stages[i].Bytes)
		}
	}
	first, last := stages[0], stages[len(stages)-1]
	if last.SimTimeNs >= first.SimTimeNs {
		t.Fatalf("fusion did not speed up the GPU simulation: %.3fms -> %.3fms",
			first.SimTimeNs/1e6, last.SimTimeNs/1e6)
	}
	t.Logf("GPU sim: naive %.3f ms -> fused %.3f ms (%.2fx)",
		first.SimTimeNs/1e6, last.SimTimeNs/1e6, last.SpeedupVsBase(first))

	// And on the PIM co-execution model.
	pimCfg := sched.Config{GPU: gpu.A100(), Lib: gpu.Cheddar(), PIM: ptr(pim.A100NearBank())}
	tr2 := buildMixed(trace.SplitNaive())
	pimStages := Report(tr2, pimCfg, AllPasses()...)
	pf, pl := pimStages[0], pimStages[len(pimStages)-1]
	if pl.SimTimeNs >= pf.SimTimeNs {
		t.Fatalf("fusion did not speed up the PIM co-execution: %.3fms -> %.3fms",
			pf.SimTimeNs/1e6, pl.SimTimeNs/1e6)
	}
	t.Logf("PIM sim: naive %.3f ms -> fused %.3f ms (%.2fx)",
		pf.SimTimeNs/1e6, pl.SimTimeNs/1e6, pl.SpeedupVsBase(pf))
}

func ptr[T any](v T) *T { return &v }

// TestAccumMergeRespectsShape: members with mismatched limb counts must not
// merge (they belong to different polynomials).
func TestAccumMergeRespectsShape(t *testing.T) {
	p := trace.PaperParams()
	tr := &trace.Trace{Name: "bad", P: p}
	mk := func(limbs int) trace.Kernel {
		return trace.Kernel{
			Name: "x", Class: trace.ClassEW, Op: pim.PMAC,
			Bytes: 7 * p.PolyBytes(limbs), Limbs: limbs, Instances: 1,
			FuseGroup: "g#1", FuseRole: trace.RoleMAC,
		}
	}
	tr.Append(mk(10), mk(11))
	st := Apply(tr, PAccum())
	if st[0].Fused != 0 || len(tr.Kernels) != 2 {
		t.Fatal("merged PMACs with mismatched limb counts")
	}
}

func approxEq(a, b, rel float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	return d <= rel*math.Max(math.Abs(a), math.Abs(b))
}

// TestAggregateParity: per-class aggregate costs of the rewritten naive
// trace match the fused builder (the number the experiments report).
func TestAggregateParity(t *testing.T) {
	fused := buildMixed(anaheimFused())
	naive := buildMixed(trace.SplitNaive())
	Apply(naive, AllPasses()...)
	for _, c := range []trace.Class{trace.ClassNTT, trace.ClassINTT, trace.ClassBConv, trace.ClassEW, trace.ClassAut} {
		fb := fused.CountClass(c, func(k trace.Kernel) float64 { return k.Bytes })
		nb := naive.CountClass(c, func(k trace.Kernel) float64 { return k.Bytes })
		if !approxEq(fb, nb, 1e-9) {
			t.Errorf("class %s bytes: fused %.1f, rewritten %.1f", c, fb, nb)
		}
	}
	if !approxEq(fused.OneTimeBytes(), naive.OneTimeBytes(), 1e-9) {
		t.Errorf("one-time bytes: fused %.1f, rewritten %.1f", fused.OneTimeBytes(), naive.OneTimeBytes())
	}
}
