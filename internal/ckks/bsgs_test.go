package ckks

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// withExecModes runs f once per execution mode (unfused, fused, pipelined),
// restoring the process-wide toggles after.
func withExecModes(t *testing.T, f func(mode string)) {
	t.Helper()
	prevF, prevP := FusionEnabled(), PipelinedEnabled()
	defer func() { SetFusion(prevF); SetPipelined(prevP) }()
	for _, m := range []struct {
		name         string
		fused, piped bool
	}{
		{"unfused", false, false},
		{"fused", true, false},
		{"pipelined", true, true},
	} {
		SetFusion(m.fused)
		SetPipelined(m.piped)
		f(m.name)
	}
}

// denseTestTransform builds a K-diagonal contiguous transform with random
// entries, the shape of a grouped bootstrap DFT matrix.
func denseTestTransform(r *rand.Rand, slots, k int) *LinearTransform {
	diags := make(map[int][]complex128, k)
	for d := 0; d < k; d++ {
		row := make([]complex128, slots)
		for j := range row {
			row[j] = complex((2*r.Float64()-1)*0.5, (2*r.Float64()-1)*0.5)
		}
		diags[d] = row
	}
	return NewLinearTransform(slots, diags)
}

// TestBSGSMatchesHoistedAndApply is the core differential: the BSGS sweep
// must agree with both the plaintext Apply oracle and the per-diagonal
// hoisted sweep, at every level that can host a transform and in all three
// execution modes.
func TestBSGSMatchesHoistedAndApply(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(60))
	slots := tc.params.Slots()
	lt := denseTestTransform(r, slots, 16)
	lt.SetBabyStep(4)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys,
		append(GaloisKeysForLinearTransform(tc.params, lt), lt.Rotations()...))

	u := randomComplex(r, slots, 1)
	want := lt.Apply(u)
	ctTop := tc.encryptVec(t, u)

	withExecModes(t, func(mode string) {
		for lvl := 1; lvl <= tc.params.MaxLevel(); lvl++ {
			ct := tc.eval.DropLevel(ctTop, lvl)
			got, err := tc.eval.EvaluateLinearTransformBSGS(ct, lt, tc.enc)
			if err != nil {
				t.Fatalf("%s lvl %d: %v", mode, lvl, err)
			}
			got = tc.eval.Rescale(got)
			if e := maxErr(tc.decryptVec(got), want); e > 1e-3 {
				t.Fatalf("%s lvl %d: BSGS vs Apply error %g", mode, lvl, e)
			}

			ref, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc)
			if err != nil {
				t.Fatalf("%s lvl %d: %v", mode, lvl, err)
			}
			ref = tc.eval.Rescale(ref)
			if e := maxErr(tc.decryptVec(got), tc.decryptVec(ref)); e > 1e-3 {
				t.Fatalf("%s lvl %d: BSGS vs hoisted divergence %g", mode, lvl, e)
			}
		}
	})
}

// TestBSGSDFTAllFFTIters runs the homomorphic CoeffToSlot -> SlotToCoeff
// round trip through the dispatcher for every fftIter grouping, with only
// the keys GaloisKeysForLinearTransform asks for — the configuration the
// bootstrapper runs.
func TestBSGSDFTAllFFTIters(t *testing.T) {
	// Deep enough chain for the fftIter=4 round trip (8 rescales).
	lit := TestParameters()
	lit.LogQ = append([]int{55}, repeatInts(45, 8)...)
	for fftIter := 1; fftIter <= 4; fftIter++ {
		t.Run(fmt.Sprintf("fftIter=%d", fftIter), func(t *testing.T) {
			tc := newTestContext(t, lit)
			c2s := tc.enc.CoeffToSlotMatrices(fftIter)
			s2c := tc.enc.SlotToCoeffMatrices(fftIter)
			lts := append(append([]*LinearTransform{}, c2s...), s2c...)
			tc.kgen.GenRotationKeys(tc.sk, tc.keys,
				GaloisKeysForLinearTransform(tc.params, lts...))

			r := rand.New(rand.NewSource(int64(61 + fftIter)))
			u := randomComplex(r, tc.params.Slots(), 1)
			ct := tc.encryptVec(t, u)
			for _, g := range lts {
				var err error
				ct, err = tc.eval.EvaluateLinearTransform(ct, g, tc.enc)
				if err != nil {
					t.Fatal(err)
				}
				ct = tc.eval.Rescale(ct)
			}
			if e := maxErr(tc.decryptVec(ct), u); e > 1e-3 {
				t.Fatalf("fftIter=%d: S2C∘C2S round trip error %g", fftIter, e)
			}
		})
	}
}

// TestBSGSRotationCount pins the headline saving: a K-diagonal sweep under
// baby step bs spends exactly (bs-1) + (⌈K/bs⌉-1) key-switch gadget
// products, observed through the ckks_lintrans_rotations_total counter; the
// per-diagonal hoisted sweep spends K-1. Also checks trace parity: with
// bs = ⌈√K⌉ the plan's count matches the sim's linearHoisted EvkCount
// formula bs + ⌈K/bs⌉ - 2.
func TestBSGSRotationCount(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(62))
	slots := tc.params.Slots()
	const k = 16
	lt := denseTestTransform(r, slots, k)
	lt.SetBabyStep(4)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys,
		append(GaloisKeysForLinearTransform(tc.params, lt), lt.Rotations()...))

	plan := lt.bsgsPlanFor(tc.params)
	if plan == nil {
		t.Fatal("forced baby step produced no plan")
	}
	wantKS := (4 - 1) + (k/4 - 1)
	if got := plan.keySwitchCount(); got != wantKS {
		t.Fatalf("plan keySwitchCount = %d, want %d", got, wantKS)
	}

	ct := tc.encryptVec(t, randomComplex(r, slots, 1))
	before := obsLinTransRotations.Value()
	if _, err := tc.eval.EvaluateLinearTransformBSGS(ct, lt, tc.enc); err != nil {
		t.Fatal(err)
	}
	if got := int(obsLinTransRotations.Value() - before); got != wantKS {
		t.Fatalf("BSGS sweep spent %d key switches, want %d", got, wantKS)
	}

	before = obsLinTransRotations.Value()
	if _, err := tc.eval.EvaluateLinearTransformHoisted(ct, lt, tc.enc); err != nil {
		t.Fatal(err)
	}
	if got := int(obsLinTransRotations.Value() - before); got != k-1 {
		t.Fatalf("hoisted sweep spent %d key switches, want %d", got, k-1)
	}

	// Trace parity: the sim's linearHoisted models bs-1 baby KeyMults and
	// gs-1 giant KeyMults with bs = ceil(sqrt(k)).
	bsTrace := int(math.Ceil(math.Sqrt(float64(k))))
	gsTrace := (k + bsTrace - 1) / bsTrace
	lt.SetBabyStep(bsTrace)
	plan = lt.bsgsPlanFor(tc.params)
	if got := plan.keySwitchCount(); got != bsTrace+gsTrace-2 {
		t.Fatalf("trace parity: keySwitchCount = %d, want %d", got, bsTrace+gsTrace-2)
	}
}

// TestBSGSDispatcherFallsBackWithoutKeys checks the compatibility contract:
// a key set holding only the per-diagonal rotations (the pre-BSGS layout)
// must route EvaluateLinearTransform through the hoisted sweep rather than
// fail on missing baby/giant keys.
func TestBSGSDispatcherFallsBackWithoutKeys(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(63))
	slots := tc.params.Slots()
	const k = 16
	lt := denseTestTransform(r, slots, k)
	lt.SetBabyStep(4)
	// Per-diagonal keys only: rotations 1..15 but none of the giant steps
	// {4, 8, 12}... which ARE diagonal offsets here — so drop to a diagonal
	// set whose giants are not raw offsets: odd offsets only.
	diags := make(map[int][]complex128)
	for d := 1; d < 2*k; d += 2 {
		diags[d] = lt.Diags[(d/2)%k]
	}
	lt = NewLinearTransform(slots, diags)
	lt.SetBabyStep(4)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, lt.Rotations())

	u := randomComplex(r, slots, 1)
	want := lt.Apply(u)
	ct := tc.encryptVec(t, u)

	before := obsLinTransRotations.Value()
	got, err := tc.eval.EvaluateLinearTransform(ct, lt, tc.enc)
	if err != nil {
		t.Fatal(err)
	}
	// All k diagonals are nonzero offsets -> hoisted spends k key switches.
	if spent := int(obsLinTransRotations.Value() - before); spent != k {
		t.Fatalf("fallback sweep spent %d key switches, want hoisted count %d", spent, k)
	}
	got = tc.eval.Rescale(got)
	if e := maxErr(tc.decryptVec(got), want); e > 1e-3 {
		t.Fatalf("fallback result error %g", e)
	}
}

// TestBSGSLegacyKeyFallback pins the band-compatibility property for the
// BSGS path: with every key's level-aware bands stripped (old key blobs),
// the shared decomposition must fall back to the legacy gadget shape and
// stay correct at every level and in every execution mode.
func TestBSGSLegacyKeyFallback(t *testing.T) {
	tc := newTestContext(t, richLevelAwareParams())
	r := rand.New(rand.NewSource(64))
	slots := tc.params.Slots()
	lt := denseTestTransform(r, slots, 8)
	lt.SetBabyStep(4)
	tc.kgen.GenRotationKeys(tc.sk, tc.keys, GaloisKeysForLinearTransform(tc.params, lt))
	for _, k := range tc.keys.Gal {
		k.Bands = nil
	}
	tc.keys.Rlk.Bands = nil

	u := randomComplex(r, slots, 1)
	want := lt.Apply(u)
	ctTop := tc.encryptVec(t, u)
	withExecModes(t, func(mode string) {
		for _, lvl := range []int{1, tc.params.MaxLevel() / 2, tc.params.MaxLevel()} {
			ct := tc.eval.DropLevel(ctTop, lvl)
			got, err := tc.eval.EvaluateLinearTransform(ct, lt, tc.enc)
			if err != nil {
				t.Fatalf("%s lvl %d: %v", mode, lvl, err)
			}
			got = tc.eval.Rescale(got)
			if e := maxErr(tc.decryptVec(got), want); e > 1e-2 {
				t.Fatalf("%s lvl %d: bandless BSGS error %g", mode, lvl, e)
			}
		}
	})
}

// TestEncCacheConcurrent hammers the encoded-diagonal cache from many
// goroutines across levels and both variants (plain + pre-rotated) under
// -race: the singleflight must produce one consistent entry per key and the
// byte gauge must account every cached coefficient.
func TestEncCacheConcurrent(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(65))
	lt := denseTestTransform(r, tc.params.Slots(), 8)
	lt.SetBabyStep(4)
	plan := lt.bsgsPlanFor(tc.params)
	if plan == nil {
		t.Fatal("no plan")
	}

	rq := tc.params.RingQ()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				lvl := 1 + (w+i)%tc.params.MaxLevel()
				scale := float64(rq.Moduli[lvl].Q)
				if _, err := lt.encodedAt(tc.enc, lvl, scale); err != nil {
					t.Error(err)
					return
				}
				if _, err := lt.encodedBSGSAt(tc.enc, lvl, scale, plan); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	if lt.CacheBytes() <= 0 {
		t.Fatalf("cache bytes = %d, want > 0", lt.CacheBytes())
	}
	lt.ClearEncodedCache()
	if lt.CacheBytes() != 0 {
		t.Fatalf("cache bytes after clear = %d, want 0", lt.CacheBytes())
	}
}

// TestComposeDiagSparse checks the sparse composition against a dense
// reference on rows with structural zeros, and that offsets whose product
// vanishes identically are never materialized.
func TestComposeDiagSparse(t *testing.T) {
	const n = 8
	r := rand.New(rand.NewSource(66))
	sparseRow := func(support ...int) []complex128 {
		row := make([]complex128, n)
		for _, j := range support {
			row[j] = complex(2*r.Float64()-1, 2*r.Float64()-1)
		}
		return row
	}
	a := diagMap{0: sparseRow(0, 1, 2, 3), 2: sparseRow(4, 5)}
	b := diagMap{0: sparseRow(0, 2, 4, 6), 6: sparseRow(1, 3)}

	got := composeDiag(a, b, n)

	// Dense reference: C_t[j] = Σ_{r+s≡t} A_r[j]·B_s[(j+r) mod n].
	want := map[int][]complex128{}
	for t2 := 0; t2 < n; t2++ {
		want[t2] = make([]complex128, n)
	}
	for ra, ar := range a {
		for s, bs := range b {
			tt := ((ra+s)%n + n) % n
			for j := 0; j < n; j++ {
				want[tt][j] += ar[j] * bs[(j+ra)%n]
			}
		}
	}
	for t2, wrow := range want {
		grow, ok := got[t2]
		nonzero := false
		for _, v := range wrow {
			if v != 0 {
				nonzero = true
				break
			}
		}
		if !nonzero {
			if ok {
				t.Fatalf("offset %d: zero product materialized a row", t2)
			}
			continue
		}
		if !ok {
			t.Fatalf("offset %d: missing row", t2)
		}
		if e := maxErr(grow, wrow); e > 1e-12 {
			t.Fatalf("offset %d: sparse compose error %g", t2, e)
		}
	}
}

// TestBSGSAutoSelection pins the cost model's direction at test scale: a
// dense contiguous diagonal set must select a baby step while a 2-diagonal
// map must stay on the per-diagonal sweep, and the selected plan must never
// need more key switches than the hoisted sweep it replaces.
func TestBSGSAutoSelection(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(67))
	slots := tc.params.Slots()

	dense := denseTestTransform(r, slots, 32)
	plan := dense.bsgsPlanFor(tc.params)
	if plan == nil {
		t.Fatal("dense 32-diagonal transform did not select BSGS")
	}
	if plan.keySwitchCount() >= 31 {
		t.Fatalf("BSGS plan spends %d key switches, hoisted needs 31", plan.keySwitchCount())
	}

	tiny := denseTestTransform(r, slots, 2)
	if p := tiny.bsgsPlanFor(tc.params); p != nil {
		t.Fatalf("2-diagonal transform selected BSGS bs=%d", p.bs)
	}
}
