package ring

import (
	"math"
	"math/rand"
	"sync"
)

// Sampler draws the random polynomials used by RLWE key generation and
// encryption. It is deterministic given its seed, which the test suite and
// examples rely on; production use would seed from crypto/rand. The mutex
// serializes draws so encryptors can be shared across goroutines (the
// sequence of outputs then depends on caller interleaving, but each draw
// stays a valid sample).
type Sampler struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewSampler returns a sampler seeded deterministically.
func NewSampler(seed int64) *Sampler {
	return &Sampler{rng: rand.New(rand.NewSource(seed))}
}

// UniformPoly fills a fresh polynomial with residues uniform in [0, q_i) per
// limb. Uniform polynomials are invariant under the NTT (the transform of a
// uniform polynomial is uniform), so the domain flag is set by the caller's
// needs via asNTT.
func (s *Sampler) UniformPoly(r *Ring, level int, asNTT bool) *Poly {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		q := r.Moduli[i].Q
		row := p.Coeffs[i]
		bound := ^uint64(0) - ^uint64(0)%q // rejection bound for uniformity
		for j := range row {
			for {
				v := s.rng.Uint64()
				if v < bound {
					row[j] = v % q
					break
				}
			}
		}
	}
	p.IsNTT = asNTT
	return p
}

// SmallVectorToPoly embeds a small signed integer vector into all limbs of a
// fresh coefficient-domain polynomial. It is used to lift one sampled secret
// or error into several rings (e.g. both the Q and P bases of a key).
func SmallVectorToPoly(r *Ring, level int, v []int64) *Poly {
	return smallToPoly(r, level, v)
}

// TernaryVector samples a length-n vector with exactly h entries in {-1,+1}.
func (s *Sampler) TernaryVector(n, h int) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := make([]int64, n)
	perm := s.rng.Perm(n)
	for k := 0; k < h && k < n; k++ {
		if s.rng.Intn(2) == 0 {
			v[perm[k]] = 1
		} else {
			v[perm[k]] = -1
		}
	}
	return v
}

// GaussianVector samples a length-n rounded-Gaussian vector with standard
// deviation sigma, truncated at 6 sigma.
func (s *Sampler) GaussianVector(n int, sigma float64) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := make([]int64, n)
	bound := int64(math.Ceil(6 * sigma))
	for j := range v {
		for {
			x := int64(math.Round(s.rng.NormFloat64() * sigma))
			if x >= -bound && x <= bound {
				v[j] = x
				break
			}
		}
	}
	return v
}

// smallToPoly embeds a small signed integer vector into all limbs of a fresh
// coefficient-domain polynomial.
func smallToPoly(r *Ring, level int, v []int64) *Poly {
	p := r.NewPoly(level)
	for i := 0; i <= level; i++ {
		mod := r.Moduli[i]
		row := p.Coeffs[i]
		for j, x := range v {
			row[j] = mod.FromCentered(x)
		}
	}
	return p
}

// TernaryPoly samples a polynomial with exactly h coefficients in {-1, +1}
// (a fixed-Hamming-weight ternary secret, Table IV's H_d / H_s) and the rest
// zero. Returned in the coefficient domain.
func (s *Sampler) TernaryPoly(r *Ring, level, h int) *Poly {
	return smallToPoly(r, level, s.TernaryVector(r.N, h))
}

// GaussianPoly samples a discrete Gaussian error polynomial with standard
// deviation sigma (rounded continuous Gaussian, adequate for a research
// implementation). Returned in the coefficient domain.
func (s *Sampler) GaussianPoly(r *Ring, level int, sigma float64) *Poly {
	return smallToPoly(r, level, s.GaussianVector(r.N, sigma))
}
