package ckks

// Homomorphic comparison primitives. The Sort workload of the paper's
// evaluation ([35], §VII-A) is built from exactly these: an approximate
// sign function evaluated as a composition of low-degree odd polynomials,
// and the min/max "comparators" of a sorting network derived from it.

// signPoly applies one step of the composite sign iteration
// f(x) = (3x - x³)/2, which maps [-1,1] to itself and converges to sign(x).
// Consumes three levels (square, constant scaling, product).
func (ev *Evaluator) signPoly(ct *Ciphertext) *Ciphertext {
	rq := ev.params.RingQ()
	// x² (level -1)
	x2 := ev.Rescale(ev.Square(ct))
	// (3 - x²)/2 at the scale of x², via constant ops.
	half := ev.MultConst(x2, -0.5, float64(rq.Moduli[x2.Level()].Q))
	half = ev.Rescale(half)
	half = ev.AddConst(half, 1.5)
	// x · (3 - x²)/2 (level -2)
	x := ev.DropLevel(ct, half.Level())
	return ev.Rescale(ev.MulRelin(x, half, nil))
}

// EvalSign approximates sign(x) on slots in [-1, 1] with the given number
// of composite iterations (each consumes three levels). More iterations
// sharpen the transition around zero: after k iterations inputs with
// |x| ≳ 0.6^k are mapped close to ±1.
func (ev *Evaluator) EvalSign(ct *Ciphertext, iterations int) *Ciphertext {
	out := ct
	for i := 0; i < iterations; i++ {
		out = ev.signPoly(out)
	}
	return out
}

// EvalCompare approximates (sign(a-b)+1)/2 ∈ {0, 1}: one for slots where
// a > b, zero where a < b. Inputs must lie in [-1/2, 1/2] so the difference
// stays in [-1, 1].
func (ev *Evaluator) EvalCompare(a, b *Ciphertext, iterations int) *Ciphertext {
	s := ev.EvalSign(ev.Sub(a, b), iterations)
	half := ev.MultConst(s, 0.5, float64(ev.params.RingQ().Moduli[s.Level()].Q))
	half = ev.Rescale(half)
	return ev.AddConst(half, 0.5)
}

// EvalMinMax returns the slot-wise (min, max) of two ciphertexts with
// values in [-1/2, 1/2]:
//
//	max = (a+b)/2 + (a-b)·sign(a-b)/2 ,  min = (a+b) - max.
//
// This is the two-way comparator of the Sort workload.
func (ev *Evaluator) EvalMinMax(a, b *Ciphertext, iterations int) (minCt, maxCt *Ciphertext) {
	rq := ev.params.RingQ()
	diff := ev.Sub(a, b)
	s := ev.EvalSign(diff, iterations)

	// |a-b| ≈ (a-b)·sign(a-b)
	d := ev.DropLevel(diff, s.Level())
	abs := ev.Rescale(ev.MulRelin(d, s, nil))

	sum := ev.Add(a, b)
	sum = ev.DropLevel(sum, abs.Level())
	// (sum + abs)/2 and (sum - abs)/2.
	qd := float64(rq.Moduli[abs.Level()].Q)
	maxCt = ev.Rescale(ev.MultConst(ev.Add(sum, abs), 0.5, qd))
	minCt = ev.Rescale(ev.MultConst(ev.Sub(sum, abs), 0.5, qd))
	return minCt, maxCt
}
