// Package gpu is the analytical GPU execution model substituting for the
// real A100/RTX 4090 measurements of the paper (§VII-A): per-kernel roofline
// timing (integer throughput vs. off-chip DRAM bandwidth), NVML-style energy
// accounting, and library profiles capturing the relative kernel quality of
// Cheddar, 100×, and Phantom (Fig 2a).
//
// The substitution is justified by the paper's own analysis: element-wise
// ops run at < 2 ops/byte and are DRAM-bandwidth-bound, while (I)NTT and
// BConv are compute-bound (§IV-D) — precisely the two regimes a roofline
// captures.
package gpu

import (
	"github.com/anaheim-sim/anaheim/internal/dram"
	"github.com/anaheim-sim/anaheim/internal/obs"
)

// Aggregate counters over every priced kernel, regardless of which
// experiment or scheduler asked: simulated time and DRAM traffic are the
// §VII measurement quantities; the kernel count normalizes them.
var (
	simKernels = obs.Default.Counter("gpu_sim_kernels_total")
	simTimeNs  = obs.Default.Counter("gpu_sim_time_ns_total")
	simBytes   = obs.Default.Counter("gpu_sim_bytes_total")
	simEnergy  = obs.Default.Counter("gpu_sim_energy_nj_total")
)

// Config describes one GPU (Table III).
type Config struct {
	Name string
	DRAM dram.Config

	IntTOPS   float64 // peak 32-bit integer multiply-and-add throughput
	L2MB      float64
	EffBWFrac float64 // achieved fraction of peak DRAM bandwidth

	StaticW      float64 // baseline power while a kernel is resident
	ComputePJOp  float64 // energy per weighted integer op
	CorePJb      float64 // on-chip data movement energy per DRAM-touching bit
	TransitionUs float64 // GPU<->PIM kernel transition overhead (§V-C)
}

// A100 returns the NVIDIA A100 80GB model.
func A100() Config {
	return Config{
		Name:         "A100 80GB",
		DRAM:         dram.A100HBM2(),
		IntTOPS:      19.5,
		L2MB:         40,
		EffBWFrac:    0.85,
		StaticW:      90,
		ComputePJOp:  9,
		CorePJb:      4.0,
		TransitionUs: 2,
	}
}

// RTX4090 returns the RTX 4090 model.
func RTX4090() Config {
	return Config{
		Name:         "RTX 4090",
		DRAM:         dram.RTX4090GDDR6X(),
		IntTOPS:      41.3,
		L2MB:         72,
		EffBWFrac:    0.85,
		StaticW:      70,
		ComputePJOp:  7,
		CorePJb:      4.0,
		TransitionUs: 2,
	}
}

// EffBWGBs is the achieved DRAM bandwidth.
func (c Config) EffBWGBs() float64 { return c.DRAM.ExternalBWGBs * c.EffBWFrac }

// LibraryProfile captures a CKKS GPU library's kernel quality as the
// fraction of peak integer throughput its compute-bound kernels achieve.
// Element-wise kernels are bandwidth-bound on every library (§IV-D: "Cheddar
// also failed to improve them"), so no efficiency knob exists for them.
type LibraryProfile struct {
	Name     string
	NTTEff   float64
	BConvEff float64
	// Fusion support: Cheddar includes state-of-the-art kernel fusion [38];
	// the older libraries fuse less, paying extra element-wise round trips.
	EWFusion bool
}

// Cheddar is the paper's baseline library [44].
func Cheddar() LibraryProfile {
	return LibraryProfile{Name: "Cheddar", NTTEff: 0.45, BConvEff: 0.52, EWFusion: true}
}

// HundredX is the 100× library [38]: Cheddar accelerates (I)NTT and BConv
// by 1.73-1.81× over it (§IV-A).
func HundredX() LibraryProfile {
	return LibraryProfile{Name: "100x", NTTEff: 0.45 / 1.80, BConvEff: 0.52 / 1.75, EWFusion: true}
}

// Phantom is the Phantom library [77].
func Phantom() LibraryProfile {
	return LibraryProfile{Name: "Phantom", NTTEff: 0.45 / 1.81, BConvEff: 0.52 / 1.73, EWFusion: false}
}

// Cost is a priced kernel execution.
type Cost struct {
	TimeNs   float64
	EnergyNJ float64
	Bytes    float64 // DRAM bytes moved
}

// KernelCost prices a kernel given its weighted integer-op count, its DRAM
// traffic, and the efficiency of its class under the given library.
func (c Config) KernelCost(weightedOps, bytes, classEff float64) Cost {
	computeNs := 0.0
	if weightedOps > 0 && classEff > 0 {
		computeNs = weightedOps / (c.IntTOPS * classEff * 1e3) // ops / (ops/ns)
	}
	memNs := bytes / c.EffBWGBs()
	t := computeNs
	if memNs > t {
		t = memNs
	}
	energy := t*c.StaticW + // ns * W = nJ
		weightedOps*c.ComputePJOp/1e3 +
		bytes*8*(c.DRAM.GPUAccessPJb()+c.CorePJb)/1e3
	simKernels.Inc()
	simTimeNs.Add(t)
	simBytes.Add(bytes)
	simEnergy.Add(energy)
	return Cost{TimeNs: t, EnergyNJ: energy, Bytes: bytes}
}
