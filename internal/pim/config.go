package pim

import (
	"github.com/anaheim-sim/anaheim/internal/dram"
)

// UnitConfig describes one Anaheim PIM deployment (Table III).
type UnitConfig struct {
	Name string
	DRAM dram.Config

	LogicDie     bool // custom-HBM variant: units on the HBM logic die
	ClockMHz     float64
	BufferSize   int // B, data buffer entries
	BanksPerUnit int // 1 near-bank; >1 for logic-die units
	MMACsPerUnit int // lanes matching the 256-bit global I/O (8 × 28-bit)

	DieGroups int // PIM die groups sharing a prime per instruction (§VI-B)

	// Reported characteristics (Table III).
	BWIncrease    float64 // theoretical internal-BW multiple of external BW
	TOPSPerGroup  float64 // MMAC throughput per die (near-bank) or stack
	AreaMM2PerDie float64
	AreaPortion   float64 // fraction of die (or logic die) area

	MMACEnergyPJ float64 // energy per modular multiply-accumulate (28-bit)
	ActEnergyNJ  float64 // energy of one all-bank row switch, per bank

	// CyclesPerChunk is the unit's processing cost per 256-bit chunk.
	// Anaheim's 8 MMAC lanes sustain one chunk per cycle (zero means 1);
	// general-purpose PIM cores (§VI-D, UPMEM-style [24]) emulate modular
	// arithmetic in software and pay an order of magnitude more.
	CyclesPerChunk float64
}

// A100NearBank is Anaheim on A100 80GB with near-bank PIM units.
func A100NearBank() UnitConfig {
	return UnitConfig{
		Name:          "A100 near-bank",
		DRAM:          dram.A100HBM2(),
		ClockMHz:      378,
		BufferSize:    16,
		BanksPerUnit:  1,
		MMACsPerUnit:  8,
		DieGroups:     5, // one per HBM stack
		BWIncrease:    16,
		TOPSPerGroup:  0.194,
		AreaMM2PerDie: 10.7,
		AreaPortion:   0.0969,
		MMACEnergyPJ:  0.9,
		ActEnergyNJ:   1.0,
	}
}

// A100CustomHBM is the logic-die variant (§VI-D): PIM units on the HBM
// logic die, each serving several banks over widened TSVs; internal
// bandwidth limited to 4× external by the TSV budget.
func A100CustomHBM() UnitConfig {
	return UnitConfig{
		Name:          "A100 custom-HBM",
		DRAM:          dram.A100CustomHBM(),
		LogicDie:      true,
		ClockMHz:      756,
		BufferSize:    16,
		BanksPerUnit:  8,
		MMACsPerUnit:  8,
		DieGroups:     5,
		BWIncrease:    4,
		TOPSPerGroup:  0.388,
		AreaMM2PerDie: 10.9,
		AreaPortion:   0.0994,
		MMACEnergyPJ:  0.55, // logic process node, not DRAM process
		ActEnergyNJ:   1.0,
	}
}

// RTX4090NearBank is Anaheim on RTX 4090 with near-bank PIM in GDDR6X.
func RTX4090NearBank() UnitConfig {
	return UnitConfig{
		Name:          "RTX4090 near-bank",
		DRAM:          dram.RTX4090GDDR6X(),
		ClockMHz:      656,
		BufferSize:    32,
		BanksPerUnit:  1,
		MMACsPerUnit:  8,
		DieGroups:     3, // 4 dies per group
		BWIncrease:    8,
		TOPSPerGroup:  0.168,
		AreaMM2PerDie: 7.26,
		AreaPortion:   0.0758,
		MMACEnergyPJ:  0.9,
		ActEnergyNJ:   1.1,
	}
}

// UPMEMStyle returns a general-purpose near-bank PIM deployment in the
// spirit of UPMEM [24], fitted to the A100's DRAM geometry: one scalar DPU
// per bank that emulates 28-bit modular arithmetic in software (~12 cycles
// per element, ~96 per chunk). §VI-D notes Anaheim's software stack and
// layout still apply to such devices; §IX explains why their FHE gains
// "stay at modest levels".
func UPMEMStyle() UnitConfig {
	u := A100NearBank()
	u.Name = "A100 general-purpose PIM (UPMEM-style)"
	u.ClockMHz = 400
	u.MMACsPerUnit = 1
	u.CyclesPerChunk = 96
	u.TOPSPerGroup = 0.002
	u.MMACEnergyPJ = 8
	return u
}

// BanksPerGroup returns the banks cooperating on one limb's coefficients.
func (u UnitConfig) BanksPerGroup() int {
	return u.DRAM.TotalBanks() / u.DieGroups
}

// InternalBWGBs returns the aggregate PIM-side bandwidth: all banks
// delivering one chunk per PIM clock, capped by the configured
// internal-bandwidth multiple (the TSV budget for custom-HBM).
func (u UnitConfig) InternalBWGBs() float64 {
	chunkBytes := float64(u.DRAM.ChunkBits) / 8
	raw := float64(u.DRAM.TotalBanks()) / float64(u.BanksPerUnit) * chunkBytes * u.ClockMHz * 1e6 / 1e9 * float64(u.BanksPerUnit)
	cap := u.BWIncrease * u.DRAM.ExternalBWGBs
	if u.LogicDie && raw > cap {
		return cap
	}
	return raw
}
