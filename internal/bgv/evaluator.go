package bgv

import (
	"fmt"

	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Evaluator executes homomorphic integer operations. The element-wise parts
// (additions, the Tensor step, KeyMult accumulations) are exactly the ops
// Anaheim offloads for CKKS — §VIII-C's point that the PIM ISA carries over.
type Evaluator struct {
	p *Parameters
}

// NewEvaluator binds a parameter set.
func NewEvaluator(p *Parameters) *Evaluator { return &Evaluator{p: p} }

func (ev *Evaluator) checkFactors(a, b *Ciphertext) {
	if a.PtFactor != b.PtFactor {
		panic(fmt.Sprintf("bgv: plaintext factors diverged (%d vs %d); modulus-switch both operands alike",
			a.PtFactor, b.PtFactor))
	}
}

// Add returns a + b (slot-wise mod t).
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	ev.checkFactors(a, b)
	rq := ev.p.rq
	lvl := min(a.Level(), b.Level())
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), PtFactor: a.PtFactor}
	rq.Add(out.C0, a.C0.Truncated(lvl), b.C0.Truncated(lvl), lvl)
	rq.Add(out.C1, a.C1.Truncated(lvl), b.C1.Truncated(lvl), lvl)
	return out
}

// Sub returns a - b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	ev.checkFactors(a, b)
	rq := ev.p.rq
	lvl := min(a.Level(), b.Level())
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), PtFactor: a.PtFactor}
	rq.Sub(out.C0, a.C0.Truncated(lvl), b.C0.Truncated(lvl), lvl)
	rq.Sub(out.C1, a.C1.Truncated(lvl), b.C1.Truncated(lvl), lvl)
	return out
}

// AddPlain returns ct + pt for an encoded plaintext.
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *ring.Poly) *Ciphertext {
	rq := ev.p.rq
	lvl := ct.Level()
	m := pt.Truncated(lvl).CopyNew()
	rq.NTT(m, lvl)
	if ct.PtFactor != 1 {
		// Match the ciphertext's accumulated factor.
		rq.MulScalar(m, m, ct.PtFactor, lvl)
	}
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: ct.C1.CopyNew(), PtFactor: ct.PtFactor}
	rq.Add(out.C0, ct.C0, m, lvl)
	return out
}

// MulPlain returns ct ⊙ pt (slot-wise product with a plaintext vector).
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *ring.Poly) *Ciphertext {
	rq := ev.p.rq
	lvl := ct.Level()
	m := pt.Truncated(lvl).CopyNew()
	rq.NTT(m, lvl)
	out := &Ciphertext{C0: rq.NewPoly(lvl), C1: rq.NewPoly(lvl), PtFactor: ct.PtFactor}
	rq.MulCoeffs(out.C0, ct.C0, m, lvl)
	rq.MulCoeffs(out.C1, ct.C1, m, lvl)
	return out
}

// MulRelin returns a ⊙ b with BV relinearization: the Tensor element-wise
// step, then the per-limb KeyMult accumulation (exact single-limb digits,
// no rounding to disturb the plaintext residue).
func (ev *Evaluator) MulRelin(a, b *Ciphertext, rlk *RelinKey) *Ciphertext {
	ev.checkFactors(a, b)
	rq := ev.p.rq
	lvl := min(a.Level(), b.Level())

	d0 := rq.NewPoly(lvl)
	d1 := rq.NewPoly(lvl)
	d2 := rq.NewPoly(lvl)
	d0.IsNTT, d1.IsNTT, d2.IsNTT = true, true, true
	rq.MulCoeffs(d0, a.C0.Truncated(lvl), b.C0.Truncated(lvl), lvl)
	rq.MulCoeffsAdd(d1, a.C0.Truncated(lvl), b.C1.Truncated(lvl), lvl)
	rq.MulCoeffsAdd(d1, a.C1.Truncated(lvl), b.C0.Truncated(lvl), lvl)
	rq.MulCoeffs(d2, a.C1.Truncated(lvl), b.C1.Truncated(lvl), lvl)

	// BV key switching: decompose d2 into exact per-limb digits.
	coeff := d2.CopyNew()
	rq.INTT(coeff, lvl)
	u0 := rq.NewPoly(lvl)
	u1 := rq.NewPoly(lvl)
	u0.IsNTT, u1.IsNTT = true, true
	for i := 0; i <= lvl; i++ {
		digit := rq.NewPoly(lvl)
		for j := 0; j <= lvl; j++ {
			mod := rq.Moduli[j]
			src := coeff.Coeffs[i]
			dst := digit.Coeffs[j]
			if j == i {
				copy(dst, src)
				continue
			}
			for k := range dst {
				dst[k] = src[k] % mod.Q
			}
		}
		rq.NTT(digit, lvl)
		rq.MulCoeffsAdd(u0, digit, rlk.B[i].Truncated(lvl), lvl)
		rq.MulCoeffsAdd(u1, digit, rlk.A[i].Truncated(lvl), lvl)
	}
	rq.Add(d0, d0, u0, lvl)
	rq.Add(d1, d1, u1, lvl)
	return &Ciphertext{C0: d0, C1: d1, PtFactor: ev.p.t.Mul(a.PtFactor, b.PtFactor)}
}

// ModSwitch drops the top prime with the BGV congruence correction: each
// component becomes (c + δ)/q_top with δ = t·[(q_top - [c]_{q_top})·t^{-1}]
// chosen so the division is exact and the plaintext residue is multiplied
// by exactly q_top^{-1} (tracked in PtFactor). Controls noise growth across
// multiplication chains.
func (ev *Evaluator) ModSwitch(ct *Ciphertext) *Ciphertext {
	rq := ev.p.rq
	lvl := ct.Level()
	if lvl == 0 {
		panic("bgv: cannot modulus-switch at level 0")
	}
	t := ev.p.t
	qTop := rq.Moduli[lvl]
	tInvQ := qTop.MustInv(t.Q % qTop.Q)

	// [ct']_t = q_top^{-1}·[ct]_t, so the tracked factor gains q_top^{-1}.
	out := &Ciphertext{PtFactor: t.Mul(ct.PtFactor, t.MustInv(qTop.Q%t.Q))}
	for c, src := range []*ring.Poly{ct.C0, ct.C1} {
		w := src.CopyNew()
		rq.INTT(w, lvl)
		top := w.Coeffs[lvl]
		for i := 0; i < lvl; i++ {
			mod := rq.Moduli[i]
			qInv := mod.MustInv(qTop.Q % mod.Q)
			tModQi := t.Q % mod.Q
			row := w.Coeffs[i]
			for j := range row {
				// u = (q_top - r)·t^{-1} mod q_top; δ = t·u ≡ -r (mod q_top),
				// δ ≡ 0 (mod t).
				r := top[j]
				u := qTop.Mul(qTop.Sub(0, r), tInvQ)
				delta := mod.Mul(tModQi, u%mod.Q)
				row[j] = mod.Mul(mod.Add(row[j], delta), qInv)
			}
		}
		tr := w.Truncated(lvl - 1)
		rq.NTT(tr, lvl-1)
		if c == 0 {
			out.C0 = tr
		} else {
			out.C1 = tr
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
