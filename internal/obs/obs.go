// Package obs is the dependency-free observability substrate of the
// serving stack: atomic counters, gauges, bounded latency histograms with
// quantile estimation, and lightweight span tracing with parent/child
// links. Every layer that wants to be measured — the engine scheduler, the
// ckks evaluator hot paths, the ring buffer pool, the gpu/pim simulation
// models — records into a Registry; cmd/anaheim-serve exposes the default
// registry in Prometheus text format and cmd/anaheim-bench dumps it as
// JSON next to the micro results.
//
// The package deliberately has no dependencies beyond the standard
// library so that any package in the tree (including the lowest ring
// layer) can import it without cycles.
//
// Metric names follow the Prometheus convention and may carry a label set
// inline: `engine_op_exec_seconds{op="mul"}`. The exporter splits the
// base name from the labels so that families group correctly.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing float64, safe for concurrent use.
// Float-valued so that simulated nanoseconds and byte counts from the
// analytical models accumulate without truncation.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add accumulates v (must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(v float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is an instantaneous int64 value (occupancy, depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add applies a delta.
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named collection of metrics. The zero value is not usable;
// create with NewRegistry or use Default.
type Registry struct {
	counters sync.Map // name -> *Counter
	gauges   sync.Map // name -> *Gauge
	gaugeFns sync.Map // name -> func() float64
	hists    sync.Map // name -> *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Default is the process-wide registry instrumented packages record into.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if v, ok := r.counters.Load(name); ok {
		return v.(*Counter)
	}
	v, _ := r.counters.LoadOrStore(name, &Counter{})
	return v.(*Counter)
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if v, ok := r.gauges.Load(name); ok {
		return v.(*Gauge)
	}
	v, _ := r.gauges.LoadOrStore(name, &Gauge{})
	return v.(*Gauge)
}

// GaugeFunc registers (or replaces) a gauge whose value is sampled at
// export time — for quantities that already live in an atomic elsewhere,
// like channel depth or an admission count.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.gaugeFns.Store(name, fn)
}

// Histogram returns the named histogram with the default latency buckets,
// creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramWith(name, nil)
}

// HistogramWith returns the named histogram, creating it with the given
// bucket upper bounds (nil means DefBuckets). Bounds are fixed at creation;
// later calls ignore the argument.
func (r *Registry) HistogramWith(name string, bounds []float64) *Histogram {
	if v, ok := r.hists.Load(name); ok {
		return v.(*Histogram)
	}
	v, _ := r.hists.LoadOrStore(name, newHistogram(bounds))
	return v.(*Histogram)
}

// Reset drops every registered metric (tests).
func (r *Registry) Reset() {
	for _, m := range []*sync.Map{&r.counters, &r.gauges, &r.gaugeFns, &r.hists} {
		m.Range(func(k, _ any) bool {
			m.Delete(k)
			return true
		})
	}
}
