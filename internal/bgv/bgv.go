// Package bgv implements the BGV scheme [10] for exact integer arithmetic
// on the same RNS/NTT substrate as internal/ckks — the direct extension the
// Anaheim paper sketches in §VIII-C: "BGV and BFV include the same KeyMult
// ops", so a PIM-offloaded BGV reuses Anaheim's element-wise instruction set
// unchanged.
//
// Design choices for this research implementation:
//
//   - Plaintext space R_t with prime t ≡ 1 (mod 2N), giving N integer slots
//     via the plaintext-side NTT (batching).
//   - BV-style per-limb key switching (one gadget digit per RNS prime, no
//     special modulus): digits are exact single-limb values, so no rounding
//     step can disturb the plaintext residue — correctness over noise rate.
//   - BGV modulus switching with the t-congruent correction, tracking the
//     accumulated q^{-1} plaintext factor on the ciphertext.
package bgv

import (
	"fmt"
	"math/big"

	"github.com/anaheim-sim/anaheim/internal/modarith"
	"github.com/anaheim-sim/anaheim/internal/ntt"
	"github.com/anaheim-sim/anaheim/internal/ring"
)

// Parameters describes a BGV instance.
type Parameters struct {
	logN int
	n    int
	t    modarith.Modulus // plaintext modulus, prime, t ≡ 1 mod 2N
	rq   *ring.Ring
	ptTb *ntt.Tables // NTT over Z_t for batching
}

// NewParameters builds a BGV parameter set: degree 2^logN, plaintext
// modulus t (prime, ≡ 1 mod 2N), and a Q chain of the given bit sizes.
func NewParameters(logN int, t uint64, logQ []int) (*Parameters, error) {
	if !modarith.IsPrime(t) {
		return nil, fmt.Errorf("bgv: plaintext modulus %d must be prime", t)
	}
	n := 1 << uint(logN)
	if t%uint64(2*n) != 1 {
		return nil, fmt.Errorf("bgv: t = %d must be 1 mod 2N for batching", t)
	}
	primes, err := modarith.GeneratePrimeChain(logQ, logN)
	if err != nil {
		return nil, err
	}
	for _, q := range primes {
		if q == t {
			return nil, fmt.Errorf("bgv: t collides with a ciphertext prime")
		}
	}
	rq, err := ring.NewRing(logN, primes)
	if err != nil {
		return nil, err
	}
	tm, err := modarith.NewModulus(t)
	if err != nil {
		return nil, err
	}
	ptTb, err := ntt.NewTables(tm, logN)
	if err != nil {
		return nil, err
	}
	return &Parameters{logN: logN, n: n, t: tm, rq: rq, ptTb: ptTb}, nil
}

// TestParameters returns a small insecure instance: N=2^10, t=65537,
// five 50-bit primes (depth-3 multiplications with modulus switching).
func TestParameters() (*Parameters, error) {
	return NewParameters(10, 65537, []int{50, 50, 50, 50, 50})
}

// N returns the ring degree (= slot count for batching).
func (p *Parameters) N() int { return p.n }

// T returns the plaintext modulus.
func (p *Parameters) T() uint64 { return p.t.Q }

// MaxLevel returns the top ciphertext level.
func (p *Parameters) MaxLevel() int { return p.rq.MaxLevel() }

// RingQ exposes the ciphertext ring.
func (p *Parameters) RingQ() *ring.Ring { return p.rq }

// Encode batches n integers mod t into a plaintext polynomial (coefficient
// domain): the slot values are the evaluations of the polynomial at the
// 2N-th roots mod t, so slot-wise ops correspond to polynomial ops mod t.
func (p *Parameters) Encode(values []uint64) (*ring.Poly, error) {
	if len(values) > p.n {
		return nil, fmt.Errorf("bgv: %d values exceed %d slots", len(values), p.n)
	}
	slots := make([]uint64, p.n)
	for i, v := range values {
		slots[i] = v % p.t.Q
	}
	p.ptTb.Inverse(slots) // slots -> coefficients mod t
	pt := p.rq.NewPoly(p.MaxLevel())
	for j := 0; j < p.n; j++ {
		c := p.t.Centered(slots[j])
		for i := range pt.Coeffs {
			pt.Coeffs[i][j] = p.rq.Moduli[i].FromCentered(c)
		}
	}
	return pt, nil
}

// decodeCoeffs maps centered coefficients to slot values mod t.
func (p *Parameters) decodeCoeffs(coeffs []int64) []uint64 {
	slots := make([]uint64, p.n)
	for j, c := range coeffs {
		slots[j] = p.t.FromCentered(c)
	}
	p.ptTb.Forward(slots)
	return slots
}

// SecretKey is an RLWE secret in NTT form over Q.
type SecretKey struct{ Value *ring.Poly }

// PublicKey is (b, a) = (-a·s + t·e, a).
type PublicKey struct{ B, A *ring.Poly }

// RelinKey holds one BV gadget digit per RNS prime: for limb i,
// B[i] + A[i]·s = t·e_i + g_i·s², where g_i ≡ 1 mod q_i and 0 mod q_j.
type RelinKey struct{ B, A []*ring.Poly }

// Ciphertext is (C0, C1) with C0 + C1·s = m + t·e (mod Q). PtFactor tracks
// the accumulated q^{-1} factors from modulus switching: the decrypted
// residue equals PtFactor · m (mod t).
type Ciphertext struct {
	C0, C1   *ring.Poly
	PtFactor uint64
}

// Level returns the ciphertext level.
func (ct *Ciphertext) Level() int { return ct.C0.Level() }

// KeyGen samples a secret, public and relinearization key.
func KeyGen(p *Parameters, seed int64) (*SecretKey, *PublicKey, *RelinKey) {
	s := ring.NewSampler(seed)
	lvl := p.MaxLevel()
	sk := &SecretKey{Value: s.TernaryPoly(p.rq, lvl, 64)}
	p.rq.NTT(sk.Value, lvl)

	newErr := func() *ring.Poly {
		e := s.GaussianPoly(p.rq, lvl, 3.2)
		p.rq.NTT(e, lvl)
		te := p.rq.NewPoly(lvl)
		p.rq.MulScalar(te, e, p.t.Q, lvl)
		return te
	}

	a := s.UniformPoly(p.rq, lvl, true)
	b := p.rq.NewPoly(lvl)
	b.IsNTT = true
	p.rq.MulCoeffs(b, a, sk.Value, lvl)
	p.rq.Neg(b, b, lvl)
	p.rq.Add(b, b, newErr(), lvl)
	pk := &PublicKey{B: b, A: a}

	// Relinearization key: per-limb gadget encrypting s².
	s2 := p.rq.NewPoly(lvl)
	p.rq.MulCoeffs(s2, sk.Value, sk.Value, lvl)
	s2.IsNTT = true
	rlk := &RelinKey{B: make([]*ring.Poly, lvl+1), A: make([]*ring.Poly, lvl+1)}
	for i := 0; i <= lvl; i++ {
		ai := s.UniformPoly(p.rq, lvl, true)
		bi := p.rq.NewPoly(lvl)
		bi.IsNTT = true
		p.rq.MulCoeffs(bi, ai, sk.Value, lvl)
		p.rq.Neg(bi, bi, lvl)
		p.rq.Add(bi, bi, newErr(), lvl)
		// g_i·s² touches only limb i (g_i ≡ 1 mod q_i, 0 elsewhere).
		mod := p.rq.Moduli[i]
		for j := 0; j < p.n; j++ {
			bi.Coeffs[i][j] = mod.Add(bi.Coeffs[i][j], s2.Coeffs[i][j])
		}
		rlk.B[i], rlk.A[i] = bi, ai
	}
	return sk, pk, rlk
}

// Encrypt produces (b·u + t·e0 + m, a·u + t·e1).
func Encrypt(p *Parameters, pk *PublicKey, pt *ring.Poly, seed int64) *Ciphertext {
	s := ring.NewSampler(seed)
	lvl := p.MaxLevel()
	u := s.TernaryPoly(p.rq, lvl, 64)
	p.rq.NTT(u, lvl)
	scaledErr := func() *ring.Poly {
		e := s.GaussianPoly(p.rq, lvl, 3.2)
		p.rq.NTT(e, lvl)
		te := p.rq.NewPoly(lvl)
		p.rq.MulScalar(te, e, p.t.Q, lvl)
		return te
	}
	m := pt.CopyNew()
	p.rq.NTT(m, lvl)

	c0 := p.rq.NewPoly(lvl)
	c0.IsNTT = true
	p.rq.MulCoeffs(c0, pk.B, u, lvl)
	p.rq.Add(c0, c0, scaledErr(), lvl)
	p.rq.Add(c0, c0, m, lvl)

	c1 := p.rq.NewPoly(lvl)
	c1.IsNTT = true
	p.rq.MulCoeffs(c1, pk.A, u, lvl)
	p.rq.Add(c1, c1, scaledErr(), lvl)
	return &Ciphertext{C0: c0, C1: c1, PtFactor: 1}
}

// Decrypt recovers the slot vector: [C0 + C1·s]_Q centered, reduced mod t,
// multiplied by PtFactor^{-1}, then un-batched.
func Decrypt(p *Parameters, sk *SecretKey, ct *Ciphertext) []uint64 {
	lvl := ct.Level()
	m := p.rq.NewPoly(lvl)
	m.IsNTT = true
	p.rq.MulCoeffs(m, ct.C1, sk.Value.Truncated(lvl), lvl)
	p.rq.Add(m, m, ct.C0, lvl)
	p.rq.INTT(m, lvl)

	// CRT reconstruct centered coefficients (noise can approach Q/2).
	moduli := p.rq.AtLevel(lvl)
	bigQ := big.NewInt(1)
	for _, md := range moduli {
		bigQ.Mul(bigQ, new(big.Int).SetUint64(md.Q))
	}
	halfQ := new(big.Int).Rsh(bigQ, 1)
	weights := make([]*big.Int, len(moduli))
	for i, md := range moduli {
		qi := new(big.Int).SetUint64(md.Q)
		qHat := new(big.Int).Div(bigQ, qi)
		inv := new(big.Int).ModInverse(new(big.Int).Mod(qHat, qi), qi)
		weights[i] = new(big.Int).Mul(qHat, inv)
	}
	bigT := new(big.Int).SetUint64(p.t.Q)
	coeffs := make([]int64, p.n)
	for j := 0; j < p.n; j++ {
		acc := big.NewInt(0)
		for i := range moduli {
			tmp := new(big.Int).SetUint64(m.Coeffs[i][j])
			acc.Add(acc, tmp.Mul(tmp, weights[i]))
		}
		acc.Mod(acc, bigQ)
		if acc.Cmp(halfQ) > 0 {
			acc.Sub(acc, bigQ)
		}
		acc.Mod(acc, bigT)
		coeffs[j] = int64(acc.Uint64())
	}
	slots := p.decodeCoeffs(coeffs)
	// Undo the accumulated modulus-switch factor.
	inv := p.t.MustInv(ct.PtFactor % p.t.Q)
	for i := range slots {
		slots[i] = p.t.Mul(slots[i], inv)
	}
	return slots
}
