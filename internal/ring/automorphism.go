package ring

import (
	"math/bits"
)

// Galois automorphisms σ_g: X -> X^g for odd g mod 2N. In CKKS, the rotation
// of the slot vector by r positions corresponds to g = 5^r mod 2N, and
// complex conjugation to g = 2N-1 (§II-B "automorphism").

// autoTables is the immutable snapshot holding both automorphism caches: the
// NTT-domain permutation per Galois element and the Galois element per
// rotation. Readers load it with one atomic pointer load and never take a
// lock; writers (cold path, first use of a rotation) copy-on-write under
// autoMu and publish a new snapshot, so hot rotate paths never contend.
type autoTables struct {
	perm map[uint64][]uint32 // galois element -> NTT-domain permutation
	gal  map[int]uint64      // canonical rotation -> 5^r mod 2N
}

// modExp computes b^e mod m by square-and-multiply. All operands stay below
// 2N < 2^32, so the intermediate products fit in uint64.
func modExp(b, e, m uint64) uint64 {
	g := uint64(1) % m
	b %= m
	for ; e > 0; e >>= 1 {
		if e&1 == 1 {
			g = g * b % m
		}
		b = b * b % m
	}
	return g
}

// GaloisElement returns the Galois element 5^r mod 2N realizing a cyclic
// slot rotation by r (r may be negative). The exponentiation is
// square-and-multiply — O(log r), not O(r) — and the result is cached per
// canonical rotation, so steady-state calls are a map lookup on a lock-free
// snapshot.
func (r *Ring) GaloisElement(rot int) uint64 {
	n2 := r.N >> 1 // slot count; rotations are cyclic mod N/2
	rot = ((rot % n2) + n2) % n2
	if t := r.autoSnap.Load(); t != nil {
		if g, ok := t.gal[rot]; ok {
			return g
		}
	}
	g := modExp(5, uint64(rot), uint64(2*r.N))

	r.autoMu.Lock()
	defer r.autoMu.Unlock()
	cur := r.autoSnap.Load()
	if old, ok := cur.gal[rot]; ok {
		return old
	}
	next := &autoTables{perm: cur.perm, gal: make(map[int]uint64, len(cur.gal)+1)}
	for k, v := range cur.gal {
		next.gal[k] = v
	}
	next.gal[rot] = g
	r.autoSnap.Store(next)
	return g
}

// galoisElementLoop is the retired O(r) multiply-loop form, kept as the
// differential oracle for GaloisElement.
func (r *Ring) galoisElementLoop(rot int) uint64 {
	twoN := uint64(2 * r.N)
	n2 := r.N >> 1
	rot = ((rot % n2) + n2) % n2
	g := uint64(1)
	base := uint64(5)
	for k := 0; k < rot; k++ {
		g = g * base % twoN
	}
	return g
}

// GaloisElementConjugate returns the Galois element for complex conjugation.
func (r *Ring) GaloisElementConjugate() uint64 { return uint64(2*r.N) - 1 }

// AutomorphismCoeff applies σ_g to a coefficient-domain polynomial:
// coefficient j of the input lands at position g*j mod 2N, negated when the
// exponent wraps past N.
func (r *Ring) AutomorphismCoeff(out, in *Poly, g uint64, level int) {
	if in.IsNTT {
		panic("ring: AutomorphismCoeff requires coefficient domain")
	}
	if out == in {
		panic("ring: AutomorphismCoeff cannot operate in place")
	}
	n := uint64(r.N)
	mask := 2*n - 1
	for i := 0; i <= level; i++ {
		mod := r.Moduli[i]
		src, dst := in.Coeffs[i], out.Coeffs[i]
		for j := uint64(0); j < n; j++ {
			k := (j * g) & mask
			if k < n {
				dst[k] = src[j]
			} else {
				dst[k-n] = mod.Neg(src[j])
			}
		}
	}
	out.IsNTT = false
	accountRows(bytesAut, 2, level+1, r.N)
}

// nttAutoIndex returns (building and caching on first use) the NTT-domain
// permutation for σ_g: with the bit-reversed evaluation order, output slot i
// holds the value at root exponent e_i = 2·brv(i)+1, and σ_g moves the value
// from exponent g·e_i. Entries are uint32 (valid for N ≤ 2^31), halving the
// table's cache footprint; lookups are lock-free snapshot reads.
func (r *Ring) nttAutoIndex(g uint64) []uint32 {
	if t := r.autoSnap.Load(); t != nil {
		if idx, ok := t.perm[g]; ok {
			return idx
		}
	}
	n := uint64(r.N)
	logN := r.LogN
	mask := 2*n - 1
	idx := make([]uint32, n)
	for i := uint64(0); i < n; i++ {
		e := 2*brv(i, logN) + 1
		src := (g * e) & mask
		idx[i] = uint32(brv((src-1)>>1, logN))
	}

	r.autoMu.Lock()
	defer r.autoMu.Unlock()
	cur := r.autoSnap.Load()
	if old, ok := cur.perm[g]; ok {
		return old
	}
	next := &autoTables{perm: make(map[uint64][]uint32, len(cur.perm)+1), gal: cur.gal}
	for k, v := range cur.perm {
		next.perm[k] = v
	}
	next.perm[g] = idx
	r.autoSnap.Store(next)
	return idx
}

func brv(x uint64, n int) uint64 { return bits.Reverse64(x) >> uint(64-n) }

// AutomorphismNTT applies σ_g to an NTT-domain polynomial via slot
// permutation (no arithmetic).
func (r *Ring) AutomorphismNTT(out, in *Poly, g uint64, level int) {
	if !in.IsNTT {
		panic("ring: AutomorphismNTT requires NTT domain")
	}
	if out == in {
		panic("ring: AutomorphismNTT cannot operate in place")
	}
	idx := r.nttAutoIndex(g)
	for i := 0; i <= level; i++ {
		src, dst := in.Coeffs[i], out.Coeffs[i]
		for j, k := range idx {
			dst[j] = src[k]
		}
	}
	out.IsNTT = true
	accountRows(bytesAut, 2, level+1, r.N)
}

// Automorphism dispatches on the polynomial's current domain.
func (r *Ring) Automorphism(out, in *Poly, g uint64, level int) {
	if in.IsNTT {
		r.AutomorphismNTT(out, in, g, level)
	} else {
		r.AutomorphismCoeff(out, in, g, level)
	}
}
