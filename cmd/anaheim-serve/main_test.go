package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/anaheim-sim/anaheim"
)

func postJSON(t *testing.T, url string, req, resp any) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return r
}

func getJSON(t *testing.T, url string, resp any) *http.Response {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if resp != nil {
		if err := json.NewDecoder(r.Body).Decode(resp); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return r
}

func getText(t *testing.T, url string) string {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, r.StatusCode)
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestServeRoundTrip runs the whole serving story over a real socket: a
// client context generates keys locally, uploads only the evaluation keys,
// ships encrypted inputs through the wire format, and decrypts the
// server-computed result.
func TestServeRoundTrip(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, serveConfig{addr: "127.0.0.1:0", workers: 2}, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr

	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, base+"/healthz", &health)
	if health.Status != "ok" {
		t.Fatalf("healthz = %q", health.Status)
	}

	// Client side: full context with secret key, rotation key for k=1.
	client, err := anaheim.NewContext(anaheim.TestParameters(), 11)
	if err != nil {
		t.Fatal(err)
	}
	client.GenRotationKeys(1)
	keysRaw, err := client.EvaluationKeys().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	var sess struct {
		SessionID string `json:"sessionId"`
		LogN      int    `json:"logN"`
	}
	postJSON(t, base+"/v1/sessions", map[string]string{
		"preset":   "test",
		"evalKeys": base64.StdEncoding.EncodeToString(keysRaw),
	}, &sess)
	if sess.SessionID == "" {
		t.Fatal("no session id")
	}

	u := []complex128{0.5, -1, 2, 0.25}
	cu, err := client.Encrypt(u)
	if err != nil {
		t.Fatal(err)
	}
	cuRaw, err := cu.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	// Job: r = rotate(x*x, 1).
	var submitted struct {
		JobID string `json:"jobId"`
	}
	postJSON(t, fmt.Sprintf("%s/v1/sessions/%s/jobs", base, sess.SessionID), map[string]any{
		"inputs": map[string]string{"x": base64.StdEncoding.EncodeToString(cuRaw)},
		"ops": []map[string]any{
			{"id": "sq", "op": "square", "args": []string{"x"}},
			{"id": "r", "op": "rotate", "args": []string{"sq"}, "k": 1},
		},
		"outputs": []string{"r"},
	}, &submitted)
	if submitted.JobID == "" {
		t.Fatal("no job id")
	}

	var status struct {
		Status string `json:"status"`
		Error  string `json:"error"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		getJSON(t, base+"/v1/jobs/"+submitted.JobID, &status)
		if status.Status == "done" || status.Status == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %q", status.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status.Status != "done" {
		t.Fatalf("job failed: %s", status.Error)
	}

	var result struct {
		Outputs map[string]string `json:"outputs"`
	}
	getJSON(t, base+"/v1/jobs/"+submitted.JobID+"/result", &result)
	outRaw, err := base64.StdEncoding.DecodeString(result.Outputs["r"])
	if err != nil {
		t.Fatal(err)
	}
	out := &anaheim.Ciphertext{}
	if err := out.UnmarshalBinary(outRaw); err != nil {
		t.Fatal(err)
	}

	got := client.Decrypt(out)
	want := []complex128{1, 4, 0.0625} // (u[i+1])^2
	for i, w := range want {
		if d := got[i] - w; real(d)*real(d)+imag(d)*imag(d) > 1e-6 {
			t.Fatalf("slot %d: got %v want %v", i, got[i], w)
		}
	}

	// After a completed job the metrics endpoint must show live counters:
	// the job was admitted, per-op counters ticked, and the latency
	// histograms carry observations.
	metrics := getText(t, base+"/metrics")
	for _, want := range []string{
		"engine_jobs_admitted_total",
		`engine_ops_total{op="square"}`,
		`engine_ops_total{op="rotate"}`,
		`ckks_ops_total{op="mul"}`,
		"engine_op_exec_seconds_bucket",
		"engine_op_queue_wait_seconds_count",
		"ring_pool_gets_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	for _, re := range []string{
		`engine_jobs_admitted_total ([1-9][\d.e+]*)`,
		`engine_ops_total\{op="square"\} ([1-9][\d.e+]*)`,
	} {
		if !regexp.MustCompile(re).MatchString(metrics) {
			t.Errorf("/metrics counter not non-zero: %s in\n%s", re, metrics)
		}
	}

	spans := getText(t, base+"/debug/spans")
	if !strings.Contains(spans, "job") || !strings.Contains(spans, "op:square") {
		t.Errorf("/debug/spans missing job/op spans:\n%s", spans)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestServeBadRequests covers the error paths of the HTTP surface.
func TestServeBadRequests(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	go run(ctx, serveConfig{addr: "127.0.0.1:0", workers: 1}, ready)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr

	if r := postJSON(t, base+"/v1/sessions", map[string]string{"preset": "nope"}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad preset: status %d", r.StatusCode)
	}
	if r := postJSON(t, base+"/v1/sessions", map[string]string{"evalKeys": "!!!"}, nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad keys: status %d", r.StatusCode)
	}
	if r := postJSON(t, base+"/v1/sessions/nosuch/jobs", map[string]any{}, nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d", r.StatusCode)
	}
	if r := getJSON(t, base+"/v1/jobs/nosuch", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d", r.StatusCode)
	}
}

// TestServeBodyLimit verifies oversized request bodies are cut off with
// 413 before they reach the JSON decoder. The pprof side port is enabled
// here too, so its start/stop path runs under test.
func TestServeBodyLimit(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	go run(ctx, serveConfig{
		addr:      "127.0.0.1:0",
		pprofAddr: "127.0.0.1:0",
		workers:   1,
		maxBody:   512,
	}, ready)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr

	// Valid JSON so the decoder keeps reading until the byte cap trips
	// (a syntax error would 400 before the limit is ever reached).
	big := []byte(`{"evalKeys":"` + strings.Repeat("a", 64<<10) + `"}`)
	r, err := http.Post(base+"/v1/sessions", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", r.StatusCode)
	}

	// A within-limit malformed body must still be a plain 400.
	r, err = http.Post(base+"/v1/sessions", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: status %d, want 400", r.StatusCode)
	}
}

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-addr", "1.2.3.4:99", "-workers", "3", "-deadline", "5s"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "1.2.3.4:99" || cfg.workers != 3 || cfg.deadline != 5*time.Second {
		t.Fatalf("bad config: %+v", cfg)
	}
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("want error for unknown flag")
	}
}

// TestServeSessionLifecycle covers DELETE /v1/sessions/{sid}: a detached
// session stops accepting jobs and a second delete is 404.
func TestServeSessionLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	go run(ctx, serveConfig{addr: "127.0.0.1:0", workers: 1}, ready)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr

	client, err := anaheim.NewContext(anaheim.TestParameters(), 11)
	if err != nil {
		t.Fatal(err)
	}
	keysRaw, err := client.EvaluationKeys().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		SessionID string `json:"sessionId"`
	}
	postJSON(t, base+"/v1/sessions", map[string]string{
		"preset":   "test",
		"evalKeys": base64.StdEncoding.EncodeToString(keysRaw),
	}, &sess)
	if sess.SessionID == "" {
		t.Fatal("no session id")
	}

	del := func() *http.Response {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/sessions/"+sess.SessionID, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		return r
	}
	if r := del(); r.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d, want 200", r.StatusCode)
	}
	if r := del(); r.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: status %d, want 404", r.StatusCode)
	}
	if r := postJSON(t, base+"/v1/sessions/"+sess.SessionID+"/jobs", map[string]any{}, nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("job on detached session: status %d, want 404", r.StatusCode)
	}
}

// TestServeOverload verifies a saturated engine answers 429 with a
// Retry-After header and a machine-readable rejection reason, and that the
// capacity gauges are exported.
func TestServeOverload(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	// One worker, one admission slot, one job per tenant: trivially saturated.
	go run(ctx, serveConfig{addr: "127.0.0.1:0", workers: 1, maxJobs: 3, tenantJobs: 1}, ready)
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not start")
	}
	base := "http://" + addr

	client, err := anaheim.NewContext(anaheim.TestParameters(), 11)
	if err != nil {
		t.Fatal(err)
	}
	client.GenRotationKeys(1)
	keysRaw, err := client.EvaluationKeys().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var sess struct {
		SessionID string `json:"sessionId"`
	}
	postJSON(t, base+"/v1/sessions", map[string]string{
		"preset":   "test",
		"evalKeys": base64.StdEncoding.EncodeToString(keysRaw),
	}, &sess)

	cu, err := client.Encrypt([]complex128{1})
	if err != nil {
		t.Fatal(err)
	}
	cuRaw, err := cu.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// A long rotate chain: each hop key-switches but consumes no level, so
	// the single worker stays busy for tens of milliseconds — orders of
	// magnitude longer than the HTTP submit round trip that follows.
	ops := []map[string]any{{"id": "r0", "op": "rotate", "args": []string{"x"}, "k": 1}}
	for i := 1; i < 40; i++ {
		ops = append(ops, map[string]any{
			"id": fmt.Sprintf("r%d", i), "op": "rotate",
			"args": []string{fmt.Sprintf("r%d", i-1)}, "k": 1,
		})
	}
	job := map[string]any{
		"inputs":     map[string]string{"x": base64.StdEncoding.EncodeToString(cuRaw)},
		"ops":        ops,
		"outputs":    []string{fmt.Sprintf("r%d", len(ops)-1)},
		"deadlineMs": 60000,
	}
	// Keep submitting until the per-tenant cap rejects one; the first job's
	// rotate chain keeps the single worker busy long enough.
	// Fire a burst of pre-marshaled submits concurrently: the admission
	// calls land within the request-decode spread (milliseconds) while any
	// admitted job's rotate chain runs for tens of milliseconds, so the
	// per-tenant cap must reject at least one — no sequential timing
	// assumptions.
	raw := mustJSON(t, job)
	type submitResult struct {
		status     int
		retryAfter string
		body       []byte
	}
	const burst = 8
	results := make([]submitResult, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r, err := http.Post(base+"/v1/sessions/"+sess.SessionID+"/jobs", "application/json", bytes.NewReader(raw))
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			defer r.Body.Close()
			b, _ := io.ReadAll(r.Body)
			results[i] = submitResult{status: r.StatusCode, retryAfter: r.Header.Get("Retry-After"), body: b}
		}(i)
	}
	wg.Wait()
	var rejected *submitResult
	var admitted int
	for i := range results {
		switch results[i].status {
		case http.StatusOK:
			admitted++
		case http.StatusTooManyRequests:
			rejected = &results[i]
		default:
			t.Fatalf("submit %d: status %d: %s", i, results[i].status, results[i].body)
		}
	}
	if admitted == 0 {
		t.Fatal("no submit was admitted")
	}
	if rejected == nil {
		t.Fatalf("never saw a 429 despite tenantJobs=1 (%d admitted)", admitted)
	}
	if rejected.retryAfter == "" {
		t.Error("429 without Retry-After header")
	}
	var body struct {
		Reason            string `json:"reason"`
		Tier              string `json:"tier"`
		RetryAfterSeconds int    `json:"retryAfterSeconds"`
	}
	if err := json.Unmarshal(rejected.body, &body); err != nil {
		t.Fatalf("429 body is not JSON: %v: %s", err, rejected.body)
	}
	if body.Reason == "" || body.Tier == "" || body.RetryAfterSeconds < 1 {
		t.Errorf("429 body missing fields: %+v", body)
	}

	// Serving-capacity gauge family is exported.
	metrics := getText(t, base+"/metrics")
	for _, want := range []string{
		"engine_sessions_live",
		"engine_evalkey_resident_bytes",
		`engine_tier_queue_depth{tier="latency"}`,
		`engine_tier_queue_depth{tier="standard"}`,
		`engine_tier_queue_depth{tier="batch"}`,
		`keycache_resident_bytes{cache="sessions"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
