package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ckks"
)

// TestSchedulerStress hammers one engine with everything at once —
// concurrent sessions, interleaved submissions, deadline expiries, client
// cancellations, sessions dropped mid-flight — then closes the engine and
// verifies no goroutine leaked. Run under -race (CI does) this is the
// scheduler's concurrency-safety gate.
func TestSchedulerStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test is slow")
	}
	client := newTestClient(t, 1)

	// Warm up process-wide lazy pools (internal/par workers, evaluator
	// caches) through a throwaway engine so the goroutine baseline below
	// only captures goroutines this test's engine is responsible for.
	func() {
		e := New(Config{Workers: 2})
		defer e.Close()
		sess, err := e.AttachSession(client.params, client.keys)
		if err != nil {
			t.Fatal(err)
		}
		job, err := e.Submit(JobSpec{
			SessionID: sess.ID,
			Inputs:    map[string]*ckks.Ciphertext{"x": client.encrypt(t, []complex128{1})},
			Ops:       []OpSpec{{ID: "a", Op: "square", Args: []string{"x"}}},
			Outputs:   []string{"a"},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := job.Wait(context.Background()); err != nil {
			t.Fatal(err)
		}
	}()
	baseline := runtime.NumGoroutine()

	e := New(Config{Workers: 4, MaxActiveJobs: 64, DefaultDeadline: 30 * time.Second})

	const sessions = 4
	const jobsPerSession = 12
	sessIDs := make([]string, sessions)
	for i := range sessIDs {
		sess, err := e.AttachSession(client.params, client.keys)
		if err != nil {
			t.Fatal(err)
		}
		sessIDs[i] = sess.ID
	}

	ct := client.encrypt(t, []complex128{1, 0.5, -0.25})
	spec := func(sid string, nOps int) JobSpec {
		ops := []OpSpec{{ID: "op0", Op: "square", Args: []string{"x"}}}
		for i := 1; i < nOps; i++ {
			ops = append(ops, OpSpec{ID: fmt.Sprintf("op%d", i), Op: "add",
				Args: []string{fmt.Sprintf("op%d", i-1), fmt.Sprintf("op%d", i-1)}})
		}
		return JobSpec{
			SessionID: sid,
			Inputs:    map[string]*ckks.Ciphertext{"x": ct},
			Ops:       ops,
			Outputs:   []string{ops[len(ops)-1].ID},
		}
	}

	var wg sync.WaitGroup
	for si, sid := range sessIDs {
		si, sid := si, sid
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(si)))
			for k := 0; k < jobsPerSession; k++ {
				s := spec(sid, 1+r.Intn(6))
				switch k % 4 {
				case 0: // normal completion
				case 1: // deadline too tight to finish: must expire, not hang
					s.Deadline = time.Duration(1+r.Intn(100)) * time.Microsecond
				case 2: // client walks away: cancelled Wait, job keeps running
				case 3: // session dropped mid-flight: running jobs keep their ref
				}
				job, err := e.Submit(s)
				if errors.Is(err, ErrBusy) {
					continue // backpressure under load is expected behavior
				}
				if err != nil {
					// DropSession from a sibling iteration may have raced us.
					if strings.Contains(err.Error(), "unknown session") {
						continue
					}
					t.Errorf("session %d job %d: %v", si, k, err)
					continue
				}
				switch k % 4 {
				case 2:
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(r.Intn(2000))*time.Microsecond)
					err = job.Wait(ctx)
					cancel()
					if err != nil && !errors.Is(err, context.DeadlineExceeded) && !isJobError(err) {
						t.Errorf("session %d job %d cancelled wait: %v", si, k, err)
					}
				case 3:
					e.DropSession(sid)
					fallthrough
				default:
					err := job.Wait(context.Background())
					if k%4 == 1 {
						if err == nil {
							// A tiny deadline can still win the race and
							// finish; both outcomes are legal.
							continue
						}
						if !errors.Is(err, context.DeadlineExceeded) && !strings.Contains(err.Error(), "deadline") {
							t.Errorf("session %d job %d: want deadline error, got %v", si, k, err)
						}
					} else if err != nil {
						t.Errorf("session %d job %d: %v", si, k, err)
					}
				}
			}
		}()
	}
	wg.Wait()

	e.Close()

	// Every engine goroutine (dispatcher, workers, per-job deadline
	// watchers) must exit once Close returns. Poll with a drain timeout:
	// watcher goroutines race Close by one scheduling quantum.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			n := runtime.NumGoroutine()
			var buf strings.Builder
			pprof.Lookup("goroutine").WriteTo(&buf, 1)
			t.Fatalf("goroutine leak: %d after close, baseline %d\n%s", n, baseline, buf.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// isJobError reports whether err is a terminal job error (the job failed
// for its own reasons while we were waiting with a short context).
func isJobError(err error) bool {
	return strings.Contains(err.Error(), "deadline") || strings.Contains(err.Error(), "cancel")
}
