package engine

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/anaheim-sim/anaheim/internal/ckks"
)

// HTTP/JSON front-end for the serving runtime, consumed by cmd/anaheim-serve.
// Binary FHE payloads (evaluation keys, ciphertexts) ride inside JSON as
// base64 of the internal/ckks wire format. The protocol is deliberately
// poll-based: submit a job, poll its status, fetch the result.
//
//	POST   /v1/sessions                     {preset|params, evalKeys}    -> {sessionId}
//	DELETE /v1/sessions/{sid}                                            -> {detached}
//	POST   /v1/sessions/{sid}/transforms    {name, diags}                -> {name}
//	POST   /v1/sessions/{sid}/jobs          {inputs, ops, outputs, tier} -> {jobId}
//	GET    /v1/jobs/{id}                                                 -> {status, error?}
//	GET    /v1/jobs/{id}/result                                          -> {outputs}
//	GET    /healthz
//
// Admission rejections are 429 with a Retry-After header (seconds, derived
// from the rejected tier's queue depth) and a JSON body carrying the
// machine-readable rejection reason.

type createSessionRequest struct {
	// Preset names a built-in parameter set ("test" or "boot"); Params
	// supplies an explicit literal instead.
	Preset   string                  `json:"preset,omitempty"`
	Params   *ckks.ParametersLiteral `json:"params,omitempty"`
	EvalKeys string                  `json:"evalKeys"`
}

type createSessionResponse struct {
	SessionID string `json:"sessionId"`
	LogN      int    `json:"logN"`
	MaxLevel  int    `json:"maxLevel"`
}

type registerTransformRequest struct {
	Name string `json:"name"`
	// Diags maps diagonal index -> per-slot [re, im] pairs.
	Diags map[string][][2]float64 `json:"diags"`
}

type submitJobRequest struct {
	Inputs     map[string]string `json:"inputs"` // name -> base64 ciphertext
	Ops        []OpSpec          `json:"ops"`
	Outputs    []string          `json:"outputs"`
	DeadlineMs int               `json:"deadlineMs,omitempty"`
	Tier       string            `json:"tier,omitempty"` // latency|standard|batch (default standard)
}

type jobStatusResponse struct {
	JobID  string `json:"jobId"`
	Status Status `json:"status"`
	Error  string `json:"error,omitempty"`
}

type jobResultResponse struct {
	JobID   string            `json:"jobId"`
	Outputs map[string]string `json:"outputs"` // op id -> base64 ciphertext
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// writeOverload maps a load-shed rejection to 429 with a Retry-After header
// and a machine-readable reason, so clients can back off instead of
// hammering a saturated tier.
func writeOverload(w http.ResponseWriter, err error) {
	retry, reason, tier := 1, "overloaded", ""
	var oe *OverloadError
	if errors.As(err, &oe) {
		if s := int(oe.RetryAfter.Seconds()); s > retry {
			retry = s
		}
		reason, tier = oe.Reason, oe.Tier
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusTooManyRequests, map[string]any{
		"error":             err.Error(),
		"reason":            reason,
		"tier":              tier,
		"retryAfterSeconds": retry,
	})
}

// decodeJSON decodes a request body into v under the engine's body-size
// cap. Oversized bodies get 413, malformed ones 400; either way the
// response has been written and the caller should return.
func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, limit)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
		} else {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		}
		return false
	}
	return true
}

// decodeSubmitJob parses a submit-job request body into a JobSpec,
// decoding the base64 ciphertext inputs. It performs no I/O and never
// panics on malformed input (fuzzed by FuzzJobSpecDecode); full DAG
// validation happens at Submit.
func decodeSubmitJob(sid string, body []byte) (JobSpec, error) {
	var req submitJobRequest
	if err := json.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
		return JobSpec{}, fmt.Errorf("bad request body: %w", err)
	}
	inputs := make(map[string]*ckks.Ciphertext, len(req.Inputs))
	for name, b64 := range req.Inputs {
		raw, err := base64.StdEncoding.DecodeString(b64)
		if err != nil {
			return JobSpec{}, fmt.Errorf("input %q: %w", name, err)
		}
		ct := &ckks.Ciphertext{}
		if err := ct.UnmarshalBinary(raw); err != nil {
			return JobSpec{}, fmt.Errorf("input %q: %w", name, err)
		}
		inputs[name] = ct
	}
	return JobSpec{
		SessionID: sid,
		Inputs:    inputs,
		Ops:       req.Ops,
		Outputs:   req.Outputs,
		Deadline:  time.Duration(req.DeadlineMs) * time.Millisecond,
		Tier:      req.Tier,
	}, nil
}

// PresetParameters resolves a named parameter preset.
func PresetParameters(name string) (ckks.ParametersLiteral, error) {
	switch name {
	case "", "test":
		return ckks.TestParameters(), nil
	case "boot":
		return ckks.BootTestParameters(), nil
	default:
		return ckks.ParametersLiteral{}, fmt.Errorf("engine: unknown parameter preset %q", name)
	}
}

// NewHTTPHandler exposes the engine over HTTP/JSON.
func NewHTTPHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":  "ok",
			"workers": e.cfg.Workers,
			"active":  e.active.Load(),
		})
	})

	mux.HandleFunc("POST /v1/sessions", func(w http.ResponseWriter, r *http.Request) {
		var req createSessionRequest
		if !decodeJSON(w, r, e.cfg.MaxBodyBytes, &req) {
			return
		}
		lit := ckks.ParametersLiteral{}
		if req.Params != nil {
			lit = *req.Params
		} else {
			var err error
			if lit, err = PresetParameters(req.Preset); err != nil {
				writeError(w, http.StatusBadRequest, err)
				return
			}
		}
		raw, err := base64.StdEncoding.DecodeString(req.EvalKeys)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("evalKeys: %w", err))
			return
		}
		keys := &ckks.EvaluationKeySet{}
		if err := keys.UnmarshalBinary(raw); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("evalKeys: %w", err))
			return
		}
		sess, err := e.CreateSession(lit, keys)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, createSessionResponse{
			SessionID: sess.ID,
			LogN:      sess.Params.LogN(),
			MaxLevel:  sess.Params.MaxLevel(),
		})
	})

	mux.HandleFunc("DELETE /v1/sessions/{sid}", func(w http.ResponseWriter, r *http.Request) {
		sid := r.PathValue("sid")
		if !e.DetachSession(sid) {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown session"))
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"sessionId": sid, "status": "detached"})
	})

	mux.HandleFunc("POST /v1/sessions/{sid}/transforms", func(w http.ResponseWriter, r *http.Request) {
		sess, ok := e.Session(r.PathValue("sid"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown session"))
			return
		}
		var req registerTransformRequest
		if !decodeJSON(w, r, e.cfg.MaxBodyBytes, &req) {
			return
		}
		if req.Name == "" || len(req.Diags) == 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("transform needs a name and diagonals"))
			return
		}
		diags := make(map[int][]complex128, len(req.Diags))
		for k, vals := range req.Diags {
			idx, err := strconv.Atoi(k)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("diagonal index %q: %w", k, err))
				return
			}
			row := make([]complex128, len(vals))
			for i, v := range vals {
				row[i] = complex(v[0], v[1])
			}
			diags[idx] = row
		}
		sess.RegisterTransform(req.Name, ckks.NewLinearTransform(sess.Params.Slots(), diags))
		writeJSON(w, http.StatusOK, map[string]string{"name": req.Name})
	})

	mux.HandleFunc("POST /v1/sessions/{sid}/jobs", func(w http.ResponseWriter, r *http.Request) {
		// No session existence pre-check: Submit resolves the session itself
		// and can rematerialize an evicted one through the session loader.
		sid := r.PathValue("sid")
		r.Body = http.MaxBytesReader(w, r.Body, e.cfg.MaxBodyBytes)
		body, err := io.ReadAll(r.Body)
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("request body exceeds %d bytes", tooBig.Limit))
			} else {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
			}
			return
		}
		spec, err := decodeSubmitJob(sid, body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		job, err := e.Submit(spec)
		switch {
		case errors.Is(err, ErrBusy):
			writeOverload(w, err)
			return
		case err != nil && strings.Contains(err.Error(), "unknown session"):
			writeError(w, http.StatusNotFound, err)
			return
		case err != nil:
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, http.StatusOK, jobStatusResponse{JobID: job.ID, Status: StatusQueued})
	})

	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		job, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
			return
		}
		st, err := job.Status()
		resp := jobStatusResponse{JobID: job.ID, Status: st}
		if err != nil {
			resp.Error = err.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})

	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		job, ok := e.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job"))
			return
		}
		outs, err := job.Results()
		if err != nil {
			writeError(w, http.StatusConflict, err)
			return
		}
		resp := jobResultResponse{JobID: job.ID, Outputs: make(map[string]string, len(outs))}
		for name, ct := range outs {
			raw, err := ct.MarshalBinary()
			if err != nil {
				writeError(w, http.StatusInternalServerError, err)
				return
			}
			resp.Outputs[name] = base64.StdEncoding.EncodeToString(raw)
		}
		writeJSON(w, http.StatusOK, resp)
	})

	return mux
}
