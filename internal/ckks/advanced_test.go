package ckks

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestInnerSum(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(90))
	slots := tc.params.Slots()
	u := randomComplex(r, slots, 1)
	for _, n := range []int{2, 8, 32} {
		rots := []int{}
		for s := 1; s < n; s <<= 1 {
			rots = append(rots, s)
		}
		tc.kgen.GenRotationKeys(tc.sk, tc.keys, rots)
		ct := tc.encryptVec(t, u)
		out, err := tc.eval.InnerSum(ct, n)
		if err != nil {
			t.Fatal(err)
		}
		got := tc.decryptVec(out)
		for i := 0; i < slots; i += slots / 8 {
			want := complex(0, 0)
			for j := 0; j < n; j++ {
				want += u[(i+j)%slots]
			}
			if cmplx.Abs(got[i]-want) > 1e-4 {
				t.Fatalf("n=%d slot %d: got %v want %v", n, i, got[i], want)
			}
		}
	}
	if _, err := tc.eval.InnerSum(tc.encryptVec(t, u), 3); err == nil {
		t.Fatal("non-power-of-two window must error")
	}
}

func TestEvalPower(t *testing.T) {
	tc := newTestContext(t, TestParameters())
	r := rand.New(rand.NewSource(91))
	u := randomComplex(r, tc.params.Slots(), 0.9)
	for _, k := range []int{1, 2, 3, 5, 8} {
		ct := tc.encryptVec(t, u)
		out, err := tc.eval.EvalPower(ct, k)
		if err != nil {
			t.Fatal(err)
		}
		got := tc.decryptVec(out)
		for i := 0; i < 16; i++ {
			want := complex(1, 0)
			for j := 0; j < k; j++ {
				want *= u[i]
			}
			if cmplx.Abs(got[i]-want) > 1e-2 {
				t.Fatalf("k=%d slot %d: got %v want %v", k, i, got[i], want)
			}
		}
	}
	if _, err := tc.eval.EvalPower(tc.encryptVec(t, u), 0); err == nil {
		t.Fatal("power 0 must error")
	}
}

func TestEvalInverse(t *testing.T) {
	tc := newTestContext(t, compareParams())
	r := rand.New(rand.NewSource(92))
	slots := tc.params.Slots()
	u := make([]complex128, slots)
	for i := range u {
		u[i] = complex(0.7+0.6*r.Float64(), 0) // (0.7, 1.3)
	}
	ct := tc.encryptVec(t, u)
	out := tc.eval.EvalInverse(ct, 3)
	got := tc.decryptVec(out)
	for i := 0; i < slots; i += slots / 16 {
		want := 1 / real(u[i])
		if math.Abs(real(got[i])-want) > 1e-3 {
			t.Fatalf("1/%.3f = %.5f, got %.5f", real(u[i]), want, real(got[i]))
		}
	}
}

func TestComputePrecision(t *testing.T) {
	got := []complex128{1.001, 2.0}
	want := []complex128{1.0, 2.0}
	st := ComputePrecision(got, want)
	if st.MaxErr < 0.0009 || st.MaxErr > 0.0011 {
		t.Fatalf("max err %g", st.MaxErr)
	}
	if st.MinBits < 9.9 || st.MinBits > 10.1 {
		t.Fatalf("min bits %g, want ~9.97", st.MinBits)
	}
	if st.String() == "" {
		t.Fatal("empty render")
	}
	if z := ComputePrecision(nil, nil); z.MaxErr != 0 {
		t.Fatal("empty input should be zero stats")
	}
	exact := ComputePrecision(want, want)
	if !math.IsInf(exact.MinBits, 1) {
		t.Fatal("exact match should report infinite bits")
	}
}
