package ckks

import (
	"fmt"
	"math"
	"math/cmplx"
)

// PrecisionStats summarizes the slot-wise error of an approximate
// computation, in the log2 form FHE papers report precision in.
type PrecisionStats struct {
	MaxErr   float64
	MeanErr  float64
	MinBits  float64 // -log2(MaxErr): worst-case correct bits
	MeanBits float64 // -log2(MeanErr)
}

// ComputePrecision compares a computed slot vector against the expected one.
func ComputePrecision(got, want []complex128) PrecisionStats {
	if len(want) == 0 {
		return PrecisionStats{}
	}
	var maxE, sum float64
	for i := range want {
		e := cmplx.Abs(got[i] - want[i])
		if e > maxE {
			maxE = e
		}
		sum += e
	}
	mean := sum / float64(len(want))
	stats := PrecisionStats{MaxErr: maxE, MeanErr: mean}
	if maxE > 0 {
		stats.MinBits = -math.Log2(maxE)
	} else {
		stats.MinBits = math.Inf(1)
	}
	if mean > 0 {
		stats.MeanBits = -math.Log2(mean)
	} else {
		stats.MeanBits = math.Inf(1)
	}
	return stats
}

// String renders the stats in the usual "x.y bits" form.
func (s PrecisionStats) String() string {
	return fmt.Sprintf("max err %.3g (%.1f bits), mean err %.3g (%.1f bits)",
		s.MaxErr, s.MinBits, s.MeanErr, s.MeanBits)
}
