//go:build amd64 && !noasm

#include "textflag.h"

// AVX2 row kernels (TierAVX2). Four 64-bit lanes per step. AVX2 has no
// 64-bit vector multiply, no unsigned 64-bit compare and no mask registers,
// so every primitive is synthesized:
//
//   - mullo64 and mul128 from VPMULUDQ 32x32 partial products with explicit
//     carry propagation (same partials and dropped carries as bits.Mul64,
//     keeping the bit-identical contract of vec_ref.go);
//   - unsigned compares by XORing both operands with 2^63 (Y15) and using
//     signed VPCMPGTQ;
//   - conditional +1 / +2^32 by SUBTRACTING the all-ones compare mask
//     (or its <<32 shift) instead of a masked add.
//
// Callers (vec_asm_amd64.go wrappers) guarantee len > 0 and len % 4 == 0.
//
// Register conventions:
//	Y9  = u0 or w         Y10 = u1 or wShoup
//	Y11 = q               Y12 = 2q
//	Y13 = q^2^63          Y14 = 2q^2^63
//	Y15 = 2^63 per lane
//	Y0-Y8 = working set

// MUL128x4: (HI, LO) = full 128-bit product A*B per lane. Clobbers
// T0-T3; preserves A and B.
#define MUL128x4(A, B, HI, LO, T0, T1, T2, T3) \
	VPSRLQ $32, A, T0    \ // ah
	VPSRLQ $32, B, T1    \ // bh
	VPMULUDQ T1, T0, HI  \ // hh = ah*bh
	VPMULUDQ B, T0, T2   \ // hl = ah*b0
	VPMULUDQ T1, A, T1   \ // lh = a0*bh
	VPMULUDQ B, A, LO    \ // ll = a0*b0
	VPADDQ T2, T1, T0    \ // mid = hl + lh
	VPXOR Y15, T0, T2    \
	VPXOR Y15, T1, T3    \
	VPCMPGTQ T2, T3, T2  \ // cm: mid <u lh (all-ones where carried)
	VPSLLQ $32, T2, T2   \ // -2^32 per carried lane
	VPSUBQ T2, HI, HI    \ // HI += cm<<32
	VPSLLQ $32, T0, T1   \ // mid<<32
	VPSRLQ $32, T0, T0   \
	VPADDQ T0, HI, HI    \ // HI += mid>>32
	VPADDQ T1, LO, LO    \ // LO += mid<<32
	VPXOR Y15, LO, T2    \
	VPXOR Y15, T1, T3    \
	VPCMPGTQ T2, T3, T2  \ // cl: LO <u mid<<32
	VPSUBQ T2, HI, HI      // HI += cl

// MULLO64x4: LO = low 64 bits of A*B per lane. Clobbers T0, T1; preserves
// A and B.
#define MULLO64x4(A, B, LO, T0, T1) \
	VPSRLQ $32, A, T0   \
	VPSRLQ $32, B, T1   \
	VPMULUDQ B, T0, T0  \ // ah*b0
	VPMULUDQ T1, A, T1  \ // a0*bh
	VPADDQ T1, T0, T0   \
	VPSLLQ $32, T0, T0  \
	VPMULUDQ B, A, LO   \ // a0*b0
	VPADDQ T0, LO, LO

// CONDSUB4: R -= BOUND if R >= BOUND. BOUNDS = BOUND^2^63 (precomputed
// constant). Clobbers T0, T1.
#define CONDSUB4(R, BOUND, BOUNDS, T0, T1) \
	VPSUBQ BOUND, R, T0   \ // rs = r - bound (wrapped if r < bound)
	VPXOR Y15, R, T1      \
	VPCMPGTQ T1, BOUNDS, T1 \ // mask: r <u bound
	VPAND BOUND, T1, T1   \ // bound where r < bound, else 0
	VPADDQ T1, T0, R        // rs + bound = r where r < bound

// BARRETT_T4: T = lo64(XHI*u0) + hi64(XLO*u0) + hi64(XHI*u1), wrapping.
// Clobbers H, L, T0-T3; preserves XHI, XLO.
#define BARRETT_T4(XHI, XLO, T, H, L, T0, T1, T2, T3) \
	MULLO64x4(XHI, Y9, T, T0, T1)            \
	MUL128x4(XLO, Y9, H, L, T0, T1, T2, T3)  \
	VPADDQ H, T, T                           \
	MUL128x4(XHI, Y10, H, L, T0, T1, T2, T3) \
	VPADDQ H, T, T

// BARRETT_CONSTS4 loads q, 2q, u0, u1 from the canonical trailing-argument
// layout and materializes the sign-flip constants.
#define BARRETT_CONSTS4(QOFF) \
	VPBROADCASTQ q+QOFF(FP), Y11        \
	VPBROADCASTQ twoQ+(QOFF+8)(FP), Y12 \
	VPBROADCASTQ u0+(QOFF+16)(FP), Y9   \
	VPBROADCASTQ u1+(QOFF+24)(FP), Y10  \
	MOVQ $0x8000000000000000, AX        \
	MOVQ AX, X15                        \
	VPBROADCASTQ X15, Y15               \
	VPXOR Y15, Y11, Y13                 \
	VPXOR Y15, Y12, Y14

#define SGN_CONST \
	MOVQ $0x8000000000000000, AX \
	MOVQ AX, X15                 \
	VPBROADCASTQ X15, Y15

// func vecMulShoupAVX2(out, a []uint64, w, wShoup, q uint64)
TEXT ·vecMulShoupAVX2(SB), NOSPLIT, $0-72
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	VPBROADCASTQ w+48(FP), Y9
	VPBROADCASTQ wShoup+56(FP), Y10
	VPBROADCASTQ q+64(FP), Y11
	SGN_CONST
	VPXOR Y15, Y11, Y13
	XORQ DX, DX
mulShoupLoop:
	VMOVDQU (SI)(DX*8), Y0
	MUL128x4(Y0, Y10, Y2, Y3, Y4, Y5, Y6, Y7)     // hi64(a*wShoup) -> Y2
	MULLO64x4(Y0, Y9, Y3, Y4, Y5)                 // a*w
	MULLO64x4(Y2, Y11, Y4, Y5, Y6)                // hi*q
	VPSUBQ Y4, Y3, Y0
	CONDSUB4(Y0, Y11, Y13, Y4, Y5)
	VMOVDQU Y0, (DI)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL mulShoupLoop
	VZEROUPPER
	RET

// func vecSubMulShoupLazyAVX2(out, a, b []uint64, w, wShoup, q, twoQ uint64)
TEXT ·vecSubMulShoupLazyAVX2(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ a_base+24(FP), SI
	MOVQ a_len+32(FP), CX
	MOVQ b_base+48(FP), BX
	VPBROADCASTQ w+72(FP), Y9
	VPBROADCASTQ wShoup+80(FP), Y10
	VPBROADCASTQ q+88(FP), Y11
	VPBROADCASTQ twoQ+96(FP), Y12
	SGN_CONST
	VPXOR Y15, Y11, Y13
	XORQ DX, DX
subMulShoupLazyLoop:
	VMOVDQU (SI)(DX*8), Y0
	VMOVDQU (BX)(DX*8), Y1
	VPADDQ Y12, Y0, Y0
	VPSUBQ Y1, Y0, Y0                             // d = a + 2q - b
	MUL128x4(Y0, Y10, Y2, Y3, Y4, Y5, Y6, Y7)
	MULLO64x4(Y0, Y9, Y3, Y4, Y5)
	MULLO64x4(Y2, Y11, Y4, Y5, Y6)
	VPSUBQ Y4, Y3, Y0
	CONDSUB4(Y0, Y11, Y13, Y4, Y5)
	VMOVDQU Y0, (DI)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL subMulShoupLazyLoop
	VZEROUPPER
	RET

// func vecMulWideAVX2(accHi, accLo, row []uint64, w uint64)
TEXT ·vecMulWideAVX2(SB), NOSPLIT, $0-80
	MOVQ accHi_base+0(FP), DI
	MOVQ accLo_base+24(FP), BX
	MOVQ row_base+48(FP), SI
	MOVQ row_len+56(FP), CX
	VPBROADCASTQ w+72(FP), Y9
	SGN_CONST
	XORQ DX, DX
mulWideLoop:
	VMOVDQU (SI)(DX*8), Y0
	MUL128x4(Y0, Y9, Y2, Y3, Y4, Y5, Y6, Y7)
	VMOVDQU Y2, (DI)(DX*8)
	VMOVDQU Y3, (BX)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL mulWideLoop
	VZEROUPPER
	RET

// func vecMulAccWideAVX2(accHi, accLo, row []uint64, w uint64)
TEXT ·vecMulAccWideAVX2(SB), NOSPLIT, $0-80
	MOVQ accHi_base+0(FP), DI
	MOVQ accLo_base+24(FP), BX
	MOVQ row_base+48(FP), SI
	MOVQ row_len+56(FP), CX
	VPBROADCASTQ w+72(FP), Y9
	SGN_CONST
	XORQ DX, DX
mulAccWideLoop:
	VMOVDQU (SI)(DX*8), Y0
	MUL128x4(Y0, Y9, Y2, Y3, Y4, Y5, Y6, Y7)      // phi:plo
	VMOVDQU (BX)(DX*8), Y1
	VPADDQ Y3, Y1, Y1                             // accLo += plo
	VPXOR Y15, Y1, Y4
	VPXOR Y15, Y3, Y5
	VPCMPGTQ Y4, Y5, Y4                           // carry: new accLo <u plo
	VMOVDQU (DI)(DX*8), Y0
	VPADDQ Y2, Y0, Y0                             // accHi += phi
	VPSUBQ Y4, Y0, Y0                             // accHi += carry
	VMOVDQU Y0, (DI)(DX*8)
	VMOVDQU Y1, (BX)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL mulAccWideLoop
	VZEROUPPER
	RET

// func vecFoldWide128LazyAVX2(accHi, accLo []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecFoldWide128LazyAVX2(SB), NOSPLIT, $0-80
	MOVQ accHi_base+0(FP), DI
	MOVQ accLo_base+24(FP), BX
	MOVQ accLo_len+32(FP), CX
	BARRETT_CONSTS4(48)
	XORQ DX, DX
foldWideLoop:
	VMOVDQU (DI)(DX*8), Y2
	VMOVDQU (BX)(DX*8), Y3
	BARRETT_T4(Y2, Y3, Y4, Y0, Y1, Y5, Y6, Y7, Y8)
	MULLO64x4(Y4, Y11, Y5, Y6, Y7)
	VPSUBQ Y5, Y3, Y0
	CONDSUB4(Y0, Y12, Y14, Y5, Y6)
	VMOVDQU Y0, (BX)(DX*8)
	VPXOR Y1, Y1, Y1
	VMOVDQU Y1, (DI)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL foldWideLoop
	VZEROUPPER
	RET

// func vecReduceWide128AVX2(dst, accHi, accLo []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecReduceWide128AVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ accHi_base+24(FP), SI
	MOVQ accLo_base+48(FP), BX
	BARRETT_CONSTS4(72)
	XORQ DX, DX
reduceWideLoop:
	VMOVDQU (SI)(DX*8), Y2
	VMOVDQU (BX)(DX*8), Y3
	BARRETT_T4(Y2, Y3, Y4, Y0, Y1, Y5, Y6, Y7, Y8)
	MULLO64x4(Y4, Y11, Y5, Y6, Y7)
	VPSUBQ Y5, Y3, Y0
	CONDSUB4(Y0, Y12, Y14, Y5, Y6)
	CONDSUB4(Y0, Y11, Y13, Y5, Y6)
	VMOVDQU Y0, (DI)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL reduceWideLoop
	VZEROUPPER
	RET

// func vecReduceWide128LazyAVX2(dst, accHi, accLo []uint64, q, twoQ, u0, u1 uint64)
TEXT ·vecReduceWide128LazyAVX2(SB), NOSPLIT, $0-104
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ accHi_base+24(FP), SI
	MOVQ accLo_base+48(FP), BX
	BARRETT_CONSTS4(72)
	XORQ DX, DX
reduceWideLazyLoop:
	VMOVDQU (SI)(DX*8), Y2
	VMOVDQU (BX)(DX*8), Y3
	BARRETT_T4(Y2, Y3, Y4, Y0, Y1, Y5, Y6, Y7, Y8)
	MULLO64x4(Y4, Y11, Y5, Y6, Y7)
	VPSUBQ Y5, Y3, Y0
	CONDSUB4(Y0, Y12, Y14, Y5, Y6)
	VMOVDQU Y0, (DI)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL reduceWideLazyLoop
	VZEROUPPER
	RET

// func vecReduceTwoQAVX2(p []uint64, q uint64)
TEXT ·vecReduceTwoQAVX2(SB), NOSPLIT, $0-32
	MOVQ p_base+0(FP), SI
	MOVQ p_len+8(FP), CX
	VPBROADCASTQ q+24(FP), Y11
	SGN_CONST
	VPXOR Y15, Y11, Y13
	XORQ DX, DX
reduceTwoQLoop:
	VMOVDQU (SI)(DX*8), Y0
	CONDSUB4(Y0, Y11, Y13, Y4, Y5)
	VMOVDQU Y0, (SI)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL reduceTwoQLoop
	VZEROUPPER
	RET

// func vecFwdButterflyAVX2(x, y []uint64, w, wShoup, q, twoQ uint64)
TEXT ·vecFwdButterflyAVX2(SB), NOSPLIT, $0-80
	MOVQ x_base+0(FP), DI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), BX
	VPBROADCASTQ w+48(FP), Y9
	VPBROADCASTQ wShoup+56(FP), Y10
	VPBROADCASTQ q+64(FP), Y11
	VPBROADCASTQ twoQ+72(FP), Y12
	SGN_CONST
	VPXOR Y15, Y12, Y14
	XORQ DX, DX
fwdButterflyLoop:
	VMOVDQU (DI)(DX*8), Y0                        // u
	VMOVDQU (BX)(DX*8), Y1                        // v
	CONDSUB4(Y0, Y12, Y14, Y4, Y5)                // u in [0, 2q)
	MUL128x4(Y1, Y10, Y2, Y3, Y4, Y5, Y6, Y7)     // h = hi64(v*wShoup)
	MULLO64x4(Y1, Y9, Y3, Y4, Y5)                 // v*w
	MULLO64x4(Y2, Y11, Y4, Y5, Y6)                // h*q
	VPSUBQ Y4, Y3, Y1                             // v' in [0, 2q)
	VPADDQ Y1, Y0, Y2                             // x' = u + v'
	VPSUBQ Y1, Y0, Y3
	VPADDQ Y12, Y3, Y3                            // y' = u - v' + 2q
	VMOVDQU Y2, (DI)(DX*8)
	VMOVDQU Y3, (BX)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL fwdButterflyLoop
	VZEROUPPER
	RET

// func vecInvButterflyAVX2(x, y []uint64, w, wShoup, q, twoQ uint64)
TEXT ·vecInvButterflyAVX2(SB), NOSPLIT, $0-80
	MOVQ x_base+0(FP), DI
	MOVQ x_len+8(FP), CX
	MOVQ y_base+24(FP), BX
	VPBROADCASTQ w+48(FP), Y9
	VPBROADCASTQ wShoup+56(FP), Y10
	VPBROADCASTQ q+64(FP), Y11
	VPBROADCASTQ twoQ+72(FP), Y12
	SGN_CONST
	VPXOR Y15, Y12, Y14
	XORQ DX, DX
invButterflyLoop:
	VMOVDQU (DI)(DX*8), Y0                        // u
	VMOVDQU (BX)(DX*8), Y1                        // v
	VPADDQ Y1, Y0, Y2                             // s = u + v
	CONDSUB4(Y2, Y12, Y14, Y4, Y5)                // x' in [0, 2q)
	VPSUBQ Y1, Y0, Y3
	VPADDQ Y12, Y3, Y3                            // d = u - v + 2q
	MUL128x4(Y3, Y10, Y4, Y0, Y5, Y6, Y7, Y8)     // h = hi64(d*wShoup) -> Y4
	MULLO64x4(Y3, Y9, Y5, Y6, Y7)                 // d*w
	MULLO64x4(Y4, Y11, Y6, Y7, Y8)                // h*q
	VPSUBQ Y6, Y5, Y3                             // y' in [0, 2q)
	VMOVDQU Y2, (DI)(DX*8)
	VMOVDQU Y3, (BX)(DX*8)
	ADDQ $4, DX
	CMPQ DX, CX
	JL invButterflyLoop
	VZEROUPPER
	RET
