// Package dram models the DRAM devices of the evaluated GPUs at the level
// needed by the Anaheim PIM study: device geometry (dies, banks), bank
// timing for all-bank PIM operation (row activation/precharge exposed, §VI-B),
// and per-bit access energy split into the architectural tiers of
// O'Connor et al. (FGDRAM) — cell array, in-die datapath, and off-chip
// interface — which is what makes PIM accesses cheaper than GPU-side
// accesses (Fig 4b).
package dram

import "fmt"

// Kind distinguishes the modeled DRAM technologies.
type Kind int

const (
	HBM2 Kind = iota
	GDDR6X
	CustomHBM // HBM with PIM units on the logic die (§VI-D)
)

func (k Kind) String() string {
	switch k {
	case HBM2:
		return "HBM2"
	case GDDR6X:
		return "GDDR6X"
	case CustomHBM:
		return "custom-HBM"
	default:
		return fmt.Sprintf("dram.Kind(%d)", int(k))
	}
}

// Config describes one GPU's DRAM subsystem (Table III).
type Config struct {
	Kind Kind
	Name string

	Dies        int // DRAM dies (A100: 5 stacks × 8-Hi = 40; 4090: 12)
	BanksPerDie int // 64 (HBM2) or 32 (GDDR6X)

	ExternalBWGBs float64 // off-chip bandwidth seen by the GPU (GB/s)
	CapacityGB    float64

	// Bank timing (ns). All-bank PIM operation exposes ACT/PRE directly
	// (§VI-B): switching the open row of every bank costs tRP + tRCD plus a
	// stagger delay from activating thousands of banks under tFAW/power
	// limits.
	TRCDns       float64
	TRPns        float64
	ActStaggerNs float64

	ChunkBits int // global I/O datapath width per bank access (256)

	// RowBits is the DRAM row size (8Kb rows -> 32 chunks per row).
	RowBits int

	// Energy per bit (pJ/bit) by tier. A GPU-side access pays all three;
	// a near-bank PIM access pays only the array tier (plus a short local
	// datapath); a logic-die (custom-HBM) PIM access pays array + TSV.
	ArrayPJb   float64
	OnDiePJb   float64 // global in-die datapath + TSV
	OffChipPJb float64 // interface, PHY, interposer/PCB
}

// RowSwitchNs is the exposed cost of changing the open row under all-bank
// operation.
func (c Config) RowSwitchNs() float64 { return c.TRCDns + c.TRPns + c.ActStaggerNs }

// ChunksPerRow returns how many I/O chunks one row holds.
func (c Config) ChunksPerRow() int { return c.RowBits / c.ChunkBits }

// TotalBanks returns the number of banks across all dies.
func (c Config) TotalBanks() int { return c.Dies * c.BanksPerDie }

// GPUAccessPJb is the per-bit energy of a GPU-side DRAM access.
func (c Config) GPUAccessPJb() float64 { return c.ArrayPJb + c.OnDiePJb + c.OffChipPJb }

// PIMAccessPJb is the per-bit energy of a PIM-side access for the given PIM
// placement: near-bank units touch only the array and a short local wire;
// logic-die units also pay the in-die datapath/TSV tier.
func (c Config) PIMAccessPJb(logicDie bool) float64 {
	if logicDie {
		return c.ArrayPJb + c.OnDiePJb
	}
	return c.ArrayPJb + 0.15*c.OnDiePJb
}

// A100HBM2 returns the DRAM configuration of the NVIDIA A100 80GB
// (5 HBM2e stacks, Table III).
func A100HBM2() Config {
	return Config{
		Kind:          HBM2,
		Name:          "A100-HBM2e",
		Dies:          40, // 5 stacks × 8-Hi
		BanksPerDie:   64,
		ExternalBWGBs: 1802,
		CapacityGB:    80,
		TRCDns:        14,
		TRPns:         14,
		ActStaggerNs:  78, // staggered all-bank activation under tFAW/power limits
		ChunkBits:     256,
		RowBits:       8 * 1024,
		ArrayPJb:      0.8,
		OnDiePJb:      1.4,
		OffChipPJb:    1.7,
	}
}

// RTX4090GDDR6X returns the DRAM configuration of the RTX 4090
// (12 GDDR6X dies, Table III).
func RTX4090GDDR6X() Config {
	return Config{
		Kind:          GDDR6X,
		Name:          "RTX4090-GDDR6X",
		Dies:          12,
		BanksPerDie:   32,
		ExternalBWGBs: 939,
		CapacityGB:    24,
		TRCDns:        14,
		TRPns:         14,
		ActStaggerNs:  80,
		ChunkBits:     256,
		RowBits:       8 * 1024,
		ArrayPJb:      0.9,
		OnDiePJb:      1.6,
		OffChipPJb:    5.0, // PCB signaling is far costlier than interposer
	}
}

// DDR5 returns a DDR5-based accelerator memory system (8 channels of
// DDR5-6400): the commodity end of §VI-D's "Anaheim can be applied to DDR,
// GDDR, and LPDDR memories". External bandwidth is scarce, so PIM's
// internal-bandwidth multiple is large.
func DDR5() Config {
	return Config{
		Kind:          GDDR6X, // per-device formatting bucket
		Name:          "DDR5-6400x8ch",
		Dies:          16,
		BanksPerDie:   32,
		ExternalBWGBs: 410,
		CapacityGB:    128,
		TRCDns:        16,
		TRPns:         16,
		ActStaggerNs:  60,
		ChunkBits:     256,
		RowBits:       8 * 1024,
		ArrayPJb:      1.0,
		OnDiePJb:      1.8,
		OffChipPJb:    7.0, // DIMM interface
	}
}

// LPDDR5X returns a mobile-class memory system (LPDDR5X-8533, 4 channels):
// low bandwidth and very low access energy.
func LPDDR5X() Config {
	return Config{
		Kind:          GDDR6X,
		Name:          "LPDDR5X-8533x4ch",
		Dies:          8,
		BanksPerDie:   16,
		ExternalBWGBs: 273,
		CapacityGB:    32,
		TRCDns:        18,
		TRPns:         18,
		ActStaggerNs:  40,
		ChunkBits:     256,
		RowBits:       4 * 1024,
		ArrayPJb:      0.7,
		OnDiePJb:      1.0,
		OffChipPJb:    2.2,
	}
}

// A100CustomHBM returns the custom-HBM variant: same stacks, PIM units on
// the logic die fed by extra TSVs (4× the external bandwidth internally,
// Table III), with per-unit multi-bank scheduling that hides most of the
// activation stagger.
func A100CustomHBM() Config {
	c := A100HBM2()
	c.Kind = CustomHBM
	c.Name = "A100-customHBM"
	c.ActStaggerNs = 0 // per-unit bank interleaving hides the stagger
	return c
}
